package regionmon

// Integration tests: whole-pipeline runs through the public façade,
// asserting the archetype-level behaviours the figure experiments rely on.
// Workloads run at 1/100 scale with proportionally reduced sampling
// periods, which preserves full-scale dynamics (see internal/workload).

import (
	"testing"
)

const (
	itScale  = 0.01
	itPeriod = 450 // = 45K × itScale
	itBuffer = 512
)

func runBenchmark(t *testing.T, name string, mutate func(*RegionConfig)) (SystemStats, *System) {
	t.Helper()
	bench, err := LoadBenchmark(name, itScale)
	if err != nil {
		t.Fatalf("LoadBenchmark(%s): %v", name, err)
	}
	rcfg := DefaultRegionConfig()
	if mutate != nil {
		mutate(&rcfg)
	}
	sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
		Sampling: SamplingConfig{Period: itPeriod, BufferSize: itBuffer, JitterFrac: 0.1},
		Region:   &rcfg,
	})
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", name, err)
	}
	return sys.Run(), sys
}

func TestIntegrationSteadyBenchmark(t *testing.T) {
	// 172.mgrid: single phase; GPD stable nearly everywhere, all regions
	// locally stable, low UCR.
	stats, sys := runBenchmark(t, "172.mgrid", nil)
	if stats.GlobalPhaseChanges != 0 {
		t.Errorf("mgrid GPD changes = %d; want 0", stats.GlobalPhaseChanges)
	}
	if stats.GlobalStableFraction < 0.9 {
		t.Errorf("mgrid GPD stable = %.2f; want >= 0.9", stats.GlobalStableFraction)
	}
	if stats.UCRMedian > 0.30 {
		t.Errorf("mgrid UCR median = %.2f; want <= 0.30", stats.UCRMedian)
	}
	for _, r := range sys.RegionMonitor().Regions() {
		if f := r.Detector.StableFraction(); f < 0.8 {
			t.Errorf("mgrid region %s stable = %.2f; want >= 0.8", r.Name(), f)
		}
	}
}

func TestIntegrationDriftBenchmark(t *testing.T) {
	// 181.mcf: the centroid swings between eras but every hot region is
	// locally stable — the paper's headline contrast.
	// At this run length mcf covers a handful of eras; every transition
	// must register globally.
	stats, sys := runBenchmark(t, "181.mcf", nil)
	if stats.GlobalPhaseChanges < 2 {
		t.Errorf("mcf GPD changes = %d; want >= 2 (era drift)", stats.GlobalPhaseChanges)
	}
	regions := sys.RegionMonitor().Regions()
	if len(regions) < 4 {
		t.Fatalf("mcf regions = %d; want >= 4", len(regions))
	}
	stableRegions := 0
	for _, r := range regions {
		if r.Detector.StableFraction() > 0.8 {
			stableRegions++
		}
	}
	if stableRegions < len(regions)/2 {
		t.Errorf("mcf locally stable regions = %d of %d; want majority", stableRegions, len(regions))
	}
}

func TestIntegrationAlternatingBenchmark(t *testing.T) {
	// 187.facerec: globally unstable through the alternation, locally
	// fine.
	stats, sys := runBenchmark(t, "187.facerec", nil)
	if stats.GlobalStableFraction > 0.9 {
		t.Errorf("facerec GPD stable = %.2f; want well below 1", stats.GlobalStableFraction)
	}
	if stats.GlobalPhaseChanges == 0 {
		t.Error("facerec GPD saw no phase changes")
	}
	for _, r := range sys.RegionMonitor().Regions() {
		if r.Detector.PhaseChanges() > stats.GlobalPhaseChanges {
			t.Errorf("facerec region %s has more local changes (%d) than GPD (%d)",
				r.Name(), r.Detector.PhaseChanges(), stats.GlobalPhaseChanges)
		}
	}
}

func TestIntegrationHighUCRBenchmark(t *testing.T) {
	// 254.gap: the interpreter stays unmonitored; the annotations
	// extension covers it.
	stats, _ := runBenchmark(t, "254.gap", nil)
	if stats.UCRMedian <= 0.30 {
		t.Errorf("gap UCR median = %.2f; want > 0.30 (persistent UCR)", stats.UCRMedian)
	}

	bench, err := LoadBenchmark("254.gap", itScale)
	if err != nil {
		t.Fatal(err)
	}
	statsAnn, _ := runBenchmark(t, "254.gap", func(c *RegionConfig) {
		for _, s := range bench.Straight {
			c.Annotations = append(c.Annotations, Annotation{Start: s.Start, End: s.End})
		}
	})
	if statsAnn.UCRMedian >= stats.UCRMedian || statsAnn.UCRMedian > 0.30 {
		t.Errorf("annotations did not tame gap's UCR: %.2f -> %.2f", stats.UCRMedian, statsAnn.UCRMedian)
	}
}

func TestIntegrationHugeRegionBenchmark(t *testing.T) {
	// 188.ammp: the huge region's r hovers at the threshold; the
	// size-scaled threshold extension calms it down.
	_, sys := runBenchmark(t, "188.ammp", nil)
	var huge *Region
	for _, r := range sys.RegionMonitor().Regions() {
		if huge == nil || r.NumInstrs() > huge.NumInstrs() {
			huge = r
		}
	}
	if huge == nil {
		t.Fatal("ammp formed no regions")
	}
	if huge.Detector.PhaseChanges() < 10 {
		t.Errorf("ammp huge region changes = %d; want many (threshold hover)", huge.Detector.PhaseChanges())
	}

	_, sysScaled := runBenchmark(t, "188.ammp", func(c *RegionConfig) {
		c.Detector.ScaleRTBySize = true
	})
	var hugeScaled *Region
	for _, r := range sysScaled.RegionMonitor().Regions() {
		if hugeScaled == nil || r.NumInstrs() > hugeScaled.NumInstrs() {
			hugeScaled = r
		}
	}
	if hugeScaled.Detector.PhaseChanges() >= huge.Detector.PhaseChanges() {
		t.Errorf("size-scaled threshold did not reduce ammp churn: %d -> %d",
			huge.Detector.PhaseChanges(), hugeScaled.Detector.PhaseChanges())
	}
}

func TestIntegrationManyRegionBenchmark(t *testing.T) {
	// 176.gcc: regions accumulate across eras.
	stats, _ := runBenchmark(t, "176.gcc", nil)
	if stats.Regions < 15 {
		t.Errorf("gcc regions = %d; want many", stats.Regions)
	}
}

func TestIntegrationRTOPolicies(t *testing.T) {
	// All three policies run the same mcf workload; both controllers beat
	// nothing... actually GPD may lose to none when it thrashes; assert
	// only that LPD is the fastest, per the paper.
	run := func(policy Policy) RTOResult {
		bench, err := LoadBenchmark("181.mcf", itScale)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultRTOConfig(policy)
		cfg.Model = ConstantModel(bench.PrefetchSave)
		cfg.PatchCycles = 200 // scaled with the 1/100 periods
		rto, err := NewRTO(bench.Prog, bench.Sched,
			SamplingConfig{Period: itPeriod, BufferSize: itBuffer, JitterFrac: 0.1}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rto.Run()
	}
	none := run(PolicyNone)
	orig := run(PolicyGPD)
	lpd := run(PolicyLPD)
	if none.Sim.BaseCycles != orig.Sim.BaseCycles || none.Sim.BaseCycles != lpd.Sim.BaseCycles {
		t.Fatalf("work differs across policies: %d / %d / %d",
			none.Sim.BaseCycles, orig.Sim.BaseCycles, lpd.Sim.BaseCycles)
	}
	if lpd.Sim.Cycles >= none.Sim.Cycles {
		t.Errorf("RTO-LPD (%d cycles) not faster than no-RTO (%d)", lpd.Sim.Cycles, none.Sim.Cycles)
	}
	if lpd.Sim.Cycles >= orig.Sim.Cycles {
		t.Errorf("RTO-LPD (%d cycles) not faster than RTO-ORIG (%d) on mcf", lpd.Sim.Cycles, orig.Sim.Cycles)
	}
}

func TestIntegrationWholeSuiteSmoke(t *testing.T) {
	// Every benchmark in the suite runs end-to-end at tiny scale without
	// error and with sane outputs.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			bench, err := LoadBenchmark(name, 0.002)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
				Sampling: SamplingConfig{Period: 200, BufferSize: 256, JitterFrac: 0.1},
			})
			if err != nil {
				t.Fatal(err)
			}
			stats := sys.Run()
			if stats.Exec.Cycles == 0 || stats.Intervals == 0 {
				t.Fatalf("%s executed nothing: %+v", name, stats)
			}
			if stats.UCRMedian < 0 || stats.UCRMedian > 1 {
				t.Fatalf("%s UCR median out of range: %v", name, stats.UCRMedian)
			}
		})
	}
}

func TestIntegrationDeterminism(t *testing.T) {
	a, _ := runBenchmark(t, "254.gap", nil)
	b, _ := runBenchmark(t, "254.gap", nil)
	if a != b {
		t.Errorf("whole-pipeline run not deterministic:\n%+v\n%+v", a, b)
	}
}
