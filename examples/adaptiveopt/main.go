// Adaptiveopt: the self-monitoring feedback loop the paper motivates in
// Sections 1 and 5 — "the optimization deployed may not be beneficial...
// monitoring the performance of a region becomes important... to determine
// the impact of deployed optimizations. This would allow us to undo
// ineffective optimizations deployed to a region."
//
// Two equally hot loops run side by side. Simulated helper-thread
// prefetching genuinely helps one of them (removes half its miss stalls)
// and actively hurts the other (its access pattern defeats the prefetcher
// and the useless prefetches pollute the cache, doubling its stalls). The
// controller cannot see any of this directly; it only sees the sample
// stream. With self-monitoring enabled, the region monitor notices the
// harmed region's time share ballooning after the patch, undoes the
// optimization and blacklists the region.
//
// Run with: go run ./examples/adaptiveopt
package main

import (
	"fmt"
	"log"

	"regionmon"
)

func main() {
	b := regionmon.NewProgramBuilder(0x10000)
	p := b.Proc("good")
	goodLoop := p.Loop(20, []regionmon.Kind{regionmon.KindLoad, regionmon.KindALU, regionmon.KindALU, regionmon.KindALU}, nil)
	b.Skip(0x20000)
	q := b.Proc("hostile")
	hostileLoop := q.Loop(20, []regionmon.Kind{regionmon.KindLoad, regionmon.KindALU, regionmon.KindALU, regionmon.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	sched := &regionmon.Schedule{
		Name:   "adaptive",
		Repeat: 60,
		Segments: []regionmon.Segment{{
			BaseCycles:  400_000,
			SlicePeriod: 20_000,
			Regions: []regionmon.RegionBehavior{
				{Start: goodLoop.Start, End: goodLoop.End, Weight: 0.5,
					MissRate: 0.8, MissPenalty: 60, HotspotIdx: -1},
				{Start: hostileLoop.Start, End: hostileLoop.End, Weight: 0.5,
					MissRate: 0.8, MissPenalty: 60, HotspotIdx: -1},
			},
		}},
	}

	run := func(selfMonitor bool) regionmon.RTOResult {
		cfg := regionmon.DefaultRTOConfig(regionmon.PolicyLPD)
		cfg.SelfMonitor = selfMonitor
		cfg.HarmFactor = 1.25
		// The workload's ground truth, invisible to the controller:
		// prefetching helps the first loop and hurts the second.
		cfg.Model = func(start, _ regionmon.Addr) float64 {
			if start == hostileLoop.Start {
				return -1.0 // useless prefetches double the miss stalls
			}
			return 0.5 // half the miss stalls removed
		}
		rto, err := regionmon.NewRTO(prog, sched,
			regionmon.SamplingConfig{Period: 1_000, BufferSize: 128, JitterFrac: 0.1}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rto.Run()
	}

	blind := run(false)
	watched := run(true)

	fmt.Println("=== optimization self-monitoring (paper Secs. 1, 5) ===")
	fmt.Printf("%-34s %14s %14s\n", "", "no feedback", "self-monitor")
	fmt.Printf("%-34s %14d %14d\n", "actual cycles", blind.Sim.Cycles, watched.Sim.Cycles)
	fmt.Printf("%-34s %14d %14d\n", "patches", blind.Patches, watched.Patches)
	fmt.Printf("%-34s %14d %14d\n", "harmful optimizations undone", blind.HarmUndos, watched.HarmUndos)
	fmt.Printf("\nself-monitoring speedup over blind deployment: %+.2f%%\n",
		watched.Sim.Speedup(blind.Sim)*100)

	fmt.Println("\nevent log (self-monitoring run):")
	shown := 0
	for _, ev := range watched.Events {
		fmt.Printf("  cycle %10d  %-12v %-14s %s\n", ev.Cycle, ev.Kind, ev.Region, ev.Detail)
		shown++
		if shown >= 14 {
			fmt.Printf("  ... (%d more events)\n", len(watched.Events)-shown)
			break
		}
	}
}
