// Samplersweep: the paper's Section 2.3 / 3.2.2 sensitivity experiment on
// one benchmark — how does each detector respond as the sampling period
// changes?
//
// Global (centroid) detection is highly sensitive: at short periods the
// periodic region switching of 187.facerec lands on different intervals
// every time and the detector keeps firing phase changes; at long periods
// the switching averages out inside one interval and the detector calms
// down. Local detection asks a different question — "did this region's
// own bottleneck distribution change?" — and answers it the same way at
// every period.
//
// Run with: go run ./examples/samplersweep [-bench 187.facerec]
package main

import (
	"flag"
	"fmt"
	"log"

	"regionmon"
)

func main() {
	bench := flag.String("bench", "187.facerec", "benchmark to sweep")
	flag.Parse()

	opts := regionmon.QuickExperimentOptions()
	sweep, err := regionmon.RunSweep(opts, []string{*bench})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== sampling-period sensitivity for %s ===\n\n", *bench)
	fmt.Printf("%-10s %10s %12s %14s %16s\n",
		"period", "intervals", "GPD changes", "GPD stable %", "LPD changes(max)")
	for _, p := range opts.Periods {
		c := sweep.Cell(*bench, p)
		if c == nil {
			continue
		}
		maxLocal := 0
		for _, r := range c.Regions {
			if r.PhaseChanges > maxLocal {
				maxLocal = r.PhaseChanges
			}
		}
		fmt.Printf("%-10d %10d %12d %13.1f%% %16d\n",
			p, c.Intervals, c.GPDChanges, c.GPDStableFrac*100, maxLocal)
	}

	fmt.Println("\nper-region detail (hottest first):")
	fmt.Printf("%-16s", "region")
	for _, p := range opts.Periods {
		fmt.Printf("  %8s", fmt.Sprintf("@%d", p))
	}
	fmt.Println("   (local phase changes | stable %)")
	base := sweep.Cell(*bench, opts.Periods[0])
	n := len(base.Regions)
	if n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		name := base.Regions[i].Name
		fmt.Printf("%-16s", name)
		for _, p := range opts.Periods {
			cell := sweep.Cell(*bench, p)
			printed := false
			for _, r := range cell.Regions {
				if r.Name == name {
					fmt.Printf("  %3d|%3.0f%%", r.PhaseChanges, r.StableFrac*100)
					printed = true
					break
				}
			}
			if !printed {
				fmt.Printf("  %8s", "-")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nGPD counts swing with the period; the per-region counts barely move —")
	fmt.Println("\"local phase detection minimizes the dependency on sampling period\" (Sec. 3.2.2).")
}
