// Phasechart: render ASCII region charts for the two benchmarks the paper
// uses to motivate region monitoring — 181.mcf (Figures 2, 9, 10: the
// region mix drifts and turns periodic, swinging the centroid while every
// region stays internally stable) and 187.facerec (Figure 5: periodic
// switching between two region sets keeps the global detector unstable).
//
// Each row is one sampling interval; each column is one monitored region
// scaled to the interval's sample share; the right-hand gutter shows the
// global detector's phase (█ = unstable — the paper's thick line) and the
// mean Pearson r of the regions active in that interval.
//
// Run with: go run ./examples/phasechart
package main

import (
	"fmt"
	"log"
	"strings"

	"regionmon"
)

func main() {
	for _, bench := range []string{"181.mcf", "187.facerec"} {
		if err := chart(bench); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func chart(name string) error {
	opts := regionmon.QuickExperimentOptions()
	c, err := regionmon.RunChart(opts, name)
	if err != nil {
		return err
	}
	regions := c.Regions
	if len(regions) > 6 {
		regions = regions[:6]
	}
	fmt.Printf("=== %s — region chart (period %d, %d intervals, %d regions) ===\n",
		name, c.Period, len(c.Points), len(c.Regions))
	fmt.Println("legend:", strings.Join(regions, "  "))
	fmt.Println("columns: interval | per-region sample share | GPD phase | mean r")

	const width = 6 // characters per region column
	step := 1
	if len(c.Points) > 60 {
		step = len(c.Points) / 60
	}
	for i := 0; i < len(c.Points); i += step {
		pt := c.Points[i]
		total := 0
		for _, rn := range regions {
			total += pt.Samples[rn]
		}
		var row strings.Builder
		fmt.Fprintf(&row, "%5d |", pt.Interval)
		var rSum float64
		var rN int
		for _, rn := range regions {
			share := 0.0
			if total > 0 {
				share = float64(pt.Samples[rn]) / float64(total)
			}
			bar := int(share*float64(width) + 0.5)
			row.WriteString(strings.Repeat("#", bar))
			row.WriteString(strings.Repeat(".", width-bar))
			row.WriteByte('|')
			if pt.Samples[rn] > 0 {
				rSum += pt.R[rn]
				rN++
			}
		}
		phase := "      "
		if !pt.GPDStable {
			phase = "██████" // the paper's thick "phase unstable" line
		}
		meanR := 0.0
		if rN > 0 {
			meanR = rSum / float64(rN)
		}
		fmt.Printf("%s %s  r=%+.2f\n", row.String(), phase, meanR)
	}

	// Summary in the paper's terms.
	unstable := 0
	for _, pt := range c.Points {
		if !pt.GPDStable {
			unstable++
		}
	}
	fmt.Printf("GPD unstable in %d/%d intervals; regions remain locally correlated (see r column)\n",
		unstable, len(c.Points))
	return nil
}
