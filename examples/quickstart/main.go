// Quickstart: build a tiny synthetic program, run it under sampling with
// both phase detectors attached, and watch local phase detection react to
// a bottleneck shift that global detection cannot see.
//
// The program has one hot loop. Halfway through the run the delinquent
// load inside the loop moves by one instruction (the paper's Figure 8
// scenario): the centroid of the PC samples barely moves, so the global
// detector stays happily "stable" — but the per-instruction histogram
// changes shape, Pearson r collapses, and the region's local detector
// reports a phase change.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regionmon"
)

func main() {
	// A program with a single hot loop of 24 instructions.
	b := regionmon.NewProgramBuilder(0x10000)
	p := b.Proc("kernel")
	p.Code(8, regionmon.KindALU)
	loop := p.Loop(24, []regionmon.Kind{
		regionmon.KindLoad, regionmon.KindALU, regionmon.KindALU, regionmon.KindALU,
	}, nil)
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Two segments with identical region weights — only the bottleneck
	// (the instruction that stalls on cache misses) moves from
	// instruction 4 to instruction 5.
	mkSegment := func(hotspot int) regionmon.Segment {
		return regionmon.Segment{
			BaseCycles:  2_000_000,
			SlicePeriod: 20_000,
			Regions: []regionmon.RegionBehavior{{
				Start: loop.Start, End: loop.End, Weight: 1,
				MissRate: 0.2, MissPenalty: 30,
				HotspotIdx: hotspot, HotspotStall: 200,
			}},
		}
	}
	sched := &regionmon.Schedule{
		Name:     "quickstart",
		Segments: []regionmon.Segment{mkSegment(4), mkSegment(5)},
	}

	sys, err := regionmon.NewSystem(prog, sched, regionmon.SystemConfig{
		Sampling: regionmon.SamplingConfig{Period: 1_000, BufferSize: 256, JitterFrac: 0.1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Watch both detectors through the pipeline report: each registered
	// detector contributes one verdict per interval, with the detector's
	// full output in the payload.
	fmt.Println("interval  GPD state  |  region        samples   r       LPD state")
	sys.AddObserver(func(rep *regionmon.PipelineReport) {
		global := rep.Verdict(regionmon.DetectorGPD).Payload.(*regionmon.GlobalVerdict)
		regions := rep.Verdict(regionmon.DetectorRegions).Payload.(*regionmon.RegionReport)
		for _, rv := range regions.Verdicts {
			marker := ""
			if rv.Verdict.PhaseChange {
				marker = "  <-- local phase change"
			}
			fmt.Printf("%8d  %-9v  |  %-12s %8d   %+.3f  %-13v%s\n",
				rep.Seq, global.State,
				rv.Region.Name(), rv.Samples, rv.Verdict.R, rv.Verdict.State, marker)
		}
	})

	stats := sys.Run()
	fmt.Printf("\nrun: %d cycles, %d intervals, %d regions\n",
		stats.Exec.Cycles, stats.Intervals, stats.Regions)
	fmt.Printf("GPD: %d phase changes, %.0f%% of time stable\n",
		stats.GlobalPhaseChanges, stats.GlobalStableFraction*100)
	for _, r := range sys.RegionMonitor().Regions() {
		fmt.Printf("LPD region %s: %d phase changes, %.0f%% of intervals stable\n",
			r.Name(), r.Detector.PhaseChanges(), r.Detector.StableFraction()*100)
	}
	fmt.Println("\nThe bottleneck shift is invisible to the centroid (GPD reports no")
	fmt.Println("change) but local detection catches it — the paper's core point.")
}
