package regionmon

// Differential tests for the sample-distribution paths: the linear list,
// the interval tree and the count-compressed epoch batch must be
// interchangeable — not statistically similar, byte-identical. Each run
// folds every interval's full report (all detectors, every verdict field,
// bit-exact floats) into a vhash digest; equal digests prove the verdict
// streams are equal.

import (
	"testing"

	"regionmon/internal/vhash"
)

// indexKinds enumerates the three distribution paths under their
// human-readable names.
var indexKinds = []struct {
	name string
	kind RegionIndexKind
}{
	{"list", RegionIndexList},
	{"tree", RegionIndexTree},
	{"epoch", RegionIndexEpoch},
}

// digestRun drives one benchmark through the full system under mutate's
// region configuration and returns the verdict-stream digest.
func digestRun(t *testing.T, name string, scale float64, mutate func(*RegionConfig)) uint64 {
	t.Helper()
	bench, err := LoadBenchmark(name, scale)
	if err != nil {
		t.Fatalf("LoadBenchmark(%s): %v", name, err)
	}
	rcfg := DefaultRegionConfig()
	if mutate != nil {
		mutate(&rcfg)
	}
	sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
		Sampling: SamplingConfig{Period: 200, BufferSize: 256, JitterFrac: 0.1},
		Region:   &rcfg,
	})
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", name, err)
	}
	dig := vhash.New()
	var hashErr error
	sys.AddObserver(func(rep *PipelineReport) {
		if err := dig.Report(rep); err != nil && hashErr == nil {
			hashErr = err
		}
	})
	stats := sys.Run()
	if hashErr != nil {
		t.Fatalf("digest(%s): %v", name, hashErr)
	}
	if stats.Intervals == 0 {
		t.Fatalf("%s drove no intervals", name)
	}
	return dig.Sum()
}

// checkKindsAgree asserts all three index kinds produce the same digest
// for one benchmark + configuration.
func checkKindsAgree(t *testing.T, bench string, scale float64, mutate func(*RegionConfig)) {
	t.Helper()
	digests := make(map[string]uint64, len(indexKinds))
	for _, k := range indexKinds {
		k := k
		digests[k.name] = digestRun(t, bench, scale, func(c *RegionConfig) {
			if mutate != nil {
				mutate(c)
			}
			c.Index = k.kind
		})
	}
	want := digests["list"]
	for _, k := range indexKinds[1:] {
		if digests[k.name] != want {
			t.Errorf("%s: %s digest %016x != list digest %016x", bench, k.name, digests[k.name], want)
		}
	}
}

// TestDifferentialIndexPathsSuite drives the whole synthetic benchmark
// suite through all three distribution paths and asserts byte-identical
// verdict streams. Short mode keeps the three benchmarks that stress the
// distribution hardest (many regions, persistent UCR, era drift).
func TestDifferentialIndexPathsSuite(t *testing.T) {
	names := BenchmarkNames()
	if testing.Short() {
		names = []string{"176.gcc", "254.gap", "181.mcf"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			checkKindsAgree(t, name, 0.002, nil)
		})
	}
}

// TestDifferentialFormationHeavy lowers the formation bar until region
// formation fires constantly — the cold-event storm that rebuilds the
// epoch snapshot most often.
func TestDifferentialFormationHeavy(t *testing.T) {
	checkKindsAgree(t, "176.gcc", 0.002, func(c *RegionConfig) {
		c.UCRThreshold = 0.05
		c.MinRegionSamples = 4
	})
}

// TestDifferentialPruneHeavy combines a tight region cap with aggressive
// idle pruning so the region set churns continuously: formation and
// removal both invalidate the epoch between most intervals.
func TestDifferentialPruneHeavy(t *testing.T) {
	checkKindsAgree(t, "181.mcf", 0.002, func(c *RegionConfig) {
		c.PruneAfter = 2
		c.MaxRegions = 12
	})
}
