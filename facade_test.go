package regionmon

// Compile-and-smoke coverage for every façade re-export, so drift between
// the internal packages and regionmon.go is caught by `go test ./.`
// rather than by downstream examples.

import (
	"testing"
)

// facadeProgram builds a small two-loop program through the façade types.
func facadeProgram(t *testing.T) (*Program, LoopSpan) {
	t.Helper()
	b := NewProgramBuilder(0x10000)
	p := b.Proc("main")
	p.Code(16, KindALU)
	span := p.Loop(32, []Kind{KindLoad, KindALU, KindFP, KindStore}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog, span
}

func TestFacadeProgramModel(t *testing.T) {
	prog, span := facadeProgram(t)
	if prog.NumInstrs() < 48 {
		t.Errorf("NumInstrs = %d; want >= 48 (straight code + loop body)", prog.NumInstrs())
	}
	var proc *Procedure = prog.Proc("main")
	if proc == nil || !proc.Contains(span.Start) {
		t.Fatal("procedure lookup broken")
	}
	var blk *Block = prog.BlockAt(span.Start)
	if blk == nil {
		t.Fatal("BlockAt broken")
	}
	var loop *Loop = proc.InnermostLoopAt(span.Start)
	if loop == nil || loop.NumInstrs() != span.NumInstrs() {
		t.Fatal("loop analysis broken")
	}
	if k, ok := prog.KindAt(span.Start); !ok || k != KindLoad {
		t.Errorf("KindAt = %v, %v", k, ok)
	}
	for _, k := range []Kind{KindALU, KindLoad, KindStore, KindFP, KindBranch, KindCall, KindRet, KindNop} {
		if !k.Valid() {
			t.Errorf("kind %v invalid", k)
		}
	}
}

func TestFacadeDetectors(t *testing.T) {
	prog, span := facadeProgram(t)

	gdet, err := NewGlobalDetector(DefaultGlobalConfig())
	if err != nil {
		t.Fatal(err)
	}
	ldet, err := NewLocalDetector(span.NumInstrs(), DefaultLocalConfig())
	if err != nil {
		t.Fatal(err)
	}
	rmon, err := NewRegionMonitor(prog, DefaultRegionConfig())
	if err != nil {
		t.Fatal(err)
	}
	bbv, err := NewBBVDetector(prog, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWorkingSetDetector(prog, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewPerfTracker(DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	cpd, err := NewChangePointDetector(DefaultChangePointConfig())
	if err != nil {
		t.Fatal(err)
	}

	// All detector families drive one Pipeline through the common
	// interface — the tentpole contract, exercised via the façade.
	pipe := NewPipeline()
	for _, d := range []PhaseDetector{
		AdaptGPD(gdet), AdaptRegionMonitor(rmon),
		AdaptBBV(bbv), AdaptWorkingSet(ws),
		AdaptCPI(tracker), AdaptDPI(MustTracker(t)),
		AdaptChangePoint(cpd),
	} {
		if err := pipe.Register(d); err != nil {
			t.Fatalf("Register(%s): %v", d.Name(), err)
		}
	}
	wantNames := []string{DetectorGPD, DetectorRegions, DetectorBBV, DetectorWorkingSet, DetectorCPI, DetectorDPI, DetectorChange}
	if len(pipe.Detectors()) != len(wantNames) {
		t.Fatalf("detectors = %d; want %d", len(pipe.Detectors()), len(wantNames))
	}
	var observed int
	var lastVerdicts int
	pipe.AddObserver(func(rep *PipelineReport) {
		observed++
		lastVerdicts = len(rep.Verdicts)
	})
	ov := &Overflow{Samples: make([]Sample, 64)}
	for i := range ov.Samples {
		ov.Samples[i] = Sample{PC: span.Start + Addr(i%span.NumInstrs())*4, Instrs: 8, DCMisses: 1}
	}
	for seq := 0; seq < 6; seq++ {
		ov.Seq = seq
		rep := pipe.ProcessOverflow(ov)
		var v *DetectorVerdict = rep.Verdict(DetectorGPD)
		if v == nil {
			t.Fatal("gpd verdict missing")
		}
	}
	if observed != 6 || lastVerdicts != len(wantNames) {
		t.Errorf("observer saw %d reports of %d verdicts", observed, lastVerdicts)
	}
	var st DetectorStats = pipe.Stats(DetectorBBV)
	if st.Intervals != 6 {
		t.Errorf("bbv stats intervals = %d", st.Intervals)
	}
	if _ = CPI(ov); DPI(ov) <= 0 {
		t.Error("CPI/DPI helpers broken")
	}
	// LPD façade surface.
	hist := make([]int64, span.NumInstrs())
	for i := range hist {
		hist[i] = int64(i + 1)
	}
	var lv LocalVerdict
	for i := 0; i < 4; i++ {
		lv = ldet.Observe(hist)
	}
	if lv.State != LocalStable || ldet.StableFraction() == 0 {
		t.Errorf("local detector state %v (stable frac %v)", lv.State, ldet.StableFraction())
	}
	_ = []LocalState{LocalUnstable, LocalLessUnstable, LocalStable}
	_ = []SimilarityMetric{MetricPearson, MetricManhattan, MetricTopK}
	_ = []GlobalState{GlobalUnstable, GlobalLessStable, GlobalStable}

	// Offline change-point façade surface: a clean level shift is found.
	series := make([]float64, 64)
	for i := range series {
		series[i] = 1.0
		if i >= 32 {
			series[i] = 2.0
		}
	}
	cps, err := DetectChangePoints(series, 7, DefaultChangePointEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].Index != 32 {
		t.Errorf("change points = %+v; want one at index 32", cps)
	}
}

// MustTracker builds a PerfTracker or fails the test.
func MustTracker(t *testing.T) *PerfTracker {
	t.Helper()
	tr, err := NewPerfTracker(DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFacadeSystemAndExecutionModel(t *testing.T) {
	bench, err := LoadBenchmark("181.mcf", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	names := BenchmarkNames()
	if len(names) == 0 {
		t.Fatal("no benchmarks")
	}
	// Piecewise wiring: monitor + executor built from parts.
	var deliveries int
	mon, err := NewSamplingMonitor(SamplingConfig{Period: 450, BufferSize: DefaultBufferSize},
		func(ov *Overflow) { deliveries++ })
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(bench.Prog, bench.Sched, mon)
	if err != nil {
		t.Fatal(err)
	}
	var res ExecResult = ex.Run()
	if res.Cycles == 0 || deliveries == 0 {
		t.Fatalf("executor produced %d cycles, %d deliveries", res.Cycles, deliveries)
	}
	_ = DefaultCostModel()

	// Convenience harness with both observer styles.
	sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
		Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var legacy, hooked int
	sys.Observe(func(rep IntervalReport) { legacy++ })
	sys.AddObserver(func(rep *PipelineReport) { hooked++ })
	stats := sys.Run()
	if stats.Intervals == 0 || legacy != stats.Intervals || hooked != stats.Intervals {
		t.Errorf("intervals %d, legacy %d, hooked %d", stats.Intervals, legacy, hooked)
	}
	if sys.GlobalDetector() == nil || sys.RegionMonitor() == nil ||
		sys.Executor() == nil || sys.Pipeline() == nil {
		t.Error("System accessors broken")
	}
}

func TestFacadeRTO(t *testing.T) {
	bench, err := LoadBenchmark("172.mgrid", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{PolicyGPD, PolicyLPD, PolicyNone} {
		cfg := DefaultRTOConfig(policy)
		cfg.Model = ConstantModel(bench.PrefetchSave)
		cfg.MaxEvents = 4
		rto, err := NewRTO(bench.Prog, bench.Sched, SamplingConfig{Period: 450, BufferSize: 512}, cfg)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		var res RTOResult = rto.Run()
		if res.Policy != policy || res.Sim.Cycles == 0 {
			t.Errorf("%v: result %+v", policy, res)
		}
		for _, ev := range res.Events {
			var e RTOEvent = ev
			if e.Kind.String() == "" {
				t.Error("event kind unprintable")
			}
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	if Fig8Table() == nil {
		t.Fatal("Fig8Table nil")
	}
	if len(Fig13BenchmarkNames()) == 0 || len(Fig17BenchmarkNames()) == 0 {
		t.Fatal("figure name sets empty")
	}
	opts := QuickExperimentOptions()
	full := DefaultExperimentOptions()
	if opts.Scale <= 0 || full.Scale <= 0 {
		t.Fatal("experiment options broken")
	}
	// One tiny sweep through both the sequential and parallel façade
	// entry points; equality is covered in internal/experiments.
	seq, err := RunSweep(opts, []string{"172.mgrid"})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweepParallel(opts, []string{"172.mgrid"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != len(par.Cells) || len(seq.Cells) != len(opts.Periods) {
		t.Fatalf("sweep cells: seq %d par %d", len(seq.Cells), len(par.Cells))
	}
	var tab *ExperimentTable = seq.Fig3Table()
	if tab.String() == "" || tab.CSV() == "" {
		t.Error("table rendering broken")
	}
}

func TestFacadeSchedule(t *testing.T) {
	prog, span := facadeProgram(t)
	sched := &Schedule{
		Name: "facade",
		Seed: 7,
		Segments: []Segment{{
			Name:        "steady",
			BaseCycles:  200_000,
			SlicePeriod: 10_000,
			Regions: []RegionBehavior{{
				Start: span.Start, End: span.End,
				Weight: 1, MissRate: 0.05, MissPenalty: 20,
				HotspotIdx: -1,
			}},
		}},
	}
	if err := sched.Validate(prog); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(prog, sched, SystemConfig{
		Sampling: SamplingConfig{Period: 450, BufferSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats := sys.Run(); stats.Exec.Cycles == 0 {
		t.Error("scheduled run produced no cycles")
	}
	// Region-monitoring façade extras: manual regions and annotations.
	rmon, err := NewRegionMonitor(prog, DefaultRegionConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := rmon.AddRegion(span.Start, span.End)
	if err != nil {
		t.Fatal(err)
	}
	var rv RegionVerdict
	_ = rv
	if reg.NumInstrs() != span.NumInstrs() {
		t.Errorf("region size %d", reg.NumInstrs())
	}
	ann := Annotation{Start: span.Start, End: span.End, Name: "hot"}
	if err := ann.Validate(prog); err != nil {
		t.Errorf("annotation: %v", err)
	}
}

// TestFacadeRegionIndexKinds pins the distribution-structure re-exports:
// every RegionIndex* constant builds a working monitor through the
// façade, and the histogram accessors agree.
func TestFacadeRegionIndexKinds(t *testing.T) {
	prog, span := facadeProgram(t)
	for _, kind := range []RegionIndexKind{RegionIndexEpoch, RegionIndexList, RegionIndexTree} {
		cfg := DefaultRegionConfig()
		cfg.Index = kind
		rmon, err := NewRegionMonitor(prog, cfg)
		if err != nil {
			t.Fatalf("NewRegionMonitor(Index=%v): %v", kind, err)
		}
		r, err := rmon.AddRegion(span.Start, span.End)
		if err != nil {
			t.Fatal(err)
		}
		ov := &Overflow{Samples: make([]Sample, 64)}
		for i := range ov.Samples {
			ov.Samples[i] = Sample{PC: span.Start, Instrs: 8}
		}
		rmon.ProcessOverflow(ov)
		h := r.Histogram()
		if got := r.AppendHistogram(nil); len(got) != len(h) {
			t.Fatalf("AppendHistogram len %d != Histogram len %d", len(got), len(h))
		}
		if got := rmon.Regions(); len(got) != 1 || got[0] != r {
			t.Fatalf("Regions() under %v = %v", kind, got)
		}
	}
	if bad := (RegionConfig{UCRThreshold: 0.3, MinRegionSamples: 1, MinObserveSamples: 1,
		Detector: DefaultLocalConfig(), Index: RegionIndexTree + 1}); bad.Validate() == nil {
		t.Error("out-of-range index kind validated")
	}
}
