// Command regionchart dumps the per-interval region chart of a benchmark
// as CSV: one row per sampling interval with the sample count and Pearson
// r of every monitored region, the UCR share and the global detector's
// phase state. This is the raw data behind the paper's Figures 2, 5, 9,
// 10 and 11; pipe it into any plotting tool to redraw them.
//
// Usage:
//
//	regionchart -bench 181.mcf -period 45000 > mcf.csv
//	regionchart -bench 187.facerec -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regionmon/internal/experiments"
)

func main() {
	var (
		bench  = flag.String("bench", "181.mcf", "benchmark name")
		period = flag.Uint64("period", 45_000, "sampling period in cycles/interrupt")
		buffer = flag.Int("buffer", 512, "sample buffer size")
		scale  = flag.Float64("scale", 1, "work scale")
		quick  = flag.Bool("quick", false, "reduced scale with proportional periods")
		top    = flag.Int("top", 8, "number of hottest regions to emit")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.TestOptions()
	} else {
		opts.Scale = *scale
		opts.ChartPeriod = *period
		opts.BufferSize = *buffer
	}

	chart, err := experiments.RunChart(opts, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regionchart:", err)
		os.Exit(1)
	}
	regions := chart.Regions
	if *top < len(regions) {
		regions = regions[:*top]
	}

	// Header: interval, cycle, then samples and r per region, UCR, phase.
	cols := []string{"interval", "cycle"}
	for _, r := range regions {
		cols = append(cols, "n_"+r, "r_"+r)
	}
	cols = append(cols, "ucr_frac", "gpd_stable")
	fmt.Println(strings.Join(cols, ","))

	for _, pt := range chart.Points {
		row := []string{fmt.Sprint(pt.Interval), fmt.Sprint(pt.Cycle)}
		for _, r := range regions {
			row = append(row, fmt.Sprint(pt.Samples[r]), fmt.Sprintf("%.4f", pt.R[r]))
		}
		stable := "0"
		if pt.GPDStable {
			stable = "1"
		}
		row = append(row, fmt.Sprintf("%.4f", pt.UCRFrac), stable)
		fmt.Println(strings.Join(row, ","))
	}
	fmt.Fprintf(os.Stderr, "%d intervals, %d regions (top %d emitted)\n",
		len(chart.Points), len(chart.Regions), len(regions))
}
