package main

import (
	"os"
	"strings"
	"testing"

	"regionmon/internal/adore"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want adore.Policy
	}{
		{"gpd", adore.PolicyGPD},
		{"lpd", adore.PolicyLPD},
		{"none", adore.PolicyNone},
	}
	for _, c := range cases {
		got, err := parsePolicy(c.in)
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("parsePolicy(%q) = %v; want %v", c.in, got, c.want)
		}
	}
	if _, err := parsePolicy("adaptive"); err == nil {
		t.Error("parsePolicy accepted an unknown policy")
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := r.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestRunOneSmoke(t *testing.T) {
	res, err := runOne("181.mcf", 100_000, 16, 0.0005, adore.PolicyLPD, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != adore.PolicyLPD {
		t.Errorf("result policy = %v; want %v", res.Policy, adore.PolicyLPD)
	}
	if res.Sim.Overflows == 0 {
		t.Error("smoke run saw no sample-buffer overflows")
	}
	if len(res.Events) > 4 {
		t.Errorf("MaxEvents=4 but got %d events", len(res.Events))
	}
	out := captureStdout(t, func() error { printResult(res); return nil })
	for _, want := range []string{"policy", "actual cycles", "intervals"} {
		if !strings.Contains(out, want) {
			t.Errorf("printResult output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareSmoke(t *testing.T) {
	out := captureStdout(t, func() error {
		return runCompare("181.mcf", 100_000, 16, 0.0005)
	})
	for _, want := range []string{"no-RTO", "RTO-ORIG(gpd)", "RTO-LPD", "Figure 17"} {
		if !strings.Contains(out, want) {
			t.Errorf("runCompare output missing %q:\n%s", want, out)
		}
	}
}
