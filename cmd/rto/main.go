// Command rto runs one synthetic SPEC CPU2000 benchmark under the runtime
// optimization system and prints the controller's behaviour: phase
// changes, trace patches/unpatches, region formation, and the resulting
// cycle counts. Run it twice (-policy gpd, -policy lpd) to see the
// paper's comparison on a single workload, or use -compare to do both in
// one invocation.
//
// Usage:
//
//	rto -bench 181.mcf -period 100000 -policy lpd -events 20
//	rto -bench 254.gap -period 1500000 -compare
//	rto -list
package main

import (
	"flag"
	"fmt"
	"os"

	"regionmon/internal/adore"
	"regionmon/internal/hpm"
	"regionmon/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "181.mcf", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		period  = flag.Uint64("period", 100_000, "sampling period in cycles/interrupt")
		buffer  = flag.Int("buffer", 512, "sample buffer size")
		policy  = flag.String("policy", "lpd", "controller: gpd, lpd or none")
		scale   = flag.Float64("scale", 1, "work scale (1 = ~10G cycles)")
		events  = flag.Int("events", 12, "most recent controller events to retain and print (<0 = all)")
		compare = flag.Bool("compare", false, "run gpd and lpd and report the speedup")
		selfmon = flag.Bool("selfmonitor", false, "enable optimization self-monitoring (lpd)")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			b, err := workload.ByName(n, 0.0001)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rto:", err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %s\n", n, b.Description)
		}
		return
	}

	if *compare {
		if err := runCompare(*bench, *period, *buffer, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "rto:", err)
			os.Exit(1)
		}
		return
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rto:", err)
		os.Exit(1)
	}

	res, err := runOne(*bench, *period, *buffer, *scale, pol, *selfmon, *events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rto:", err)
		os.Exit(1)
	}
	printResult(res)
}

// parsePolicy maps the -policy flag value to a controller policy.
func parsePolicy(s string) (adore.Policy, error) {
	switch s {
	case "gpd":
		return adore.PolicyGPD, nil
	case "lpd":
		return adore.PolicyLPD, nil
	case "none":
		return adore.PolicyNone, nil
	default:
		return adore.PolicyNone, fmt.Errorf("unknown policy %q (want gpd, lpd or none)", s)
	}
}

func runOne(bench string, period uint64, buffer int, scale float64, pol adore.Policy, selfmon bool, maxEvents int) (adore.RunResult, error) {
	b, err := workload.ByName(bench, scale)
	if err != nil {
		return adore.RunResult{}, err
	}
	cfg := adore.DefaultConfig(pol)
	cfg.Model = adore.ConstantModel(b.PrefetchSave)
	cfg.SelfMonitor = selfmon && pol == adore.PolicyLPD
	cfg.MaxEvents = maxEvents
	rto, err := adore.New(b.Prog, b.Sched, hpm.Config{Period: period, BufferSize: buffer, JitterFrac: 0.1}, cfg)
	if err != nil {
		return adore.RunResult{}, err
	}
	return rto.Run(), nil
}

func printResult(res adore.RunResult) {
	fmt.Printf("policy          %v\n", res.Policy)
	fmt.Printf("base cycles     %d\n", res.Sim.BaseCycles)
	fmt.Printf("actual cycles   %d\n", res.Sim.Cycles)
	fmt.Printf("instructions    %d\n", res.Sim.Instrs)
	fmt.Printf("intervals       %d\n", res.Sim.Overflows)
	fmt.Printf("phase changes   %d\n", res.PhaseChanges)
	fmt.Printf("stable fraction %.1f%%\n", res.StableFraction*100)
	fmt.Printf("patches         %d\n", res.Patches)
	fmt.Printf("unpatches       %d\n", res.Unpatches)
	if res.HarmUndos > 0 {
		fmt.Printf("harm undos      %d\n", res.HarmUndos)
	}
	if res.Regions > 0 {
		fmt.Printf("regions         %d\n", res.Regions)
	}
	if len(res.Events) > 0 {
		fmt.Println("events:")
		for _, ev := range res.Events {
			region := ev.Region
			if region == "" {
				region = "(global)"
			}
			fmt.Printf("  cycle %12d  seq %4d  %-12v %-14s %s\n", ev.Cycle, ev.Seq, ev.Kind, region, ev.Detail)
		}
	}
}

func runCompare(bench string, period uint64, buffer int, scale float64) error {
	orig, err := runOne(bench, period, buffer, scale, adore.PolicyGPD, false, 0)
	if err != nil {
		return err
	}
	lpd, err := runOne(bench, period, buffer, scale, adore.PolicyLPD, false, 0)
	if err != nil {
		return err
	}
	none, err := runOne(bench, period, buffer, scale, adore.PolicyNone, false, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %15s %15s %15s\n", "", "no-RTO", "RTO-ORIG(gpd)", "RTO-LPD")
	fmt.Printf("%-22s %15d %15d %15d\n", "cycles", none.Sim.Cycles, orig.Sim.Cycles, lpd.Sim.Cycles)
	fmt.Printf("%-22s %15s %15.1f%% %14.1f%%\n", "stable fraction", "-", orig.StableFraction*100, lpd.StableFraction*100)
	fmt.Printf("%-22s %15s %15d %15d\n", "patches", "-", orig.Patches, lpd.Patches)
	fmt.Printf("%-22s %15s %15d %15d\n", "phase changes", "-", orig.PhaseChanges, lpd.PhaseChanges)
	fmt.Printf("\nspeedup RTO-ORIG over no-RTO: %+.2f%%\n", orig.Sim.Speedup(none.Sim)*100)
	fmt.Printf("speedup RTO-LPD  over no-RTO: %+.2f%%\n", lpd.Sim.Speedup(none.Sim)*100)
	fmt.Printf("speedup RTO-LPD  over RTO-ORIG: %+.2f%%  (the Figure 17 quantity)\n", lpd.Sim.Speedup(orig.Sim)*100)
	return nil
}
