package main

import "testing"

// TestBuildReportSmoke runs the whole harness in-process at tiny scale:
// the three structures must produce identical verdict digests on the
// single-monitor grids and across the fleet, and every timing field must
// be populated.
func TestBuildReportSmoke(t *testing.T) {
	rep, err := buildReport(100, 256, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DigestsIdentical {
		t.Fatal("verdict digests differ across distribution structures")
	}
	if len(rep.Grids) != 3 {
		t.Fatalf("grids = %d; want 3", len(rep.Grids))
	}
	for _, g := range rep.Grids {
		if len(g.Runs) != 3 {
			t.Fatalf("%d regions: runs = %d; want 3", g.Regions, len(g.Runs))
		}
		for _, r := range g.Runs {
			if r.NsPerInterval <= 0 || r.SamplesPerSec <= 0 {
				t.Errorf("%d regions %s: empty timing %+v", g.Regions, r.Index, r)
			}
		}
		if g.EpochSpeedupList <= 0 || g.EpochSpeedupTree <= 0 {
			t.Errorf("%d regions: speedups not populated: %+v", g.Regions, g)
		}
	}
	if rep.Fleet == nil || rep.Fleet.EpochSpeedup <= 0 {
		t.Errorf("fleet section not populated: %+v", rep.Fleet)
	}
}

// TestGenDeterminism pins the workload generator: two generators with the
// same seed emit identical intervals (the digest comparison depends on
// it).
func TestGenDeterminism(t *testing.T) {
	_, spans, err := buildProgram(16)
	if err != nil {
		t.Fatal(err)
	}
	a, b := newGen(7, spans, 64), newGen(7, spans, 64)
	for i := 0; i < 20; i++ {
		ova, ovb := a.interval(i), b.interval(i)
		for s := range ova.Samples {
			if ova.Samples[s] != ovb.Samples[s] {
				t.Fatalf("interval %d sample %d diverges: %+v vs %+v", i, s, ova.Samples[s], ovb.Samples[s])
			}
		}
	}
}
