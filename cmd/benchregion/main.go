// Command benchregion measures sample-distribution throughput — the
// region monitor's ns/interval and samples/sec — across the three
// distribution structures (linear list, interval tree, batched epoch
// index) at several region counts, and emits the result as JSON (the
// committed BENCH_region.json). Before any timing is reported, the
// verdict digests of every structure are verified identical to the list
// run: a throughput number from a path that changed its answers would be
// meaningless. A fleet section reports the end-to-end ingest delta of the
// epoch path over the list on region-monitor-only stream stacks.
//
// Usage:
//
//	go run ./cmd/benchregion > BENCH_region.json
//	go run ./cmd/benchregion -full    # longer runs (minutes)
//	go run ./cmd/benchregion -smoke   # digest verification only (CI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"regionmon/internal/hpm"
	"regionmon/internal/ingest"
	"regionmon/internal/isa"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
	"regionmon/internal/vhash"
)

// kindRun is one (region count, structure) timing.
type kindRun struct {
	Index         string  `json:"index"`
	Seconds       float64 `json:"seconds"`
	NsPerInterval float64 `json:"ns_per_interval"`
	SamplesPerSec float64 `json:"samples_per_second"`
}

// grid is one region count's three-way comparison.
type grid struct {
	Regions          int       `json:"regions"`
	Runs             []kindRun `json:"runs"`
	EpochSpeedupList float64   `json:"epoch_speedup_vs_list"`
	EpochSpeedupTree float64   `json:"epoch_speedup_vs_tree"`
}

// fleetResult is the end-to-end ingest delta.
type fleetResult struct {
	Streams         int     `json:"streams"`
	Shards          int     `json:"shards"`
	Intervals       int     `json:"intervals_per_stream"`
	Regions         int     `json:"regions"`
	ListIntervalSec float64 `json:"list_intervals_per_second"`
	EpochIntervalSc float64 `json:"epoch_intervals_per_second"`
	EpochSpeedup    float64 `json:"epoch_speedup_vs_list"`
}

type report struct {
	Workload struct {
		SamplesPerInterval int `json:"samples_per_interval"`
		Intervals          int `json:"intervals"`
		Warmup             int `json:"warmup"`
	} `json:"workload"`
	Scale   string `json:"scale"` // "smoke", "quick" or "full"
	Machine struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus"`
	} `json:"machine"`
	DigestsIdentical bool         `json:"cross_index_digests_identical"`
	Grids            []grid       `json:"grids"`
	Fleet            *fleetResult `json:"fleet,omitempty"`
}

var indexKinds = []struct {
	name string
	kind region.IndexKind
}{
	{"list", region.IndexList},
	{"tree", region.IndexTree},
	{"epoch", region.IndexEpoch},
}

func main() {
	var (
		smoke     = flag.Bool("smoke", false, "digest verification only: tiny runs, timings not meaningful")
		full      = flag.Bool("full", false, "longer runs for stabler numbers")
		intervals = flag.Int("intervals", 2000, "timed intervals per run (quick scale)")
		samples   = flag.Int("samples", hpm.DefaultBufferSize, "samples per interval")
	)
	flag.Parse()

	scale := "quick"
	switch {
	case *smoke:
		*intervals = 200
		scale = "smoke"
	case *full:
		*intervals *= 10
		scale = "full"
	}

	rep, err := buildReport(*intervals, *samples, scale)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if !rep.DigestsIdentical {
		fatal(fmt.Errorf("verdict digests differ across distribution structures"))
	}
}

// buildProgram assembles a synthetic program with nLoops natural loops
// spread over procedures, returning the loop spans (each becomes one
// monitored region).
func buildProgram(nLoops int) (*isa.Program, []isa.LoopSpan, error) {
	const loopsPerProc = 32
	b := isa.NewBuilder(0x10000)
	spans := make([]isa.LoopSpan, 0, nLoops)
	var p *isa.ProcBuilder
	for i := 0; i < nLoops; i++ {
		if i%loopsPerProc == 0 {
			p = b.Proc(fmt.Sprintf("p%d", i/loopsPerProc))
			p.Code(8, isa.KindALU)
		}
		body := []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindStore}
		spans = append(spans, p.Loop(16+(i%5)*4, body, nil))
		p.Code(6, isa.KindALU)
	}
	prog, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return prog, spans, nil
}

// gen is the deterministic loopy workload: most samples land in a small
// rotating hot set of loops (heavy PC repetition, the shape count
// compression exploits), with straight-line stragglers and idle samples
// so UCR accounting runs but never trips formation.
type gen struct {
	rng     uint64
	spans   []isa.LoopSpan
	samples []hpm.Sample
	cycle   uint64
}

func newGen(seed uint64, spans []isa.LoopSpan, buf int) *gen {
	return &gen{rng: seed, spans: spans, samples: make([]hpm.Sample, buf)}
}

// next is splitmix64.
func (g *gen) next() uint64 {
	g.rng += 0x9e3779b97f4a7c15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *gen) interval(i int) *hpm.Overflow {
	hotBase := (i / 50) % len(g.spans)
	for s := range g.samples {
		g.cycle += 60 + g.next()%40
		var pc isa.Addr
		switch r := g.next() % 100; {
		case r < 3:
			pc = 0 // idle
		case r < 88:
			// Hot set: four loops starting at hotBase.
			span := g.spans[(hotBase+int(g.next()%4))%len(g.spans)]
			pc = span.Start + isa.Addr(g.next()%uint64(span.NumInstrs()))*isa.InstrBytes
		case r < 95:
			// Warm tail: any loop.
			span := g.spans[g.next()%uint64(len(g.spans))]
			pc = span.Start + isa.Addr(g.next()%uint64(span.NumInstrs()))*isa.InstrBytes
		default:
			// Straight-line straggler between loops.
			pc = g.spans[g.next()%uint64(len(g.spans))].End + isa.InstrBytes
		}
		g.samples[s] = hpm.Sample{PC: pc, Cycle: g.cycle, Instrs: 8 + g.next()%8, DCMisses: g.next() % 3}
	}
	return &hpm.Overflow{Seq: i, Cycle: g.cycle, Samples: g.samples}
}

// monitorPipeline builds a region-monitor-only pipeline over prog with
// every loop span pre-registered as a region.
func monitorPipeline(prog *isa.Program, spans []isa.LoopSpan, kind region.IndexKind) (*pipeline.Pipeline, error) {
	rcfg := region.DefaultConfig()
	rcfg.Index = kind
	rmon, err := region.NewMonitor(prog, rcfg)
	if err != nil {
		return nil, err
	}
	for _, s := range spans {
		if _, err := rmon.AddRegion(s.Start, s.End); err != nil {
			return nil, err
		}
	}
	pipe := pipeline.New()
	pipe.MustRegister(pipeline.NewRegionMonitor(rmon))
	return pipe, nil
}

// runMonitor drives one (region count, structure) run and returns the
// whole-run verdict digest plus the timed-section seconds. Warmup
// intervals (regions formed, scratch sized, snapshots built) are digested
// but not timed.
func runMonitor(prog *isa.Program, spans []isa.LoopSpan, kind region.IndexKind, warmup, intervals, samples int) (uint64, float64, error) {
	pipe, err := monitorPipeline(prog, spans, kind)
	if err != nil {
		return 0, 0, err
	}
	dig := vhash.New()
	var hashErr error
	pipe.AddObserver(func(rep *pipeline.IntervalReport) {
		if err := dig.Report(rep); err != nil && hashErr == nil {
			hashErr = err
		}
	})
	g := newGen(1, spans, samples)
	for i := 0; i < warmup; i++ {
		pipe.ProcessOverflow(g.interval(i))
	}
	t0 := time.Now() //lint:allow determinism -- benchmark harness measures real elapsed time
	for i := warmup; i < warmup+intervals; i++ {
		pipe.ProcessOverflow(g.interval(i))
	}
	//lint:allow determinism -- benchmark harness measures real elapsed time
	secs := time.Since(t0).Seconds()
	if hashErr != nil {
		return 0, 0, hashErr
	}
	return dig.Sum(), secs, nil
}

// runFleet drives a region-monitor-only ingest fleet and returns the
// per-stream digests and elapsed seconds.
func runFleet(prog *isa.Program, spans []isa.LoopSpan, kind region.IndexKind, streams, shards, intervals, samples int) ([]uint64, float64, error) {
	f, err := ingest.NewFleet(streams, ingest.Config{
		Shards:     shards,
		MaxSamples: samples,
		Build: func(stream int) (*pipeline.Pipeline, error) {
			return monitorPipeline(prog, spans, kind)
		},
	})
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	gens := make([]*gen, streams)
	for s := range gens {
		gens[s] = newGen(1+uint64(s)*0x9e3779b97f4a7c15, spans, samples)
	}
	t0 := time.Now() //lint:allow determinism -- benchmark harness measures real elapsed time
	for i := 0; i < intervals; i++ {
		for s := range gens {
			f.PushWait(s, gens[s].interval(i))
		}
	}
	f.Drain()
	//lint:allow determinism -- benchmark harness measures real elapsed time
	secs := time.Since(t0).Seconds()
	digs := make([]uint64, streams)
	for s := range digs {
		info, err := f.StreamInfo(s)
		if err != nil {
			return nil, 0, err
		}
		digs[s] = info.Digest
	}
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	return digs, secs, nil
}

func buildReport(intervals, samples int, scale string) (*report, error) {
	var rep report
	rep.Workload.SamplesPerInterval = samples
	rep.Workload.Intervals = intervals
	rep.Workload.Warmup = intervals / 10
	rep.Scale = scale
	rep.Machine.GOOS = runtime.GOOS
	rep.Machine.GOARCH = runtime.GOARCH
	rep.Machine.CPUs = runtime.NumCPU()
	rep.DigestsIdentical = true
	warmup := rep.Workload.Warmup

	for _, regions := range []int{4, 64, 512} {
		prog, spans, err := buildProgram(regions)
		if err != nil {
			return nil, err
		}
		g := grid{Regions: regions}
		var ref uint64
		perKind := map[string]float64{}
		for _, k := range indexKinds {
			dig, secs, err := runMonitor(prog, spans, k.kind, warmup, intervals, samples)
			if err != nil {
				return nil, fmt.Errorf("%d regions, %s: %w", regions, k.name, err)
			}
			if k.name == "list" {
				ref = dig
			} else if dig != ref {
				rep.DigestsIdentical = false
			}
			perKind[k.name] = secs
			g.Runs = append(g.Runs, kindRun{
				Index:         k.name,
				Seconds:       secs,
				NsPerInterval: secs * 1e9 / float64(intervals),
				SamplesPerSec: float64(intervals) * float64(samples) / secs,
			})
		}
		g.EpochSpeedupList = perKind["list"] / perKind["epoch"]
		g.EpochSpeedupTree = perKind["tree"] / perKind["epoch"]
		rep.Grids = append(rep.Grids, g)
	}

	// Fleet delta: end-to-end ingest throughput, epoch vs list, at the
	// mid-size region count.
	const fleetStreams, fleetShards, fleetRegions = 8, 4, 64
	fleetIntervals := intervals / 2
	if fleetIntervals < 50 {
		fleetIntervals = 50
	}
	prog, spans, err := buildProgram(fleetRegions)
	if err != nil {
		return nil, err
	}
	listDigs, listSecs, err := runFleet(prog, spans, region.IndexList, fleetStreams, fleetShards, fleetIntervals, samples)
	if err != nil {
		return nil, fmt.Errorf("fleet list: %w", err)
	}
	epochDigs, epochSecs, err := runFleet(prog, spans, region.IndexEpoch, fleetStreams, fleetShards, fleetIntervals, samples)
	if err != nil {
		return nil, fmt.Errorf("fleet epoch: %w", err)
	}
	for s := range listDigs {
		if listDigs[s] != epochDigs[s] {
			rep.DigestsIdentical = false
		}
	}
	total := float64(fleetStreams) * float64(fleetIntervals)
	rep.Fleet = &fleetResult{
		Streams:         fleetStreams,
		Shards:          fleetShards,
		Intervals:       fleetIntervals,
		Regions:         fleetRegions,
		ListIntervalSec: total / listSecs,
		EpochIntervalSc: total / epochSecs,
		EpochSpeedup:    listSecs / epochSecs,
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregion:", err)
	os.Exit(1)
}
