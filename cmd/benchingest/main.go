// Command benchingest measures ingest fleet throughput — streams/sec of
// fully processed sampling intervals through the full detector stack — at
// several shard counts, and emits the result as JSON (the committed
// BENCH_ingest.json). Before any timing is reported, the per-stream
// verdict digests of every shard count are verified identical to the
// 1-shard run: a throughput number from a fleet that changed its answers
// would be meaningless.
//
// Usage:
//
//	go run ./cmd/benchingest > BENCH_ingest.json
//	go run ./cmd/benchingest -full   # longer runs (minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"regionmon/internal/ingest"
	"regionmon/internal/pipeline"
	"regionmon/internal/soak"
)

type run struct {
	Shards        int     `json:"shards"`
	Seconds       float64 `json:"seconds"`
	IntervalsSec  float64 `json:"intervals_per_second"`
	SpeedupVsSolo float64 `json:"speedup_vs_1_shard"`
	// Efficiency normalizes the speedup by the parallelism actually
	// available, min(shards, cpus): near 1.0 means near-linear scaling
	// up to the machine's core count, on any machine.
	Efficiency float64 `json:"parallel_efficiency"`
	Dropped    uint64  `json:"dropped"`
}

type report struct {
	Workload struct {
		Streams            int `json:"streams"`
		IntervalsPerStream int `json:"intervals_per_stream"`
		SamplesPerInterval int `json:"samples_per_interval"`
	} `json:"workload"`
	Scale   string `json:"scale"` // "quick" or "full"
	Machine struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus"`
	} `json:"machine"`
	Deterministic bool  `json:"cross_shard_digests_identical"`
	Runs          []run `json:"runs"`
}

func main() {
	var (
		full      = flag.Bool("full", false, "longer runs for stabler numbers")
		streams   = flag.Int("streams", 64, "fleet stream count")
		intervals = flag.Int("intervals", 2000, "intervals per stream (quick scale)")
		samples   = flag.Int("samples", 96, "samples per interval")
	)
	flag.Parse()

	scale := "quick"
	if *full {
		*intervals *= 10
		scale = "full"
	}
	shardCounts := []int{1, 4, 16, 64}

	rep, err := buildReport(*streams, *intervals, *samples, scale, shardCounts)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// driveFleet pushes the full deterministic workload through a fleet with
// the given shard count and returns the per-stream digests plus drop
// count. PushWait keeps the comparison lossless: every shard count
// processes exactly the same intervals.
func driveFleet(streams, intervals, samples, shards int) ([]uint64, uint64, error) {
	_, loops, err := soak.BuildProgram()
	if err != nil {
		return nil, 0, err
	}
	gens := make([]*soak.Workload, streams)
	for s := range gens {
		gens[s] = soak.NewWorkload(1+uint64(s)*0x9e3779b97f4a7c15, loops, samples)
	}
	f, err := ingest.NewFleet(streams, ingest.Config{
		Shards:     shards,
		MaxSamples: samples,
		Build: func(stream int) (*pipeline.Pipeline, error) {
			prog, _, err := soak.BuildProgram()
			if err != nil {
				return nil, err
			}
			return soak.NewStack(prog)
		},
	})
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	for i := 0; i < intervals; i++ {
		for s := range gens {
			f.PushWait(s, gens[s].Interval(i))
		}
	}
	f.Drain()
	digs := make([]uint64, streams)
	for s := range digs {
		info, err := f.StreamInfo(s)
		if err != nil {
			return nil, 0, err
		}
		digs[s] = info.Digest
	}
	dropped := f.Stats().Dropped
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	return digs, dropped, nil
}

func buildReport(streams, intervals, samples int, scale string, shardCounts []int) (*report, error) {
	var rep report
	rep.Workload.Streams = streams
	rep.Workload.IntervalsPerStream = intervals
	rep.Workload.SamplesPerInterval = samples
	rep.Scale = scale
	rep.Machine.GOOS = runtime.GOOS
	rep.Machine.GOARCH = runtime.GOARCH
	rep.Machine.CPUs = runtime.NumCPU()
	rep.Deterministic = true

	total := float64(streams) * float64(intervals)
	var ref []uint64
	var soloSecs float64
	for _, shards := range shardCounts {
		if shards > streams {
			continue
		}
		t0 := time.Now() //lint:allow determinism -- benchmark harness measures real elapsed time
		digs, dropped, err := driveFleet(streams, intervals, samples, shards)
		if err != nil {
			return nil, fmt.Errorf("%d shards: %w", shards, err)
		}
		//lint:allow determinism -- benchmark harness measures real elapsed time
		secs := time.Since(t0).Seconds()
		if ref == nil {
			ref = digs
			soloSecs = secs
		} else {
			for s := range ref {
				if digs[s] != ref[s] {
					rep.Deterministic = false
				}
			}
		}
		avail := shards
		if cpus := runtime.NumCPU(); avail > cpus {
			avail = cpus
		}
		rep.Runs = append(rep.Runs, run{
			Shards:        shards,
			Seconds:       secs,
			IntervalsSec:  total / secs,
			SpeedupVsSolo: soloSecs / secs,
			Efficiency:    soloSecs / secs / float64(avail),
			Dropped:       dropped,
		})
	}
	if !rep.Deterministic {
		return &rep, fmt.Errorf("per-stream digests differ across shard counts; throughput numbers withheld")
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchingest:", err)
	os.Exit(1)
}
