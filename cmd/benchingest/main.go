// Command benchingest measures ingest fleet throughput — streams/sec of
// fully processed sampling intervals through the full detector stack — at
// several shard counts, for both the per-item push path (one ring
// reserve/publish/wake per interval) and the batched path (PushBatchWait,
// one reservation and wake per -batch intervals), and emits the result as
// JSON (the committed BENCH_ingest.json). Before any timing is reported,
// the per-stream verdict digests of every run in a workload — every shard
// count, both push modes, every repetition — are verified identical to the
// first: a throughput number from a fleet that changed its answers would
// be meaningless.
//
// By default two workloads run, because one number would mislead:
//
//   - full-stack (64 streams, 96-sample intervals): per-interval detector
//     compute dominates (~90% of cycles), so this measures the detector
//     stack and any push-path difference sits inside run-to-run noise.
//   - transport-bound (256 streams, 8-sample intervals): small intervals
//     and many streams per shard expose what the batch path actually
//     amortizes — per-push ring traffic and wake churn, plus the cache
//     locality of a worker observing a run of same-stream intervals
//     instead of interleaving every stream's detector state.
//
// Passing any of -streams/-intervals/-samples replaces both with a single
// custom workload. Each configuration runs -reps times and the median
// elapsed time is reported, because single runs on a busy machine swing
// by ±10%.
//
// Parallel-efficiency methodology: speedup is normalized by the
// parallelism actually available, min(shards, GOMAXPROCS, NumCPU). On a
// machine where a multi-shard run has no parallelism to exploit (1 CPU),
// the efficiency field is omitted and the reason logged to stderr —
// reporting "efficiency 0.25" for 4 shards on 1 CPU would describe the
// machine, not the code.
//
// Usage:
//
//	go run ./cmd/benchingest > BENCH_ingest.json
//	go run ./cmd/benchingest -full           # longer runs (minutes)
//	go run ./cmd/benchingest -mode batched   # batched path only (smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"regionmon/internal/hpm"
	"regionmon/internal/ingest"
	"regionmon/internal/pipeline"
	"regionmon/internal/soak"
)

type run struct {
	// Mode is "per-push" (one PushWait per interval) or "batched"
	// (PushBatchWait, Batch intervals per call).
	Mode string `json:"mode"`
	// Batch is the intervals per push call (1 in per-push mode).
	Batch  int `json:"batch"`
	Shards int `json:"shards"`
	// Seconds is the median elapsed time across repetitions.
	Seconds      float64 `json:"seconds"`
	IntervalsSec float64 `json:"intervals_per_second"`
	// SpeedupVsSolo compares against the same mode's 1-shard run.
	SpeedupVsSolo float64 `json:"speedup_vs_1_shard"`
	// Efficiency normalizes the speedup by the parallelism actually
	// available, min(shards, gomaxprocs, cpus): near 1.0 means
	// near-linear scaling up to the machine's core count, on any
	// machine. Omitted (with a stderr note) when a multi-shard run has
	// no parallelism available to measure against.
	Efficiency *float64 `json:"parallel_efficiency,omitempty"`
	// BatchedSpeedup compares this batched run against the per-push run
	// at the same shard count (only set when both modes ran).
	BatchedSpeedup float64 `json:"batched_speedup_vs_per_push,omitempty"`
	Dropped        uint64  `json:"dropped"`
}

type workloadSpec struct {
	Streams            int `json:"streams"`
	IntervalsPerStream int `json:"intervals_per_stream"`
	SamplesPerInterval int `json:"samples_per_interval"`
}

type workloadReport struct {
	Name string       `json:"name"`
	Note string       `json:"note,omitempty"`
	Spec workloadSpec `json:"workload"`
	Runs []run        `json:"runs"`
}

type report struct {
	Scale string `json:"scale"` // "quick" or "full"
	// Reps is the repetitions per configuration; Seconds is their median.
	Reps    int `json:"reps"`
	Machine struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		CPUs       int    `json:"cpus"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"machine"`
	// EfficiencyNote records why parallel_efficiency is absent from some
	// runs (empty when every run carries one).
	EfficiencyNote string           `json:"efficiency_note,omitempty"`
	Deterministic  bool             `json:"cross_run_digests_identical"`
	Workloads      []workloadReport `json:"workloads"`
}

func main() {
	var (
		full      = flag.Bool("full", false, "longer runs for stabler numbers")
		streams   = flag.Int("streams", 64, "custom workload stream count")
		intervals = flag.Int("intervals", 2000, "custom workload intervals per stream (quick scale)")
		samples   = flag.Int("samples", 96, "custom workload samples per interval")
		batch     = flag.Int("batch", 16, "intervals per PushBatchWait call in batched mode")
		mode      = flag.String("mode", "all", "which push paths to measure: all, perpush or batched")
		reps      = flag.Int("reps", 3, "repetitions per configuration (median reported)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mode != "all" && *mode != "perpush" && *mode != "batched" {
		fatal(fmt.Errorf("unknown -mode %q (want all, perpush or batched)", *mode))
	}
	if *reps < 1 {
		fatal(fmt.Errorf("-reps must be positive, got %d", *reps))
	}

	scaleMul, scale := 1, "quick"
	if *full {
		scaleMul, scale = 10, "full"
	}

	// Any explicit workload flag replaces the two built-in profiles with
	// one custom workload.
	custom := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "streams" || f.Name == "intervals" || f.Name == "samples" {
			custom = true
		}
	})
	var profiles []workloadReport
	if custom {
		profiles = []workloadReport{{
			Name: "custom",
			Spec: workloadSpec{*streams, *intervals * scaleMul, *samples},
		}}
	} else {
		profiles = []workloadReport{
			{
				Name: "full-stack",
				Note: "per-interval detector compute dominates; push-path differences sit inside noise here",
				Spec: workloadSpec{64, 2000 * scaleMul, 96},
			},
			{
				Name: "transport-bound",
				Note: "small intervals and many streams per shard expose the per-push ring, wake and detector-state cache costs the batch path amortizes",
				Spec: workloadSpec{256, 1000 * scaleMul, 8},
			},
		}
	}

	rep, err := buildReport(profiles, *batch, *mode, scale, *reps, []int{1, 4, 16, 64}, os.Stderr)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// driveFleet pushes the full deterministic workload through a fleet with
// the given shard count and returns the per-stream digests plus drop
// count. batch==1 drives the per-item PushWait path; batch>1 generates
// runs of intervals into preallocated overflows and pushes each run with
// one PushBatchWait call. Both are lossless, so every configuration
// processes exactly the same intervals.
func driveFleet(spec workloadSpec, shards, batch int) ([]uint64, uint64, error) {
	_, loops, err := soak.BuildProgram()
	if err != nil {
		return nil, 0, err
	}
	gens := make([]*soak.Workload, spec.Streams)
	for s := range gens {
		gens[s] = soak.NewWorkload(1+uint64(s)*0x9e3779b97f4a7c15, loops, spec.SamplesPerInterval)
	}
	f, err := ingest.NewFleet(spec.Streams, ingest.Config{
		Shards:     shards,
		MaxSamples: spec.SamplesPerInterval,
		Build: func(stream int) (*pipeline.Pipeline, error) {
			prog, _, err := soak.BuildProgram()
			if err != nil {
				return nil, err
			}
			return soak.NewStack(prog)
		},
	})
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	intervals := spec.IntervalsPerStream
	if batch <= 1 {
		for i := 0; i < intervals; i++ {
			for s := range gens {
				f.PushWait(s, gens[s].Interval(i))
			}
		}
	} else {
		bufs := make([][]*hpm.Overflow, spec.Streams)
		for s := range bufs {
			bufs[s] = soak.NewOverflowBatch(batch, spec.SamplesPerInterval)
		}
		for base := 0; base < intervals; base += batch {
			n := batch
			if base+n > intervals {
				n = intervals - base
			}
			for s := range gens {
				bb := bufs[s][:n]
				for k := range bb {
					gens[s].IntervalInto(base+k, bb[k])
				}
				f.PushBatchWait(s, bb)
			}
		}
	}
	f.Drain()
	digs := make([]uint64, spec.Streams)
	for s := range digs {
		info, err := f.StreamInfo(s)
		if err != nil {
			return nil, 0, err
		}
		digs[s] = info.Digest
	}
	dropped := f.Stats().Dropped
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	return digs, dropped, nil
}

// availParallelism is the parallelism a run with the given shard count can
// actually exploit: min(shards, GOMAXPROCS, NumCPU).
func availParallelism(shards int) int {
	avail := shards
	if p := runtime.GOMAXPROCS(0); avail > p {
		avail = p
	}
	if cpus := runtime.NumCPU(); avail > cpus {
		avail = cpus
	}
	return avail
}

func buildReport(profiles []workloadReport, batch int, mode, scale string, reps int, shardCounts []int, log *os.File) (*report, error) {
	var rep report
	rep.Scale = scale
	rep.Reps = reps
	rep.Machine.GOOS = runtime.GOOS
	rep.Machine.GOARCH = runtime.GOARCH
	rep.Machine.CPUs = runtime.NumCPU()
	rep.Machine.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Deterministic = true

	modes := []int{1, batch} // batch sizes to run: 1 = per-push
	switch mode {
	case "perpush":
		modes = []int{1}
	case "batched":
		modes = []int{batch}
	}

	for _, wl := range profiles {
		total := float64(wl.Spec.Streams) * float64(wl.Spec.IntervalsPerStream)
		perPushSecs := map[int]float64{} // shard count -> per-push median seconds
		var ref []uint64                 // first run's digests; every later run must match
		for _, b := range modes {
			runMode := "per-push"
			if b > 1 {
				runMode = "batched"
			}
			var soloSecs float64
			for _, shards := range shardCounts {
				if shards > wl.Spec.Streams {
					continue
				}
				var dropped uint64
				times := make([]float64, 0, reps)
				for rc := 0; rc < reps; rc++ {
					t0 := time.Now() //lint:allow determinism -- benchmark harness measures real elapsed time
					digs, drop, err := driveFleet(wl.Spec, shards, b)
					if err != nil {
						return nil, fmt.Errorf("%s %s, %d shards: %w", wl.Name, runMode, shards, err)
					}
					//lint:allow determinism -- benchmark harness measures real elapsed time
					times = append(times, time.Since(t0).Seconds())
					dropped = drop
					if ref == nil {
						ref = digs
					} else {
						for s := range ref {
							if digs[s] != ref[s] {
								rep.Deterministic = false
							}
						}
					}
				}
				secs := median(times)
				if soloSecs == 0 {
					soloSecs = secs
				}
				r := run{
					Mode:          runMode,
					Batch:         b,
					Shards:        shards,
					Seconds:       secs,
					IntervalsSec:  total / secs,
					SpeedupVsSolo: soloSecs / secs,
					Dropped:       dropped,
				}
				if avail := availParallelism(shards); shards > 1 && avail == 1 {
					// No parallelism available: speedup here measures ring and
					// scheduling overhead, not scaling. Skip the claim.
					rep.EfficiencyNote = "parallel_efficiency omitted for multi-shard runs: min(gomaxprocs, cpus) = 1, so multi-shard speedup measures overhead, not scaling"
					if log != nil {
						fmt.Fprintf(log, "benchingest: skipping parallel_efficiency for %s %s %d shards: only 1 CPU available\n", wl.Name, runMode, shards)
					}
				} else {
					eff := soloSecs / secs / float64(avail)
					r.Efficiency = &eff
				}
				if b > 1 {
					if pp, ok := perPushSecs[shards]; ok {
						r.BatchedSpeedup = pp / secs
					}
				} else {
					perPushSecs[shards] = secs
				}
				wl.Runs = append(wl.Runs, r)
			}
		}
		rep.Workloads = append(rep.Workloads, wl)
	}
	if !rep.Deterministic {
		return &rep, fmt.Errorf("per-stream digests differ across runs; throughput numbers withheld")
	}
	return &rep, nil
}

// median sorts times in place and returns their median. With an even
// count the two middle repetitions are averaged; picking one of them
// (the old behavior) biased every even -reps run toward its slower
// middle sample.
func median(times []float64) float64 {
	sort.Float64s(times)
	n := len(times)
	if n%2 == 1 {
		return times[n/2]
	}
	return (times[n/2-1] + times[n/2]) / 2
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchingest:", err)
	os.Exit(1)
}
