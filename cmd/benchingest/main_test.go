package main

import "testing"

// TestMedianEvenReps pins the even-count fix: the two middle repetitions
// are averaged instead of reporting the upper-middle one.
func TestMedianEvenReps(t *testing.T) {
	cases := []struct {
		name  string
		times []float64
		want  float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"even-unsorted", []float64{10, 2}, 6},
		{"single", []float64{7}, 7},
		{"even-equal-middles", []float64{1, 5, 5, 9}, 5},
	}
	for _, c := range cases {
		if got := median(c.times); got != c.want {
			t.Errorf("%s: median(%v) = %v, want %v", c.name, c.times, got, c.want)
		}
	}
}

// TestBuildReportMedianReps drives buildReport end-to-end on a tiny
// deterministic workload with an even repetition count: the digests must
// agree across reps and the reported Seconds must be a valid median of
// the measured repetitions (in particular, finite and positive).
func TestBuildReportMedianReps(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real ingest fleet")
	}
	profiles := []workloadReport{{
		Name: "tiny",
		Spec: workloadSpec{Streams: 2, IntervalsPerStream: 8, SamplesPerInterval: 8},
	}}
	rep, err := buildReport(profiles, 4, "perpush", "quick", 2, []int{1}, nil)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	if !rep.Deterministic {
		t.Fatal("tiny workload digests differ across repetitions")
	}
	if rep.Reps != 2 || len(rep.Workloads) != 1 || len(rep.Workloads[0].Runs) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	r := rep.Workloads[0].Runs[0]
	if r.Seconds <= 0 || r.IntervalsSec <= 0 {
		t.Errorf("run timing not positive: %+v", r)
	}
}
