// Command phaselint runs the repo's contract analyzers over the module:
//
//   - singleowner: values of //lint:single-owner types must not leak into
//     goroutines, channels, or package-level variables;
//   - determinism: no wall-clock reads, no global math/rand draws, and no
//     map-range iteration feeding ordered results in deterministic packages
//     (annotate intentional timing sites with //lint:allow determinism);
//   - hotpath: no allocating constructs in ObserveInterval/ProcessOverflow
//     or anything they statically call (Snapshot/Restore and the
//     AppendSnapshot/RestoreSnapshot pair are cold by contract and stop
//     the walk);
//   - payloadswitch: type switches over //lint:payload types must cover the
//     whole registry or carry a default.
//
// Usage:
//
//	go run ./cmd/phaselint [./...]
//
// The only accepted package pattern is ./... (the whole module); the tool
// exists to hold the global invariants, so partial runs are not offered.
// Exits 1 if any analyzer reports a finding, printing one
// file:line:col: [analyzer] message line per finding.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/determinism"
	"regionmon/internal/lint/hotpath"
	"regionmon/internal/lint/loader"
	"regionmon/internal/lint/payloadswitch"
	"regionmon/internal/lint/singleowner"
)

// Suite returns the analyzers phaselint runs, with determinism scoped to
// the packages whose outputs the experiment harness asserts byte-stable:
// the facade, internal detectors/pipeline, and the CLIs that print reports.
// examples/ are excluded — they are documentation, free to print timings.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		singleowner.Analyzer,
		determinism.NewAnalyzer(
			"regionmon",
			"regionmon/internal/...",
			"regionmon/cmd/...",
		),
		hotpath.Analyzer,
		payloadswitch.Analyzer,
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phaselint:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	for _, a := range args {
		if a != "./..." {
			return fmt.Errorf("unsupported argument %q (phaselint always checks the whole module; pass ./... or nothing)", a)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := loader.FindModuleRoot(wd)
	if err != nil {
		return err
	}
	prog, err := loader.LoadModule(root)
	if err != nil {
		return err
	}
	findings, err := analysis.Run(prog, Suite())
	if err != nil {
		return err
	}
	for _, f := range findings {
		pos := prog.Fset.Position(f.Diagnostic.Pos)
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s: [%s] %s\n", pos, f.Analyzer.Name, f.Diagnostic.Message)
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d finding(s)", len(findings))
	}
	return nil
}
