// Command phaselint runs the repo's contract analyzers over the module:
//
//   - singleowner: values of //lint:single-owner types must not leak into
//     goroutines, channels, or package-level variables;
//   - determinism: no wall-clock reads, no global math/rand draws, and no
//     map-range iteration feeding ordered results in deterministic packages
//     (annotate intentional timing sites with //lint:allow determinism);
//   - hotpath: no allocating constructs in ObserveInterval/ProcessOverflow
//     or anything they statically call (Snapshot/Restore and the
//     AppendSnapshot/RestoreSnapshot pair are cold by contract and stop
//     the walk);
//   - payloadswitch: type switches over //lint:payload types must cover the
//     whole registry or carry a default;
//   - snapshotsafe: every field of a snapshotting type is referenced on
//     both the encode and decode paths or marked //lint:config;
//   - boundedstate: slice/map fields in detector state closures may not
//     grow on the monitoring hot path unless marked //lint:bounded;
//   - batchwrap: //lint:wraps-declared per-item entry points stay trivial
//     wrappers around their batch cores;
//   - atomicpair: //lint:atomic fields are only touched through
//     sync/atomic.
//
// The list itself lives in internal/lint.Suite(); this command and the
// clean-module self-test both consume it.
//
// Usage:
//
//	go run ./cmd/phaselint [-json] [./...]
//
// The only accepted package pattern is ./... (the whole module); the tool
// exists to hold the global invariants, so partial runs are not offered.
// Analyzers run per-package in parallel, bounded by GOMAXPROCS, and the
// total wall time is reported on stderr. Exits 1 if any analyzer reports
// a finding, printing one `file:line:col: [analyzer] message` line per
// finding — or, with -json, one JSON object per line with fields
// file/line/col/analyzer/message, for CI annotation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"regionmon/internal/lint"
	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/loader"
)

// Record is the -json output schema, one object per finding per line.
type Record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phaselint:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	jsonOut := false
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "./...":
		default:
			return fmt.Errorf("unsupported argument %q (phaselint always checks the whole module; pass ./... or nothing)", a)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := loader.FindModuleRoot(wd)
	if err != nil {
		return err
	}
	prog, err := loader.LoadModule(root)
	if err != nil {
		return err
	}
	suite := lint.Suite()
	start := time.Now() //lint:allow determinism -- wall-time report, stderr only
	findings, err := analysis.Run(prog, suite)
	if err != nil {
		return err
	}
	elapsed := time.Since(start) //lint:allow determinism -- wall-time report, stderr only
	fmt.Fprintf(os.Stderr, "phaselint: %d analyzers × %d packages on %d workers in %dms\n",
		len(suite), len(prog.Packages), runtime.GOMAXPROCS(0), elapsed.Milliseconds())

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		rec := toRecord(root, prog, f)
		if jsonOut {
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rec.File, rec.Line, rec.Col, rec.Analyzer, rec.Message)
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d finding(s)", len(findings))
	}
	return nil
}

// toRecord renders one finding with its path relative to the module root.
func toRecord(root string, prog *loader.Program, f analysis.Finding) Record {
	pos := prog.Fset.Position(f.Diagnostic.Pos)
	file := pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil {
		file = rel
	}
	return Record{
		File:     filepath.ToSlash(file),
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: f.Analyzer.Name,
		Message:  f.Diagnostic.Message,
	}
}
