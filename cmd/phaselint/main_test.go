package main

import (
	"testing"

	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/loader"
)

// TestModuleIsClean runs the full phaselint suite over the module and
// requires zero findings — the machine-checked form of the concurrency,
// determinism and hot-path contracts the docs promise.
func TestModuleIsClean(t *testing.T) {
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(prog, Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: [%s] %s", prog.Fset.Position(f.Diagnostic.Pos), f.Analyzer.Name, f.Diagnostic.Message)
	}
}

// TestRejectsPartialPatterns pins the ./...-only contract.
func TestRejectsPartialPatterns(t *testing.T) {
	if err := run([]string{"./internal/..."}); err == nil {
		t.Fatal("run accepted a partial package pattern; want an error")
	}
}
