package main

import (
	"encoding/json"
	"testing"

	"regionmon/internal/lint"
	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/loader"
)

// TestModuleIsClean runs the full phaselint suite over the module and
// requires zero findings — the machine-checked form of the concurrency,
// determinism, hot-path, snapshot, bounded-state, batch-wrapper and
// atomic-discipline contracts the docs promise. The suite comes from the
// internal/lint registry, so a newly registered analyzer is covered here
// automatically.
func TestModuleIsClean(t *testing.T) {
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	suite := lint.Suite()
	if len(suite) < 8 {
		t.Fatalf("registry lists %d analyzers, want at least 8", len(suite))
	}
	findings, err := analysis.Run(prog, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: [%s] %s", prog.Fset.Position(f.Diagnostic.Pos), f.Analyzer.Name, f.Diagnostic.Message)
	}
}

// TestRejectsPartialPatterns pins the ./...-only contract.
func TestRejectsPartialPatterns(t *testing.T) {
	if err := run([]string{"./internal/..."}); err == nil {
		t.Fatal("run accepted a partial package pattern; want an error")
	}
}

// TestJSONSchema pins the -json record layout CI consumes: field names,
// order, and types must not drift.
func TestJSONSchema(t *testing.T) {
	rec := Record{
		File:     "internal/ingest/ring.go",
		Line:     42,
		Col:      7,
		Analyzer: "atomicpair",
		Message:  "field head is marked //lint:atomic",
	}
	got, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/ingest/ring.go","line":42,"col":7,"analyzer":"atomicpair","message":"field head is marked //lint:atomic"}`
	if string(got) != want {
		t.Errorf("JSON schema drifted:\n got %s\nwant %s", got, want)
	}
	var back Record
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Errorf("round trip lost data: %+v != %+v", back, rec)
	}
}
