package main

import (
	"strings"
	"testing"

	"regionmon/internal/changepoint"
)

func gateCfg() changepoint.EngineConfig {
	return changepoint.EngineConfig{Permutations: 199, Alpha: 0.05, MinSegment: 3}
}

// steppedTrajectory builds one series flat at base with the last
// stepLen points shifted to base*mul.
func steppedTrajectory(name string, n, stepLen int, base, mul float64) *trajectory {
	jitter := []float64{0.002, -0.002, 0.001, -0.001, 0.003, -0.003, 0}
	xs := make([]float64, n)
	for i := range xs {
		b := base
		if i >= n-stepLen {
			b = base * mul
		}
		xs[i] = b + jitter[i%len(jitter)]
	}
	tr := &trajectory{
		series: map[string][]float64{name: xs},
		latest: map[string]bool{name: true},
	}
	finishTrajectory(tr)
	return tr
}

func TestWatchGatesOnFreshStep(t *testing.T) {
	tr := steppedTrajectory("pipe.seconds", 24, 3, 1.0, 1.5)
	report, regressed := watch(tr, gateCfg(), 1, false)
	if !regressed {
		t.Fatalf("50%% step in the last 3 versions did not gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION pipe.seconds") || !strings.Contains(report, "FAIL") {
		t.Errorf("report missing regression lines:\n%s", report)
	}
	if !strings.Contains(report, "regime change at version 21/24") {
		t.Errorf("report misplaces the change point:\n%s", report)
	}
}

func TestWatchQuietOnSteadyTrajectory(t *testing.T) {
	tr := steppedTrajectory("pipe.seconds", 24, 0, 1.0, 1)
	report, regressed := watch(tr, gateCfg(), 1, false)
	if regressed {
		t.Fatalf("steady trajectory gated:\n%s", report)
	}
	if !strings.Contains(report, "ok: no change point") {
		t.Errorf("report missing ok line:\n%s", report)
	}
}

// TestWatchOldShiftDoesNotGate: a regime change that completed well
// before the freshness window is history, not a verdict on this PR.
func TestWatchOldShiftDoesNotGate(t *testing.T) {
	tr := steppedTrajectory("pipe.seconds", 24, 10, 1.0, 1.5)
	report, regressed := watch(tr, gateCfg(), 1, false)
	if regressed {
		t.Fatalf("10-version-old shift gated the latest PR:\n%s", report)
	}
	if !strings.Contains(report, "1 earlier shift(s)") {
		t.Errorf("old shift not recorded:\n%s", report)
	}
	// Verbose mode names it.
	verboseRep, _ := watch(tr, gateCfg(), 1, true)
	if !strings.Contains(verboseRep, "earlier shift pipe.seconds") {
		t.Errorf("verbose report missing the earlier shift:\n%s", verboseRep)
	}
}

// TestWatchStaleMetricDoesNotGate: a series absent from the newest
// version cannot indict the latest PR, however fresh its shift looks.
func TestWatchStaleMetricDoesNotGate(t *testing.T) {
	tr := steppedTrajectory("gone.seconds", 24, 3, 1.0, 1.5)
	tr.latest["gone.seconds"] = false
	if report, regressed := watch(tr, gateCfg(), 1, false); regressed {
		t.Fatalf("metric missing from the latest version gated:\n%s", report)
	}
}

func TestWatchVacuousOnShortHistory(t *testing.T) {
	tr := steppedTrajectory("pipe.seconds", 4, 2, 1.0, 2)
	report, regressed := watch(tr, gateCfg(), 1, false)
	if regressed {
		t.Fatalf("4-point history gated:\n%s", report)
	}
	if !strings.Contains(report, "vacuously") {
		t.Errorf("short history not reported as vacuous:\n%s", report)
	}
}

// TestWatchDeterministic: the report is byte-identical across runs —
// the property that lets CI diff two gate outputs.
func TestWatchDeterministic(t *testing.T) {
	tr := steppedTrajectory("pipe.seconds", 24, 3, 1.0, 1.5)
	tr.series["ingest.seconds"] = tr.series["pipe.seconds"]
	tr.latest["ingest.seconds"] = true
	finishTrajectory(tr)
	a, ra := watch(tr, gateCfg(), 7, true)
	b, rb := watch(tr, gateCfg(), 7, true)
	if a != b || ra != rb {
		t.Fatalf("two identical watch runs diverged:\n%s\n---\n%s", a, b)
	}
}

func TestFlattenJSONLabelsAndLeaves(t *testing.T) {
	raw := []byte(`{
		"scale": "quick",
		"machine": {"cpus": 4},
		"deterministic": true,
		"runs": [
			{"mode": "per-push", "shards": 1, "seconds": 1.5},
			{"mode": "batched", "shards": 4, "seconds": 0.75}
		],
		"bare": [10, 20]
	}`)
	flat, err := flattenJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"machine.cpus":                         4,
		"runs[mode=per-push,shards=1].seconds": 1.5,
		"runs[mode=per-push,shards=1].shards":  1,
		"runs[mode=batched,shards=4].seconds":  0.75,
		"runs[mode=batched,shards=4].shards":   4,
		"bare[0]":                              10,
		"bare[1]":                              20,
	}
	if len(flat) != len(want) {
		t.Fatalf("flattened to %d leaves, want %d: %v", len(flat), len(want), flat)
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %v, want %v", k, flat[k], v)
		}
	}
}

// TestMergeVersionsSchemaDrift: a metric that appears in only some
// versions contributes exactly those versions, and only metrics in the
// newest version are eligible to gate.
func TestMergeVersionsSchemaDrift(t *testing.T) {
	tr := &trajectory{series: map[string][]float64{}, latest: map[string]bool{}}
	mergeVersions(tr, "B.json", []map[string]float64{
		{"old.seconds": 1, "runs.seconds": 10},
		{"old.seconds": 2, "runs.seconds": 11},
		{"runs.seconds": 12, "new.seconds": 5},
	})
	finishTrajectory(tr)
	if got := tr.series["B.json :: runs.seconds"]; len(got) != 3 || got[2] != 12 {
		t.Errorf("surviving series = %v, want 3 values ending 12", got)
	}
	if got := tr.series["B.json :: old.seconds"]; len(got) != 2 {
		t.Errorf("dropped metric series = %v, want 2 values", got)
	}
	if tr.latest["B.json :: old.seconds"] {
		t.Error("metric absent from the newest version marked latest")
	}
	if !tr.latest["B.json :: new.seconds"] || !tr.latest["B.json :: runs.seconds"] {
		t.Error("newest-version metrics not marked latest")
	}
}

func TestLoadSeriesFileFixtures(t *testing.T) {
	tr, err := loadSeriesFile("testdata/step.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, regressed := watch(tr, gateCfg(), 1, false); !regressed {
		t.Error("step fixture did not gate")
	}
	tr, err = loadSeriesFile("testdata/flat.json")
	if err != nil {
		t.Fatal(err)
	}
	if report, regressed := watch(tr, gateCfg(), 1, false); regressed {
		t.Errorf("flat fixture gated:\n%s", report)
	}
	if _, err := loadSeriesFile("testdata/nope.json"); err == nil {
		t.Error("missing series file accepted")
	}
}

func TestReportMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
	xs := []float64{5, 1}
	if median(xs); xs[0] != 5 {
		t.Error("median reordered its input")
	}
}
