// Command benchwatch is the perf-regression gate: it dogfoods the
// E-divisive change-point engine (internal/changepoint) over the repo's
// own committed benchmark trajectory. Each BENCH_*.json file is read at
// every commit that touched it (plus the working tree, when it differs),
// every numeric leaf becomes one metric series across those versions,
// and the offline engine tests each series for distributional shifts.
// When a confirmed change point's new regime starts within the last
// -min-segment versions — the earliest a shift is statistically
// attributable — the shift "lands on the latest PR": benchwatch prints a
// readable report and exits nonzero, turning the perf history into a
// CI-checked invariant like the digest and lint gates.
//
// Everything is deterministic: the permutation PRNG is seeded from
// -seed and the metric name, metric names sort lexicographically, and
// two runs over the same history emit byte-identical reports.
//
// A repository with too little history (or a shallow CI checkout) is
// reported and passes: a gate that cannot see the trajectory must not
// invent a verdict about it.
//
// Usage:
//
//	go run ./cmd/benchwatch                     # gate the checked-in BENCH files
//	go run ./cmd/benchwatch -series series.json # gate explicit series (smoke tests)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"regionmon/internal/changepoint"
)

func main() {
	var (
		repo    = flag.String("repo", ".", "repository root holding the trajectory files")
		files   = flag.String("files", "BENCH_pipeline.json,BENCH_ingest.json,BENCH_region.json", "comma-separated trajectory files (paths relative to -repo)")
		series  = flag.String("series", "", "JSON file of explicit metric series ({\"name\": [values...]}); bypasses git history")
		perms   = flag.Int("permutations", 199, "permutations per significance test")
		alpha   = flag.Float64("alpha", 0.05, "significance level for a change point")
		minSeg  = flag.Int("min-segment", 3, "minimum observations per regime (and the freshness window of the gate)")
		seed    = flag.Uint64("seed", 1, "base PRNG seed (per-metric seeds derive from it)")
		verbose = flag.Bool("v", false, "also report change points that predate the freshness window")
	)
	flag.Parse()

	cfg := changepoint.EngineConfig{Permutations: *perms, Alpha: *alpha, MinSegment: *minSeg}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var (
		tr  *trajectory
		err error
	)
	if *series != "" {
		tr, err = loadSeriesFile(*series)
	} else {
		tr, err = loadGitTrajectory(*repo, strings.Split(*files, ","))
	}
	if err != nil {
		fatal(err)
	}

	report, regressed := watch(tr, cfg, *seed, *verbose)
	os.Stdout.WriteString(report)
	if regressed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchwatch:", err)
	os.Exit(2)
}

// trajectory is the assembled input: named metric series, each a value
// per version oldest-first, plus human-readable provenance notes.
type trajectory struct {
	names  []string             // sorted metric names
	series map[string][]float64 // values per version, oldest first
	latest map[string]bool      // metric present in the newest version
	notes  []string             // provenance lines for the report header
}

// watch runs the engine over every series and renders the gate report.
// It returns the report text and whether a fresh change point fired the
// gate. A series gates only when its newest observation comes from the
// newest version: a metric that vanished from the current schema cannot
// indict the current PR.
func watch(tr *trajectory, cfg changepoint.EngineConfig, seed uint64, verbose bool) (string, bool) {
	var b strings.Builder
	b.WriteString("benchwatch: perf-trajectory change-point gate\n")
	for _, n := range tr.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}

	minPoints := 2 * cfg.MinSegment
	tested, fresh, stale := 0, 0, 0
	var body strings.Builder
	for _, name := range tr.names {
		xs := tr.series[name]
		if len(xs) < minPoints {
			continue
		}
		tested++
		cps, err := changepoint.Detect(xs, seed^fnv64(name), cfg)
		if err != nil {
			// Config was validated up front; a per-series failure is a bug.
			fmt.Fprintf(&b, "  ERROR %s: %v\n", name, err)
			continue
		}
		for _, cp := range cps {
			isFresh := tr.latest[name] && cp.Index >= len(xs)-cfg.MinSegment
			if isFresh {
				fresh++
				fmt.Fprintf(&body, "  REGRESSION %s\n", name)
			} else {
				stale++
				if !verbose {
					continue
				}
				fmt.Fprintf(&body, "  earlier shift %s\n", name)
			}
			fmt.Fprintf(&body, "    regime change at version %d/%d (p=%.3f, stat=%.4g): median %.6g -> %.6g\n",
				cp.Index, len(xs), cp.PValue, cp.Stat, median(xs[:cp.Index]), median(xs[cp.Index:]))
		}
	}

	fmt.Fprintf(&b, "  %d series, %d with enough history (>= %d points)\n", len(tr.names), tested, minPoints)
	b.WriteString(body.String())
	switch {
	case fresh > 0:
		fmt.Fprintf(&b, "FAIL: %d change point(s) land on the latest PR\n", fresh)
	case tested == 0:
		b.WriteString("ok: not enough trajectory history to test (gate passes vacuously)\n")
	default:
		fmt.Fprintf(&b, "ok: no change point lands on the latest PR (%d earlier shift(s) on record)\n", stale)
	}
	return b.String(), fresh > 0
}

// median returns the median of xs without reordering it.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}

// fnv64 hashes a metric name so every series gets its own deterministic
// permutation stream.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// loadGitTrajectory assembles the trajectory from git history: for each
// file, every committed version oldest-first plus the working tree when
// it differs from HEAD's copy. Git failures (no repository, shallow
// checkout with no file history) become provenance notes, not errors —
// the gate passes vacuously on what it cannot see.
func loadGitTrajectory(repo string, files []string) (*trajectory, error) {
	tr := &trajectory{series: map[string][]float64{}, latest: map[string]bool{}}
	for _, file := range files {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		versions, note := fileVersions(repo, file)
		tr.notes = append(tr.notes, note)
		mergeVersions(tr, file, versions)
	}
	finishTrajectory(tr)
	return tr, nil
}

// fileVersions returns each parsed version of one file oldest-first and
// a provenance note describing what was found.
func fileVersions(repo, file string) ([]map[string]float64, string) {
	hashes, err := gitLines(repo, "log", "--format=%H", "--reverse", "--", file)
	if err != nil {
		return nil, fmt.Sprintf("%s: git history unavailable (%v)", file, err)
	}
	var versions []map[string]float64
	var lastRaw []byte
	skipped := 0
	for _, h := range hashes {
		raw, err := exec.Command("git", "-C", repo, "show", h+":"+file).Output()
		if err != nil {
			skipped++ // commit touched the path without a readable blob (e.g. deletion)
			continue
		}
		flat, err := flattenJSON(raw)
		if err != nil {
			skipped++
			continue
		}
		versions = append(versions, flat)
		lastRaw = raw
	}
	// The working tree is the PR under test: include it when it differs
	// from the newest committed version.
	if raw, err := os.ReadFile(filepath.Join(repo, file)); err == nil && string(raw) != string(lastRaw) {
		if flat, err := flattenJSON(raw); err == nil {
			versions = append(versions, flat)
		} else {
			skipped++
		}
	}
	note := fmt.Sprintf("%s: %d version(s) from %d commit(s)", file, len(versions), len(hashes))
	if skipped > 0 {
		note += fmt.Sprintf(", %d unreadable skipped", skipped)
	}
	return versions, note
}

func gitLines(repo string, args ...string) ([]string, error) {
	out, err := exec.Command("git", append([]string{"-C", repo}, args...)...).Output()
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

// mergeVersions folds one file's versions into the trajectory, prefixing
// every metric with the file name. A metric absent from some versions
// contributes only the versions that carry it (schema drift across PRs
// must not sever the series that survived the change).
func mergeVersions(tr *trajectory, file string, versions []map[string]float64) {
	for vi, flat := range versions {
		keys := make([]string, 0, len(flat))
		for k := range flat {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			name := file + " :: " + k
			tr.series[name] = append(tr.series[name], flat[k])
			tr.latest[name] = vi == len(versions)-1
		}
	}
}

// finishTrajectory derives the sorted name index once all series are in.
func finishTrajectory(tr *trajectory) {
	tr.names = tr.names[:0]
	for name := range tr.series {
		tr.names = append(tr.names, name)
	}
	sort.Strings(tr.names)
}

// loadSeriesFile reads explicit metric series from a JSON object of
// {"name": [values...]} — the smoke-test entry that needs no git
// history. Every series counts as present in the latest version.
func loadSeriesFile(path string) (*trajectory, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in map[string][]float64
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	tr := &trajectory{series: in, latest: map[string]bool{}}
	for name := range in {
		tr.latest[name] = true
	}
	finishTrajectory(tr)
	tr.notes = append(tr.notes, fmt.Sprintf("%s: %d explicit series", path, len(tr.names)))
	return tr, nil
}

// flattenJSON parses one trajectory file version and flattens every
// numeric leaf into a path-named metric. Array elements that are objects
// are labeled by their identifying fields (name, mode, shards, ...) so a
// series survives reordering and insertion; bare values fall back to
// their index.
func flattenJSON(raw []byte) (map[string]float64, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	flatten("", v, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, x[k], out)
		}
	case []any:
		for i, e := range x {
			flatten(prefix+"["+arrayLabel(i, e)+"]", e, out)
		}
	}
	// Strings and bools carry no trajectory; ignore.
}

// labelKeys are the fields that identify an element within a trajectory
// file's run arrays, in label order.
var labelKeys = []string{"name", "mode", "index", "workers", "shards", "batch", "regions"}

func arrayLabel(i int, e any) string {
	obj, ok := e.(map[string]any)
	if !ok {
		return strconv.Itoa(i)
	}
	var parts []string
	for _, k := range labelKeys {
		switch val := obj[k].(type) {
		case string:
			parts = append(parts, k+"="+val)
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%v", k, val))
		}
	}
	if len(parts) == 0 {
		return strconv.Itoa(i)
	}
	return strings.Join(parts, ",")
}
