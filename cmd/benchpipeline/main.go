// Command benchpipeline measures sequential vs parallel wall-clock time
// for the Figure 13/14 sweep grid and emits the result as JSON (the
// committed BENCH_pipeline.json). The parallel runner is verified to
// produce results identical to the sequential one before any timing is
// reported.
//
// Usage:
//
//	go run ./cmd/benchpipeline > BENCH_pipeline.json
//	go run ./cmd/benchpipeline -full   # paper-scale runs (minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"regionmon"
)

type run struct {
	Mode    string  `json:"mode"` // "sequential" or "parallel"
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

type report struct {
	Grid struct {
		Benchmarks []string `json:"benchmarks"`
		Periods    []uint64 `json:"periods"`
		Cells      int      `json:"cells"`
	} `json:"grid"`
	Scale   string `json:"scale"` // "quick" or "full"
	Machine struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus"`
	} `json:"machine"`
	Deterministic bool  `json:"parallel_results_identical"`
	Runs          []run `json:"runs"`
}

func main() {
	full := flag.Bool("full", false, "paper-scale runs instead of reduced-scale")
	flag.Parse()

	opts := regionmon.QuickExperimentOptions()
	scale := "quick"
	if *full {
		opts = regionmon.DefaultExperimentOptions()
		scale = "full"
	}
	workerCounts := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}

	rep, err := buildReport(opts, regionmon.Fig13BenchmarkNames(), scale, workerCounts)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// buildReport runs the sweep sequentially, then once per worker count in
// parallel, comparing each parallel result against the sequential one.
// The wall-clock reads are the tool's whole point — the Seconds/Speedup
// columns measure the real machine, while the compared sweep cells stay
// simulated and deterministic.
func buildReport(opts regionmon.ExperimentOptions, names []string, scale string, workerCounts []int) (*report, error) {
	var rep report
	rep.Grid.Benchmarks = names
	rep.Grid.Periods = opts.Periods
	rep.Grid.Cells = len(names) * len(opts.Periods)
	rep.Scale = scale
	rep.Machine.GOOS = runtime.GOOS
	rep.Machine.GOARCH = runtime.GOARCH
	rep.Machine.CPUs = runtime.NumCPU()
	rep.Deterministic = true

	t0 := time.Now() //lint:allow determinism -- benchmark harness measures real elapsed time
	seq, err := regionmon.RunSweep(opts, names)
	if err != nil {
		return nil, err
	}
	//lint:allow determinism -- benchmark harness measures real elapsed time
	seqSecs := time.Since(t0).Seconds()
	rep.Runs = append(rep.Runs, run{Mode: "sequential", Workers: 1, Seconds: seqSecs, Speedup: 1})

	for _, w := range workerCounts {
		t0 = time.Now() //lint:allow determinism -- benchmark harness measures real elapsed time
		par, err := regionmon.RunSweepParallel(opts, names, w)
		if err != nil {
			return nil, err
		}
		//lint:allow determinism -- benchmark harness measures real elapsed time
		secs := time.Since(t0).Seconds()
		if !reflect.DeepEqual(seq.Cells, par.Cells) {
			rep.Deterministic = false
		}
		rep.Runs = append(rep.Runs, run{
			Mode: "parallel", Workers: w,
			Seconds: secs, Speedup: seqSecs / secs,
		})
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpipeline:", err)
	os.Exit(1)
}
