package main

import (
	"encoding/json"
	"testing"

	"regionmon"
)

// TestBuildReportSmoke runs a reduced grid through buildReport and checks
// the report's shape: the sequential run plus one run per worker count,
// identical parallel results, and JSON encodability.
func TestBuildReportSmoke(t *testing.T) {
	opts := regionmon.QuickExperimentOptions()
	names := regionmon.Fig13BenchmarkNames()[:2]

	rep, err := buildReport(opts, names, "quick", []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Cells != len(names)*len(opts.Periods) {
		t.Errorf("grid cells = %d; want %d", rep.Grid.Cells, len(names)*len(opts.Periods))
	}
	if rep.Scale != "quick" {
		t.Errorf("scale = %q; want %q", rep.Scale, "quick")
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs; want 2 (sequential + one parallel)", len(rep.Runs))
	}
	if rep.Runs[0].Mode != "sequential" || rep.Runs[0].Workers != 1 {
		t.Errorf("first run = %+v; want sequential with 1 worker", rep.Runs[0])
	}
	if rep.Runs[1].Mode != "parallel" || rep.Runs[1].Workers != 2 {
		t.Errorf("second run = %+v; want parallel with 2 workers", rep.Runs[1])
	}
	if !rep.Deterministic {
		t.Error("parallel sweep results differ from sequential")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report does not encode to JSON: %v", err)
	}
}
