// Command soak is the long-run hardening harness: it drives the full
// detector stack (pipeline, GPD, region monitoring, BBV, working set,
// CPI tracker) for millions of synthetic sampling intervals and checks
// the two properties ISSUE-grade deployments depend on:
//
//  1. Bounded state: with every per-interval series bounded, post-GC
//     HeapAlloc must not grow from the post-warmup baseline to the end
//     of the run (within a small fixed budget).
//  2. Checkpoint fidelity: a run that is killed and restored from a
//     Snapshot several times mid-stream must emit a verdict stream
//     byte-identical (FNV-1a digest equality over every verdict field)
//     to an uninterrupted reference run.
//
// Usage:
//
//	soak                       # 2M intervals, full comparison (make soak)
//	soak -intervals 60000      # short form (make soak-short, CI)
//	soak -seed 9 -restores 7   # different workload / checkpoint count
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"regionmon/internal/soak"
)

func main() {
	var (
		intervals = flag.Int("intervals", 2_000_000, "sampling intervals to drive per run")
		samples   = flag.Int("samples", 96, "samples per interval (overflow buffer size)")
		seed      = flag.Uint64("seed", 1, "workload generator seed")
		restores  = flag.Int("restores", 4, "kill/restore cycles in the checkpoint run")
		heapMiB   = flag.Int("max-heap-growth", 4, "allowed post-warmup heap growth in MiB")
	)
	flag.Parse()

	cfg := soak.Config{
		Intervals:          *intervals,
		SamplesPerInterval: *samples,
		Seed:               *seed,
		MaxHeapGrowth:      uint64(*heapMiB) << 20,
	}

	start := time.Now() //lint:allow determinism -- progress timing on stderr, not in results
	fmt.Fprintf(os.Stderr, "soak: reference run, %d intervals x %d samples (seed %d)\n",
		cfg.Intervals, cfg.SamplesPerInterval, cfg.Seed)
	ref, err := soak.Run(cfg)
	if err != nil {
		fail("reference run", err)
	}
	report("reference", ref)

	cfg.RestoreEvery = cfg.Intervals / (*restores + 1)
	fmt.Fprintf(os.Stderr, "soak: kill/restore run, checkpoint every %d intervals\n", cfg.RestoreEvery)
	kr, err := soak.Run(cfg)
	if err != nil {
		fail("kill/restore run", err)
	}
	report("kill/restore", kr)

	if kr.Digest != ref.Digest {
		fail("verdict comparison", fmt.Errorf("restored stream digest %#x != reference %#x", kr.Digest, ref.Digest))
	}
	elapsed := time.Since(start).Round(time.Millisecond) //lint:allow determinism -- harness timing on stderr, not in results
	fmt.Fprintf(os.Stderr, "soak: PASS in %v — %d restores, digest %#x, heap steady (%.1f MiB)\n",
		elapsed, kr.Restores, kr.Digest, float64(kr.HeapFinal)/(1<<20))
}

func report(name string, r soak.Result) {
	fmt.Fprintf(os.Stderr, "soak: %s done — digest %#x, heap baseline %.1f MiB final %.1f MiB",
		name, r.Digest, float64(r.HeapBaseline)/(1<<20), float64(r.HeapFinal)/(1<<20))
	if r.Restores > 0 {
		fmt.Fprintf(os.Stderr, ", %d restores (%d snapshot bytes)", r.Restores, r.SnapshotBytes)
	}
	fmt.Fprintln(os.Stderr)
}

func fail(stage string, err error) {
	fmt.Fprintf(os.Stderr, "soak: FAIL (%s): %v\n", stage, err)
	os.Exit(1)
}
