// Command soak is the long-run hardening harness: it drives the full
// detector stack (pipeline, GPD, region monitoring, BBV, working set,
// CPI tracker) for millions of synthetic sampling intervals and checks
// the two properties ISSUE-grade deployments depend on:
//
//  1. Bounded state: with every per-interval series bounded, post-GC
//     HeapAlloc must not grow from the post-warmup baseline to the end
//     of the run (within a small fixed budget).
//  2. Checkpoint fidelity: a run that is killed and restored from a
//     Snapshot several times mid-stream must emit a verdict stream
//     byte-identical (FNV-1a digest equality over every verdict field)
//     to an uninterrupted reference run.
//
// Usage:
//
// After the single-stream comparison it repeats the exercise at fleet
// scale: -streams independent stacks behind an ingest.Fleet, where the
// reference run uses one shard with per-item pushes and the kill/restore
// run uses -shards with batched pushes (-batch intervals per PushBatchWait
// call) — so the comparison also proves verdict streams are independent of
// both the worker topology and the per-item-vs-batched transport.
//
// Usage:
//
//	soak                       # 2M intervals, full comparison (make soak)
//	soak -intervals 60000      # short form (make soak-short, CI)
//	soak -seed 9 -restores 7   # different workload / checkpoint count
//	soak -streams 0            # skip the fleet stage
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"regionmon/internal/soak"
)

func main() {
	var (
		intervals = flag.Int("intervals", 2_000_000, "sampling intervals to drive per run")
		samples   = flag.Int("samples", 96, "samples per interval (overflow buffer size)")
		seed      = flag.Uint64("seed", 1, "workload generator seed")
		restores  = flag.Int("restores", 4, "kill/restore cycles in the checkpoint run")
		heapMiB   = flag.Int("max-heap-growth", 4, "allowed post-warmup heap growth in MiB")
		streams   = flag.Int("streams", 8, "fleet stage stream count (0 skips the fleet stage)")
		shards    = flag.Int("shards", 4, "fleet stage worker count for the kill/restore run")
		batch     = flag.Int("batch", 16, "fleet stage intervals per PushBatchWait call in the kill/restore run")
		fleetIvs  = flag.Int("fleet-intervals", 0, "fleet stage intervals per stream (0 = intervals/20)")
	)
	flag.Parse()

	cfg := soak.Config{
		Intervals:          *intervals,
		SamplesPerInterval: *samples,
		Seed:               *seed,
		MaxHeapGrowth:      uint64(*heapMiB) << 20,
	}

	start := time.Now() //lint:allow determinism -- progress timing on stderr, not in results
	fmt.Fprintf(os.Stderr, "soak: reference run, %d intervals x %d samples (seed %d)\n",
		cfg.Intervals, cfg.SamplesPerInterval, cfg.Seed)
	ref, err := soak.Run(cfg)
	if err != nil {
		fail("reference run", err)
	}
	report("reference", ref)

	cfg.RestoreEvery = cfg.Intervals / (*restores + 1)
	fmt.Fprintf(os.Stderr, "soak: kill/restore run, checkpoint every %d intervals\n", cfg.RestoreEvery)
	kr, err := soak.Run(cfg)
	if err != nil {
		fail("kill/restore run", err)
	}
	report("kill/restore", kr)

	if kr.Digest != ref.Digest {
		fail("verdict comparison", fmt.Errorf("restored stream digest %#x != reference %#x", kr.Digest, ref.Digest))
	}
	fmt.Fprintf(os.Stderr, "soak: single-stream PASS — %d restores, digest %#x, heap steady (%.1f MiB)\n",
		kr.Restores, kr.Digest, float64(kr.HeapFinal)/(1<<20))

	if *streams > 0 {
		ivs := *fleetIvs
		if ivs == 0 {
			ivs = *intervals / 20
			if ivs < 500 {
				ivs = 500
			}
		}
		fcfg := soak.FleetConfig{
			Streams:            *streams,
			Intervals:          ivs,
			Shards:             1,
			Batch:              1, // reference drives the per-item push path
			SamplesPerInterval: *samples,
			Seed:               *seed,
			MaxHeapGrowth:      uint64(*heapMiB+4*(*streams)) << 20,
		}
		fmt.Fprintf(os.Stderr, "soak: fleet reference run, %d streams x %d intervals, 1 shard, per-item pushes\n", *streams, ivs)
		fref, err := soak.RunFleet(fcfg)
		if err != nil {
			fail("fleet reference run", err)
		}
		fcfg.Shards = *shards
		fcfg.Batch = *batch
		fcfg.RestoreEvery = ivs / (*restores + 1)
		fmt.Fprintf(os.Stderr, "soak: fleet kill/restore run, %d shards, %d-interval batches, checkpoint every %d rounds\n",
			fcfg.Shards, fcfg.Batch, fcfg.RestoreEvery)
		fkr, err := soak.RunFleet(fcfg)
		if err != nil {
			fail("fleet kill/restore run", err)
		}
		for s := range fref.Digests {
			if fkr.Digests[s] != fref.Digests[s] {
				fail("fleet verdict comparison", fmt.Errorf("stream %d digest %#x != reference %#x",
					s, fkr.Digests[s], fref.Digests[s]))
			}
		}
		fmt.Fprintf(os.Stderr, "soak: fleet PASS — %d restores across topologies 1→%d shards and per-item→%d-batch pushes, digest %#x (%d snapshot bytes)\n",
			fkr.Restores, fcfg.Shards, fcfg.Batch, fkr.Digest, fkr.SnapshotBytes)
	}

	elapsed := time.Since(start).Round(time.Millisecond) //lint:allow determinism -- harness timing on stderr, not in results
	fmt.Fprintf(os.Stderr, "soak: PASS in %v\n", elapsed)
}

func report(name string, r soak.Result) {
	fmt.Fprintf(os.Stderr, "soak: %s done — digest %#x, heap baseline %.1f MiB final %.1f MiB",
		name, r.Digest, float64(r.HeapBaseline)/(1<<20), float64(r.HeapFinal)/(1<<20))
	if r.Restores > 0 {
		fmt.Fprintf(os.Stderr, ", %d restores (%d snapshot bytes)", r.Restores, r.SnapshotBytes)
	}
	fmt.Fprintln(os.Stderr)
}

func fail(stage string, err error) {
	fmt.Fprintf(os.Stderr, "soak: FAIL (%s): %v\n", stage, err)
	os.Exit(1)
}
