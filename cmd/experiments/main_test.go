package main

import (
	"os"
	"strings"
	"testing"

	"regionmon/internal/experiments"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out strings.Builder
		for {
			n, err := r.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- out.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestRunFig8TextAndCSV(t *testing.T) {
	opts := experiments.TestOptions()
	text := captureStdout(t, func() error { return run(opts, "8", formatText, false, 1) })
	if !strings.Contains(text, "Figure 8") || !strings.Contains(text, "shift bottleneck") {
		t.Errorf("fig 8 text output malformed:\n%s", text)
	}
	csv := captureStdout(t, func() error { return run(opts, "8", formatCSV, false, 1) })
	if !strings.Contains(csv, "comparison,r,paper r") {
		t.Errorf("fig 8 CSV output malformed:\n%s", csv)
	}
}

func TestRunChartFigure(t *testing.T) {
	opts := experiments.TestOptions()
	out := captureStdout(t, func() error { return run(opts, "5", formatText, false, 1) })
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "187.facerec") {
		t.Errorf("fig 5 output malformed:\n%.400s", out)
	}
}

func TestRunUnknownFigureIsNoop(t *testing.T) {
	opts := experiments.TestOptions()
	out := captureStdout(t, func() error { return run(opts, "99", formatText, false, 1) })
	if strings.Contains(out, "Figure") {
		t.Errorf("unknown figure produced output:\n%s", out)
	}
}

func TestRunFig8JSON(t *testing.T) {
	opts := experiments.TestOptions()
	out := captureStdout(t, func() error { return run(opts, "8", formatJSON, false, 1) })
	if !strings.Contains(out, `"title": "Figure 8`) || !strings.Contains(out, `"rows"`) {
		t.Errorf("fig 8 JSON output malformed:\n%s", out)
	}
}
