// Command experiments regenerates the paper's evaluation figures
// (Figures 2–17 of Das, Lu, Hsu: "Region Monitoring for Local Phase
// Detection in Dynamic Optimization Systems", CGO 2006).
//
// Usage:
//
//	experiments -fig all                 # everything, full scale
//	experiments -fig 17                  # one figure
//	experiments -fig 3 -quick            # reduced scale (CI/laptop)
//	experiments -fig 6 -csv              # CSV instead of aligned text
//	experiments -fig 13 -scale 0.1       # custom scale
//	experiments -fig all -workers 1      # force sequential sweeps
//
// The sweep grids (figures 3/4/6/7/13/14 and 17) run on a worker pool,
// one independent simulation per (benchmark, period) cell; -workers caps
// the pool (default: all cores). Results are deterministic regardless of
// worker count.
//
// Figure numbers follow the paper. Figures 1 and 12 are state-machine
// specifications with no data; their behaviour is covered by the unit
// tests of internal/gpd and internal/lpd.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regionmon/internal/experiments"
	"regionmon/internal/workload"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 2..17, 'panel' (extension E1) or 'all'")
		quick   = flag.Bool("quick", false, "reduced-scale run with proportionally scaled periods")
		scale   = flag.Float64("scale", 0, "override work scale (0 = per -quick/full default)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonF   = flag.Bool("json", false, "emit JSON instead of aligned text")
		detail  = flag.Bool("detail", false, "also print controller detail for figure 17")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = all cores)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.TestOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	format := formatText
	if *csv {
		format = formatCSV
	}
	if *jsonF {
		format = formatJSON
	}
	if err := run(opts, strings.ToLower(*fig), format, *detail, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// format selects the output encoding.
type format int

const (
	formatText format = iota
	formatCSV
	formatJSON
)

func emit(tab *experiments.Table, f format) {
	switch f {
	case formatCSV:
		fmt.Println("#", tab.Title)
		fmt.Print(tab.CSV())
	case formatJSON:
		s, err := tab.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: json:", err)
			return
		}
		fmt.Println(s)
	default:
		fmt.Println(tab.String())
	}
}

func run(opts experiments.Options, fig string, f format, detail bool, workers int) error {
	want := func(f string) bool { return fig == "all" || fig == f }
	start := time.Now() //lint:allow determinism -- progress timing on stderr, not in results

	// Region charts.
	if want("2") {
		tab, err := experiments.Fig2(opts)
		if err != nil {
			return err
		}
		emit(tab, f)
	}

	// The big sweep serves figures 3, 4, 6, 7, 13 and 14.
	needSweep := false
	for _, f := range []string{"3", "4", "6", "7", "13", "14"} {
		if want(f) {
			needSweep = true
		}
	}
	if needSweep {
		names := workload.Names()
		if fig == "13" || fig == "14" {
			names = experiments.Fig13Names()
		}
		sweep, err := experiments.RunSweepParallel(opts, names, workers)
		if err != nil {
			return err
		}
		fig3 := sweep.Filter(workload.Fig3Names()...)
		fig13 := sweep.Filter(experiments.Fig13Names()...)
		if want("3") {
			emit(fig3.Fig3Table(), f)
		}
		if want("4") {
			emit(fig3.Fig4Table(), f)
		}
		if want("6") {
			emit(sweep.Fig6Table(), f)
		}
		if want("7") {
			emit(sweep.Fig7Table(), f)
		}
		if want("13") {
			emit(fig13.Fig13Table(), f)
		}
		if want("14") {
			emit(fig13.Fig14Table(), f)
		}
	}

	if want("5") {
		tab, err := experiments.Fig5(opts)
		if err != nil {
			return err
		}
		emit(tab, f)
	}
	if want("8") {
		emit(experiments.Fig8(), f)
	}
	if want("9") || want("10") {
		tab9, chart, err := experiments.Fig9(opts)
		if err != nil {
			return err
		}
		if want("9") {
			emit(tab9, f)
		}
		if want("10") {
			tab10, err := experiments.Fig10(opts, chart)
			if err != nil {
				return err
			}
			emit(tab10, f)
		}
	}
	if want("11") {
		tab, err := experiments.Fig11(opts)
		if err != nil {
			return err
		}
		emit(tab, f)
	}
	if want("15") {
		cost, err := experiments.RunCost(opts, workload.Names())
		if err != nil {
			return err
		}
		emit(cost.Table(), f)
	}
	if want("16") {
		tree, err := experiments.RunTreeComparison(opts, workload.Names())
		if err != nil {
			return err
		}
		emit(tree.Table(), f)
	}
	if want("panel") || fig == "all" {
		panel, err := experiments.RunDetectorPanel(opts,
			[]string{"181.mcf", "187.facerec", "254.gap", "188.ammp", "172.mgrid"})
		if err != nil {
			return err
		}
		emit(panel.Table(), f)
	}
	if want("17") {
		sp, err := experiments.RunSpeedupParallel(opts, experiments.Fig17Names(), workers)
		if err != nil {
			return err
		}
		emit(sp.Table(), f)
		if detail {
			emit(sp.DetailTable(), f)
		}
	}

	elapsed := time.Since(start).Round(time.Millisecond) //lint:allow determinism -- progress timing on stderr, not in results
	fmt.Fprintf(os.Stderr, "done in %s (scale %g, buffer %d)\n",
		elapsed, opts.Scale, opts.BufferSize)
	return nil
}
