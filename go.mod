module regionmon

go 1.22
