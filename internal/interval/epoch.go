package interval

import "slices"

// Epoch is the batched-distribution index: an immutable flat snapshot of
// the current range set, rebuilt lazily after mutations. Where List pays
// O(n) and Tree O(log n + k) pointer-chasing per stab, Epoch slices the
// address space at every range boundary into disjoint segments and stores,
// per segment, the ids of every range covering it in one flat CSR layout
// (segOff offsets into segIDs). A stabbing query is then a single
// branch-light binary search over the boundary array followed by a
// contiguous slice read — no per-visit closure, no node traversal.
//
// The trade is rebuild cost on mutation: Insert and Remove only record the
// change and mark the snapshot dirty; the next query rebuilds it. Region
// monitoring mutates its index on formation and pruning — rare, declared-
// cold events (a handful per run) — while stabbing happens for every
// distinct PC of every interval, so paying O(n log n) per epoch to make the
// per-query constant minimal is exactly the right side of the trade
// (the Section 3.2.3 cost model with the rebuild amortized to zero).
//
// Worst-case snapshot size is O(n²) ids when every range overlaps every
// other; monitored regions are loop bodies whose overlap depth is the loop
// nesting depth, so in practice the snapshot is ~2n segments of small
// constant width.
type Epoch struct {
	ranges []Range
	byID   map[int]int // id -> index in ranges
	dirty  bool

	// Flat snapshot: segment i spans [bounds[i], bounds[i+1]) and is
	// covered by segIDs[segOff[i]:segOff[i+1]] (ids ascending).
	bounds []uint64
	segOff []int
	segIDs []int

	sorted []Range // rebuild scratch: ranges ordered by id
	cursor []int   // rebuild scratch: per-segment fill position
}

// NewEpoch returns an empty Epoch.
func NewEpoch() *Epoch {
	return &Epoch{byID: make(map[int]int)}
}

// Insert implements Index.
func (e *Epoch) Insert(id int, start, end uint64) bool {
	if start >= end {
		return false
	}
	if _, dup := e.byID[id]; dup {
		return false
	}
	e.byID[id] = len(e.ranges)
	e.ranges = append(e.ranges, Range{ID: id, Start: start, End: end})
	e.dirty = true
	return true
}

// Remove implements Index (swap-delete, O(1); the snapshot is rebuilt on
// the next query).
func (e *Epoch) Remove(id int) bool {
	i, ok := e.byID[id]
	if !ok {
		return false
	}
	last := len(e.ranges) - 1
	if i != last {
		e.ranges[i] = e.ranges[last]
		e.byID[e.ranges[i].ID] = i
	}
	e.ranges = e.ranges[:last]
	delete(e.byID, id)
	e.dirty = true
	return true
}

// Len implements Index.
func (e *Epoch) Len() int { return len(e.ranges) }

// Stab implements Index.
func (e *Epoch) Stab(point uint64, visit func(id int)) {
	for _, id := range e.Lookup(point) {
		visit(id)
	}
}

// Lookup returns the ids of every range containing point, ascending, as a
// sub-slice of the epoch's flat snapshot — valid until the next Insert or
// Remove, and not to be mutated. It is the closure-free form of Stab the
// batched distribution hot path uses: one binary search, one slice.
func (e *Epoch) Lookup(point uint64) []int {
	if e.dirty {
		e.rebuild()
	}
	b := e.bounds
	n := len(b)
	if n == 0 || point < b[0] || point >= b[n-1] {
		return nil
	}
	// Largest i with b[i] <= point; the loop keeps the invariant
	// b[lo] <= point < b[hi].
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] <= point {
			lo = mid
		} else {
			hi = mid
		}
	}
	return e.segIDs[e.segOff[lo]:e.segOff[lo+1]]
}

// rebuild recomputes the flat snapshot from the live range set. It runs
// only after the range set changed — region formation and pruning, the
// monitor's declared-cold events — never in steady state, so it is free
// to allocate (the scratch it grows is reused across epochs).
//
//lint:allow hotpath boundedstate -- epoch rebuild is a declared cold sub-path, output capped by the region set
func (e *Epoch) rebuild() {
	e.dirty = false
	e.bounds = e.bounds[:0]
	e.segOff = e.segOff[:0]
	e.segIDs = e.segIDs[:0]
	if len(e.ranges) == 0 {
		return
	}

	// Boundaries: every Start and End, sorted and deduplicated. Segments
	// between consecutive boundaries are covered by a fixed id set (a gap
	// between ranges is simply a segment with an empty set).
	sorted := append(e.sorted[:0], e.ranges...)
	slices.SortFunc(sorted, func(a, b Range) int { return a.ID - b.ID })
	e.sorted = sorted
	for _, r := range sorted {
		e.bounds = append(e.bounds, r.Start, r.End)
	}
	slices.Sort(e.bounds)
	e.bounds = slices.Compact(e.bounds)

	// CSR fill in two passes: count ids per segment, prefix-sum into
	// offsets, then place ids. Iterating ranges in id order makes each
	// segment's id list ascending, giving the snapshot a deterministic
	// shape independent of insertion and removal history.
	segs := len(e.bounds) - 1
	e.segOff = slices.Grow(e.segOff, segs+1)[:segs+1]
	for i := range e.segOff {
		e.segOff[i] = 0
	}
	for _, r := range sorted {
		first, _ := slices.BinarySearch(e.bounds, r.Start)
		last, _ := slices.BinarySearch(e.bounds, r.End)
		for s := first; s < last; s++ {
			e.segOff[s+1]++
		}
	}
	for i := 1; i <= segs; i++ {
		e.segOff[i] += e.segOff[i-1]
	}
	e.segIDs = slices.Grow(e.segIDs, e.segOff[segs])[:e.segOff[segs]]
	cursor := slices.Grow(e.cursor[:0], segs)[:segs]
	copy(cursor, e.segOff[:segs])
	for _, r := range sorted {
		first, _ := slices.BinarySearch(e.bounds, r.Start)
		last, _ := slices.BinarySearch(e.bounds, r.End)
		for s := first; s < last; s++ {
			e.segIDs[cursor[s]] = r.ID
			cursor[s]++
		}
	}
	e.cursor = cursor
}
