// Package interval provides the sample-to-region distribution structures
// behind region monitoring. List and Tree are the two the paper compares
// in Section 3.2.3: a simple linear list (O(n) per sample) and an
// augmented red-black interval tree in the style of CLRS chapter 14
// (O(log n + k) per sample, where k is the number of regions stabbed —
// regions may overlap, e.g. nested loops, and a sample falling in several
// regions increments all of them). Epoch goes past the paper: an immutable
// flat segmentation of the current region set, rebuilt only when the set
// changes, answering stabs with one binary search and a contiguous slice
// read (see Epoch).
//
// Region monitoring distributes every program-counter sample in the buffer
// across the monitored regions on each buffer overflow; with hundreds of
// regions (gcc, crafty, fma3d, parser, bzip) this distribution dominates
// monitoring cost, which is why the paper proposes the tree and this
// reproduction adds the count-compressed batch path over Epoch.
package interval

// Index is a dynamic set of half-open address ranges [Start, End) with
// integer identifiers, supporting stabbing queries. Implementations are
// List and Tree.
type Index interface {
	// Insert adds the range [start, end) under id. It reports false when
	// id is already present or the range is empty/inverted (nothing is
	// inserted in either case).
	Insert(id int, start, end uint64) bool
	// Remove deletes the range registered under id, reporting whether it
	// was present.
	Remove(id int) bool
	// Stab calls visit for every range containing point. Order of visits
	// is unspecified. visit must not mutate the index.
	Stab(point uint64, visit func(id int))
	// Len returns the number of ranges in the index.
	Len() int
}

// Range is an exported (id, [start,end)) triple, used for bulk loads and
// for test comparison between implementations.
type Range struct {
	ID         int
	Start, End uint64
}

// List is the paper's baseline: an unordered slice scanned linearly for
// every sample. For small region counts its constant factor beats the
// tree — exactly the crossover Figure 16 shows.
type List struct {
	ranges []Range
	byID   map[int]int // id -> index in ranges
}

// NewList returns an empty List.
func NewList() *List {
	return &List{byID: make(map[int]int)}
}

// Insert implements Index.
func (l *List) Insert(id int, start, end uint64) bool {
	if start >= end {
		return false
	}
	if _, dup := l.byID[id]; dup {
		return false
	}
	l.byID[id] = len(l.ranges)
	l.ranges = append(l.ranges, Range{ID: id, Start: start, End: end})
	return true
}

// Remove implements Index (swap-delete, O(1)).
func (l *List) Remove(id int) bool {
	i, ok := l.byID[id]
	if !ok {
		return false
	}
	last := len(l.ranges) - 1
	if i != last {
		l.ranges[i] = l.ranges[last]
		l.byID[l.ranges[i].ID] = i
	}
	l.ranges = l.ranges[:last]
	delete(l.byID, id)
	return true
}

// Stab implements Index by scanning every range.
func (l *List) Stab(point uint64, visit func(id int)) {
	for i := range l.ranges {
		r := &l.ranges[i]
		if r.Start <= point && point < r.End {
			visit(r.ID)
		}
	}
}

// Len implements Index.
func (l *List) Len() int { return len(l.ranges) }

// Ranges returns a copy of the stored ranges (test/debug helper).
func (l *List) Ranges() []Range {
	out := make([]Range, len(l.ranges))
	copy(out, l.ranges)
	return out
}
