package interval

import (
	"math/rand/v2"
	"testing"
)

func TestEpochBasics(t *testing.T) { testIndexBasics(t, func() Index { return NewEpoch() }) }

func TestEpochLookupMatchesStab(t *testing.T) {
	e := NewEpoch()
	e.Insert(0, 100, 400)
	e.Insert(1, 200, 300)
	e.Insert(2, 250, 600)
	for _, p := range []uint64{0, 99, 100, 150, 200, 250, 299, 300, 399, 400, 599, 600} {
		got := append([]int(nil), e.Lookup(p)...)
		if want := collect(e, p); !equalInts(got, want) {
			t.Errorf("Lookup(%d) = %v; Stab collected %v", p, got, want)
		}
	}
	// Lookup slices the snapshot in ascending id order.
	if got := e.Lookup(260); !equalInts(got, []int{0, 1, 2}) {
		t.Errorf("Lookup(260) = %v; want ascending [0 1 2]", got)
	}
}

// TestIndexChurnAgreement is the three-way churn differential: one
// deterministic sequence of formation-like insert bursts and prune-like
// removal waves (including full drains) driven through List, Tree and
// Epoch simultaneously, with every mutation result and a stab grid
// compared after each wave. Heavy region turnover is exactly the shape
// that stresses the epoch's lazy rebuild: every wave invalidates the
// snapshot and the next stab batch must rebuild it correctly.
func TestIndexChurnAgreement(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xE9, 0xC0DE))
	list, tree, epoch := NewList(), NewTree(), NewEpoch()
	indexes := []struct {
		name string
		ix   Index
	}{{"list", list}, {"tree", tree}, {"epoch", epoch}}

	check := func(wave int) {
		t.Helper()
		for p := uint64(0); p < 4600; p += 37 {
			want := collect(list, p)
			for _, x := range indexes[1:] {
				if got := collect(x.ix, p); !equalInts(got, want) {
					t.Fatalf("wave %d: %s.Stab(%d) = %v; list says %v", wave, x.name, p, got, want)
				}
			}
			if got := append([]int(nil), epoch.Lookup(p)...); !equalInts(got, want) {
				t.Fatalf("wave %d: epoch.Lookup(%d) = %v; list says %v", wave, p, got, want)
			}
		}
	}

	var live []int
	nextID := 0
	for wave := 0; wave < 60; wave++ {
		// Formation burst: a handful of new (possibly nested or identical)
		// ranges, as when the UCR threshold trips.
		for i, n := 0, 1+rng.IntN(24); i < n; i++ {
			start := uint64(rng.IntN(4000))
			end := start + 1 + uint64(rng.IntN(500))
			want := list.Insert(nextID, start, end)
			for _, x := range indexes[1:] {
				if got := x.ix.Insert(nextID, start, end); got != want {
					t.Fatalf("wave %d: %s.Insert(%d) = %v; list says %v", wave, x.name, nextID, got, want)
				}
			}
			live = append(live, nextID)
			nextID++
		}
		check(wave)

		// Prune wave: remove a random subset; every 7th wave drains the
		// whole set (a region cap + idle-prune worst case).
		k := rng.IntN(len(live) + 1)
		if wave%7 == 6 {
			k = len(live)
		}
		for i := 0; i < k; i++ {
			if len(live) == 0 {
				break
			}
			j := rng.IntN(len(live))
			id := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			want := list.Remove(id)
			for _, x := range indexes[1:] {
				if got := x.ix.Remove(id); got != want {
					t.Fatalf("wave %d: %s.Remove(%d) = %v; list says %v", wave, x.name, id, got, want)
				}
			}
		}
		// Absent-id removal: all three must agree it is a no-op.
		absent := nextID + 1000
		want := list.Remove(absent)
		for _, x := range indexes[1:] {
			if got := x.ix.Remove(absent); got != want {
				t.Fatalf("wave %d: %s.Remove(absent %d) = %v; list says %v", wave, x.name, absent, got, want)
			}
		}
		if list.Len() != tree.Len() || list.Len() != epoch.Len() {
			t.Fatalf("wave %d: Len diverged: list %d tree %d epoch %d", wave, list.Len(), tree.Len(), epoch.Len())
		}
		check(wave)
	}
}

// TestEpochLookupSteadyStateAllocs pins the hot-path contract: once the
// snapshot is built, Lookup allocates nothing.
func TestEpochLookupSteadyStateAllocs(t *testing.T) {
	e := NewEpoch()
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 128; i++ {
		start := rng.Uint64N(100_000)
		e.Insert(i, start, start+200)
	}
	e.Lookup(0) // build the snapshot
	sink := 0
	avg := testing.AllocsPerRun(200, func() {
		for p := uint64(0); p < 100_000; p += 997 {
			sink += len(e.Lookup(p))
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Lookup allocates %.2f allocs/run; want 0", avg)
	}
	_ = sink
}
