package interval

// Tree is an interval tree: a red-black tree keyed by (Start, End, ID) in
// which every node is augmented with the maximum End in its subtree
// (CLRS chapter 14, the structure the paper's Section 3.2.3 cites via
// reference [18]). Stabbing queries cost O(log n + k); insert and remove
// cost O(log n).
type Tree struct {
	root *node
	nil_ *node // sentinel leaf
	byID map[int]*node
}

type color bool

const (
	red   color = false
	black color = true
)

type node struct {
	id         int
	start, end uint64
	max        uint64 // maximum end in this subtree
	c          color
	left       *node
	right      *node
	parent     *node
}

// NewTree returns an empty Tree.
func NewTree() *Tree {
	s := &node{c: black}
	s.left, s.right, s.parent = s, s, s
	return &Tree{root: s, nil_: s, byID: make(map[int]*node)}
}

// Len implements Index.
func (t *Tree) Len() int { return len(t.byID) }

// less orders nodes by (start, end, id), giving the tree a deterministic
// shape independent of insertion order ties.
func less(a, b *node) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	if a.end != b.end {
		return a.end < b.end
	}
	return a.id < b.id
}

// Insert implements Index.
func (t *Tree) Insert(id int, start, end uint64) bool {
	if start >= end {
		return false
	}
	if _, dup := t.byID[id]; dup {
		return false
	}
	z := &node{id: id, start: start, end: end, max: end, left: t.nil_, right: t.nil_, parent: t.nil_}
	t.byID[id] = z

	// Ordinary BST insert, updating max on the way down.
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		if z.end > x.max {
			x.max = z.end
		}
		if less(z, x) {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	switch {
	case y == t.nil_:
		t.root = z
	case less(z, y):
		y.left = z
	default:
		y.right = z
	}
	z.c = red
	t.insertFixup(z)
	return true
}

func (t *Tree) insertFixup(z *node) {
	for z.parent.c == red {
		if z.parent == z.parent.parent.left {
			u := z.parent.parent.right
			if u.c == red {
				z.parent.c = black
				u.c = black
				z.parent.parent.c = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.c = black
				z.parent.parent.c = red
				t.rotateRight(z.parent.parent)
			}
		} else {
			u := z.parent.parent.left
			if u.c == red {
				z.parent.c = black
				u.c = black
				z.parent.parent.c = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.c = black
				z.parent.parent.c = red
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.c = black
}

// fixMax recomputes n.max from its interval and children.
func (t *Tree) fixMax(n *node) {
	if n == t.nil_ {
		return
	}
	m := n.end
	if n.left != t.nil_ && n.left.max > m {
		m = n.left.max
	}
	if n.right != t.nil_ && n.right.max > m {
		m = n.right.max
	}
	n.max = m
}

// fixMaxUpward recomputes max from n to the root.
func (t *Tree) fixMaxUpward(n *node) {
	for n != t.nil_ {
		t.fixMax(n)
		n = n.parent
	}
}

func (t *Tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	t.fixMax(x)
	t.fixMax(y)
}

func (t *Tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	t.fixMax(x)
	t.fixMax(y)
}

func (t *Tree) transplant(u, v *node) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree) minimum(x *node) *node {
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

// Remove implements Index.
func (t *Tree) Remove(id int) bool {
	z, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)

	y := z
	yOrigColor := y.c
	var x *node
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
		t.fixMaxUpward(x.parent)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
		t.fixMaxUpward(x.parent)
	default:
		y = t.minimum(z.right)
		yOrigColor = y.c
		x = y.right
		var maxFrom *node
		if y.parent == z {
			x.parent = y // needed by deleteFixup even when x is the sentinel
			maxFrom = y
		} else {
			maxFrom = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.c = z.c
		t.fixMaxUpward(maxFrom)
	}
	if yOrigColor == black {
		t.deleteFixup(x)
	}
	// The sentinel's parent may have been scribbled on; restore invariants.
	t.nil_.parent = t.nil_
	t.nil_.max = 0
	return true
}

func (t *Tree) deleteFixup(x *node) {
	for x != t.root && x.c == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.c == red {
				w.c = black
				x.parent.c = red
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if w.left.c == black && w.right.c == black {
				w.c = red
				x = x.parent
			} else {
				if w.right.c == black {
					w.left.c = black
					w.c = red
					t.rotateRight(w)
					w = x.parent.right
				}
				w.c = x.parent.c
				x.parent.c = black
				w.right.c = black
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.c == red {
				w.c = black
				x.parent.c = red
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if w.right.c == black && w.left.c == black {
				w.c = red
				x = x.parent
			} else {
				if w.left.c == black {
					w.right.c = black
					w.c = red
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.c = x.parent.c
				x.parent.c = black
				w.left.c = black
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.c = black
}

// Stab implements Index. The walk prunes subtrees whose max end is at or
// below the point (nothing there can contain it) and right subtrees whose
// start keys already exceed the point.
func (t *Tree) Stab(point uint64, visit func(id int)) {
	t.stab(t.root, point, visit)
}

func (t *Tree) stab(n *node, point uint64, visit func(id int)) {
	if n == t.nil_ || n.max <= point {
		return
	}
	t.stab(n.left, point, visit)
	if n.start <= point {
		if point < n.end {
			visit(n.id)
		}
		t.stab(n.right, point, visit)
	}
}

// checkInvariants validates red-black and max-augmentation invariants,
// returning the black height. Used by tests; not called in production paths.
func (t *Tree) checkInvariants() (blackHeight int, ok bool) {
	if t.root.c != black {
		return 0, false
	}
	return t.check(t.root)
}

func (t *Tree) check(n *node) (int, bool) {
	if n == t.nil_ {
		return 1, true
	}
	if n.c == red && (n.left.c == red || n.right.c == red) {
		return 0, false
	}
	lh, lok := t.check(n.left)
	rh, rok := t.check(n.right)
	if !lok || !rok || lh != rh {
		return 0, false
	}
	// BST order.
	if n.left != t.nil_ && !less(n.left, n) {
		return 0, false
	}
	if n.right != t.nil_ && less(n.right, n) {
		return 0, false
	}
	// Max augmentation.
	m := n.end
	if n.left != t.nil_ && n.left.max > m {
		m = n.left.max
	}
	if n.right != t.nil_ && n.right.max > m {
		m = n.right.max
	}
	if n.max != m {
		return 0, false
	}
	h := lh
	if n.c == black {
		h++
	}
	return h, true
}
