package interval

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func collect(ix Index, point uint64) []int {
	var ids []int
	ix.Stab(point, func(id int) { ids = append(ids, id) })
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testIndexBasics exercises any Index implementation.
func testIndexBasics(t *testing.T, mk func() Index) {
	t.Helper()
	ix := mk()
	if ix.Len() != 0 {
		t.Fatal("fresh index not empty")
	}
	if !ix.Insert(1, 100, 200) || !ix.Insert(2, 150, 300) || !ix.Insert(3, 400, 500) {
		t.Fatal("inserts failed")
	}
	if ix.Insert(1, 600, 700) {
		t.Error("duplicate id insert should fail")
	}
	if ix.Insert(4, 500, 500) || ix.Insert(5, 700, 600) {
		t.Error("empty/inverted range insert should fail")
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d; want 3", ix.Len())
	}
	cases := []struct {
		point uint64
		want  []int
	}{
		{99, nil},
		{100, []int{1}},
		{150, []int{1, 2}}, // overlap: both visited
		{199, []int{1, 2}},
		{200, []int{2}}, // half-open: 1 excluded at its End
		{299, []int{2}},
		{300, nil},
		{450, []int{3}},
		{500, nil},
	}
	for _, c := range cases {
		if got := collect(ix, c.point); !equalInts(got, c.want) {
			t.Errorf("Stab(%d) = %v; want %v", c.point, got, c.want)
		}
	}
	if !ix.Remove(2) {
		t.Error("Remove(2) failed")
	}
	if ix.Remove(2) {
		t.Error("double Remove(2) should fail")
	}
	if got := collect(ix, 150); !equalInts(got, []int{1}) {
		t.Errorf("after removal Stab(150) = %v; want [1]", got)
	}
	if ix.Len() != 2 {
		t.Errorf("Len after removal = %d; want 2", ix.Len())
	}
}

func TestListBasics(t *testing.T) { testIndexBasics(t, func() Index { return NewList() }) }
func TestTreeBasics(t *testing.T) { testIndexBasics(t, func() Index { return NewTree() }) }

func TestListRanges(t *testing.T) {
	l := NewList()
	l.Insert(7, 10, 20)
	rs := l.Ranges()
	if len(rs) != 1 || rs[0] != (Range{ID: 7, Start: 10, End: 20}) {
		t.Errorf("Ranges = %v", rs)
	}
	// Mutating the copy must not affect the list.
	rs[0].Start = 0
	if got := collect(l, 5); got != nil {
		t.Error("Ranges returned aliased storage")
	}
}

// TestTreeMatchesListRandom is the core property test: under a random
// workload of inserts, removals and stabs, the tree agrees with the list
// and maintains its red-black + max invariants throughout.
func TestTreeMatchesListRandom(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xBEEF))
		list := NewList()
		tree := NewTree()
		live := make(map[int]bool)
		nextID := 0
		for op := 0; op < 400; op++ {
			switch r := rng.IntN(10); {
			case r < 5: // insert
				start := uint64(rng.IntN(1000))
				end := start + 1 + uint64(rng.IntN(200))
				id := nextID
				nextID++
				li := list.Insert(id, start, end)
				ti := tree.Insert(id, start, end)
				if li != ti {
					t.Logf("seed %d op %d: insert disagreement", seed, op)
					return false
				}
				live[id] = true
			case r < 7: // remove (possibly absent id)
				var id int
				if len(live) > 0 && rng.IntN(4) > 0 {
					for k := range live {
						id = k
						break
					}
				} else {
					id = nextID + 1000 // absent
				}
				lr := list.Remove(id)
				tr := tree.Remove(id)
				if lr != tr {
					t.Logf("seed %d op %d: remove disagreement on id %d: list=%v tree=%v", seed, op, id, lr, tr)
					return false
				}
				delete(live, id)
			default: // stab
				p := uint64(rng.IntN(1300))
				if !equalInts(collect(list, p), collect(tree, p)) {
					t.Logf("seed %d op %d: stab(%d) disagreement", seed, op, p)
					return false
				}
			}
			if list.Len() != tree.Len() {
				t.Logf("seed %d op %d: len disagreement %d vs %d", seed, op, list.Len(), tree.Len())
				return false
			}
			if _, ok := tree.checkInvariants(); !ok {
				t.Logf("seed %d op %d: tree invariants violated", seed, op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeManyIdenticalRanges(t *testing.T) {
	tree := NewTree()
	for i := 0; i < 100; i++ {
		if !tree.Insert(i, 10, 20) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if got := collect(tree, 15); len(got) != 100 {
		t.Fatalf("Stab over 100 identical ranges returned %d ids", len(got))
	}
	if _, ok := tree.checkInvariants(); !ok {
		t.Fatal("invariants violated with identical keys")
	}
	for i := 0; i < 100; i += 2 {
		if !tree.Remove(i) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if got := collect(tree, 15); len(got) != 50 {
		t.Fatalf("after removals Stab returned %d ids", len(got))
	}
	if _, ok := tree.checkInvariants(); !ok {
		t.Fatal("invariants violated after removals")
	}
}

func TestTreeDrainAndReuse(t *testing.T) {
	tree := NewTree()
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if !tree.Insert(i, uint64(i*10), uint64(i*10+15)) {
				t.Fatalf("round %d insert %d failed", round, i)
			}
		}
		for i := 0; i < 50; i++ {
			if !tree.Remove(i) {
				t.Fatalf("round %d remove %d failed", round, i)
			}
		}
		if tree.Len() != 0 {
			t.Fatalf("round %d: tree not drained (%d left)", round, tree.Len())
		}
		if got := collect(tree, 25); got != nil {
			t.Fatalf("round %d: drained tree still stabs %v", round, got)
		}
	}
}

func TestStabVisitsEachRegionOncePerPoint(t *testing.T) {
	// Nested loops: outer contains inner; a point in the inner loop must
	// visit both exactly once (the paper increments all overlapping
	// regions for such samples).
	for _, mk := range []func() Index{
		func() Index { return NewList() },
		func() Index { return NewTree() },
		func() Index { return NewEpoch() },
	} {
		ix := mk()
		ix.Insert(0, 100, 400) // outer
		ix.Insert(1, 200, 300) // inner
		counts := map[int]int{}
		ix.Stab(250, func(id int) { counts[id]++ })
		if counts[0] != 1 || counts[1] != 1 {
			t.Errorf("nested stab counts = %v; want both exactly 1", counts)
		}
	}
}

func BenchmarkStabList16(b *testing.B)    { benchStab(b, NewList(), 16) }
func BenchmarkStabTree16(b *testing.B)    { benchStab(b, NewTree(), 16) }
func BenchmarkStabEpoch16(b *testing.B)   { benchStab(b, NewEpoch(), 16) }
func BenchmarkStabList256(b *testing.B)   { benchStab(b, NewList(), 256) }
func BenchmarkStabTree256(b *testing.B)   { benchStab(b, NewTree(), 256) }
func BenchmarkStabEpoch256(b *testing.B)  { benchStab(b, NewEpoch(), 256) }
func BenchmarkStabList1024(b *testing.B)  { benchStab(b, NewList(), 1024) }
func BenchmarkStabTree1024(b *testing.B)  { benchStab(b, NewTree(), 1024) }
func BenchmarkStabEpoch1024(b *testing.B) { benchStab(b, NewEpoch(), 1024) }

func benchStab(b *testing.B, ix Index, n int) {
	rng := rand.New(rand.NewPCG(42, uint64(n)))
	span := uint64(n * 1000)
	for i := 0; i < n; i++ {
		start := rng.Uint64N(span)
		ix.Insert(i, start, start+200)
	}
	points := make([]uint64, 1024)
	for i := range points {
		points[i] = rng.Uint64N(span)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		ix.Stab(points[i%len(points)], func(id int) { sink += id })
	}
	_ = sink
}
