package gpd

import (
	"math/rand/v2"
	"testing"
)

// noisyCentroidStream produces a deterministic centroid series with a
// steady base, small per-interval wobble and occasional larger excursions
// — the raw material of the Section 2.3 sensitivity claims.
func noisyCentroidStream(seed uint64, n int) []float64 {
	rng := rand.New(rand.NewPCG(seed, 0xCE47))
	out := make([]float64, n)
	base := 200_000.0
	for i := range out {
		c := base * (1 + 0.01*(rng.Float64()-0.5))
		if rng.IntN(12) == 0 {
			c = base * (1 + 0.3*(rng.Float64()-0.5))
		}
		out[i] = c
	}
	return out
}

// TestTH3MonotoneSensitivity pins the brittleness claim: loosening the
// stability-exit threshold strictly reduces (or keeps) the number of
// phase changes on the same centroid stream.
func TestTH3MonotoneSensitivity(t *testing.T) {
	stream := noisyCentroidStream(9, 600)
	prev := -1
	for _, th3 := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		cfg := DefaultConfig()
		cfg.TH2 = min(cfg.TH2, th3)
		cfg.TH1 = min(cfg.TH1, cfg.TH2)
		cfg.TH3 = th3
		if cfg.TH4 < th3 {
			cfg.TH4 = th3
		}
		d := MustNew(cfg)
		for _, c := range stream {
			d.Observe(c)
		}
		if prev >= 0 && d.PhaseChanges() > prev {
			t.Errorf("TH3 %.2f: %d changes > %d at a tighter threshold", th3, d.PhaseChanges(), prev)
		}
		prev = d.PhaseChanges()
	}
	if prev != 0 {
		// With TH3 at 40% the excursions (±15%) never leave the band.
		t.Errorf("loosest threshold still saw %d changes", prev)
	}
}

// TestHistorySizeSensitivity: longer centroid histories widen the band of
// stability (more variance captured) and damp reactions, another axis of
// the same brittleness.
func TestHistorySizeSensitivity(t *testing.T) {
	stream := noisyCentroidStream(11, 600)
	changes := map[int]int{}
	for _, hist := range []int{4, 8, 32} {
		cfg := DefaultConfig()
		cfg.HistorySize = hist
		d := MustNew(cfg)
		for _, c := range stream {
			d.Observe(c)
		}
		changes[hist] = d.PhaseChanges()
	}
	// No strict monotonicity is guaranteed here (the timer interacts with
	// warm-up), but the counts must differ across settings — the
	// sensitivity the paper complains about.
	if changes[4] == changes[8] && changes[8] == changes[32] {
		t.Errorf("phase-change counts identical across history sizes: %v", changes)
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
