package gpd

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newDefault(t *testing.T) *Detector {
	t.Helper()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

// feedStable pushes n identical-ish centroids.
func feedStable(d *Detector, centroid float64, n int) Verdict {
	var v Verdict
	for i := 0; i < n; i++ {
		// Tiny wobble so SD is nonzero but far below E/6.
		c := centroid * (1 + 0.001*float64(i%3-1))
		v = d.Observe(c)
	}
	return v
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.HistorySize = 1 },
		func(c *Config) { c.TH1 = 0 },
		func(c *Config) { c.TH1 = 0.2 }, // > TH2
		func(c *Config) { c.TH3 = 0.9 }, // > TH4
		func(c *Config) { c.StableTimer = 0 },
		func(c *Config) { c.MaxBandFrac = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config should panic")
		}
	}()
	MustNew(Config{})
}

func TestReachesStableOnSteadyCentroid(t *testing.T) {
	d := newDefault(t)
	v := feedStable(d, 100_000, 20)
	if v.State != Stable {
		t.Fatalf("state after steady stream = %v; want stable", v.State)
	}
	if d.StableFraction() == 0 {
		t.Error("stable fraction should be positive")
	}
	if d.PhaseChanges() != 0 {
		t.Errorf("phase changes = %d; want 0", d.PhaseChanges())
	}
}

func TestEntersStableViaLessStable(t *testing.T) {
	d := newDefault(t)
	seen := map[State]bool{}
	for i := 0; i < 20; i++ {
		v := d.Observe(100_000)
		seen[v.State] = true
		if v.State == Stable {
			break
		}
	}
	if !seen[Unstable] || !seen[LessStable] || !seen[Stable] {
		t.Errorf("expected traversal through all states, saw %v", seen)
	}
}

func TestPhaseChangeOnCentroidShift(t *testing.T) {
	d := newDefault(t)
	v := feedStable(d, 100_000, 20)
	if v.State != Stable {
		t.Fatal("precondition: not stable")
	}
	// 20% shift: beyond TH3 (10%) but below TH4 (67%).
	v = d.Observe(120_000)
	if v.State != Unstable {
		t.Fatalf("state after 20%% shift = %v; want unstable", v.State)
	}
	if !v.PhaseChange {
		t.Error("20% shift should report a phase change")
	}
	if v.Drastic {
		t.Error("20% shift should not be drastic")
	}
	if d.PhaseChanges() != 1 {
		t.Errorf("phase changes = %d; want 1", d.PhaseChanges())
	}
}

func TestDrasticChangeFlagAndHistoryReset(t *testing.T) {
	d := newDefault(t)
	feedStable(d, 100_000, 20)
	v := d.Observe(300_000) // 200% drift
	if !v.Drastic {
		t.Fatal("200% drift should be drastic")
	}
	if v.State != Unstable {
		t.Fatalf("state = %v; want unstable", v.State)
	}
	// After the reset, the detector can re-stabilize around the new
	// centroid within history-size + timer intervals.
	v = feedStable(d, 300_000, 12)
	if v.State != Stable {
		t.Errorf("state after re-stabilization = %v; want stable", v.State)
	}
}

func TestSmallDriftWithinBandTolerated(t *testing.T) {
	d := newDefault(t)
	feedStable(d, 100_000, 20)
	// 0.5% wobble stays well inside TH1 territory.
	for i := 0; i < 10; i++ {
		v := d.Observe(100_000 * (1 + 0.005*float64(i%2*2-1)))
		if v.State != Stable {
			t.Fatalf("interval %d: 0.5%% wobble broke stability (%v)", i, v.State)
		}
	}
	if d.PhaseChanges() != 0 {
		t.Errorf("phase changes = %d; want 0", d.PhaseChanges())
	}
}

func TestThickBandBlocksLessStable(t *testing.T) {
	d := newDefault(t)
	// Alternate between two far-apart centroids: E ≈ 150k, SD ≈ 50k,
	// SD/E ≈ 1/3 > 1/6 → band too thick, LessStable never entered.
	for i := 0; i < 40; i++ {
		c := 100_000.0
		if i%2 == 1 {
			c = 200_000.0
		}
		v := d.Observe(c)
		if v.State != Unstable {
			t.Fatalf("interval %d: thick-band stream reached %v", i, v.State)
		}
	}
	if d.StableFraction() != 0 {
		t.Error("stable fraction should be 0 for a thick-band stream")
	}
}

// TestPeriodicSwitchingCausesInstability reproduces the facerec pathology:
// execution alternating between two region sets at a period comparable to
// the interval size keeps GPD perpetually out of stable phase even though
// each set is internally stable.
func TestPeriodicSwitchingCausesInstability(t *testing.T) {
	d := newDefault(t)
	phases := 0
	for rep := 0; rep < 30; rep++ {
		for i := 0; i < 3; i++ {
			if v := d.Observe(100_000); v.PhaseChange && v.State == Unstable {
				phases++
			}
		}
		for i := 0; i < 3; i++ {
			if v := d.Observe(180_000); v.PhaseChange && v.State == Unstable {
				phases++
			}
		}
	}
	if frac := d.StableFraction(); frac > 0.5 {
		t.Errorf("stable fraction under periodic switching = %.2f; want low", frac)
	}
}

func TestObservePCs(t *testing.T) {
	d := newDefault(t)
	pcs := make([]uint64, 100)
	for i := range pcs {
		pcs[i] = 100_000
	}
	var v Verdict
	for i := 0; i < 20; i++ {
		v = d.ObservePCs(pcs)
	}
	if v.State != Stable {
		t.Errorf("ObservePCs steady stream = %v; want stable", v.State)
	}
	// Empty interval: state repeats, no transition.
	v2 := d.ObservePCs(nil)
	if v2.State != Stable || v2.PhaseChange {
		t.Errorf("empty interval verdict = %+v; want unchanged stable", v2)
	}
	if d.Intervals() != 21 {
		t.Errorf("intervals = %d; want 21", d.Intervals())
	}
}

func TestReset(t *testing.T) {
	d := newDefault(t)
	feedStable(d, 100_000, 20)
	d.Observe(200_000)
	d.Reset()
	if d.State() != Unstable || d.PhaseChanges() != 0 || d.Intervals() != 0 || d.StableFraction() != 0 {
		t.Error("Reset did not clear detector")
	}
}

func TestVerdictBandReporting(t *testing.T) {
	d := newDefault(t)
	feedStable(d, 100_000, 10)
	v := d.Observe(100_000)
	if !(v.BandLow <= 100_000 && 100_000 <= v.BandHigh) {
		t.Errorf("band [%v, %v] should straddle the steady centroid", v.BandLow, v.BandHigh)
	}
	if v.Delta != 0 {
		t.Errorf("delta inside band = %v; want 0", v.Delta)
	}
}

// Property: the detector never reports Stable before HistorySize + timer
// observations, and state is always one of the three defined values.
func TestWarmupProperty(t *testing.T) {
	cfg := DefaultConfig()
	minIntervals := cfg.HistorySize + cfg.StableTimer
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		d := MustNew(cfg)
		base := 1000 + rng.Float64()*1e6
		for i := 0; i < 50; i++ {
			c := base * (1 + (rng.Float64()-0.5)*0.004)
			v := d.Observe(c)
			if v.State < Unstable || v.State > Stable {
				return false
			}
			if v.State == Stable && i+1 < minIntervals {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase-change accounting is consistent — the verdict stream's
// stable→unstable crossings equal PhaseChanges().
func TestPhaseChangeAccountingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		d := MustNew(DefaultConfig())
		counted := 0
		for i := 0; i < 300; i++ {
			var c float64
			switch rng.IntN(3) {
			case 0:
				c = 100_000
			case 1:
				c = 100_000 * (1 + rng.Float64()*0.02)
			default:
				c = 100_000 * (1 + rng.Float64())
			}
			v := d.Observe(c)
			if v.Prev == Stable && v.State == Unstable {
				counted++
			}
		}
		return counted == d.PhaseChanges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Unstable.String() != "unstable" || LessStable.String() != "less-stable" || Stable.String() != "stable" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state should render")
	}
}
