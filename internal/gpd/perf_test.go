package gpd

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPerfConfigValidation(t *testing.T) {
	good := DefaultPerfConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default perf config invalid: %v", err)
	}
	if _, err := NewPerfTracker(PerfConfig{HistorySize: 1, ChangeFrac: 0.1}); err == nil {
		t.Error("tiny history accepted")
	}
	if _, err := NewPerfTracker(PerfConfig{HistorySize: 8, ChangeFrac: 0}); err == nil {
		t.Error("zero change fraction accepted")
	}
}

func TestPerfTrackerSteadyMetric(t *testing.T) {
	p, err := NewPerfTracker(DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Steady CPI ≈ 1.5 with tiny wobble: no changes ever.
	for i := 0; i < 50; i++ {
		v := p.Observe(1.5 + 0.01*float64(i%3-1))
		if v.Changed {
			t.Fatalf("interval %d: steady metric flagged (delta %v)", i, v.Delta)
		}
	}
	if p.Changes() != 0 {
		t.Errorf("changes = %d; want 0", p.Changes())
	}
	if p.Intervals() != 50 {
		t.Errorf("intervals = %d; want 50", p.Intervals())
	}
}

func TestPerfTrackerDetectsCPIJump(t *testing.T) {
	p, err := NewPerfTracker(DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.Observe(1.5)
	}
	// The data set outgrew the cache: CPI jumps 1.5 -> 2.4 (60%).
	v := p.Observe(2.4)
	if !v.Changed {
		t.Fatalf("60%% CPI jump not flagged: %+v", v)
	}
	if p.Changes() != 1 {
		t.Fatalf("changes = %d; want 1", p.Changes())
	}
	// The band re-forms around the new level; staying there is not a
	// change.
	for i := 0; i < 20; i++ {
		if v := p.Observe(2.4); v.Changed {
			t.Fatalf("re-formed band flagged steady value: %+v", v)
		}
	}
	// Dropping back is a change again.
	if v := p.Observe(1.5); !v.Changed {
		t.Error("return to old level not flagged")
	}
}

func TestPerfTrackerNoFlagDuringWarmup(t *testing.T) {
	p, _ := NewPerfTracker(DefaultPerfConfig())
	// Wild values during warm-up (history not full) must not flag.
	vals := []float64{1, 10, 0.1, 5, 2, 8, 0.5}
	for i, x := range vals {
		if v := p.Observe(x); v.Changed {
			t.Fatalf("warm-up observation %d flagged", i)
		}
	}
}

func TestPerfTrackerReset(t *testing.T) {
	p, _ := NewPerfTracker(DefaultPerfConfig())
	for i := 0; i < 20; i++ {
		p.Observe(1.5)
	}
	p.Observe(3.0)
	p.Reset()
	if p.Changes() != 0 || p.Intervals() != 0 {
		t.Error("Reset did not clear tracker")
	}
}

// Property: a tracker fed values from a fixed narrow band never flags, and
// the change counter equals the number of Changed verdicts.
func TestPerfTrackerProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		p, err := NewPerfTracker(DefaultPerfConfig())
		if err != nil {
			return false
		}
		base := 0.5 + rng.Float64()*5
		counted := 0
		for i := 0; i < 200; i++ {
			var x float64
			if rng.IntN(10) == 0 {
				x = base * (1.5 + rng.Float64()) // occasional excursion
			} else {
				x = base * (1 + 0.02*(rng.Float64()-0.5))
			}
			if p.Observe(x).Changed {
				counted++
			}
		}
		return counted == p.Changes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
