package gpd

import (
	"fmt"

	"regionmon/internal/snap"
)

// Detector and PerfTracker checkpointing. Snapshots capture the mutable
// observation state — the centroid/metric window (including its exact
// incremental sums, so band comparisons replay bit-for-bit), the state
// machine position, the stability timer and the counters — but not the
// configuration: Restore targets a detector constructed with the same
// Config, and a resumed detector then produces a byte-identical verdict
// stream for the same subsequent inputs.

const (
	detectorTag = "gpd"
	perfTag     = "gpdperf"
)

// AppendSnapshot encodes the detector's mutable state onto e.
func (d *Detector) AppendSnapshot(e *snap.Encoder) {
	e.Header(detectorTag, 1)
	e.Int(int(d.state))
	e.Int(d.timer)
	e.Int(d.changes)
	e.Int(d.stable)
	e.Int(d.total)
	d.hist.AppendSnapshot(e)
}

// RestoreSnapshot decodes state written by AppendSnapshot into d. The
// snapshot's history capacity must match the detector's HistorySize.
func (d *Detector) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(detectorTag, 1)
	state := State(dec.Int())
	timer := dec.Int()
	changes := dec.Int()
	stable := dec.Int()
	total := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	switch state {
	case Unstable, LessStable, Stable:
	default:
		return fmt.Errorf("gpd: snapshot has invalid state %d", int(state))
	}
	if err := d.hist.RestoreSnapshot(dec); err != nil {
		return err
	}
	d.state = state
	d.timer = timer
	d.changes = changes
	d.stable = stable
	d.total = total
	return nil
}

// Snapshot returns the detector's state as a standalone versioned byte
// snapshot.
func (d *Detector) Snapshot() []byte {
	e := snap.NewEncoder()
	d.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the detector's state from a Snapshot produced by a
// detector with the same configuration.
func (d *Detector) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := d.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}

// AppendSnapshot encodes the tracker's mutable state onto e.
func (p *PerfTracker) AppendSnapshot(e *snap.Encoder) {
	e.Header(perfTag, 1)
	e.Int(p.changes)
	e.Int(p.total)
	p.hist.AppendSnapshot(e)
}

// RestoreSnapshot decodes state written by AppendSnapshot into p.
func (p *PerfTracker) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(perfTag, 1)
	changes := dec.Int()
	total := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := p.hist.RestoreSnapshot(dec); err != nil {
		return err
	}
	p.changes = changes
	p.total = total
	return nil
}

// Snapshot returns the tracker's state as a standalone versioned byte
// snapshot.
func (p *PerfTracker) Snapshot() []byte {
	e := snap.NewEncoder()
	p.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the tracker's state from a Snapshot produced by a
// tracker with the same configuration.
func (p *PerfTracker) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := p.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}
