package gpd

import (
	"fmt"

	"regionmon/internal/stats"
)

// The prototype systems do not rely on the centroid alone: "other metrics
// of performance, such as CPI and DPI (Data Cache Misses per Instruction),
// are used to determine if the program performance characteristics have
// changed" (Section 1). PerfTracker implements that second signal: a
// band-of-stability detector over any scalar performance metric. The RTO
// can consult it to re-evaluate optimization strategy even when the
// working set (centroid) is steady — e.g. the same loops suddenly missing
// the cache because the data set outgrew a level of the hierarchy.

// PerfConfig parameterizes a PerfTracker.
type PerfConfig struct {
	// HistorySize is the number of past metric values forming the band.
	HistorySize int
	// ChangeFrac is the relative drift outside the band that signals a
	// performance change (e.g. 0.15 = 15%).
	ChangeFrac float64
}

// DefaultPerfConfig returns a tracker configuration matching the
// centroid detector's history depth with a 15% change threshold.
func DefaultPerfConfig() PerfConfig {
	return PerfConfig{HistorySize: 8, ChangeFrac: 0.15}
}

// Validate reports configuration errors.
func (c *PerfConfig) Validate() error {
	if c.HistorySize < 2 {
		return fmt.Errorf("gpd: perf history size %d < 2", c.HistorySize)
	}
	if c.ChangeFrac <= 0 {
		return fmt.Errorf("gpd: perf change fraction %v <= 0", c.ChangeFrac)
	}
	return nil
}

// PerfVerdict is the outcome of observing one interval's metric value.
// It is the pipeline payload the Perf adapter publishes.
//
//lint:payload
type PerfVerdict struct {
	// Value is the observed metric value.
	Value float64
	// Mean and SD describe the band the value was compared against.
	Mean, SD float64
	// Delta is the normalized drift outside the band (0 inside).
	Delta float64
	// Changed reports drift beyond ChangeFrac — a performance
	// characteristic change.
	Changed bool
}

// PerfTracker watches one scalar performance metric (CPI, DPI, ...) per
// interval and flags significant changes relative to its recent band.
// Not safe for concurrent use.
type PerfTracker struct {
	cfg     PerfConfig //lint:config -- fixed at construction
	hist    *stats.Window
	changes int
	total   int
}

// NewPerfTracker returns a tracker with the given configuration.
func NewPerfTracker(cfg PerfConfig) (*PerfTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PerfTracker{cfg: cfg, hist: stats.NewWindow(cfg.HistorySize)}, nil
}

// Observe feeds one interval's metric value.
func (p *PerfTracker) Observe(value float64) PerfVerdict {
	v := PerfVerdict{Value: value}
	v.Mean = p.hist.Mean()
	v.SD = p.hist.StdDev()
	if p.hist.Full() {
		lo, hi := v.Mean-v.SD, v.Mean+v.SD
		var drift float64
		switch {
		case value < lo:
			drift = lo - value
		case value > hi:
			drift = value - hi
		}
		if v.Mean > 0 {
			v.Delta = drift / v.Mean
		} else if drift > 0 {
			v.Delta = 1
		}
		if v.Delta > p.cfg.ChangeFrac {
			v.Changed = true
			p.changes++
			// A characteristic change obsoletes the old band.
			p.hist.Reset()
		}
	}
	p.hist.Add(value)
	p.total++
	return v
}

// Changes returns the number of performance changes flagged so far.
func (p *PerfTracker) Changes() int { return p.changes }

// Intervals returns the number of observations.
func (p *PerfTracker) Intervals() int { return p.total }

// Reset clears the tracker.
func (p *PerfTracker) Reset() {
	p.hist.Reset()
	p.changes = 0
	p.total = 0
}
