// Package gpd implements the paper's baseline: centroid-based Global Phase
// Detection (Section 2, Figure 1), as used by the ADORE-family prototype
// runtime optimizers.
//
// On every sample-buffer overflow the mean (centroid) of the buffered
// program-counter values is computed. The detector keeps a history of
// centroids and derives a Band Of Stability (BOS) from their expectation E
// and standard deviation SD: [E-SD, E+SD]. The drift Δ of the newest
// centroid from the band (0 inside the band) drives a three-state machine
// — Unstable, LessStable, Stable — with empirically determined thresholds
// TH1..TH4 of 1%, 5%, 10% and 67% of E.
//
// Figure 1 in the source text is only partially legible; the transition
// rules below are this reproduction's documented interpretation (see also
// DESIGN.md):
//
//   - Unstable → LessStable when Δ/E ≤ TH2 and the band is not too thick
//     (SD < E/6, the paper's explicit check) and the history is full.
//   - LessStable → Stable when Δ/E ≤ TH1 for StableTimer consecutive
//     intervals (the paper's "timer is associated with the less stable
//     state").
//   - LessStable → Unstable when Δ/E > TH3.
//   - Stable → Unstable when Δ/E > TH3; this is a phase change.
//   - Δ/E > TH4 in any state additionally flags a drastic change — the
//     hint that the working set itself moved (new-code detection in the
//     prototype systems) — and clears the centroid history.
package gpd

import (
	"fmt"

	"regionmon/internal/stats"
)

// State is the detector's phase state.
type State int

const (
	// Unstable: the centroid is drifting; no optimization is attempted.
	Unstable State = iota
	// LessStable: the centroid has been near the band; the stability
	// timer is running.
	LessStable
	// Stable: a stable phase — the optimizer's window of opportunity.
	Stable
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Unstable:
		return "unstable"
	case LessStable:
		return "less-stable"
	case Stable:
		return "stable"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config parameterizes the detector. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// HistorySize is the number of past centroids forming the band.
	HistorySize int
	// TH1 is the drift (fraction of E) below which the stability timer
	// advances (paper: 1%).
	TH1 float64
	// TH2 is the drift below which an unstable phase becomes less
	// stable (paper: 5%).
	TH2 float64
	// TH3 is the drift above which stability is lost (paper: 10%).
	TH3 float64
	// TH4 is the drastic-change drift hinting a working-set shift
	// (paper: 67%).
	TH4 float64
	// StableTimer is the number of consecutive low-drift intervals in
	// LessStable required to declare Stable.
	StableTimer int
	// MaxBandFrac is the maximum SD/E ratio for a meaningful band
	// (paper: 1/6).
	MaxBandFrac float64
}

// DefaultConfig returns the paper's empirically determined parameters.
func DefaultConfig() Config {
	return Config{
		HistorySize: 8,
		TH1:         0.01,
		TH2:         0.05,
		TH3:         0.10,
		TH4:         0.67,
		StableTimer: 2,
		MaxBandFrac: 1.0 / 6.0,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.HistorySize < 2 {
		return fmt.Errorf("gpd: history size %d < 2", c.HistorySize)
	}
	if !(c.TH1 > 0 && c.TH1 <= c.TH2 && c.TH2 <= c.TH3 && c.TH3 <= c.TH4) {
		return fmt.Errorf("gpd: thresholds must satisfy 0 < TH1 <= TH2 <= TH3 <= TH4 (got %v %v %v %v)",
			c.TH1, c.TH2, c.TH3, c.TH4)
	}
	if c.StableTimer < 1 {
		return fmt.Errorf("gpd: stable timer %d < 1", c.StableTimer)
	}
	if c.MaxBandFrac <= 0 {
		return fmt.Errorf("gpd: max band fraction %v <= 0", c.MaxBandFrac)
	}
	return nil
}

// Verdict is the outcome of observing one interval. It is the pipeline
// payload the GPD adapter publishes.
//
//lint:payload
type Verdict struct {
	// State is the detector state after the observation.
	State State
	// Prev is the state before the observation.
	Prev State
	// PhaseChange reports a crossing of the stable boundary in either
	// direction (the dotted transitions of the paper's state diagrams).
	PhaseChange bool
	// Drastic reports drift beyond TH4 — the working-set-shift hint.
	Drastic bool
	// Centroid is the observed interval centroid.
	Centroid float64
	// Delta is the normalized drift Δ/E from the band of stability.
	Delta float64
	// BandLow and BandHigh delimit the band of stability used.
	BandLow, BandHigh float64
}

// Detector is the centroid-based global phase detector. Not safe for
// concurrent use; the monitoring loop is single-threaded.
type Detector struct {
	cfg     Config //lint:config -- fixed at construction
	hist    *stats.Window
	state   State
	timer   int
	changes int
	stable  int
	total   int
}

// New returns a Detector with the given configuration.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, hist: stats.NewWindow(cfg.HistorySize)}, nil
}

// MustNew is New, panicking on configuration error (for use with
// DefaultConfig-derived configurations in tests and examples).
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// State returns the current phase state.
func (d *Detector) State() State { return d.state }

// PhaseChanges returns the number of stable-boundary crossings into
// Unstable observed so far — the quantity Figure 3 counts.
func (d *Detector) PhaseChanges() int { return d.changes }

// StableFraction returns the fraction of observed intervals spent in the
// Stable state — Figure 4's quantity.
func (d *Detector) StableFraction() float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.stable) / float64(d.total)
}

// Intervals returns the number of intervals observed.
func (d *Detector) Intervals() int { return d.total }

// ObservePCs computes the centroid of an interval's PC samples and feeds
// it to Observe. An empty interval repeats the previous state without
// advancing the machine.
func (d *Detector) ObservePCs(pcs []uint64) Verdict {
	if len(pcs) == 0 {
		d.total++
		if d.state == Stable {
			d.stable++
		}
		return Verdict{State: d.state, Prev: d.state}
	}
	return d.Observe(stats.Centroid(pcs))
}

// Observe feeds one interval centroid to the detector and returns the
// verdict.
func (d *Detector) Observe(centroid float64) Verdict {
	v := Verdict{Prev: d.state, Centroid: centroid}

	e := d.hist.Mean()
	sd := d.hist.StdDev()
	v.BandLow, v.BandHigh = e-sd, e+sd

	// Normalized drift from the band.
	var delta float64
	switch {
	case d.hist.Len() < 2:
		// No band yet: treat as maximal uncertainty; stay/return to
		// Unstable until a history accumulates.
		delta = 1
	case centroid < v.BandLow:
		delta = v.BandLow - centroid
	case centroid > v.BandHigh:
		delta = centroid - v.BandHigh
	}
	if d.hist.Len() >= 2 {
		if e > 0 {
			delta /= e
		} else if delta > 0 {
			delta = 1
		}
	}
	v.Delta = delta
	v.Drastic = d.hist.Len() >= 2 && delta > d.cfg.TH4

	bandThin := e > 0 && sd < e*d.cfg.MaxBandFrac

	switch d.state {
	case Unstable:
		if d.hist.Full() && delta <= d.cfg.TH2 && bandThin {
			d.state = LessStable
			d.timer = 0
		}
	case LessStable:
		switch {
		case delta > d.cfg.TH3:
			d.state = Unstable
		case delta <= d.cfg.TH1:
			d.timer++
			if d.timer >= d.cfg.StableTimer {
				d.state = Stable
			}
		default:
			d.timer = 0
		}
	case Stable:
		if delta > d.cfg.TH3 {
			d.state = Unstable
			d.changes++
		}
	}

	v.State = d.state
	v.PhaseChange = (v.Prev == Stable) != (v.State == Stable)

	d.hist.Add(centroid)
	if v.Drastic {
		// Working set moved: the old band is meaningless.
		d.hist.Reset()
		d.hist.Add(centroid)
	}

	d.total++
	if d.state == Stable {
		d.stable++
	}
	return v
}

// Reset returns the detector to its initial state, clearing history and
// counters.
func (d *Detector) Reset() {
	d.hist.Reset()
	d.state = Unstable
	d.timer = 0
	d.changes = 0
	d.stable = 0
	d.total = 0
}
