package gpd

import "testing"

// centroidStream deterministically generates centroids with stable
// plateaus, drifts and one drastic jump, so the fork test crosses every
// state and exercises the history-reset path.
func centroidStream(n int) []float64 {
	out := make([]float64, n)
	for t := range out {
		base := 1e6
		switch {
		case t >= n/2 && t < n/2+10:
			base = 5e6 // drastic jump, then a new plateau
		case t >= n/2+10:
			base = 5e6 + float64(t%3)*1e3
		default:
			base = 1e6 + float64(t%4)*500
		}
		out[t] = base
	}
	return out
}

func TestDetectorSnapshotForkEquality(t *testing.T) {
	const total, at = 100, 37
	stream := centroidStream(total)

	ref := MustNew(DefaultConfig())
	forked := MustNew(DefaultConfig())
	for i := 0; i < at; i++ {
		ref.Observe(stream[i])
		forked.Observe(stream[i])
	}
	snapBytes := forked.Snapshot()

	restored := MustNew(DefaultConfig())
	if err := restored.Restore(snapBytes); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if string(restored.Snapshot()) != string(snapBytes) {
		t.Fatal("restored detector snapshots to different bytes")
	}

	for i := at; i < total; i++ {
		rv := ref.Observe(stream[i])
		sv := restored.Observe(stream[i])
		if rv != sv {
			t.Fatalf("interval %d: verdict diverged: ref %+v restored %+v", i, rv, sv)
		}
	}
	if ref.PhaseChanges() != restored.PhaseChanges() || ref.Intervals() != restored.Intervals() {
		t.Fatalf("counters diverged")
	}
}

func TestDetectorSnapshotConfigMismatch(t *testing.T) {
	d := MustNew(DefaultConfig())
	d.Observe(100)
	cfg := DefaultConfig()
	cfg.HistorySize = 16
	if err := MustNew(cfg).Restore(d.Snapshot()); err == nil {
		t.Fatal("expected history-capacity mismatch error")
	}
}

func TestPerfTrackerSnapshotForkEquality(t *testing.T) {
	const total, at = 80, 33
	mk := func() *PerfTracker {
		p, err := NewPerfTracker(DefaultPerfConfig())
		if err != nil {
			t.Fatalf("NewPerfTracker: %v", err)
		}
		return p
	}
	value := func(i int) float64 {
		if i >= 40 && i < 50 {
			return 3.5 // CPI spike
		}
		return 1.2 + float64(i%5)*0.01
	}

	ref, forked := mk(), mk()
	for i := 0; i < at; i++ {
		ref.Observe(value(i))
		forked.Observe(value(i))
	}
	restored := mk()
	if err := restored.Restore(forked.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := at; i < total; i++ {
		rv := ref.Observe(value(i))
		sv := restored.Observe(value(i))
		if rv != sv {
			t.Fatalf("interval %d: verdict diverged: %+v vs %+v", i, rv, sv)
		}
	}
	if ref.Changes() != restored.Changes() || ref.Intervals() != restored.Intervals() {
		t.Fatal("counters diverged")
	}
}
