// Package vhash digests detector verdict streams: an incremental FNV-1a
// over every field of every verdict a pipeline emits, floats bit-exact.
// Two runs with equal digests emitted identical verdict streams, so a
// digest comparison is an exact equality proof — the property the soak
// harness's kill/restore check and the ingest fleet's shard-determinism
// tests both rest on.
//
// Hashing in an observer (rather than retaining verdicts) keeps the
// consumer O(1) in memory, so a digest cannot mask a detector leak; and
// the digest state is a single uint64, so it checkpoints alongside the
// detector stack (Sum/Resume) and a restored stream's digest continues
// exactly where the killed one stopped.
package vhash

import (
	"fmt"
	"math"

	"regionmon/internal/altdetect"
	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
)

const (
	offset64 = 0xcbf29ce484222325
	prime64  = 0x100000001b3
)

// Digest is an incremental FNV-1a over a verdict stream. The zero value
// is an empty digest, equivalent to New(): the FNV offset basis is
// applied lazily on the first fold, so a zero-value Digest hashes
// identically to a constructed one rather than silently folding from
// basis 0.
type Digest struct {
	h      uint64
	seeded bool
}

// New returns an empty digest (FNV-1a offset basis).
func New() *Digest { return &Digest{h: offset64, seeded: true} }

// Resume returns a digest continuing from a previously captured Sum, for
// restoring a checkpointed stream consumer.
func Resume(sum uint64) *Digest { return &Digest{h: sum, seeded: true} }

// Sum returns the current digest value.
func (d *Digest) Sum() uint64 {
	if !d.seeded {
		return offset64
	}
	return d.h
}

func (d *Digest) byte(b byte) {
	if !d.seeded {
		d.h, d.seeded = offset64, true
	}
	d.h = (d.h ^ uint64(b)) * prime64
}

// Bool folds one bool into the digest.
func (d *Digest) Bool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

// F64 folds a float64 into the digest, bit-exact.
func (d *Digest) F64(v float64) { d.U64(math.Float64bits(v)) }

// Int folds an int into the digest (as its int64 bits).
func (d *Digest) Int(v int) { d.U64(uint64(int64(v))) }

// U64 folds a uint64 into the digest, little-endian byte order.
func (d *Digest) U64(v uint64) {
	for i := 0; i < 64; i += 8 {
		d.byte(byte(v >> i))
	}
}

// Str folds a length-prefixed string into the digest.
func (d *Digest) Str(s string) {
	d.Int(len(s))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

// Report folds every field of every verdict in one merged interval
// report — including the typed payloads, floats bit-exact — into the
// digest. An unknown payload type is an error: a consumer that silently
// skipped a detector's output would prove nothing about it.
func (d *Digest) Report(rep *pipeline.IntervalReport) error {
	d.Int(rep.Seq)
	d.U64(rep.Cycle)
	d.Int(len(rep.Verdicts))
	for i := range rep.Verdicts {
		v := &rep.Verdicts[i]
		d.Str(v.Detector)
		d.Bool(v.Stable)
		d.Bool(v.PhaseChange)
		switch p := v.Payload.(type) {
		case *gpd.Verdict:
			d.Int(int(p.State))
			d.Int(int(p.Prev))
			d.Bool(p.PhaseChange)
			d.Bool(p.Drastic)
			d.F64(p.Centroid)
			d.F64(p.Delta)
			d.F64(p.BandLow)
			d.F64(p.BandHigh)
		case *region.Report:
			d.regionReport(p)
		case *altdetect.Verdict:
			d.F64(p.Similarity)
			d.Bool(p.Changed)
			d.Int(p.Blocks)
		case *gpd.PerfVerdict:
			d.F64(p.Value)
			d.F64(p.Mean)
			d.F64(p.SD)
			d.F64(p.Delta)
			d.Bool(p.Changed)
		case *changepoint.Verdict:
			d.F64(p.Value)
			d.Bool(p.Evaluated)
			d.Bool(p.Changed)
			d.U64(uint64(p.ChangeAt))
			d.F64(p.Stat)
			d.F64(p.PValue)
		default:
			return fmt.Errorf("vhash: unknown verdict payload %T from detector %q", v.Payload, v.Detector)
		}
	}
	return nil
}

func (d *Digest) regionReport(r *region.Report) {
	d.Int(r.Seq)
	d.Int(r.TotalSamples)
	d.Int(r.MonitoredSamples)
	d.Int(r.UCRSamples)
	d.Int(r.IdleSamples)
	d.F64(r.UCRFraction)
	d.Bool(r.FormationTriggered)
	d.Int(len(r.NewRegions))
	for _, reg := range r.NewRegions {
		d.Int(reg.ID)
		d.U64(uint64(reg.Start))
		d.U64(uint64(reg.End))
	}
	d.Int(len(r.Pruned))
	for _, reg := range r.Pruned {
		d.Int(reg.ID)
	}
	d.Int(len(r.Verdicts))
	for i := range r.Verdicts {
		rv := &r.Verdicts[i]
		d.Int(rv.Region.ID)
		d.Int(int(rv.Verdict.State))
		d.Int(int(rv.Verdict.Prev))
		d.F64(rv.Verdict.R)
		d.Bool(rv.Verdict.PhaseChange)
		d.Bool(rv.Verdict.Empty)
		d.Bool(rv.Verdict.RefUpdated)
		d.Int(rv.Samples)
	}
}
