package vhash

import (
	"testing"

	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/pipeline"
)

func testPipeline(t *testing.T) *pipeline.Pipeline {
	t.Helper()
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gpd.NewPerfTracker(gpd.DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipe := pipeline.New()
	pipe.MustRegister(pipeline.NewGPD(gdet))
	pipe.MustRegister(pipeline.NewCPI(tr))
	return pipe
}

func overflow(seq int) *hpm.Overflow {
	samples := make([]hpm.Sample, 16)
	for i := range samples {
		samples[i] = hpm.Sample{
			PC:     isa.Addr(0x10000 + 4*(seq%3*16+i)),
			Cycle:  uint64(seq*1600 + i*100),
			Instrs: 10,
		}
	}
	return &hpm.Overflow{Seq: seq, Cycle: uint64(seq*1600 + 1500), Samples: samples}
}

func runDigest(t *testing.T, intervals int, d *Digest) {
	t.Helper()
	pipe := testPipeline(t)
	pipe.AddObserver(func(rep *pipeline.IntervalReport) {
		if err := d.Report(rep); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < intervals; i++ {
		pipe.ProcessOverflow(overflow(i))
	}
}

// TestDigestDeterministic: the same verdict stream hashes to the same sum,
// and a different stream to a different one.
func TestDigestDeterministic(t *testing.T) {
	a, b := New(), New()
	runDigest(t, 40, a)
	runDigest(t, 40, b)
	if a.Sum() != b.Sum() {
		t.Fatalf("equal streams digest to %#x vs %#x", a.Sum(), b.Sum())
	}
	if a.Sum() == New().Sum() {
		t.Fatal("digest never advanced")
	}
	c := New()
	runDigest(t, 41, c)
	if c.Sum() == a.Sum() {
		t.Fatal("different streams digest equal")
	}
}

// TestZeroValueEquivalentToNew pins the lazy-basis fix: a zero-value
// Digest must hash identically to a New() one. Before the fix the zero
// value folded from basis 0, silently producing digests that could never
// match a constructed consumer's.
func TestZeroValueEquivalentToNew(t *testing.T) {
	var zero Digest
	if zero.Sum() != New().Sum() {
		t.Fatalf("empty zero-value sum %#x != New() sum %#x", zero.Sum(), New().Sum())
	}
	fresh := New()
	for _, d := range []*Digest{&zero, fresh} {
		d.Int(7)
		d.F64(2.25)
		d.Bool(true)
		d.Str("gpd")
	}
	if zero.Sum() != fresh.Sum() {
		t.Fatalf("zero-value digest %#x != New() digest %#x over the same stream", zero.Sum(), fresh.Sum())
	}
	// And a resumed continuation of the zero-value digest carries on
	// identically.
	cont := Resume(zero.Sum())
	fresh.U64(42)
	cont.U64(42)
	if cont.Sum() != fresh.Sum() {
		t.Fatalf("resumed zero-value digest diverged: %#x vs %#x", cont.Sum(), fresh.Sum())
	}
}

// TestResumeContinuity: splitting a stream across Sum/Resume produces the
// same digest as hashing it in one piece — the property fleet checkpoint
// fidelity rests on.
func TestResumeContinuity(t *testing.T) {
	whole := New()
	whole.Int(1)
	whole.U64(99)
	whole.F64(3.5)
	whole.Bool(true)
	whole.Str("regions")

	first := New()
	first.Int(1)
	first.U64(99)
	second := Resume(first.Sum())
	second.F64(3.5)
	second.Bool(true)
	second.Str("regions")
	if whole.Sum() != second.Sum() {
		t.Fatalf("resumed digest %#x != one-piece digest %#x", second.Sum(), whole.Sum())
	}
}

// TestUnknownPayload: a report carrying an unregistered payload type must
// be an error, never silently skipped.
func TestUnknownPayload(t *testing.T) {
	d := New()
	rep := &pipeline.IntervalReport{
		Seq:      0,
		Verdicts: []pipeline.Verdict{{Detector: "mystery", Payload: struct{ X int }{1}}},
	}
	if err := d.Report(rep); err == nil {
		t.Fatal("unknown payload hashed without error")
	}
}

// TestReportNoAllocs pins the hot-path contract: hashing a report must not
// allocate (the digest runs inside per-interval observers).
func TestReportNoAllocs(t *testing.T) {
	pipe := testPipeline(t)
	d := New()
	var rep *pipeline.IntervalReport
	for i := 0; i < 8; i++ {
		rep = pipe.ProcessOverflow(overflow(i))
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := d.Report(rep); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Report allocates %v per run; want 0", avg)
	}
}
