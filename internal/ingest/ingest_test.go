package ingest

import (
	"bytes"
	"fmt"
	"testing"

	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
)

// buildStack is the test fleet's per-stream detector stack: GPD, a CPI
// tracker and the E-divisive change-point detector, all on defaults.
func buildStack(stream int) (*pipeline.Pipeline, error) {
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	tr, err := gpd.NewPerfTracker(gpd.DefaultPerfConfig())
	if err != nil {
		return nil, err
	}
	cpd, err := changepoint.New(changepoint.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pipe := pipeline.New()
	pipe.MustRegister(pipeline.NewGPD(gdet))
	pipe.MustRegister(pipeline.NewCPI(tr))
	pipe.MustRegister(pipeline.NewChangePoint(cpd))
	return pipe, nil
}

// smix is splitmix64, used to derive a deterministic per-(stream, seq)
// workload with no generator state to checkpoint.
func smix(rng *uint64) uint64 {
	*rng += 0x9e3779b97f4a7c15
	z := *rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fillOverflow writes the deterministic interval (stream, seq) into ov,
// reusing ov.Samples' backing array. Each stream rotates through three
// PC neighborhoods so phases form and change; streams use disjoint
// address ranges so their verdict streams differ.
func fillOverflow(ov *hpm.Overflow, stream, seq int) {
	rng := uint64(stream+1)*0x9e3779b97f4a7c15 + uint64(seq)*0xbf58476d1ce4e5b9
	phase := seq / 40 % 3
	base := isa.Addr(0x10000 + stream*0x4000 + phase*0x400)
	cycle := uint64(seq) * 20000
	buf := ov.Samples[:cap(ov.Samples)]
	for i := range buf {
		cycle += 60 + smix(&rng)%40
		buf[i] = hpm.Sample{
			PC:       base + isa.Addr(smix(&rng)%64)*isa.InstrBytes,
			Cycle:    cycle,
			Instrs:   6 + smix(&rng)%10,
			DCMisses: smix(&rng) % 3,
		}
	}
	ov.Samples = buf
	ov.Seq = seq
	ov.Cycle = cycle
}

func newOverflow(samples int) *hpm.Overflow {
	return &hpm.Overflow{Samples: make([]hpm.Sample, samples)}
}

func testConfig(shards int) Config {
	return Config{Shards: shards, QueueCap: 16, MaxSamples: 32, Build: buildStack}
}

// runFleet drives a fleet of streams across shards workers for the given
// number of deterministic intervals and returns the per-stream digests.
func runFleet(t *testing.T, streams, shards, intervals int) []uint64 {
	t.Helper()
	f, err := NewFleet(streams, testConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ov := newOverflow(24)
	for seq := 0; seq < intervals; seq++ {
		for s := 0; s < streams; s++ {
			fillOverflow(ov, s, seq)
			f.PushWait(s, ov)
		}
	}
	f.Drain()
	digs := make([]uint64, streams)
	for s := range digs {
		info, err := f.StreamInfo(s)
		if err != nil {
			t.Fatalf("stream %d: %v", s, err)
		}
		if info.Intervals != intervals {
			t.Fatalf("stream %d processed %d intervals, want %d", s, info.Intervals, intervals)
		}
		digs[s] = info.Digest
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return digs
}

// TestFleetDeterminism is the tentpole guarantee: per-stream verdict
// digests are byte-identical regardless of worker count. Run under -race
// this also proves the rings are properly synchronized.
func TestFleetDeterminism(t *testing.T) {
	const streams, intervals = 9, 200
	ref := runFleet(t, streams, 1, intervals)
	for _, shards := range []int{3, 8} {
		got := runFleet(t, streams, shards, intervals)
		for s := range ref {
			if got[s] != ref[s] {
				t.Errorf("stream %d digest with %d shards = %#x, want %#x (1 shard)", s, shards, got[s], ref[s])
			}
		}
	}
	// Streams carry distinct workloads, so equal digests across streams
	// would mean batches were cross-wired somewhere.
	seen := map[uint64]int{}
	for s, d := range ref {
		if prev, ok := seen[d]; ok {
			t.Errorf("streams %d and %d share digest %#x", prev, s, d)
		}
		seen[d] = s
	}
}

// TestFleetSnapshotFork: a snapshot taken mid-run restores into a fleet
// with a different shard count, and both fleets — fed the same remaining
// intervals — end with identical per-stream digests. Also pins that the
// snapshot bytes themselves are topology-independent.
func TestFleetSnapshotFork(t *testing.T) {
	const streams, half = 6, 120
	push := func(f *Fleet, from, to int) {
		ov := newOverflow(24)
		for seq := from; seq < to; seq++ {
			for s := 0; s < streams; s++ {
				fillOverflow(ov, s, seq)
				f.PushWait(s, ov)
			}
		}
	}
	digests := func(f *Fleet) []uint64 {
		f.Drain()
		out := make([]uint64, streams)
		for s := range out {
			info, err := f.StreamInfo(s)
			if err != nil {
				t.Fatal(err)
			}
			out[s] = info.Digest
		}
		return out
	}

	a, err := NewFleet(streams, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	push(a, 0, half)
	a.Drain()
	snapA, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Topology independence of the bytes: a 1-shard fleet fed the same
	// intervals snapshots to the identical encoding.
	solo, err := NewFleet(streams, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	push(solo, 0, half)
	snapSolo, err := solo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapSolo) {
		t.Error("snapshot bytes differ between 4-shard and 1-shard fleets over the same pushes")
	}

	// Fork: restore into a 2-shard fleet and drive both forks onward.
	b, err := NewFleet(streams, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Restore(snapA); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Accepted; got != uint64(streams*half) {
		t.Errorf("restored fleet Accepted = %d, want %d", got, streams*half)
	}
	push(a, half, 2*half)
	push(b, half, 2*half)
	da, db := digests(a), digests(b)
	for s := range da {
		if da[s] != db[s] {
			t.Errorf("stream %d: forked digest %#x != original %#x", s, db[s], da[s])
		}
	}
}

// TestFleetBackpressure: a full shard ring drops (counted per stream)
// instead of blocking, and the accounting adds up. The worker is wedged
// deterministically by an observer parked on a gate channel.
func TestFleetBackpressure(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{
		Shards:     1,
		QueueCap:   4,
		MaxSamples: 32,
		Build: func(stream int) (*pipeline.Pipeline, error) {
			pipe, err := buildStack(stream)
			if err != nil {
				return nil, err
			}
			pipe.AddObserver(func(*pipeline.IntervalReport) { <-gate })
			return pipe, nil
		},
	}
	f, err := NewFleet(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const total = 12 // QueueCap + the in-flight batch + at least 7 drops
	ov := newOverflow(24)
	accepted := 0
	for seq := 0; seq < total; seq++ {
		fillOverflow(ov, 0, seq)
		if f.Push(0, ov) {
			accepted++
		}
	}
	if accepted < 4 || accepted > 5 {
		t.Errorf("accepted %d of %d pushes with QueueCap 4, want 4 or 5", accepted, total)
	}
	st := f.Stats()
	if st.Accepted != uint64(accepted) || st.Dropped != uint64(total-accepted) {
		t.Errorf("Stats accepted/dropped = %d/%d, want %d/%d", st.Accepted, st.Dropped, accepted, total-accepted)
	}
	if st.Shards[0].QueueCap != 4 {
		t.Errorf("QueueCap = %d, want 4", st.Shards[0].QueueCap)
	}
	if d := st.Shards[0].QueueDepth; d < accepted-1 || d > accepted {
		t.Errorf("QueueDepth = %d with %d accepted and a wedged worker", d, accepted)
	}

	close(gate) // unwedge; every accepted batch must still be processed
	f.Drain()
	info, err := f.StreamInfo(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Intervals != accepted {
		t.Errorf("processed %d intervals, want %d (every accepted batch, no drops processed)", info.Intervals, accepted)
	}
	if d := f.Stats().Shards[0].QueueDepth; d != 0 {
		t.Errorf("QueueDepth = %d after Drain, want 0", d)
	}
}

// TestFleetSteadyStateAllocs pins the tentpole perf contract: once the
// fleet is warm, pushing batches through to fully processed verdicts
// allocates nothing — producer side (slot copy) and worker side
// (pipeline hot path plus digest observer) together.
func TestFleetSteadyStateAllocs(t *testing.T) {
	const streams = 4
	f, err := NewFleet(streams, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ov := newOverflow(24)
	seq := 0
	for ; seq < 200; seq++ {
		for s := 0; s < streams; s++ {
			fillOverflow(ov, s, seq)
			f.PushWait(s, ov)
		}
	}
	f.Drain()
	if avg := testing.AllocsPerRun(100, func() {
		for s := 0; s < streams; s++ {
			fillOverflow(ov, s, seq)
			f.PushWait(s, ov)
		}
		seq++
	}); avg != 0 {
		t.Errorf("steady-state push allocates %v per interval set; want 0", avg)
	}
	f.Drain()
}

// newOverflowBatch allocates n independent overflow buffers (the ingest
// package cannot use soak.NewOverflowBatch — soak imports ingest).
func newOverflowBatch(n, samples int) []*hpm.Overflow {
	ovs := make([]*hpm.Overflow, n)
	for i := range ovs {
		ovs[i] = newOverflow(samples)
	}
	return ovs
}

// runFleetBatched drives the same deterministic workload as runFleet, but
// through PushBatchWait with per-stream, per-round batch sizes chosen by
// batchOf — so interleavings mix (stream 0 may push 5 intervals while
// stream 1 pushes 1) while each stream still sees its intervals in order.
func runFleetBatched(t *testing.T, streams, shards, intervals int, batchOf func(stream, base int) int) []uint64 {
	t.Helper()
	f, err := NewFleet(streams, testConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bufs := newOverflowBatch(8, 24)
	next := make([]int, streams) // next interval seq per stream
	for done := false; !done; {
		done = true
		for s := 0; s < streams; s++ {
			if next[s] >= intervals {
				continue
			}
			done = false
			n := batchOf(s, next[s])
			if n < 1 {
				n = 1
			}
			if n > len(bufs) {
				n = len(bufs)
			}
			if next[s]+n > intervals {
				n = intervals - next[s]
			}
			for k := 0; k < n; k++ {
				fillOverflow(bufs[k], s, next[s]+k)
			}
			f.PushBatchWait(s, bufs[:n])
			next[s] += n
		}
	}
	f.Drain()
	digs := make([]uint64, streams)
	for s := range digs {
		info, err := f.StreamInfo(s)
		if err != nil {
			t.Fatalf("stream %d: %v", s, err)
		}
		if info.Intervals != intervals {
			t.Fatalf("stream %d processed %d intervals, want %d", s, info.Intervals, intervals)
		}
		digs[s] = info.Digest
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return digs
}

// TestFleetBatchDifferential is the batch path's byte-identity contract:
// the same per-stream workload driven through a per-item Push loop and
// through PushBatchWait — with mixed batch sizes across streams and
// rounds — produces identical per-stream verdict digests at every shard
// count. Run under -race this also exercises multi-slot reservation
// publishing against concurrent worker drains.
func TestFleetBatchDifferential(t *testing.T) {
	const streams, intervals = 9, 200
	ref := runFleet(t, streams, 1, intervals) // per-item path, 1 shard
	shapes := map[string]func(stream, base int) int{
		"uniform8": func(stream, base int) int { return 8 },
		"mixed":    func(stream, base int) int { return 1 + (stream*7+base)%5 },
	}
	for name, batchOf := range shapes {
		for _, shards := range []int{1, 3, 8} {
			got := runFleetBatched(t, streams, shards, intervals, batchOf)
			for s := range ref {
				if got[s] != ref[s] {
					t.Errorf("%s: stream %d digest with %d shards = %#x, want %#x (per-item, 1 shard)",
						name, s, shards, got[s], ref[s])
				}
			}
		}
	}
}

// TestFleetBatchPartialDrop pins the partial-batch contract: when the ring
// fills mid-batch, the accepted intervals are exactly a prefix of the
// batch, the dropped suffix is counted, and the processed verdict stream
// equals a reference run fed only that prefix.
func TestFleetBatchPartialDrop(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{
		Shards:     1,
		QueueCap:   4,
		MaxSamples: 32,
		Build: func(stream int) (*pipeline.Pipeline, error) {
			pipe, err := buildStack(stream)
			if err != nil {
				return nil, err
			}
			pipe.AddObserver(func(*pipeline.IntervalReport) { <-gate })
			return pipe, nil
		},
	}
	f, err := NewFleet(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const total = 12 // QueueCap + the in-flight interval + at least 7 drops
	batch := newOverflowBatch(total, 24)
	for k := range batch {
		fillOverflow(batch[k], 0, k)
	}
	pushed := f.PushBatch(0, batch)
	if pushed < 4 || pushed > 5 {
		t.Errorf("PushBatch accepted %d of %d with QueueCap 4, want 4 or 5", pushed, total)
	}
	st := f.Stats()
	if st.Accepted != uint64(pushed) || st.Dropped != uint64(total-pushed) {
		t.Errorf("Stats accepted/dropped = %d/%d, want %d/%d", st.Accepted, st.Dropped, pushed, total-pushed)
	}
	close(gate)
	f.Drain()
	info, err := f.StreamInfo(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Intervals != pushed {
		t.Fatalf("processed %d intervals, want %d (the accepted prefix)", info.Intervals, pushed)
	}

	// Prefix property: a reference fleet fed exactly the first `pushed`
	// intervals per-item must land on the same digest — anything else
	// would mean the drop punched a hole mid-batch instead of truncating.
	r, err := NewFleet(1, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k := 0; k < pushed; k++ {
		r.PushWait(0, batch[k])
	}
	r.Drain()
	rinfo, err := r.StreamInfo(0)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Digest != info.Digest {
		t.Errorf("partial-drop digest %#x != prefix reference %#x", info.Digest, rinfo.Digest)
	}
}

// TestFleetBatchAllocs pins the batched producer path's steady-state
// allocation contract: pushing preallocated interval batches through to
// fully processed verdicts allocates nothing on either side of the ring.
func TestFleetBatchAllocs(t *testing.T) {
	const streams, batch = 4, 8
	f, err := NewFleet(streams, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bufs := make([][]*hpm.Overflow, streams)
	for s := range bufs {
		bufs[s] = newOverflowBatch(batch, 24)
	}
	seq := 0
	pushAll := func() {
		for s := 0; s < streams; s++ {
			for k := range bufs[s] {
				fillOverflow(bufs[s][k], s, seq+k)
			}
			f.PushBatchWait(s, bufs[s])
		}
		seq += batch
	}
	for seq < 200 {
		pushAll()
	}
	f.Drain()
	if avg := testing.AllocsPerRun(100, pushAll); avg != 0 {
		t.Errorf("steady-state batched push allocates %v per round; want 0", avg)
	}
	f.Drain()
}

// TestFleetStreamInfo covers the in-band info op: shard assignment
// matches ShardOf and interval counts track per-stream pushes.
func TestFleetStreamInfo(t *testing.T) {
	const streams = 5
	f, err := NewFleet(streams, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ov := newOverflow(24)
	for s := 0; s < streams; s++ {
		for seq := 0; seq <= s; seq++ { // stream s gets s+1 intervals
			fillOverflow(ov, s, seq)
			f.PushWait(s, ov)
		}
	}
	f.Drain()
	for s := 0; s < streams; s++ {
		info, err := f.StreamInfo(s)
		if err != nil {
			t.Fatal(err)
		}
		if info.Stream != s || info.Shard != f.ShardOf(s) {
			t.Errorf("stream %d info reports stream %d shard %d (ShardOf says %d)", s, info.Stream, info.Shard, f.ShardOf(s))
		}
		if info.Intervals != s+1 {
			t.Errorf("stream %d processed %d intervals, want %d", s, info.Intervals, s+1)
		}
	}
}

// TestNewFleetErrors: invalid configurations and failing builds are
// reported, with started workers torn down.
func TestNewFleetErrors(t *testing.T) {
	if _, err := NewFleet(0, testConfig(1)); err == nil {
		t.Error("NewFleet(0, ...) succeeded")
	}
	if _, err := NewFleet(4, Config{Shards: 2}); err == nil {
		t.Error("NewFleet without Build succeeded")
	}
	cfg := testConfig(2)
	cfg.Build = func(stream int) (*pipeline.Pipeline, error) {
		if stream == 3 {
			return nil, fmt.Errorf("boom")
		}
		return buildStack(stream)
	}
	if _, err := NewFleet(6, cfg); err == nil {
		t.Error("NewFleet with a failing stream build succeeded")
	}
}

// TestFleetRestoreErrors: malformed snapshots and stream-count mismatches
// are rejected.
func TestFleetRestoreErrors(t *testing.T) {
	f, err := NewFleet(2, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Restore([]byte("garbage")); err == nil {
		t.Error("Restore(garbage) succeeded")
	}
	big, err := NewFleet(3, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	snap, err := big.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Restore(snap); err == nil {
		t.Error("restoring a 3-stream snapshot into a 2-stream fleet succeeded")
	}
}

// TestFleetCloseIdempotent: Close twice is fine; operations after Close
// panic (caller bug, not load).
func TestFleetCloseIdempotent(t *testing.T) {
	f, err := NewFleet(2, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Push on closed fleet did not panic")
		}
	}()
	f.Push(0, newOverflow(1))
}

// buildLoopProgram assembles a small two-loop program for fleet runs that
// exercise region formation and pruning (the distribution paths' cold
// events) rather than just GPD.
func buildLoopProgram(t *testing.T) (*isa.Program, []isa.LoopSpan) {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(16, isa.KindALU)
	l1 := p.Loop(24, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	p.Code(8, isa.KindALU)
	l2 := p.Loop(32, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindStore}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog, []isa.LoopSpan{l1, l2}
}

// fillLoopOverflow writes the deterministic interval (stream, seq) into
// ov with PCs inside the program's loops, rotating the hot loop so phases
// change, plus idle and straight-line stragglers so UCR accounting and
// formation both fire.
func fillLoopOverflow(ov *hpm.Overflow, loops []isa.LoopSpan, stream, seq int) {
	rng := uint64(stream+1)*0x9e3779b97f4a7c15 + uint64(seq)*0x94d049bb133111eb
	hot := loops[seq/60%len(loops)]
	cycle := uint64(seq) * 30000
	buf := ov.Samples[:cap(ov.Samples)]
	for i := range buf {
		cycle += 60 + smix(&rng)%40
		var pc isa.Addr
		switch r := smix(&rng) % 100; {
		case r < 4:
			pc = 0 // idle
		case r < 88:
			pc = hot.Start + isa.Addr(smix(&rng)%uint64(hot.NumInstrs()))*isa.InstrBytes
		default:
			pc = loops[len(loops)-1].End + isa.InstrBytes // straight-line straggler
		}
		buf[i] = hpm.Sample{PC: pc, Cycle: cycle, Instrs: 6 + smix(&rng)%10, DCMisses: smix(&rng) % 3}
	}
	ov.Samples = buf
	ov.Seq = seq
	ov.Cycle = cycle
}

// TestFleetIndexPathsAgree drives identical per-stream workloads through
// region-monitor-only stacks under each distribution structure; the
// per-stream verdict digests must be byte-identical across list, tree and
// the batched epoch path, including under idle pruning (region churn).
func TestFleetIndexPathsAgree(t *testing.T) {
	const streams, intervals = 4, 240
	prog, loops := buildLoopProgram(t)
	run := func(kind region.IndexKind) []uint64 {
		t.Helper()
		cfg := Config{Shards: 2, QueueCap: 16, MaxSamples: 64, Build: func(stream int) (*pipeline.Pipeline, error) {
			rcfg := region.DefaultConfig()
			rcfg.Index = kind
			rcfg.PruneAfter = 4
			rmon, err := region.NewMonitor(prog, rcfg)
			if err != nil {
				return nil, err
			}
			pipe := pipeline.New()
			pipe.MustRegister(pipeline.NewRegionMonitor(rmon))
			return pipe, nil
		}}
		f, err := NewFleet(streams, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		ov := newOverflow(64)
		for seq := 0; seq < intervals; seq++ {
			for s := 0; s < streams; s++ {
				fillLoopOverflow(ov, loops, s, seq)
				f.PushWait(s, ov)
			}
		}
		f.Drain()
		digs := make([]uint64, streams)
		for s := range digs {
			info, err := f.StreamInfo(s)
			if err != nil {
				t.Fatalf("stream %d: %v", s, err)
			}
			if info.Intervals != intervals {
				t.Fatalf("stream %d processed %d intervals, want %d", s, info.Intervals, intervals)
			}
			digs[s] = info.Digest
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return digs
	}
	ref := run(region.IndexList)
	for _, kind := range []region.IndexKind{region.IndexTree, region.IndexEpoch} {
		got := run(kind)
		for s := range ref {
			if got[s] != ref[s] {
				t.Errorf("stream %d digest under index %v = %#x, want %#x (list)", s, kind, got[s], ref[s])
			}
		}
	}
}
