package ingest

import (
	"fmt"

	"regionmon/internal/snap"
	"regionmon/internal/vhash"
)

// Snapshot and Restore checkpoint the whole fleet. The encoding is keyed
// by stream, not by shard: a snapshot taken from a 16-shard fleet restores
// into a 1-shard fleet (and vice versa), because sharding is a throughput
// topology, not stream state. Each stream contributes its interval count,
// its verdict-digest sum, and its pipeline's own nested snapshot; the
// owner adds the producer-side accepted/dropped counters.
//
// Both operations ride the rings in-band (one control op per stream), so
// the captured state is exactly "after every batch pushed before the
// call" — the same cut Drain would establish — without stopping the
// workers.

const (
	fleetTag  = "ingest-fleet"
	streamTag = "ingest-stream"
)

// Snapshot serializes every stream's detector stack, digest and counters.
func (f *Fleet) Snapshot() ([]byte, error) {
	e := snap.NewEncoder()
	e.Header(fleetTag, 1)
	e.Int(len(f.shardOf))
	for id := range f.shardOf {
		c := f.roundTrip(&control{op: opSnapshot, stream: id})
		if c.err != nil {
			return nil, fmt.Errorf("ingest: snapshot stream %d: %w", id, c.err)
		}
		e.U64(f.accepted[id])
		e.U64(f.dropped[id])
		e.Bytes64(c.out)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// Restore loads a fleet snapshot into this fleet. The stream count must
// match; the shard count need not (stream state is topology-independent).
// The fleet's streams must be built from the same configuration as the
// snapshotted ones — nested pipeline restores validate shape and reject
// mismatches. On error the fleet may be partially restored (earlier
// streams loaded, later ones untouched); restore into a fresh fleet to
// keep a clean failure mode.
func (f *Fleet) Restore(data []byte) error {
	d := snap.NewDecoder(data)
	d.Header(fleetTag, 1)
	n := d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("ingest: restore: %w", err)
	}
	if n != len(f.shardOf) {
		return fmt.Errorf("ingest: snapshot has %d streams, fleet has %d", n, len(f.shardOf))
	}
	type streamState struct {
		accepted, dropped uint64
		blob              []byte
	}
	states := make([]streamState, n)
	for id := range states {
		states[id].accepted = d.U64()
		states[id].dropped = d.U64()
		states[id].blob = d.Bytes64()
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("ingest: restore: %w", err)
	}
	for id := range states {
		c := f.roundTrip(&control{op: opRestore, stream: id, data: states[id].blob})
		if c.err != nil {
			return fmt.Errorf("ingest: restore stream %d: %w", id, c.err)
		}
		f.accepted[id] = states[id].accepted
		f.dropped[id] = states[id].dropped
	}
	return nil
}

// snapshot encodes one stream's worker-side state. Worker goroutine only.
func (st *stream) snapshot() ([]byte, error) {
	if st.err != nil {
		return nil, st.err
	}
	pb, err := st.pipe.Snapshot()
	if err != nil {
		return nil, err
	}
	e := snap.NewEncoder()
	e.Header(streamTag, 1)
	e.Int(st.intervals)
	e.U64(st.dig.Sum())
	e.Bytes64(pb)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// restore loads one stream's worker-side state. Worker goroutine only.
func (st *stream) restore(data []byte) error {
	d := snap.NewDecoder(data)
	d.Header(streamTag, 1)
	intervals := d.Int()
	sum := d.U64()
	pb := d.Bytes64()
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%d trailing bytes after stream state", d.Remaining())
	}
	if err := st.pipe.Restore(pb); err != nil {
		return err
	}
	st.intervals = intervals
	st.dig = vhash.Resume(sum)
	st.err = nil
	return nil
}
