package ingest

import (
	"testing"
)

// TestRingRunReservation pins the run primitives' geometry on a single
// goroutine: runs are bounded by free space and by the backing array's
// wrap point, partial releases keep the rest of the run valid, and the
// wrapped remainder arrives on the next call.
func TestRingRunReservation(t *testing.T) {
	r := newRing(8, 1)
	if r.cap() != 8 {
		t.Fatalf("cap = %d; want 8", r.cap())
	}

	// A fresh ring hands out at most the full capacity in one run.
	run := r.reserveRun(100)
	if len(run) != 8 {
		t.Fatalf("reserveRun(100) on empty ring = %d slots; want 8", len(run))
	}
	for i := range run {
		run[i].seq = i
	}
	r.publishRun(5) // publish a prefix; the other 3 reserved slots are simply not sent
	if d := r.depth(); d != 5 {
		t.Fatalf("depth = %d after publishing 5; want 5", d)
	}

	got := r.waitRun()
	if len(got) != 5 {
		t.Fatalf("waitRun = %d slots; want 5", len(got))
	}
	for i := range got {
		if got[i].seq != i {
			t.Fatalf("slot %d seq = %d; want %d", i, got[i].seq, i)
		}
	}
	// Partial release: the unreleased tail of the run stays valid while
	// the producer reuses the freed prefix.
	r.releaseRun(3)
	if got[3].seq != 3 || got[4].seq != 4 {
		t.Fatal("unreleased slots clobbered by partial release")
	}

	// Producer is at index 5 with head at 3: the next run is bounded by
	// the wrap point (slots 5..7), not by the 6 free slots.
	run = r.reserveRun(6)
	if len(run) != 3 {
		t.Fatalf("reserveRun(6) near wrap = %d slots; want 3 (wrap-bounded)", len(run))
	}
	for i := range run {
		run[i].seq = 5 + i
	}
	r.publishRun(3)
	// The wrapped remainder is available immediately after.
	run = r.reserveRun(6)
	if len(run) != 3 {
		t.Fatalf("post-wrap reserveRun(6) = %d slots; want 3 (head at 3)", len(run))
	}
	r.publishRun(len(run))
	if r.reserveRun(1) != nil {
		t.Fatal("reserveRun succeeded on a full ring")
	}

	// Consumer drains the rest: first the unreleased 2, through the wrap.
	r.releaseRun(2)
	if got := r.waitRun(); len(got) != 3 || got[0].seq != 5 {
		t.Fatalf("run after wrap = %d slots starting seq %d; want 3 starting 5", len(got), got[0].seq)
	}
	r.releaseRun(3)
	if got := r.waitRun(); len(got) != 3 {
		t.Fatalf("wrapped remainder = %d slots; want 3", len(got))
	}
	r.releaseRun(3)
	if d := r.depth(); d != 0 {
		t.Fatalf("depth = %d after draining; want 0", d)
	}
}

// TestRingRunTransfer moves a seq-stamped stream through the run
// primitives with a concurrent producer and consumer, random-ish run
// sizes on both sides, and verifies nothing is lost, duplicated or
// reordered. Run under -race this checks the two-goroutine contract.
func TestRingRunTransfer(t *testing.T) {
	const total = 10000
	r := newRing(16, 1)
	go func() {
		rng, seq := uint64(1), 0
		for seq < total {
			want := int(smix(&rng)%7) + 1
			if seq+want > total {
				want = total - seq
			}
			run := r.reserveRunWait(want)
			for i := range run {
				run[i].seq = seq + i
			}
			r.publishRun(len(run))
			seq += len(run)
		}
	}()
	for next := 0; next < total; {
		run := r.waitRun()
		for i := range run {
			if run[i].seq != next+i {
				t.Fatalf("slot %d carries seq %d; want %d", i, run[i].seq, next+i)
			}
		}
		next += len(run)
		r.releaseRun(len(run))
	}
	if d := r.depth(); d != 0 {
		t.Fatalf("depth = %d after consuming all; want 0", d)
	}
}
