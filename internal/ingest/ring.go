package ingest

import (
	"sync/atomic"

	"regionmon/internal/hpm"
)

// slot is one ring entry: either a batch (one stream's sampling interval,
// samples copied into the slot's preallocated buffer) or a control op
// (ctl != nil). Slot buffers are sized once at ring construction, so the
// steady-state enqueue path never allocates.
type slot struct {
	ctl     *control
	stream  int
	seq     int
	cycle   uint64
	n       int          // samples used this delivery
	samples []hpm.Sample // len = MaxSamples, filled [0:n)
}

// ring is a bounded single-producer single-consumer queue of slots. The
// fleet's owning goroutine is the producer for every shard ring; each
// shard's worker goroutine is the sole consumer of its own ring. With one
// writer per index and the head/tail counters published through atomics,
// the ring needs no locks: the producer only writes slots at tail (which
// the consumer cannot read until tail is advanced), the consumer only
// reads slots at head (which the producer cannot reuse until head is
// advanced).
//
// The transfer primitives are batch-first: reserveRun/publishRun move a
// contiguous run of slots with one tail advance and at most one consumer
// wake, and waitRun/releaseRun drain a contiguous run with one head
// advance and at most one producer wake. The per-slot reserve/publish and
// waitSlot/release used by the control path are thin wrappers over the
// run forms, so both paths share one synchronization core.
//
// Blocking is event-driven, not spinning: dataWake (capacity 1) carries
// "something was published" from producer to consumer, spaceWake carries
// "a slot was freed" back. Both are best-effort sticky tokens — a stale
// token just causes one extra empty/full recheck — so notifications are
// non-blocking sends and never allocate.
type ring struct {
	slots []slot
	mask  uint64

	head atomic.Uint64 //lint:atomic -- next slot to consume; advanced only by the consumer
	tail atomic.Uint64 //lint:atomic -- next slot to produce; advanced only by the producer

	dataWake  chan struct{}
	spaceWake chan struct{}
}

// newRing returns a ring with capacity slots (rounded up to a power of
// two) whose sample buffers hold maxSamples each.
func newRing(capacity, maxSamples int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &ring{
		slots:     make([]slot, n),
		mask:      uint64(n - 1),
		dataWake:  make(chan struct{}, 1),
		spaceWake: make(chan struct{}, 1),
	}
	buf := make([]hpm.Sample, n*maxSamples)
	for i := range r.slots {
		r.slots[i].samples = buf[i*maxSamples : (i+1)*maxSamples]
	}
	return r
}

// cap returns the ring capacity in slots.
func (r *ring) cap() int { return len(r.slots) }

// depth returns the current number of queued slots (producer/consumer
// safe; a racing read is at worst one off in either direction).
func (r *ring) depth() int { return int(r.tail.Load() - r.head.Load()) }

// reserveRun returns the next run of free producer slots, up to want: the
// run starts at tail and is bounded by the free count and by the backing
// array's wrap point (a batch spanning the wrap takes two reservations).
// It returns nil when the ring is full. Producer-only; the slots are not
// visible to the consumer until publishRun.
func (r *ring) reserveRun(want int) []slot {
	t := r.tail.Load()
	free := uint64(len(r.slots)) - (t - r.head.Load())
	if free == 0 || want <= 0 {
		return nil
	}
	n := uint64(want)
	if n > free {
		n = free
	}
	i := t & r.mask
	if wrap := uint64(len(r.slots)) - i; n > wrap {
		n = wrap
	}
	return r.slots[i : i+n]
}

// reserveRunWait is reserveRun, blocking until at least one slot frees
// up. Producer-only.
func (r *ring) reserveRunWait(want int) []slot {
	for {
		if run := r.reserveRun(want); run != nil {
			return run
		}
		<-r.spaceWake
	}
}

// publishRun makes the last n reserved slots visible to the consumer with
// one tail advance and wakes it (at most once) if parked. Producer-only.
func (r *ring) publishRun(n int) {
	r.tail.Store(r.tail.Load() + uint64(n))
	select {
	case r.dataWake <- struct{}{}:
	default:
	}
}

// reserve returns the next producer slot, or nil when the ring is full.
// Per-item wrapper over reserveRun. Producer-only.
//
//lint:wraps reserveRun
func (r *ring) reserve() *slot {
	run := r.reserveRun(1)
	if run == nil {
		return nil
	}
	return &run[0]
}

// reserveWait is reserve, blocking until a slot frees up. Producer-only.
//
//lint:wraps reserveRunWait
func (r *ring) reserveWait() *slot {
	return &r.reserveRunWait(1)[0]
}

// publish makes the last reserved slot visible to the consumer and wakes
// it if parked. Producer-only.
//
//lint:wraps publishRun
func (r *ring) publish() { r.publishRun(1) }

// waitRun returns the maximal contiguous run of queued slots starting at
// head, parking until at least one is published. The run is bounded by
// the backing array's wrap point; the next call picks up the wrapped
// remainder. Consumer-only; the slots stay consumer-owned until released.
func (r *ring) waitRun() []slot {
	for {
		h := r.head.Load()
		n := r.tail.Load() - h
		if n != 0 {
			i := h & r.mask
			if wrap := uint64(len(r.slots)) - i; n > wrap {
				n = wrap
			}
			return r.slots[i : i+n]
		}
		<-r.dataWake
	}
}

// releaseRun returns the first n unreleased slots of the current run to
// the producer with one head advance and wakes it (at most once) if
// parked on a full ring. Consumer-only; call only after those slots'
// contents are fully consumed (the producer may overwrite immediately).
// Releasing a prefix keeps the rest of the run valid: the producer writes
// only at tail, which cannot reach the unreleased remainder.
func (r *ring) releaseRun(n int) {
	r.head.Store(r.head.Load() + uint64(n))
	select {
	case r.spaceWake <- struct{}{}:
	default:
	}
}

// waitSlot returns the next queued slot, parking until one is published.
// Per-item wrapper over waitRun. Consumer-only.
//
//lint:wraps waitRun
func (r *ring) waitSlot() *slot { return &r.waitRun()[0] }

// release returns the current consumer slot to the producer. Per-item
// wrapper over releaseRun. Consumer-only.
//
//lint:wraps releaseRun
func (r *ring) release() { r.releaseRun(1) }
