package ingest

import (
	"sync/atomic"

	"regionmon/internal/hpm"
)

// slot is one ring entry: either a batch (one stream's sampling interval,
// samples copied into the slot's preallocated buffer) or a control op
// (ctl != nil). Slot buffers are sized once at ring construction, so the
// steady-state enqueue path never allocates.
type slot struct {
	ctl     *control
	stream  int
	seq     int
	cycle   uint64
	n       int          // samples used this delivery
	samples []hpm.Sample // len = MaxSamples, filled [0:n)
}

// ring is a bounded single-producer single-consumer queue of slots. The
// fleet's owning goroutine is the producer for every shard ring; each
// shard's worker goroutine is the sole consumer of its own ring. With one
// writer per index and the head/tail counters published through atomics,
// the ring needs no locks: the producer only writes slots at tail (which
// the consumer cannot read until tail is advanced), the consumer only
// reads slots at head (which the producer cannot reuse until head is
// advanced).
//
// Blocking is event-driven, not spinning: dataWake (capacity 1) carries
// "something was published" from producer to consumer, spaceWake carries
// "a slot was freed" back. Both are best-effort sticky tokens — a stale
// token just causes one extra empty/full recheck — so notifications are
// non-blocking sends and never allocate.
type ring struct {
	slots []slot
	mask  uint64

	head atomic.Uint64 // next slot to consume; advanced only by the consumer
	tail atomic.Uint64 // next slot to produce; advanced only by the producer

	dataWake  chan struct{}
	spaceWake chan struct{}
}

// newRing returns a ring with capacity slots (rounded up to a power of
// two) whose sample buffers hold maxSamples each.
func newRing(capacity, maxSamples int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &ring{
		slots:     make([]slot, n),
		mask:      uint64(n - 1),
		dataWake:  make(chan struct{}, 1),
		spaceWake: make(chan struct{}, 1),
	}
	buf := make([]hpm.Sample, n*maxSamples)
	for i := range r.slots {
		r.slots[i].samples = buf[i*maxSamples : (i+1)*maxSamples]
	}
	return r
}

// cap returns the ring capacity in slots.
func (r *ring) cap() int { return len(r.slots) }

// depth returns the current number of queued slots (producer/consumer
// safe; a racing read is at worst one off in either direction).
func (r *ring) depth() int { return int(r.tail.Load() - r.head.Load()) }

// reserve returns the next producer slot, or nil when the ring is full.
// Producer-only. The slot is not visible to the consumer until publish.
func (r *ring) reserve() *slot {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		return nil
	}
	return &r.slots[t&r.mask]
}

// reserveWait is reserve, blocking until a slot frees up. Producer-only.
func (r *ring) reserveWait() *slot {
	for {
		if s := r.reserve(); s != nil {
			return s
		}
		<-r.spaceWake
	}
}

// publish makes the last reserved slot visible to the consumer and wakes
// it if parked. Producer-only.
func (r *ring) publish() {
	r.tail.Store(r.tail.Load() + 1)
	select {
	case r.dataWake <- struct{}{}:
	default:
	}
}

// waitSlot returns the next queued slot, parking until one is published.
// Consumer-only. The slot stays owned by the consumer until release.
func (r *ring) waitSlot() *slot {
	for {
		h := r.head.Load()
		if r.tail.Load() != h {
			return &r.slots[h&r.mask]
		}
		<-r.dataWake
	}
}

// release returns the current consumer slot to the producer and wakes it
// if parked on a full ring. Consumer-only; call only after the slot's
// contents are fully consumed (the producer may overwrite immediately).
func (r *ring) release() {
	r.head.Store(r.head.Load() + 1)
	select {
	case r.spaceWake <- struct{}{}:
	default:
	}
}
