// Package ingest is the multi-stream serving layer: one Fleet owns N
// independent monitored streams (one full detector stack each, built via
// pipeline), hash-sharded across a fixed pool of worker goroutines.
//
// The concurrency model extends the repo's single-owner discipline to a
// serving topology instead of abandoning it. A pipeline is still owned by
// exactly one goroutine for its whole life: each shard worker *constructs*
// the pipelines for its streams inside its own goroutine and never shares
// them. The only cross-goroutine traffic is the per-shard SPSC ring —
// batches are copied into preallocated ring slots by the fleet's owning
// goroutine and consumed by the shard worker, so the steady-state path
// never allocates and never takes a lock.
//
// The sample path is batch-first end to end. PushBatch/PushBatchWait move
// a run of sampling intervals for one stream with a single ring
// reservation and a single consumer wake, instead of paying
// reserve/publish/wake per interval; Push/PushWait are thin per-item
// wrappers over the same core. Symmetrically, the shard worker drains a
// contiguous run of queued slots per wake and hands each same-stream
// sub-run to its pipeline's ObserveBatch in one call. Batching is purely
// a transport optimization: intervals reach every stream in push order
// whatever mix of per-item and batched pushes produced them, so verdict
// streams (and their digests) are byte-identical across the two paths —
// TestFleetBatchDifferential pins that, including mixed interleavings and
// partial-batch drops.
//
// Because every stream maps to exactly one shard and a shard's ring is
// FIFO, each stream observes its intervals in exactly the order they were
// pushed — so per-stream results (verdict streams, digests, snapshots) are
// byte-identical regardless of how many shards the fleet runs. Shard count
// is purely a throughput knob, never a results knob; TestFleetDeterminism
// pins that with cross-worker-count digest equality under -race.
//
// Backpressure is explicit, not implicit: Push and PushBatch never block —
// a full shard ring counts a drop against the stream (a partial batch is
// always an accepted prefix, with the dropped suffix counted), and Stats
// exposes accepted/dropped/queue-depth per shard so operators see
// saturation rather than discover it as tail latency. PushWait and
// PushBatchWait are the lossless alternatives for offline replay.
//
// Control operations (snapshot, restore, stream info, drain barriers) ride
// the same rings in-band, so they are FIFO-ordered with the batches around
// them: a fleet Snapshot captures each stream exactly after the intervals
// pushed before the call, with no pausing, locking, or racing against
// in-flight batches.
package ingest

import (
	"fmt"
	"sync"

	"regionmon/internal/hpm"
	"regionmon/internal/pipeline"
	"regionmon/internal/vhash"
)

// BuildFunc constructs the detector stack for one stream. It is called
// once per stream, from the owning shard worker's goroutine (never the
// caller's), so the returned pipeline is worker-owned from birth. It must
// be pure configuration: deterministic, and free of shared mutable state
// across calls.
type BuildFunc func(stream int) (*pipeline.Pipeline, error)

// Config tunes a Fleet. The zero value of every field except Build
// selects a default.
type Config struct {
	// Shards is the number of worker goroutines (and rings). Default 4;
	// clamped to the stream count.
	Shards int
	// QueueCap is the per-shard ring capacity in batches, rounded up to a
	// power of two (default 64).
	QueueCap int
	// MaxSamples is the largest overflow buffer a Push may carry; ring
	// slots preallocate this many samples (default hpm.DefaultBufferSize).
	MaxSamples int
	// Build constructs each stream's detector stack. Required.
	Build BuildFunc
}

func (c Config) withDefaults(numStreams int) Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards > numStreams {
		c.Shards = numStreams
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = hpm.DefaultBufferSize
	}
	return c
}

// StreamInfo is one stream's worker-side progress, captured in-band (so it
// reflects exactly the intervals pushed before the StreamInfo call).
type StreamInfo struct {
	// Stream is the stream id.
	Stream int
	// Shard is the shard the stream is pinned to.
	Shard int
	// Intervals is the number of batches the worker has processed.
	Intervals int
	// Digest is the FNV-1a verdict-stream digest so far (see vhash).
	Digest uint64
}

// ShardStats is one shard's backpressure accounting.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Streams is the number of streams pinned to this shard.
	Streams int
	// Accepted and Dropped count Push outcomes across the shard's streams.
	Accepted, Dropped uint64
	// QueueDepth is the current ring occupancy; QueueCap its capacity.
	QueueDepth, QueueCap int
}

// Stats is a point-in-time fleet backpressure summary.
type Stats struct {
	// Accepted and Dropped are fleet-wide Push outcome totals.
	Accepted, Dropped uint64
	// Shards holds per-shard detail, indexed by shard.
	Shards []ShardStats
}

// Fleet owns numStreams detector stacks sharded across worker goroutines.
// The Fleet handle itself follows the repo's single-owner rule: one
// goroutine calls Push/PushWait/Drain/Snapshot/Restore/Close. (Internally
// the fleet *is* the concurrency — the handle is the single producer for
// every shard ring.)
//
//lint:single-owner
type Fleet struct {
	shards     []*shard
	shardOf    []int // stream id -> shard index
	accepted   []uint64
	dropped    []uint64
	maxSamples int              //lint:config -- fixed at construction
	one        [1]*hpm.Overflow //lint:config -- scratch backing the per-item Push wrappers
	ctlWG      sync.WaitGroup   // reused for every control round-trip
	closed     bool
}

// shard is one worker: a ring plus the goroutine that consumes it. The
// worker-side stream states live inside run's goroutine and never escape.
type shard struct {
	id      int
	ring    *ring
	streams []int // stream ids pinned here, ascending
	barrier control
	done    chan struct{} // closed when the worker goroutine exits
}

// control op codes. All ops are executed by the shard worker between
// batches, in ring FIFO order, and acknowledged via the op's WaitGroup.
const (
	opBarrier = iota + 1
	opSnapshot
	opRestore
	opInfo
	opStop
)

// control is one in-band control op. The producer fills op/stream/data,
// pushes it through the ring, and waits; the worker fills out/info/err and
// signals wg.
type control struct {
	op     int
	stream int
	data   []byte // opRestore: encoded stream state
	out    []byte // opSnapshot: encoded stream state
	info   StreamInfo
	err    error
	wg     *sync.WaitGroup
}

// shardHash maps a stream id to a shard. splitmix64's finalizer: cheap,
// deterministic, and well mixed so consecutive stream ids spread across
// shards instead of striping.
func shardHash(stream, shards int) int {
	z := uint64(stream) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int((z ^ (z >> 31)) % uint64(shards))
}

// NewFleet starts a fleet of numStreams streams. Every stream's stack is
// built (inside its shard worker) before NewFleet returns; if any build
// fails, all workers are stopped and the first error is returned.
func NewFleet(numStreams int, cfg Config) (*Fleet, error) {
	if numStreams < 1 {
		return nil, fmt.Errorf("ingest: numStreams %d must be positive", numStreams)
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("ingest: Config.Build is required")
	}
	cfg = cfg.withDefaults(numStreams)
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("ingest: Shards %d must be positive", cfg.Shards)
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("ingest: QueueCap %d must be positive", cfg.QueueCap)
	}
	if cfg.MaxSamples < 1 {
		return nil, fmt.Errorf("ingest: MaxSamples %d must be positive", cfg.MaxSamples)
	}

	f := &Fleet{
		shards:     make([]*shard, cfg.Shards),
		shardOf:    make([]int, numStreams),
		accepted:   make([]uint64, numStreams),
		dropped:    make([]uint64, numStreams),
		maxSamples: cfg.MaxSamples,
	}
	for id := range f.shardOf {
		f.shardOf[id] = shardHash(id, cfg.Shards)
	}
	ready := make(chan error)
	for i := range f.shards {
		sh := &shard{
			id:   i,
			ring: newRing(cfg.QueueCap, cfg.MaxSamples),
			done: make(chan struct{}),
		}
		sh.barrier = control{op: opBarrier, wg: &f.ctlWG}
		for id := range f.shardOf {
			if f.shardOf[id] == i {
				sh.streams = append(sh.streams, id)
			}
		}
		f.shards[i] = sh
		go sh.run(numStreams, cfg.Build, ready)
	}
	var firstErr error
	for range f.shards {
		if err := <-ready; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Workers that failed their builds have already exited; the rest
		// are parked on their rings and need an explicit stop.
		f.Close()
		return nil, firstErr
	}
	return f, nil
}

// NumStreams returns the fleet's stream count.
func (f *Fleet) NumStreams() int { return len(f.shardOf) }

// NumShards returns the fleet's worker count.
func (f *Fleet) NumShards() int { return len(f.shards) }

// ShardOf returns the shard a stream is pinned to.
func (f *Fleet) ShardOf(stream int) int { return f.shardOf[stream] }

// PushBatch offers a run of sampling intervals to one stream without
// blocking, amortizing the ring cost the per-item API pays per interval:
// one multi-slot reservation, one tail advance and one consumer wake per
// batch (two when the run spans the ring's wrap point). Intervals are
// enqueued in slice order, and every interval's samples are copied into a
// preallocated ring slot, so the caller may reuse all of the batch's
// backing arrays immediately and the steady-state path performs no
// allocation.
//
// When the shard ring fills mid-batch, the remainder is dropped and
// counted against the stream: an accepted partial batch is always a
// prefix, never a subsequence, so stream order is preserved. It returns
// the number of intervals accepted.
//
// PushBatch panics on a closed fleet, an out-of-range stream, or any
// interval larger than Config.MaxSamples: all three are caller bugs, not
// load.
func (f *Fleet) PushBatch(stream int, ovs []*hpm.Overflow) int {
	f.checkPush(stream, ovs)
	sh := f.shards[f.shardOf[stream]]
	pushed := 0
	for pushed < len(ovs) {
		run := sh.ring.reserveRun(len(ovs) - pushed)
		if run == nil {
			break
		}
		for i := range run {
			fillBatch(&run[i], stream, ovs[pushed+i])
		}
		sh.ring.publishRun(len(run))
		pushed += len(run)
	}
	f.accepted[stream] += uint64(pushed)
	f.dropped[stream] += uint64(len(ovs) - pushed)
	return pushed
}

// PushBatchWait is PushBatch for lossless replay: it blocks until every
// interval is enqueued instead of dropping the suffix. Batches larger
// than the ring drain through in ring-sized runs.
func (f *Fleet) PushBatchWait(stream int, ovs []*hpm.Overflow) {
	f.checkPush(stream, ovs)
	sh := f.shards[f.shardOf[stream]]
	pushed := 0
	for pushed < len(ovs) {
		run := sh.ring.reserveRunWait(len(ovs) - pushed)
		for i := range run {
			fillBatch(&run[i], stream, ovs[pushed+i])
		}
		sh.ring.publishRun(len(run))
		pushed += len(run)
	}
	f.accepted[stream] += uint64(pushed)
}

// Push offers one sampling interval to a stream without blocking. It
// returns false — and counts a drop against the stream — when the shard's
// ring is full. Per-item wrapper over the PushBatch core; it shares that
// API's copy semantics, panics and zero-allocation contract.
//
//lint:wraps PushBatch
func (f *Fleet) Push(stream int, ov *hpm.Overflow) bool {
	f.one[0] = ov
	return f.PushBatch(stream, f.one[:]) == 1
}

// PushWait is Push for lossless replay: it blocks until the shard ring
// has space instead of dropping. Per-item wrapper over PushBatchWait.
//
//lint:wraps PushBatchWait
func (f *Fleet) PushWait(stream int, ov *hpm.Overflow) {
	f.one[0] = ov
	f.PushBatchWait(stream, f.one[:])
}

func (f *Fleet) checkPush(stream int, ovs []*hpm.Overflow) {
	if f.closed {
		panic("ingest: Push on closed Fleet")
	}
	if stream < 0 || stream >= len(f.shardOf) {
		panic(fmt.Sprintf("ingest: stream %d out of range [0,%d)", stream, len(f.shardOf)))
	}
	for i, ov := range ovs {
		if len(ov.Samples) > f.maxSamples {
			panic(fmt.Sprintf("ingest: interval %d of batch carries %d samples, exceeding MaxSamples %d", i, len(ov.Samples), f.maxSamples))
		}
	}
}

func fillBatch(s *slot, stream int, ov *hpm.Overflow) {
	s.ctl = nil
	s.stream = stream
	s.seq = ov.Seq
	s.cycle = ov.Cycle
	s.n = copy(s.samples, ov.Samples)
}

// Drain blocks until every batch pushed before the call has been fully
// processed. It rides the rings as a barrier op per shard, so it needs no
// locks and allocates nothing.
func (f *Fleet) Drain() {
	if f.closed {
		panic("ingest: Drain on closed Fleet")
	}
	f.ctlWG.Add(len(f.shards))
	for _, sh := range f.shards {
		pushControl(sh.ring, &sh.barrier)
	}
	f.ctlWG.Wait()
}

// Stats returns the fleet's backpressure accounting: per-shard and total
// accepted/dropped counts and current queue depths.
func (f *Fleet) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(f.shards))}
	for i, sh := range f.shards {
		ss := ShardStats{
			Shard:      i,
			Streams:    len(sh.streams),
			QueueDepth: sh.ring.depth(),
			QueueCap:   sh.ring.cap(),
		}
		for _, id := range sh.streams {
			ss.Accepted += f.accepted[id]
			ss.Dropped += f.dropped[id]
		}
		st.Accepted += ss.Accepted
		st.Dropped += ss.Dropped
		st.Shards[i] = ss
	}
	return st
}

// StreamInfo reports one stream's worker-side progress: intervals
// processed and the verdict-stream digest so far. In-band, so it reflects
// exactly the batches pushed before the call. It returns an error if the
// stream's verdict hashing ever failed.
func (f *Fleet) StreamInfo(stream int) (StreamInfo, error) {
	c := f.roundTrip(&control{op: opInfo, stream: stream})
	return c.info, c.err
}

// roundTrip pushes one control op to the stream's shard and waits for the
// worker to execute it.
func (f *Fleet) roundTrip(c *control) *control {
	if f.closed {
		panic("ingest: control op on closed Fleet")
	}
	if c.stream < 0 || c.stream >= len(f.shardOf) {
		panic(fmt.Sprintf("ingest: stream %d out of range [0,%d)", c.stream, len(f.shardOf)))
	}
	c.wg = &f.ctlWG
	f.ctlWG.Add(1)
	pushControl(f.shards[f.shardOf[c.stream]].ring, c)
	f.ctlWG.Wait()
	return c
}

// pushControl enqueues a control op, blocking for ring space (control ops
// are cold paths and must never be dropped).
func pushControl(r *ring, c *control) {
	s := r.reserveWait()
	s.ctl = c
	r.publish()
}

// Close stops every worker and waits for them to exit. It returns the
// first stream verdict-hashing error encountered across the fleet, if
// any. A closed fleet accepts no further operations; Close itself is
// idempotent.
func (f *Fleet) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	stops := make([]control, len(f.shards))
	f.ctlWG.Add(len(f.shards))
	for i, sh := range f.shards {
		stops[i] = control{op: opStop, wg: &f.ctlWG}
		pushControl(sh.ring, &stops[i])
	}
	f.ctlWG.Wait()
	var firstErr error
	for i, sh := range f.shards {
		<-sh.done
		if stops[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ingest: shard %d: %w", i, stops[i].err)
		}
	}
	return firstErr
}

// stream is the worker-side state for one stream. It lives entirely
// inside its shard worker's goroutine.
type stream struct {
	id        int
	pipe      *pipeline.Pipeline
	dig       *vhash.Digest
	intervals int
	err       error // first verdict-hashing error
}

func newStream(id int, build BuildFunc) (*stream, error) {
	pipe, err := build(id)
	if err != nil {
		return nil, fmt.Errorf("ingest: build stream %d: %w", id, err)
	}
	if pipe == nil {
		return nil, fmt.Errorf("ingest: build stream %d returned a nil pipeline", id)
	}
	st := &stream{id: id, pipe: pipe, dig: vhash.New()}
	pipe.AddObserver(func(rep *pipeline.IntervalReport) {
		if err := st.dig.Report(rep); err != nil && st.err == nil {
			st.err = err
		}
	})
	return st, nil
}

// run is the shard worker loop. It builds its streams' stacks in this
// goroutine (worker-owned from birth), reports readiness, then consumes
// its ring until an opStop arrives.
//
// The loop is batch-first: each wake drains the maximal contiguous run of
// queued slots, groups consecutive same-stream batch slots, and delivers
// each group to its pipeline with one ObserveBatch call. Slots are
// released per group (and per control op) rather than per slot, so a
// producer parked on a full ring pays one wake per group. Control ops are
// still executed at exactly their FIFO position within the run, and their
// slots — plus every batch slot before them — are released before the op
// is acknowledged, preserving the pre-batching invariant that an
// acknowledged Drain leaves the ring empty.
func (sh *shard) run(numStreams int, build BuildFunc, ready chan<- error) {
	defer close(sh.done)
	// Dense stream-id index (nil for streams owned by other shards):
	// avoids map iteration anywhere near verdict state and costs one
	// pointer per fleet stream.
	states := make([]*stream, numStreams)
	var buildErr error
	for _, id := range sh.streams {
		st, err := newStream(id, build)
		if err != nil {
			buildErr = err
			break
		}
		states[id] = st
	}
	ready <- buildErr
	if buildErr != nil {
		// Stay on the ring in failed mode — releasing batches unread and
		// failing control ops — so the owner's Close still gets its stop
		// acknowledged and never deadlocks against a dead consumer.
		for {
			s := sh.ring.waitSlot()
			c := s.ctl
			s.ctl = nil
			sh.ring.release()
			if c == nil {
				continue
			}
			if c.op == opStop {
				c.wg.Done()
				return
			}
			c.err = buildErr
			c.wg.Done()
		}
	}
	// Per-delivery scratch, sized to the ring once: a run can never exceed
	// the ring capacity, so the hot loop allocates nothing. ovs carries the
	// overflow headers for one same-stream group; batch aliases them as the
	// []*hpm.Overflow view ObserveBatch consumes.
	ovs := make([]hpm.Overflow, sh.ring.cap())
	batch := make([]*hpm.Overflow, len(ovs))
	for i := range ovs {
		batch[i] = &ovs[i]
	}
	for {
		run := sh.ring.waitRun()
		released := 0
		k := 0
		for k < len(run) {
			if c := run[k].ctl; c != nil {
				run[k].ctl = nil
				k++
				sh.ring.releaseRun(k - released)
				released = k
				if c.op == opStop {
					c.err = firstStreamErr(states, sh.streams)
					c.wg.Done()
					return
				}
				sh.exec(c, states)
				c.wg.Done()
				continue
			}
			// Group the maximal same-stream run of batch slots and deliver
			// it in one pipeline call.
			id := run[k].stream
			j := k + 1
			for j < len(run) && run[j].ctl == nil && run[j].stream == id {
				j++
			}
			for i := k; i < j; i++ {
				ov := batch[i-k]
				ov.Seq = run[i].seq
				ov.Cycle = run[i].cycle
				ov.Samples = run[i].samples[:run[i].n]
			}
			st := states[id]
			st.pipe.ObserveBatch(batch[:j-k])
			st.intervals += j - k
			k = j
			// Only now may the producer overwrite the group's slots.
			sh.ring.releaseRun(k - released)
			released = k
		}
	}
}

// exec runs one non-stop control op against its target stream.
func (sh *shard) exec(c *control, states []*stream) {
	if c.op == opBarrier {
		return
	}
	st := states[c.stream]
	if st == nil {
		c.err = fmt.Errorf("ingest: stream %d not owned by shard %d", c.stream, sh.id)
		return
	}
	switch c.op {
	case opSnapshot:
		c.out, c.err = st.snapshot()
	case opRestore:
		c.err = st.restore(c.data)
	case opInfo:
		c.info = StreamInfo{Stream: st.id, Shard: sh.id, Intervals: st.intervals, Digest: st.dig.Sum()}
		c.err = st.err
	default:
		c.err = fmt.Errorf("ingest: unknown control op %d", c.op)
	}
}

func firstStreamErr(states []*stream, streams []int) error {
	for _, id := range streams {
		if st := states[id]; st != nil && st.err != nil {
			return fmt.Errorf("stream %d: %w", id, st.err)
		}
	}
	return nil
}
