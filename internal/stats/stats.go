// Package stats provides the statistical primitives shared by the global
// (centroid) and local (Pearson-correlation) phase detectors: correlation
// coefficients over sample histograms, running mean/variance accumulators,
// centroid computation over program-counter samples, and small order
// statistics helpers.
//
// All functions are deterministic and allocation-conscious; the phase
// detectors call them once per sample-buffer overflow, which in the paper's
// configuration happens every few million simulated cycles.
package stats

import (
	"fmt"
	"math"
)

// Pearson computes Pearson's coefficient of correlation r between two
// equal-length sample vectors x and y. It is the similarity metric of the
// paper's local phase detection (Section 3.2.1):
//
//	r = (Σxy − Σx·Σy/n) / sqrt((Σx² − (Σx)²/n)(Σy² − (Σy)²/n))
//
// The result lies in [-1, 1]. Values near 1 mean the two distributions of
// samples across a region's instructions agree (same bottlenecks, possibly
// scaled counts); values near 0 or negative indicate the bottleneck moved
// and therefore a local phase change.
//
// If either vector has zero variance (all entries equal, including the
// all-zero vector) the coefficient is undefined; Pearson returns 0 and
// ok=false so callers can fall back to their no-information path, except
// for the special case where both vectors are constant and element-wise
// proportional, which returns r=1, ok=true (identical flat behaviour is
// perfect agreement, not a phase change).
func Pearson(x, y []int64) (r float64, ok bool) {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0, false
	}
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		xf, yf := float64(x[i]), float64(y[i])
		sx += xf
		sy += yf
		sxx += xf * xf
		syy += yf * yf
		sxy += xf * yf
	}
	nf := float64(n)
	vx := sxx - sx*sx/nf
	vy := syy - sy*sy/nf
	if vx <= 0 || vy <= 0 {
		// Zero variance on one or both sides. Two constant vectors are
		// perfectly correlated in the "same behaviour" sense the detector
		// cares about.
		if vx <= 0 && vy <= 0 {
			return 1, true
		}
		return 0, false
	}
	r = (sxy - sx*sy/nf) / math.Sqrt(vx*vy)
	// Guard against floating point drift pushing r marginally outside the
	// legal range.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, true
}

// PearsonFloat is Pearson over float64 vectors; used by tests and by the
// similarity-metric ablations.
func PearsonFloat(x, y []float64) (r float64, ok bool) {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0, false
	}
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	nf := float64(n)
	vx := sxx - sx*sx/nf
	vy := syy - sy*sy/nf
	if vx <= 0 || vy <= 0 {
		if vx <= 0 && vy <= 0 {
			return 1, true
		}
		return 0, false
	}
	r = (sxy - sx*sy/nf) / math.Sqrt(vx*vy)
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, true
}

// Manhattan returns the normalized Manhattan (L1) distance between two
// sample vectors after normalizing each to a probability distribution.
// The result lies in [0, 2] (0 = identical distributions). It is one of the
// "cheaper means of measuring similarity" the paper's Section 5 proposes to
// investigate; internal/lpd exposes it as an alternative similarity metric.
func Manhattan(x, y []int64) float64 {
	var tx, ty int64
	for _, v := range x {
		tx += v
	}
	for _, v := range y {
		ty += v
	}
	if tx == 0 && ty == 0 {
		return 0
	}
	if tx == 0 || ty == 0 {
		return 2
	}
	var d float64
	for i := range x {
		d += math.Abs(float64(x[i])/float64(tx) - float64(y[i])/float64(ty))
	}
	return d
}

// TopKOverlap returns the fraction of overlap between the index sets of the
// k largest entries of x and y (1 = same hot instructions, 0 = disjoint).
// It is the second cheap similarity metric used in the ablation study.
// k is clamped to len(x). Ties are broken by lower index.
//
// TopKOverlap is the convenience form for offline analysis and tests: it
// sizes a fresh TopKScratch per call and delegates, so there is exactly
// one selection implementation and no per-call map churn. Per-interval
// callers hold a construction-time TopKScratch and call Overlap directly.
func TopKOverlap(x, y []int64, k int) float64 {
	if len(x) != len(y) || len(x) == 0 || k <= 0 {
		return 0
	}
	return NewTopKScratch(len(x), k).Overlap(x, y, k)
}

// TopKScratch is caller-owned working storage for scratch-based top-k
// overlap. Detectors that compare histograms every interval size one at
// construction time (NewTopKScratch) so the per-interval computation
// performs no allocations; TopKOverlap above stays as the convenient
// allocating form for offline analysis and tests.
type TopKScratch struct {
	xs, ys []int
	used   []bool
	inY    []bool
}

// NewTopKScratch returns scratch for histograms of up to n entries and
// top-k size k.
func NewTopKScratch(n, k int) *TopKScratch {
	if k > n {
		k = n
	}
	return &TopKScratch{
		xs:   make([]int, 0, k),
		ys:   make([]int, 0, k),
		used: make([]bool, n),
		inY:  make([]bool, n),
	}
}

// Overlap computes TopKOverlap(x, y, k) in s without allocating. x and y
// must be no longer than the n the scratch was built for.
func (s *TopKScratch) Overlap(x, y []int64, k int) float64 {
	if len(x) != len(y) || len(x) == 0 || k <= 0 {
		return 0
	}
	if k > len(x) {
		k = len(x)
	}
	s.xs = s.selectTopK(x, k, s.xs[:0])
	s.ys = s.selectTopK(y, k, s.ys[:0])
	inY := s.inY[:len(y)]
	for _, i := range s.ys {
		inY[i] = true
	}
	overlap := 0
	for _, i := range s.xs {
		if inY[i] {
			overlap++
		}
	}
	for _, i := range s.ys {
		inY[i] = false
	}
	return float64(overlap) / float64(k)
}

// selectTopK appends the indices of the k largest entries of v to dst,
// ties broken by lower index (same selection as topKIndices).
func (s *TopKScratch) selectTopK(v []int64, k int, dst []int) []int {
	used := s.used[:len(v)]
	for i := range used {
		used[i] = false
	}
	for j := 0; j < k; j++ {
		best := -1
		for i, val := range v {
			if used[i] {
				continue
			}
			if best == -1 || val > v[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		dst = append(dst, best)
	}
	return dst
}

// PearsonRef is the fused-kernel form of Pearson for the detector hot
// loop: one side of the correlation (the reference histogram, the paper's
// prev_hist) changes only when a detector re-establishes its reference,
// while the other side arrives fresh every sampling interval. PearsonRef
// caches the reference's float conversion and moments (Σy, Σy², variance
// term) at Set time, so Observe makes a single fused pass accumulating
// only Σx, Σx² and Σxy — roughly half the floating-point work of the
// two-vector Pearson — while producing bit-identical r values (the same
// accumulators are summed in the same index order and combined with the
// same expressions).
//
// A PearsonRef is sized once at construction and performs no allocation
// in Set or Observe; like the detectors that own one, it is single-owner.
type PearsonRef struct {
	y   []float64 // float-converted reference histogram
	sy  float64   // Σy
	syy float64   // Σy²
	vy  float64   // Σy² − (Σy)²/n, the reference's variance term
	set bool
}

// NewPearsonRef returns a reference cache for histograms of exactly n
// entries. NewPearsonRef panics if n < 1: a zero-length histogram cannot
// correlate and indicates a configuration bug.
func NewPearsonRef(n int) *PearsonRef {
	if n < 1 {
		panic("stats: PearsonRef needs at least one histogram entry")
	}
	return &PearsonRef{y: make([]float64, n)}
}

// N returns the histogram length the cache was built for.
func (p *PearsonRef) N() int { return len(p.y) }

// Set (re)establishes the reference histogram, converting it to float64
// and recomputing its moments in one pass. ref must have exactly N
// entries; Set panics otherwise (the caller owns the histogram layout, a
// mismatch is a bug).
func (p *PearsonRef) Set(ref []int64) {
	if len(ref) != len(p.y) {
		panic(fmt.Sprintf("stats: reference has %d entries for a %d-entry PearsonRef", len(ref), len(p.y)))
	}
	var sy, syy float64
	for i, v := range ref {
		yf := float64(v)
		p.y[i] = yf
		sy += yf
		syy += yf * yf
	}
	p.sy, p.syy = sy, syy
	p.vy = syy - sy*sy/float64(len(p.y))
	p.set = true
}

// Mean returns the cached reference's mean sample count (0 before Set).
func (p *PearsonRef) Mean() float64 {
	if !p.set {
		return 0
	}
	return p.sy / float64(len(p.y))
}

// Observe computes Pearson(x, ref) against the cached reference in a
// single fused pass over x. The result is bit-identical to
// Pearson(x, ref) with the reference passed as the second argument,
// including the zero-variance conventions. Before Set, or for a
// mis-sized x, Observe returns (0, false).
func (p *PearsonRef) Observe(x []int64) (r float64, ok bool) {
	n := len(p.y)
	if !p.set || len(x) != n {
		return 0, false
	}
	y := p.y
	var sx, sxx, sxy float64
	for i := 0; i < n; i++ {
		xf := float64(x[i])
		sx += xf
		sxx += xf * xf
		sxy += xf * y[i]
	}
	nf := float64(n)
	vx := sxx - sx*sx/nf
	if vx <= 0 || p.vy <= 0 {
		// Same zero-variance conventions as Pearson: two flat vectors are
		// perfect agreement, one flat side is no information.
		if vx <= 0 && p.vy <= 0 {
			return 1, true
		}
		return 0, false
	}
	r = (sxy - sx*p.sy/nf) / math.Sqrt(vx*p.vy)
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, true
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v (0 for fewer than
// two elements). The centroid detector's band of stability uses population
// (not sample) deviation, matching "standard deviation value (SD) of these
// centroids" over the full history window.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Median returns the median of v without modifying it. For an even count it
// returns the mean of the two central elements. Returns 0 for empty input.
func Median(v []float64) float64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	c := make([]float64, n)
	copy(c, v)
	insertionSort(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// Running accumulates a stream of observations and yields mean, variance and
// standard deviation in O(1) per observation (Welford's algorithm). The
// centroid history uses a bounded variant (see Window); Running backs
// whole-run summaries such as per-benchmark UCR statistics.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Window is a fixed-capacity sliding window of float64 observations with
// O(1) amortized mean and standard deviation. The GPD centroid history is a
// Window: the paper's detector keeps "a history of such centroids" and
// derives the band of stability from their expectation and deviation.
type Window struct {
	buf  []float64
	head int
	n    int
	sum  float64
	sum2 float64
}

// NewWindow returns a window holding at most capacity observations.
// NewWindow panics if capacity < 1: a zero-size history cannot define a
// band of stability and indicates a configuration bug.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		panic("stats: window capacity must be >= 1")
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add appends an observation, evicting the oldest when full.
func (w *Window) Add(x float64) {
	if w.n == len(w.buf) {
		old := w.buf[w.head]
		w.sum -= old
		w.sum2 -= old * old
	} else {
		w.n++
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
	w.sum += x
	w.sum2 += x * x
}

// Len returns the current number of observations in the window.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds capacity observations.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Reset empties the window.
func (w *Window) Reset() {
	w.head, w.n, w.sum, w.sum2 = 0, 0, 0, 0
}

// Mean returns the mean of the windowed observations (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// StdDev returns the population standard deviation of the windowed
// observations. To avoid catastrophic cancellation drift over very long
// runs it recomputes exactly from the buffer whenever the cheap two-pass
// estimate goes (impossibly) negative.
func (w *Window) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	m := w.Mean()
	v := w.sum2/float64(w.n) - m*m
	if v < 0 {
		// Recompute exactly; the incremental sums drifted.
		var s float64
		for i := 0; i < w.n; i++ {
			x := w.buf[(w.head-w.n+i+len(w.buf))%len(w.buf)]
			d := x - m
			s += d * d
		}
		v = s / float64(w.n)
	}
	return math.Sqrt(v)
}

// Values appends the windowed observations, oldest first, to dst and
// returns the extended slice.
func (w *Window) Values(dst []float64) []float64 {
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.buf[(w.head-w.n+i+len(w.buf))%len(w.buf)])
	}
	return dst
}

// Centroid returns the mean of a set of program-counter values, the
// aggregate metric at the heart of global phase detection: "the average
// value of program counter obtained by sampling ... does not deviate much;
// when it does deviate, it often indicates a phase change".
// Returns 0 for an empty set.
func Centroid(pcs []uint64) float64 {
	if len(pcs) == 0 {
		return 0
	}
	// Sum in float64: PC values fit in 52-bit mantissa comfortably for the
	// simulated address space (< 2^40), and even real 64-bit address spaces
	// lose at most a few ULPs, far below the detector's thresholds.
	var s float64
	for _, pc := range pcs {
		s += float64(pc)
	}
	return s / float64(len(pcs))
}
