package stats

import (
	"math"
	"testing"

	"regionmon/internal/snap"
)

func TestSeriesBoundedEviction(t *testing.T) {
	s := NewSeries(4)
	for i := 1; i <= 10; i++ {
		s.Append(float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Total() != 10 {
		t.Fatalf("Total = %d, want 10", s.Total())
	}
	if s.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", s.Dropped())
	}
	got := s.Values(nil)
	want := []float64{7, 8, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	if m := s.Mean(); m != 8.5 {
		t.Errorf("Mean = %v, want 8.5", m)
	}
	if m := s.Median(); m != 8.5 {
		t.Errorf("Median = %v, want 8.5", m)
	}
	for i := range want {
		if s.At(i) != want[i] {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), want[i])
		}
	}
}

func TestSeriesUnboundedRetainsEverything(t *testing.T) {
	s := NewUnboundedSeries()
	for i := 0; i < 1000; i++ {
		s.Append(float64(i))
	}
	if s.Len() != 1000 || s.Dropped() != 0 || s.Total() != 1000 {
		t.Fatalf("Len=%d Dropped=%d Total=%d", s.Len(), s.Dropped(), s.Total())
	}
	if s.Cap() != -1 {
		t.Errorf("Cap = %d, want -1", s.Cap())
	}
	if m := s.Median(); m != 499.5 {
		t.Errorf("Median = %v, want 499.5", m)
	}
}

func TestSeriesOddMedian(t *testing.T) {
	s := NewSeries(8)
	for _, x := range []float64{5, 1, 3} {
		s.Append(x)
	}
	if m := s.Median(); m != 3 {
		t.Errorf("Median = %v, want 3", m)
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
}

// TestSeriesMedianInto pins the scratch-reusing median: same result as
// Median, no reordering of the series, and zero allocations once the
// scratch capacity covers the window.
func TestSeriesMedianInto(t *testing.T) {
	s := NewSeries(8)
	for _, x := range []float64{9, 2, 7, 4, 1, 8, 3, 6, 5, 0} {
		s.Append(x)
	}
	scratch := make([]float64, 0, s.Cap())
	if got, want := s.MedianInto(scratch), s.Median(); got != want {
		t.Fatalf("MedianInto = %v, Median = %v", got, want)
	}
	// The series itself is untouched by the sort.
	want := []float64{7, 4, 1, 8, 3, 6, 5, 0}
	for i, w := range want {
		if s.At(i) != w {
			t.Fatalf("At(%d) = %v after MedianInto, want %v", i, s.At(i), w)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		s.MedianInto(scratch)
	}); allocs != 0 {
		t.Errorf("MedianInto allocates %v per op with ample scratch, want 0", allocs)
	}
	// Short scratch still yields the right answer (growing internally).
	if got, want := s.MedianInto(make([]float64, 0, 1)), s.Median(); got != want {
		t.Errorf("MedianInto with short scratch = %v, want %v", got, want)
	}
	if got := s.MedianInto(nil); got != s.Median() {
		t.Errorf("MedianInto(nil) = %v, want %v", got, s.Median())
	}
	if got := NewSeries(4).MedianInto(scratch); got != 0 {
		t.Errorf("empty series MedianInto = %v, want 0", got)
	}
}

// TestSeriesWrapOrdering walks the ring across several full wraps,
// checking At and Values keep exact oldest-first order at every step —
// including the boundary appends where head returns to slot 0.
func TestSeriesWrapOrdering(t *testing.T) {
	const capacity = 5
	s := NewSeries(capacity)
	for i := 1; i <= 4*capacity+3; i++ {
		s.Append(float64(i))
		n := s.Len()
		lo := i - n + 1 // oldest retained value
		for j := 0; j < n; j++ {
			if got, want := s.At(j), float64(lo+j); got != want {
				t.Fatalf("after %d appends: At(%d) = %v, want %v", i, j, got, want)
			}
		}
		vals := s.Values(nil)
		if len(vals) != n {
			t.Fatalf("after %d appends: Values len %d, want %d", i, len(vals), n)
		}
		for j, v := range vals {
			if want := float64(lo + j); v != want {
				t.Fatalf("after %d appends: Values[%d] = %v, want %v", i, j, v, want)
			}
		}
	}
}

// TestSeriesSnapshotAtWrapBoundary snapshots a ring at every head
// position across a wrap (including head == 0 exactly) and checks the
// restored ring re-snapshots bit-exact and continues identically.
func TestSeriesSnapshotAtWrapBoundary(t *testing.T) {
	const capacity = 4
	for appends := capacity - 1; appends <= 3*capacity+1; appends++ {
		s := NewSeries(capacity)
		for i := 0; i < appends; i++ {
			s.Append(float64(i) * 1.5)
		}
		e := snap.NewEncoder()
		s.AppendSnapshot(e)

		r := NewSeries(capacity)
		if err := r.RestoreSnapshot(snap.NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("appends=%d: RestoreSnapshot: %v", appends, err)
		}
		e2 := snap.NewEncoder()
		r.AppendSnapshot(e2)
		if string(e.Bytes()) != string(e2.Bytes()) {
			t.Fatalf("appends=%d: restored series re-snapshots to different bytes", appends)
		}
		// Continue both across another full wrap: identical values and
		// accounting at every step.
		for i := 0; i < capacity+1; i++ {
			x := float64(100 + i)
			s.Append(x)
			r.Append(x)
			sv, rv := s.Values(nil), r.Values(nil)
			for j := range sv {
				if sv[j] != rv[j] {
					t.Fatalf("appends=%d step %d: post-restore divergence: %v vs %v", appends, i, sv, rv)
				}
			}
			if s.Total() != r.Total() || s.Mean() != r.Mean() {
				t.Fatalf("appends=%d step %d: accounting diverged", appends, i)
			}
		}
	}
}

func TestSeriesReset(t *testing.T) {
	s := NewSeries(3)
	for i := 0; i < 7; i++ {
		s.Append(1)
	}
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 || s.Dropped() != 0 || s.Mean() != 0 {
		t.Fatalf("Reset left state: Len=%d Total=%d Dropped=%d Mean=%v",
			s.Len(), s.Total(), s.Dropped(), s.Mean())
	}
}

func TestSeriesAppendNoAllocsBounded(t *testing.T) {
	s := NewSeries(64)
	allocs := testing.AllocsPerRun(200, func() {
		s.Append(0.5)
	})
	if allocs != 0 {
		t.Fatalf("bounded Append allocates %v per op, want 0", allocs)
	}
}

func TestSeriesSnapshotRoundTrip(t *testing.T) {
	s := NewSeries(4)
	for i := 1; i <= 9; i++ {
		s.Append(float64(i) / 3)
	}
	e := snap.NewEncoder()
	s.AppendSnapshot(e)

	r := NewSeries(4)
	if err := r.RestoreSnapshot(snap.NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if r.Total() != s.Total() || r.Dropped() != s.Dropped() || r.Len() != s.Len() {
		t.Fatalf("accounting mismatch: got (%d,%d,%d) want (%d,%d,%d)",
			r.Total(), r.Dropped(), r.Len(), s.Total(), s.Dropped(), s.Len())
	}
	if r.Mean() != s.Mean() {
		t.Fatalf("Mean mismatch: %v vs %v", r.Mean(), s.Mean())
	}
	// Subsequent appends must behave identically (ring alignment restored).
	s.Append(100)
	r.Append(100)
	sv, rv := s.Values(nil), r.Values(nil)
	for i := range sv {
		if sv[i] != rv[i] {
			t.Fatalf("post-restore divergence: %v vs %v", sv, rv)
		}
	}
}

func TestSeriesSnapshotMismatch(t *testing.T) {
	s := NewSeries(4)
	s.Append(1)
	e := snap.NewEncoder()
	s.AppendSnapshot(e)

	if err := NewSeries(8).RestoreSnapshot(snap.NewDecoder(e.Bytes())); err == nil {
		t.Error("expected capacity mismatch error")
	}
	if err := NewUnboundedSeries().RestoreSnapshot(snap.NewDecoder(e.Bytes())); err == nil {
		t.Error("expected mode mismatch error")
	}
}

func TestWindowSnapshotRoundTrip(t *testing.T) {
	w := NewWindow(8)
	// Enough adds to wrap the ring and accumulate float drift in sum/sum2.
	for i := 0; i < 100; i++ {
		w.Add(math.Sin(float64(i)) * 1e3)
	}
	e := snap.NewEncoder()
	w.AppendSnapshot(e)

	r := NewWindow(8)
	if err := r.RestoreSnapshot(snap.NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if r.Len() != w.Len() || r.Mean() != w.Mean() || r.StdDev() != w.StdDev() {
		t.Fatalf("restored window differs: Len %d/%d Mean %v/%v StdDev %v/%v",
			r.Len(), w.Len(), r.Mean(), w.Mean(), r.StdDev(), w.StdDev())
	}
	// Bit-identical continuation: the incremental sums were restored
	// verbatim, so the next Add yields identical Mean/StdDev on both.
	w.Add(0.125)
	r.Add(0.125)
	if r.Mean() != w.Mean() || r.StdDev() != w.StdDev() {
		t.Fatalf("post-restore divergence: Mean %v/%v StdDev %v/%v",
			r.Mean(), w.Mean(), r.StdDev(), w.StdDev())
	}

	if err := NewWindow(4).RestoreSnapshot(snap.NewDecoder(e.Bytes())); err == nil {
		t.Error("expected capacity mismatch error")
	}
}
