package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPearsonPerfectPositive(t *testing.T) {
	x := []int64{1, 2, 3, 4, 5}
	y := []int64{2, 4, 6, 8, 10}
	r, ok := Pearson(x, y)
	if !ok || !almost(r, 1, 1e-12) {
		t.Fatalf("Pearson(x, 2x) = %v, %v; want 1, true", r, ok)
	}
}

func TestPearsonPerfectNegative(t *testing.T) {
	x := []int64{1, 2, 3, 4, 5}
	y := []int64{10, 8, 6, 4, 2}
	r, ok := Pearson(x, y)
	if !ok || !almost(r, -1, 1e-12) {
		t.Fatalf("Pearson(x, -x) = %v, %v; want -1, true", r, ok)
	}
}

// TestPearsonBottleneckShift reproduces the paper's Figure 8: shifting a
// single-instruction bottleneck by one position destroys the correlation
// (r close to zero), while scaling all counts by a constant keeps r near 1.
func TestPearsonBottleneckShift(t *testing.T) {
	original := []int64{10, 10, 10, 350, 10, 10, 10, 10, 10, 10}
	shifted := []int64{10, 10, 10, 10, 350, 10, 10, 10, 10, 10}
	scaled := make([]int64, len(original))
	for i, v := range original {
		scaled[i] = v*3 + 2 // more samples, similar frequencies
	}

	r, ok := Pearson(original, shifted)
	if !ok {
		t.Fatal("Pearson(original, shifted) undefined")
	}
	if math.Abs(r) > 0.2 {
		t.Errorf("shifted bottleneck r = %v; want |r| near 0 (paper: -0.056)", r)
	}

	r, ok = Pearson(original, scaled)
	if !ok {
		t.Fatal("Pearson(original, scaled) undefined")
	}
	if r < 0.99 {
		t.Errorf("scaled distribution r = %v; want near 1 (paper: 0.998)", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	flat := []int64{5, 5, 5, 5}
	vary := []int64{1, 2, 3, 4}
	if _, ok := Pearson(flat, vary); ok {
		t.Error("Pearson(flat, varying) should be undefined")
	}
	if _, ok := Pearson(vary, flat); ok {
		t.Error("Pearson(varying, flat) should be undefined")
	}
	r, ok := Pearson(flat, []int64{7, 7, 7, 7})
	if !ok || r != 1 {
		t.Errorf("Pearson(flat, flat) = %v, %v; want 1, true", r, ok)
	}
	zero := []int64{0, 0, 0, 0}
	r, ok = Pearson(zero, zero)
	if !ok || r != 1 {
		t.Errorf("Pearson(zero, zero) = %v, %v; want 1, true", r, ok)
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if _, ok := Pearson([]int64{1, 2}, []int64{1, 2, 3}); ok {
		t.Error("mismatched lengths should be undefined")
	}
	if _, ok := Pearson(nil, nil); ok {
		t.Error("empty vectors should be undefined")
	}
}

// Property: r is symmetric, bounded, and invariant under positive affine
// transforms of either argument.
func TestPearsonProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 42))
		n := 2 + r.IntN(30)
		x := make([]int64, n)
		y := make([]int64, n)
		for i := range x {
			x[i] = int64(r.IntN(1000))
			y[i] = int64(r.IntN(1000))
		}
		rxy, okxy := Pearson(x, y)
		ryx, okyx := Pearson(y, x)
		if okxy != okyx {
			return false
		}
		if !okxy {
			return true
		}
		if !almost(rxy, ryx, 1e-9) {
			return false
		}
		if rxy < -1 || rxy > 1 {
			return false
		}
		// Affine transform: y' = 3y + 7 preserves r.
		y2 := make([]int64, n)
		for i := range y {
			y2[i] = 3*y[i] + 7
		}
		r2, ok2 := Pearson(x, y2)
		if ok2 != okxy {
			return false
		}
		return almost(rxy, r2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("Pearson property violated: %v", err)
	}
}

func TestPearsonFloatMatchesInt(t *testing.T) {
	x := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	y := []int64{2, 7, 1, 8, 2, 8, 1, 8}
	xf := make([]float64, len(x))
	yf := make([]float64, len(y))
	for i := range x {
		xf[i], yf[i] = float64(x[i]), float64(y[i])
	}
	ri, oki := Pearson(x, y)
	rf, okf := PearsonFloat(xf, yf)
	if oki != okf || !almost(ri, rf, 1e-12) {
		t.Errorf("int/float Pearson disagree: %v,%v vs %v,%v", ri, oki, rf, okf)
	}
}

func TestManhattan(t *testing.T) {
	x := []int64{10, 0, 0}
	if d := Manhattan(x, x); d != 0 {
		t.Errorf("Manhattan(x,x) = %v; want 0", d)
	}
	y := []int64{0, 0, 10}
	if d := Manhattan(x, y); !almost(d, 2, 1e-12) {
		t.Errorf("Manhattan(disjoint) = %v; want 2", d)
	}
	// Scaling invariance after normalization.
	x2 := []int64{20, 0, 0}
	if d := Manhattan(x, x2); d != 0 {
		t.Errorf("Manhattan(x, 2x) = %v; want 0", d)
	}
	if d := Manhattan([]int64{0, 0}, []int64{0, 0}); d != 0 {
		t.Errorf("Manhattan(zero, zero) = %v; want 0", d)
	}
	if d := Manhattan([]int64{0, 0}, []int64{1, 0}); d != 2 {
		t.Errorf("Manhattan(zero, nonzero) = %v; want 2", d)
	}
}

func TestTopKOverlap(t *testing.T) {
	x := []int64{100, 90, 80, 1, 2, 3}
	y := []int64{95, 85, 75, 3, 2, 1}
	if o := TopKOverlap(x, y, 3); o != 1 {
		t.Errorf("TopKOverlap same-hot = %v; want 1", o)
	}
	z := []int64{1, 2, 3, 100, 90, 80}
	if o := TopKOverlap(x, z, 3); o != 0 {
		t.Errorf("TopKOverlap disjoint-hot = %v; want 0", o)
	}
	if o := TopKOverlap(x, y, 100); o < 0 || o > 1 {
		t.Errorf("TopKOverlap clamped k out of range: %v", o)
	}
	if o := TopKOverlap(x, y, 0); o != 0 {
		t.Errorf("TopKOverlap k=0 = %v; want 0", o)
	}
	if o := TopKOverlap([]int64{1}, []int64{1, 2}, 1); o != 0 {
		t.Errorf("TopKOverlap mismatched lengths = %v; want 0", o)
	}
}

// TestTopKScratchMatchesTopKOverlap checks the scratch form against the
// allocating reference on a seeded random stream, including repeated reuse
// of one scratch.
func TestTopKScratchMatchesTopKOverlap(t *testing.T) {
	const n = 24
	s := NewTopKScratch(n, 5)
	seed := uint64(0x70CC)
	next := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int64(seed >> 56)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]int64, n)
		y := make([]int64, n)
		for i := range x {
			x[i], y[i] = next(), next()
		}
		for _, k := range []int{0, 1, 3, 5} {
			want := TopKOverlap(x, y, k)
			if got := s.Overlap(x, y, k); got != want {
				t.Fatalf("trial %d k=%d: scratch Overlap = %v; TopKOverlap = %v", trial, k, got, want)
			}
		}
	}
	if o := s.Overlap([]int64{1}, []int64{1, 2}, 1); o != 0 {
		t.Errorf("scratch Overlap mismatched lengths = %v; want 0", o)
	}
}

// TestTopKScratchNoAllocs pins the hot-path contract: once constructed,
// Overlap performs no allocations.
func TestTopKScratchNoAllocs(t *testing.T) {
	const n = 64
	s := NewTopKScratch(n, 8)
	x := make([]int64, n)
	y := make([]int64, n)
	for i := range x {
		x[i] = int64(i * 7 % 13)
		y[i] = int64(i * 5 % 11)
	}
	allocs := testing.AllocsPerRun(100, func() { s.Overlap(x, y, 8) })
	if allocs != 0 {
		t.Errorf("TopKScratch.Overlap allocates %v per run; want 0", allocs)
	}
}

// TestPearsonRefBitIdentical pins the fused kernel's contract: for any
// reference/current pair — including zero-variance, negative and empty-ish
// shapes — PearsonRef.Observe returns exactly the bits Pearson returns.
func TestPearsonRefBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xFE44, 7))
	for _, n := range []int{1, 2, 3, 8, 64, 257} {
		p := NewPearsonRef(n)
		for trial := 0; trial < 200; trial++ {
			ref := make([]int64, n)
			cur := make([]int64, n)
			switch trial % 5 {
			case 0: // flat reference
				for i := range ref {
					ref[i] = 7
					cur[i] = int64(rng.IntN(50))
				}
			case 1: // flat current
				for i := range ref {
					ref[i] = int64(rng.IntN(50))
					cur[i] = 3
				}
			case 2: // both flat
				for i := range ref {
					ref[i], cur[i] = 9, 4
				}
			case 3: // negative entries exercise the general formula
				for i := range ref {
					ref[i] = int64(rng.IntN(200)) - 100
					cur[i] = int64(rng.IntN(200)) - 100
				}
			default:
				for i := range ref {
					ref[i] = int64(rng.IntN(400))
					cur[i] = int64(rng.IntN(400))
				}
			}
			p.Set(ref)
			gotR, gotOK := p.Observe(cur)
			wantR, wantOK := Pearson(cur, ref)
			if gotOK != wantOK || math.Float64bits(gotR) != math.Float64bits(wantR) {
				t.Fatalf("n=%d trial %d: PearsonRef.Observe = (%v, %v); Pearson = (%v, %v)",
					n, trial, gotR, gotOK, wantR, wantOK)
			}
		}
	}
}

func TestPearsonRefShapes(t *testing.T) {
	p := NewPearsonRef(4)
	if _, ok := p.Observe([]int64{1, 2, 3, 4}); ok {
		t.Error("Observe before Set should be undefined")
	}
	if m := p.Mean(); m != 0 {
		t.Errorf("Mean before Set = %v; want 0", m)
	}
	p.Set([]int64{2, 4, 6, 8})
	if m := p.Mean(); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v; want 5", m)
	}
	if p.N() != 4 {
		t.Errorf("N = %d; want 4", p.N())
	}
	if _, ok := p.Observe([]int64{1, 2, 3}); ok {
		t.Error("Observe with mis-sized histogram should be undefined")
	}
	// Re-Set replaces the cached moments entirely.
	p.Set([]int64{1, 1, 1, 1})
	if r, ok := p.Observe([]int64{5, 5, 5, 5}); !ok || r != 1 {
		t.Errorf("flat/flat after re-Set = %v, %v; want 1, true", r, ok)
	}
	mustPanic(t, "NewPearsonRef(0)", func() { NewPearsonRef(0) })
	mustPanic(t, "Set size mismatch", func() { p.Set([]int64{1}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

// TestPearsonRefNoAllocs pins the fused kernel's hot-path contract: once
// constructed, both Set (reference re-establishment) and Observe (the
// per-interval pass) perform no allocations.
func TestPearsonRefNoAllocs(t *testing.T) {
	const n = 64
	p := NewPearsonRef(n)
	ref := make([]int64, n)
	cur := make([]int64, n)
	for i := range ref {
		ref[i] = int64(i * 3 % 17)
		cur[i] = int64(i * 5 % 19)
	}
	if allocs := testing.AllocsPerRun(100, func() { p.Set(ref) }); allocs != 0 {
		t.Errorf("PearsonRef.Set allocates %v per run; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { p.Observe(cur) }); allocs != 0 {
		t.Errorf("PearsonRef.Observe allocates %v per run; want 0", allocs)
	}
}

func BenchmarkPearson(b *testing.B) {
	x, y := benchHistograms(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pearson(x, y)
	}
}

func BenchmarkPearsonRefObserve(b *testing.B) {
	x, y := benchHistograms(64)
	p := NewPearsonRef(64)
	p.Set(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(x)
	}
}

func benchHistograms(n int) (x, y []int64) {
	x = make([]int64, n)
	y = make([]int64, n)
	for i := range x {
		x[i] = int64(i * 3 % 17)
		y[i] = int64(i * 3 % 17)
	}
	x[13], y[13] = 400, 380
	return x, y
}

func TestMeanStdDevMedian(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v; want 5", m)
	}
	if s := StdDev(v); !almost(s, 2, 1e-12) {
		t.Errorf("StdDev = %v; want 2", s)
	}
	if m := Median(v); !almost(m, 4.5, 1e-12) {
		t.Errorf("Median = %v; want 4.5", m)
	}
	odd := []float64{3, 1, 2}
	if m := Median(odd); m != 2 {
		t.Errorf("Median odd = %v; want 2", m)
	}
	// Median must not mutate its argument.
	if odd[0] != 3 || odd[1] != 1 || odd[2] != 2 {
		t.Errorf("Median mutated input: %v", odd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-input statistics should be 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element StdDev should be 0")
	}
}

func TestRunning(t *testing.T) {
	var r Running
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d; want 8", r.N())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Errorf("Running.Mean = %v; want 5", r.Mean())
	}
	if !almost(r.StdDev(), 2, 1e-12) {
		t.Errorf("Running.StdDev = %v; want 2", r.StdDev())
	}
	var empty Running
	if empty.Mean() != 0 || empty.Variance() != 0 {
		t.Error("empty Running should report zeros")
	}
}

// Property: Running matches the two-pass Mean/StdDev on random streams.
func TestRunningMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(200)
		v := make([]float64, n)
		var r Running
		for i := range v {
			v[i] = rng.Float64()*1000 - 500
			r.Add(v[i])
		}
		if !almost(r.Mean(), Mean(v), 1e-9) {
			t.Fatalf("trial %d: running mean %v != %v", trial, r.Mean(), Mean(v))
		}
		if !almost(r.StdDev(), StdDev(v), 1e-9) {
			t.Fatalf("trial %d: running stddev %v != %v", trial, r.StdDev(), StdDev(v))
		}
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 || w.Full() {
		t.Fatal("fresh window misreports shape")
	}
	w.Add(1)
	w.Add(2)
	w.Add(3)
	if !w.Full() || !almost(w.Mean(), 2, 1e-12) {
		t.Fatalf("window [1 2 3]: mean = %v", w.Mean())
	}
	w.Add(4) // evicts 1
	if !almost(w.Mean(), 3, 1e-12) {
		t.Fatalf("window [2 3 4]: mean = %v", w.Mean())
	}
	got := w.Values(nil)
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v; want %v", got, want)
		}
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear window")
	}
}

func TestWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) should panic")
		}
	}()
	NewWindow(0)
}

// Property: a sliding window's mean/stddev equal the two-pass statistics of
// the last capacity observations.
func TestWindowMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.IntN(20)
		w := NewWindow(capacity)
		var all []float64
		n := capacity + rng.IntN(100)
		for i := 0; i < n; i++ {
			x := rng.Float64() * 1e6
			w.Add(x)
			all = append(all, x)
		}
		tail := all
		if len(tail) > capacity {
			tail = tail[len(tail)-capacity:]
		}
		if !almost(w.Mean(), Mean(tail), 1e-6*(1+math.Abs(Mean(tail)))) {
			t.Fatalf("trial %d: window mean %v != %v", trial, w.Mean(), Mean(tail))
		}
		if !almost(w.StdDev(), StdDev(tail), 1e-5*(1+StdDev(tail))) {
			t.Fatalf("trial %d: window stddev %v != %v", trial, w.StdDev(), StdDev(tail))
		}
	}
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != 0 {
		t.Errorf("Centroid(nil) = %v; want 0", c)
	}
	pcs := []uint64{100, 200, 300}
	if c := Centroid(pcs); !almost(c, 200, 1e-12) {
		t.Errorf("Centroid = %v; want 200", c)
	}
}

func TestMedianLargeRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	v := make([]float64, 999)
	for i := range v {
		v[i] = rng.Float64()
	}
	m := Median(v)
	// Count how many are below/above; a true median splits evenly.
	var below, above int
	for _, x := range v {
		if x < m {
			below++
		} else if x > m {
			above++
		}
	}
	if below > len(v)/2 || above > len(v)/2 {
		t.Errorf("median %v splits %d below / %d above", m, below, above)
	}
}
