package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// refRuns is the obvious reference: sort a copy, walk runs.
func refRuns(src []uint64) (pcs []uint64, counts []int32) {
	if len(src) == 0 {
		return nil, nil
	}
	c := append([]uint64(nil), src...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	cur, n := c[0], int32(1)
	for _, k := range c[1:] {
		if k == cur {
			n++
			continue
		}
		pcs = append(pcs, cur)
		counts = append(counts, n)
		cur, n = k, 1
	}
	return append(pcs, cur), append(counts, n)
}

func checkRuns(t *testing.T, src []uint64) {
	t.Helper()
	s := NewRunScratch(len(src))
	pcs, counts := s.Compress(src)
	wantPCs, wantCounts := refRuns(src)
	if len(pcs) != len(wantPCs) {
		t.Fatalf("Compress returned %d runs; want %d", len(pcs), len(wantPCs))
	}
	var total int32
	for i := range pcs {
		if pcs[i] != wantPCs[i] || counts[i] != wantCounts[i] {
			t.Fatalf("run %d = (%d, %d); want (%d, %d)", i, pcs[i], counts[i], wantPCs[i], wantCounts[i])
		}
		total += counts[i]
	}
	if int(total) != len(src) {
		t.Fatalf("counts sum to %d; want %d", total, len(src))
	}
}

func TestCompressAgainstReference(t *testing.T) {
	cases := [][]uint64{
		{},
		{42},
		{7, 7, 7, 7},
		{3, 1, 2},
		{0, 0, 5, 0}, // idle PCs mixed in
		{1 << 40, 1, 1 << 40, 2, 1},
		{^uint64(0), 0, ^uint64(0)}, // extreme digits
	}
	for _, src := range cases {
		checkRuns(t, src)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(3000)
		src := make([]uint64, n)
		base := rng.Uint64() >> (rng.UintN(40) + 8) // vary shared high bytes
		for i := range src {
			// Loopy shape: few distinct values, heavy repetition.
			src[i] = base + rng.Uint64N(1+uint64(rng.IntN(512)))*4
		}
		checkRuns(t, src)
	}
}

func TestCompressDoesNotModifySource(t *testing.T) {
	src := []uint64{5, 3, 5, 1}
	orig := append([]uint64(nil), src...)
	NewRunScratch(len(src)).Compress(src)
	for i := range src {
		if src[i] != orig[i] {
			t.Fatalf("Compress mutated src: %v; want %v", src, orig)
		}
	}
}

func TestCompressReusesScratch(t *testing.T) {
	s := NewRunScratch(64)
	// First call at a larger size grows the scratch; subsequent calls at
	// that size must be allocation-free regardless of content.
	rng := rand.New(rand.NewPCG(3, 9))
	buf := make([]uint64, 2032)
	fill := func() {
		for i := range buf {
			buf[i] = 0x10000 + rng.Uint64N(600)*4
		}
	}
	fill()
	s.Compress(buf)
	avg := testing.AllocsPerRun(100, func() {
		fill()
		s.Compress(buf)
	})
	if avg != 0 {
		t.Errorf("steady-state Compress allocates %.2f allocs/run; want 0", avg)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]uint64, 2032)
	for i := range buf {
		buf[i] = 0x10000 + rng.Uint64N(400)*4
	}
	s := NewRunScratch(len(buf))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compress(buf)
	}
}
