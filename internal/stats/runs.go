package stats

// Count compression for sample distribution (the batched hot path of
// region monitoring). An overflow buffer from loopy code is overwhelmingly
// made of repeated program counters — a 2032-sample buffer over a few hot
// loop bodies holds only a few hundred distinct PCs — so distributing
// (unique PC, count) runs instead of raw samples removes most of the
// stabbing work. The phase-classification literature leans on the same
// structure: hardware working-set schemes accumulate signatures from
// compressed sample streams, not raw ones.
//
// RunScratch sorts the buffer with an LSD radix sort (byte digits,
// constant-digit passes skipped — PC streams share their high bytes, so a
// full sort is typically 2–3 counting passes) and run-length encodes the
// result. Everything runs in caller-owned scratch sized once at
// construction: after the first interval at a given buffer size, Compress
// performs no allocations.

// RunScratch is construction-time working storage for count-compressing
// sample buffers. Like the detectors that own one, it is single-owner.
type RunScratch struct {
	keys   []uint64 //lint:bounded -- reused via [:0]; tracks the largest batch seen
	tmp    []uint64
	hist   [256]int32
	pcs    []uint64
	counts []int32
}

// NewRunScratch returns scratch pre-sized for buffers of up to capacity
// samples; larger buffers grow the scratch on first sight (amortized-cold,
// never steady-state).
func NewRunScratch(capacity int) *RunScratch {
	if capacity < 1 {
		capacity = 1
	}
	return &RunScratch{
		keys:   make([]uint64, 0, capacity),
		tmp:    make([]uint64, capacity),
		pcs:    make([]uint64, 0, capacity),
		counts: make([]int32, 0, capacity),
	}
}

// Compress sorts a copy of src and returns its run-length encoding: the
// distinct values ascending and, parallel to them, each value's
// occurrence count. The returned slices alias the scratch — valid until
// the next Compress call. src itself is not modified.
func (s *RunScratch) Compress(src []uint64) (pcs []uint64, counts []int32) {
	n := len(src)
	if n == 0 {
		return s.pcs[:0], s.counts[:0]
	}
	keys := append(s.keys[:0], src...)
	s.keys = keys
	if cap(s.tmp) < n {
		s.growTmp(n)
	}
	tmp := s.tmp[:n]

	// One pass finds the digits that vary at all (PC streams share their
	// high bytes, so typically only the low 2–3 do); each varying digit
	// then costs one histogram pass and one counting-sort scatter.
	var or uint64
	and := ^uint64(0)
	for _, k := range keys {
		or |= k
		and &= k
	}
	diff := or ^ and
	a, b := keys, tmp
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		if byte(diff>>shift) == 0 {
			continue // constant digit: every key shares it
		}
		h := &s.hist
		*h = [256]int32{}
		for _, k := range a {
			h[byte(k>>shift)]++
		}
		sum := int32(0)
		for d := 0; d < 256; d++ {
			c := h[d]
			h[d] = sum
			sum += c
		}
		for _, k := range a {
			d := byte(k >> shift)
			b[h[d]] = k
			h[d]++
		}
		a, b = b, a
	}

	// Run-length encode the sorted keys.
	pcs, counts = s.pcs[:0], s.counts[:0]
	cur, c := a[0], int32(1)
	for _, k := range a[1:] {
		if k == cur {
			c++
			continue
		}
		pcs = append(pcs, cur)
		counts = append(counts, c)
		cur, c = k, 1
	}
	pcs = append(pcs, cur)
	counts = append(counts, c)
	s.pcs, s.counts = pcs, counts
	return pcs, counts
}

// growTmp resizes the radix ping-pong buffer. It runs only when a buffer
// larger than every previous one arrives — at most a handful of times per
// process, never in steady state.
//
//lint:allow hotpath -- scratch growth is amortized-cold (fires only when the buffer size exceeds all previous intervals')
func (s *RunScratch) growTmp(n int) {
	s.tmp = make([]uint64, n)
}
