// Series: the bounded per-interval history ring.
//
// Every monitor in this repo records one scalar per sample-buffer overflow
// (the region monitor's UCR fraction, the adore event stream, ...). On the
// paper's few-thousand-interval traces an append-forever slice is fine; on
// the ROADMAP's billions-of-intervals serving runs it is a slow leak inside
// the component that must cost <1% of execution. Series is the shared
// replacement: a fixed-capacity ring that keeps the most recent
// observations, maintains a running sum for O(1) Mean, and accounts
// explicitly for what it dropped so consumers can tell a complete series
// from a windowed one. Figure generators that genuinely need the full
// series opt into unbounded retention via NewUnboundedSeries.
package stats

import (
	"fmt"
	"sort"

	"regionmon/internal/snap"
)

// Series is a history of float64 observations, either bounded (a ring that
// keeps the most recent Cap observations) or unbounded (retain-everything
// mode for experiments and figure generation). Append is allocation-free
// in bounded mode, making it safe on detector hot paths.
type Series struct {
	buf       []float64 //lint:bounded -- ring in bounded mode; unbounded is an explicit experiment opt-in
	head      int       // next write position (bounded mode)
	n         int       // live observations (bounded mode; unbounded uses len(buf))
	total     int64     // observations ever appended
	sum       float64
	unbounded bool
}

// NewSeries returns a bounded series holding at most capacity observations.
// It panics if capacity < 1: a zero-size history cannot answer Median/Mean
// queries and indicates a configuration bug.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		panic("stats: series capacity must be >= 1")
	}
	return &Series{buf: make([]float64, capacity)}
}

// NewUnboundedSeries returns a retain-everything series: Append grows the
// backing slice forever and Dropped is always 0. Only offline consumers
// (experiments, figure generators) should use this mode.
func NewUnboundedSeries() *Series {
	return &Series{unbounded: true}
}

// Unbounded reports whether the series retains every observation.
func (s *Series) Unbounded() bool { return s.unbounded }

// Append records one observation, evicting the oldest in bounded mode when
// the ring is full.
func (s *Series) Append(x float64) {
	s.total++
	if s.unbounded {
		s.buf = append(s.buf, x)
		s.sum += x
		return
	}
	if s.n == len(s.buf) {
		s.sum -= s.buf[s.head]
	} else {
		s.n++
	}
	s.buf[s.head] = x
	s.head = (s.head + 1) % len(s.buf)
	s.sum += x
}

// Len returns the number of retained observations.
func (s *Series) Len() int {
	if s.unbounded {
		return len(s.buf)
	}
	return s.n
}

// Cap returns the ring capacity, or -1 for an unbounded series.
func (s *Series) Cap() int {
	if s.unbounded {
		return -1
	}
	return len(s.buf)
}

// Total returns the number of observations ever appended.
func (s *Series) Total() int64 { return s.total }

// Dropped returns how many observations have been evicted (always 0 for an
// unbounded series). Total == Dropped + Len.
func (s *Series) Dropped() int64 { return s.total - int64(s.Len()) }

// Reset empties the series and zeroes the Total/Dropped accounting.
func (s *Series) Reset() {
	if s.unbounded {
		s.buf = s.buf[:0]
	} else {
		s.head, s.n = 0, 0
	}
	s.total, s.sum = 0, 0
}

// At returns the i-th retained observation, oldest first (0 <= i < Len).
func (s *Series) At(i int) float64 {
	if i < 0 || i >= s.Len() {
		panic("stats: series index out of range")
	}
	if s.unbounded {
		return s.buf[i]
	}
	return s.buf[(s.head-s.n+i+len(s.buf))%len(s.buf)]
}

// Values appends the retained observations, oldest first, to dst and
// returns the extended slice.
func (s *Series) Values(dst []float64) []float64 {
	if s.unbounded {
		return append(dst, s.buf...)
	}
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.buf[(s.head-s.n+i+len(s.buf))%len(s.buf)])
	}
	return dst
}

// Mean returns the mean of the retained observations in O(1) via the
// running sum (0 when empty). Over very long bounded runs the incremental
// sum can drift; drift is bounded by the window length and far below any
// detector threshold in this repo.
func (s *Series) Mean() float64 {
	n := s.Len()
	if n == 0 {
		return 0
	}
	return s.sum / float64(n)
}

// Median returns the median of the retained observations (0 when empty).
// It lets MedianInto grow a fresh scratch slice per call; periodic
// reporting loops should hold a scratch buffer and use MedianInto.
// Convenience wrapper over MedianInto.
//
//lint:wraps MedianInto
func (s *Series) Median() float64 {
	return s.MedianInto(nil)
}

// MedianInto returns the median of the retained observations (0 when
// empty), using scratch as working storage: the values are copied into
// scratch (growing it only if its capacity is short) and sorted there.
// The series itself is never reordered. A caller that reuses one scratch
// buffer across calls computes medians allocation-free, making repeated
// median reporting safe alongside the monitoring path.
func (s *Series) MedianInto(scratch []float64) float64 {
	n := s.Len()
	if n == 0 {
		return 0
	}
	c := s.Values(scratch[:0])
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

const seriesTag = "series"

// AppendSnapshot encodes the series state (mode, retained values oldest
// first, total/sum accounting) onto e. The running sum is stored as exact
// float bits so a restored series answers Mean with the identical value.
func (s *Series) AppendSnapshot(e *snap.Encoder) {
	e.Header(seriesTag, 1)
	e.Bool(s.unbounded)
	e.Int(s.Cap())
	e.I64(s.total)
	e.F64(s.sum)
	e.Int(s.Len())
	for i, n := 0, s.Len(); i < n; i++ {
		e.F64(s.At(i))
	}
}

// RestoreSnapshot decodes state written by AppendSnapshot into s,
// replacing its contents. The snapshot must match the series' mode and
// (in bounded mode) capacity: a snapshot is a resume point for an
// identically configured monitor, not a migration format.
func (s *Series) RestoreSnapshot(d *snap.Decoder) error {
	d.Header(seriesTag, 1)
	unbounded := d.Bool()
	capa := d.Int()
	total := d.I64()
	sum := d.F64()
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	if unbounded != s.unbounded {
		return fmt.Errorf("stats: series snapshot mode mismatch (snapshot unbounded=%v, series unbounded=%v)", unbounded, s.unbounded)
	}
	if !s.unbounded {
		if capa != len(s.buf) {
			return fmt.Errorf("stats: series snapshot capacity %d, series capacity %d", capa, len(s.buf))
		}
		if n > capa {
			return fmt.Errorf("stats: series snapshot holds %d values, exceeds capacity %d", n, capa)
		}
	}
	s.Reset()
	if s.unbounded {
		if cap(s.buf) < n {
			s.buf = make([]float64, 0, n)
		}
		for i := 0; i < n; i++ {
			s.buf = append(s.buf, d.F64())
		}
	} else {
		for i := 0; i < n; i++ {
			s.buf[i] = d.F64()
		}
		s.n = n
		s.head = n % len(s.buf)
	}
	if err := d.Err(); err != nil {
		return err
	}
	s.total = total
	s.sum = sum
	return nil
}

const windowTag = "window"

// AppendSnapshot encodes the window (live values oldest first plus the
// exact incremental sum/sum2 bits) onto e. Storing the incremental sums
// verbatim — rather than recomputing them from the values on restore —
// is what makes a restored detector's subsequent Mean/StdDev comparisons
// replay bit-for-bit: recomputation would re-order the additions and
// drift by ULPs.
func (w *Window) AppendSnapshot(e *snap.Encoder) {
	e.Header(windowTag, 1)
	e.Int(len(w.buf))
	e.F64(w.sum)
	e.F64(w.sum2)
	e.Int(w.n)
	for i := 0; i < w.n; i++ {
		e.F64(w.buf[(w.head-w.n+i+len(w.buf))%len(w.buf)])
	}
}

// RestoreSnapshot decodes state written by AppendSnapshot into w,
// replacing its contents. The snapshot capacity must match the window's.
func (w *Window) RestoreSnapshot(d *snap.Decoder) error {
	d.Header(windowTag, 1)
	capa := d.Int()
	sum := d.F64()
	sum2 := d.F64()
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	if capa != len(w.buf) {
		return fmt.Errorf("stats: window snapshot capacity %d, window capacity %d", capa, len(w.buf))
	}
	if n > capa {
		return fmt.Errorf("stats: window snapshot holds %d values, exceeds capacity %d", n, capa)
	}
	w.Reset()
	for i := 0; i < n; i++ {
		w.buf[i] = d.F64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	w.n = n
	w.head = n % len(w.buf)
	w.sum = sum
	w.sum2 = sum2
	return nil
}
