package adore

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/sim"
)

// workload is a test fixture: a program with two spread-out hot loops and
// a schedule that alternates between them slowly enough that global phase
// detection sees a new centroid on (almost) every interval while each
// loop's local behaviour never changes.
type workload struct {
	prog   *isa.Program
	l1, l2 isa.LoopSpan
}

func buildWorkload(t testing.TB) *workload {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	p1 := b.Proc("alpha")
	l1 := p1.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU}, nil)
	b.Skip(0x20000)
	p2 := b.Proc("beta")
	l2 := p2.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &workload{prog: prog, l1: l1, l2: l2}
}

// alternating builds a schedule that ping-pongs between the two loops with
// the given slice period; both loops stall heavily on cache misses so
// optimization has cycles to recover.
func (w *workload) alternating(work, slice uint64) *sim.Schedule {
	seg := func(span isa.LoopSpan) sim.Segment {
		return sim.Segment{
			BaseCycles:  work,
			SlicePeriod: slice,
			Regions: []sim.RegionBehavior{{
				Start: span.Start, End: span.End, Weight: 1,
				MissRate: 0.8, MissPenalty: 60, HotspotIdx: -1,
			}},
		}
	}
	return &sim.Schedule{
		Name:   "alternating",
		Seed:   7,
		Repeat: 40,
		Segments: []sim.Segment{
			seg(w.l1),
			seg(w.l2),
		},
	}
}

// mixed builds a schedule where both loops are active in every interval
// with fine interleaving — the GPD-friendly case.
func (w *workload) mixed(work, slice uint64) *sim.Schedule {
	rb := func(span isa.LoopSpan) sim.RegionBehavior {
		return sim.RegionBehavior{
			Start: span.Start, End: span.End, Weight: 0.5,
			MissRate: 0.8, MissPenalty: 60, HotspotIdx: -1,
		}
	}
	return &sim.Schedule{
		Name:   "mixed",
		Seed:   7,
		Repeat: 40,
		Segments: []sim.Segment{{
			BaseCycles:  work,
			SlicePeriod: slice,
			Regions:     []sim.RegionBehavior{rb(w.l1), rb(w.l2)},
		}},
	}
}

func hpmCfg() hpm.Config {
	return hpm.Config{Period: 1000, BufferSize: 128, JitterFrac: 0.1}
}

func run(t *testing.T, w *workload, sched *sim.Schedule, cfg Config) RunResult {
	t.Helper()
	rto, err := New(w.prog, sched, hpmCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rto.Run()
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Policy = Policy(42) },
		func(c *Config) { c.MinTraceSamples = 0 },
		func(c *Config) { c.GPD.HistorySize = 0 },
		func(c *Config) { c.SelfMonitor = true; c.HarmFactor = 0.5 },
		func(c *Config) { c.SelfMonitor = true; c.HarmWindow = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(PolicyGPD)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	lcfg := DefaultConfig(PolicyLPD)
	lcfg.Region.UCRThreshold = 0
	if err := lcfg.Validate(); err == nil {
		t.Error("bad region config accepted")
	}
}

func TestNoneBaselineDeploysNothing(t *testing.T) {
	w := buildWorkload(t)
	res := run(t, w, w.alternating(400_000, 100_000), DefaultConfig(PolicyNone))
	if res.Patches != 0 || res.Unpatches != 0 || len(res.Events) != 0 {
		t.Errorf("baseline run deployed: %+v", res)
	}
	if res.Sim.Cycles != res.Sim.BaseCycles {
		t.Errorf("baseline cycles %d != base %d", res.Sim.Cycles, res.Sim.BaseCycles)
	}
}

func TestGPDControllerPatchesAndUnpatches(t *testing.T) {
	w := buildWorkload(t)
	// Fine interleaving: the sample mix per interval is steady, GPD
	// stabilizes and patches the hot loops.
	sched := w.mixed(400_000, 20_000)
	res := run(t, w, sched, DefaultConfig(PolicyGPD))
	if res.Patches == 0 {
		t.Fatalf("GPD controller never patched: %+v", res)
	}
	if res.StableFraction == 0 {
		t.Error("GPD never stable on fine interleaving")
	}
	// Optimization must have saved cycles vs the none baseline.
	base := run(t, w, w.mixed(400_000, 20_000), DefaultConfig(PolicyNone))
	if res.Sim.Cycles >= base.Sim.Cycles {
		t.Errorf("GPD run not faster than baseline: %d vs %d", res.Sim.Cycles, base.Sim.Cycles)
	}
}

func TestLPDControllerFormsRegionsAndPatches(t *testing.T) {
	w := buildWorkload(t)
	res := run(t, w, w.alternating(400_000, 20_000), DefaultConfig(PolicyLPD))
	if res.Regions < 2 {
		t.Fatalf("LPD monitored %d regions; want >= 2", res.Regions)
	}
	if res.Patches == 0 {
		t.Fatal("LPD controller never patched")
	}
	base := run(t, w, w.alternating(400_000, 20_000), DefaultConfig(PolicyNone))
	if res.Sim.Cycles >= base.Sim.Cycles {
		t.Errorf("LPD run not faster than baseline: %d vs %d", res.Sim.Cycles, base.Sim.Cycles)
	}
}

// TestLPDBeatsGPDOnPeriodicSwitching is the Figure 17 mechanism in
// miniature: coarse alternation between two loops keeps GPD's centroid
// swinging (traces thrash or never deploy) while LPD sees two individually
// stable regions and keeps both optimized.
func TestLPDBeatsGPDOnPeriodicSwitching(t *testing.T) {
	w := buildWorkload(t)
	// Slice period ≈ interval cycles: consecutive intervals see different
	// centroids.
	mk := func() *sim.Schedule { return w.alternating(400_000, 400_000) }

	gpdRes := run(t, w, mk(), DefaultConfig(PolicyGPD))
	lpdRes := run(t, w, mk(), DefaultConfig(PolicyLPD))
	if gpdRes.Sim.BaseCycles != lpdRes.Sim.BaseCycles {
		t.Fatalf("work differs: %d vs %d", gpdRes.Sim.BaseCycles, lpdRes.Sim.BaseCycles)
	}
	speedup := lpdRes.Sim.Speedup(gpdRes.Sim)
	if speedup <= 0 {
		t.Errorf("LPD speedup over GPD = %.3f; want positive (gpd stable %.2f, lpd stable %.2f)",
			speedup, gpdRes.StableFraction, lpdRes.StableFraction)
	}
	if lpdRes.StableFraction <= gpdRes.StableFraction {
		t.Errorf("LPD stable fraction %.2f should exceed GPD's %.2f under periodic switching",
			lpdRes.StableFraction, gpdRes.StableFraction)
	}
}

// TestSelfMonitoringUndoesHarmfulOptimization checks the feedback
// mechanism: a region for which "prefetching" is counterproductive gets
// patched, detected as harmed, unpatched and blacklisted.
func TestSelfMonitoringUndoesHarmfulOptimization(t *testing.T) {
	w := buildWorkload(t)
	sched := w.mixed(400_000, 20_000)
	cfg := DefaultConfig(PolicyLPD)
	cfg.SelfMonitor = true
	cfg.HarmFactor = 1.25
	// Prefetching hurts l1 (doubles its miss stalls — pollution) and
	// helps l2.
	cfg.Model = func(start, _ isa.Addr) float64 {
		if start == w.l1.Start {
			return -1.0
		}
		return 0.5
	}
	rto, err := New(w.prog, sched, hpmCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := rto.Run()
	if res.HarmUndos == 0 {
		t.Fatalf("self-monitoring never undid the harmful optimization: %+v", res)
	}
	// After blacklisting, the harmful span must never be re-patched.
	harmName := sim.Span{Start: w.l1.Start, End: w.l1.End}.Name()
	undoSeen := false
	for _, ev := range res.Events {
		if ev.Kind == EventHarmUndo && ev.Region == harmName {
			undoSeen = true
		}
		if undoSeen && ev.Kind == EventPatch && ev.Region == harmName {
			t.Fatalf("harmful region re-patched after blacklisting at cycle %d", ev.Cycle)
		}
	}
	if !undoSeen {
		t.Fatal("no harm-undo event for the harmful region")
	}

	// Without self-monitoring the same workload must be slower.
	cfgNo := cfg
	cfgNo.SelfMonitor = false
	rtoNo, err := New(w.prog, w.mixed(400_000, 20_000), hpmCfg(), cfgNo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	resNo := rtoNo.Run()
	if res.Sim.Cycles >= resNo.Sim.Cycles {
		t.Errorf("self-monitoring did not pay off: %d vs %d cycles", res.Sim.Cycles, resNo.Sim.Cycles)
	}
}

func TestEventLogCap(t *testing.T) {
	w := buildWorkload(t)
	cfg := DefaultConfig(PolicyLPD)
	cfg.MaxEvents = 3
	rto, err := New(w.prog, w.alternating(400_000, 400_000), hpmCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := rto.Run()
	if len(res.Events) > 3 {
		t.Errorf("event log %d entries; cap 3", len(res.Events))
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := buildWorkload(t)
	r1 := run(t, w, w.alternating(400_000, 400_000), DefaultConfig(PolicyLPD))
	r2 := run(t, w, w.alternating(400_000, 400_000), DefaultConfig(PolicyLPD))
	if r1.Sim.Cycles != r2.Sim.Cycles || r1.Patches != r2.Patches || r1.PhaseChanges != r2.PhaseChanges {
		t.Errorf("runs differ: %+v vs %+v", r1, r2)
	}
}

// TestGPDRepatchesAfterRestabilization: the ORIG controller unpatches all
// traces on a global phase change and re-selects traces when the phase
// stabilizes again.
func TestGPDRepatchesAfterRestabilization(t *testing.T) {
	w := buildWorkload(t)
	// Long steady stretches separated by one working-set move: stable in
	// l1, shift, stable in l2.
	seg := func(span isa.LoopSpan) sim.Segment {
		return sim.Segment{
			BaseCycles:  4_000_000,
			SlicePeriod: 20_000,
			Regions: []sim.RegionBehavior{{
				Start: span.Start, End: span.End, Weight: 1,
				MissRate: 0.5, MissPenalty: 40, HotspotIdx: -1,
			}},
		}
	}
	sched := &sim.Schedule{
		Name:     "two-phases",
		Segments: []sim.Segment{seg(w.l1), seg(w.l2)},
	}
	cfg := DefaultConfig(PolicyGPD)
	rto, err := New(w.prog, sched, hpmCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := rto.Run()
	if res.Patches < 2 {
		t.Fatalf("patches = %d; want >= 2 (one per stable phase)", res.Patches)
	}
	if res.Unpatches < 1 {
		t.Fatalf("unpatches = %d; want >= 1 (working-set move)", res.Unpatches)
	}
	// Patch targets must cover both loops across the run.
	patched := map[string]bool{}
	for _, ev := range res.Events {
		if ev.Kind == EventPatch {
			patched[ev.Region] = true
		}
	}
	l1Name := sim.Span{Start: w.l1.Start, End: w.l1.End}.Name()
	l2Name := sim.Span{Start: w.l2.Start, End: w.l2.End}.Name()
	if !patched[l1Name] || !patched[l2Name] {
		t.Errorf("patched spans = %v; want both %s and %s", patched, l1Name, l2Name)
	}
}

// TestMinTraceSamplesGatesSelection: loops below the hotness threshold are
// not selected as traces by either controller.
func TestMinTraceSamplesGatesSelection(t *testing.T) {
	w := buildWorkload(t)
	sched := &sim.Schedule{
		Name:   "skewed",
		Repeat: 40,
		Segments: []sim.Segment{{
			BaseCycles:  400_000,
			SlicePeriod: 20_000,
			Regions: []sim.RegionBehavior{
				{Start: w.l1.Start, End: w.l1.End, Weight: 0.97,
					MissRate: 0.5, MissPenalty: 40, HotspotIdx: -1},
				{Start: w.l2.Start, End: w.l2.End, Weight: 0.03,
					MissRate: 0.5, MissPenalty: 40, HotspotIdx: -1},
			},
		}},
	}
	cfg := DefaultConfig(PolicyLPD)
	cfg.MinTraceSamples = 32 // l2 gets ~4 of 128 samples per interval
	rto, err := New(w.prog, sched, hpmCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := rto.Run()
	l2Name := sim.Span{Start: w.l2.Start, End: w.l2.End}.Name()
	for _, ev := range res.Events {
		if ev.Kind == EventPatch && ev.Region == l2Name {
			t.Fatalf("cold loop patched at cycle %d", ev.Cycle)
		}
	}
	if res.Patches == 0 {
		t.Error("hot loop never patched")
	}
}

// TestCPITrackerFlagsCharacteristicChange sets up the case the centroid
// cannot see: the working set never moves (one loop, fixed weights) but
// the data set outgrows the cache mid-run, tripling the miss rate. The
// CPI tracker flags the change and the GPD controller re-evaluates its
// traces.
func TestCPITrackerFlagsCharacteristicChange(t *testing.T) {
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	loop := p.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	seg := func(missRate float64) sim.Segment {
		return sim.Segment{
			BaseCycles:  2_000_000,
			SlicePeriod: 20_000,
			Regions: []sim.RegionBehavior{{
				Start: loop.Start, End: loop.End, Weight: 1,
				MissRate: missRate, MissPenalty: 60, HotspotIdx: -1,
			}},
		}
	}
	sched := &sim.Schedule{
		Name:     "cpi-jump",
		Segments: []sim.Segment{seg(0.1), seg(0.9)},
	}
	cfg := DefaultConfig(PolicyGPD)
	cfg.TrackCPI = true
	rto, err := New(prog, sched, hpmCfg(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := rto.Run()
	if rto.CPITracker() == nil || rto.CPITracker().Changes() == 0 {
		t.Fatalf("CPI tracker flagged no change across a 0.1 -> 0.9 miss-rate jump")
	}
	var perfEvents, reEvals int
	for _, ev := range res.Events {
		switch {
		case ev.Kind == EventPerfChange:
			perfEvents++
		case ev.Kind == EventUnpatch && ev.Detail == "performance characteristics changed":
			reEvals++
		}
	}
	if perfEvents == 0 {
		t.Error("no perf-change events logged")
	}
	if res.Patches > 0 && reEvals == 0 {
		t.Error("patched traces were not re-evaluated on the CPI change")
	}
	// Without tracking, no such events appear.
	cfgOff := DefaultConfig(PolicyGPD)
	rtoOff, err := New(prog, &sim.Schedule{Name: "cpi-jump", Segments: []sim.Segment{seg(0.1), seg(0.9)}}, hpmCfg(), cfgOff)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rtoOff.CPITracker() != nil {
		t.Error("tracker attached without TrackCPI")
	}
}

func TestStringers(t *testing.T) {
	if PolicyGPD.String() != "rto-orig" || PolicyLPD.String() != "rto-lpd" || PolicyNone.String() != "none" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should render")
	}
	kinds := []EventKind{EventPatch, EventUnpatch, EventPhaseChange, EventFormation, EventHarmUndo, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("event kind %d renders empty", int(k))
		}
	}
}
