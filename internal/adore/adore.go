// Package adore models the prototype runtime optimization system the paper
// builds on (ADORE on SPARC, references [12][13]): sampling-driven trace
// selection, optimization deployment by binary patching, and phase
// detection deciding when to patch and unpatch.
//
// Two controllers are provided:
//
//   - RTO-ORIG: the paper's baseline comparison system — centroid-based
//     global phase detection; when a stable phase is entered, hot loop
//     traces are selected from the current interval's samples and patched
//     (deploying the simulated prefetching optimization); on a global
//     phase change every trace is unpatched so optimizations can be
//     re-evaluated (the modification Section 3.2.4 describes for a fair
//     comparison).
//
//   - RTO-LPD: the paper's contribution — region monitoring with local
//     phase detection; each region is patched while its *own* phase is
//     stable and unpatched on its own phase change, so a globally noisy
//     program keeps its locally stable loops optimized. With self-
//     monitoring enabled the controller also watches deployed
//     optimizations and undoes ones that hurt (Section 5's feedback
//     mechanism).
//
// The optimization itself (helper-thread data prefetching in the paper) is
// simulated: deploying a trace on a region activates a stall-cycle
// modifier in the executor whose true effectiveness comes from the
// workload's OptimizationModel — the controller cannot observe it except
// through the program's performance, which is exactly the position the
// real optimizer is in.
package adore

import (
	"fmt"
	"sort"

	"regionmon/internal/altdetect"
	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/lpd"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
	"regionmon/internal/sim"
)

// Policy selects the phase-detection controller.
type Policy int

const (
	// PolicyGPD is the RTO-ORIG baseline (global centroid detection).
	PolicyGPD Policy = iota
	// PolicyLPD is RTO-LPD (region monitoring + local phase detection).
	PolicyLPD
	// PolicyNone deploys no optimizations (plain execution; used as the
	// reference baseline in speedup accounting).
	PolicyNone
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyGPD:
		return "rto-orig"
	case PolicyLPD:
		return "rto-lpd"
	case PolicyNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// OptimizationModel reports the true effectiveness of deploying the
// optimization on the span [start, end): the fraction of the region's
// stall cycles removed while patched. Negative values model speculative
// optimizations that hurt (bad prefetches evicting useful lines). The
// model is a property of the workload, not of the controller.
type OptimizationModel func(start, end isa.Addr) float64

// ConstantModel returns a model with uniform effectiveness.
func ConstantModel(save float64) OptimizationModel {
	return func(isa.Addr, isa.Addr) float64 { return save }
}

// Config parameterizes an RTO run.
type Config struct {
	// Policy selects the controller.
	Policy Policy
	// GPD configures the centroid detector (PolicyGPD).
	GPD gpd.Config
	// Region configures the region monitor (PolicyLPD).
	Region region.Config
	// MinTraceSamples is the interval sample count a loop must gather to
	// be selected as an optimization trace.
	MinTraceSamples int
	// PatchCycles is the main-thread overhead of patching or unpatching
	// one trace.
	PatchCycles uint64
	// Model is the workload's true optimization effectiveness
	// (defaults to ConstantModel(0.35)).
	Model OptimizationModel
	// SelfMonitor enables the feedback mechanism: a patched region whose
	// time share grows by HarmFactor after patching is unpatched and
	// blacklisted (PolicyLPD only).
	SelfMonitor bool
	// HarmFactor is the growth ratio treated as harm (default 1.4).
	HarmFactor float64
	// HarmWindow is the number of post-patch intervals averaged before
	// judging (default 3).
	HarmWindow int
	// MaxEvents bounds the retained event log: the controller keeps the
	// *most recent* MaxEvents entries (a ring, with EventsDropped
	// accounting for evictions). 0 selects DefaultMaxEvents; negative
	// keeps everything (opt-in retain-all for offline analysis — on a
	// long run the log would otherwise grow without bound).
	MaxEvents int
	// TrackCPI attaches a performance-characteristic tracker over the
	// interval CPI (the paper's "other metrics of performance, such as
	// CPI and DPI, are used to determine if the program performance
	// characteristics have changed"). A flagged change is logged and, for
	// PolicyGPD, unpatches all traces for re-evaluation even when the
	// centroid is steady — the same working set suddenly performing
	// differently warrants a new look.
	TrackCPI bool
	// CPI configures the tracker (zero value = gpd.DefaultPerfConfig).
	CPI gpd.PerfConfig
}

// DefaultMaxEvents is the event-log ring size used when Config.MaxEvents
// is 0.
const DefaultMaxEvents = 4096

// DefaultConfig returns a configuration with the paper's detector
// parameters and moderate optimization effectiveness.
func DefaultConfig(policy Policy) Config {
	return Config{
		Policy:          policy,
		GPD:             gpd.DefaultConfig(),
		Region:          region.DefaultConfig(),
		MinTraceSamples: 16,
		PatchCycles:     20_000,
		Model:           ConstantModel(0.35),
		HarmFactor:      1.4,
		HarmWindow:      3,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch c.Policy {
	case PolicyGPD:
		if err := c.GPD.Validate(); err != nil {
			return err
		}
	case PolicyLPD:
		if err := c.Region.Validate(); err != nil {
			return err
		}
	case PolicyNone:
	default:
		return fmt.Errorf("adore: unknown policy %v", c.Policy)
	}
	if c.MinTraceSamples < 1 {
		return fmt.Errorf("adore: min trace samples %d < 1", c.MinTraceSamples)
	}
	if c.SelfMonitor {
		if c.HarmFactor <= 1 {
			return fmt.Errorf("adore: harm factor %v must exceed 1", c.HarmFactor)
		}
		if c.HarmWindow < 1 {
			return fmt.Errorf("adore: harm window %d < 1", c.HarmWindow)
		}
	}
	return nil
}

// EventKind classifies controller events.
type EventKind int

const (
	// EventPatch: a trace was deployed on a region.
	EventPatch EventKind = iota
	// EventUnpatch: a trace was removed.
	EventUnpatch
	// EventPhaseChange: the governing detector crossed the stable
	// boundary.
	EventPhaseChange
	// EventFormation: region formation added regions (PolicyLPD).
	EventFormation
	// EventHarmUndo: self-monitoring undid a harmful optimization.
	EventHarmUndo
	// EventPerfChange: the CPI tracker flagged a performance-
	// characteristic change.
	EventPerfChange
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventPatch:
		return "patch"
	case EventUnpatch:
		return "unpatch"
	case EventPhaseChange:
		return "phase-change"
	case EventFormation:
		return "formation"
	case EventHarmUndo:
		return "harm-undo"
	case EventPerfChange:
		return "perf-change"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry in the controller's log.
type Event struct {
	// Cycle is the absolute cycle of the triggering overflow.
	Cycle uint64
	// Seq is the overflow sequence number.
	Seq int
	// Kind classifies the event.
	Kind EventKind
	// Region names the affected region ("" for global events).
	Region string
	// Detail carries extra context (state names, r values).
	Detail string
}

// RunResult summarizes a completed RTO run.
type RunResult struct {
	// Policy is the controller that ran.
	Policy Policy
	// Sim carries cycle/work accounting; Sim.Speedup compares runs.
	Sim sim.Result
	// Patches and Unpatches count trace deployments and removals.
	Patches, Unpatches int
	// PhaseChanges counts governing-detector stable→unstable crossings
	// (GPD: global; LPD: summed over regions).
	PhaseChanges int
	// StableFraction is the fraction of intervals the governing detector
	// judged stable (LPD: sample-weighted mean across regions).
	StableFraction float64
	// HarmUndos counts self-monitoring reversals.
	HarmUndos int
	// Regions is the number of regions monitored at end of run (LPD).
	Regions int
	// Events is the controller log in chronological order — the most
	// recent MaxEvents entries (see Config.MaxEvents).
	Events []Event
	// EventsDropped counts log entries evicted by the MaxEvents bound
	// (0 when the whole run fit, or in retain-all mode).
	EventsDropped int64
}

// patchState tracks one deployed trace.
type patchState struct {
	span       sim.Span
	preShare   float64   // region time share at patch time
	patchedAt  int       // overflow seq
	postShares []float64 // post-patch interval time shares (self-monitoring)
	judged     bool
}

// RTO wires a program, schedule, sampling monitor, executor and a
// controller policy into one runnable system.
//
// Policies are detector pipeline configurations, not separate control
// paths: New registers the policy's detectors (the CPI tracker when
// enabled, then the governing detector — GPD's centroid or the region
// monitor) on one pipeline, and the controller is a single dispatch loop
// over each interval's merged verdicts.
//
// Like the System facade, an RTO is single-owner: one goroutine calls Run.
//
//lint:single-owner
type RTO struct {
	cfg  Config
	prog *isa.Program

	exec *sim.Executor
	mon  *hpm.Monitor

	pipe  *pipeline.Pipeline
	ga    *pipeline.GPD           // nil unless PolicyGPD
	ra    *pipeline.RegionMonitor // nil unless PolicyLPD
	cpiAd *pipeline.Perf          // nil unless TrackCPI

	patched       map[sim.Span]*patchState
	blacklist     map[sim.Span]bool
	events        []Event // most-recent ring once the MaxEvents bound is hit
	eventHead     int     // ring write position (0 while still growing)
	eventsDropped int64
	patches       int
	unpatches     int
	harmUndos     int
}

// New constructs an RTO over prog and sched, sampling with hpmCfg.
func New(prog *isa.Program, sched *sim.Schedule, hpmCfg hpm.Config, cfg Config) (*RTO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model == nil {
		cfg.Model = ConstantModel(0.35)
	}
	r := &RTO{
		cfg:       cfg,
		prog:      prog,
		pipe:      pipeline.New(),
		patched:   make(map[sim.Span]*patchState),
		blacklist: make(map[sim.Span]bool),
	}
	mon, err := hpm.New(hpmCfg, r.onOverflow)
	if err != nil {
		return nil, err
	}
	r.mon = mon
	exec, err := sim.NewExecutor(prog, sched, mon)
	if err != nil {
		return nil, err
	}
	r.exec = exec
	// Registration order is control order: the CPI tracker's verdict is
	// handled before the governing detector's, matching the paper's "check
	// performance characteristics first" sequencing.
	if cfg.TrackCPI {
		pcfg := cfg.CPI
		if pcfg == (gpd.PerfConfig{}) {
			pcfg = gpd.DefaultPerfConfig()
		}
		tr, err := gpd.NewPerfTracker(pcfg)
		if err != nil {
			return nil, err
		}
		r.cpiAd = pipeline.NewCPI(tr)
		r.pipe.MustRegister(r.cpiAd)
	}
	switch cfg.Policy {
	case PolicyGPD:
		d, err := gpd.New(cfg.GPD)
		if err != nil {
			return nil, err
		}
		r.ga = pipeline.NewGPD(d)
		r.pipe.MustRegister(r.ga)
	case PolicyLPD:
		m, err := region.NewMonitor(prog, cfg.Region)
		if err != nil {
			return nil, err
		}
		r.ra = pipeline.NewRegionMonitor(m)
		r.pipe.MustRegister(r.ra)
	}
	return r, nil
}

// Executor exposes the underlying executor (tests and examples).
func (r *RTO) Executor() *sim.Executor { return r.exec }

// Pipeline exposes the detector pipeline the policy was configured on
// (e.g. to attach extra observers or comparison detectors before Run).
func (r *RTO) Pipeline() *pipeline.Pipeline { return r.pipe }

// RegionMonitor exposes the region monitor (nil unless PolicyLPD).
func (r *RTO) RegionMonitor() *region.Monitor {
	if r.ra == nil {
		return nil
	}
	return r.ra.Monitor()
}

// GlobalDetector exposes the GPD detector (nil unless PolicyGPD).
func (r *RTO) GlobalDetector() *gpd.Detector {
	if r.ga == nil {
		return nil
	}
	return r.ga.Detector()
}

// Run executes the schedule under the controller and returns the summary.
func (r *RTO) Run() RunResult {
	simRes := r.exec.Run()
	res := RunResult{
		Policy:        r.cfg.Policy,
		Sim:           simRes,
		Patches:       r.patches,
		Unpatches:     r.unpatches,
		PhaseChanges:  r.phaseChanges(),
		HarmUndos:     r.harmUndos,
		Events:        r.chronologicalEvents(),
		EventsDropped: r.eventsDropped,
	}
	switch r.cfg.Policy {
	case PolicyGPD:
		res.StableFraction = r.ga.Detector().StableFraction()
	case PolicyLPD:
		res.StableFraction = r.ra.WeightedStableFraction()
		res.Regions = len(r.ra.Monitor().Regions())
	}
	return res
}

func (r *RTO) phaseChanges() int {
	switch r.cfg.Policy {
	case PolicyGPD:
		return r.ga.Detector().PhaseChanges()
	case PolicyLPD:
		return r.ra.PhaseChanges()
	default:
		return 0
	}
}

func (r *RTO) log(ev Event) {
	max := r.cfg.MaxEvents
	if max < 0 {
		r.events = append(r.events, ev)
		return
	}
	if max == 0 {
		max = DefaultMaxEvents
	}
	if len(r.events) < max {
		r.events = append(r.events, ev)
		return
	}
	// Ring full: overwrite the oldest entry so the log always holds the
	// most recent max events.
	r.events[r.eventHead] = ev
	r.eventHead = (r.eventHead + 1) % max
	r.eventsDropped++
}

// chronologicalEvents returns the retained log oldest-first, rotating the
// ring when it has wrapped.
func (r *RTO) chronologicalEvents() []Event {
	if r.eventHead == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.eventHead:]...)
	out = append(out, r.events[:r.eventHead]...)
	return out
}

// onOverflow is the monitoring thread: it runs synchronously on every
// sample-buffer overflow. Every registered detector observes the interval
// through the pipeline; the controller is one dispatch loop over the
// merged verdicts, switching on each detector's payload type.
func (r *RTO) onOverflow(ov *hpm.Overflow) {
	rep := r.pipe.ProcessOverflow(ov)
	for i := range rep.Verdicts {
		switch v := rep.Verdicts[i].Payload.(type) {
		case *gpd.PerfVerdict:
			r.perfControl(v, ov)
		case *gpd.Verdict:
			r.gpdControl(v, ov)
		case *region.Report:
			r.lpdControl(v, ov)
		case *altdetect.Verdict:
			// Comparison-only detectors (BBV, working-set signatures) ride
			// along for the ablation studies; they drive no control action.
		case *changepoint.Verdict:
			// The E-divisive detector likewise rides along for comparison;
			// the band-based perf tracker remains the control signal.
		}
	}
}

// CPITracker exposes the CPI tracker (nil unless TrackCPI).
func (r *RTO) CPITracker() *gpd.PerfTracker {
	if r.cpiAd == nil {
		return nil
	}
	return r.cpiAd.Tracker()
}

// perfControl reacts to the CPI tracker's verdict: log characteristic
// changes and, under RTO-ORIG, re-evaluate every trace — the working set
// may be steady but its performance characteristics moved.
func (r *RTO) perfControl(v *gpd.PerfVerdict, ov *hpm.Overflow) {
	if !v.Changed {
		return
	}
	r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventPerfChange,
		Detail: fmt.Sprintf("CPI %.3f outside band [%.3f±%.3f]", v.Value, v.Mean, v.SD)})
	if r.cfg.Policy == PolicyGPD {
		r.unpatchAll(ov, "performance characteristics changed")
	}
}

// unpatchAll removes every deployed trace in address order.
func (r *RTO) unpatchAll(ov *hpm.Overflow, why string) {
	spans := make([]sim.Span, 0, len(r.patched))
	for s := range r.patched {
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		r.unpatch(s, ov, why)
	}
}

// gpdControl implements RTO-ORIG: patch hot traces on stable entry,
// unpatch everything on stable exit.
func (r *RTO) gpdControl(v *gpd.Verdict, ov *hpm.Overflow) {
	if v.PhaseChange {
		r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventPhaseChange,
			Detail: fmt.Sprintf("%v -> %v (delta %.3f)", v.Prev, v.State, v.Delta)})
	}
	switch {
	case v.PhaseChange && v.State == gpd.Stable:
		// Entering stable: select hot loop traces from this interval.
		for _, hot := range r.hotLoops(ov) {
			r.patch(hot, ov)
		}
	case v.PhaseChange && v.State != gpd.Stable:
		// Leaving stable: unpatch all traces for re-evaluation.
		r.unpatchAll(ov, "global phase change")
	}
}

// hotLoops maps an interval's samples to innermost natural loops and
// returns the spans gathering at least MinTraceSamples, hottest first.
func (r *RTO) hotLoops(ov *hpm.Overflow) []sim.Span {
	counts := make(map[*isa.Loop]int)
	for i := range ov.Samples {
		pc := ov.Samples[i].PC
		if pc == 0 {
			continue
		}
		p := r.prog.ProcAt(pc)
		if p == nil {
			continue
		}
		if l := p.InnermostLoopAt(pc); l != nil {
			counts[l]++
		}
	}
	type cand struct {
		l *isa.Loop
		n int
	}
	cands := make([]cand, 0, len(counts))
	for l, n := range counts {
		if n >= r.cfg.MinTraceSamples {
			cands = append(cands, cand{l, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].l.Start() < cands[j].l.Start()
	})
	spans := make([]sim.Span, len(cands))
	for i, c := range cands {
		spans[i] = sim.Span{Start: c.l.Start(), End: c.l.End()}
	}
	return spans
}

// lpdControl implements RTO-LPD: region monitoring governs patching
// region-by-region. (The sample-weighted stability accounting lives in
// the pipeline's RegionMonitor adapter.)
func (r *RTO) lpdControl(rep *region.Report, ov *hpm.Overflow) {
	if rep.FormationTriggered && len(rep.NewRegions) > 0 {
		names := make([]string, len(rep.NewRegions))
		for i, reg := range rep.NewRegions {
			names[i] = reg.Name()
		}
		r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventFormation,
			Detail: fmt.Sprintf("UCR %.0f%%: %v", rep.UCRFraction*100, names)})
	}
	total := rep.TotalSamples
	for _, rv := range rep.Verdicts {
		span := sim.Span{Start: rv.Region.Start, End: rv.Region.End}
		if rv.Verdict.PhaseChange {
			r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventPhaseChange, Region: rv.Region.Name(),
				Detail: fmt.Sprintf("%v -> %v (r %.3f)", rv.Verdict.Prev, rv.Verdict.State, rv.Verdict.R)})
		}
		ps, isPatched := r.patched[span]
		switch {
		case !isPatched && rv.Verdict.State == lpd.Stable &&
			rv.Samples >= r.cfg.MinTraceSamples && !r.blacklist[span]:
			ps = r.patch(span, ov)
			if ps != nil && total > 0 {
				ps.preShare = float64(rv.Samples) / float64(total)
			}
		case isPatched && rv.Verdict.PhaseChange && rv.Verdict.State != lpd.Stable:
			r.unpatch(span, ov, "local phase change")
		case isPatched && r.cfg.SelfMonitor && !ps.judged:
			r.selfMonitor(ps, rv.Samples, total, ov)
		}
	}
	// Pruned regions lose their traces: the code is cold, keep the patch
	// out of the way.
	for _, pr := range rep.Pruned {
		span := sim.Span{Start: pr.Start, End: pr.End}
		if _, ok := r.patched[span]; ok {
			r.unpatch(span, ov, "region pruned")
		}
	}
}

// selfMonitor accumulates post-patch interval samples and undoes the
// optimization if the region's time share grew by HarmFactor.
func (r *RTO) selfMonitor(ps *patchState, samples, total int, ov *hpm.Overflow) {
	if total == 0 {
		return
	}
	ps.postShares = append(ps.postShares, float64(samples)/float64(total))
	if len(ps.postShares) < r.cfg.HarmWindow {
		return
	}
	ps.judged = true
	var sum float64
	for _, s := range ps.postShares {
		sum += s
	}
	postShare := sum / float64(len(ps.postShares))
	if ps.preShare > 0 && postShare > ps.preShare*r.cfg.HarmFactor {
		span := ps.span
		r.unpatch(span, ov, fmt.Sprintf("harmful: share %.3f -> %.3f", ps.preShare, postShare))
		r.blacklist[span] = true
		r.harmUndos++
		r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventHarmUndo, Region: span.Name(),
			Detail: fmt.Sprintf("share %.3f -> %.3f", ps.preShare, postShare)})
	}
}

// patch deploys the optimization on span.
func (r *RTO) patch(span sim.Span, ov *hpm.Overflow) *patchState {
	if _, ok := r.patched[span]; ok {
		return r.patched[span]
	}
	save := r.cfg.Model(span.Start, span.End)
	r.exec.SetOptimization(span, save)
	r.exec.Stall(r.cfg.PatchCycles)
	ps := &patchState{span: span, patchedAt: ov.Seq}
	r.patched[span] = ps
	r.patches++
	r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventPatch, Region: span.Name(),
		Detail: fmt.Sprintf("save %.2f", save)})
	return ps
}

// unpatch removes the optimization from span.
func (r *RTO) unpatch(span sim.Span, ov *hpm.Overflow, why string) {
	if _, ok := r.patched[span]; !ok {
		return
	}
	r.exec.ClearOptimization(span)
	r.exec.Stall(r.cfg.PatchCycles)
	delete(r.patched, span)
	r.unpatches++
	r.log(Event{Cycle: ov.Cycle, Seq: ov.Seq, Kind: EventUnpatch, Region: span.Name(), Detail: why})
}
