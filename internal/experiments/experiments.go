// Package experiments regenerates every figure of the paper's evaluation
// (Figures 2–17). Each figure has a Run function returning a typed result
// with a Table rendering; cmd/experiments exposes them on the command
// line and bench_test.go wraps them in testing.B benchmarks.
//
// Scale note: the paper samples into a 2032-entry buffer on UltraSPARC
// runs lasting trillions of cycles. The reproduction defaults to a
// 512-entry buffer and ~10G-cycle runs so a full sweep finishes in
// minutes; the sampling periods are the paper's real values. Options.Scale
// shrinks runs further for tests. Shapes, not absolute counts, are the
// reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"regionmon/internal/hpm"
	"regionmon/internal/sim"
	"regionmon/internal/workload"
)

// Options parameterize all experiments.
type Options struct {
	// Scale multiplies workload length (1 = full experiment scale).
	Scale float64
	// Periods are the Figure 3/4/13/14 sampling periods
	// (paper: 45K, 450K, 900K cycles/interrupt).
	Periods []uint64
	// RTOPeriods are the Figure 17 sampling periods
	// (paper: 100K, 800K, 1.5M cycles/interrupt).
	RTOPeriods []uint64
	// RTOScale is the run-length multiplier for the RTO comparisons
	// (Figure 17). Controller warm-up costs a fixed ~10 intervals per
	// stable phase; RTO runs must be long enough at the largest sampling
	// period that the warm-up difference between controllers washes out
	// of the speedup.
	RTOScale float64
	// BufferSize is the sample-buffer size (paper: 2032; default here 512
	// to keep interval counts practical at full period values).
	BufferSize int
	// JitterFrac is the sampling-period jitter (see hpm.Config).
	JitterFrac float64
	// ChartPeriod is the sampling period for the region charts
	// (Figures 2, 5, 9, 10, 11).
	ChartPeriod uint64
}

// DefaultOptions returns full-scale experiment options. Scale 4 (~40G
// base cycles per run) keeps even the largest sampling period at 80+
// intervals per run, so detector warm-up does not distort the
// stable-time fractions of Figures 4 and 14.
func DefaultOptions() Options {
	return Options{
		Scale:       4,
		Periods:     []uint64{45_000, 450_000, 900_000},
		RTOPeriods:  []uint64{100_000, 800_000, 1_500_000},
		RTOScale:    12,
		BufferSize:  512,
		JitterFrac:  0.1,
		ChartPeriod: 45_000,
	}
}

// TestOptions returns options small enough for unit tests: the sampling
// periods are 1/100 of the paper's, the workloads' phase-structure time
// constants shrink by the same ratio (see timeScale), and Scale 1 keeps
// per-run interval counts identical to a Scale-1 full-period run — so the
// dynamics match full scale at 1/100 of the simulation cost.
func TestOptions() Options {
	return Options{
		Scale:       1,
		Periods:     []uint64{450, 4_500, 9_000},
		RTOPeriods:  []uint64{1_000, 8_000, 15_000},
		RTOScale:    3,
		BufferSize:  512,
		JitterFrac:  0.1,
		ChartPeriod: 450,
	}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.Scale <= 0 {
		return fmt.Errorf("experiments: scale %v must be positive", o.Scale)
	}
	if len(o.Periods) == 0 || len(o.RTOPeriods) == 0 {
		return fmt.Errorf("experiments: periods must be non-empty")
	}
	for _, p := range append(append([]uint64{}, o.Periods...), o.RTOPeriods...) {
		if p == 0 {
			return fmt.Errorf("experiments: zero sampling period")
		}
	}
	if o.RTOScale <= 0 {
		return fmt.Errorf("experiments: RTO scale %v must be positive", o.RTOScale)
	}
	if o.BufferSize < 8 {
		return fmt.Errorf("experiments: buffer size %d too small", o.BufferSize)
	}
	if o.ChartPeriod == 0 {
		return fmt.Errorf("experiments: zero chart period")
	}
	return nil
}

// timeScale is the ratio between the sweep's smallest sampling period and
// the paper's 45K-cycle reference; workload phase-structure constants are
// stretched by it so reduced-period test runs keep full-scale dynamics.
func (o *Options) timeScale() float64 {
	return float64(o.Periods[0]) / 45_000
}

// loadBenchmark builds a workload with the options' work and time scales.
func (o *Options) loadBenchmark(name string) (*workload.Benchmark, error) {
	return workload.ByNameScales(name, o.Scale*o.timeScale(), o.timeScale())
}

// loadRTOBenchmark is loadBenchmark at the longer Figure 17 run length.
func (o *Options) loadRTOBenchmark(name string) (*workload.Benchmark, error) {
	return workload.ByNameScales(name, o.RTOScale*o.timeScale(), o.timeScale())
}

// hpmConfig builds the monitor config for a period.
func (o *Options) hpmConfig(period uint64) hpm.Config {
	return hpm.Config{Period: period, BufferSize: o.BufferSize, JitterFrac: o.JitterFrac}
}

// runStream executes bench with sampling at period, delivering every
// overflow (including the final partial one) to handler.
func (o *Options) runStream(bench *workload.Benchmark, period uint64, handler func(*hpm.Overflow)) (sim.Result, error) {
	mon, err := hpm.New(o.hpmConfig(period), handler)
	if err != nil {
		return sim.Result{}, err
	}
	ex, err := sim.NewExecutor(bench.Prog, bench.Sched, mon)
	if err != nil {
		return sim.Result{}, err
	}
	return ex.Run(), nil
}

// Table is a rendered experiment result.
type Table struct {
	// Title names the figure, e.g. "Figure 3: ...".
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold pre-formatted cells.
	Rows [][]string
	// Notes are free-form footnotes (paper-vs-measured commentary).
	Notes []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes-free cells are
// assumed; commas in cells are replaced by semicolons).
func (t *Table) CSV() string {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(clean(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(clean(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func u64(v uint64) string  { return fmt.Sprintf("%d", v) }
func periodLabel(p uint64) string {
	switch {
	case p >= 1_000_000 && p%100_000 == 0:
		return fmt.Sprintf("%.1fM", float64(p)/1e6)
	case p >= 1_000:
		return fmt.Sprintf("%dK", p/1_000)
	default:
		return fmt.Sprintf("%d", p)
	}
}

// JSON renders the table as a JSON object with title, columns, rows and
// notes — the machine-readable form for external plotting tools.
func (t *Table) JSON() (string, error) {
	payload := struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.Title, t.Columns, t.Rows, t.Notes}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
