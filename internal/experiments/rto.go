package experiments

import (
	"fmt"

	"regionmon/internal/adore"
)

// Fig17Names returns the paper's Figure 17 benchmark subset.
func Fig17Names() []string {
	return []string{"181.mcf", "172.mgrid", "254.gap", "191.fma3d"}
}

// SpeedupCell is one (benchmark, period) RTO comparison.
type SpeedupCell struct {
	Bench  string
	Period uint64
	// Orig and LPD are the two controllers' results.
	Orig, LPD adore.RunResult
	// Speedup is RTO-LPD over RTO-ORIG (Figure 17's bars).
	Speedup float64
}

// SpeedupResult is the Figure 17 measurement set.
type SpeedupResult struct {
	Opts  Options
	Cells []SpeedupCell
}

// RunSpeedup measures Figure 17: speedup of RTO-LPD over RTO-ORIG (the
// centroid-based system that unpatches traces when the phase is unstable)
// for the selected benchmarks at each RTO sampling period.
func RunSpeedup(opts Options, names []string) (*SpeedupResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &SpeedupResult{Opts: opts}
	for _, name := range names {
		for _, period := range opts.RTOPeriods {
			cell, err := runSpeedupCell(opts, name, period)
			if err != nil {
				return nil, fmt.Errorf("speedup %s @ %d: %w", name, period, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func runSpeedupCell(opts Options, name string, period uint64) (SpeedupCell, error) {
	runPolicy := func(policy adore.Policy) (adore.RunResult, error) {
		// Fresh benchmark per run: executors own their schedule state.
		bench, err := opts.loadRTOBenchmark(name)
		if err != nil {
			return adore.RunResult{}, err
		}
		cfg := adore.DefaultConfig(policy)
		cfg.Model = adore.ConstantModel(bench.PrefetchSave)
		cfg.MaxEvents = 1 // keep memory flat; counts are tracked separately
		// Patching overhead scales with the sampling-period scale so
		// reduced-scale tests keep the full-scale cost ratio.
		cfg.PatchCycles = uint64(float64(cfg.PatchCycles) * opts.timeScale())
		if cfg.PatchCycles == 0 {
			cfg.PatchCycles = 1
		}
		rto, err := adore.New(bench.Prog, bench.Sched, opts.hpmConfig(period), cfg)
		if err != nil {
			return adore.RunResult{}, err
		}
		return rto.Run(), nil
	}
	orig, err := runPolicy(adore.PolicyGPD)
	if err != nil {
		return SpeedupCell{}, err
	}
	lpd, err := runPolicy(adore.PolicyLPD)
	if err != nil {
		return SpeedupCell{}, err
	}
	return SpeedupCell{
		Bench:   name,
		Period:  period,
		Orig:    orig,
		LPD:     lpd,
		Speedup: lpd.Sim.Speedup(orig.Sim),
	}, nil
}

// Table renders Figure 17.
func (s *SpeedupResult) Table() *Table {
	t := &Table{
		Title:   "Figure 17: speedup of RTO-LPD over RTO-ORIG (unpatching centroid scheme)",
		Columns: []string{"benchmark"},
		Notes: []string{
			"paper shape: mcf's LPD advantage grows with the sampling period (23.84% at 1.5M); gap's shrinks (9.5% at 100K to 4.9% at 1.5M); mgrid is flat near zero",
		},
	}
	for _, p := range s.Opts.RTOPeriods {
		t.Columns = append(t.Columns, periodLabel(p))
	}
	byBench := map[string][]string{}
	var order []string
	for _, c := range s.Cells {
		if _, ok := byBench[c.Bench]; !ok {
			order = append(order, c.Bench)
			byBench[c.Bench] = []string{c.Bench}
		}
		byBench[c.Bench] = append(byBench[c.Bench], fmt.Sprintf("%+.1f%%", c.Speedup*100))
	}
	for _, b := range order {
		t.Rows = append(t.Rows, byBench[b])
	}
	return t
}

// DetailTable renders the controller internals behind Figure 17 (stable
// fractions, patch churn) — useful when checking the mechanism, not just
// the headline.
func (s *SpeedupResult) DetailTable() *Table {
	t := &Table{
		Title: "Figure 17 detail: controller behaviour per run",
		Columns: []string{"benchmark", "period", "orig stable", "lpd stable",
			"orig patches", "orig unpatch", "lpd patches", "lpd unpatch", "speedup"},
	}
	for _, c := range s.Cells {
		t.Rows = append(t.Rows, []string{
			c.Bench, periodLabel(c.Period),
			pct(c.Orig.StableFraction), pct(c.LPD.StableFraction),
			itoa(c.Orig.Patches), itoa(c.Orig.Unpatches),
			itoa(c.LPD.Patches), itoa(c.LPD.Unpatches),
			fmt.Sprintf("%+.1f%%", c.Speedup*100),
		})
	}
	return t
}
