package experiments

import (
	"strings"
	"testing"
)

func TestOptionsValidation(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Scale = 0 },
		func(o *Options) { o.Periods = nil },
		func(o *Options) { o.Periods = []uint64{0} },
		func(o *Options) { o.RTOPeriods = nil },
		func(o *Options) { o.BufferSize = 2 },
		func(o *Options) { o.ChartPeriod = 0 },
	}
	for i, mut := range bad {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n1"},
	}
	s := tab.String()
	for _, want := range []string{"T\n", "a", "bee", "333", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bee\n") || !strings.Contains(csv, "333,4") {
		t.Errorf("CSV() = %q", csv)
	}
	// Commas in cells are sanitized.
	tab.Rows = [][]string{{"x,y", "z"}}
	if strings.Contains(tab.CSV(), "x,y") {
		t.Error("CSV did not sanitize embedded comma")
	}
}

func TestPeriodLabel(t *testing.T) {
	cases := map[uint64]string{
		45_000:    "45K",
		450_000:   "450K",
		1_500_000: "1.5M",
		450:       "450",
	}
	for p, want := range cases {
		if got := periodLabel(p); got != want {
			t.Errorf("periodLabel(%d) = %q; want %q", p, got, want)
		}
	}
}

// sweepNames is a small benchmark subset exercising every archetype.
var sweepNames = []string{"181.mcf", "187.facerec", "254.gap", "186.crafty", "188.ammp", "172.mgrid"}

func TestSweepAndDerivedTables(t *testing.T) {
	opts := TestOptions()
	sweep, err := RunSweep(opts, sweepNames)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if len(sweep.Cells) != len(sweepNames)*len(opts.Periods) {
		t.Fatalf("cells = %d; want %d", len(sweep.Cells), len(sweepNames)*len(opts.Periods))
	}
	for _, c := range sweep.Cells {
		if c.Intervals == 0 {
			t.Errorf("%s @ %d: no intervals", c.Bench, c.Period)
		}
	}

	// Shape assertions at reduced scale (ratios preserved by scaling):
	// mcf has more GPD phase changes at the smallest period than at the
	// largest.
	mcfSmall := sweep.Cell("181.mcf", opts.Periods[0])
	mcfLarge := sweep.Cell("181.mcf", opts.Periods[len(opts.Periods)-1])
	if mcfSmall == nil || mcfLarge == nil {
		t.Fatal("missing mcf cells")
	}
	if mcfSmall.GPDChanges < mcfLarge.GPDChanges {
		t.Errorf("mcf GPD changes: %d @ small vs %d @ large; want small >= large",
			mcfSmall.GPDChanges, mcfLarge.GPDChanges)
	}
	// facerec spends most time unstable at the smallest period.
	fr := sweep.Cell("187.facerec", opts.Periods[0])
	if fr.GPDStableFrac > 0.5 {
		t.Errorf("facerec stable fraction = %.2f; want < 0.5", fr.GPDStableFrac)
	}
	// mgrid (steady FP code) is mostly stable at every period. The bound
	// loosens at the largest period, where detector warm-up (history +
	// timer) eats a fixed share of the few intervals.
	for _, p := range opts.Periods {
		if c := sweep.Cell("172.mgrid", p); c.GPDStableFrac < 0.4 {
			t.Errorf("mgrid stable fraction @ %d = %.2f; want >= 0.4", p, c.GPDStableFrac)
		}
	}
	// gap's UCR median exceeds the 30% threshold; mgrid's does not.
	if c := sweep.Cell("254.gap", opts.Periods[1]); c.UCRMedian <= 0.30 {
		t.Errorf("gap UCR median = %.2f; want > 0.30", c.UCRMedian)
	}
	if c := sweep.Cell("172.mgrid", opts.Periods[1]); c.UCRMedian > 0.30 {
		t.Errorf("mgrid UCR median = %.2f; want <= 0.30", c.UCRMedian)
	}
	// mcf's regions are locally stable despite the global drift — the
	// paper's Figure 10/14 claim.
	for _, r := range mcfSmall.Regions[:minInt(3, len(mcfSmall.Regions))] {
		if r.StableFrac < 0.8 {
			t.Errorf("mcf region %s locally stable only %.2f of intervals; want >= 0.8", r.Name, r.StableFrac)
		}
	}

	// All derived tables render with a row per benchmark / region.
	for _, tab := range []*Table{
		sweep.Fig3Table(), sweep.Fig4Table(), sweep.Fig6Table(), sweep.Fig7Table(),
		sweep.Fig13Table(), sweep.Fig14Table(),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.Title)
		}
		if tab.String() == "" || tab.CSV() == "" {
			t.Errorf("%s: empty rendering", tab.Title)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestChartsMCF(t *testing.T) {
	opts := TestOptions()
	tab, chart, err := Fig9(opts)
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(tab.Rows) == 0 || len(chart.Points) == 0 {
		t.Fatal("empty mcf chart")
	}
	if len(chart.Regions) < 2 {
		t.Fatalf("mcf formed %d regions; want >= 2", len(chart.Regions))
	}
	// Figure 10 property: the hottest regions stay highly correlated —
	// median r near 1 despite global drift.
	tab10, err := Fig10(opts, chart)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(tab10.Rows) == 0 {
		t.Fatal("empty Fig10 table")
	}
	for _, rn := range chart.topRegions(2) {
		var rs []float64
		for _, pt := range chart.Points {
			if r, ok := pt.R[rn]; ok {
				rs = append(rs, r)
			}
		}
		high := 0
		for _, r := range rs {
			if r >= 0.8 {
				high++
			}
		}
		if frac := float64(high) / float64(len(rs)); frac < 0.6 {
			t.Errorf("mcf region %s: only %.0f%% of intervals with r >= 0.8", rn, frac*100)
		}
	}
}

func TestFig2AndFig5(t *testing.T) {
	opts := TestOptions()
	tab2, err := Fig2(opts)
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	tab5, err := Fig5(opts)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	for _, tab := range []*Table{tab2, tab5} {
		if len(tab.Rows) < 10 {
			t.Errorf("%s: only %d rows", tab.Title, len(tab.Rows))
		}
	}
	// facerec chart must show unstable intervals dominating.
	unstable := 0
	for _, row := range tab5.Rows {
		if row[len(row)-1] == "UNSTABLE" {
			unstable++
		}
	}
	if unstable < len(tab5.Rows)/2 {
		t.Errorf("facerec chart: %d/%d unstable rows; want majority", unstable, len(tab5.Rows))
	}
}

func TestFig11GapRegions(t *testing.T) {
	tab, err := Fig11(TestOptions())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	if len(tab.Columns) < 3 {
		t.Fatalf("Fig11 columns = %v; want interval + 2 regions", tab.Columns)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Fig11 table")
	}
}

func TestFig8(t *testing.T) {
	tab := Fig8()
	if len(tab.Rows) != 2 {
		t.Fatalf("Fig8 rows = %d; want 2", len(tab.Rows))
	}
	// Row 0: shifted bottleneck → phase change; row 1: scaled → none.
	if tab.Rows[0][3] != "YES" || tab.Rows[1][3] != "no" {
		t.Errorf("Fig8 verdicts wrong: %v", tab.Rows)
	}
}

func TestCostAndTreeComparison(t *testing.T) {
	opts := TestOptions()
	names := []string{"172.mgrid", "254.gap"}
	cost, err := RunCost(opts, names)
	if err != nil {
		t.Fatalf("RunCost: %v", err)
	}
	if len(cost.Rows) != 2 {
		t.Fatalf("cost rows = %d", len(cost.Rows))
	}
	for _, r := range cost.Rows {
		if r.Factor < 1 {
			t.Errorf("%s: LPD %.1fx GPD; want >= 1 (LPD is costlier)", r.Bench, r.Factor)
		}
		if r.GPDTime <= 0 || r.LPDTime <= 0 {
			t.Errorf("%s: zero detector times", r.Bench)
		}
	}
	if cost.Table().String() == "" {
		t.Error("empty cost table")
	}

	tree, err := RunTreeComparison(opts, names)
	if err != nil {
		t.Fatalf("RunTreeComparison: %v", err)
	}
	for _, r := range tree.Rows {
		if r.Regions == 0 || r.Samples == 0 {
			t.Errorf("%s: empty comparison", r.Bench)
		}
		if r.Factor <= 0 {
			t.Errorf("%s: factor %v", r.Bench, r.Factor)
		}
	}
	if tree.Table().String() == "" {
		t.Error("empty tree table")
	}
}

func TestSpeedupMCF(t *testing.T) {
	opts := TestOptions()
	res, err := RunSpeedup(opts, []string{"181.mcf"})
	if err != nil {
		t.Fatalf("RunSpeedup: %v", err)
	}
	if len(res.Cells) != len(opts.RTOPeriods) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Paper shape: LPD wins on mcf, and the win grows with the period.
	first := res.Cells[0].Speedup
	last := res.Cells[len(res.Cells)-1].Speedup
	if last <= 0 {
		t.Errorf("mcf speedup at largest period = %.3f; want positive", last)
	}
	if last < first {
		t.Errorf("mcf speedup should grow with period: %.3f -> %.3f", first, last)
	}
	if res.Table().String() == "" || res.DetailTable().String() == "" {
		t.Error("empty speedup tables")
	}
}

func TestDetectorPanel(t *testing.T) {
	opts := TestOptions()
	panel, err := RunDetectorPanel(opts, []string{"187.facerec", "172.mgrid"})
	if err != nil {
		t.Fatalf("RunDetectorPanel: %v", err)
	}
	if len(panel.Rows) != 2 {
		t.Fatalf("rows = %d", len(panel.Rows))
	}
	byName := map[string]PanelRow{}
	for _, r := range panel.Rows {
		byName[r.Bench] = r
	}
	fr := byName["187.facerec"]
	// All three global schemes see the alternation; region monitoring
	// stays locally stable — the panel's whole point.
	if fr.CentroidChanges == 0 || fr.BBVChanges == 0 || fr.WSChanges == 0 {
		t.Errorf("facerec: global schemes missed the alternation: %+v", fr)
	}
	if fr.LPDStable < 0.8 {
		t.Errorf("facerec: LPD weighted stable %.2f; want >= 0.8", fr.LPDStable)
	}
	if fr.LPDStable <= fr.BBVStable {
		t.Errorf("facerec: LPD stable (%.2f) should beat BBV (%.2f)", fr.LPDStable, fr.BBVStable)
	}
	mg := byName["172.mgrid"]
	// Steady workload: everyone is calm.
	if mg.CentroidChanges != 0 || mg.BBVChanges != 0 || mg.WSChanges != 0 {
		t.Errorf("mgrid: spurious changes: %+v", mg)
	}
	if panel.Table().String() == "" {
		t.Error("empty panel table")
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}},
		Notes:   []string{"n"},
	}
	s, err := tab.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, want := range []string{`"title": "T"`, `"x,y"`, `"notes"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}
