package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// The parallel runners exploit the sweep grids' structure: every
// (benchmark, period) cell is one fully independent simulation stack —
// its own workload, executor, sampling monitor and detector pipeline,
// each seeded deterministically — so cells can run on as many cores as
// are available and still produce byte-identical results to the
// sequential runners. Determinism comes from two properties:
//
//  1. no shared mutable state: each cell builds everything it touches
//     (the only cross-cell sharing is read-only package data and, where a
//     caller passes one, an immutable *isa.Program — see isa.NewProgram);
//  2. ordered collection: results land in a preallocated slice at the
//     cell's grid index, so the output order never depends on worker
//     scheduling.

// DefaultWorkers resolves a worker-count argument: values < 1 select
// runtime.NumCPU().
func DefaultWorkers(workers int) int {
	if workers < 1 {
		return runtime.NumCPU()
	}
	return workers
}

// runCells runs fn(0..n-1) on a pool of workers and returns the first
// error (by cell index, matching what the sequential loop would have
// reported). fn must write its result to its own index of a preallocated
// slice; runCells provides no result channel by design.
func runCells(workers, n int, fn func(i int) error) error {
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}

// RunSweepParallel is RunSweep distributed over a worker pool: one
// worker-owned simulation per (benchmark, period) cell, results collected
// in grid order. workers < 1 selects runtime.NumCPU(); the result is
// identical to RunSweep's regardless of worker count.
func RunSweepParallel(opts Options, names []string, workers int) (*SweepResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	type key struct {
		name   string
		period uint64
	}
	grid := make([]key, 0, len(names)*len(opts.Periods))
	for _, name := range names {
		for _, period := range opts.Periods {
			grid = append(grid, key{name, period})
		}
	}
	res := &SweepResult{Opts: opts, Cells: make([]SweepCell, len(grid))}
	err := runCells(workers, len(grid), func(i int) error {
		cell, err := runSweepCell(opts, grid[i].name, grid[i].period)
		if err != nil {
			return fmt.Errorf("sweep %s @ %d: %w", grid[i].name, grid[i].period, err)
		}
		res.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunSpeedupParallel is RunSpeedup distributed over a worker pool, with
// the same determinism guarantee as RunSweepParallel.
func RunSpeedupParallel(opts Options, names []string, workers int) (*SpeedupResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	type key struct {
		name   string
		period uint64
	}
	grid := make([]key, 0, len(names)*len(opts.RTOPeriods))
	for _, name := range names {
		for _, period := range opts.RTOPeriods {
			grid = append(grid, key{name, period})
		}
	}
	res := &SpeedupResult{Opts: opts, Cells: make([]SpeedupCell, len(grid))}
	err := runCells(workers, len(grid), func(i int) error {
		cell, err := runSpeedupCell(opts, grid[i].name, grid[i].period)
		if err != nil {
			return fmt.Errorf("speedup %s @ %d: %w", grid[i].name, grid[i].period, err)
		}
		res.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
