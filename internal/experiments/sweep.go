package experiments

import (
	"fmt"
	"sort"

	"regionmon/internal/gpd"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
	"regionmon/internal/stats"
)

// RegionSummary is one monitored region's whole-run accounting within a
// sweep cell.
type RegionSummary struct {
	// Name is the region's span name (e.g. "146f0-14770").
	Name string
	// Samples is the total sample count attributed to the region.
	Samples int64
	// PhaseChanges is the region's local stable→unstable count
	// (Figure 13's bars).
	PhaseChanges int
	// StableFrac is the fraction of the region's observed intervals spent
	// locally stable (Figure 14's bars).
	StableFrac float64
}

// SweepCell is one (benchmark, period) measurement carrying everything
// Figures 3, 4, 6, 7, 13 and 14 need.
type SweepCell struct {
	// Bench is the benchmark name.
	Bench string
	// Period is the sampling period in cycles/interrupt.
	Period uint64
	// Intervals is the number of overflow deliveries.
	Intervals int
	// GPDChanges is the global detector's phase-change count (Figure 3).
	GPDChanges int
	// GPDStableFrac is the global detector's stable-time share (Figure 4).
	GPDStableFrac float64
	// UCRMedian is the median per-interval unmonitored-sample fraction
	// (Figure 6).
	UCRMedian float64
	// UCRHistory is the per-interval UCR series (Figure 7).
	UCRHistory []float64
	// Regions summarizes every region the monitor formed, hottest first.
	Regions []RegionSummary
}

// SweepResult is a full (benchmarks × periods) sweep.
type SweepResult struct {
	Opts  Options
	Cells []SweepCell
}

// Filter returns a view of the sweep restricted to the named benchmarks
// (preserving period order); cells are shared, not copied.
func (s *SweepResult) Filter(names ...string) *SweepResult {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := &SweepResult{Opts: s.Opts}
	for i := range s.Cells {
		if want[s.Cells[i].Bench] {
			out.Cells = append(out.Cells, s.Cells[i])
		}
	}
	return out
}

// Cell returns the sweep cell for (bench, period), or nil.
func (s *SweepResult) Cell(bench string, period uint64) *SweepCell {
	for i := range s.Cells {
		if s.Cells[i].Bench == bench && s.Cells[i].Period == period {
			return &s.Cells[i]
		}
	}
	return nil
}

// RunSweep runs every named benchmark at every Options period, feeding the
// sample stream to both a centroid GPD detector and a region monitor with
// per-region LPD. One simulation per cell serves six figures.
func RunSweep(opts Options, names []string) (*SweepResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{Opts: opts}
	for _, name := range names {
		for _, period := range opts.Periods {
			cell, err := runSweepCell(opts, name, period)
			if err != nil {
				return nil, fmt.Errorf("sweep %s @ %d: %w", name, period, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// runSweepCell simulates one independent (benchmark, period) stack:
// fresh workload, detectors and pipeline per call, so cells can run
// concurrently (the benchmark program is built privately here; even the
// shared-program case would be safe, see isa.Program).
func runSweepCell(opts Options, name string, period uint64) (SweepCell, error) {
	bench, err := opts.loadBenchmark(name)
	if err != nil {
		return SweepCell{}, err
	}
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		return SweepCell{}, err
	}
	// Figure 7 plots the complete per-interval UCR series, so the sweep
	// opts out of the monitor's bounded-history default.
	rcfg := region.DefaultConfig()
	rcfg.UCRHistoryCap = region.RetainAllHistory
	rmon, err := region.NewMonitor(bench.Prog, rcfg)
	if err != nil {
		return SweepCell{}, err
	}
	pipe := pipeline.New()
	pipe.MustRegister(pipeline.NewGPD(gdet))
	pipe.MustRegister(pipeline.NewRegionMonitor(rmon))
	if _, err := opts.runStream(bench, period, pipe.Handler()); err != nil {
		return SweepCell{}, err
	}
	cell := SweepCell{
		Bench:         name,
		Period:        period,
		Intervals:     pipe.Intervals(),
		GPDChanges:    gdet.PhaseChanges(),
		GPDStableFrac: gdet.StableFraction(),
		UCRMedian:     rmon.UCRMedian(),
		UCRHistory:    rmon.UCRHistory(),
	}
	for _, r := range rmon.Regions() {
		cell.Regions = append(cell.Regions, RegionSummary{
			Name:         r.Name(),
			Samples:      r.TotalSamples(),
			PhaseChanges: r.Detector.PhaseChanges(),
			StableFrac:   r.Detector.StableFraction(),
		})
	}
	sort.Slice(cell.Regions, func(i, j int) bool {
		if cell.Regions[i].Samples != cell.Regions[j].Samples {
			return cell.Regions[i].Samples > cell.Regions[j].Samples
		}
		return cell.Regions[i].Name < cell.Regions[j].Name
	})
	return cell, nil
}

// Fig3Table renders Figure 3: number of GPD phase changes per benchmark at
// each sampling period.
func (s *SweepResult) Fig3Table() *Table {
	return s.gpdTable(
		"Figure 3: GPD phase changes per sampling period (centroid scheme)",
		func(c *SweepCell) string { return itoa(c.GPDChanges) },
		"paper shape: counts shrink as the sampling period grows; mcf/facerec/gap dominate at 45K",
	)
}

// Fig4Table renders Figure 4: percentage of time in stable phase (GPD).
func (s *SweepResult) Fig4Table() *Table {
	return s.gpdTable(
		"Figure 4: time in stable phase per sampling period (centroid scheme)",
		func(c *SweepCell) string { return pct(c.GPDStableFrac) },
		"paper shape: facerec spends most time unstable; stable share is not correlated with change counts",
	)
}

func (s *SweepResult) gpdTable(title string, cellFn func(*SweepCell) string, note string) *Table {
	t := &Table{Title: title, Notes: []string{note}}
	t.Columns = []string{"benchmark"}
	for _, p := range s.Opts.Periods {
		t.Columns = append(t.Columns, "#PC "+periodLabel(p))
	}
	for _, name := range s.benchNames() {
		row := []string{name}
		for _, p := range s.Opts.Periods {
			if c := s.Cell(name, p); c != nil {
				row = append(row, cellFn(c))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func (s *SweepResult) benchNames() []string {
	seen := map[string]bool{}
	var names []string
	for i := range s.Cells {
		if !seen[s.Cells[i].Bench] {
			seen[s.Cells[i].Bench] = true
			names = append(names, s.Cells[i].Bench)
		}
	}
	return names
}

// Fig6Table renders Figure 6: median unmonitored-sample percentage per
// benchmark against the 30% formation threshold, at the middle period.
func (s *SweepResult) Fig6Table() *Table {
	period := s.Opts.Periods[len(s.Opts.Periods)/2]
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: median %%UCR per benchmark (period %s) vs 30%% threshold", periodLabel(period)),
		Columns: []string{"benchmark", "median %UCR", "> threshold"},
		Notes: []string{
			"paper shape: most programs sit below 30%; gap and crafty stay above — code their region builder cannot cover",
		},
	}
	for _, name := range s.benchNames() {
		c := s.Cell(name, period)
		if c == nil {
			continue
		}
		over := ""
		if c.UCRMedian > 0.30 {
			over = "YES"
		}
		t.Rows = append(t.Rows, []string{name, pct(c.UCRMedian), over})
	}
	return t
}

// Fig7Table renders Figure 7: per-interval %UCR timelines for 254.gap and
// 186.crafty (first period), decimated to at most 40 points.
func (s *SweepResult) Fig7Table() *Table {
	period := s.Opts.Periods[0]
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: %%UCR over time for 254.gap and 186.crafty (period %s)", periodLabel(period)),
		Columns: []string{"interval", "254.gap", "186.crafty"},
		Notes: []string{
			"paper shape: both stay high over the whole run despite repeated region-formation triggers",
		},
	}
	gapC := s.Cell("254.gap", period)
	craftyC := s.Cell("186.crafty", period)
	if gapC == nil || craftyC == nil {
		t.Notes = append(t.Notes, "gap/crafty not in sweep: run with the full suite")
		return t
	}
	n := len(gapC.UCRHistory)
	if len(craftyC.UCRHistory) < n {
		n = len(craftyC.UCRHistory)
	}
	step := 1
	if n > 40 {
		step = n / 40
	}
	for i := 0; i < n; i += step {
		t.Rows = append(t.Rows, []string{itoa(i), pct(gapC.UCRHistory[i]), pct(craftyC.UCRHistory[i])})
	}
	// Whole-run medians as the summary row.
	t.Rows = append(t.Rows, []string{"median",
		pct(stats.Median(gapC.UCRHistory)), pct(stats.Median(craftyC.UCRHistory))})
	return t
}

// Fig13Names returns the paper's Figure 13/14 benchmark subset.
func Fig13Names() []string {
	return []string{
		"181.mcf", "187.facerec", "254.gap", "164.gzip",
		"178.galgel", "189.lucas", "191.fma3d", "188.ammp",
	}
}

// fig13MaxRegions caps per-benchmark region rows, as the paper plots only
// the regions contributing significantly to execution.
const fig13MaxRegions = 5

// Fig13Table renders Figure 13: per-region LPD phase changes for the
// selected benchmarks across sampling periods.
func (s *SweepResult) Fig13Table() *Table {
	return s.lpdTable(
		"Figure 13: LPD phase changes per region per sampling period",
		func(r *RegionSummary) string { return itoa(r.PhaseChanges) },
		"paper shape: most regions see 0-13 changes at every period; gap's short-lived flaky region and ammp's huge region are the outliers at 45K",
	)
}

// Fig14Table renders Figure 14: per-region time in locally stable phase.
func (s *SweepResult) Fig14Table() *Table {
	return s.lpdTable(
		"Figure 14: time in locally stable phase per region per sampling period",
		func(r *RegionSummary) string { return pct(r.StableFrac) },
		"paper shape: stable share is high for most regions at all periods — LPD is insensitive to the sampling period",
	)
}

func (s *SweepResult) lpdTable(title string, cellFn func(*RegionSummary) string, note string) *Table {
	t := &Table{Title: title, Notes: []string{note}}
	t.Columns = []string{"benchmark", "region"}
	for _, p := range s.Opts.Periods {
		t.Columns = append(t.Columns, "#PC "+periodLabel(p))
	}
	for _, name := range s.benchNames() {
		// Use the first period's hottest regions as the row set so rows
		// line up across periods (regions are identified by span name).
		base := s.Cell(name, s.Opts.Periods[0])
		if base == nil {
			continue
		}
		nRegions := len(base.Regions)
		if nRegions > fig13MaxRegions {
			nRegions = fig13MaxRegions
		}
		for ri := 0; ri < nRegions; ri++ {
			rname := base.Regions[ri].Name
			row := []string{name, fmt.Sprintf("r%d %s", ri+1, rname)}
			for _, p := range s.Opts.Periods {
				c := s.Cell(name, p)
				cellStr := "-"
				if c != nil {
					for i := range c.Regions {
						if c.Regions[i].Name == rname {
							cellStr = cellFn(&c.Regions[i])
							break
						}
					}
				}
				row = append(row, cellStr)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}
