package experiments

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestRunCells(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, 10)
		if err := runCells(workers, len(got), func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
	// First error by cell index wins, matching the sequential loop.
	err := runCells(4, 8, func(i int) error {
		if i >= 2 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 2 failed" {
		t.Errorf("err = %v; want cell 2 failed", err)
	}
}

// TestParallelSweepDeterministic asserts the acceptance contract: the
// parallel runner's result is identical to the sequential runner's,
// regardless of worker count.
func TestParallelSweepDeterministic(t *testing.T) {
	opts := TestOptions()
	names := []string{"181.mcf", "164.gzip"}
	seq, err := RunSweep(opts, names)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := RunSweepParallel(opts, names, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Cells, par.Cells) {
			t.Fatalf("workers=%d: parallel sweep diverged from sequential", workers)
		}
	}
}

// TestConcurrentSweeps drives two full sweeps concurrently, each on a
// multi-worker pool — at least four simulation stacks (executor, monitor,
// pipeline, detectors) live at once over the same read-only workload
// tables. Run under -race (the Makefile's test target does) this is the
// share-safety guard for the per-run state.
func TestConcurrentSweeps(t *testing.T) {
	opts := TestOptions()
	var wg sync.WaitGroup
	results := make([]*SweepResult, 2)
	errs := make([]error, 2)
	for k, names := range [][]string{
		{"181.mcf", "164.gzip"},
		{"254.gap", "187.facerec"},
	} {
		wg.Add(1)
		go func(k int, names []string) {
			defer wg.Done()
			results[k], errs[k] = RunSweepParallel(opts, names, 2)
		}(k, names)
	}
	wg.Wait()
	for k := range results {
		if errs[k] != nil {
			t.Fatalf("sweep %d: %v", k, errs[k])
		}
		if n := len(results[k].Cells); n != 2*len(opts.Periods) {
			t.Fatalf("sweep %d: %d cells", k, n)
		}
	}
}

// TestParallelSpeedupDeterministic covers the RTO grid the same way,
// on a reduced slice of it.
func TestParallelSpeedupDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("RTO comparison runs are slow")
	}
	opts := TestOptions()
	names := []string{"181.mcf"}
	seq, err := RunSpeedup(opts, names)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSpeedupParallel(opts, names, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != len(par.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		s, p := seq.Cells[i], par.Cells[i]
		if s.Bench != p.Bench || s.Period != p.Period || s.Speedup != p.Speedup ||
			s.Orig.Patches != p.Orig.Patches || s.LPD.Patches != p.LPD.Patches {
			t.Errorf("cell %d diverged: seq %+v par %+v", i, s, p)
		}
	}
}
