package experiments

import "regionmon/internal/stats"

// Fig8 reproduces Figure 8's demonstration of the Pearson metric's two key
// properties on a 10-instruction synthetic region: shifting the bottleneck
// by one instruction collapses r toward 0, while scaling all counts (same
// behaviour, more samples) keeps r near 1.
func Fig8() *Table {
	original := []int64{12, 9, 11, 350, 10, 8, 12, 11, 9, 10}
	shifted := append([]int64(nil), original...)
	shifted[3], shifted[4] = shifted[4], 350 // bottleneck moves by one instruction
	scaled := make([]int64, len(original))
	for i, v := range original {
		scaled[i] = v*3 + 2 // more samples, similar frequencies
	}

	rShift, _ := stats.Pearson(original, shifted)
	rScale, _ := stats.Pearson(original, scaled)

	t := &Table{
		Title:   "Figure 8: Pearson r when comparing distributions with the original",
		Columns: []string{"comparison", "r", "paper r", "phase change at r_t=0.8?"},
		Notes: []string{
			"a one-instruction bottleneck shift is detected; sampling-rate scaling is not — the two properties Sec. 3.2.1 requires",
		},
	}
	verdict := func(r float64) string {
		if r < 0.8 {
			return "YES"
		}
		return "no"
	}
	t.Rows = append(t.Rows,
		[]string{"shift bottleneck by 1 instr", f3(rShift), "-0.056", verdict(rShift)},
		[]string{"more samples, similar frequencies", f3(rScale), "0.998", verdict(rScale)},
	)
	return t
}
