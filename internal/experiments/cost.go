package experiments

import (
	"fmt"
	"time"

	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/interval"
	"regionmon/internal/region"
	"regionmon/internal/workload"
)

// SimClockHz converts simulated cycles to simulated seconds when relating
// real monitoring cost to program run time (Figure 15's overhead
// percentages). The paper's UltraSPARC IV+ ran near 1.5 GHz; the exact
// value only scales the overhead column, not the LPD/GPD factor.
const SimClockHz = 1.5e9

// CostRow is one benchmark's monitoring-cost measurement.
type CostRow struct {
	Bench string
	// Intervals is the number of replayed overflow deliveries.
	Intervals int
	// Regions is the region count at end of run.
	Regions int
	// GPDTime and LPDTime are total wall-clock detector times.
	GPDTime, LPDTime time.Duration
	// GPDOverhead and LPDOverhead relate detector time to simulated
	// program time (cycles / SimClockHz).
	GPDOverhead, LPDOverhead float64
	// Factor is LPDTime / GPDTime — "times slower than global PD".
	Factor float64
}

// CostResult is the Figure 15 measurement set.
type CostResult struct {
	Opts Options
	Rows []CostRow
}

// recordedStream is a benchmark's captured overflow stream.
type recordedStream struct {
	bench     *workload.Benchmark
	overflows []*hpm.Overflow
	cycles    uint64
}

// record captures every overflow of one run (deep copies).
func record(opts Options, name string, period uint64) (*recordedStream, error) {
	bench, err := opts.loadBenchmark(name)
	if err != nil {
		return nil, err
	}
	rs := &recordedStream{bench: bench}
	handler := func(ov *hpm.Overflow) {
		cp := &hpm.Overflow{
			Samples: append([]hpm.Sample(nil), ov.Samples...),
			Cycle:   ov.Cycle,
			Seq:     ov.Seq,
		}
		rs.overflows = append(rs.overflows, cp)
	}
	res, err := opts.runStream(bench, period, handler)
	if err != nil {
		return nil, err
	}
	rs.cycles = res.Cycles
	return rs, nil
}

// replayRepeats is how many times each replay is timed (minimum taken).
const replayRepeats = 3

// RunCost measures Figure 15: the wall-clock cost of centroid GPD versus
// full region monitoring (distribution + per-region LPD) on identical
// recorded sample streams.
func RunCost(opts Options, names []string) (*CostResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &CostResult{Opts: opts}
	period := opts.Periods[0]
	for _, name := range names {
		rs, err := record(opts, name, period)
		if err != nil {
			return nil, fmt.Errorf("cost %s: %w", name, err)
		}
		row := CostRow{Bench: name, Intervals: len(rs.overflows)}

		// GPD replay: centroid per overflow.
		row.GPDTime = minDuration(replayRepeats, func() error {
			gdet, err := gpd.New(gpd.DefaultConfig())
			if err != nil {
				return err
			}
			var pcs []uint64
			for _, ov := range rs.overflows {
				pcs = hpm.PCs(ov, pcs[:0])
				gdet.ObservePCs(pcs)
			}
			return nil
		}, &err)
		if err != nil {
			return nil, err
		}

		// LPD replay: full region monitoring.
		var regions int
		row.LPDTime = minDuration(replayRepeats, func() error {
			rmon, err := region.NewMonitor(rs.bench.Prog, region.DefaultConfig())
			if err != nil {
				return err
			}
			for _, ov := range rs.overflows {
				rmon.ProcessOverflow(ov)
			}
			regions = len(rmon.Regions())
			return nil
		}, &err)
		if err != nil {
			return nil, err
		}
		row.Regions = regions

		simSeconds := float64(rs.cycles) / SimClockHz
		if simSeconds > 0 {
			row.GPDOverhead = row.GPDTime.Seconds() / simSeconds
			row.LPDOverhead = row.LPDTime.Seconds() / simSeconds
		}
		if row.GPDTime > 0 {
			row.Factor = float64(row.LPDTime) / float64(row.GPDTime)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// minDuration times fn repeats times and returns the minimum, propagating
// the first error through errp. Figure 15 reports real monitoring cost, so
// this is an intentional wall-clock measurement; the duration feeds the
// cost column only, never the simulated results.
//
//lint:allow determinism -- Figure 15 measures real elapsed cost
func minDuration(repeats int, fn func() error, errp *error) time.Duration {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			*errp = err
			return 0
		}
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// Table renders Figure 15.
func (c *CostResult) Table() *Table {
	t := &Table{
		Title:   "Figure 15: cost of region monitoring (LPD) vs centroid global phase detection (GPD)",
		Columns: []string{"benchmark", "regions", "GPD %ovh", "LPD %ovh", "x slower"},
		Notes: []string{
			fmt.Sprintf("overhead relates detector wall time to simulated program time at %.1f GHz", SimClockHz/1e9),
			"paper shape: LPD is tens to hundreds of times costlier than GPD but usually < 1% of run time; region-heavy programs (gcc, crafty, parser, vortex, ammp, apsi) are the expensive ones",
		},
	}
	for _, r := range c.Rows {
		t.Rows = append(t.Rows, []string{
			r.Bench, itoa(r.Regions),
			fmt.Sprintf("%.4f%%", r.GPDOverhead*100),
			fmt.Sprintf("%.4f%%", r.LPDOverhead*100),
			fmt.Sprintf("%.0f", r.Factor),
		})
	}
	return t
}

// TreeRow is one benchmark's interval-tree-vs-list measurement.
type TreeRow struct {
	Bench string
	// Regions is the stabbed region count.
	Regions int
	// Samples is the number of stab queries timed.
	Samples int
	// ListTime and TreeTime are the pure distribution costs.
	ListTime, TreeTime time.Duration
	// Factor is TreeTime / ListTime (< 1 means the tree wins), the bar
	// Figure 16 plots.
	Factor float64
}

// TreeResult is the Figure 16 measurement set.
type TreeResult struct {
	Opts Options
	Rows []TreeRow
}

// RunTreeComparison measures Figure 16: the cost of distributing the
// recorded samples over the final region set with a linear list versus an
// interval tree.
func RunTreeComparison(opts Options, names []string) (*TreeResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &TreeResult{Opts: opts}
	period := opts.Periods[0]
	for _, name := range names {
		rs, err := record(opts, name, period)
		if err != nil {
			return nil, fmt.Errorf("tree %s: %w", name, err)
		}
		// Form the benchmark's region set by running the monitor once.
		rmon, err := region.NewMonitor(rs.bench.Prog, region.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for _, ov := range rs.overflows {
			rmon.ProcessOverflow(ov)
		}
		regions := rmon.Regions()

		list := interval.NewList()
		tree := interval.NewTree()
		for _, r := range regions {
			list.Insert(r.ID, uint64(r.Start), uint64(r.End))
			tree.Insert(r.ID, uint64(r.Start), uint64(r.End))
		}

		pcs := make([]uint64, 0, len(rs.overflows)*opts.BufferSize)
		for _, ov := range rs.overflows {
			for i := range ov.Samples {
				pcs = append(pcs, uint64(ov.Samples[i].PC))
			}
		}

		row := TreeRow{Bench: name, Regions: len(regions), Samples: len(pcs)}
		sink := 0
		visit := func(id int) { sink += id }
		row.ListTime = minDuration(replayRepeats, func() error {
			for _, pc := range pcs {
				list.Stab(pc, visit)
			}
			return nil
		}, &err)
		row.TreeTime = minDuration(replayRepeats, func() error {
			for _, pc := range pcs {
				tree.Stab(pc, visit)
			}
			return nil
		}, &err)
		if err != nil {
			return nil, err
		}
		_ = sink
		if row.ListTime > 0 {
			row.Factor = float64(row.TreeTime) / float64(row.ListTime)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Figure 16.
func (c *TreeResult) Table() *Table {
	t := &Table{
		Title:   "Figure 16: interval-tree sample distribution cost normalized to the list scheme",
		Columns: []string{"benchmark", "regions", "list", "tree", "factor"},
		Notes: []string{
			"factor < 1: tree wins; paper shape: big wins for region-heavy programs (gcc, crafty, fma3d, parser, bzip2), slightly worse for programs with a handful of regions",
		},
	}
	for _, r := range c.Rows {
		t.Rows = append(t.Rows, []string{
			r.Bench, itoa(r.Regions),
			r.ListTime.Round(time.Microsecond).String(),
			r.TreeTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.3f", r.Factor),
		})
	}
	return t
}
