package experiments

import (
	"fmt"

	"regionmon/internal/altdetect"
	"regionmon/internal/gpd"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
)

// PanelRow compares the four phase-detection schemes on one benchmark's
// identical sample stream: the paper's centroid GPD, the two related-work
// global schemes of Section 4 (Sherwood's basic-block vectors, Dhodapkar's
// working-set signatures) and the paper's region monitoring with LPD.
type PanelRow struct {
	Bench     string
	Intervals int
	// Centroid is the paper's GPD.
	CentroidChanges int
	CentroidStable  float64
	// BBV is the basic-block-vector global scheme.
	BBVChanges int
	BBVStable  float64
	// WS is the working-set-signature global scheme.
	WSChanges int
	WSStable  float64
	// LPD aggregates the region monitor: total per-region changes and the
	// sample-weighted locally-stable fraction.
	LPDChanges int
	LPDStable  float64
	Regions    int
}

// PanelResult is the detector-comparison extension experiment.
type PanelResult struct {
	Opts Options
	Rows []PanelRow
}

// DefaultPanelThresholds returns the comparison thresholds: BBV similarity
// 0.8 (Manhattan distance 0.4 on normalized vectors) and working-set
// relative distance 0.5, the usual values in the cited work.
func DefaultPanelThresholds() (bbv, ws float64) { return 0.8, 0.5 }

// RunDetectorPanel runs every named benchmark once at the smallest period
// with all four detector families registered on one pipeline — the fan-out
// the pipeline layer exists for: every scheme observes the identical
// sample stream, and the comparison falls out of the per-detector stats.
func RunDetectorPanel(opts Options, names []string) (*PanelResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bbvTh, wsTh := DefaultPanelThresholds()
	res := &PanelResult{Opts: opts}
	period := opts.Periods[0]
	for _, name := range names {
		bench, err := opts.loadBenchmark(name)
		if err != nil {
			return nil, err
		}
		gdet, err := gpd.New(gpd.DefaultConfig())
		if err != nil {
			return nil, err
		}
		bbv, err := altdetect.NewBBV(bench.Prog, bbvTh)
		if err != nil {
			return nil, err
		}
		ws, err := altdetect.NewWorkingSet(bench.Prog, wsTh)
		if err != nil {
			return nil, err
		}
		rmon, err := region.NewMonitor(bench.Prog, region.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pipe := pipeline.New()
		ra := pipeline.NewRegionMonitor(rmon)
		pipe.MustRegister(pipeline.NewGPD(gdet))
		pipe.MustRegister(pipeline.NewBBV(bbv))
		pipe.MustRegister(pipeline.NewWorkingSet(ws))
		pipe.MustRegister(ra)
		if _, err := opts.runStream(bench, period, pipe.Handler()); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PanelRow{
			Bench:           name,
			Intervals:       pipe.Intervals(),
			CentroidChanges: gdet.PhaseChanges(),
			CentroidStable:  gdet.StableFraction(),
			BBVChanges:      bbv.Changes(),
			BBVStable:       bbv.StableFraction(),
			WSChanges:       ws.Changes(),
			WSStable:        ws.StableFraction(),
			LPDChanges:      ra.PhaseChanges(),
			LPDStable:       ra.WeightedStableFraction(),
			Regions:         len(rmon.Regions()),
		})
	}
	return res, nil
}

// Table renders the extension comparison.
func (p *PanelResult) Table() *Table {
	period := periodLabel(p.Opts.Periods[0])
	t := &Table{
		Title: fmt.Sprintf("Extension E1: phase-detector panel at period %s — centroid GPD vs BBV vs working-set vs region monitoring (LPD)", period),
		Columns: []string{"benchmark", "intervals",
			"GPD chg", "GPD st%", "BBV chg", "BBV st%", "WS chg", "WS st%",
			"LPD chg", "LPD st%", "regions"},
		Notes: []string{
			"BBV (Sherwood et al. [4][5]) and working-set signatures (Dhodapkar & Smith [1][8]) are the Section 4 related-work schemes, run on the same streams",
			"all three global schemes flag the region-mix churn that per-region LPD correctly ignores (high LPD stable share)",
		},
	}
	for _, r := range p.Rows {
		t.Rows = append(t.Rows, []string{
			r.Bench, itoa(r.Intervals),
			itoa(r.CentroidChanges), pct(r.CentroidStable),
			itoa(r.BBVChanges), pct(r.BBVStable),
			itoa(r.WSChanges), pct(r.WSStable),
			itoa(r.LPDChanges), pct(r.LPDStable),
			itoa(r.Regions),
		})
	}
	return t
}
