package experiments

import (
	"fmt"
	"sort"

	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/region"
)

// ChartPoint is one interval of a region chart (Figures 2, 5, 9, 10, 11):
// per-region sample counts, per-region Pearson r, the GPD state and the
// UCR share.
type ChartPoint struct {
	// Interval is the overflow sequence number.
	Interval int
	// Cycle is the absolute cycle at the end of the interval.
	Cycle uint64
	// Samples maps region name to this interval's sample count.
	Samples map[string]int
	// R maps region name to this interval's Pearson r (as re-reported by
	// the detector for empty intervals).
	R map[string]float64
	// GPDStable is the global detector's post-interval stability.
	GPDStable bool
	// UCRFrac is the unmonitored share of the interval's samples.
	UCRFrac float64
}

// ChartResult is a whole region chart run.
type ChartResult struct {
	// Bench is the benchmark name.
	Bench string
	// Period is the sampling period.
	Period uint64
	// Points holds one entry per interval.
	Points []ChartPoint
	// Regions lists every region name seen, hottest first.
	Regions []string
}

// RunChart executes bench once at the chart period, recording the
// per-interval region chart with both detectors attached.
func RunChart(opts Options, name string) (*ChartResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bench, err := opts.loadBenchmark(name)
	if err != nil {
		return nil, err
	}
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rmon, err := region.NewMonitor(bench.Prog, region.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res := &ChartResult{Bench: name, Period: opts.ChartPeriod}
	totals := map[string]int64{}
	var pcs []uint64
	handler := func(ov *hpm.Overflow) {
		pcs = hpm.PCs(ov, pcs[:0])
		gv := gdet.ObservePCs(pcs)
		rep := rmon.ProcessOverflow(ov)
		pt := ChartPoint{
			Interval:  ov.Seq,
			Cycle:     ov.Cycle,
			Samples:   make(map[string]int, len(rep.Verdicts)),
			R:         make(map[string]float64, len(rep.Verdicts)),
			GPDStable: gv.State == gpd.Stable,
			UCRFrac:   rep.UCRFraction,
		}
		for _, rv := range rep.Verdicts {
			n := rv.Region.Name()
			pt.Samples[n] = rv.Samples
			pt.R[n] = rv.Verdict.R
			totals[n] += int64(rv.Samples)
		}
		res.Points = append(res.Points, pt)
	}
	if _, err := opts.runStream(bench, opts.ChartPeriod, handler); err != nil {
		return nil, err
	}
	for n := range totals {
		res.Regions = append(res.Regions, n)
	}
	sort.Slice(res.Regions, func(i, j int) bool {
		if totals[res.Regions[i]] != totals[res.Regions[j]] {
			return totals[res.Regions[i]] > totals[res.Regions[j]]
		}
		return res.Regions[i] < res.Regions[j]
	})
	return res, nil
}

// flakiestRegion returns the region (other than skip) with the most
// sub-threshold r observations over populated intervals, falling back to
// the second-hottest region.
func (c *ChartResult) flakiestRegion(skip string) string {
	dips := map[string]int{}
	for _, pt := range c.Points {
		for name, r := range pt.R {
			if name != skip && pt.Samples[name] > 0 && r < 0.8 {
				dips[name]++
			}
		}
	}
	best, bestDips := "", -1
	for _, name := range c.Regions {
		if name == skip {
			continue
		}
		if dips[name] > bestDips {
			best, bestDips = name, dips[name]
		}
	}
	if best == "" && len(c.Regions) > 1 {
		best = c.Regions[1]
	}
	return best
}

// topRegions returns the hottest k region names.
func (c *ChartResult) topRegions(k int) []string {
	if k > len(c.Regions) {
		k = len(c.Regions)
	}
	return c.Regions[:k]
}

// decimate returns row indices covering the run with at most maxRows
// points.
func decimate(n, maxRows int) []int {
	if n <= maxRows {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, maxRows)
	for i := 0; i < maxRows; i++ {
		idx = append(idx, i*n/maxRows)
	}
	return idx
}

// SamplesTable renders the stacked-area data of Figures 2 and 5: per-
// interval sample counts for the top regions plus the phase line.
func (c *ChartResult) SamplesTable(figure string, note string, k int) *Table {
	regions := c.topRegions(k)
	t := &Table{
		Title:   fmt.Sprintf("%s: region chart for %s (period %s)", figure, c.Bench, periodLabel(c.Period)),
		Columns: []string{"interval"},
		Notes:   []string{note},
	}
	t.Columns = append(t.Columns, regions...)
	t.Columns = append(t.Columns, "UCR%", "GPD")
	for _, i := range decimate(len(c.Points), 48) {
		pt := &c.Points[i]
		row := []string{itoa(pt.Interval)}
		for _, rn := range regions {
			row = append(row, itoa(pt.Samples[rn]))
		}
		phase := "UNSTABLE"
		if pt.GPDStable {
			phase = "stable"
		}
		row = append(row, pct(pt.UCRFrac), phase)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RTable renders the Pearson-r series of Figures 10 and 11 for the given
// region names (hottest k when names is nil).
func (c *ChartResult) RTable(figure string, note string, names []string, k int) *Table {
	if names == nil {
		names = c.topRegions(k)
	}
	t := &Table{
		Title:   fmt.Sprintf("%s: Pearson r per region for %s (period %s)", figure, c.Bench, periodLabel(c.Period)),
		Columns: []string{"interval"},
		Notes:   []string{note},
	}
	t.Columns = append(t.Columns, names...)
	for _, i := range decimate(len(c.Points), 48) {
		pt := &c.Points[i]
		row := []string{itoa(pt.Interval)}
		for _, rn := range names {
			if r, ok := pt.R[rn]; ok {
				row = append(row, f3(r))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig2 runs the 181.mcf region chart (Figure 2).
func Fig2(opts Options) (*Table, error) {
	c, err := RunChart(opts, "181.mcf")
	if err != nil {
		return nil, err
	}
	return c.SamplesTable("Figure 2",
		"paper shape: region mix shifts between eras and turns periodic near the end; GPD goes unstable on the shifts and stays unstable through the periodic tail", 6), nil
}

// Fig5 runs the 187.facerec region chart (Figure 5).
func Fig5(opts Options) (*Table, error) {
	c, err := RunChart(opts, "187.facerec")
	if err != nil {
		return nil, err
	}
	return c.SamplesTable("Figure 5",
		"paper shape: execution alternates between two region sets; the GPD phase line spikes on nearly every switch", 6), nil
}

// Fig9 runs the 181.mcf per-region sample series (Figure 9).
func Fig9(opts Options) (*Table, *ChartResult, error) {
	c, err := RunChart(opts, "181.mcf")
	if err != nil {
		return nil, nil, err
	}
	return c.SamplesTable("Figure 9",
		"paper shape: one region dominates early and diminishes; another grows late; behaviour turns periodic", 3), c, nil
}

// Fig10 renders the 181.mcf per-region Pearson-r series (Figure 10),
// reusing a Fig9 chart when provided.
func Fig10(opts Options, chart *ChartResult) (*Table, error) {
	if chart == nil {
		var err error
		chart, err = RunChart(opts, "181.mcf")
		if err != nil {
			return nil, err
		}
	}
	return chart.RTable("Figure 10",
		"paper shape: r stays near 1 for every region despite the global mix shifting — no local phase changes in mcf", nil, 3), nil
}

// Fig11 runs the 254.gap per-region Pearson-r series (Figure 11).
func Fig11(opts Options) (*Table, error) {
	c, err := RunChart(opts, "254.gap")
	if err != nil {
		return nil, err
	}
	// The paper contrasts a stable region with a flakier one: take the
	// hottest region and the one whose r dips below the threshold most
	// often while executing.
	names := []string{c.Regions[0], c.flakiestRegion(c.Regions[0])}
	return c.RTable("Figure 11",
		"paper shape: one region is stable (high r), the other dips repeatedly; r holds its last value while a region is not executing", names, 2), nil
}
