package batchwrap_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/batchwrap"
)

func TestBatchWrap(t *testing.T) {
	analysistest.Run(t, ".", batchwrap.Analyzer, "wrapb")
}
