// Package wrapb exercises the batchwrap analyzer: a conforming
// slice-of-one wrapper, every flagged drift mode, and the doc-level
// escape hatch.
package wrapb

type Item struct{ v int }

type Fleet struct {
	one [1]Item
}

// Push is the shape the analyzer protects: stash, one core call, return.
//
//lint:wraps PushBatch
func (f *Fleet) Push(it Item) int {
	f.one[0] = it
	return f.PushBatch(f.one[:])
}

// PushBatch is the batch core.
func (f *Fleet) PushBatch(items []Item) int { return len(items) }

func (f *Fleet) note() {}

// PushGhost names a core that does not exist.
//
//lint:wraps PushMany
func (f *Fleet) PushGhost(it Item) int { // want "PushGhost declares //lint:wraps PushMany but no such method or function exists"
	return 0
}

// PushLoop iterates instead of delegating the iteration.
//
//lint:wraps PushBatch
func (f *Fleet) PushLoop(items []Item) int {
	n := 0
	for _, it := range items { // want "PushLoop contains a loop"
		f.one[0] = it
		n += f.PushBatch(f.one[:])
	}
	return n
}

// PushTwice hits the core twice per item.
//
//lint:wraps PushBatch
func (f *Fleet) PushTwice(it Item) int {
	f.one[0] = it
	n := f.PushBatch(f.one[:])
	n += f.PushBatch(f.one[:]) // want "PushTwice calls its batch core PushBatch more than once"
	return n
}

// PushExtra does side work the batch path would never see.
//
//lint:wraps PushBatch
func (f *Fleet) PushExtra(it Item) int {
	f.note() // want "PushExtra calls note besides its batch core PushBatch"
	f.one[0] = it
	return f.PushBatch(f.one[:])
}

// PushAlloc allocates a fresh slice per item.
//
//lint:wraps PushBatch
func (f *Fleet) PushAlloc(it Item) int {
	return f.PushBatch(append([]Item(nil), it)) // want "PushAlloc uses builtin append"
}

// PushNever drifted off the core entirely.
//
//lint:wraps PushBatch
func (f *Fleet) PushNever(it Item) int { // want "PushNever never calls its declared batch core PushBatch"
	f.one[0] = it
	return 1
}

// PushFat is over the statement budget.
//
//lint:wraps PushBatch
func (f *Fleet) PushFat(it Item) int { // want "PushFat has 11 statements"
	a := 1
	b := 2
	c := a + b
	d := c * 2
	e := d - 1
	g := e + a
	h := g * b
	i := h - c
	f.one[0] = it
	_ = i
	return f.PushBatch(f.one[:])
}

// PushLegacy is a declared exception while it migrates.
//
//lint:allow batchwrap -- legacy fast path, migrating in pieces
//lint:wraps PushBatch
func (f *Fleet) PushLegacy(it Item) int {
	f.note()
	return f.PushBatch(f.one[:])
}

// One wraps a package-level core.
//
//lint:wraps Many
func One(x int) int { return Many([]int{x}) }

// Many is the package-level batch core.
func Many(xs []int) int { return len(xs) }
