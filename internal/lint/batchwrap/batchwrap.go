// Package batchwrap keeps the "batch is the core" discipline honest: a
// per-item entry point whose doc comment declares
//
//	//lint:wraps <BatchCore>
//
// (Push wraps PushBatch, ProcessOverflow wraps ObserveBatch, release
// wraps releaseRun, ...) must stay a trivial wrapper — exactly one call
// into the named batch core plus slice-of-one plumbing. The PR that
// inverted each pair moved the real work into the batch body precisely so
// the per-item path could not drift; without this check the drift comes
// back silently: someone adds a fast-path branch to Push, the batch path
// stops being exercised by single-item callers, and the two diverge.
//
// A conforming wrapper body may index/slice scratch fields, convert
// types, use len/cap, branch on the core's result, and return. Flagged:
// the declared core not existing on the receiver (or in the package, for
// plain functions), zero or multiple calls to it, any other
// function/method call, allocating builtins (append/make/new/copy),
// loops, and bodies over eight statements.
//
// //lint:allow batchwrap on the wrapper's doc suppresses the check for a
// declared exception.
package batchwrap

import (
	"go/ast"
	"go/types"

	"regionmon/internal/lint/analysis"
)

const name = "batchwrap"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "//lint:wraps-declared per-item wrappers must be one call into their batch core plus slice-of-one plumbing",
	Run:  run,
}

// maxStatements bounds a trivial wrapper body.
const maxStatements = 8

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			args, ok := analysis.CommentArgs(pass.Fset, fd.Doc, "wraps")
			if !ok {
				continue
			}
			if len(args) != 1 {
				pass.Reportf(fd.Name.Pos(), "//lint:wraps wants exactly one batch-core name, got %d", len(args))
				continue
			}
			checkWrapper(pass, fd, args[0])
		}
	}
	return nil
}

// checkWrapper verifies one declared wrapper against its batch core.
func checkWrapper(pass *analysis.Pass, fd *ast.FuncDecl, coreName string) {
	info := pass.Pkg.Info
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	core := lookupCore(pass, fn, coreName)
	if core == nil {
		pass.Reportf(fd.Name.Pos(), "%s declares //lint:wraps %s but no such method or function exists", fd.Name.Name, coreName)
		return
	}
	if core == fn {
		pass.Reportf(fd.Name.Pos(), "%s declares itself as its own batch core", fd.Name.Name)
		return
	}

	coreCalls := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeObject(info, n)
			switch callee := callee.(type) {
			case *types.Func:
				if callee == core {
					coreCalls++
					if coreCalls > 1 {
						pass.Reportf(n.Pos(), "%s calls its batch core %s more than once; fold the work into the core", fd.Name.Name, coreName)
					}
					return true
				}
				pass.Reportf(n.Pos(), "%s calls %s besides its batch core %s; a per-item wrapper is one core call plus plumbing", fd.Name.Name, callee.Name(), coreName)
			case *types.Builtin:
				switch callee.Name() {
				case "len", "cap":
				default:
					pass.Reportf(n.Pos(), "%s uses builtin %s; a per-item wrapper must not allocate — reuse the receiver's slice-of-one scratch", fd.Name.Name, callee.Name())
				}
			}
		case *ast.ForStmt, *ast.RangeStmt:
			pass.Reportf(n.Pos(), "%s contains a loop; iteration belongs in the batch core %s", fd.Name.Name, coreName)
		}
		return true
	})
	if coreCalls == 0 {
		pass.Reportf(fd.Name.Pos(), "%s never calls its declared batch core %s", fd.Name.Name, coreName)
	}
	if n := countStatements(fd.Body); n > maxStatements {
		pass.Reportf(fd.Name.Pos(), "%s has %d statements (max %d for a per-item wrapper); move the work into %s", fd.Name.Name, n, maxStatements, coreName)
	}
}

// lookupCore resolves the declared core name: a method on the wrapper's
// receiver base type, or a package-scope function for plain functions.
func lookupCore(pass *analysis.Pass, fn *types.Func, coreName string) *types.Func {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), coreName)
		if m, ok := obj.(*types.Func); ok {
			return m
		}
		return nil
	}
	if obj, ok := pass.Pkg.Types.Scope().Lookup(coreName).(*types.Func); ok {
		return obj
	}
	return nil
}

// calleeObject resolves a call's target object (function, method, or
// builtin; nil for conversions and indirect calls).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// countStatements counts statements recursively (a branch's body counts
// toward the wrapper's size).
func countStatements(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(ast.Stmt); ok {
			if _, isBlock := node.(*ast.BlockStmt); !isBlock {
				n++
			}
		}
		return true
	})
	return n
}
