// Package lint is the phaselint registry: the one place the suite's
// analyzers are enumerated. cmd/phaselint and the clean-module self-test
// both consume Suite(), so adding an analyzer here is what puts it in
// front of CI — there is no second list to forget to update (the
// registry-coverage test in suite_test.go checks this directory against
// Suite() to make sure of it).
package lint

import (
	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/atomicpair"
	"regionmon/internal/lint/batchwrap"
	"regionmon/internal/lint/boundedstate"
	"regionmon/internal/lint/determinism"
	"regionmon/internal/lint/hotpath"
	"regionmon/internal/lint/payloadswitch"
	"regionmon/internal/lint/singleowner"
	"regionmon/internal/lint/snapshotsafe"
)

// Suite returns the analyzers phaselint runs, with determinism scoped to
// the packages whose outputs the experiment harness asserts byte-stable:
// the facade, internal detectors/pipeline, and the CLIs that print
// reports. examples/ are excluded — they are documentation, free to print
// timings.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		singleowner.Analyzer,
		determinism.NewAnalyzer(
			"regionmon",
			"regionmon/internal/...",
			"regionmon/cmd/...",
		),
		hotpath.Analyzer,
		payloadswitch.Analyzer,
		snapshotsafe.Analyzer,
		boundedstate.Analyzer,
		batchwrap.Analyzer,
		atomicpair.Analyzer,
	}
}
