// Package singleowner enforces the pipeline's central concurrency
// contract: types declaring themselves single-owner (//lint:single-owner
// on the type declaration — pipeline.Pipeline, hpm.Monitor, sim.Executor,
// region.Monitor, the detector adapters, …) must stay confined to the
// goroutine that constructed them. Scaling across cores means many
// independent (executor, monitor, pipeline) stacks, never sharing one —
// the property the parallel sweep runners' determinism and the -race
// suite both rest on.
//
// The analyzer flags the three escape routes that break confinement:
//
//  1. a single-owner value declared outside a `go` statement's function
//     literal but referenced inside it (captured by the new goroutine),
//     or passed to / invoked by the spawned call;
//  2. a single-owner value sent on a channel;
//  3. a package-level variable of (or pointing to) a single-owner type.
//
// Constructing the value inside the goroutine is fine — that is exactly
// the worker-owned-stack pattern the sweep runners use.
package singleowner

import (
	"go/ast"
	"go/token"
	"go/types"

	"regionmon/internal/lint/analysis"
)

// Analyzer is the singleowner check.
var Analyzer = &analysis.Analyzer{
	Name: "singleowner",
	Doc:  "flag single-owner values escaping their owning goroutine (goroutine capture, channel send, package-level var)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	marked := analysis.MarkedTypes(pass.Fset, pass.Module, "single-owner")
	if len(marked) == 0 {
		return nil
	}
	owned := func(t types.Type) *types.TypeName {
		if tn := analysis.NamedOrPointee(t); tn != nil && marked[tn] {
			return tn
		}
		return nil
	}

	for _, file := range pass.Pkg.Files {
		// Package-level variables.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.Pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if tn := owned(obj.Type()); tn != nil {
						pass.Reportf(name.Pos(),
							"package-level var %s holds single-owner type %s.%s; single-owner values must not outlive one goroutine's run",
							name.Name, tn.Pkg().Name(), tn.Name())
					}
				}
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if tv, ok := pass.Pkg.Info.Types[n.Value]; ok {
					if tn := owned(tv.Type); tn != nil {
						pass.Reportf(n.Arrow,
							"single-owner type %s.%s sent on a channel; hand the receiving goroutine a constructor instead",
							tn.Pkg().Name(), tn.Name())
					}
				}
			case *ast.GoStmt:
				checkGo(pass, n, owned)
			}
			return true
		})
	}
	return nil
}

// checkGo flags single-owner values crossing into the spawned goroutine:
// captured free variables of a function-literal body, arguments of the
// spawned call, and the receiver of a spawned method call.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, owned func(types.Type) *types.TypeName) {
	call := g.Call
	// Arguments to the spawned call (both `go f(exec)` and
	// `go func(e *sim.Executor) {...}(exec)`).
	for _, arg := range call.Args {
		if tv, ok := pass.Pkg.Info.Types[arg]; ok {
			if tn := owned(tv.Type); tn != nil {
				pass.Reportf(arg.Pos(),
					"single-owner type %s.%s passed into a goroutine; construct it inside the goroutine instead",
					tn.Pkg().Name(), tn.Name())
			}
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		// Free variables: identifiers used inside the literal whose
		// declaration lies outside it.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Uses[id].(*types.Var)
			if !ok || obj.IsField() {
				return true
			}
			if obj.Pos() >= fun.Pos() && obj.Pos() <= fun.End() {
				return true // declared inside the literal: worker-owned
			}
			if tn := owned(obj.Type()); tn != nil {
				pass.Reportf(id.Pos(),
					"single-owner type %s.%s captured by goroutine closure; construct it inside the goroutine instead",
					tn.Pkg().Name(), tn.Name())
			}
			return true
		})
	case *ast.SelectorExpr:
		// Method value spawned directly: `go exec.Run()`.
		if sel, ok := pass.Pkg.Info.Selections[fun]; ok {
			if tn := owned(sel.Recv()); tn != nil {
				pass.Reportf(fun.Pos(),
					"single-owner type %s.%s driven from a new goroutine; construct it inside the goroutine instead",
					tn.Pkg().Name(), tn.Name())
			}
		}
	}
}
