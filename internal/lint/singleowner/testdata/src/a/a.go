// Package a seeds singleowner violations: Executor mirrors the repo's
// single-owner run-state types; Tool is an ordinary sharable type.
package a

import "sync"

// Executor owns mutable per-run state.
//
//lint:single-owner
type Executor struct {
	n int
}

// NewExecutor constructs a fresh executor.
func NewExecutor() *Executor { return &Executor{} }

// Run consumes the executor.
func (e *Executor) Run() int {
	e.n++
	return e.n
}

// Tool has no ownership contract.
type Tool struct{ n int }

// global holds a single-owner value across goroutines.
var global *Executor // want "package-level var global holds single-owner type a.Executor"

// sharedTool is fine: Tool is not single-owner.
var sharedTool *Tool

// Captured leaks an outer executor into a spawned goroutine.
func Captured() {
	e := NewExecutor()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Run() // want "single-owner type a.Executor captured by goroutine closure"
	}()
	wg.Wait()
}

// PassedAsArg leaks the executor through the spawned call's arguments.
func PassedAsArg() {
	e := NewExecutor()
	done := make(chan int)
	go func(x *Executor) { // keep the literal's own param clean
		done <- x.Run()
	}(e) // want "single-owner type a.Executor passed into a goroutine"
	<-done
}

// MethodGoroutine drives a single-owner value from a fresh goroutine.
func MethodGoroutine() {
	e := NewExecutor()
	go e.Run() // want "single-owner type a.Executor driven from a new goroutine"
}

// SentOnChannel hands the executor to whoever receives.
func SentOnChannel(ch chan *Executor) {
	e := NewExecutor()
	ch <- e // want "single-owner type a.Executor sent on a channel"
}

// WorkerOwned is the approved pattern: each goroutine constructs its own
// stack. No diagnostics.
func WorkerOwned(results []int) {
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			e := NewExecutor()
			results[slot] = e.Run()
		}(i)
	}
	wg.Wait()
}

// ToolEverywhere shows non-marked types escape freely. No diagnostics.
func ToolEverywhere(ch chan *Tool) {
	tl := &Tool{}
	go func() { tl.n++ }()
	ch <- tl
}
