package singleowner_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/singleowner"
)

func TestSingleOwner(t *testing.T) {
	analysistest.Run(t, ".", singleowner.Analyzer, "a")
}
