// Package loader loads the module's packages — parsed syntax plus full
// go/types information — for the phaselint analyzers.
//
// The repo deliberately has no third-party dependencies, so this is a
// small, self-contained stand-in for golang.org/x/tools/go/packages: it
// discovers packages by walking the module tree (the same set `./...`
// names), parses them with go/parser, and type-checks them with go/types.
// Imports inside the module resolve recursively through the same loader;
// standard-library imports resolve through the compiler's source importer,
// which type-checks GOROOT sources and therefore needs neither a network
// connection nor prebuilt export data.
package loader

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path within the module (or the
	// synthetic path given to LoadDir).
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Name is the package name (clause name, e.g. "main").
	Name string
	// FileNames lists the parsed files, parallel to Files.
	FileNames []string
	// Files holds the parsed syntax trees, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's per-node facts.
	Info *types.Info
}

// Program is a load result: every requested package plus the shared
// position table.
type Program struct {
	// Fset is the position table shared by all packages (module and
	// source-imported standard library alike).
	Fset *token.FileSet
	// Packages holds the module's packages in import-path order.
	Packages []*Package
	// ModulePath is the module path from go.mod ("" for LoadDir).
	ModulePath string
}

// entry is one discovered-but-not-yet-checked package directory.
type entry struct {
	importPath string
	dir        string
	fileNames  []string
	files      []*ast.File
}

// loadState drives recursive type checking; it doubles as the
// types.Importer handed to the checker.
type loadState struct {
	fset     *token.FileSet
	entries  map[string]*entry // import path -> module package
	checked  map[string]*Package
	checking map[string]bool // cycle guard
	std      types.Importer  // GOROOT source importer
}

// Import implements types.Importer: module packages are checked
// recursively, everything else is delegated to the source importer.
func (ls *loadState) Import(path string) (*types.Package, error) {
	if e, ok := ls.entries[path]; ok {
		pkg, err := ls.check(e)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ls.std.Import(path)
}

// check type-checks one module package (memoized).
func (ls *loadState) check(e *entry) (*Package, error) {
	if p, ok := ls.checked[e.importPath]; ok {
		return p, nil
	}
	if ls.checking[e.importPath] {
		return nil, fmt.Errorf("loader: import cycle through %s", e.importPath)
	}
	ls.checking[e.importPath] = true
	defer delete(ls.checking, e.importPath)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: ls}
	tpkg, err := cfg.Check(e.importPath, ls.fset, e.files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", e.importPath, err)
	}
	p := &Package{
		ImportPath: e.importPath,
		Dir:        e.dir,
		Name:       e.files[0].Name.Name,
		FileNames:  e.fileNames,
		Files:      e.files,
		Types:      tpkg,
		Info:       info,
	}
	ls.checked[e.importPath] = p
	return p, nil
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks upward from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("loader: no module directive in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// skipDir reports whether a directory is outside `./...` (hidden,
// underscore-prefixed, or testdata).
func skipDir(name string) bool {
	return name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata")
}

// buildTagOK evaluates the file's //go:build constraint (if any) the way
// `go build` would on this platform: GOOS, GOARCH, and the gc toolchain
// tag are satisfied, anything else — custom tags, other platforms — is
// not. Files excluded here (e.g. a linux-only syscall shim on another
// GOOS, or an `ignore`-tagged generator) would otherwise break type
// checking with duplicate or unresolvable declarations.
func buildTagOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: let the type checker complain
			}
			if !expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
			}) {
				return false
			}
		}
	}
	return true
}

// LoadModule discovers and type-checks every package under the module at
// root — the same set `go build ./...` would cover, test files excluded.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	entries := make(map[string]*entry)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("loader: %w", err)
		}
		if !buildTagOK(file) {
			return nil
		}
		e := entries[importPath]
		if e == nil {
			e = &entry{importPath: importPath, dir: dir}
			entries[importPath] = e
		}
		e.fileNames = append(e.fileNames, path)
		e.files = append(e.files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return checkAll(fset, entries, modPath)
}

// LoadDir loads a single directory as one package under the given
// synthetic import path (the analysistest entry point; the directory is
// expected to import only the standard library).
func LoadDir(dir, importPath string) (*Program, error) {
	fset := token.NewFileSet()
	e, err := dirEntry(fset, dir, importPath)
	if err != nil {
		return nil, err
	}
	return checkAll(fset, map[string]*entry{importPath: e}, "")
}

// LoadDirs loads several packages laid out GOPATH-style — each import
// path p's sources live at srcRoot/p — and type-checks them together, so
// testdata packages may import one another by those synthetic paths (the
// cross-package fixtures the fact-layer analyzers need: a declaring
// package exports facts, a consuming package triggers on them).
func LoadDirs(srcRoot string, importPaths []string) (*Program, error) {
	fset := token.NewFileSet()
	entries := make(map[string]*entry, len(importPaths))
	for _, p := range importPaths {
		if _, dup := entries[p]; dup {
			return nil, fmt.Errorf("loader: duplicate import path %s", p)
		}
		e, err := dirEntry(fset, filepath.Join(srcRoot, filepath.FromSlash(p)), p)
		if err != nil {
			return nil, err
		}
		entries[p] = e
	}
	return checkAll(fset, entries, "")
}

// dirEntry parses one directory's non-test, build-tag-satisfying files.
func dirEntry(fset *token.FileSet, dir, importPath string) (*entry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	e := &entry{importPath: importPath, dir: dir}
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		if !buildTagOK(file) {
			continue
		}
		e.fileNames = append(e.fileNames, name)
		e.files = append(e.files, file)
	}
	if len(e.files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return e, nil
}

// checkAll type-checks every discovered entry and assembles the Program.
func checkAll(fset *token.FileSet, entries map[string]*entry, modPath string) (*Program, error) {
	ls := &loadState{
		fset:     fset,
		entries:  entries,
		checked:  make(map[string]*Package),
		checking: make(map[string]bool),
		std:      importer.ForCompiler(fset, "source", nil),
	}
	paths := make([]string, 0, len(entries))
	for p := range entries {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	prog := &Program{Fset: fset, ModulePath: modPath}
	for _, p := range paths {
		pkg, err := ls.check(entries[p])
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}
