package loader

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module: files maps relative paths to
// contents; a go.mod naming the module is added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/tagged\n\ngo 1.24\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadModuleSkipsExcludedBuildTags pins the build-constraint
// behaviour: a file gated on a custom tag (or another platform) must not
// reach the type checker — here it would collide with a declaration in
// the kept file — while a file gated on the current GOOS must load.
func TestLoadModuleSkipsExcludedBuildTags(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a.go": "package tagged\n\nfunc Kept() int { return 1 }\n",
		"a_gen.go": "//go:build generate_only\n\n" +
			"package tagged\n\nfunc Kept() int { return 2 }\n",
		"a_host.go": "//go:build " + runtime.GOOS + "\n\n" +
			"package tagged\n\nfunc Host() int { return 3 }\n",
	})
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Packages))
	}
	pkg := prog.Packages[0]
	var names []string
	for _, fn := range pkg.FileNames {
		names = append(names, filepath.Base(fn))
	}
	got := strings.Join(names, " ")
	if strings.Contains(got, "a_gen.go") {
		t.Errorf("tag-excluded file loaded: %s", got)
	}
	if !strings.Contains(got, "a_host.go") {
		t.Errorf("GOOS-satisfied file not loaded: %s", got)
	}
	if pkg.Types.Scope().Lookup("Host") == nil {
		t.Error("Host not type-checked from the GOOS-tagged file")
	}
}

// TestLoadModuleSkipsAllTagExcludedPackage: a package whose every file is
// tag-excluded must vanish entirely — no empty entry handed to the type
// checker, and no type checking of the excluded sources (the fixture
// would fail it).
func TestLoadModuleSkipsAllTagExcludedPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a.go": "package tagged\n",
		"gen/gen.go": "//go:build never_set\n\n" +
			"package gen\n\nvar Broken = undefinedSymbol\n",
	})
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		if strings.HasSuffix(pkg.ImportPath, "/gen") {
			t.Fatalf("all-excluded package loaded as %s with %d files", pkg.ImportPath, len(pkg.Files))
		}
	}
}

// TestLoadModuleExcludesTestFiles: _test.go files are outside the
// loader's contract (they may use a _test package name and test-only
// imports); a deliberately unparsable one must be ignored, not reported.
func TestLoadModuleExcludesTestFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a.go":      "package tagged\n\nfunc Kept() int { return 1 }\n",
		"a_test.go": "package tagged !! not even Go\n",
	})
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Packages[0].FileNames {
		if strings.HasSuffix(fn, "_test.go") {
			t.Errorf("test file loaded: %s", fn)
		}
	}
}

// TestLoadModuleReportsTypeError: a package that does not type-check must
// come back as an error naming the package, never a panic and never a
// half-checked Program.
func TestLoadModuleReportsTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a.go":        "package tagged\n",
		"broken/b.go": "package broken\n\nfunc F() int { return \"not an int\" }\n",
		"importer/i.go": "package importer\n\n" +
			"import \"example.com/tagged/broken\"\n\nvar _ = broken.F\n",
	})
	prog, err := LoadModule(root)
	if err == nil {
		t.Fatalf("type error not reported; loaded %d packages", len(prog.Packages))
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the failing package: %v", err)
	}
}

// TestLoadDirsRejectsDuplicatePaths pins the multi-package entry point's
// duplicate guard.
func TestLoadDirsRejectsDuplicatePaths(t *testing.T) {
	if _, err := LoadDirs(t.TempDir(), []string{"p", "p"}); err == nil {
		t.Fatal("duplicate import path accepted")
	}
}
