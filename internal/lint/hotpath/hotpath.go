// Package hotpath turns the repo's runtime allocation gates
// (TestSystemRunAllocs, pipeline's TestHotPathAllocs, ingest's
// TestFleetBatchAllocs) into a compile-time check: the monitoring hot
// path — every ObserveInterval / ProcessOverflow / ObserveBatch method,
// the batch-first ingest entries PushBatch / PushBatchWait, and
// everything those methods statically call within the module — must not
// contain allocating constructs. The paper's premise is that
// continuous monitoring is only viable because the per-interval work is
// cheap (ADORE's <1% overhead); a stray fmt.Sprintf or closure literal in
// an interval handler silently breaks that.
//
// Flagged inside hot-path-reachable functions:
//
//   - function literals (closure allocation; build them once at
//     construction time instead, like region.Monitor's stabVisit);
//   - calls into package fmt (Sprintf and friends allocate);
//   - make(...), new(...), map and slice composite literals, and &T{}
//     (per-interval heap allocation; reuse scratch owned by the detector);
//   - append to a slice the function itself declared empty with no
//     capacity (un-preallocated accumulation; reuse a scratch field
//     sliced to [:0], or preallocate with a capacity).
//
// Deliberate escapes:
//
//   - constructs inside panic(...) arguments are ignored (failure paths
//     do not run per interval);
//   - a function whose doc comment carries //lint:allow hotpath is a
//     declared cold sub-path (e.g. region formation, which runs only when
//     the UCR trips the threshold): it is neither checked nor traversed;
//   - checkpointing methods — Snapshot, Restore, AppendSnapshot,
//     RestoreSnapshot — are cold by contract (they run at checkpoint
//     boundaries, never per interval) and the walk stops at them without
//     an annotation.
//
// Calls through interfaces or function values cannot be resolved
// statically and are not traversed — the runtime gates still cover those;
// this analyzer is the cheap always-on layer, not a replacement.
package hotpath

import (
	"go/ast"
	"go/types"

	"regionmon/internal/lint/analysis"
)

// rootNames are the hot-path entry points: the per-interval detector
// methods, the pipeline's batch entry, and the ingest producer's batch
// pushes (whose per-item forms are wrappers over them).
var rootNames = map[string]bool{
	"ObserveInterval": true,
	"ProcessOverflow": true,
	"ObserveBatch":    true,
	"PushBatch":       true,
	"PushBatchWait":   true,
}

// coldNames are checkpointing methods that are cold by contract: a
// Snapshot/Restore pair (and the nested AppendSnapshot/RestoreSnapshot of
// the pipeline's Snapshotter interface) runs at checkpoint boundaries,
// never per interval, so reaching one from a hot-path method does not put
// its body on the hot path.
var coldNames = map[string]bool{
	"Snapshot":        true,
	"Restore":         true,
	"AppendSnapshot":  true,
	"RestoreSnapshot": true,
}

// Analyzer is the hotpath check.
const name = "hotpath"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid allocating constructs in ObserveInterval/ProcessOverflow/ObserveBatch/PushBatch(Wait) and everything they statically call",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Index every module function once, then walk the static call graph
	// from the roots. Diagnostics are only emitted for functions declared
	// in the pass's own package, so the module-wide walk reports each
	// site exactly once across the whole run.
	ix := analysis.IndexFuncs(pass.Fset, pass.Module)
	roots := ix.Methods(func(n string) bool { return rootNames[n] })
	for fn, via := range ix.Reachable(roots, name, coldNames) {
		fd, ok := ix.Decl(fn)
		if !ok || fd.Pkg != pass.Pkg {
			continue
		}
		checkBody(pass, fd, via)
	}
	return nil
}

// checkBody flags allocating constructs in one reachable function.
func checkBody(pass *analysis.Pass, fd analysis.FuncDecl, via string) {
	info := fd.Pkg.Info
	emptyLocals := emptySliceLocals(info, fd.Decl)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // failure path: not per-interval work
			}
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make":
					pass.Reportf(n.Pos(), "make in monitoring hot path (reachable from %s); allocate once at construction time and reuse", via)
				case "new":
					pass.Reportf(n.Pos(), "new in monitoring hot path (reachable from %s); allocate once at construction time and reuse", via)
				case "append":
					if len(n.Args) > 0 {
						if id := appendTarget(n.Args[0]); id != nil {
							if obj := info.Uses[id]; obj != nil && emptyLocals[obj] {
								pass.Reportf(n.Pos(), "append to un-preallocated slice %s in monitoring hot path (reachable from %s); reuse a scratch field sliced to [:0] or preallocate with capacity", id.Name, via)
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					pass.Reportf(n.Pos(), "fmt.%s allocates in monitoring hot path (reachable from %s)", fn.Name(), via)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates in monitoring hot path (reachable from %s); build it once at construction time (see region.Monitor's stabVisit)", via)
			return false // the literal's body is not itself hot-path code here
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch types.Unalias(tv.Type).Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates in monitoring hot path (reachable from %s)", kindWord(tv.Type), via)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal heap-allocates in monitoring hot path (reachable from %s); reuse detector-owned storage", via)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Decl.Body, visit)
}

func kindWord(t types.Type) string {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Map:
		return "map"
	default:
		return "slice"
	}
}

// isPanicCall reports a call to the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// appendTarget unwraps the append destination to a plain identifier
// (selector-based targets — scratch fields — are exempt by design).
func appendTarget(e ast.Expr) *ast.Ident {
	if id, ok := e.(*ast.Ident); ok {
		return id
	}
	return nil
}

// emptySliceLocals collects local variables declared as empty slices with
// no capacity: `var s []T`, `s := []T{}`, `s := make([]T, 0)`.
func emptySliceLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil && isSlice(obj.Type()) {
						out[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if emptySliceExpr(n.Rhs[i]) {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isSlice(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Slice)
	return ok
}

// emptySliceExpr matches `[]T{}` and `make([]T, 0)` (no capacity).
func emptySliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		lit, ok := e.Args[1].(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}
