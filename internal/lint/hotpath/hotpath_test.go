package hotpath_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, ".", hotpath.Analyzer, "a")
}
