// Package a seeds hot-path allocation violations: Detector.ObserveInterval
// mirrors the repo's per-interval detector shape; its callees show the
// static-call traversal; Cold shows the declared-cold escape hatch.
package a

import "fmt"

// Overflow stands in for hpm.Overflow.
type Overflow struct {
	Samples []int
}

// Verdict stands in for pipeline.Verdict.
type Verdict struct {
	Stable bool
	Label  string
}

// Detector allocates in its interval handler — every construct flagged.
type Detector struct {
	scratch []int
	sink    []int
}

// ObserveInterval is a hot-path root.
func (d *Detector) ObserveInterval(ov *Overflow) Verdict {
	f := func() int { return len(ov.Samples) } // want "closure literal allocates in monitoring hot path"
	_ = f
	label := fmt.Sprintf("n=%d", len(ov.Samples)) // want "fmt.Sprintf allocates in monitoring hot path"
	tmp := make([]int, len(ov.Samples))           // want "make in monitoring hot path"
	_ = tmp
	var grown []int
	for _, s := range ov.Samples {
		grown = append(grown, s) // want "append to un-preallocated slice grown in monitoring hot path"
	}
	_ = grown
	pair := []int{1, 2} // want "slice literal allocates in monitoring hot path"
	_ = pair
	v := &Verdict{Label: label} // want "&composite literal heap-allocates in monitoring hot path"
	d.helper(ov)
	return *v
}

// helper is statically called from the root: its allocations are hot too.
func (d *Detector) helper(ov *Overflow) {
	m := map[int]int{} // want "map literal allocates in monitoring hot path"
	_ = m
	d.cold(ov)
	_ = d.Snapshot()
}

// Snapshot is cold by contract (checkpointing never runs per interval):
// the walk stops here even though a hot-path method references it, so its
// allocations draw no diagnostics.
func (d *Detector) Snapshot() []int {
	out := make([]int, len(d.sink))
	copy(out, d.sink)
	return out
}

// cold is a declared cold sub-path (formation-style): not traversed.
//
//lint:allow hotpath -- runs only on the rare formation trigger
func (d *Detector) cold(ov *Overflow) {
	d.sink = append([]int{}, ov.Samples...)
}

// Clean reuses detector-owned scratch: the approved shape, no diagnostics.
type Clean struct {
	scratch []int
	last    Verdict
}

// ProcessOverflow is a hot-path root with zero steady-state allocations.
func (c *Clean) ProcessOverflow(ov *Overflow) *Verdict {
	if len(ov.Samples) < 0 {
		panic(fmt.Sprintf("impossible: %d", len(ov.Samples))) // failure path: exempt
	}
	c.scratch = c.scratch[:0]
	for _, s := range ov.Samples {
		c.scratch = append(c.scratch, s)
	}
	pre := make([]int, 0, len(ov.Samples)) // want "make in monitoring hot path"
	_ = pre
	c.last = Verdict{Stable: len(c.scratch) > 0}
	return &c.last
}

// Batcher mirrors the batch-first entry points: ObserveBatch (pipeline)
// and PushBatch/PushBatchWait (ingest producer) are hot-path roots too —
// one call now carries a whole run of intervals, so an allocation here is
// paid per batch on the same per-interval budget.
type Batcher struct {
	one [1]*Overflow
	rep Verdict
}

// ObserveBatch is a hot-path root.
func (b *Batcher) ObserveBatch(ovs []*Overflow) {
	for range ovs {
		v := &Verdict{Stable: true} // want "&composite literal heap-allocates in monitoring hot path"
		b.rep = *v
	}
}

// PushBatch is a hot-path root; its per-item wrapper Push rides on it.
func (b *Batcher) PushBatch(ovs []*Overflow) int {
	staged := make([]*Overflow, len(ovs)) // want "make in monitoring hot path"
	copy(staged, ovs)
	b.ObserveBatch(staged)
	return len(staged)
}

// PushBatchWait is a hot-path root; the batch core it calls is clean, so
// the wrapper itself draws no diagnostics.
func (b *Batcher) PushBatchWait(ovs []*Overflow) {
	b.one[0] = ovs[0]
	b.ObserveBatch(b.one[:])
}

// NotHot is never reached from a root: allocate freely, no diagnostics.
func NotHot(n int) []int {
	out := make([]int, 0, n)
	f := func(i int) int { return i * i }
	for i := 0; i < n; i++ {
		out = append(out, f(i))
	}
	return out
}
