// Package analysistest runs a phaselint analyzer over a golden-file test
// package and checks its diagnostics against // want "rx" comments — the
// same convention as golang.org/x/tools/go/analysis/analysistest, scoped
// down to what the suite needs: each test package lives under
// <analyzer>/testdata/src/<pkg>, imports only the standard library, and
// annotates every line expected to be flagged with one or more
//
//	// want "regexp"
//
// comments. The harness fails the test when an expected diagnostic is
// missing, an unexpected one appears, or a message does not match its
// pattern.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/loader"
)

var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

// expectation is one // want pattern with its location.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> for every named package relative to dir,
// type-checks them together (later packages may import earlier ones by
// their bare names — how the fact-layer analyzers get cross-package
// fixtures), applies the analyzer, and compares diagnostics against the
// packages' // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	if len(pkgs) == 0 {
		t.Fatal("analysistest.Run: no test packages named")
	}
	src := filepath.Join(dir, "testdata", "src")
	prog, err := loader.LoadDirs(src, pkgs)
	if err != nil {
		t.Fatalf("load %s %v: %v", src, pkgs, err)
	}
	expects := collectWants(t, prog)
	findings, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, f := range findings {
		pos := prog.Fset.Position(f.Diagnostic.Pos)
		if !matchExpect(expects, pos, f.Diagnostic.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, f.Diagnostic.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.rx)
		}
	}
}

// collectWants parses every // want comment in the loaded package.
func collectWants(t *testing.T, prog *loader.Program) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					out = append(out, parseWants(t, prog.Fset, c)...)
				}
			}
		}
	}
	return out
}

func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	var out []*expectation
	for _, q := range splitQuoted(m[1]) {
		pat, err := unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
	}
	return out
}

// splitQuoted splits a run of quoted strings: `"a" "b"` -> [`"a"`, `"b"`].
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		if s[0] != '"' {
			break
		}
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			break
		}
		out = append(out, s[:i+1])
		s = strings.TrimSpace(s[i+1:])
	}
	return out
}

func unquote(q string) (string, error) {
	if len(q) < 2 || q[0] != '"' || q[len(q)-1] != '"' {
		return "", fmt.Errorf("not a quoted string")
	}
	body := q[1 : len(q)-1]
	return strings.ReplaceAll(strings.ReplaceAll(body, `\"`, `"`), `\\`, `\`), nil
}

func matchExpect(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != pos.Filename || e.line != pos.Line {
			continue
		}
		if e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}
