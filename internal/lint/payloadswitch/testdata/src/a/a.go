// Package a seeds payloadswitch violations over a three-type payload
// registry mirroring the pipeline's detector payloads.
package a

// GlobalVerdict is a registered payload.
//
//lint:payload
type GlobalVerdict struct{ Stable bool }

// RegionReport is a registered payload.
//
//lint:payload
type RegionReport struct{ Regions int }

// PerfVerdict is a registered payload.
//
//lint:payload
type PerfVerdict struct{ Changed bool }

// Unregistered is an ordinary type.
type Unregistered struct{}

// Dispatch misses PerfVerdict and has no default.
func Dispatch(payload any) int {
	switch payload.(type) { // want "type switch over detector payloads misses registered payload type\\(s\\) a.PerfVerdict"
	case *GlobalVerdict:
		return 1
	case *RegionReport:
		return 2
	}
	return 0
}

// DispatchAll covers the whole registry: no diagnostic.
func DispatchAll(payload any) int {
	switch payload.(type) {
	case *GlobalVerdict:
		return 1
	case *RegionReport:
		return 2
	case *PerfVerdict:
		return 3
	}
	return 0
}

// DispatchDefault escapes through a default clause: no diagnostic.
func DispatchDefault(payload any) int {
	switch payload.(type) {
	case *GlobalVerdict:
		return 1
	default:
		return 0
	}
}

// DispatchMixed misses two, reported together.
func DispatchMixed(payload any) int {
	switch p := payload.(type) { // want "misses registered payload type\\(s\\) a.PerfVerdict, a.RegionReport"
	case *GlobalVerdict:
		_ = p
		return 1
	case nil:
		return -1
	}
	return 0
}

// NotPayloadSwitch involves no registered payloads: no diagnostic.
func NotPayloadSwitch(v any) int {
	switch v.(type) {
	case *Unregistered:
		return 1
	case int:
		return 2
	}
	return 0
}
