package payloadswitch_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/payloadswitch"
)

func TestPayloadSwitch(t *testing.T) {
	analysistest.Run(t, ".", payloadswitch.Analyzer, "a")
}
