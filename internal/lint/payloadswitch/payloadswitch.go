// Package payloadswitch enforces exhaustive dispatch over the pipeline's
// detector payloads. pipeline.Verdict.Payload is an `any` carrying one of
// the registered payload types (marked //lint:payload on their
// declarations: gpd.Verdict, region.Report, altdetect.Verdict,
// gpd.PerfVerdict). A consumer that type-switches over a payload — the
// adore.RTO controller's single dispatch loop is the canonical one — must
// either name every registered payload type or carry a default clause;
// otherwise the day a new detector family lands, its verdicts would fall
// silently through the controller.
//
// A type switch is "over detector payloads" when at least one of its case
// types is a registered payload type (by value or pointer); the analyzer
// then requires the rest of the registry to be covered too.
package payloadswitch

import (
	"go/ast"
	"go/types"
	"sort"

	"regionmon/internal/lint/analysis"
)

// Analyzer is the payloadswitch check.
var Analyzer = &analysis.Analyzer{
	Name: "payloadswitch",
	Doc:  "require type switches over registered detector payload types to cover every payload or carry a default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	marked := analysis.MarkedTypes(pass.Fset, pass.Module, "payload")
	if len(marked) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, sw, marked)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt, marked map[*types.TypeName]bool) {
	covered := make(map[*types.TypeName]bool)
	hasDefault := false
	relevant := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.Pkg.Info.Types[expr]
			if !ok {
				continue // e.g. `case nil:`
			}
			if tn := analysis.NamedOrPointee(tv.Type); tn != nil && marked[tn] {
				covered[tn] = true
				relevant = true
			}
		}
	}
	if !relevant || hasDefault {
		return
	}
	var missing []*types.TypeName
	for tn := range marked {
		if !covered[tn] {
			missing = append(missing, tn)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Slice(missing, func(i, j int) bool {
		return missing[i].Pkg().Path()+"."+missing[i].Name() < missing[j].Pkg().Path()+"."+missing[j].Name()
	})
	pass.Reportf(sw.Pos(),
		"type switch over detector payloads misses registered payload type(s) %s; add the case(s) or a default clause",
		analysis.TypeNames(missing))
}
