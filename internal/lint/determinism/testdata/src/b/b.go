// Package b sits outside the deterministic set: wall-clock reads here are
// not the determinism analyzer's business.
package b

import "time"

// FreeClock is unconstrained (package not in the deterministic set).
func FreeClock() time.Time { return time.Now() }
