// Package a seeds determinism violations: wall-clock reads, global RNG
// draws, and map-order-dependent result building.
package a

import (
	"math/rand/v2"
	"sort"
	"time"
)

// WallClock reads real time inside deterministic code.
func WallClock() int64 {
	t := time.Now() // want "wall-clock read time.Now in deterministic package a"
	return t.UnixNano()
}

// Elapsed measures with Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since in deterministic package a"
}

// AllowedTiming is an annotated intentional timing site: no diagnostic.
func AllowedTiming() time.Duration {
	start := time.Now() //lint:allow determinism -- intentional wall-clock measurement
	work()
	//lint:allow determinism -- intentional wall-clock measurement
	return time.Since(start)
}

// AllowedWholeFunc is a timing harness allowed at function granularity.
//
//lint:allow determinism -- this whole function is a timing harness
func AllowedWholeFunc() (time.Time, time.Time) {
	return time.Now(), time.Now()
}

func work() {}

// GlobalDraw uses the process-global generator.
func GlobalDraw() float64 {
	return rand.Float64() // want "global math/rand draw rand.Float64 in deterministic package a"
}

// GlobalShuffle permutes with the global generator.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand draw rand.Shuffle"
}

// SeededDraw is the approved pattern: no diagnostics.
func SeededDraw(seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, 0x5EED))
	return rng.Float64()
}

// MapOrderLeak accumulates map elements in iteration order.
func MapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration feeds an ordered slice"
	}
	return out
}

// CollectThenSort is the approved idiom: no diagnostics.
func CollectThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WorklistScratch appends only to a slice declared inside the loop body —
// per-iteration scratch whose order cannot leak across iterations: no
// diagnostics.
func WorklistScratch(graph map[int][]int) int {
	visited := 0
	for root, succs := range graph {
		var stack []int
		stack = append(stack, root)
		stack = append(stack, succs...)
		for len(stack) > 0 {
			stack = stack[:len(stack)-1]
			visited++
		}
	}
	return visited
}

// SliceRange is not a map range: no diagnostics.
func SliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
