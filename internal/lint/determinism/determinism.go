// Package determinism enforces the sweep runners' byte-identical-results
// contract inside the deterministic packages: simulation and experiment
// code must not read the wall clock, must not draw from the global
// (unseeded) math/rand generators, and must not let map iteration order
// leak into ordered result slices.
//
// Three checks:
//
//  1. wall clock — calls to time.Now, time.Since or time.Until. The
//     intentional timing sites (Figure 15's cost measurement, the
//     benchpipeline harness) carry //lint:allow determinism.
//  2. global RNG — package-level math/rand and math/rand/v2 draw
//     functions (rand.Int, rand.Float64, rand.Shuffle, …). Seeded
//     *rand.Rand values constructed with rand.New(rand.NewPCG(seed, …))
//     are the approved pattern and are not flagged; neither are the
//     constructors themselves.
//  3. map-order leaks — a `for … range m` over a map whose body appends
//     to a slice accumulates elements in nondeterministic order. The
//     established idiom — collect then sort — is recognised: when the
//     enclosing function also passes the same slice to a sort.* or
//     slices.* call, the loop is not flagged. Slices declared inside the
//     loop body (per-iteration worklists) are exempt too.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"regionmon/internal/lint/analysis"
)

// wallClockFuncs are the time package's wall-clock reads.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are math/rand functions that build seeded state rather
// than drawing from the global generator.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// NewAnalyzer returns a determinism analyzer scoped to packages whose
// import path matches one of the given patterns: an exact path, or a
// prefix written "path/...".
func NewAnalyzer(patterns ...string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, global math/rand draws, and map-order-dependent result building in deterministic packages",
		Run:  func(pass *analysis.Pass) error { return run(pass, patterns) },
	}
}

// matches reports whether path is covered by the pattern list.
func matches(path string, patterns []string) bool {
	for _, p := range patterns {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, patterns []string) error {
	if !matches(pass.Pkg.ImportPath, patterns) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	sorted := sortedIdents(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, sorted)
		}
		return true
	})
}

// checkCall flags wall-clock reads and global-RNG draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Float64) are seeded state: fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in deterministic package %s (seed simulated time instead, or annotate an intentional timing site with //lint:allow determinism)",
				fn.Name(), pass.Pkg.ImportPath)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand draw rand.%s in deterministic package %s; use a seeded *rand.Rand (rand.New(rand.NewPCG(seed, …)))",
				fn.Name(), pass.Pkg.ImportPath)
		}
	}
}

// checkMapRange flags `for … range m` over a map whose body appends to a
// slice that the enclosing function never sorts.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		dst := rootIdent(call.Args[0])
		if dst == nil {
			return true
		}
		obj := pass.Pkg.Info.Uses[dst]
		if obj == nil || sorted[obj] {
			return true
		}
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() < rng.Body.End() {
			// Declared inside the loop body: per-iteration scratch (a
			// worklist, say), not a cross-iteration ordered accumulation.
			return true
		}
		pass.Reportf(call.Pos(),
			"append to %s inside map iteration feeds an ordered slice from nondeterministic map order; sort the result (or iterate sorted keys)",
			dst.Name)
		return true
	})
}

// sortedIdents collects objects passed to sort.* / slices.* calls within
// fd — the collect-then-sort idiom's evidence.
func sortedIdents(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
			for _, arg := range call.Args {
				if id := rootIdent(arg); id != nil {
					if obj := pass.Pkg.Info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// rootIdent unwraps selectors/indexes/unary ops to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
