package determinism_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, ".", determinism.NewAnalyzer("a"), "a")
}

// TestScope: a package outside the deterministic set is never flagged.
func TestScope(t *testing.T) {
	analysistest.Run(t, ".", determinism.NewAnalyzer("unrelated/..."), "b")
}
