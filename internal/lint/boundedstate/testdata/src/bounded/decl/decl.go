// Package decl declares state a downstream detector borrows: the
// StateField facts on its fields are exported by the detector package's
// Facts pass, and the growth sites here are flagged because they are
// reachable from the detector's hot path.
package decl

// Buf is a history buffer owned by a detector in bounded/det.
type Buf struct {
	data []int
	ring []int //lint:bounded -- overwritten modulo cap, never grows
}

// Grow is called from the detector's ObserveInterval.
func (b *Buf) Grow(x int) {
	b.data = append(b.data, x) // want "append grows detector state field decl.Buf.data"
}

// Rotate writes through the bounded ring: sanctioned.
func (b *Buf) Rotate(x int) {
	b.ring[x%len(b.ring)] = x
}
