// Package det holds the detector whose state closure spans both this
// package and bounded/decl.
package det

import "bounded/decl"

// D is a long-lived detector: it has an ObserveInterval method, so every
// growable field in its transitive state closure must be bounded.
type D struct {
	buf   *decl.Buf
	hist  []int
	idx   map[int]int
	names []string //lint:bounded -- fixed at construction
}

func (d *D) ObserveInterval(x int) {
	d.hist = append(d.hist, x) // want "append grows detector state field det.D.hist"
	d.idx[x]++                 // want "map write grows detector state field det.D.idx"
	d.names = append(d.names[:0], "a")
	d.buf.Grow(x)
	d.rebuild(x)
}

// rebuild is a declared bounded-by-design sub-path: neither checked nor
// traversed.
//
//lint:allow boundedstate -- output size capped by the region set
func (d *D) rebuild(x int) {
	d.hist = append(d.hist, x)
}

// RestoreSnapshot legitimately rebuilds state: cold by contract.
func (d *D) RestoreSnapshot(xs []int) {
	d.hist = append(d.hist[:0], xs...)
	for i, x := range xs {
		d.idx[i] = x
	}
}
