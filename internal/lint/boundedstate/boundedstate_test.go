package boundedstate_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/boundedstate"
)

func TestBoundedState(t *testing.T) {
	analysistest.Run(t, ".", boundedstate.Analyzer, "bounded/decl", "bounded/det")
}
