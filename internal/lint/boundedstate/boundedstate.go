// Package boundedstate turns the soak harness's bounded-memory invariant
// into a compile-time check: a long-lived detector must not accumulate
// unbounded history, or always-on monitoring (the paper's premise) leaks
// until the host process dies. Concretely: slice and map fields in the
// state closure of any detector type — a type with an ObserveInterval,
// ObserveBatch, or ProcessOverflow method, plus everything its fields
// transitively reach — may not grow on the monitoring hot path. Growth
// sites flagged: `append` rooted at such a field, and map-index writes to
// one, inside any function statically reachable from the three entry
// methods.
//
// This is the suite's showcase of the cross-package fact layer: the
// detector type usually lives *downstream* of the state it borrows
// (region.Monitor's closure includes stats scratch buffers), so the Facts
// pre-pass walks every detector's field-type closure and exports a
// StateField fact on each growable field — wherever it is declared — and
// the Run phase then fires on growth sites in whatever package they
// occur.
//
// Escapes:
//
//   - //lint:bounded on a field: growth is bounded by construction
//     (ring buffers like stats.Series.buf, scratch reused via [:0],
//     epoch-rebuild outputs whose size is capped by the region set);
//   - //lint:allow boundedstate on a function's doc comment: the walk
//     neither checks nor traverses it (declared cold or bounded-by-design
//     sub-paths, mirroring hotpath's convention);
//   - Snapshot/Restore/AppendSnapshot/RestoreSnapshot are cold by
//     contract and never traversed — restore legitimately rebuilds state
//     slices.
package boundedstate

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"

	"regionmon/internal/lint/analysis"
)

const name = "boundedstate"

var Analyzer = &analysis.Analyzer{
	Name:  name,
	Doc:   "slice/map fields reachable from detector state may not grow on the monitoring hot path; bound them or mark //lint:bounded",
	Facts: exportFacts,
	Run:   run,
}

// rootNames are the detector entry points whose call graphs constitute
// the monitoring hot path.
var rootNames = map[string]bool{
	"ObserveInterval": true,
	"ObserveBatch":    true,
	"ProcessOverflow": true,
}

// coldNames are checkpointing methods, cold by contract: restore
// legitimately rebuilds state slices.
var coldNames = map[string]bool{
	"Snapshot":        true,
	"Restore":         true,
	"AppendSnapshot":  true,
	"RestoreSnapshot": true,
}

// StateField marks a slice or map field as long-lived detector state.
// Exported by the Facts pre-pass from the detector's package, possibly
// onto fields declared upstream.
type StateField struct {
	// Owner is the package-qualified struct declaring the field.
	Owner string
	// Detector is the (lexically first) detector type whose state
	// closure reached the field.
	Detector string
}

func (*StateField) AFact() {}

// factsMu serializes the read-modify-write merge of StateField facts when
// parallel packages' Facts passes reach the same field.
var factsMu sync.Mutex

// exportFacts walks every detector type declared in this package and
// exports a StateField fact for each growable field in its state closure.
func exportFacts(pass *analysis.Pass) error {
	detectors := detectorTypes(pass)
	if len(detectors) == 0 {
		return nil
	}
	bounded := analysis.MarkedFields(pass.Fset, pass.Module, "bounded")
	module := make(map[*types.Package]bool, len(pass.Module))
	for _, pkg := range pass.Module {
		module[pkg.Types] = true
	}
	for _, tn := range detectors {
		w := &walker{
			pass:     pass,
			bounded:  bounded,
			module:   module,
			detector: tn.Pkg().Name() + "." + tn.Name(),
			visited:  make(map[*types.Named]bool),
		}
		w.walkType(tn.Type())
	}
	return nil
}

// detectorTypes returns this package's detector types (receiver base
// types of the root methods), sorted by position.
func detectorTypes(pass *analysis.Pass) []*types.TypeName {
	seen := make(map[*types.TypeName]bool)
	var out []*types.TypeName
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !rootNames[fd.Name.Name] {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if tn := analysis.NamedOrPointee(fn.Type().(*types.Signature).Recv().Type()); tn != nil && !seen[tn] {
				seen[tn] = true
				out = append(out, tn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// walker accumulates one detector's state closure.
type walker struct {
	pass     *analysis.Pass
	bounded  map[*types.Var]bool
	module   map[*types.Package]bool
	detector string
	visited  map[*types.Named]bool
}

// walkType descends through pointers, containers, and module-local named
// structs, exporting facts on growable fields as it goes.
func (w *walker) walkType(t types.Type) {
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		w.walkType(t.Elem())
	case *types.Slice:
		w.walkType(t.Elem())
	case *types.Array:
		w.walkType(t.Elem())
	case *types.Map:
		w.walkType(t.Key())
		w.walkType(t.Elem())
	case *types.Named:
		tn := t.Obj()
		if tn.Pkg() == nil || !w.module[tn.Pkg()] || w.visited[t] {
			return
		}
		w.visited[t] = true
		if st, ok := t.Underlying().(*types.Struct); ok {
			owner := tn.Pkg().Name() + "." + tn.Name()
			for i := 0; i < st.NumFields(); i++ {
				w.walkField(owner, st.Field(i))
			}
		}
	}
}

// walkField exports a fact if the field is growable, then descends into
// its type.
func (w *walker) walkField(owner string, v *types.Var) {
	switch types.Unalias(v.Type()).Underlying().(type) {
	case *types.Slice, *types.Map:
		if !w.bounded[v] {
			w.exportMerged(v, owner)
		}
	}
	w.walkType(v.Type())
}

// exportMerged records a StateField fact, keeping the lexically smallest
// detector label when several detectors' closures reach the same field —
// the end state is deterministic regardless of package schedule.
func (w *walker) exportMerged(v *types.Var, owner string) {
	factsMu.Lock()
	defer factsMu.Unlock()
	var existing StateField
	if w.pass.ImportObjectFact(v, &existing) && existing.Detector <= w.detector {
		return
	}
	w.pass.ExportObjectFact(v, &StateField{Owner: owner, Detector: w.detector})
}

func run(pass *analysis.Pass) error {
	ix := analysis.IndexFuncs(pass.Fset, pass.Module)
	roots := ix.Methods(func(n string) bool { return rootNames[n] })
	for fn, via := range ix.Reachable(roots, name, coldNames) {
		fd, ok := ix.Decl(fn)
		if !ok || fd.Pkg != pass.Pkg {
			continue
		}
		checkBody(pass, fd, via)
	}
	return nil
}

// checkBody flags growth sites on state fields in one hot-reachable
// function.
func checkBody(pass *analysis.Pass, fd analysis.FuncDecl, via string) {
	info := fd.Pkg.Info
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if v, fact := stateField(pass, info, n.Args[0]); v != nil {
						pass.Reportf(n.Pos(), "append grows detector state field %s.%s (state of %s, reachable from %s); bound it like stats.Series or mark the field //lint:bounded", fact.Owner, v.Name(), fact.Detector, via)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkMapWrite(pass, info, lhs, via)
			}
		case *ast.IncDecStmt:
			checkMapWrite(pass, info, n.X, via)
		}
		return true
	})
}

// checkMapWrite flags an index write to a state map field (writes to an
// existing slice index don't grow anything and pass).
func checkMapWrite(pass *analysis.Pass, info *types.Info, lhs ast.Expr, via string) {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	v, fact := stateField(pass, info, ix.X)
	if v == nil {
		return
	}
	if _, isMap := types.Unalias(v.Type()).Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(lhs.Pos(), "map write grows detector state field %s.%s (state of %s, reachable from %s); bound it or mark the field //lint:bounded", fact.Owner, v.Name(), fact.Detector, via)
}

// stateField resolves an expression to a struct field carrying a
// StateField fact, peeling reslices (s.buf[:0]) and parens.
func stateField(pass *analysis.Pass, info *types.Info, e ast.Expr) (*types.Var, *StateField) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				var fact StateField
				if pass.ImportObjectFact(v, &fact) {
					return v, &fact
				}
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}
