package lint_test

import (
	"os"
	"testing"

	"regionmon/internal/lint"
)

// infrastructure are the non-analyzer directories under internal/lint.
var infrastructure = map[string]bool{
	"analysis":     true,
	"analysistest": true,
	"loader":       true,
}

// TestSuiteCoversAllAnalyzerDirs derives the expected analyzer set from
// the filesystem: every analyzer package under internal/lint must be
// registered in Suite() under its directory name, so a new analyzer
// cannot be written and then silently left out of CI.
func TestSuiteCoversAllAnalyzerDirs(t *testing.T) {
	registered := make(map[string]bool)
	for _, a := range lint.Suite() {
		if registered[a.Name] {
			t.Errorf("Suite() registers analyzer %q twice", a.Name)
		}
		registered[a.Name] = true
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := 0
	for _, e := range entries {
		if !e.IsDir() || infrastructure[e.Name()] {
			continue
		}
		dirs++
		if !registered[e.Name()] {
			t.Errorf("analyzer directory %q is not registered in Suite(); add it so CI runs it", e.Name())
		}
	}
	if len(lint.Suite()) != dirs {
		t.Errorf("Suite() has %d analyzers but internal/lint has %d analyzer directories", len(lint.Suite()), dirs)
	}
}
