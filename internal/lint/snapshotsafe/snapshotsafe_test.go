package snapshotsafe_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/snapshotsafe"
)

func TestSnapshotSafe(t *testing.T) {
	analysistest.Run(t, ".", snapshotsafe.Analyzer, "snapsafe")
}

func TestSnapshotSafeNoPair(t *testing.T) {
	analysistest.Run(t, ".", snapshotsafe.Analyzer, "snapsafenopair")
}
