// Package snapshotsafe turns the snapshot fork-equality tests into a
// compile-time completeness check: every type that participates in the
// checkpoint contract — it implements AppendSnapshot/RestoreSnapshot or
// Snapshot/Restore, or its declaration is marked //lint:snapshot — must
// account for every struct field. A field is accounted for when it is
// referenced on both the encode path and the decode path (the method body
// or anything it statically calls), or when it is explicitly annotated
// //lint:config (configuration fixed at construction time, deliberately
// not serialized). The failure mode this catches is "added a field, forgot
// the snapshot": fork-equality tests only see it when the field happens to
// vary between fork and original, while this check fires on every build.
//
// Also reported: asymmetric pairs (a type with AppendSnapshot but no
// RestoreSnapshot, or Snapshot without Restore) — half a checkpoint
// contract is a restore that silently loses state.
//
// Types marked //lint:snapshot without their own method pair (plain data
// structs serialized field-by-field inside an owner's snapshot methods,
// like region.Region inside Monitor's) are checked against the union of
// every pair closure in their package.
//
// Escapes: //lint:config on a field; //lint:allow snapshotsafe on a
// flagged line or on a method's doc comment (which also stops the
// traversal into it, mirroring hotpath's cold-path convention).
package snapshotsafe

import (
	"go/ast"
	"go/types"
	"sort"

	"regionmon/internal/lint/analysis"
)

const name = "snapshotsafe"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "every field of a snapshotting type must be referenced on both the encode and decode paths or be marked //lint:config",
	Run:  run,
}

// pairNames lists each encode method with its decode partner, in the
// order the checks run.
var pairNames = [...]struct{ enc, dec string }{
	{"AppendSnapshot", "RestoreSnapshot"},
	{"Snapshot", "Restore"},
}

// snapMethods is one type's snapshot-contract methods by name.
type snapMethods map[string]*types.Func

func run(pass *analysis.Pass) error {
	ix := analysis.IndexFuncs(pass.Fset, pass.Module)
	config := analysis.MarkedFields(pass.Fset, pass.Module, "config")
	marked := analysis.MarkedTypes(pass.Fset, pass.Module, "snapshot")

	byType := collectSnapMethods(pass)
	typeNames := make([]*types.TypeName, 0, len(byType))
	for tn := range byType {
		typeNames = append(typeNames, tn)
	}
	sort.Slice(typeNames, func(i, j int) bool { return typeNames[i].Pos() < typeNames[j].Pos() })

	refs := newRefCache(ix)
	// Union closures across the package's pairs, for //lint:snapshot types
	// serialized by an owner's methods rather than their own.
	pkgEnc := make(map[*types.Var]bool)
	pkgDec := make(map[*types.Var]bool)
	hasPair := false

	for _, tn := range typeNames {
		m := byType[tn]
		var encRoots, decRoots []*types.Func
		for _, p := range pairNames {
			switch {
			case m[p.enc] != nil && m[p.dec] == nil:
				pass.Reportf(m[p.enc].Pos(), "%s.%s has %s but no %s: half a checkpoint contract", tn.Pkg().Name(), tn.Name(), p.enc, p.dec)
			case m[p.enc] == nil && m[p.dec] != nil:
				pass.Reportf(m[p.dec].Pos(), "%s.%s has %s but no %s: half a checkpoint contract", tn.Pkg().Name(), tn.Name(), p.dec, p.enc)
			case m[p.enc] != nil:
				encRoots = append(encRoots, m[p.enc])
				decRoots = append(decRoots, m[p.dec])
			}
		}
		if len(encRoots) == 0 {
			continue
		}
		hasPair = true
		enc := refs.closure(encRoots)
		dec := refs.closure(decRoots)
		for v := range enc {
			pkgEnc[v] = true
		}
		for v := range dec {
			pkgDec[v] = true
		}
		checkFields(pass, tn, enc, dec, config)
	}

	// //lint:snapshot types in this package without their own pair.
	var orphans []*types.TypeName
	for tn := range marked {
		if tn.Pkg() != pass.Pkg.Types {
			continue
		}
		if m := byType[tn]; m != nil && (m["AppendSnapshot"] != nil || m["Snapshot"] != nil) {
			continue // has its own pair; already checked above
		}
		orphans = append(orphans, tn)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Pos() < orphans[j].Pos() })
	for _, tn := range orphans {
		if !hasPair {
			pass.Reportf(tn.Pos(), "%s marked //lint:snapshot but package %s defines no snapshot method pair to serialize it", tn.Name(), pass.Pkg.Types.Name())
			continue
		}
		checkFields(pass, tn, pkgEnc, pkgDec, config)
	}
	return nil
}

// collectSnapMethods groups this package's snapshot-contract methods by
// receiver type.
func collectSnapMethods(pass *analysis.Pass) map[*types.TypeName]snapMethods {
	interesting := map[string]bool{}
	for _, p := range pairNames {
		interesting[p.enc], interesting[p.dec] = true, true
	}
	out := make(map[*types.TypeName]snapMethods)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !interesting[fd.Name.Name] {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			tn := analysis.NamedOrPointee(fn.Type().(*types.Signature).Recv().Type())
			if tn == nil {
				continue
			}
			if out[tn] == nil {
				out[tn] = make(snapMethods)
			}
			out[tn][fd.Name.Name] = fn
		}
	}
	return out
}

// checkFields verifies every field of tn's struct against the encode and
// decode reference sets.
func checkFields(pass *analysis.Pass, tn *types.TypeName, enc, dec map[*types.Var]bool, config map[*types.Var]bool) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		v := st.Field(i)
		if config[v] {
			continue
		}
		inEnc, inDec := enc[v], dec[v]
		switch {
		case !inEnc && !inDec:
			pass.Reportf(v.Pos(), "field %s.%s is on neither snapshot path: serialize it or mark it //lint:config", tn.Name(), v.Name())
		case !inEnc:
			pass.Reportf(v.Pos(), "field %s.%s is restored but never encoded: the snapshot is incomplete", tn.Name(), v.Name())
		case !inDec:
			pass.Reportf(v.Pos(), "field %s.%s is encoded but never restored: a restore silently loses it", tn.Name(), v.Name())
		}
	}
}

// refCache memoizes per-function field-reference sets and assembles
// closure unions over the static call graph.
type refCache struct {
	ix    *analysis.FuncIndex
	perFn map[*types.Func]map[*types.Var]bool
}

func newRefCache(ix *analysis.FuncIndex) *refCache {
	return &refCache{ix: ix, perFn: make(map[*types.Func]map[*types.Var]bool)}
}

// closure unions the field references of every function statically
// reachable from the roots. Traversal stops at functions whose doc allows
// this analyzer.
func (rc *refCache) closure(roots []*types.Func) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for fn := range rc.ix.Reachable(roots, name, nil) {
		for v := range rc.fieldRefs(fn) {
			out[v] = true
		}
	}
	return out
}

// fieldRefs collects every struct field referenced in fn's body: selector
// idents, struct-literal keys — anything the type checker resolves to a
// field *types.Var.
func (rc *refCache) fieldRefs(fn *types.Func) map[*types.Var]bool {
	if refs, ok := rc.perFn[fn]; ok {
		return refs
	}
	refs := make(map[*types.Var]bool)
	rc.perFn[fn] = refs
	fd, ok := rc.ix.Decl(fn)
	if !ok {
		return refs
	}
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := fd.Pkg.Info.Uses[id].(*types.Var); ok && v.IsField() {
			refs[v] = true
		}
		return true
	})
	return refs
}
