// Package snapsafe exercises the snapshotsafe analyzer: complete pairs,
// dropped fields on each path, //lint:config exemptions, asymmetric
// pairs, and //lint:snapshot types serialized by an owner.
package snapsafe

// Det has a complete AppendSnapshot/RestoreSnapshot pair with one field
// deliberately dropped from each path.
type Det struct {
	n       int
	total   int
	cfg     int //lint:config -- fixed at construction
	lost    int // want "field Det.lost is on neither snapshot path"
	encOnly int // want "field Det.encOnly is encoded but never restored"
	decOnly int // want "field Det.decOnly is restored but never encoded"
}

func (d *Det) AppendSnapshot(buf []byte) []byte {
	buf = append(buf, byte(d.n), byte(d.encOnly))
	return d.appendTotal(buf)
}

// appendTotal is a helper on the encode path: fields it references count
// as encoded.
func (d *Det) appendTotal(buf []byte) []byte {
	return append(buf, byte(d.total))
}

func (d *Det) RestoreSnapshot(buf []byte) {
	d.n = int(buf[0])
	d.total = int(buf[1])
	d.decOnly = int(buf[2])
}

// Half has only one side of the contract.
type Half struct {
	x int
}

func (h *Half) AppendSnapshot(buf []byte) []byte { // want "snapsafe.Half has AppendSnapshot but no RestoreSnapshot"
	return append(buf, byte(h.x))
}

// Rec has no methods of its own; Owner serializes it field-by-field, so
// the //lint:snapshot mark checks its fields against Owner's closures.
//
//lint:snapshot
type Rec struct {
	a int
	b int // want "field Rec.b is on neither snapshot path"
}

// Owner snapshots its Rec slice.
type Owner struct {
	recs []Rec
}

func (o *Owner) AppendSnapshot(buf []byte) []byte {
	for _, r := range o.recs {
		buf = append(buf, byte(r.a))
	}
	return buf
}

func (o *Owner) RestoreSnapshot(buf []byte) {
	o.recs = append(o.recs[:0], Rec{a: int(buf[0])})
}

// Allowed shows line-level suppression on a field.
type Allowed struct {
	skipme int //lint:allow snapshotsafe -- migrated separately
}

func (a *Allowed) Snapshot() []byte   { return nil }
func (a *Allowed) Restore(buf []byte) {}
