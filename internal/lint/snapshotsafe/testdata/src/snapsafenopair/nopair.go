// Package snapsafenopair holds a //lint:snapshot type in a package with
// no snapshot method pair at all: the mark is a promise nothing keeps.
package snapsafenopair

//lint:snapshot
type Orphan struct { // want "Orphan marked //lint:snapshot but package snapsafenopair defines no snapshot method pair"
	x int
}
