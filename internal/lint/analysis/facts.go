package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// Fact is a typed, analyzer-produced statement about a types.Object,
// mirroring golang.org/x/tools/go/analysis facts: an analyzer running on
// the package that declares an object can export a fact about it, and any
// later pass — the same analyzer on a downstream package, or a downstream
// analyzer in the suite — can import it. Facts are how cross-package
// invariants travel: boundedstate marks which struct fields are long-lived
// detector state, atomicpair marks which fields demand sync/atomic access,
// and the consuming checks fire wherever those objects are touched.
//
// Implementations must be pointer types; AFact is a marker method.
type Fact interface{ AFact() }

// ObjectFact pairs an object with one exported fact about it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factKey identifies one fact: facts are keyed by (object, concrete fact
// type), so distinct fact types about the same object coexist.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// factStore is the run-wide fact table shared by every pass. The runner's
// scheduling (the facts phase completes over every package before any
// check phase starts, and check phases execute in dependency order) makes
// reads-after-writes deterministic; the mutex only guards concurrent
// access from parallel same-wave passes.
type factStore struct {
	mu sync.Mutex
	m  map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]Fact)}
}

// factType validates a fact value (non-nil pointer to struct) and returns
// its concrete type.
func factType(fact Fact) reflect.Type {
	if fact == nil {
		panic("analysis: nil Fact")
	}
	t := reflect.TypeOf(fact)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer type", fact))
	}
	return t
}

// set stores a copy of fact for obj.
func (s *factStore) set(obj types.Object, fact Fact) {
	t := factType(fact)
	cp := reflect.New(t.Elem())
	cp.Elem().Set(reflect.ValueOf(fact).Elem())
	s.mu.Lock()
	s.m[factKey{obj, t}] = cp.Interface().(Fact)
	s.mu.Unlock()
}

// get copies the stored fact of fact's type for obj into fact, reporting
// whether one was found.
func (s *factStore) get(obj types.Object, fact Fact) bool {
	t := factType(fact)
	s.mu.Lock()
	stored, ok := s.m[factKey{obj, t}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportObjectFact records a fact about obj, visible to every later pass
// (same-package downstream analyzers immediately; other packages once
// their passes run). Unlike go/analysis, the object need not belong to
// the pass's own package: the module loads in one process, so a pass that
// discovers a cross-package relationship (a detector type whose state
// closure reaches an upstream package's fields) may mark the foreign
// object directly.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	p.facts.set(obj, fact)
}

// ImportObjectFact copies the fact of fact's concrete type about obj into
// fact, reporting whether one had been exported.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.get(obj, fact)
}
