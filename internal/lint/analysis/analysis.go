// Package analysis is the phaselint analyzer framework: a deliberately
// small, dependency-free mirror of the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic), plus the comment-directive
// machinery the suite's allowlists are built on.
//
// Directives recognised module-wide:
//
//	//lint:single-owner         on a type declaration: values of the type
//	                            must stay confined to one goroutine
//	                            (enforced by the singleowner analyzer).
//	//lint:payload              on a type declaration: the type is a
//	                            registered pipeline.Verdict payload
//	                            (enforced by the payloadswitch analyzer).
//	//lint:allow <name> [why]   on or immediately above a flagged line, or
//	                            in the doc comment of the enclosing
//	                            function: suppress the named analyzer
//	                            there. On a function's doc comment the
//	                            hotpath analyzer additionally treats the
//	                            whole function as a cold sub-path and does
//	                            not traverse into it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"

	"regionmon/internal/lint/loader"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives.
	Name string
	// Doc describes what the analyzer enforces.
	Doc string
	// Facts, when non-nil, is the analyzer's export-only pre-pass: it
	// runs over every module package before any analyzer's Run phase
	// starts, so facts it exports are visible to every Run pass
	// regardless of package dependency direction (a detector type in a
	// downstream package can mark state fields it borrows from an
	// upstream one).
	Facts func(*Pass) error
	// Run analyzes one package.
	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes it.
	Message string
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset is the shared position table.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *loader.Package
	// Module holds every module package (for analyzers needing
	// cross-package context: marked types, static call graphs).
	Module []*loader.Package

	facts  *factStore
	report func(Diagnostic)
}

// Report records a diagnostic (dropped by the runner when an
// //lint:allow directive covers it).
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding pairs a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer   *Analyzer
	Diagnostic Diagnostic
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position, parallelized over GOMAXPROCS workers.
// //lint:allow directives are honoured here, centrally, so individual
// analyzers never re-implement suppression.
func Run(prog *loader.Program, analyzers []*Analyzer) ([]Finding, error) {
	return RunParallel(prog, analyzers, runtime.GOMAXPROCS(0))
}

// runner drives one Run/RunParallel invocation: a shared fact store, the
// per-package allow indexes, and the finding/error sinks the parallel
// passes write through.
type runner struct {
	prog      *loader.Program
	analyzers []*Analyzer
	facts     *factStore
	allow     map[*loader.Package]*allowIndex

	mu       sync.Mutex
	findings []Finding
	errs     map[unitKey]error
}

// unitKey identifies one (package, analyzer) unit of work for
// deterministic error selection.
type unitKey struct {
	pkgPath  string
	analyzer int
}

// RunParallel is Run with an explicit worker bound. Packages are analyzed
// in dependency waves — a package runs only after every module package it
// imports — with the packages inside a wave fanned out across at most
// workers goroutines and the suite's analyzers applied in order within
// each package. Two phases keep facts coherent in both directions: every
// analyzer's Facts hook runs over the whole module first, then every Run.
// Findings are position-sorted and errors are selected deterministically,
// so the output is byte-identical at any worker count.
func RunParallel(prog *loader.Program, analyzers []*Analyzer, workers int) ([]Finding, error) {
	if workers < 1 {
		workers = 1
	}
	r := &runner{
		prog:      prog,
		analyzers: analyzers,
		facts:     newFactStore(),
		allow:     make(map[*loader.Package]*allowIndex, len(prog.Packages)),
		errs:      make(map[unitKey]error),
	}
	for _, pkg := range prog.Packages {
		r.allow[pkg] = newAllowIndex(prog.Fset, pkg)
	}
	waves := dependencyWaves(prog)

	hasFacts := false
	for _, a := range analyzers {
		if a.Facts != nil {
			hasFacts = true
		}
	}
	if hasFacts {
		r.runPhase(waves, workers, true)
	}
	r.runPhase(waves, workers, false)

	if err := r.firstError(); err != nil {
		return nil, err
	}
	sort.SliceStable(r.findings, func(i, j int) bool {
		pi := prog.Fset.Position(r.findings[i].Diagnostic.Pos)
		pj := prog.Fset.Position(r.findings[j].Diagnostic.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return r.findings, nil
}

// runPhase applies one phase (Facts or Run) of every analyzer to every
// package, wave by wave.
func (r *runner) runPhase(waves [][]*loader.Package, workers int, factsPhase bool) {
	sem := make(chan struct{}, workers)
	for _, wave := range waves {
		var wg sync.WaitGroup
		for _, pkg := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(pkg *loader.Package) {
				defer func() { <-sem; wg.Done() }()
				r.runPackage(pkg, factsPhase)
			}(pkg)
		}
		wg.Wait()
	}
}

// runPackage applies the suite to one package, analyzers in suite order.
func (r *runner) runPackage(pkg *loader.Package, factsPhase bool) {
	for i, a := range r.analyzers {
		hook := a.Run
		if factsPhase {
			hook = a.Facts
		}
		if hook == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     r.prog.Fset,
			Pkg:      pkg,
			Module:   r.prog.Packages,
			facts:    r.facts,
		}
		pass.report = func(d Diagnostic) {
			if r.allow[pkg].allowed(a.Name, d.Pos) {
				return
			}
			r.mu.Lock()
			r.findings = append(r.findings, Finding{Analyzer: a, Diagnostic: d})
			r.mu.Unlock()
		}
		if err := hook(pass); err != nil {
			r.mu.Lock()
			key := unitKey{pkg.ImportPath, i}
			if _, dup := r.errs[key]; !dup {
				r.errs[key] = fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			r.mu.Unlock()
		}
	}
}

// firstError picks the error of the lexically-first failing unit, so a
// parallel run reports the same error a sequential one would.
func (r *runner) firstError() error {
	if len(r.errs) == 0 {
		return nil
	}
	keys := make([]unitKey, 0, len(r.errs))
	for k := range r.errs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkgPath != keys[j].pkgPath {
			return keys[i].pkgPath < keys[j].pkgPath
		}
		return keys[i].analyzer < keys[j].analyzer
	})
	return r.errs[keys[0]]
}

// dependencyWaves groups the module's packages into topological levels:
// every package lands one wave after the deepest module package it
// imports, so intra-wave packages are independent and safe to analyze
// concurrently while facts flow strictly wave-to-wave.
func dependencyWaves(prog *loader.Program) [][]*loader.Package {
	byPath := make(map[string]*loader.Package, len(prog.Packages))
	for _, pkg := range prog.Packages {
		byPath[pkg.ImportPath] = pkg
	}
	level := make(map[*loader.Package]int, len(prog.Packages))
	var levelOf func(p *loader.Package) int
	levelOf = func(p *loader.Package) int {
		if l, ok := level[p]; ok {
			return l
		}
		level[p] = 0 // cycle guard; the loader rejects real cycles
		max := 0
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				if l := levelOf(dep) + 1; l > max {
					max = l
				}
			}
		}
		level[p] = max
		return max
	}
	deepest := 0
	for _, pkg := range prog.Packages {
		if l := levelOf(pkg); l > deepest {
			deepest = l
		}
	}
	waves := make([][]*loader.Package, deepest+1)
	for _, pkg := range prog.Packages {
		waves[level[pkg]] = append(waves[level[pkg]], pkg)
	}
	return waves
}

// directive is one parsed //lint: comment.
type directive struct {
	verb string // "allow", "single-owner", "payload", ...
	args []string
	line int
}

// parseDirective extracts a //lint: directive from one comment line.
func parseDirective(text string) (directive, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lint:") {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, "lint:")
	// Anything after " -- " is a human-readable reason.
	if i := strings.Index(rest, " -- "); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return directive{}, false
	}
	return directive{verb: fields[0], args: fields[1:]}, true
}

// commentDirectives yields every //lint: directive in a comment group.
func commentDirectives(fset *token.FileSet, cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c.Text); ok {
			d.line = fset.Position(c.Pos()).Line
			out = append(out, d)
		}
	}
	return out
}

// allowIndex answers "is this analyzer allowed at this position" for one
// package: a set of (analyzer, file, line) keys from inline comments plus
// the doc-directives of enclosing functions.
type allowIndex struct {
	fset    *token.FileSet
	pkg     *loader.Package
	lineSet map[string]bool // keyed "analyzer\x00file:line"
}

func lineKey(pos token.Position) string { return fmt.Sprintf("%s:%d", pos.Filename, pos.Line) }

func newAllowIndex(fset *token.FileSet, pkg *loader.Package) *allowIndex {
	ai := &allowIndex{fset: fset, pkg: pkg, lineSet: make(map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, d := range commentDirectives(fset, cg) {
				if d.verb != "allow" {
					continue
				}
				for _, name := range d.args {
					pos := fset.Position(cg.Pos())
					// The directive covers its own line and, when it
					// stands alone above a statement, the following one;
					// recording both lets it be written either trailing
					// or preceding the flagged construct.
					ai.lineSet[name+"\x00"+lineKey(token.Position{Filename: pos.Filename, Line: d.line})] = true
					ai.lineSet[name+"\x00"+lineKey(token.Position{Filename: pos.Filename, Line: d.line + 1})] = true
				}
			}
		}
	}
	return ai
}

func (ai *allowIndex) allowed(analyzer string, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := ai.fset.Position(pos)
	if ai.lineSet[analyzer+"\x00"+lineKey(p)] {
		return true
	}
	// Function-level allow: the enclosing FuncDecl's doc comment.
	for _, f := range ai.pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !(fd.Pos() <= pos && pos <= fd.End()) {
					continue
				}
				if FuncAllows(ai.fset, fd, analyzer) {
					return true
				}
			}
		}
	}
	return false
}

// FuncAllows reports whether fn's doc comment carries
// //lint:allow <analyzer>.
func FuncAllows(fset *token.FileSet, fn *ast.FuncDecl, analyzer string) bool {
	for _, d := range commentDirectives(fset, fn.Doc) {
		if d.verb == "allow" {
			for _, a := range d.args {
				if a == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// CommentArgs returns the arguments of the first //lint:<verb> directive
// in the comment group (e.g. the core name in //lint:wraps ObserveBatch),
// reporting whether one was present.
func CommentArgs(fset *token.FileSet, cg *ast.CommentGroup, verb string) ([]string, bool) {
	for _, d := range commentDirectives(fset, cg) {
		if d.verb == verb {
			return d.args, true
		}
	}
	return nil, false
}

// MarkedTypes scans every module package for type declarations whose doc
// comment carries the given //lint:<verb> directive and returns their
// *types.TypeName objects (e.g. verb "single-owner" or "payload").
func MarkedTypes(fset *token.FileSet, module []*loader.Package, verb string) map[*types.TypeName]bool {
	marked := make(map[*types.TypeName]bool)
	for _, pkg := range module {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasVerb(fset, gd.Doc, verb) || hasVerb(fset, ts.Doc, verb) || hasVerb(fset, ts.Comment, verb) {
						if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							marked[obj] = true
						}
					}
				}
			}
		}
	}
	return marked
}

// MarkedFields scans every module package for struct fields whose doc or
// trailing line comment carries the given //lint:<verb> directive and
// returns their *types.Var objects (e.g. verb "config", "bounded",
// "atomic"). Embedded fields are matched through their type name.
func MarkedFields(fset *token.FileSet, module []*loader.Package, verb string) map[*types.Var]bool {
	marked := make(map[*types.Var]bool)
	for _, pkg := range module {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					if !hasVerb(fset, field.Doc, verb) && !hasVerb(fset, field.Comment, verb) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							marked[v] = true
						}
					}
					if len(field.Names) == 0 { // embedded field
						if id := embeddedIdent(field.Type); id != nil {
							if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
								marked[v] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return marked
}

// embeddedIdent returns the name ident of an embedded field's type
// expression (unwrapping pointers and package qualifiers).
func embeddedIdent(expr ast.Expr) *ast.Ident {
	switch e := expr.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

func hasVerb(fset *token.FileSet, cg *ast.CommentGroup, verb string) bool {
	for _, d := range commentDirectives(fset, cg) {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// NamedOrPointee unwraps one level of pointer and reports the named type's
// TypeName, or nil. Aliases are resolved through types.Unalias.
func NamedOrPointee(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// TypeNames renders a sorted, comma-separated list of package-qualified
// type names (for diagnostics).
func TypeNames(objs []*types.TypeName) string {
	names := make([]string, 0, len(objs))
	for _, o := range objs {
		if o.Pkg() != nil {
			names = append(names, o.Pkg().Name()+"."+o.Name())
		} else {
			names = append(names, o.Name())
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
