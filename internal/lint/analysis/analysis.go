// Package analysis is the phaselint analyzer framework: a deliberately
// small, dependency-free mirror of the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic), plus the comment-directive
// machinery the suite's allowlists are built on.
//
// Directives recognised module-wide:
//
//	//lint:single-owner         on a type declaration: values of the type
//	                            must stay confined to one goroutine
//	                            (enforced by the singleowner analyzer).
//	//lint:payload              on a type declaration: the type is a
//	                            registered pipeline.Verdict payload
//	                            (enforced by the payloadswitch analyzer).
//	//lint:allow <name> [why]   on or immediately above a flagged line, or
//	                            in the doc comment of the enclosing
//	                            function: suppress the named analyzer
//	                            there. On a function's doc comment the
//	                            hotpath analyzer additionally treats the
//	                            whole function as a cold sub-path and does
//	                            not traverse into it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"regionmon/internal/lint/loader"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives.
	Name string
	// Doc describes what the analyzer enforces.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes it.
	Message string
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset is the shared position table.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *loader.Package
	// Module holds every module package (for analyzers needing
	// cross-package context: marked types, static call graphs).
	Module []*loader.Package

	report func(Diagnostic)
}

// Report records a diagnostic (dropped by the runner when an
// //lint:allow directive covers it).
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding pairs a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer   *Analyzer
	Diagnostic Diagnostic
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. //lint:allow directives are honoured here,
// centrally, so individual analyzers never re-implement suppression.
func Run(prog *loader.Program, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range prog.Packages {
		allow := newAllowIndex(prog.Fset, pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Pkg:      pkg,
				Module:   prog.Packages,
			}
			pass.report = func(d Diagnostic) {
				if allow.allowed(a.Name, d.Pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a, Diagnostic: d})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi := prog.Fset.Position(findings[i].Diagnostic.Pos)
		pj := prog.Fset.Position(findings[j].Diagnostic.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, nil
}

// directive is one parsed //lint: comment.
type directive struct {
	verb string // "allow", "single-owner", "payload", ...
	args []string
	line int
}

// parseDirective extracts a //lint: directive from one comment line.
func parseDirective(text string) (directive, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lint:") {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, "lint:")
	// Anything after " -- " is a human-readable reason.
	if i := strings.Index(rest, " -- "); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return directive{}, false
	}
	return directive{verb: fields[0], args: fields[1:]}, true
}

// commentDirectives yields every //lint: directive in a comment group.
func commentDirectives(fset *token.FileSet, cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c.Text); ok {
			d.line = fset.Position(c.Pos()).Line
			out = append(out, d)
		}
	}
	return out
}

// allowIndex answers "is this analyzer allowed at this position" for one
// package: a set of (analyzer, file, line) keys from inline comments plus
// the doc-directives of enclosing functions.
type allowIndex struct {
	fset    *token.FileSet
	pkg     *loader.Package
	lineSet map[string]bool // keyed "analyzer\x00file:line"
}

func lineKey(pos token.Position) string { return fmt.Sprintf("%s:%d", pos.Filename, pos.Line) }

func newAllowIndex(fset *token.FileSet, pkg *loader.Package) *allowIndex {
	ai := &allowIndex{fset: fset, pkg: pkg, lineSet: make(map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, d := range commentDirectives(fset, cg) {
				if d.verb != "allow" {
					continue
				}
				for _, name := range d.args {
					pos := fset.Position(cg.Pos())
					// The directive covers its own line and, when it
					// stands alone above a statement, the following one;
					// recording both lets it be written either trailing
					// or preceding the flagged construct.
					ai.lineSet[name+"\x00"+lineKey(token.Position{Filename: pos.Filename, Line: d.line})] = true
					ai.lineSet[name+"\x00"+lineKey(token.Position{Filename: pos.Filename, Line: d.line + 1})] = true
				}
			}
		}
	}
	return ai
}

func (ai *allowIndex) allowed(analyzer string, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := ai.fset.Position(pos)
	if ai.lineSet[analyzer+"\x00"+lineKey(p)] {
		return true
	}
	// Function-level allow: the enclosing FuncDecl's doc comment.
	for _, f := range ai.pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !(fd.Pos() <= pos && pos <= fd.End()) {
					continue
				}
				if FuncAllows(ai.fset, fd, analyzer) {
					return true
				}
			}
		}
	}
	return false
}

// FuncAllows reports whether fn's doc comment carries
// //lint:allow <analyzer>.
func FuncAllows(fset *token.FileSet, fn *ast.FuncDecl, analyzer string) bool {
	for _, d := range commentDirectives(fset, fn.Doc) {
		if d.verb == "allow" {
			for _, a := range d.args {
				if a == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// MarkedTypes scans every module package for type declarations whose doc
// comment carries the given //lint:<verb> directive and returns their
// *types.TypeName objects (e.g. verb "single-owner" or "payload").
func MarkedTypes(fset *token.FileSet, module []*loader.Package, verb string) map[*types.TypeName]bool {
	marked := make(map[*types.TypeName]bool)
	for _, pkg := range module {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasVerb(fset, gd.Doc, verb) || hasVerb(fset, ts.Doc, verb) || hasVerb(fset, ts.Comment, verb) {
						if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							marked[obj] = true
						}
					}
				}
			}
		}
	}
	return marked
}

func hasVerb(fset *token.FileSet, cg *ast.CommentGroup, verb string) bool {
	for _, d := range commentDirectives(fset, cg) {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// NamedOrPointee unwraps one level of pointer and reports the named type's
// TypeName, or nil. Aliases are resolved through types.Unalias.
func NamedOrPointee(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// TypeNames renders a sorted, comma-separated list of package-qualified
// type names (for diagnostics).
func TypeNames(objs []*types.TypeName) string {
	names := make([]string, 0, len(objs))
	for _, o := range objs {
		if o.Pkg() != nil {
			names = append(names, o.Pkg().Name()+"."+o.Name())
		} else {
			names = append(names, o.Name())
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
