package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"regionmon/internal/lint/loader"
)

// FuncDecl pairs a function declaration with its defining package.
type FuncDecl struct {
	Pkg  *loader.Package
	Decl *ast.FuncDecl
}

// FuncIndex is a module-wide table of declared functions, the substrate
// for the static call graphs that hotpath and boundedstate walk. Building
// it once per pass keeps the reachability analyses O(module), not
// O(module × packages).
type FuncIndex struct {
	fset  *token.FileSet
	funcs map[*types.Func]FuncDecl
}

// IndexFuncs indexes every function with a body declared anywhere in the
// module.
func IndexFuncs(fset *token.FileSet, module []*loader.Package) *FuncIndex {
	ix := &FuncIndex{fset: fset, funcs: make(map[*types.Func]FuncDecl)}
	for _, pkg := range module {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					ix.funcs[fn] = FuncDecl{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return ix
}

// Decl returns the declaration of a module function.
func (ix *FuncIndex) Decl(fn *types.Func) (FuncDecl, bool) {
	fd, ok := ix.funcs[fn]
	return fd, ok
}

// Methods returns every module method (receiver-bearing function) whose
// name satisfies the predicate, sorted by declaration position.
func (ix *FuncIndex) Methods(match func(name string) bool) []*types.Func {
	var out []*types.Func
	for fn, fd := range ix.funcs {
		if fd.Decl.Recv != nil && match(fn.Name()) {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// StaticCallees resolves a function's statically-known module callees:
// plain calls, method calls on concrete receivers, and method values
// (selectors used as arguments still put their body on the walked path if
// invoked). Interface methods resolve to abstract funcs with no
// declaration and drop out.
func (ix *FuncIndex) StaticCallees(fd FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		var id *ast.Ident
		switch e := n.(type) {
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
		case *ast.SelectorExpr:
			id = e.Sel
		}
		if id == nil {
			return true
		}
		if fn, ok := fd.Pkg.Info.Uses[id].(*types.Func); ok {
			if _, inModule := ix.funcs[fn]; inModule {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// Reachable BFS-walks the static call graph from the given roots and
// returns, for every reached function, the label of the root that first
// reached it (for diagnostics). The walk does not enter functions whose
// doc comment carries //lint:allow <analyzer> (declared cold or exempt
// sub-paths) nor methods whose name is in stop (cold by contract).
func (ix *FuncIndex) Reachable(roots []*types.Func, analyzer string, stop map[string]bool) map[*types.Func]string {
	// Sort roots by declaration position so the via labels (first root to
	// reach a shared callee) are stable run to run regardless of how the
	// caller collected them.
	roots = append([]*types.Func(nil), roots...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	reachedVia := make(map[*types.Func]string)
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := reachedVia[r]; ok {
			continue
		}
		fd, ok := ix.funcs[r]
		if !ok || FuncAllows(ix.fset, fd.Decl, analyzer) {
			continue
		}
		reachedVia[r] = FuncLabel(r)
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		via := reachedVia[fn]
		for _, callee := range ix.StaticCallees(ix.funcs[fn]) {
			if _, seen := reachedVia[callee]; seen {
				continue
			}
			cd := ix.funcs[callee]
			if FuncAllows(ix.fset, cd.Decl, analyzer) {
				continue
			}
			if stop[callee.Name()] {
				continue
			}
			reachedVia[callee] = via
			queue = append(queue, callee)
		}
	}
	return reachedVia
}

// FuncLabel renders pkg.Type.Method (or pkg.Func) for diagnostics.
func FuncLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if tn := NamedOrPointee(recv.Type()); tn != nil {
			return fn.Pkg().Name() + "." + tn.Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
