package atomicpair_test

import (
	"testing"

	"regionmon/internal/lint/analysistest"
	"regionmon/internal/lint/atomicpair"
)

func TestAtomicPair(t *testing.T) {
	analysistest.Run(t, ".", atomicpair.Analyzer, "atomicp/decl", "atomicp/use")
}
