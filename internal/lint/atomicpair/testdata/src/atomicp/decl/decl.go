// Package decl declares atomic-marked fields; its own methods show the
// sanctioned access forms and the in-package violations.
package decl

import "sync/atomic"

// Ring is an SPSC ring shared by a producer and a consumer goroutine.
type Ring struct {
	head atomic.Uint64 //lint:atomic
	Tail uint64        //lint:atomic
	n    int
}

// Publish uses both sanctioned forms: method on an atomic value, &field
// into a sync/atomic function.
func (r *Ring) Publish() {
	r.head.Store(r.head.Load() + 1)
	atomic.AddUint64(&r.Tail, 1)
	r.n++
}

// Racy reads both fields without synchronization.
func (r *Ring) Racy() int {
	h := r.head // want "field head is marked //lint:atomic"
	_ = h
	return int(r.Tail) // want "field Tail is marked //lint:atomic"
}
