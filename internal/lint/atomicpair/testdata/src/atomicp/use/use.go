// Package use touches an upstream package's atomic field: the fact
// exported from atomicp/decl travels here.
package use

import (
	"sync/atomic"

	"atomicp/decl"
)

// Bump is the sanctioned cross-package form.
func Bump(r *decl.Ring) {
	atomic.AddUint64(&r.Tail, 1)
}

// Race writes and reads the field directly.
func Race(r *decl.Ring) uint64 {
	r.Tail = 0    // want "field Tail is marked //lint:atomic"
	return r.Tail // want "field Tail is marked //lint:atomic"
}

// Alias leaks the address for later unsynchronized use.
func Alias(r *decl.Ring) *uint64 {
	return &r.Tail // want "field Tail is marked //lint:atomic"
}

// Make initializes through a composite literal, bypassing the Store.
func Make() decl.Ring {
	return decl.Ring{Tail: 1} // want "field Tail is marked //lint:atomic"
}

// Drain is a declared quiescent exception.
//
//lint:allow atomicpair -- teardown: producer and consumer are parked
func Drain(r *decl.Ring) uint64 {
	return r.Tail
}
