// Package atomicpair makes the SPSC ring's publish protocol a
// compile-time contract: a field marked
//
//	//lint:atomic
//
// may only be touched through sync/atomic — as the receiver of an atomic
// value's method (head.Load(), head.Store(v)) or as &f passed directly to
// a sync/atomic function (atomic.AddUint64(&f, 1)). Every other
// appearance is flagged: plain reads, plain writes, value copies,
// composite-literal initialization, and aliasing the address for later
// unsynchronized use. The race detector only sees the schedules the test
// happens to produce; this check covers every path on every build.
//
// The mark is exported as an AtomicField fact from the declaring package,
// so uses of an exported atomic field in downstream packages are held to
// the same discipline.
//
// //lint:allow atomicpair on the flagged line or the enclosing function's
// doc declares a quiescent exception (e.g. a teardown path that runs
// after both sides have parked).
package atomicpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"regionmon/internal/lint/analysis"
	"regionmon/internal/lint/loader"
)

const name = "atomicpair"

var Analyzer = &analysis.Analyzer{
	Name:  name,
	Doc:   "//lint:atomic fields may only be accessed through sync/atomic, never plain read/write",
	Facts: exportFacts,
	Run:   run,
}

// AtomicField marks a field as accessible only through sync/atomic.
type AtomicField struct{}

func (*AtomicField) AFact() {}

// exportFacts publishes the AtomicField fact for every //lint:atomic
// field declared in this package.
func exportFacts(pass *analysis.Pass) error {
	own := []*loader.Package{pass.Pkg}
	for v := range analysis.MarkedFields(pass.Fset, own, "atomic") {
		pass.ExportObjectFact(v, &AtomicField{})
	}
	return nil
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// First pass: record the selector nodes used in sanctioned
		// sync/atomic positions.
		sanctioned := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel2, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel2.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Method on an atomic value: x.head.Load() — the receiver
			// selector is the sanctioned use.
			if sel1, ok := sel2.X.(*ast.SelectorExpr); ok && atomicField(pass, info, sel1) != nil {
				sanctioned[sel1] = true
			}
			// Package function on a raw field: atomic.AddUint64(&x.tail, 1).
			for _, arg := range call.Args {
				ue, ok := arg.(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				if sel, ok := ue.X.(*ast.SelectorExpr); ok && atomicField(pass, info, sel) != nil {
					sanctioned[sel] = true
				}
			}
			return true
		})
		// Second pass: everything else touching an atomic field is a
		// violation.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return true
				}
				if v := atomicField(pass, info, n); v != nil {
					pass.Reportf(n.Sel.Pos(), "field %s is marked //lint:atomic: access it only through sync/atomic, never plain read/write", v.Name())
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() && hasFact(pass, v) {
							pass.Reportf(key.Pos(), "field %s is marked //lint:atomic: initialize it with a Store, not a composite literal", v.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// atomicField resolves a selector to a field carrying the AtomicField
// fact, or nil.
func atomicField(pass *analysis.Pass, info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || !hasFact(pass, v) {
		return nil
	}
	return v
}

func hasFact(pass *analysis.Pass, v *types.Var) bool {
	var fact AtomicField
	return pass.ImportObjectFact(v, &fact)
}
