package region

import (
	"fmt"
	"sort"

	"regionmon/internal/isa"
	"regionmon/internal/lpd"
	"regionmon/internal/snap"
)

// Monitor checkpointing. A snapshot captures the monitor's complete
// mutable state — the region set with each region's span, histogram,
// counters and local phase detector, plus the sequence/ID counters and the
// UCR history ring — and none of the construction inputs: Restore targets
// a monitor built over the same Program with the same Config. With that
// precondition the restored monitor's subsequent ProcessOverflow reports
// are identical to the uninterrupted monitor's for the same overflow
// stream (the soak harness asserts this byte-for-byte over the encoded
// verdicts).
//
// Regions are encoded in ID order — never map order — so identical state
// always produces identical bytes. Loop pointers are not serialized; they
// are re-derived from the program on restore, exactly as AddRegion derives
// them.

const monitorTag = "regmon"

// AppendSnapshot encodes the monitor's mutable state onto e.
func (m *Monitor) AppendSnapshot(e *snap.Encoder) {
	e.Header(monitorTag, 1)
	e.Int(m.seq)
	e.Int(m.nextID)
	m.ucr.AppendSnapshot(e)

	ids := make([]int, 0, len(m.regions))
	for id := range m.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.Int(len(ids))
	for _, id := range ids {
		r := m.regions[id]
		e.Int(r.ID)
		e.U64(uint64(r.Start))
		e.U64(uint64(r.End))
		e.Int(r.FormedAt)
		e.I64(r.totalSamples)
		e.Int(r.intervalHits)
		e.Int(r.idleFor)
		e.I64s(r.curr)
		r.Detector.AppendSnapshot(e)
	}
}

// RestoreSnapshot decodes state written by AppendSnapshot into m,
// replacing the current region set. The monitor must have been built over
// the same Program with the same Config as the snapshotted one; spans or
// history shapes that do not fit the current program/configuration are
// rejected. On error the monitor is left unchanged.
func (m *Monitor) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(monitorTag, 1)
	seq := dec.Int()
	nextID := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}

	// Decode into a staging series/regions first so a mid-stream decode
	// error cannot leave the monitor half-restored.
	staged := m.newUCRSeries()
	if err := staged.RestoreSnapshot(dec); err != nil {
		return err
	}

	count := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if count < 0 {
		return fmt.Errorf("region: snapshot region count %d < 0", count)
	}
	if m.cfg.MaxRegions > 0 && count > m.cfg.MaxRegions {
		return fmt.Errorf("region: snapshot has %d regions, exceeds cap %d", count, m.cfg.MaxRegions)
	}
	regions := make([]*Region, 0, count)
	for i := 0; i < count; i++ {
		id := dec.Int()
		start := isa.Addr(dec.U64())
		end := isa.Addr(dec.U64())
		formedAt := dec.Int()
		totalSamples := dec.I64()
		intervalHits := dec.Int()
		idleFor := dec.Int()
		curr := dec.I64s()
		if err := dec.Err(); err != nil {
			return err
		}
		if start >= end {
			return fmt.Errorf("region: snapshot region %d has empty span %v-%v", id, start, end)
		}
		if id < 0 || id >= nextID {
			return fmt.Errorf("region: snapshot region ID %d outside [0, %d)", id, nextID)
		}
		// AppendSnapshot encodes regions ascending by ID; the restored
		// monitor's sorted-ID slice relies on that order.
		if len(regions) > 0 && id <= regions[len(regions)-1].ID {
			return fmt.Errorf("region: snapshot region IDs not ascending (%d after %d)", id, regions[len(regions)-1].ID)
		}
		n := int(end-start) / isa.InstrBytes
		if len(curr) != n {
			return fmt.Errorf("region: snapshot region %d histogram has %d entries for a %d-instruction span", id, len(curr), n)
		}
		det, err := lpd.New(n, m.cfg.Detector)
		if err != nil {
			return err
		}
		if err := det.RestoreSnapshot(dec); err != nil {
			return err
		}
		var loop *isa.Loop
		if p := m.prog.ProcAt(start); p != nil {
			if l := p.InnermostLoopAt(start); l != nil && l.Start() == start && l.End() == end {
				loop = l
			}
		}
		regions = append(regions, &Region{
			ID:           id,
			Start:        start,
			End:          end,
			Loop:         loop,
			Detector:     det,
			FormedAt:     formedAt,
			curr:         curr,
			intervalHits: intervalHits,
			totalSamples: totalSamples,
			idleFor:      idleFor,
		})
	}

	// Commit: swap in the staged state and rebuild the stab index.
	m.seq = seq
	m.nextID = nextID
	m.ucr = staged
	for id := range m.regions {
		m.index.Remove(id)
	}
	m.regions = make(map[int]*Region, len(regions))
	m.sortedIDs = m.sortedIDs[:0]
	for _, r := range regions {
		m.regions[r.ID] = r
		m.index.Insert(r.ID, uint64(r.Start), uint64(r.End))
		// Snapshot regions are encoded ascending by ID, so the rebuilt
		// slice is sorted by construction.
		m.sortedIDs = append(m.sortedIDs, r.ID)
	}
	return nil
}

// Snapshot returns the monitor's state as a standalone versioned byte
// snapshot.
func (m *Monitor) Snapshot() []byte {
	e := snap.NewEncoder()
	m.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the monitor's state from a Snapshot produced by a
// monitor over the same program with the same configuration.
func (m *Monitor) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := m.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}
