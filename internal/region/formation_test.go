package region

import (
	"testing"

	"regionmon/internal/isa"
)

// dispatcherProgram builds a program whose hot code is a big straight-line
// procedure called from a loop elsewhere — the crafty/gap pattern the
// baseline region builder cannot cover.
func dispatcherProgram(t testing.TB) (*isa.Program, *isa.Procedure, isa.LoopSpan) {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	h := b.Proc("hotproc") // straight-line, no loops
	h.Code(120, isa.KindLoad, isa.KindALU, isa.KindALU)
	b.Skip(0x8000)
	m := b.Proc("main")
	loop := m.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, prog.Proc("hotproc"), loop
}

func TestBaselineCannotCoverStraightProc(t *testing.T) {
	prog, hot, _ := dispatcherProgram(t)
	m := newMonitor(t, prog, nil)
	for seq := 0; seq < 4; seq++ {
		rep := m.ProcessOverflow(overflow(seq, 200, hot.Start(), hot.Start()+40, hot.Start()+80))
		if len(rep.NewRegions) != 0 {
			t.Fatalf("baseline formed regions over straight-line code: %v", rep.NewRegions)
		}
		if rep.UCRFraction != 1 {
			t.Fatalf("interval %d UCR = %v; want 1", seq, rep.UCRFraction)
		}
	}
}

func TestAnnotationFormsRegion(t *testing.T) {
	prog, hot, _ := dispatcherProgram(t)
	ann := Annotation{Start: hot.Start(), End: hot.Start() + 200, Name: "hot-path"}
	m := newMonitor(t, prog, func(c *Config) { c.Annotations = []Annotation{ann} })

	rep := m.ProcessOverflow(overflow(0, 200, hot.Start(), hot.Start()+40, hot.Start()+80))
	if !rep.FormationTriggered || len(rep.NewRegions) != 1 {
		t.Fatalf("annotation did not form a region: %+v", rep)
	}
	r := rep.NewRegions[0]
	if r.Start != ann.Start || r.End != ann.End {
		t.Errorf("region span %s; want annotation span %v-%v", r.Name(), ann.Start, ann.End)
	}
	if r.Loop != nil {
		t.Error("annotation region should have no loop")
	}

	// Subsequent intervals: the annotated span is monitored, UCR drops.
	rep = m.ProcessOverflow(overflow(1, 200, hot.Start(), hot.Start()+40, hot.Start()+80))
	if rep.UCRFraction != 0 {
		t.Errorf("UCR after annotation coverage = %v; want 0", rep.UCRFraction)
	}
}

func TestInterProceduralRegion(t *testing.T) {
	prog, hot, _ := dispatcherProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.InterProcedural = true })

	rep := m.ProcessOverflow(overflow(0, 200, hot.Start(), hot.Start()+40, hot.Start()+80))
	if len(rep.NewRegions) != 1 {
		t.Fatalf("inter-procedural formation failed: %+v", rep)
	}
	r := rep.NewRegions[0]
	if r.Start != hot.Start() || r.End != hot.End() {
		t.Errorf("region span %s; want whole procedure %v-%v", r.Name(), hot.Start(), hot.End())
	}
	// And local phase detection runs on it like any region.
	for seq := 1; seq < 5; seq++ {
		rep = m.ProcessOverflow(overflow(seq, 200, hot.Start(), hot.Start()+40, hot.Start()+80))
	}
	if got := rep.Verdicts[0].Verdict.State.String(); got != "stable" {
		t.Errorf("procedure region state = %s; want stable", got)
	}
}

func TestInterProceduralSizeCap(t *testing.T) {
	b := isa.NewBuilder(0x10000)
	big := b.Proc("big")
	big.Code(900, isa.KindLoad, isa.KindALU) // 900 instrs + ret > cap 800
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := newMonitor(t, prog, func(c *Config) {
		c.InterProcedural = true
		c.MaxProcRegionInstrs = 800
	})
	rep := m.ProcessOverflow(overflow(0, 200, prog.Procs[0].Start()))
	if len(rep.NewRegions) != 0 {
		t.Errorf("oversized procedure formed a region: %v", rep.NewRegions)
	}
}

func TestLoopSamplesDoNotFeedProcedureRegions(t *testing.T) {
	prog, _, loop := dispatcherProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.InterProcedural = true })
	// All samples inside the loop: a loop region must form, not a
	// procedure region over main.
	rep := m.ProcessOverflow(overflow(0, 200, loop.Start, loop.Start+8))
	if len(rep.NewRegions) != 1 {
		t.Fatalf("formed %d regions; want 1", len(rep.NewRegions))
	}
	if rep.NewRegions[0].Loop == nil {
		t.Error("loop samples produced a non-loop region")
	}
}

func TestAnnotationValidation(t *testing.T) {
	prog, hot, _ := dispatcherProgram(t)
	bad := []Annotation{
		{Start: hot.End(), End: hot.Start()},   // inverted
		{Start: 0x100, End: 0x200},             // outside text
		{Start: hot.Start(), End: hot.Start()}, // empty
	}
	for i, a := range bad {
		cfg := DefaultConfig()
		cfg.Annotations = []Annotation{a}
		if _, err := NewMonitor(prog, cfg); err == nil {
			t.Errorf("bad annotation %d accepted", i)
		}
	}
	if _, err := NewMonitor(prog, func() Config {
		c := DefaultConfig()
		c.MaxProcRegionInstrs = -1
		return c
	}()); err == nil {
		t.Error("negative procedure-region cap accepted")
	}
}

func TestAnnotationReducesUCRForDispatcherWorkload(t *testing.T) {
	// End-to-end: the same sample stream with and without the annotation;
	// the annotated monitor's median UCR must drop below the threshold.
	prog, hot, loop := dispatcherProgram(t)
	pcs := []isa.Addr{hot.Start(), hot.Start() + 40, hot.Start() + 80, loop.Start}

	baseline := newMonitor(t, prog, nil)
	annotated := newMonitor(t, prog, func(c *Config) {
		c.Annotations = []Annotation{{Start: hot.Start(), End: hot.End(), Name: "hot"}}
	})
	for seq := 0; seq < 10; seq++ {
		baseline.ProcessOverflow(overflow(seq, 200, pcs...))
		annotated.ProcessOverflow(overflow(seq, 200, pcs...))
	}
	if base, ann := baseline.UCRMedian(), annotated.UCRMedian(); ann >= base || ann > 0.05 {
		t.Errorf("annotation did not reduce UCR: baseline %.2f, annotated %.2f", base, ann)
	}
}
