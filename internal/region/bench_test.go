package region

import (
	"fmt"
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// benchProgram builds a program with nLoops loops, every one registered
// as a region by the caller.
func benchProgram(b *testing.B, nLoops int) (*isa.Program, []isa.LoopSpan) {
	b.Helper()
	bld := isa.NewBuilder(0x10000)
	spans := make([]isa.LoopSpan, 0, nLoops)
	var p *isa.ProcBuilder
	for i := 0; i < nLoops; i++ {
		if i%32 == 0 {
			p = bld.Proc(fmt.Sprintf("p%d", i/32))
			p.Code(8, isa.KindALU)
		}
		spans = append(spans, p.Loop(16+(i%5)*4, []isa.Kind{isa.KindLoad, isa.KindALU}, nil))
		p.Code(6, isa.KindALU)
	}
	prog, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return prog, spans
}

// benchOverflow fabricates one loopy full-size buffer: heavy repetition
// inside a four-loop hot set, a warm tail over all loops, plus idle and
// straight-line stragglers.
func benchOverflow(spans []isa.LoopSpan, samples int) *hpm.Overflow {
	rng := uint64(0xB0B)
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	ov := &hpm.Overflow{Samples: make([]hpm.Sample, samples)}
	for i := range ov.Samples {
		var pc isa.Addr
		switch r := next() % 100; {
		case r < 3:
			pc = 0
		case r < 88:
			span := spans[int(next()%4)%len(spans)]
			pc = span.Start + isa.Addr(next()%uint64(span.NumInstrs()))*isa.InstrBytes
		case r < 95:
			span := spans[next()%uint64(len(spans))]
			pc = span.Start + isa.Addr(next()%uint64(span.NumInstrs()))*isa.InstrBytes
		default:
			pc = spans[next()%uint64(len(spans))].End + isa.InstrBytes
		}
		ov.Samples[i] = hpm.Sample{PC: pc, Cycle: uint64(i), Instrs: 10}
	}
	return ov
}

// BenchmarkProcessOverflow measures one interval of region monitoring —
// distribution, UCR accounting, per-region detection — per distribution
// structure and region count, on a full-size loopy buffer.
func BenchmarkProcessOverflow(b *testing.B) {
	kinds := []struct {
		name string
		kind IndexKind
	}{{"list", IndexList}, {"tree", IndexTree}, {"epoch", IndexEpoch}}
	for _, n := range []int{4, 64, 512} {
		prog, spans := benchProgram(b, n)
		ov := benchOverflow(spans, hpm.DefaultBufferSize)
		for _, k := range kinds {
			b.Run(fmt.Sprintf("%s/regions=%d", k.name, n), func(b *testing.B) {
				m := newMonitor(b, prog, func(c *Config) { c.Index = k.kind })
				for _, s := range spans {
					if _, err := m.AddRegion(s.Start, s.End); err != nil {
						b.Fatal(err)
					}
				}
				for i := 0; i < 4; i++ { // warm scratch, build snapshot
					ov.Seq = i
					m.ProcessOverflow(ov)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ov.Seq = 4 + i
					m.ProcessOverflow(ov)
				}
			})
		}
	}
}
