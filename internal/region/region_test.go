package region

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/lpd"
)

// testProgram builds a program with two loops and a straight-line stretch,
// returning the program and the two loop spans.
func testProgram(t testing.TB) (*isa.Program, isa.LoopSpan, isa.LoopSpan) {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(64, isa.KindALU) // straight-line code: never becomes a region
	l1 := p.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	p.Code(8, isa.KindALU)
	l2 := p.Loop(24, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, l1, l2
}

// overflow fabricates an overflow whose samples cycle over the given PCs.
func overflow(seq, n int, pcs ...isa.Addr) *hpm.Overflow {
	ov := &hpm.Overflow{Seq: seq, Samples: make([]hpm.Sample, n)}
	for i := range ov.Samples {
		ov.Samples[i] = hpm.Sample{PC: pcs[i%len(pcs)], Cycle: uint64(i), Instrs: 10}
	}
	return ov
}

// spanPCs returns k distinct instruction addresses inside span.
func spanPCs(span isa.LoopSpan, k int) []isa.Addr {
	pcs := make([]isa.Addr, k)
	n := span.NumInstrs()
	for i := range pcs {
		pcs[i] = span.Start + isa.Addr((i%n)*isa.InstrBytes)
	}
	return pcs
}

func newMonitor(t testing.TB, prog *isa.Program, mut func(*Config)) *Monitor {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewMonitor(prog, cfg)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	prog, _, _ := testProgram(t)
	bad := []func(*Config){
		func(c *Config) { c.UCRThreshold = 0 },
		func(c *Config) { c.UCRThreshold = 1.5 },
		func(c *Config) { c.MinRegionSamples = 0 },
		func(c *Config) { c.PruneAfter = -1 },
		func(c *Config) { c.MaxRegions = -1 },
		func(c *Config) { c.Detector.RT = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := NewMonitor(prog, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewMonitor(nil, DefaultConfig()); err == nil {
		t.Error("nil program accepted")
	}
}

func TestFormationTriggerAndLoopRegions(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)

	// All samples in l1, none monitored yet: 100% UCR → formation.
	rep := m.ProcessOverflow(overflow(0, 256, spanPCs(l1, 8)...))
	if !rep.FormationTriggered {
		t.Fatal("formation not triggered at 100% UCR")
	}
	if len(rep.NewRegions) != 1 {
		t.Fatalf("formed %d regions; want 1", len(rep.NewRegions))
	}
	r := rep.NewRegions[0]
	if r.Start != l1.Start || r.End != l1.End {
		t.Errorf("region span %s; want %s", r.Name(), l1.Name())
	}
	if r.Loop == nil {
		t.Error("formed region lost its loop")
	}
	if rep.UCRFraction != 1 {
		t.Errorf("UCR fraction = %v; want 1", rep.UCRFraction)
	}
	// Replay: the new region already saw this interval's samples.
	if len(rep.Verdicts) != 1 || rep.Verdicts[0].Samples != 256 {
		t.Fatalf("verdicts = %+v; want one with 256 samples", rep.Verdicts)
	}

	// Next interval: same behaviour, now monitored → low UCR.
	rep = m.ProcessOverflow(overflow(1, 256, spanPCs(l1, 8)...))
	if rep.FormationTriggered {
		t.Error("formation re-triggered while region is monitored")
	}
	if rep.UCRFraction != 0 {
		t.Errorf("UCR fraction = %v; want 0", rep.UCRFraction)
	}
}

func TestStraightLineCodeStaysUCR(t *testing.T) {
	prog, _, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	straight := prog.Procs[0].Blocks[0] // the 64-instruction straight block
	pcs := []isa.Addr{straight.Start, straight.Start + 16, straight.Start + 32}

	for seq := 0; seq < 5; seq++ {
		rep := m.ProcessOverflow(overflow(seq, 200, pcs...))
		if !rep.FormationTriggered {
			t.Fatalf("interval %d: formation should keep triggering", seq)
		}
		if len(rep.NewRegions) != 0 {
			t.Fatalf("interval %d: straight-line code formed regions %v", seq, rep.NewRegions)
		}
		if rep.UCRFraction != 1 {
			t.Fatalf("interval %d: UCR fraction %v; want 1 (persistent UCR)", seq, rep.UCRFraction)
		}
	}
	if m.UCRMedian() != 1 {
		t.Errorf("UCR median = %v; want 1", m.UCRMedian())
	}
}

func TestLocalDetectionStabilizes(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	pcs := spanPCs(l1, 6)

	var last lpd.Verdict
	for seq := 0; seq < 5; seq++ {
		rep := m.ProcessOverflow(overflow(seq, 256, pcs...))
		if len(rep.Verdicts) > 0 {
			last = rep.Verdicts[0].Verdict
		}
	}
	if last.State != lpd.Stable {
		t.Errorf("region state after steady behaviour = %v; want stable", last.State)
	}
	// Shift the hot instructions within the loop: local phase change.
	shifted := make([]isa.Addr, len(pcs))
	for i, pc := range pcs {
		shifted[i] = pc + 4*isa.InstrBytes
		if shifted[i] >= l1.End {
			shifted[i] = l1.Start + (shifted[i] - l1.End)
		}
	}
	rep := m.ProcessOverflow(overflow(5, 256, shifted...))
	if got := rep.Verdicts[0].Verdict; got.State != lpd.Unstable || !got.PhaseChange {
		t.Errorf("shifted behaviour verdict = %+v; want unstable + change", got)
	}
	if m.Regions()[0].Detector.PhaseChanges() != 1 {
		t.Errorf("phase changes = %d; want 1", m.Regions()[0].Detector.PhaseChanges())
	}
}

func TestOverlappingRegionsBothIncremented(t *testing.T) {
	b := isa.NewBuilder(0x20000)
	p := b.Proc("nest")
	p.BeginLoop()
	p.Code(8, isa.KindALU)
	inner := p.Loop(8, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	outer := p.EndLoop()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := newMonitor(t, prog, nil)
	if _, err := m.AddRegion(outer.Start, outer.End); err != nil {
		t.Fatalf("AddRegion outer: %v", err)
	}
	if _, err := m.AddRegion(inner.Start, inner.End); err != nil {
		t.Fatalf("AddRegion inner: %v", err)
	}
	rep := m.ProcessOverflow(overflow(0, 100, inner.Start))
	if rep.MonitoredSamples != 100 {
		t.Fatalf("monitored = %d; want 100", rep.MonitoredSamples)
	}
	// Both regions saw all 100 samples (total attribution 200).
	for _, v := range rep.Verdicts {
		if v.Samples != 100 {
			t.Errorf("region %s got %d samples; want 100", v.Region.Name(), v.Samples)
		}
	}
	// RegionAt prefers the innermost region.
	if r := m.RegionAt(inner.Start); r == nil || r.Start != inner.Start {
		t.Errorf("RegionAt(inner) = %v; want inner region", r)
	}
}

func TestIdleSamplesCountAsUCR(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	m.AddRegion(l1.Start, l1.End)
	// Half the samples at PC 0 (idle), half in the region.
	ov := overflow(0, 100, 0, l1.Start)
	rep := m.ProcessOverflow(ov)
	if rep.UCRSamples != 50 || rep.MonitoredSamples != 50 {
		t.Errorf("ucr/monitored = %d/%d; want 50/50", rep.UCRSamples, rep.MonitoredSamples)
	}
	// Idle PCs must not be considered for formation even at high UCR.
	if len(rep.NewRegions) != 0 {
		t.Error("idle samples formed regions")
	}
}

func TestFormationRespectsMinSamples(t *testing.T) {
	prog, l1, l2 := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.MinRegionSamples = 60 })
	// 100 samples: 70 in l1, 30 in l2 → only l1 qualifies.
	pcs := make([]isa.Addr, 0, 100)
	for i := 0; i < 70; i++ {
		pcs = append(pcs, l1.Start)
	}
	for i := 0; i < 30; i++ {
		pcs = append(pcs, l2.Start)
	}
	ov := &hpm.Overflow{Seq: 0, Samples: make([]hpm.Sample, len(pcs))}
	for i, pc := range pcs {
		ov.Samples[i] = hpm.Sample{PC: pc}
	}
	rep := m.ProcessOverflow(ov)
	if len(rep.NewRegions) != 1 || rep.NewRegions[0].Start != l1.Start {
		t.Errorf("formed %v; want only l1", rep.NewRegions)
	}
}

func TestMaxRegionsCap(t *testing.T) {
	prog, l1, l2 := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.MaxRegions = 1 })
	rep := m.ProcessOverflow(overflow(0, 200, l1.Start, l2.Start))
	if len(rep.NewRegions) != 1 {
		t.Fatalf("formed %d regions; want 1 (cap)", len(rep.NewRegions))
	}
	if _, err := m.AddRegion(l2.Start, l2.End); err == nil {
		t.Error("AddRegion beyond cap should fail")
	}
}

func TestPruning(t *testing.T) {
	prog, l1, l2 := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.PruneAfter = 3 })
	m.AddRegion(l1.Start, l1.End)
	m.AddRegion(l2.Start, l2.End)
	// l1 active, l2 idle.
	var pruned []*Region
	for seq := 0; seq < 5; seq++ {
		rep := m.ProcessOverflow(overflow(seq, 100, l1.Start))
		pruned = append(pruned, rep.Pruned...)
	}
	if len(pruned) != 1 || pruned[0].Start != l2.Start {
		t.Fatalf("pruned = %v; want exactly l2", pruned)
	}
	if len(m.Regions()) != 1 {
		t.Errorf("regions after pruning = %d; want 1", len(m.Regions()))
	}
	// A pruned region's span can be re-formed later.
	rep := m.ProcessOverflow(overflow(5, 300, l2.Start))
	if len(rep.NewRegions) != 1 || rep.NewRegions[0].Start != l2.Start {
		t.Errorf("re-formation after pruning failed: %v", rep.NewRegions)
	}
}

func TestAddRegionValidation(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	if _, err := m.AddRegion(l1.End, l1.Start); err == nil {
		t.Error("inverted span accepted")
	}
	if _, err := m.AddRegion(l1.Start, l1.End); err != nil {
		t.Fatalf("AddRegion: %v", err)
	}
	if _, err := m.AddRegion(l1.Start, l1.End); err == nil {
		t.Error("duplicate span accepted")
	}
}

func TestIndexPathsAgree(t *testing.T) {
	prog, l1, l2 := testProgram(t)
	run := func(kind IndexKind) []Report {
		m := newMonitor(t, prog, func(c *Config) { c.Index = kind })
		var reps []Report
		for seq := 0; seq < 6; seq++ {
			pcs := spanPCs(l1, 5)
			if seq >= 3 {
				pcs = spanPCs(l2, 5)
			}
			reps = append(reps, m.ProcessOverflow(overflow(seq, 128, pcs...)))
		}
		return reps
	}
	a := run(IndexList)
	for _, kind := range []IndexKind{IndexTree, IndexEpoch} {
		b := run(kind)
		for i := range a {
			if a[i].UCRFraction != b[i].UCRFraction ||
				a[i].MonitoredSamples != b[i].MonitoredSamples ||
				a[i].UCRSamples != b[i].UCRSamples ||
				a[i].IdleSamples != b[i].IdleSamples ||
				len(a[i].Verdicts) != len(b[i].Verdicts) ||
				len(a[i].NewRegions) != len(b[i].NewRegions) {
				t.Fatalf("interval %d: list/%v reports diverge:\n%+v\n%+v", i, kind, a[i], b[i])
			}
			for j := range a[i].Verdicts {
				if a[i].Verdicts[j].Verdict != b[i].Verdicts[j].Verdict {
					t.Fatalf("interval %d verdict %d diverges under %v", i, j, kind)
				}
				if a[i].Verdicts[j].Samples != b[i].Verdicts[j].Samples {
					t.Fatalf("interval %d verdict %d samples diverge under %v", i, j, kind)
				}
			}
		}
	}
}

// TestLegacyUseIntervalTree pins the back-compat contract: the old boolean
// still selects the tree when Index is left at its zero value, and is
// ignored once Index is set explicitly.
func TestLegacyUseIntervalTree(t *testing.T) {
	cases := []struct {
		cfg  Config
		want IndexKind
	}{
		{Config{}, IndexEpoch},
		{Config{UseIntervalTree: true}, IndexTree},
		{Config{Index: IndexList, UseIntervalTree: true}, IndexList},
		{Config{Index: IndexTree}, IndexTree},
	}
	for _, c := range cases {
		if got := c.cfg.indexKind(); got != c.want {
			t.Errorf("indexKind(Index=%v, UseIntervalTree=%v) = %v; want %v",
				c.cfg.Index, c.cfg.UseIntervalTree, got, c.want)
		}
	}
}

func TestUCRHistoryIsCopied(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	m.ProcessOverflow(overflow(0, 10, l1.Start))
	h := m.UCRHistory()
	if len(h) != 1 {
		t.Fatalf("history = %v", h)
	}
	h[0] = -1
	if m.UCRHistory()[0] == -1 {
		t.Error("UCRHistory returned aliased storage")
	}
}

func TestGranularityCycles(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	r, err := m.AddRegion(l1.Start, l1.End)
	if err != nil {
		t.Fatal(err)
	}
	unit := func(isa.Kind) uint64 { return 1 }
	if got := r.GranularityCycles(prog, unit); got != uint64(r.NumInstrs()) {
		t.Errorf("unit-cost granularity = %d; want %d", got, r.NumInstrs())
	}
	weighted := func(k isa.Kind) uint64 {
		if k == isa.KindLoad {
			return 3
		}
		return 1
	}
	// l1's body alternates load/alu (16 instrs, 8 loads) + 2-instr latch.
	want := uint64(8*3 + 8 + 2)
	if got := r.GranularityCycles(prog, weighted); got != want {
		t.Errorf("weighted granularity = %d; want %d", got, want)
	}
}

func TestEmptyOverflow(t *testing.T) {
	prog, _, _ := testProgram(t)
	m := newMonitor(t, prog, nil)
	rep := m.ProcessOverflow(&hpm.Overflow{Seq: 0})
	if rep.UCRFraction != 0 || rep.FormationTriggered {
		t.Errorf("empty overflow report = %+v", rep)
	}
}
