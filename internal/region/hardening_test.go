package region

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// TestNewRegionSurvivesQuietFormationInterval is the regression test for
// the premature-pruning bug: a region formed from a triggering interval
// whose replayed samples fall below MinObserveSamples must not start the
// idle clock on its formation interval — with PruneAfter=1 it used to be
// pruned in the very interval that formed it.
func TestNewRegionSurvivesQuietFormationInterval(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) {
		c.MinObserveSamples = 64
		c.PruneAfter = 1
	})

	// 32 samples: enough to form (MinRegionSamples=16), below the
	// observation guard (64).
	rep := m.ProcessOverflow(overflow(0, 32, spanPCs(l1, 8)...))
	if !rep.FormationTriggered || len(rep.NewRegions) != 1 {
		t.Fatalf("expected formation: %+v", rep)
	}
	if len(rep.Pruned) != 0 {
		t.Fatalf("region pruned in its own formation interval: %+v", rep.Pruned)
	}
	if len(m.Regions()) != 1 {
		t.Fatalf("monitor has %d regions after formation; want 1", len(m.Regions()))
	}

	// A full interval keeps it alive and feeds the detector.
	rep = m.ProcessOverflow(overflow(1, 128, spanPCs(l1, 8)...))
	if len(rep.Pruned) != 0 || len(m.Regions()) != 1 {
		t.Fatalf("active region pruned: %+v", rep.Pruned)
	}
	if rep.Verdicts[0].Verdict.Empty {
		t.Error("full interval reported as empty")
	}

	// Idle intervals after formation still prune — the exemption covers
	// only the formation interval itself.
	rep = m.ProcessOverflow(overflow(2, 0))
	if len(rep.Pruned) != 1 || len(m.Regions()) != 0 {
		t.Fatalf("idle region not pruned after formation interval: pruned=%d regions=%d",
			len(rep.Pruned), len(m.Regions()))
	}
}

// TestSparseGuardInvariants pins the sparse-interval contract: a
// below-guard interval behaves exactly like an empty one (frozen state,
// re-reported r) and its trickle samples do not leak into the next
// interval's histogram.
func TestSparseGuardInvariants(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.MinObserveSamples = 16 })
	if _, err := m.AddRegion(l1.Start, l1.End); err != nil {
		t.Fatal(err)
	}

	// Two full intervals: establish the reference and a real r value.
	m.ProcessOverflow(overflow(0, 128, spanPCs(l1, 8)...))
	rep := m.ProcessOverflow(overflow(1, 128, spanPCs(l1, 8)...))
	prevState := rep.Verdicts[0].Verdict.State
	prevR := rep.Verdicts[0].Verdict.R

	// Sparse interval: 4 samples, all on one instruction — if they were
	// fed to the detector they would crater r.
	rep = m.ProcessOverflow(overflow(2, 4, l1.Start))
	v := rep.Verdicts[0]
	if !v.Verdict.Empty {
		t.Errorf("sparse interval not treated as empty: %+v", v.Verdict)
	}
	if v.Verdict.R != prevR {
		t.Errorf("sparse interval r = %v; want re-reported %v", v.Verdict.R, prevR)
	}
	if v.Verdict.State != prevState {
		t.Errorf("sparse interval moved state %v -> %v", prevState, v.Verdict.State)
	}
	if v.Samples != 4 {
		t.Errorf("Samples = %d; want 4", v.Samples)
	}
	// The histogram was zeroed exactly once and stays zeroed.
	if h := m.Regions()[0].AppendHistogram(nil); h[0] != 0 {
		t.Errorf("sparse samples leaked into histogram: %v", h)
	}

	// The next full interval is judged on its own samples only.
	rep = m.ProcessOverflow(overflow(3, 128, spanPCs(l1, 8)...))
	if rep.Verdicts[0].Verdict.Empty {
		t.Error("full interval after sparse one reported empty")
	}
	if r := rep.Verdicts[0].Verdict.R; r < 0.99 {
		t.Errorf("r = %v after identical full interval; sparse samples leaked", r)
	}
}

// TestIdleSampleAccounting pins the idle-sample contract: PC-0 samples are
// reported in IdleSamples and counted in the UCR fraction, but cannot trip
// region formation.
func TestIdleSampleAccounting(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, nil)

	// Entirely idle interval: 100% UCR but no formation.
	rep := m.ProcessOverflow(overflow(0, 64, 0))
	if rep.IdleSamples != 64 || rep.UCRSamples != 64 {
		t.Fatalf("IdleSamples=%d UCRSamples=%d; want 64/64", rep.IdleSamples, rep.UCRSamples)
	}
	if rep.UCRFraction != 1 {
		t.Errorf("UCRFraction = %v; want 1 (idle time is unmonitored time)", rep.UCRFraction)
	}
	if rep.FormationTriggered {
		t.Error("idle-only interval tripped formation with nothing to form")
	}

	// Mostly idle with a hot unmonitored loop: the code-only fraction
	// (100%) trips formation even though code samples are the minority.
	samples := make([]hpm.Sample, 64)
	pcs := spanPCs(l1, 8)
	for i := range samples {
		if i < 24 {
			samples[i] = hpm.Sample{PC: pcs[i%len(pcs)]}
		} // rest idle at PC 0
	}
	rep = m.ProcessOverflow(&hpm.Overflow{Seq: 1, Samples: samples})
	if rep.IdleSamples != 40 {
		t.Errorf("IdleSamples = %d; want 40", rep.IdleSamples)
	}
	if !rep.FormationTriggered || len(rep.NewRegions) != 1 {
		t.Errorf("hot unmonitored loop behind idle noise did not form: %+v", rep)
	}
}

// TestUCRHistoryBounded is the regression test that the default monitor
// retains a fixed-size UCR history no matter how long it runs.
func TestUCRHistoryBounded(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.UCRHistoryCap = 8 })
	const n = 100
	for i := 0; i < n; i++ {
		m.ProcessOverflow(overflow(i, 16, spanPCs(l1, 4)...))
	}
	if got := len(m.UCRHistory()); got != 8 {
		t.Fatalf("UCRHistory length = %d; want 8", got)
	}
	if got := m.UCRDropped(); got != n-8 {
		t.Fatalf("UCRDropped = %d; want %d", got, n-8)
	}
	if med := m.UCRMedian(); med < 0 || med > 1 {
		t.Fatalf("UCRMedian = %v out of range", med)
	}

	// Default config: bounded at DefaultUCRHistoryCap, not unbounded.
	md := newMonitor(t, prog, nil)
	md.ProcessOverflow(overflow(0, 4, spanPCs(l1, 4)...))
	if md.UCRDropped() != 0 || len(md.UCRHistory()) != 1 {
		t.Fatal("short default-config run should retain everything")
	}

	// Retain-everything mode keeps the full series.
	mu := newMonitor(t, prog, func(c *Config) { c.UCRHistoryCap = RetainAllHistory })
	for i := 0; i < n; i++ {
		mu.ProcessOverflow(overflow(i, 16, spanPCs(l1, 4)...))
	}
	if got := len(mu.UCRHistory()); got != n {
		t.Fatalf("retain-all UCRHistory length = %d; want %d", got, n)
	}
	if mu.UCRDropped() != 0 {
		t.Fatalf("retain-all dropped %d", mu.UCRDropped())
	}
}

// hardeningStream drives formation, stable phases, sparse intervals,
// idle stretches and pruning in a fixed pattern.
func hardeningStream(l1, l2 isa.LoopSpan, n int) []*hpm.Overflow {
	out := make([]*hpm.Overflow, n)
	for i := range out {
		switch {
		case i%19 == 11:
			out[i] = overflow(i, 64, 0) // idle interval
		case i%7 == 3:
			out[i] = overflow(i, 4, l1.Start) // sparse trickle
		case (i/25)%2 == 0:
			out[i] = overflow(i, 192, spanPCs(l1, 8)...)
		default:
			out[i] = overflow(i, 192, spanPCs(l2, 12)...)
		}
	}
	return out
}

// reportsEqual compares the observable content of two reports (regions by
// identity fields, not pointer).
func reportsEqual(t *testing.T, a, b Report) bool {
	t.Helper()
	if a.Seq != b.Seq || a.TotalSamples != b.TotalSamples ||
		a.MonitoredSamples != b.MonitoredSamples || a.UCRSamples != b.UCRSamples ||
		a.IdleSamples != b.IdleSamples || a.UCRFraction != b.UCRFraction ||
		a.FormationTriggered != b.FormationTriggered ||
		len(a.NewRegions) != len(b.NewRegions) || len(a.Pruned) != len(b.Pruned) ||
		len(a.Verdicts) != len(b.Verdicts) {
		return false
	}
	for i := range a.Verdicts {
		av, bv := a.Verdicts[i], b.Verdicts[i]
		if av.Region.ID != bv.Region.ID || av.Region.Start != bv.Region.Start ||
			av.Region.End != bv.Region.End || av.Samples != bv.Samples ||
			av.Verdict != bv.Verdict {
			return false
		}
	}
	for i := range a.NewRegions {
		if a.NewRegions[i].ID != b.NewRegions[i].ID {
			return false
		}
	}
	for i := range a.Pruned {
		if a.Pruned[i].ID != b.Pruned[i].ID {
			return false
		}
	}
	return true
}

func TestMonitorSnapshotForkEquality(t *testing.T) {
	prog, l1, l2 := testProgram(t)
	mut := func(c *Config) {
		c.PruneAfter = 4
		c.UCRHistoryCap = 32 // small, so the snapshot catches a wrapped ring
	}
	const total, at = 140, 57
	stream := hardeningStream(l1, l2, total)

	ref := newMonitor(t, prog, mut)
	forked := newMonitor(t, prog, mut)
	for i := 0; i < at; i++ {
		ra := ref.ProcessOverflow(stream[i])
		rb := forked.ProcessOverflow(stream[i])
		if !reportsEqual(t, ra, rb) {
			t.Fatalf("identical monitors diverged at %d before any snapshot", i)
		}
	}

	s1, s2 := forked.Snapshot(), forked.Snapshot()
	if string(s1) != string(s2) {
		t.Fatal("monitor snapshot is not deterministic")
	}

	restored := newMonitor(t, prog, mut)
	if err := restored.Restore(s1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if string(restored.Snapshot()) != string(s1) {
		t.Fatal("restored monitor snapshots to different bytes")
	}
	if restored.UCRMedian() != ref.UCRMedian() || restored.UCRDropped() != ref.UCRDropped() {
		t.Fatal("restored UCR history differs")
	}

	for i := at; i < total; i++ {
		ra := ref.ProcessOverflow(stream[i])
		rb := restored.ProcessOverflow(stream[i])
		if !reportsEqual(t, ra, rb) {
			t.Fatalf("interval %d: restored monitor diverged:\nref      %+v\nrestored %+v", i, ra, rb)
		}
	}
	// Region loop linkage was re-derived, not lost.
	for _, r := range restored.Regions() {
		if r.Loop == nil {
			t.Errorf("restored region %s lost its loop", r.Name())
		}
	}
}

func TestMonitorRestoreRejectsMismatch(t *testing.T) {
	prog, l1, _ := testProgram(t)
	m := newMonitor(t, prog, func(c *Config) { c.UCRHistoryCap = 8 })
	m.ProcessOverflow(overflow(0, 64, spanPCs(l1, 8)...))
	snapBytes := m.Snapshot()

	// Different history capacity → reject.
	other := newMonitor(t, prog, func(c *Config) { c.UCRHistoryCap = 16 })
	if err := other.Restore(snapBytes); err == nil {
		t.Error("expected history-capacity mismatch error")
	}
	// The failed restore left the monitor usable and empty.
	if len(other.Regions()) != 0 {
		t.Error("failed restore mutated the monitor")
	}

	if err := m.Restore([]byte("not a snapshot")); err == nil {
		t.Error("expected decode error on garbage")
	}
}
