// Package region implements the paper's region monitoring framework
// (Section 3): it decouples working-set change detection from phase
// detection. On every sample-buffer overflow it
//
//  1. distributes the buffered PC samples across the monitored regions
//     (using a linear region list, an interval tree — the paper's
//     Section 3.2.3 cost comparison — or, by default, a count-compressed
//     batch over a flat epoch index), incrementing per-instruction
//     histograms; a sample falling in several overlapping regions (nested
//     loops) increments all of them;
//  2. attributes samples outside every monitored region to the
//     UnMonitored Code Region (UCR) and, when the UCR fraction exceeds a
//     threshold (30% in the paper's study), triggers region formation —
//     building loop regions around the unmonitored hot samples;
//  3. runs each region's local phase detector on its interval histogram.
//
// Some hot code cannot be covered: samples in straight-line code or in
// loops spanning procedure boundaries form no region (the paper's
// 186.crafty / 254.gap discussion), so their UCR contribution persists
// across formation triggers.
package region

import (
	"fmt"
	"sort"

	"regionmon/internal/hpm"
	"regionmon/internal/interval"
	"regionmon/internal/isa"
	"regionmon/internal/lpd"
	"regionmon/internal/stats"
)

// Config parameterizes the monitor.
type Config struct {
	// UCRThreshold is the UCR sample fraction above which region
	// formation is triggered (paper: 30%).
	UCRThreshold float64
	// MinRegionSamples is the minimum number of interval samples that
	// must land in a loop for it to become a monitored region ("loops
	// that have significant samples within an interval").
	MinRegionSamples int
	// MinObserveSamples is the minimum interval sample count for a
	// region's histogram to be fed to its phase detector; sparser
	// intervals are treated like empty ones (state frozen, last r
	// re-reported). The paper only specifies the zero-sample rule; this
	// guard extends it so that sliver intervals at execution boundaries —
	// a couple of Poisson-noise samples spread over the region — cannot
	// fake phase changes. Set to 1 to disable.
	MinObserveSamples int
	// Detector configures each region's local phase detector.
	Detector lpd.Config
	// Index selects the sample-to-region distribution structure. The
	// zero value is IndexEpoch: the count-compressed batch path.
	Index IndexKind
	// UseIntervalTree is the legacy interval-tree switch, kept for
	// configurations that predate Index. It applies only when Index is
	// left at its zero value, where true selects IndexTree.
	UseIntervalTree bool
	// PruneAfter removes a region after this many consecutive intervals
	// without samples (the paper's proposed region pruning); 0 disables.
	PruneAfter int
	// MaxRegions caps the monitored-region count (0 = unlimited).
	MaxRegions int
	// Annotations supplies compiler-provided candidate regions the loop
	// finder cannot discover (a Section 3.1 future-work extension; empty
	// = the paper's baseline).
	Annotations []Annotation
	// InterProcedural enables building whole-procedure regions around hot
	// non-loop samples (the paper's other Section 3.1 extension; false =
	// baseline).
	InterProcedural bool
	// MaxProcRegionInstrs caps inter-procedural region size
	// (0 = DefaultMaxProcRegionInstrs).
	MaxProcRegionInstrs int
	// UCRHistoryCap bounds the retained per-interval UCR-fraction history.
	// 0 selects DefaultUCRHistoryCap; RetainAllHistory (-1) keeps every
	// interval (experiments and figure generators that plot the full
	// series). The monitor is otherwise O(1)-state per interval, matching
	// the related-work hardware schemes; an unbounded default would be a
	// slow leak on the ROADMAP's billions-of-intervals runs.
	UCRHistoryCap int
}

// IndexKind selects the structure that distributes buffered samples
// across the monitored regions (the paper's Section 3.2.3 cost knob).
type IndexKind int

const (
	// IndexEpoch (the default) distributes through a flat epoch index: an
	// immutable sorted-segment snapshot of the region set, rebuilt only
	// when the set changes, stabbed once per distinct PC over the
	// count-compressed buffer.
	IndexEpoch IndexKind = iota
	// IndexList is the paper's baseline linear region list, stabbed once
	// per sample.
	IndexList
	// IndexTree is the paper's augmented red-black interval tree, stabbed
	// once per sample.
	IndexTree
)

// indexKind resolves the configured distribution structure, honoring the
// legacy UseIntervalTree switch when Index is left at its zero value.
func (c *Config) indexKind() IndexKind {
	if c.Index == IndexEpoch && c.UseIntervalTree {
		return IndexTree
	}
	return c.Index
}

// DefaultUCRHistoryCap is the UCR history window used when
// Config.UCRHistoryCap is 0 — deep enough for any online consumer
// (UCRMedian, reporting) while keeping the monitor's footprint fixed.
const DefaultUCRHistoryCap = 4096

// RetainAllHistory, as Config.UCRHistoryCap, disables the UCR history
// bound (opt-in retain-everything mode).
const RetainAllHistory = -1

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		UCRThreshold:      0.30,
		MinRegionSamples:  16,
		MinObserveSamples: 16,
		Detector:          lpd.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.UCRThreshold <= 0 || c.UCRThreshold > 1 {
		return fmt.Errorf("region: UCR threshold %v outside (0, 1]", c.UCRThreshold)
	}
	if c.MinRegionSamples < 1 {
		return fmt.Errorf("region: min region samples %d < 1", c.MinRegionSamples)
	}
	if c.MinObserveSamples < 1 {
		return fmt.Errorf("region: min observe samples %d < 1", c.MinObserveSamples)
	}
	if c.PruneAfter < 0 {
		return fmt.Errorf("region: prune-after %d < 0", c.PruneAfter)
	}
	if c.MaxRegions < 0 {
		return fmt.Errorf("region: max regions %d < 0", c.MaxRegions)
	}
	if c.MaxProcRegionInstrs < 0 {
		return fmt.Errorf("region: max procedure-region size %d < 0", c.MaxProcRegionInstrs)
	}
	if c.UCRHistoryCap < RetainAllHistory {
		return fmt.Errorf("region: UCR history cap %d < %d", c.UCRHistoryCap, RetainAllHistory)
	}
	if c.Index < IndexEpoch || c.Index > IndexTree {
		return fmt.Errorf("region: unknown index kind %d", c.Index)
	}
	return c.Detector.Validate()
}

// validateAnnotations checks the configured annotations against prog
// (deferred to NewMonitor, which has the program).
func (c *Config) validateAnnotations(prog *isa.Program) error {
	for i := range c.Annotations {
		if err := c.Annotations[i].Validate(prog); err != nil {
			return err
		}
	}
	return nil
}

// Region is one monitored code region: a loop's address span, its
// interval histogram and its local phase detector.
type Region struct {
	// ID is the region's stable identifier within its monitor.
	ID int
	// Start, End delimit the region's half-open address span.
	Start, End isa.Addr
	// Loop is the natural loop the region was built from (nil for
	// regions added manually via AddRegion on a non-loop span).
	Loop *isa.Loop
	// Detector is the region's local phase detector.
	Detector *lpd.Detector
	// FormedAt is the overflow sequence number at which the region was
	// formed.
	FormedAt int

	curr         []int64
	intervalHits int
	totalSamples int64
	idleFor      int
}

// Name renders the paper's region-name convention, e.g. "146f0-14770".
func (r *Region) Name() string { return fmt.Sprintf("%v-%v", r.Start, r.End) }

// NumInstrs returns the region's instruction count.
func (r *Region) NumInstrs() int { return int(r.End-r.Start) / isa.InstrBytes }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr isa.Addr) bool { return addr >= r.Start && addr < r.End }

// TotalSamples returns the samples attributed to the region so far.
func (r *Region) TotalSamples() int64 { return r.totalSamples }

// GranularityCycles estimates the region's granularity in the paper's
// Section 3.2 sense — "the smallest number of cycles required to execute a
// single iteration of the code region" — by summing the per-instruction
// base costs supplied by cost (stall-free lower bound). Local phase
// detection assumes the sampling period exceeds this value; callers can
// warn when it does not.
func (r *Region) GranularityCycles(prog *isa.Program, cost func(isa.Kind) uint64) uint64 {
	var total uint64
	for a := r.Start; a < r.End; a += isa.InstrBytes {
		k, ok := prog.KindAt(a)
		if !ok {
			k = isa.KindNop
		}
		total += cost(k)
	}
	return total
}

// AppendHistogram appends the region's current-interval histogram to dst
// and returns the extended slice. It is the allocation-free form of
// Histogram for callers that reuse a buffer across intervals.
func (r *Region) AppendHistogram(dst []int64) []int64 {
	return append(dst, r.curr...)
}

// Histogram returns a copy of the region's current-interval histogram
// (inspection helper; see AppendHistogram for the reusable-buffer form).
func (r *Region) Histogram() []int64 {
	return r.AppendHistogram(make([]int64, 0, len(r.curr)))
}

// RegionVerdict pairs a region with its verdict for one interval.
type RegionVerdict struct {
	// Region is the monitored region.
	Region *Region
	// Verdict is the local phase detector's output.
	Verdict lpd.Verdict
	// Samples is the number of samples the region received this interval.
	Samples int
}

// Report summarizes one overflow's worth of monitoring. The Verdicts
// slice is reused across intervals: like hpm.Overflow.Samples, it is
// valid only until the next ProcessOverflow call, so consumers that
// retain verdicts must copy them. It is the pipeline payload the
// RegionMonitor adapter publishes.
//
//lint:payload
type Report struct {
	// Seq is the overflow sequence number.
	Seq int
	// TotalSamples is the number of samples in the buffer.
	TotalSamples int
	// MonitoredSamples landed in at least one region.
	MonitoredSamples int
	// UCRSamples landed in no region. Idle samples (PC 0) are included:
	// time spent outside the program text is still unmonitored time, and
	// Figure 6/7's UCR fractions count it. Subtract IdleSamples for the
	// code-only count.
	UCRSamples int
	// IdleSamples is the number of UCR samples at PC 0 — cycles sampled
	// while no program instruction was executing. They can never seed a
	// region, so formation decisions exclude them (see
	// FormationTriggered).
	IdleSamples int
	// UCRFraction is UCRSamples / TotalSamples (0 for an empty buffer).
	UCRFraction float64
	// FormationTriggered reports that the unmonitored fraction of *code*
	// samples — (UCRSamples-IdleSamples) / (TotalSamples-IdleSamples) —
	// exceeded the threshold this interval. Idle samples are excluded from
	// both sides so an idle-heavy interval cannot trip formation with
	// nothing to form.
	FormationTriggered bool
	// NewRegions lists regions formed this interval.
	NewRegions []*Region
	// Pruned lists regions removed this interval.
	Pruned []*Region //lint:bounded -- reset per interval; at most one entry per region
	// Verdicts holds one entry per monitored region, in region-ID order.
	Verdicts []RegionVerdict //lint:bounded -- reset per interval onto verdictScratch; one entry per region
}

// Monitor is the region monitoring framework. Single-owner: the
// monitoring goroutine alone calls ProcessOverflow, and reports alias
// monitor-owned scratch.
//
//lint:single-owner
type Monitor struct {
	prog *isa.Program //lint:config -- fixed at construction
	cfg  Config       //lint:config -- fixed at construction

	regions map[int]*Region
	// index is rebuilt from regions on restore, never serialized.
	index interval.Index //lint:config
	// epoch is non-nil exactly when index is the epoch snapshot; its
	// closure-free Lookup enables the count-compressed batch path.
	epoch *interval.Epoch //lint:config -- derived view of index
	// sortedIDs holds the monitored region IDs ascending, maintained
	// incrementally (AddRegion assigns monotonically increasing IDs, so
	// insertion is an append; removal copies down in place). It replaces
	// the per-interval collect-and-sort over the regions map.
	sortedIDs []int //lint:config -- derived from regions; rebuilt on restore
	nextID    int
	seq       int

	ucr       *stats.Series
	loopCount map[*isa.Loop]int //lint:config -- scratch for formation

	// Per-interval scratch, reused across ProcessOverflow calls so the
	// monitoring hot path stays allocation-free in steady state.
	runs       *stats.RunScratch //lint:config -- count-compression scratch (epoch path)
	keyScratch []uint64          //lint:config -- sample PCs as radix keys (epoch path)
	ucrScratch []isa.Addr        //lint:config -- UCR PCs of the current interval
	// idScratch holds the sorted region IDs the verdict loop iterates.
	//lint:bounded -- reused via [:0]; one entry per region
	idScratch      []int           //lint:config
	verdictScratch []RegionVerdict //lint:config -- backing array for Report.Verdicts
	stabPC         isa.Addr        //lint:config -- current sample PC for stabVisit
	stabHit        bool            //lint:config -- current sample landed in a region
	stabVisit      func(id int)    //lint:config -- distribution callback (built once)
	medScratch     []float64       //lint:config -- UCRMedian sort scratch
}

// NewMonitor returns a monitor for prog.
func NewMonitor(prog *isa.Program, cfg Config) (*Monitor, error) {
	if prog == nil {
		return nil, fmt.Errorf("region: nil program")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validateAnnotations(prog); err != nil {
		return nil, err
	}
	var ix interval.Index
	var epoch *interval.Epoch
	switch cfg.indexKind() {
	case IndexTree:
		ix = interval.NewTree()
	case IndexList:
		ix = interval.NewList()
	default:
		epoch = interval.NewEpoch()
		ix = epoch
	}
	m := &Monitor{
		prog:      prog,
		cfg:       cfg,
		regions:   make(map[int]*Region),
		index:     ix,
		epoch:     epoch,
		loopCount: make(map[*isa.Loop]int),
	}
	if epoch != nil {
		m.runs = stats.NewRunScratch(hpm.DefaultBufferSize)
		m.keyScratch = make([]uint64, 0, hpm.DefaultBufferSize)
	}
	m.ucr = m.newUCRSeries()
	// Built once so sample distribution creates no per-sample closures.
	m.stabVisit = func(id int) {
		r := m.regions[id]
		r.curr[int(m.stabPC-r.Start)/isa.InstrBytes]++
		r.intervalHits++
		r.totalSamples++
		m.stabHit = true
	}
	return m, nil
}

// newUCRSeries builds the UCR-fraction history configured by
// Config.UCRHistoryCap (also used to stage a fresh series during Restore).
func (m *Monitor) newUCRSeries() *stats.Series {
	switch m.cfg.UCRHistoryCap {
	case RetainAllHistory:
		return stats.NewUnboundedSeries()
	case 0:
		return stats.NewSeries(DefaultUCRHistoryCap)
	default:
		return stats.NewSeries(m.cfg.UCRHistoryCap)
	}
}

// Regions returns the monitored regions in ID order.
func (m *Monitor) Regions() []*Region {
	out := make([]*Region, 0, len(m.sortedIDs))
	for _, id := range m.sortedIDs {
		out = append(out, m.regions[id])
	}
	return out
}

// RegionAt returns the first monitored region containing addr, preferring
// the innermost (smallest) one, or nil.
func (m *Monitor) RegionAt(addr isa.Addr) *Region {
	var best *Region
	m.index.Stab(uint64(addr), func(id int) {
		r := m.regions[id]
		if best == nil || r.End-r.Start < best.End-best.Start {
			best = r
		}
	})
	return best
}

// UCRHistory returns the retained per-interval UCR fractions, oldest
// first. Under the default bounded configuration this is the most recent
// UCRHistoryCap intervals (UCRDropped reports how many older ones were
// evicted); with UCRHistoryCap = RetainAllHistory it is the complete
// series.
func (m *Monitor) UCRHistory() []float64 { return m.ucr.Values(nil) }

// UCRDropped returns the number of per-interval UCR fractions evicted
// from the bounded history (0 in retain-everything mode).
func (m *Monitor) UCRDropped() int64 { return m.ucr.Dropped() }

// UCRMedian returns the median per-interval UCR fraction over the
// retained history — the Figure 6 per-benchmark quantity. The sort
// scratch is reused across calls, so periodic reporting does not
// allocate once the history has filled.
func (m *Monitor) UCRMedian() float64 {
	if n := m.ucr.Len(); cap(m.medScratch) < n {
		m.medScratch = make([]float64, 0, n)
	}
	return m.ucr.MedianInto(m.medScratch)
}

// AddRegion manually registers a region over [start, end) (used for
// non-loop spans in tests and by controllers with prior knowledge).
func (m *Monitor) AddRegion(start, end isa.Addr) (*Region, error) {
	if start >= end {
		return nil, fmt.Errorf("region: empty span %v-%v", start, end)
	}
	for _, r := range m.regions {
		if r.Start == start && r.End == end {
			return nil, fmt.Errorf("region: span %v-%v already monitored", start, end)
		}
	}
	if m.cfg.MaxRegions > 0 && len(m.regions) >= m.cfg.MaxRegions {
		return nil, fmt.Errorf("region: region cap %d reached", m.cfg.MaxRegions)
	}
	n := int(end-start) / isa.InstrBytes
	det, err := lpd.New(n, m.cfg.Detector)
	if err != nil {
		return nil, err
	}
	var loop *isa.Loop
	if p := m.prog.ProcAt(start); p != nil {
		if l := p.InnermostLoopAt(start); l != nil && l.Start() == start && l.End() == end {
			loop = l
		}
	}
	r := &Region{
		ID:       m.nextID,
		Start:    start,
		End:      end,
		Loop:     loop,
		Detector: det,
		FormedAt: m.seq,
		curr:     make([]int64, n),
	}
	m.nextID++
	m.regions[r.ID] = r
	m.index.Insert(r.ID, uint64(start), uint64(end))
	// IDs are assigned monotonically, so the append keeps sortedIDs sorted.
	m.sortedIDs = append(m.sortedIDs, r.ID)
	return r, nil
}

// removeRegion drops r from the monitor.
func (m *Monitor) removeRegion(r *Region) {
	delete(m.regions, r.ID)
	m.index.Remove(r.ID)
	ids := m.sortedIDs
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < r.ID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	m.sortedIDs = append(ids[:lo], ids[lo+1:]...)
}

// ProcessOverflow runs one interval of region monitoring over the
// delivered sample buffer and returns the report. It is the monitoring
// thread's whole job: distribute, form, detect, prune. The report's
// Verdicts slice is backed by monitor-owned scratch (see Report).
func (m *Monitor) ProcessOverflow(ov *hpm.Overflow) Report {
	rep := Report{Seq: ov.Seq, TotalSamples: len(ov.Samples)}
	m.seq = ov.Seq

	// Phase 1: distribute samples. UCR PCs are collected for formation.
	// The epoch path count-compresses the buffer first so each distinct PC
	// is stabbed once; it produces the same counters and histograms as the
	// per-sample path (formation is insensitive to ucrPCs order, the only
	// thing that differs).
	var ucrPCs []isa.Addr
	if m.epoch != nil {
		ucrPCs = m.distributeBatched(ov, &rep)
	} else {
		ucrPCs = m.distributePerSample(ov, &rep)
	}
	m.ucrScratch = ucrPCs
	if rep.TotalSamples > 0 {
		rep.UCRFraction = float64(rep.UCRSamples) / float64(rep.TotalSamples)
	}
	m.ucr.Append(rep.UCRFraction)

	// Phase 2: region formation when the UCR is too hot. Idle samples are
	// excluded from the trigger: they are unmonitored time but map to no
	// instruction, so an idle-heavy interval has nothing to form regions
	// around.
	codeSamples := rep.TotalSamples - rep.IdleSamples
	codeUCR := rep.UCRSamples - rep.IdleSamples
	if codeSamples > 0 && float64(codeUCR)/float64(codeSamples) > m.cfg.UCRThreshold {
		rep.FormationTriggered = true
		rep.NewRegions = m.formRegions(ucrPCs)
	}

	// Phase 3: local phase detection per region, then reset interval
	// state and prune cold regions. Pruning mutates sortedIDs mid-loop,
	// so iterate over a scratch copy.
	ids := append(m.idScratch[:0], m.sortedIDs...)
	m.idScratch = ids
	rep.Verdicts = m.verdictScratch[:0]
	for _, id := range ids {
		r := m.regions[id]
		sparse := r.intervalHits > 0 && r.intervalHits < m.cfg.MinObserveSamples
		if sparse {
			// Too sparse to judge: treat as an empty interval.
			for i := range r.curr {
				r.curr[i] = 0
			}
		}
		v := r.Detector.Observe(r.curr)
		rep.Verdicts = append(rep.Verdicts, RegionVerdict{Region: r, Verdict: v, Samples: r.intervalHits})
		// A region counts as idle when it had no *observable* activity —
		// sparse trickle samples below the observation guard do not keep
		// a cold region alive ("remove infrequently executing and
		// relatively cold regions"). The formation interval is exempt: a
		// region formed this interval saw only the tail of the triggering
		// buffer replayed into it, and that partial interval must not
		// start the idle clock (it could otherwise be pruned PruneAfter
		// intervals after formation without ever seeing a full interval).
		if r.intervalHits >= m.cfg.MinObserveSamples {
			r.idleFor = 0
		} else if r.FormedAt != m.seq {
			r.idleFor++
		}
		// r.curr was already zeroed in the sparse path above, and an
		// empty interval left nothing to clear; zero exactly once.
		if !sparse && r.intervalHits > 0 {
			for i := range r.curr {
				r.curr[i] = 0
			}
		}
		r.intervalHits = 0
		if m.cfg.PruneAfter > 0 && r.idleFor >= m.cfg.PruneAfter {
			m.removeRegion(r)
			rep.Pruned = append(rep.Pruned, r)
		}
	}
	m.verdictScratch = rep.Verdicts
	return rep
}

// distributePerSample stabs the index once per buffered sample (the list
// and tree paths). It returns the interval's non-idle UCR PCs, backed by
// monitor scratch.
func (m *Monitor) distributePerSample(ov *hpm.Overflow, rep *Report) []isa.Addr {
	ucrPCs := m.ucrScratch[:0]
	for i := range ov.Samples {
		m.stabPC = ov.Samples[i].PC
		m.stabHit = false
		m.index.Stab(uint64(m.stabPC), m.stabVisit)
		if m.stabHit {
			rep.MonitoredSamples++
		} else {
			rep.UCRSamples++
			if m.stabPC != 0 {
				ucrPCs = append(ucrPCs, m.stabPC)
			} else {
				rep.IdleSamples++
			}
		}
	}
	return ucrPCs
}

// distributeBatched is the epoch path: the buffer is count-compressed
// into (distinct PC, count) runs, each run stabs the epoch snapshot once,
// and histograms advance by the run count. Loopy buffers hold far fewer
// distinct PCs than samples, so this removes most of the stabbing work.
// UCR PCs are re-expanded run-by-run so formation sees the same multiset
// as the per-sample path (sorted rather than in buffer order, which
// formation is insensitive to).
func (m *Monitor) distributeBatched(ov *hpm.Overflow, rep *Report) []isa.Addr {
	keys := m.keyScratch[:0]
	for i := range ov.Samples {
		keys = append(keys, uint64(ov.Samples[i].PC))
	}
	m.keyScratch = keys
	pcs, counts := m.runs.Compress(keys)

	ucrPCs := m.ucrScratch[:0]
	for i, pc := range pcs {
		c := int(counts[i])
		ids := m.epoch.Lookup(pc)
		if len(ids) > 0 {
			rep.MonitoredSamples += c
			for _, id := range ids {
				r := m.regions[id]
				r.curr[int(isa.Addr(pc)-r.Start)/isa.InstrBytes] += int64(c)
				r.intervalHits += c
				r.totalSamples += int64(c)
			}
			continue
		}
		rep.UCRSamples += c
		if pc == 0 {
			rep.IdleSamples += c
			continue
		}
		for ; c > 0; c-- {
			ucrPCs = append(ucrPCs, isa.Addr(pc))
		}
	}
	return ucrPCs
}

// formRegions builds loop regions around unmonitored hot samples: each UCR
// PC is mapped to its innermost enclosing natural loop; loops gathering at
// least MinRegionSamples become regions. Samples with no enclosing loop
// (straight-line code, loops crossing procedure boundaries) form nothing —
// the paper's persistent-UCR limitation. The triggering interval's samples
// are replayed into the new regions so detection starts immediately.
//
// Formation only runs when the UCR fraction trips the threshold — a rare
// event, not per-interval work — so it is free to allocate (new regions,
// their detectors, histogram storage).
//
//lint:allow hotpath boundedstate -- region formation is a declared cold sub-path, capped by cfg.MaxRegions
func (m *Monitor) formRegions(ucrPCs []isa.Addr) []*Region {
	clear(m.loopCount)
	for _, pc := range ucrPCs {
		p := m.prog.ProcAt(pc)
		if p == nil {
			continue
		}
		if l := p.InnermostLoopAt(pc); l != nil {
			m.loopCount[l]++
		}
	}
	// Deterministic formation order: hottest loop first, address as tie
	// break.
	type cand struct {
		loop *isa.Loop
		n    int
	}
	cands := make([]cand, 0, len(m.loopCount))
	for l, n := range m.loopCount {
		if n >= m.cfg.MinRegionSamples {
			cands = append(cands, cand{l, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].loop.Start() < cands[j].loop.Start()
	})
	var formed []*Region
	for _, c := range cands {
		r, err := m.AddRegion(c.loop.Start(), c.loop.End())
		if err != nil {
			continue // already monitored under an identical span, or cap hit
		}
		r.Loop = c.loop
		formed = append(formed, r)
	}
	// Extension candidates (compiler annotations, inter-procedural
	// regions) — no-ops under the paper's baseline configuration.
	for _, c := range m.extendedCandidates(ucrPCs) {
		r, err := m.AddRegion(c.start, c.end)
		if err != nil {
			continue
		}
		formed = append(formed, r)
	}
	if len(formed) == 0 {
		return nil
	}
	// Replay the triggering interval's UCR samples into the new regions.
	for _, pc := range ucrPCs {
		for _, r := range formed {
			if r.Contains(pc) {
				r.curr[int(pc-r.Start)/isa.InstrBytes]++
				r.intervalHits++
				r.totalSamples++
			}
		}
	}
	return formed
}
