package region

import (
	"fmt"
	"sort"

	"regionmon/internal/isa"
)

// Region-formation extensions. The paper's prototype builds regions only
// from intra-procedural natural loops, which is why 254.gap and 186.crafty
// keep >30% of their samples unmonitored: their hot code is straight-line
// or crosses procedure boundaries. Section 3.1 names two remedies as
// future work — "There is no fundamental limitation to building
// inter-procedural regions", and "We also plan to use compiler annotations
// to improve region formation" — both implemented here behind Config
// fields that default to the paper's baseline (off).

// Annotation is a compiler-provided candidate region: a code span the
// static compiler knows is a coherent unit (an outlined hot path, an
// inlined loop body, a function the profile says is monolithic) even
// though the runtime loop finder cannot discover it.
type Annotation struct {
	// Start, End delimit the half-open candidate span.
	Start, End isa.Addr
	// Name optionally labels the annotation (diagnostics only).
	Name string
}

// Validate reports structural errors against prog.
func (a *Annotation) Validate(prog *isa.Program) error {
	if a.Start >= a.End {
		return fmt.Errorf("region: annotation %q has empty span %v-%v", a.Name, a.Start, a.End)
	}
	if prog.BlockAt(a.Start) == nil || prog.BlockAt(a.End-isa.InstrBytes) == nil {
		return fmt.Errorf("region: annotation %q span %v-%v outside program text", a.Name, a.Start, a.End)
	}
	return nil
}

// Contains reports whether addr falls inside the annotation.
func (a *Annotation) Contains(addr isa.Addr) bool { return addr >= a.Start && addr < a.End }

// candidate is one formation candidate of any origin.
type candidate struct {
	start, end isa.Addr
	loop       *isa.Loop // nil for annotation/procedure candidates
	samples    int
	origin     string // "loop", "annotation", "procedure"
}

// extendedCandidates collects annotation- and procedure-based candidates
// from the interval's unmonitored PCs. Loop candidates are gathered by the
// caller; this adds the two extension classes when enabled.
func (m *Monitor) extendedCandidates(ucrPCs []isa.Addr) []candidate {
	var out []candidate

	if len(m.cfg.Annotations) > 0 {
		counts := make([]int, len(m.cfg.Annotations))
		for _, pc := range ucrPCs {
			for i := range m.cfg.Annotations {
				if m.cfg.Annotations[i].Contains(pc) {
					counts[i]++
				}
			}
		}
		for i := range m.cfg.Annotations {
			if counts[i] >= m.cfg.MinRegionSamples {
				a := &m.cfg.Annotations[i]
				out = append(out, candidate{
					start: a.Start, end: a.End, samples: counts[i], origin: "annotation",
				})
			}
		}
	}

	if m.cfg.InterProcedural {
		procCounts := make(map[*isa.Procedure]int)
		for _, pc := range ucrPCs {
			p := m.prog.ProcAt(pc)
			if p == nil {
				continue
			}
			// Only samples the loop finder cannot place feed procedure
			// regions; loop-covered samples stay with their loops.
			if p.InnermostLoopAt(pc) == nil {
				procCounts[p]++
			}
		}
		maxInstrs := m.cfg.MaxProcRegionInstrs
		if maxInstrs == 0 {
			maxInstrs = DefaultMaxProcRegionInstrs
		}
		for p, n := range procCounts {
			if n < m.cfg.MinRegionSamples || p.NumInstrs() > maxInstrs {
				continue
			}
			out = append(out, candidate{
				start: p.Start(), end: p.End(), samples: n, origin: "procedure",
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].samples != out[j].samples {
			return out[i].samples > out[j].samples
		}
		return out[i].start < out[j].start
	})
	return out
}

// DefaultMaxProcRegionInstrs bounds inter-procedural regions: procedures
// larger than this are not monitored wholesale (their histograms would hit
// the same granularity breakdown as ammp's huge loop).
const DefaultMaxProcRegionInstrs = 1024
