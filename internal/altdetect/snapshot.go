package altdetect

import (
	"fmt"
	"sort"

	"regionmon/internal/snap"
)

// Checkpointing for the related-work detectors. As with the other
// detectors, a snapshot captures mutable observation state only; Restore
// targets a detector built over the same program with the same threshold.
// The working-set signature is a map, so its snapshot sorts the block
// indices — map iteration order must never reach the encoded bytes, or two
// snapshots of identical state would differ.

const (
	bbvTag = "bbv"
	wsTag  = "wset"
)

// AppendSnapshot encodes the detector's mutable state onto e.
func (d *BBV) AppendSnapshot(e *snap.Encoder) {
	e.Header(bbvTag, 1)
	e.Bool(d.hasPrev)
	e.F64s(d.prev)
	e.Int(d.changes)
	e.Int(d.total)
}

// RestoreSnapshot decodes state written by AppendSnapshot into d. The
// snapshot's vector length must match the detector's program.
func (d *BBV) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(bbvTag, 1)
	hasPrev := dec.Bool()
	prev := dec.F64s()
	changes := dec.Int()
	total := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(prev) != len(d.prev) {
		return fmt.Errorf("altdetect: BBV snapshot has %d blocks, detector has %d", len(prev), len(d.prev))
	}
	copy(d.prev, prev)
	d.hasPrev = hasPrev
	d.changes = changes
	d.total = total
	return nil
}

// Snapshot returns the detector's state as a standalone versioned byte
// snapshot.
func (d *BBV) Snapshot() []byte {
	e := snap.NewEncoder()
	d.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the detector's state from a Snapshot produced by a
// detector over the same program.
func (d *BBV) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := d.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}

// AppendSnapshot encodes the detector's mutable state onto e. The previous
// working set is written as sorted block indices for determinism.
func (d *WorkingSet) AppendSnapshot(e *snap.Encoder) {
	e.Header(wsTag, 1)
	prev := make([]int, 0, len(d.prev))
	for b := range d.prev {
		prev = append(prev, b)
	}
	sort.Ints(prev)
	e.Ints(prev)
	e.Int(d.changes)
	e.Int(d.total)
}

// RestoreSnapshot decodes state written by AppendSnapshot into d.
func (d *WorkingSet) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(wsTag, 1)
	prev := dec.Ints()
	changes := dec.Int()
	total := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	for _, b := range prev {
		if b < 0 || b >= d.bi.n {
			return fmt.Errorf("altdetect: working-set snapshot block %d outside program (%d blocks)", b, d.bi.n)
		}
	}
	clear(d.prev)
	for _, b := range prev {
		d.prev[b] = struct{}{}
	}
	d.changes = changes
	d.total = total
	return nil
}

// Snapshot returns the detector's state as a standalone versioned byte
// snapshot.
func (d *WorkingSet) Snapshot() []byte {
	e := snap.NewEncoder()
	d.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the detector's state from a Snapshot produced by a
// detector over the same program.
func (d *WorkingSet) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := d.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}
