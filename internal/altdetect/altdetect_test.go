package altdetect

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// twoBlockProgram builds a program with two well-separated straight
// blocks (plus loop machinery) so working-set membership is controllable.
func testProgram(t *testing.T) (*isa.Program, isa.Addr, isa.Addr) {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	p := b.Proc("a")
	p.Code(32, isa.KindALU)
	p.NewBlock()
	p.Code(32, isa.KindLoad, isa.KindALU)
	b.Skip(0x4000)
	q := b.Proc("b")
	q.Code(32, isa.KindALU)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, prog.Procs[0].Start(), prog.Procs[1].Start()
}

// ov builds an overflow whose samples cycle over pcs.
func ov(seq, n int, pcs ...isa.Addr) *hpm.Overflow {
	o := &hpm.Overflow{Seq: seq, Samples: make([]hpm.Sample, n)}
	for i := range o.Samples {
		o.Samples[i] = hpm.Sample{PC: pcs[i%len(pcs)]}
	}
	return o
}

func TestValidation(t *testing.T) {
	prog, _, _ := testProgram(t)
	if _, err := NewBBV(nil, 0.8); err == nil {
		t.Error("BBV nil program accepted")
	}
	if _, err := NewBBV(prog, 0); err == nil {
		t.Error("BBV zero threshold accepted")
	}
	if _, err := NewBBV(prog, 1); err == nil {
		t.Error("BBV threshold 1 accepted")
	}
	if _, err := NewWorkingSet(nil, 0.5); err == nil {
		t.Error("WS nil program accepted")
	}
	if _, err := NewWorkingSet(prog, 1.5); err == nil {
		t.Error("WS bad threshold accepted")
	}
}

func TestBBVSteadyStream(t *testing.T) {
	prog, a, b := testProgram(t)
	d, err := NewBBV(prog, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 10; seq++ {
		v := d.Observe(ov(seq, 100, a, b))
		if v.Changed {
			t.Fatalf("interval %d: steady stream flagged (sim %.3f)", seq, v.Similarity)
		}
		if seq > 0 && v.Similarity < 0.99 {
			t.Fatalf("interval %d: similarity %.3f; want ~1", seq, v.Similarity)
		}
	}
	if d.Changes() != 0 || d.StableFraction() != 1 {
		t.Errorf("changes %d stable %.2f", d.Changes(), d.StableFraction())
	}
}

func TestBBVDetectsWorkingSetMove(t *testing.T) {
	prog, a, b := testProgram(t)
	d, _ := NewBBV(prog, 0.8)
	for seq := 0; seq < 5; seq++ {
		d.Observe(ov(seq, 100, a))
	}
	v := d.Observe(ov(5, 100, b))
	if !v.Changed || v.Similarity > 0.1 {
		t.Fatalf("working-set move not flagged: %+v", v)
	}
	if d.Changes() != 1 {
		t.Errorf("changes = %d; want 1", d.Changes())
	}
}

// TestBBVSeesFrequencyShiftWorkingSetDoesNot is the paper's Section 4
// distinction between Sherwood's and Dhodapkar's schemes: a pure
// frequency shift over the same block set is visible to BBV (it keeps
// frequencies) and invisible to the working-set signature (it does not).
func TestBBVSeesFrequencyShiftWorkingSetDoesNot(t *testing.T) {
	prog, a, b := testProgram(t)
	bbv, _ := NewBBV(prog, 0.8)
	ws, _ := NewWorkingSet(prog, 0.5)

	// 90/10 split between the two blocks.
	mk9010 := func(seq int) *hpm.Overflow {
		o := &hpm.Overflow{Seq: seq, Samples: make([]hpm.Sample, 100)}
		for i := range o.Samples {
			pc := a
			if i%10 == 0 {
				pc = b
			}
			o.Samples[i] = hpm.Sample{PC: pc}
		}
		return o
	}
	// 10/90 split: same working set, inverted frequencies.
	mk1090 := func(seq int) *hpm.Overflow {
		o := &hpm.Overflow{Seq: seq, Samples: make([]hpm.Sample, 100)}
		for i := range o.Samples {
			pc := b
			if i%10 == 0 {
				pc = a
			}
			o.Samples[i] = hpm.Sample{PC: pc}
		}
		return o
	}
	for seq := 0; seq < 5; seq++ {
		bbv.Observe(mk9010(seq))
		ws.Observe(mk9010(seq))
	}
	vb := bbv.Observe(mk1090(5))
	vw := ws.Observe(mk1090(5))
	if !vb.Changed {
		t.Errorf("BBV missed the frequency inversion (sim %.3f)", vb.Similarity)
	}
	if vw.Changed {
		t.Errorf("working-set flagged a frequency-only change (sim %.3f)", vw.Similarity)
	}
}

func TestWorkingSetDetectsNewBlocks(t *testing.T) {
	prog, a, b := testProgram(t)
	d, _ := NewWorkingSet(prog, 0.5)
	for seq := 0; seq < 5; seq++ {
		d.Observe(ov(seq, 100, a))
	}
	v := d.Observe(ov(5, 100, b))
	if !v.Changed || v.Similarity != 0 {
		t.Fatalf("disjoint working set not flagged: %+v", v)
	}
}

func TestIdleSamplesIgnored(t *testing.T) {
	prog, a, _ := testProgram(t)
	bbv, _ := NewBBV(prog, 0.8)
	ws, _ := NewWorkingSet(prog, 0.5)
	for seq := 0; seq < 3; seq++ {
		bbv.Observe(ov(seq, 100, a))
		ws.Observe(ov(seq, 100, a))
	}
	// An all-idle interval (PC 0) must not flag either detector.
	if v := bbv.Observe(ov(3, 100, 0)); v.Changed {
		t.Errorf("BBV flagged an idle interval: %+v", v)
	}
	if v := ws.Observe(ov(3, 100, 0)); v.Changed {
		t.Errorf("WS flagged an idle interval: %+v", v)
	}
	if v := bbv.Observe(ov(4, 100, a)); v.Changed {
		t.Errorf("BBV flagged resumption after idle: %+v", v)
	}
}

func TestVerdictBlocksCount(t *testing.T) {
	prog, a, b := testProgram(t)
	d, _ := NewBBV(prog, 0.8)
	v := d.Observe(ov(0, 100, a, b))
	if v.Blocks != 2 {
		t.Errorf("Blocks = %d; want 2", v.Blocks)
	}
}
