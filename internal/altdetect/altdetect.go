// Package altdetect implements the two global phase-detection schemes the
// paper's related-work section compares against (Section 4), adapted to
// the same PC-sample streams the centroid detector consumes:
//
//   - BBV: Sherwood et al.'s basic-block vector approach [4][5] — each
//     interval is summarized by a vector of per-basic-block execution
//     weight (approximated here by sample counts, since sampling is the
//     only profile source in this system); consecutive intervals are
//     compared by normalized Manhattan distance.
//
//   - Working set: Dhodapkar and Smith's approach [1][8] — each interval
//     is summarized by the *set* of basic blocks touched (no frequency
//     information); consecutive intervals are compared by relative
//     working-set distance (1 − |A∩B| / |A∪B|).
//
// The paper's point in contrasting them: these are still *global* schemes
// — one verdict per interval for the whole program — so, like the
// centroid, they conflate "the mix of regions changed" with "a region's
// behaviour changed". Having them implemented lets the experiments
// quantify that argument on identical sample streams (the DetectorPanel
// experiment and BenchmarkAblationDetectorPanel).
package altdetect

import (
	"fmt"
	"math"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// Verdict is one interval's outcome for either detector. It is the
// pipeline payload the Alt adapter publishes.
//
//lint:payload
type Verdict struct {
	// Similarity is in [0, 1]: 1 = identical to the previous interval.
	Similarity float64
	// Changed reports similarity below the detector's threshold — a
	// phase change.
	Changed bool
	// Blocks is the number of distinct basic blocks sampled this
	// interval.
	Blocks int
}

// blockIndexer maps sampled PCs to dense basic-block indices for one
// program.
type blockIndexer struct {
	prog *isa.Program
	idx  map[*isa.Block]int
	n    int
}

func newBlockIndexer(prog *isa.Program) *blockIndexer {
	bi := &blockIndexer{prog: prog, idx: make(map[*isa.Block]int)}
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			bi.idx[b] = bi.n
			bi.n++
		}
	}
	return bi
}

// lookup returns the dense index for pc, or -1 when pc is outside the
// program text (e.g. idle samples at PC 0).
func (bi *blockIndexer) lookup(pc isa.Addr) int {
	b := bi.prog.BlockAt(pc)
	if b == nil {
		return -1
	}
	return bi.idx[b]
}

// BBV is the basic-block-vector phase detector.
type BBV struct {
	bi        *blockIndexer //lint:config -- fixed block index over the program
	threshold float64       //lint:config -- fixed at construction
	prev      []float64
	curr      []int64 //lint:config -- per-interval scratch, zeroed after each Observe
	hasPrev   bool

	changes int
	total   int
}

// NewBBV returns a BBV detector over prog. threshold is the minimum
// interval-to-interval similarity counted as "same phase"; Sherwood-style
// studies typically use a Manhattan-distance threshold around 0.3–0.5 on
// normalized vectors, i.e. similarity ~0.75–0.85.
func NewBBV(prog *isa.Program, threshold float64) (*BBV, error) {
	if prog == nil {
		return nil, fmt.Errorf("altdetect: nil program")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("altdetect: BBV threshold %v outside (0, 1)", threshold)
	}
	bi := newBlockIndexer(prog)
	return &BBV{
		bi:        bi,
		threshold: threshold,
		prev:      make([]float64, bi.n),
		curr:      make([]int64, bi.n),
	}, nil
}

// Observe processes one overflow delivery.
func (d *BBV) Observe(ov *hpm.Overflow) Verdict {
	for i := range d.curr {
		d.curr[i] = 0
	}
	var total int64
	blocks := 0
	for i := range ov.Samples {
		bi := d.bi.lookup(ov.Samples[i].PC)
		if bi < 0 {
			continue
		}
		if d.curr[bi] == 0 {
			blocks++
		}
		d.curr[bi]++
		total++
	}
	d.total++
	v := Verdict{Blocks: blocks}
	if total == 0 {
		// Nothing sampled inside the program: repeat previous state
		// without comparing.
		v.Similarity = 1
		return v
	}
	// Normalize and compare by Manhattan distance.
	if d.hasPrev {
		var dist float64
		for i, c := range d.curr {
			dist += math.Abs(float64(c)/float64(total) - d.prev[i])
		}
		v.Similarity = 1 - dist/2
		if v.Similarity < d.threshold {
			v.Changed = true
			d.changes++
		}
	} else {
		v.Similarity = 1
	}
	for i, c := range d.curr {
		d.prev[i] = float64(c) / float64(total)
	}
	d.hasPrev = true
	return v
}

// Changes returns the number of flagged phase changes.
func (d *BBV) Changes() int { return d.changes }

// Intervals returns the number of observed intervals.
func (d *BBV) Intervals() int { return d.total }

// StableFraction returns the fraction of intervals not flagged.
func (d *BBV) StableFraction() float64 {
	if d.total == 0 {
		return 0
	}
	return 1 - float64(d.changes)/float64(d.total)
}

// WorkingSet is the Dhodapkar-style working-set signature detector: only
// *which* blocks executed matters, not how often — the difference from
// BBV the paper's Section 4 highlights.
type WorkingSet struct {
	bi        *blockIndexer //lint:config -- fixed block index over the program
	threshold float64       //lint:config -- fixed at construction
	prev      map[int]struct{}
	curr      map[int]struct{} //lint:config -- per-interval scratch, cleared after each Observe

	changes int
	total   int
}

// NewWorkingSet returns a working-set detector. threshold is the maximum
// relative working-set distance (1 − Jaccard similarity) counted as "same
// phase"; Dhodapkar and Smith use values around 0.5.
func NewWorkingSet(prog *isa.Program, threshold float64) (*WorkingSet, error) {
	if prog == nil {
		return nil, fmt.Errorf("altdetect: nil program")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("altdetect: working-set threshold %v outside (0, 1)", threshold)
	}
	return &WorkingSet{
		bi:        newBlockIndexer(prog),
		threshold: threshold,
		prev:      make(map[int]struct{}),
		curr:      make(map[int]struct{}),
	}, nil
}

// Observe processes one overflow delivery.
func (d *WorkingSet) Observe(ov *hpm.Overflow) Verdict {
	clear(d.curr)
	for i := range ov.Samples {
		if bi := d.bi.lookup(ov.Samples[i].PC); bi >= 0 {
			d.curr[bi] = struct{}{}
		}
	}
	d.total++
	v := Verdict{Blocks: len(d.curr)}
	if len(d.curr) == 0 {
		v.Similarity = 1
		return v
	}
	if d.total > 1 {
		inter := 0
		for b := range d.curr {
			if _, ok := d.prev[b]; ok {
				inter++
			}
		}
		union := len(d.prev) + len(d.curr) - inter
		if union > 0 {
			v.Similarity = float64(inter) / float64(union)
		} else {
			v.Similarity = 1
		}
		if 1-v.Similarity > d.threshold {
			v.Changed = true
			d.changes++
		}
	} else {
		v.Similarity = 1
	}
	d.prev, d.curr = d.curr, d.prev
	return v
}

// Changes returns the number of flagged phase changes.
func (d *WorkingSet) Changes() int { return d.changes }

// Intervals returns the number of observed intervals.
func (d *WorkingSet) Intervals() int { return d.total }

// StableFraction returns the fraction of intervals not flagged.
func (d *WorkingSet) StableFraction() float64 {
	if d.total == 0 {
		return 0
	}
	return 1 - float64(d.changes)/float64(d.total)
}
