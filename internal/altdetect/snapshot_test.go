package altdetect

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// altStream generates overflows alternating between the two procedures
// with occasional out-of-text (idle) intervals.
func altStream(a, b isa.Addr, n int) []*hpm.Overflow {
	out := make([]*hpm.Overflow, n)
	for i := range out {
		switch {
		case i%13 == 7:
			out[i] = ov(i, 50, 0) // idle PCs only
		case (i/6)%2 == 0:
			out[i] = ov(i, 100, a, a, b)
		default:
			out[i] = ov(i, 100, b)
		}
	}
	return out
}

func TestBBVSnapshotForkEquality(t *testing.T) {
	prog, a, b := testProgram(t)
	const total, at = 60, 23
	stream := altStream(a, b, total)

	ref, _ := NewBBV(prog, 0.8)
	forked, _ := NewBBV(prog, 0.8)
	for i := 0; i < at; i++ {
		ref.Observe(stream[i])
		forked.Observe(stream[i])
	}
	restored, _ := NewBBV(prog, 0.8)
	if err := restored.Restore(forked.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := at; i < total; i++ {
		rv := ref.Observe(stream[i])
		sv := restored.Observe(stream[i])
		if rv != sv {
			t.Fatalf("interval %d: verdict diverged: %+v vs %+v", i, rv, sv)
		}
	}
	if ref.Changes() != restored.Changes() || ref.Intervals() != restored.Intervals() {
		t.Fatal("counters diverged")
	}
}

func TestWorkingSetSnapshotForkEquality(t *testing.T) {
	prog, a, b := testProgram(t)
	const total, at = 60, 29
	stream := altStream(a, b, total)

	ref, _ := NewWorkingSet(prog, 0.5)
	forked, _ := NewWorkingSet(prog, 0.5)
	for i := 0; i < at; i++ {
		ref.Observe(stream[i])
		forked.Observe(stream[i])
	}
	// Snapshot twice: map-backed state must still encode deterministically.
	s1, s2 := forked.Snapshot(), forked.Snapshot()
	if string(s1) != string(s2) {
		t.Fatal("working-set snapshot is not deterministic")
	}
	restored, _ := NewWorkingSet(prog, 0.5)
	if err := restored.Restore(s1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := at; i < total; i++ {
		rv := ref.Observe(stream[i])
		sv := restored.Observe(stream[i])
		if rv != sv {
			t.Fatalf("interval %d: verdict diverged: %+v vs %+v", i, rv, sv)
		}
	}
	if ref.Changes() != restored.Changes() || ref.Intervals() != restored.Intervals() {
		t.Fatal("counters diverged")
	}
}

func TestWorkingSetSnapshotRejectsBadBlock(t *testing.T) {
	prog, a, b := testProgram(t)
	d, _ := NewWorkingSet(prog, 0.5)
	d.Observe(ov(0, 10, a, b))
	snapBytes := d.Snapshot()

	// A single-proc program has fewer blocks; restoring the richer
	// snapshot into it must fail validation.
	small := isa.NewBuilder(0x10000)
	small.Proc("tiny").Code(8, isa.KindALU)
	sp, err := small.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := NewWorkingSet(sp, 0.5)
	if err := sd.Restore(snapBytes); err == nil {
		t.Fatal("expected block-range validation error")
	}
}
