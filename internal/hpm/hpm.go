// Package hpm simulates the hardware performance monitoring unit the
// original system programs on UltraSPARC: a cycle counter that raises a
// sampling interrupt every Period cycles, capturing the interrupted
// program counter plus performance-counter deltas (instructions retired,
// data-cache misses) into a user buffer; when the buffer fills, the
// monitoring thread is notified (the "buffer overflow" every phase-
// detection action in the paper is keyed to).
//
// The simulated CPU (internal/sim) drives the monitor by reporting each
// retired instruction's address and cycle cost. Everything downstream —
// centroid GPD, region monitoring, LPD — consumes only the overflow
// deliveries, so the substitution boundary is exactly the hardware
// interface of the original system.
package hpm

import (
	"fmt"
	"math/rand/v2"

	"regionmon/internal/isa"
)

// DefaultBufferSize matches the paper's configuration: "We set the buffer
// size to 2032 samples".
const DefaultBufferSize = 2032

// Sample is one sampling-interrupt record.
type Sample struct {
	// PC is the program counter captured by the interrupt.
	PC isa.Addr
	// Cycle is the absolute cycle at which the interrupt fired.
	Cycle uint64
	// Instrs is the number of instructions retired since the previous
	// sample.
	Instrs uint64
	// DCMisses is the number of data-cache misses since the previous
	// sample.
	DCMisses uint64
}

// Overflow is delivered to the monitoring callback when the sample buffer
// fills. Samples is valid only for the duration of the callback: the
// monitor reuses the backing array (the real system hands the optimizer a
// kernel-filled user buffer with the same lifetime rules).
type Overflow struct {
	// Samples holds exactly BufferSize samples in capture order.
	Samples []Sample
	// Cycle is the absolute cycle of the final sample in the buffer.
	Cycle uint64
	// Seq numbers overflow deliveries from 0.
	Seq int
}

// Config parameterizes the monitor.
type Config struct {
	// Period is the sampling period in cycles per interrupt (the paper
	// sweeps 45K, 100K, 450K, 800K, 900K and 1.5M).
	Period uint64
	// BufferSize is the number of samples per overflow delivery;
	// 0 selects DefaultBufferSize.
	BufferSize int
	// JitterFrac perturbs each inter-sample gap by a deterministic
	// pseudo-random factor in [1-JitterFrac, 1+JitterFrac]. Real
	// interrupt-based sampling has skid and timer jitter; without it an
	// idealized simulator aliases against constant-cost loop bodies and
	// concentrates samples on a few drifting instructions. 0 disables
	// (exact cadence, used by unit tests).
	JitterFrac float64
	// JitterSeed seeds the jitter PRNG (0 picks a fixed default, keeping
	// runs reproducible).
	JitterSeed uint64
}

// Monitor is the simulated performance monitoring unit. All of a
// Monitor's state (sample buffer, seeded jitter PRNG, counters) is
// per-instance: a Monitor is single-owner like the executor driving it,
// and concurrent runs each construct their own.
//
//lint:single-owner
type Monitor struct {
	period   uint64
	jitter   float64
	rng      *rand.Rand
	buf      []Sample
	n        int
	seq      int
	onFlush  func(*Overflow)
	nextFire uint64 // absolute cycle of the next sampling interrupt

	cycle  uint64 // absolute retired-cycle counter
	instrs uint64 // instructions since last sample
	misses uint64 // data-cache misses since last sample

	totalSamples uint64
}

// New returns a Monitor with the given configuration; onOverflow is invoked
// synchronously on every buffer fill.
func New(cfg Config, onOverflow func(*Overflow)) (*Monitor, error) {
	if cfg.Period == 0 {
		return nil, fmt.Errorf("hpm: sampling period must be positive")
	}
	size := cfg.BufferSize
	if size == 0 {
		size = DefaultBufferSize
	}
	if size < 1 {
		return nil, fmt.Errorf("hpm: buffer size %d must be positive", cfg.BufferSize)
	}
	if onOverflow == nil {
		return nil, fmt.Errorf("hpm: overflow callback must not be nil")
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac >= 1 {
		return nil, fmt.Errorf("hpm: jitter fraction %v outside [0, 1)", cfg.JitterFrac)
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 0x4A17 // fixed default keeps runs reproducible
	}
	return &Monitor{
		period:   cfg.Period,
		jitter:   cfg.JitterFrac,
		rng:      rand.New(rand.NewPCG(seed, cfg.Period)),
		buf:      make([]Sample, size),
		onFlush:  onOverflow,
		nextFire: cfg.Period,
	}, nil
}

// advanceFire schedules the next sampling interrupt.
func (m *Monitor) advanceFire() {
	step := m.period
	if m.jitter > 0 {
		f := 1 + m.jitter*(2*m.rng.Float64()-1)
		step = uint64(float64(m.period) * f)
		if step == 0 {
			step = 1
		}
	}
	m.nextFire += step
}

// Period returns the current sampling period.
func (m *Monitor) Period() uint64 { return m.period }

// SetPeriod reprograms the sampling period; it takes effect for the next
// interrupt scheduling after the currently pending one fires.
func (m *Monitor) SetPeriod(p uint64) error {
	if p == 0 {
		return fmt.Errorf("hpm: sampling period must be positive")
	}
	m.period = p
	return nil
}

// Cycle returns the absolute retired-cycle count observed so far.
func (m *Monitor) Cycle() uint64 { return m.cycle }

// TotalSamples returns the number of samples captured so far (including
// samples sitting in the not-yet-overflowed buffer).
func (m *Monitor) TotalSamples() uint64 { return m.totalSamples }

// BufferFill returns the number of samples currently in the buffer.
func (m *Monitor) BufferFill() int { return m.n }

// Deliveries returns the number of overflow deliveries made so far
// (including any partial delivery from Flush).
func (m *Monitor) Deliveries() int { return m.seq }

// Retire reports one retired instruction at pc costing cycles (>= 1), with
// dcMisses data-cache misses attributed to it. If one or more sampling
// boundaries elapse during the instruction, an interrupt fires per
// boundary and each captured sample is attributed to pc — exactly the
// skid-free idealization of interrupt-based PC sampling, where a long
// stall makes its instruction proportionally more likely to be sampled.
func (m *Monitor) Retire(pc isa.Addr, cycles uint64, dcMisses uint64) {
	if cycles == 0 {
		cycles = 1
	}
	m.cycle += cycles
	m.instrs++
	m.misses += dcMisses
	for m.cycle >= m.nextFire {
		m.capture(pc)
		m.advanceFire()
	}
}

// TryRetireBatch advances the monitor by a whole batch of retired
// instructions (cycles total cycles, instrs instructions, dcMisses misses)
// only when no sampling boundary falls inside the batch, reporting whether
// it did so. When it returns false the monitor is unchanged and the caller
// must retire the batch instruction-by-instruction so the interrupt can be
// attributed to the correct PC. This is the fast path that lets the
// simulator skip instruction-level bookkeeping between samples without
// changing any observable sampling behaviour.
func (m *Monitor) TryRetireBatch(cycles, instrs, dcMisses uint64) bool {
	if m.cycle+cycles >= m.nextFire {
		return false
	}
	m.cycle += cycles
	m.instrs += instrs
	m.misses += dcMisses
	return true
}

// Idle advances the cycle counter without retiring an instruction (the
// program is off-CPU, e.g. during a simulated system stall). Interrupts
// during idle capture PC 0, which downstream distribution treats as
// unmonitored.
func (m *Monitor) Idle(cycles uint64) {
	m.cycle += cycles
	for m.cycle >= m.nextFire {
		m.capture(0)
		m.advanceFire()
	}
}

func (m *Monitor) capture(pc isa.Addr) {
	m.buf[m.n] = Sample{PC: pc, Cycle: m.cycle, Instrs: m.instrs, DCMisses: m.misses}
	m.instrs = 0
	m.misses = 0
	m.n++
	m.totalSamples++
	if m.n == len(m.buf) {
		ov := Overflow{Samples: m.buf, Cycle: m.cycle, Seq: m.seq}
		m.seq++
		m.n = 0
		m.onFlush(&ov)
	}
}

// Flush delivers a partial buffer (if any samples are pending) as a final
// overflow; used at end of run so the tail of execution is not lost.
// Returns true if a delivery was made.
func (m *Monitor) Flush() bool {
	if m.n == 0 {
		return false
	}
	ov := Overflow{Samples: m.buf[:m.n], Cycle: m.cycle, Seq: m.seq}
	m.seq++
	m.n = 0
	m.onFlush(&ov)
	return true
}

// CPI computes cycles-per-instruction over an overflow delivery (a global
// metric GPD-style systems consult alongside the centroid).
func CPI(ov *Overflow) float64 {
	var instrs uint64
	for i := range ov.Samples {
		instrs += ov.Samples[i].Instrs
	}
	if instrs == 0 {
		return 0
	}
	var span uint64
	if len(ov.Samples) > 0 {
		span = ov.Samples[len(ov.Samples)-1].Cycle - ov.Samples[0].Cycle + 1
	}
	return float64(span) / float64(instrs)
}

// DPI computes data-cache misses per instruction over an overflow delivery.
func DPI(ov *Overflow) float64 {
	var instrs, misses uint64
	for i := range ov.Samples {
		instrs += ov.Samples[i].Instrs
		misses += ov.Samples[i].DCMisses
	}
	if instrs == 0 {
		return 0
	}
	return float64(misses) / float64(instrs)
}

// PCs appends the program-counter values of the overflow's samples to dst
// and returns it; convenience for the centroid detector.
func PCs(ov *Overflow, dst []uint64) []uint64 {
	for i := range ov.Samples {
		dst = append(dst, uint64(ov.Samples[i].PC))
	}
	return dst
}
