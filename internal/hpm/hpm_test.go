package hpm

import (
	"testing"
	"testing/quick"

	"regionmon/internal/isa"
)

func mustNew(t *testing.T, cfg Config, cb func(*Overflow)) *Monitor {
	t.Helper()
	m, err := New(cfg, cb)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	cb := func(*Overflow) {}
	if _, err := New(Config{Period: 0}, cb); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := New(Config{Period: 100, BufferSize: -1}, cb); err == nil {
		t.Error("negative buffer should fail")
	}
	if _, err := New(Config{Period: 100}, nil); err == nil {
		t.Error("nil callback should fail")
	}
	m, err := New(Config{Period: 100}, cb)
	if err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
	if len(m.buf) != DefaultBufferSize {
		t.Errorf("default buffer size = %d; want %d", len(m.buf), DefaultBufferSize)
	}
}

func TestSamplingCadence(t *testing.T) {
	var overflows []Overflow
	m := mustNew(t, Config{Period: 10, BufferSize: 4}, func(ov *Overflow) {
		cp := *ov
		cp.Samples = append([]Sample(nil), ov.Samples...)
		overflows = append(overflows, cp)
	})
	// 100 instructions, 1 cycle each: samples at cycles 10,20,...,100.
	for i := 0; i < 100; i++ {
		m.Retire(isa.Addr(0x1000+4*i), 1, 0)
	}
	if m.Cycle() != 100 {
		t.Fatalf("cycle = %d; want 100", m.Cycle())
	}
	if m.TotalSamples() != 10 {
		t.Fatalf("samples = %d; want 10", m.TotalSamples())
	}
	if len(overflows) != 2 { // 10 samples / 4 per buffer = 2 full deliveries
		t.Fatalf("overflows = %d; want 2", len(overflows))
	}
	if overflows[0].Seq != 0 || overflows[1].Seq != 1 {
		t.Error("overflow sequence numbers wrong")
	}
	first := overflows[0].Samples
	if first[0].Cycle != 10 || first[3].Cycle != 40 {
		t.Errorf("sample cycles = %d, %d; want 10, 40", first[0].Cycle, first[3].Cycle)
	}
	// The sample at cycle 10 interrupts the 10th instruction (index 9).
	if first[0].PC != isa.Addr(0x1000+4*9) {
		t.Errorf("sample PC = %v; want %v", first[0].PC, isa.Addr(0x1000+4*9))
	}
	// Each period retired 10 instructions.
	if first[1].Instrs != 10 {
		t.Errorf("instrs per sample = %d; want 10", first[1].Instrs)
	}
	if m.BufferFill() != 2 { // 10 - 8 delivered
		t.Errorf("buffer fill = %d; want 2", m.BufferFill())
	}
}

func TestLongStallAttribution(t *testing.T) {
	var pcs []isa.Addr
	m := mustNew(t, Config{Period: 10, BufferSize: 100}, func(*Overflow) {})
	_ = m
	m2 := mustNew(t, Config{Period: 10, BufferSize: 3}, func(ov *Overflow) {
		for _, s := range ov.Samples {
			pcs = append(pcs, s.PC)
		}
	})
	// One instruction stalls 35 cycles: it must absorb 3 samples.
	m2.Retire(0xAAAA, 35, 1)
	m2.Flush()
	if len(pcs) != 3 {
		t.Fatalf("captured %d samples; want 3", len(pcs))
	}
	for _, pc := range pcs {
		if pc != 0xAAAA {
			t.Errorf("stall sample attributed to %v; want aaaa", pc)
		}
	}
}

func TestCounterDeltas(t *testing.T) {
	var samples []Sample
	m := mustNew(t, Config{Period: 100, BufferSize: 2}, func(ov *Overflow) {
		samples = append(samples, ov.Samples...)
	})
	// 50 instructions of 2 cycles each with 1 miss every 5th: exactly one
	// sample at cycle 100 carrying 50 instrs and 10 misses.
	for i := 0; i < 50; i++ {
		miss := uint64(0)
		if i%5 == 0 {
			miss = 1
		}
		m.Retire(0x100, 2, miss)
	}
	m.Flush()
	if len(samples) != 1 {
		t.Fatalf("samples = %d; want 1", len(samples))
	}
	if samples[0].Instrs != 50 || samples[0].DCMisses != 10 {
		t.Errorf("deltas = %d instrs, %d misses; want 50, 10", samples[0].Instrs, samples[0].DCMisses)
	}
}

func TestIdleCapturesZeroPC(t *testing.T) {
	var pcs []isa.Addr
	m := mustNew(t, Config{Period: 10, BufferSize: 2}, func(ov *Overflow) {
		for _, s := range ov.Samples {
			pcs = append(pcs, s.PC)
		}
	})
	m.Idle(25)
	m.Flush()
	if len(pcs) != 2 {
		t.Fatalf("idle samples = %d; want 2", len(pcs))
	}
	for _, pc := range pcs {
		if pc != 0 {
			t.Errorf("idle sample PC = %v; want 0", pc)
		}
	}
}

func TestFlushBehaviour(t *testing.T) {
	count := 0
	m := mustNew(t, Config{Period: 10, BufferSize: 100}, func(ov *Overflow) {
		count++
		if len(ov.Samples) != 3 {
			t.Errorf("flush delivered %d samples; want 3", len(ov.Samples))
		}
	})
	if m.Flush() {
		t.Error("empty flush should report false")
	}
	for i := 0; i < 30; i++ {
		m.Retire(0x100, 1, 0)
	}
	if !m.Flush() {
		t.Error("non-empty flush should report true")
	}
	if count != 1 {
		t.Errorf("flush deliveries = %d; want 1", count)
	}
	if m.BufferFill() != 0 {
		t.Error("flush did not clear buffer")
	}
}

func TestSetPeriod(t *testing.T) {
	m := mustNew(t, Config{Period: 10, BufferSize: 8}, func(*Overflow) {})
	if err := m.SetPeriod(0); err == nil {
		t.Error("SetPeriod(0) should fail")
	}
	if err := m.SetPeriod(1000); err != nil {
		t.Fatalf("SetPeriod: %v", err)
	}
	if m.Period() != 1000 {
		t.Errorf("Period = %d", m.Period())
	}
	// Pending interrupt still fires at the old boundary (cycle 10), the
	// one after at 1010.
	m.Retire(0x1, 12, 0)
	if m.TotalSamples() != 1 {
		t.Fatalf("samples after pending boundary = %d; want 1", m.TotalSamples())
	}
	m.Retire(0x2, 1000, 0)
	if m.TotalSamples() != 2 {
		t.Errorf("samples after reprogram = %d; want 2", m.TotalSamples())
	}
}

func TestJitterValidationAndBounds(t *testing.T) {
	cb := func(*Overflow) {}
	if _, err := New(Config{Period: 100, JitterFrac: -0.1}, cb); err == nil {
		t.Error("negative jitter should fail")
	}
	if _, err := New(Config{Period: 100, JitterFrac: 1}, cb); err == nil {
		t.Error("jitter >= 1 should fail")
	}
	// With jitter, inter-sample gaps vary but stay within the band and
	// the run remains deterministic.
	gaps := func() []uint64 {
		var cycles []uint64
		m, err := New(Config{Period: 1000, BufferSize: 64, JitterFrac: 0.1}, func(ov *Overflow) {
			for _, s := range ov.Samples {
				cycles = append(cycles, s.Cycle)
			}
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for i := 0; i < 200_000; i++ {
			m.Retire(0x100, 1, 0)
		}
		m.Flush()
		return cycles
	}
	g1, g2 := gaps(), gaps()
	if len(g1) < 100 || len(g1) != len(g2) {
		t.Fatalf("sample counts: %d vs %d", len(g1), len(g2))
	}
	varied := false
	for i := 1; i < len(g1); i++ {
		if g1[i] != g2[i] {
			t.Fatal("jittered sampling not deterministic")
		}
		gap := g1[i] - g1[i-1]
		if gap < 900 || gap > 1100 {
			t.Fatalf("gap %d outside jitter band [900, 1100]", gap)
		}
		if gap != 1000 {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced no variation")
	}
}

func TestZeroCycleRetireCountsAsOne(t *testing.T) {
	m := mustNew(t, Config{Period: 5, BufferSize: 8}, func(*Overflow) {})
	for i := 0; i < 10; i++ {
		m.Retire(0x1, 0, 0)
	}
	if m.Cycle() != 10 {
		t.Errorf("cycle = %d; want 10 (zero-cost retires clamp to 1)", m.Cycle())
	}
}

func TestCPIAndDPI(t *testing.T) {
	ov := &Overflow{Samples: []Sample{
		{PC: 1, Cycle: 100, Instrs: 50, DCMisses: 5},
		{PC: 2, Cycle: 200, Instrs: 25, DCMisses: 0},
	}}
	cpi := CPI(ov)
	if cpi <= 0 {
		t.Errorf("CPI = %v; want positive", cpi)
	}
	dpi := DPI(ov)
	if want := 5.0 / 75.0; dpi != want {
		t.Errorf("DPI = %v; want %v", dpi, want)
	}
	empty := &Overflow{}
	if CPI(empty) != 0 || DPI(empty) != 0 {
		t.Error("empty overflow CPI/DPI should be 0")
	}
	pcs := PCs(ov, nil)
	if len(pcs) != 2 || pcs[0] != 1 || pcs[1] != 2 {
		t.Errorf("PCs = %v", pcs)
	}
}

// Property: the number of samples equals floor(totalCycles / period)
// regardless of how the cycles are split across instructions.
func TestSampleCountProperty(t *testing.T) {
	f := func(seed uint64) bool {
		costs := splitmix(seed, 200, 40)
		period := uint64(37)
		var total uint64
		m, err := New(Config{Period: period, BufferSize: 16}, func(*Overflow) {})
		if err != nil {
			return false
		}
		for _, c := range costs {
			m.Retire(0x100, c, 0)
			if c == 0 {
				c = 1
			}
			total += c
		}
		return m.TotalSamples() == total/period && m.Cycle() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// splitmix generates n deterministic pseudo-random cycle costs in [0, max).
func splitmix(seed uint64, n int, max uint64) []uint64 {
	out := make([]uint64, n)
	x := seed
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = z % max
	}
	return out
}
