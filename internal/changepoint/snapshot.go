package changepoint

import (
	"fmt"

	"regionmon/internal/snap"
)

// Detector checkpointing. A snapshot captures the mutable observation
// state — the metric window ring (with its exact accounting) and the
// change bookkeeping — but not the configuration: Restore targets a
// detector constructed with the same Config, and a resumed detector then
// produces a byte-identical verdict stream for the same subsequent
// inputs (evaluation cadence is derived from the ring's absolute
// observation count, which the ring snapshot carries).

const detectorTag = "chgpt"

// AppendSnapshot encodes the detector's mutable state onto e.
func (d *Detector) AppendSnapshot(e *snap.Encoder) {
	e.Header(detectorTag, 1)
	e.I64(d.lastChange)
	e.Int(d.changes)
	d.hist.AppendSnapshot(e)
}

// RestoreSnapshot decodes state written by AppendSnapshot into d. The
// snapshot's window capacity must match the detector's Window.
func (d *Detector) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(detectorTag, 1)
	lastChange := dec.I64()
	changes := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if changes < 0 {
		return fmt.Errorf("changepoint: snapshot has negative change count %d", changes)
	}
	if err := d.hist.RestoreSnapshot(dec); err != nil {
		return err
	}
	d.lastChange = lastChange
	d.changes = changes
	return nil
}

// Snapshot returns the detector's state as a standalone versioned byte
// snapshot.
func (d *Detector) Snapshot() []byte {
	e := snap.NewEncoder()
	d.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the detector's state from a Snapshot produced by a
// detector with the same configuration.
func (d *Detector) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := d.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}
