package changepoint

import (
	"testing"
)

// metricStream produces a deterministic per-interval metric with a level
// shift at the given index.
func metricStream(n, shiftAt int, before, after float64) []float64 {
	g := noise{rng: 0xfeed}
	out := make([]float64, n)
	for i := range out {
		base := before
		if i >= shiftAt {
			base = after
		}
		out[i] = g.value(base, base*0.02)
	}
	return out
}

func TestDetectorFlagsShift(t *testing.T) {
	d := MustNew(DefaultConfig())
	stream := metricStream(400, 200, 1.2, 1.8)
	changedAt := -1
	changes := 0
	for i, x := range stream {
		v := d.Observe(x)
		if v.Changed {
			changes++
			if changedAt < 0 {
				changedAt = i
			}
			if v.ChangeAt < 190 || v.ChangeAt > 210 {
				t.Errorf("interval %d: change located at %d; want near 200", i, v.ChangeAt)
			}
			if v.PValue > d.cfg.Engine.Alpha {
				t.Errorf("confirmed change with p = %v above alpha", v.PValue)
			}
		}
	}
	if changes == 0 {
		t.Fatal("50% metric shift never flagged")
	}
	if changes > 2 {
		t.Errorf("one shift confirmed %d times; want 1 (2 tolerated for boundary jitter)", changes)
	}
	if changedAt < 200 {
		t.Errorf("change flagged at interval %d, before it happened", changedAt)
	}
	if d.Changes() != changes || d.LastChange() < 0 {
		t.Errorf("counters: Changes = %d (saw %d), LastChange = %d", d.Changes(), changes, d.LastChange())
	}
}

func TestDetectorQuietOnSteadyStream(t *testing.T) {
	d := MustNew(DefaultConfig())
	stream := metricStream(600, 600, 1.5, 1.5)
	for i, x := range stream {
		if v := d.Observe(x); v.Changed {
			t.Fatalf("steady stream flagged a change at interval %d: %+v", i, v)
		}
	}
	if d.Changes() != 0 || d.LastChange() != -1 {
		t.Errorf("counters after steady stream: %d changes, last %d", d.Changes(), d.LastChange())
	}
}

func TestDetectorEvaluationCadence(t *testing.T) {
	cfg := DefaultConfig()
	d := MustNew(cfg)
	stream := metricStream(3*cfg.Window, 3*cfg.Window, 2, 2)
	evals := 0
	for i, x := range stream {
		v := d.Observe(x)
		if v.Evaluated {
			evals++
			if i+1 < cfg.Window {
				t.Fatalf("evaluated at interval %d, before the window filled", i)
			}
			if (i+1)%cfg.EvalEvery != 0 {
				t.Fatalf("evaluated at interval %d, off the %d-stride", i, cfg.EvalEvery)
			}
		}
	}
	want := 0
	for k := cfg.EvalEvery; k <= 3*cfg.Window; k += cfg.EvalEvery {
		if k >= cfg.Window {
			want++
		}
	}
	if evals != want {
		t.Errorf("evaluations = %d; want %d", evals, want)
	}
}

// TestDetectorObserveAllocs gates the detector's own hot path: after the
// window has filled, observations — including the ones that run the
// engine — must not allocate.
func TestDetectorObserveAllocs(t *testing.T) {
	d := MustNew(DefaultConfig())
	stream := metricStream(1000, 500, 1.0, 1.6)
	for _, x := range stream[:200] {
		d.Observe(x)
	}
	i := 200
	avg := testing.AllocsPerRun(400, func() {
		d.Observe(stream[i%len(stream)])
		i++
	})
	if avg != 0 {
		t.Errorf("Observe allocates %.2f allocs/op steady-state; want 0", avg)
	}
}
