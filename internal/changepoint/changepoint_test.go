package changepoint

import (
	"testing"
)

// noise is a deterministic splitmix64-driven generator of values in
// [base-amp, base+amp).
type noise struct{ rng uint64 }

func (n *noise) next() uint64 {
	n.rng += 0x9e3779b97f4a7c15
	z := n.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (n *noise) value(base, amp float64) float64 {
	return base + amp*(float64(n.next()%1000)/500-1)
}

// series builds segments of noisy observations: segs is a list of
// (length, mean) pairs with 2% relative noise.
func series(seed uint64, segs ...[2]float64) []float64 {
	g := noise{rng: seed}
	var out []float64
	for _, s := range segs {
		n, mean := int(s[0]), s[1]
		for i := 0; i < n; i++ {
			out = append(out, g.value(mean, mean*0.02))
		}
	}
	return out
}

func TestEngineDetectsStep(t *testing.T) {
	cfg := EngineConfig{Permutations: 99, Alpha: 0.05, MinSegment: 4}
	xs := series(7, [2]float64{30, 100}, [2]float64{20, 70})
	cps, err := Detect(xs, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no change point found on a 30% step")
	}
	// The dominant change point localizes near the true split at 30.
	best := cps[0]
	for _, cp := range cps {
		if cp.Stat > best.Stat {
			best = cp
		}
	}
	if best.Index < 27 || best.Index > 33 {
		t.Errorf("change point at %d; want near 30 (got %+v)", best.Index, cps)
	}
	if best.PValue > cfg.Alpha {
		t.Errorf("change point p = %v above alpha %v", best.PValue, cfg.Alpha)
	}
}

func TestEngineQuietOnHomogeneousSeries(t *testing.T) {
	cfg := EngineConfig{Permutations: 99, Alpha: 0.01, MinSegment: 4}
	falsePositives := 0
	for seed := uint64(1); seed <= 20; seed++ {
		xs := series(seed, [2]float64{60, 100})
		cps, err := Detect(xs, seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cps) > 0 {
			falsePositives++
		}
	}
	// At alpha 0.01 the expected false-positive count over 20 trials is
	// 0.2; allow a little slack but a systematic bias must fail.
	if falsePositives > 2 {
		t.Errorf("%d/20 homogeneous series flagged at alpha 0.01", falsePositives)
	}
}

func TestEngineHierarchicalBisection(t *testing.T) {
	cfg := EngineConfig{Permutations: 99, Alpha: 0.05, MinSegment: 4}
	xs := series(11, [2]float64{24, 100}, [2]float64{24, 60}, [2]float64{24, 140})
	cps, err := Detect(xs, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("found %d change points on a two-step series; want >= 2 (%+v)", len(cps), cps)
	}
	for i := 1; i < len(cps); i++ {
		if cps[i-1].Index >= cps[i].Index {
			t.Fatalf("change points not ascending: %+v", cps)
		}
	}
	near := func(idx, want int) bool { return idx >= want-4 && idx <= want+4 }
	foundA, foundB := false, false
	for _, cp := range cps {
		if near(cp.Index, 24) {
			foundA = true
		}
		if near(cp.Index, 48) {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Errorf("splits at 24/48 not both localized: %+v", cps)
	}
}

func TestEngineDeterministic(t *testing.T) {
	cfg := DefaultEngineConfig()
	eng, err := NewEngine(128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs := series(5, [2]float64{40, 100}, [2]float64{40, 80})
	a := eng.Detect(xs, 42, nil)
	// Interleave an unrelated detection to perturb internal state.
	eng.Detect(series(9, [2]float64{50, 10}, [2]float64{30, 90}), 7, nil)
	b := eng.Detect(xs, 42, nil)
	if len(a) != len(b) {
		t.Fatalf("reruns found %d vs %d change points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rerun change point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed may move p-values but the call must stay valid.
	c := eng.Detect(xs, 43, nil)
	for i := 1; i < len(c); i++ {
		if c[i-1].Index >= c[i].Index {
			t.Fatalf("seed 43 results not ascending: %+v", c)
		}
	}
}

func TestEngineCapacityPanic(t *testing.T) {
	eng, err := NewEngine(16, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Detect over capacity did not panic")
		}
	}()
	eng.Detect(make([]float64, 17), 1, nil)
}

func TestEngineShortSeries(t *testing.T) {
	cfg := DefaultEngineConfig()
	cps, err := Detect(make([]float64, 2*cfg.MinSegment-1), 1, cfg)
	if err != nil || cps != nil {
		t.Errorf("short series: got (%v, %v); want (nil, nil)", cps, err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []EngineConfig{
		{Permutations: 0, Alpha: 0.05, MinSegment: 4},
		{Permutations: 9, Alpha: 0, MinSegment: 4},
		{Permutations: 9, Alpha: 1.5, MinSegment: 4},
		{Permutations: 9, Alpha: 0.05, MinSegment: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("engine config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEngine(4, DefaultEngineConfig()); err == nil {
		t.Error("engine with maxN below 2*MinSegment accepted")
	}
	c := DefaultConfig()
	c.Window = 2*c.Engine.MinSegment - 1
	if _, err := New(c); err == nil {
		t.Error("detector with window below 2*MinSegment accepted")
	}
	c = DefaultConfig()
	c.EvalEvery = 0
	if _, err := New(c); err == nil {
		t.Error("detector with zero eval stride accepted")
	}
}

func TestBestSplitTiesAndEdges(t *testing.T) {
	// Constant series: every split has q = 0; earliest admissible tau wins.
	xs := make([]float64, 20)
	tau, q := bestSplit(xs, 4)
	if tau != 4 || q != 0 {
		t.Errorf("constant series best split = (%d, %v); want (4, 0)", tau, q)
	}
	if tau, _ := bestSplit(xs[:7], 4); tau != -1 {
		t.Errorf("inadmissible series returned tau %d; want -1", tau)
	}
}
