package changepoint

import (
	"testing"

	"regionmon/internal/snap"
)

func TestSnapshotForkEquality(t *testing.T) {
	const total, at = 360, 170
	stream := metricStream(total, 120, 1.0, 1.5)

	ref := MustNew(DefaultConfig())
	forked := MustNew(DefaultConfig())
	for i := 0; i < at; i++ {
		ref.Observe(stream[i])
		forked.Observe(stream[i])
	}
	snapBytes := forked.Snapshot()

	restored := MustNew(DefaultConfig())
	if err := restored.Restore(snapBytes); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The restored detector re-snapshots to identical bytes.
	if string(restored.Snapshot()) != string(snapBytes) {
		t.Fatal("restored detector snapshots to different bytes")
	}

	for i := at; i < total; i++ {
		rv := ref.Observe(stream[i])
		sv := restored.Observe(stream[i])
		if rv != sv {
			t.Fatalf("interval %d: verdict diverged: ref %+v restored %+v", i, rv, sv)
		}
	}
	if ref.Changes() != restored.Changes() || ref.LastChange() != restored.LastChange() ||
		ref.Intervals() != restored.Intervals() {
		t.Fatalf("counters diverged: (%d,%d,%d) vs (%d,%d,%d)",
			ref.Changes(), ref.LastChange(), ref.Intervals(),
			restored.Changes(), restored.LastChange(), restored.Intervals())
	}
}

func TestSnapshotWindowMismatch(t *testing.T) {
	d := MustNew(DefaultConfig())
	for i := 0; i < 100; i++ {
		d.Observe(float64(i))
	}
	snapBytes := d.Snapshot()

	cfg := DefaultConfig()
	cfg.Window = 64
	other := MustNew(cfg)
	if err := other.Restore(snapBytes); err == nil {
		t.Fatal("restore into a differently sized window accepted")
	}
	// The failed restore left the target untouched.
	if other.Intervals() != 0 || other.Changes() != 0 {
		t.Errorf("failed restore mutated target: %d intervals, %d changes",
			other.Intervals(), other.Changes())
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	d := MustNew(DefaultConfig())
	if err := d.Restore([]byte{0, 1, 2}); err == nil {
		t.Error("garbage snapshot accepted")
	}
	e := snap.NewEncoder()
	e.Header("other", 1)
	if err := d.Restore(e.Bytes()); err == nil {
		t.Error("foreign component tag accepted")
	}
}
