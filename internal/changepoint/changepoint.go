// Package changepoint implements E-divisive-style change-point detection
// over scalar metric series — the statistically grounded alternative to
// the paper's TH1..TH4 threshold state machines, following "Hunter: Using
// Change Point Detection to Hunt for Performance Regressions" (PAPERS.md).
//
// The core is an offline Engine: given a series, it finds the split that
// maximizes the energy-distance divergence between the two sides,
// assesses the split's significance with a permutation test on a seeded
// deterministic PRNG (splitmix64, Fisher-Yates), and — when significant —
// recurses on both halves (hierarchical bisection). Everything is exact
// and replayable: the same series, configuration and seed always yield
// the same change points, so a detection is a fact two runs can agree on
// byte-for-byte.
//
// Two consumers share the engine:
//
//   - the online Detector (detector.go): a windowed per-interval phase
//     detector behind the pipeline's PhaseDetector contract, watching a
//     scalar metric (CPI by default) for distributional shifts;
//   - cmd/benchwatch: the repo dogfooding its own discipline — the
//     engine run offline over the BENCH_*.json trajectory across PRs,
//     turning perf history into a CI-checked invariant.
package changepoint

import "fmt"

// EngineConfig parameterizes the offline engine. The zero value is not
// valid; start from DefaultEngineConfig.
type EngineConfig struct {
	// Permutations is the number of random re-orderings per segment test.
	// The smallest achievable p-value is 1/(Permutations+1), so with 19
	// permutations a split must beat every re-ordering to reach p = 0.05.
	Permutations int
	// Alpha is the significance level: a split is a change point when
	// its permutation p-value is <= Alpha.
	Alpha float64
	// MinSegment is the minimum number of observations on each side of a
	// split (and in each recursed segment). It bounds both the earliest
	// and latest detectable change position.
	MinSegment int
}

// DefaultEngineConfig returns the engine parameters used by the online
// detector: 99 permutations (p resolution 0.01), alpha 0.01, minimum
// segment 8. Alpha sits at the resolution floor, so a split must beat
// every permutation to count — an online detector evaluating every few
// dozen intervals needs the per-test false-positive rate this low or
// spurious "changes" accumulate over a long run.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{Permutations: 99, Alpha: 0.01, MinSegment: 8}
}

// Validate reports configuration errors.
func (c *EngineConfig) Validate() error {
	if c.Permutations < 1 {
		return fmt.Errorf("changepoint: permutations %d < 1", c.Permutations)
	}
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		return fmt.Errorf("changepoint: alpha %v outside (0, 1]", c.Alpha)
	}
	if c.MinSegment < 1 {
		return fmt.Errorf("changepoint: min segment %d < 1", c.MinSegment)
	}
	return nil
}

// ChangePoint is one detected distributional shift: the series splits at
// Index (the first observation of the new regime).
type ChangePoint struct {
	// Index is the split position: observations [.., Index) belong to the
	// old regime, [Index, ..) to the new one.
	Index int
	// Stat is the energy-distance divergence statistic at the split.
	Stat float64
	// PValue is the permutation p-value of the split within its segment,
	// (1 + #{permutations >= Stat}) / (1 + Permutations).
	PValue float64
}

// span is one pending segment of the hierarchical bisection.
type span struct{ start, end int }

// Engine runs E-divisive detection over series of up to maxN
// observations with zero steady-state allocation: all scratch (the
// permutation buffer and the bisection stack) is sized at construction,
// so the online detector can run it on the monitoring hot path.
type Engine struct {
	cfg  EngineConfig //lint:config -- fixed at construction
	perm []float64    //lint:config -- permutation scratch, capacity fixed at construction
	// stack is the bisection worklist, reused via [:0] each Detect call.
	//lint:bounded -- capacity maxN/MinSegment+1 fixed at construction; Detect rejects longer series
	stack []span //lint:config -- bisection worklist scratch
	rng   uint64
}

// NewEngine returns an engine for series of at most maxN observations.
func NewEngine(maxN int, cfg EngineConfig) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxN < 2*cfg.MinSegment {
		return nil, fmt.Errorf("changepoint: maxN %d below 2*MinSegment %d", maxN, 2*cfg.MinSegment)
	}
	return &Engine{
		cfg:   cfg,
		perm:  make([]float64, maxN),
		stack: make([]span, 0, maxN/cfg.MinSegment+1),
	}, nil
}

// MaxN returns the largest series length the engine accepts.
func (e *Engine) MaxN() int { return len(e.perm) }

// next is splitmix64 over the engine's per-Detect PRNG state.
func (e *Engine) next() uint64 {
	e.rng += 0x9e3779b97f4a7c15
	z := e.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Detect appends every significant change point in xs to dst, in
// ascending Index order, and returns the extended slice. The PRNG is
// re-seeded from seed on every call, so identical (xs, seed) inputs
// yield identical output regardless of what the engine processed before.
// xs is read-only; it panics if len(xs) exceeds the construction maxN.
func (e *Engine) Detect(xs []float64, seed uint64, dst []ChangePoint) []ChangePoint {
	if len(xs) > len(e.perm) {
		panic(fmt.Sprintf("changepoint: series length %d exceeds engine capacity %d", len(xs), len(e.perm)))
	}
	e.rng = seed
	base := len(dst)
	e.stack = e.stack[:0]
	e.stack = append(e.stack, span{0, len(xs)})
	for len(e.stack) > 0 {
		sp := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		if sp.end-sp.start < 2*e.cfg.MinSegment {
			continue
		}
		tau, stat := bestSplit(xs[sp.start:sp.end], e.cfg.MinSegment)
		if tau < 0 {
			continue
		}
		p := e.permutationPValue(xs[sp.start:sp.end], stat)
		if p > e.cfg.Alpha {
			continue
		}
		dst = insertSorted(dst, base, ChangePoint{Index: sp.start + tau, Stat: stat, PValue: p})
		e.stack = append(e.stack, span{sp.start, sp.start + tau})
		e.stack = append(e.stack, span{sp.start + tau, sp.end})
	}
	return dst
}

// permutationPValue estimates how often a random re-ordering of seg
// produces a best-split statistic at least as large as stat.
func (e *Engine) permutationPValue(seg []float64, stat float64) float64 {
	buf := e.perm[:len(seg)]
	copy(buf, seg)
	exceed := 0
	for r := 0; r < e.cfg.Permutations; r++ {
		// Fisher-Yates; shuffling the previous round's order is itself a
		// uniform permutation of the original.
		for i := len(buf) - 1; i > 0; i-- {
			j := int(e.next() % uint64(i+1))
			buf[i], buf[j] = buf[j], buf[i]
		}
		if _, q := bestSplit(buf, e.cfg.MinSegment); q >= stat {
			exceed++
		}
	}
	return float64(1+exceed) / float64(1+e.cfg.Permutations)
}

// bestSplit scans every admissible split position tau (MinSegment <= tau
// <= n-MinSegment) and returns the one maximizing the energy-distance
// divergence statistic
//
//	q(tau) = (m*k/(m+k)) * (2*E|X-Y| - E|X-X'| - E|Y-Y'|)
//
// where X is xs[:tau] (m points), Y is xs[tau:] (k points) and the
// expectations are means of pairwise absolute differences. The three
// pairwise sums are maintained incrementally as tau advances — O(n) per
// step after an O(n^2) initialization — so a full scan is O(n^2) rather
// than O(n^3). Returns (-1, 0) when no admissible split exists. Ties keep
// the earliest tau, so the scan is deterministic.
func bestSplit(xs []float64, minSeg int) (int, float64) {
	n := len(xs)
	if n < 2*minSeg {
		return -1, 0
	}
	// Sums at tau = 1: left = {x0}, right = {x1..}.
	var sxx, syy, sxy float64
	for j := 1; j < n; j++ {
		sxy += abs(xs[0] - xs[j])
		for i := 1; i < j; i++ {
			syy += abs(xs[i] - xs[j])
		}
	}
	bestTau, bestQ := -1, 0.0
	for tau := 1; tau <= n-minSeg; tau++ {
		if tau > 1 {
			// Move xs[tau-1] from the right side to the left side.
			p := xs[tau-1]
			var dLeft, dRight float64
			for i := 0; i < tau-1; i++ {
				dLeft += abs(xs[i] - p)
			}
			for j := tau; j < n; j++ {
				dRight += abs(p - xs[j])
			}
			sxx += dLeft
			syy -= dRight
			sxy += dRight - dLeft
		}
		if tau < minSeg {
			continue
		}
		m, k := float64(tau), float64(n-tau)
		exy := sxy / (m * k)
		var exx, eyy float64
		if tau > 1 {
			exx = 2 * sxx / (m * (m - 1))
		}
		if n-tau > 1 {
			eyy = 2 * syy / (k * (k - 1))
		}
		q := (m * k / (m + k)) * (2*exy - exx - eyy)
		if bestTau < 0 || q > bestQ {
			bestTau, bestQ = tau, q
		}
	}
	return bestTau, bestQ
}

// insertSorted inserts cp into dst keeping dst[base:] ascending by Index
// (the prefix dst[:base] belongs to the caller and is left untouched).
func insertSorted(dst []ChangePoint, base int, cp ChangePoint) []ChangePoint {
	dst = append(dst, cp)
	i := len(dst) - 1
	for i > base && dst[i-1].Index > cp.Index {
		dst[i] = dst[i-1]
		i--
	}
	dst[i] = cp
	return dst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Detect is the offline convenience entry: it builds a one-shot engine
// sized to xs and returns every significant change point. cmd/benchwatch
// and tests use it; the online detector constructs its Engine once.
func Detect(xs []float64, seed uint64, cfg EngineConfig) ([]ChangePoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(xs) < 2*cfg.MinSegment {
		return nil, nil
	}
	e, err := NewEngine(len(xs), cfg)
	if err != nil {
		return nil, err
	}
	return e.Detect(xs, seed, nil), nil
}
