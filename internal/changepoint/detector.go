package changepoint

import (
	"fmt"

	"regionmon/internal/stats"
)

// Config parameterizes the online windowed detector. The zero value is
// not valid; start from DefaultConfig.
type Config struct {
	// Window is the number of recent observations the detector tests
	// (the bounded ring capacity).
	Window int
	// EvalEvery is the observation stride between engine runs: the
	// window is re-tested every EvalEvery observations once it has
	// filled. Evaluation is keyed to the absolute observation count, so
	// a restored detector evaluates on exactly the intervals the
	// uninterrupted one would have.
	EvalEvery int
	// Engine holds the E-divisive parameters (permutations, alpha,
	// minimum segment).
	Engine EngineConfig
	// Seed seeds the permutation PRNG. Each evaluation derives its
	// per-call seed from Seed and the absolute observation count, so the
	// verdict stream depends only on the observation sequence.
	Seed uint64
}

// DefaultConfig returns the online detector defaults: a 48-observation
// window re-tested every 32 observations with the default engine
// parameters. The window is sized so one evaluation costs on the order
// of the per-interval detector work it rides alongside.
func DefaultConfig() Config {
	return Config{Window: 48, EvalEvery: 32, Engine: DefaultEngineConfig(), Seed: 1}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.Engine.Validate(); err != nil {
		return err
	}
	if c.Window < 2*c.Engine.MinSegment {
		return fmt.Errorf("changepoint: window %d below 2*MinSegment %d", c.Window, 2*c.Engine.MinSegment)
	}
	if c.EvalEvery < 1 {
		return fmt.Errorf("changepoint: eval stride %d < 1", c.EvalEvery)
	}
	return nil
}

// Verdict is the outcome of observing one interval's metric value. It is
// the pipeline payload the ChangePoint adapter publishes.
//
//lint:payload
type Verdict struct {
	// Value is the observed metric value.
	Value float64
	// Evaluated reports that this observation triggered an engine run
	// over the window (every EvalEvery observations once full).
	Evaluated bool
	// Changed reports a newly confirmed change point this interval.
	Changed bool
	// ChangeAt is the absolute observation index (0-based) of the most
	// recently confirmed change point, -1 before the first.
	ChangeAt int64
	// Stat and PValue describe the newest change point found by the last
	// evaluation (zero when the window held none).
	Stat, PValue float64
}

// Detector is the online windowed E-divisive detector: it appends one
// scalar metric observation per sampling interval to a bounded ring and
// periodically runs the engine over the window, confirming a change
// point when a significant split lands at least MinSegment past the
// previous one. Not safe for concurrent use.
//
//lint:single-owner
type Detector struct {
	cfg  Config //lint:config -- fixed at construction
	hist *stats.Series
	eng  *Engine       //lint:config -- stateless between Detect calls (scratch only)
	vals []float64     //lint:config -- window scratch, capacity fixed at construction
	cps  []ChangePoint //lint:config -- detection scratch, capacity fixed at construction

	lastChange int64
	changes    int
}

// New returns a detector with the given configuration.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := NewEngine(cfg.Window, cfg.Engine)
	if err != nil {
		return nil, err
	}
	return &Detector{
		cfg:        cfg,
		hist:       stats.NewSeries(cfg.Window),
		eng:        eng,
		vals:       make([]float64, 0, cfg.Window),
		cps:        make([]ChangePoint, 0, cfg.Window/cfg.Engine.MinSegment+1),
		lastChange: -1,
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Observe feeds one interval's metric value and returns the verdict.
func (d *Detector) Observe(value float64) Verdict {
	d.hist.Append(value)
	total := d.hist.Total()
	v := Verdict{Value: value, ChangeAt: d.lastChange}
	if d.hist.Len() < d.cfg.Window || total%int64(d.cfg.EvalEvery) != 0 {
		return v
	}
	v.Evaluated = true
	d.vals = d.hist.Values(d.vals[:0])
	d.cps = d.eng.Detect(d.vals, d.cfg.Seed^uint64(total)*0x9e3779b97f4a7c15, d.cps[:0])
	if len(d.cps) == 0 {
		return v
	}
	newest := d.cps[len(d.cps)-1]
	v.Stat, v.PValue = newest.Stat, newest.PValue
	global := total - int64(len(d.vals)) + int64(newest.Index)
	// A window slides under a confirmed change, so the same split keeps
	// re-appearing (its estimated position jittering by an observation or
	// two); only a split at least MinSegment past the last confirmed one
	// is a new event.
	if d.lastChange < 0 || global >= d.lastChange+int64(d.cfg.Engine.MinSegment) {
		d.lastChange = global
		d.changes++
		v.Changed = true
		v.ChangeAt = global
	}
	return v
}

// Changes returns the number of change points confirmed so far.
func (d *Detector) Changes() int { return d.changes }

// LastChange returns the absolute observation index of the most recently
// confirmed change point, -1 before the first.
func (d *Detector) LastChange() int64 { return d.lastChange }

// Intervals returns the number of observations.
func (d *Detector) Intervals() int64 { return d.hist.Total() }
