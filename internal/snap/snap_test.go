package snap

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Header("demo", 3)
	e.U8(200)
	e.Bool(true)
	e.Bool(false)
	e.Int(-42)
	e.I64(math.MinInt64)
	e.U64(math.MaxUint64)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.String("hello, ring")
	e.Bytes64([]byte{1, 2, 3})
	e.F64s([]float64{0.5, -0.25, 0})
	e.I64s([]int64{7, -7})
	e.Ints([]int{1, 2, 3, 4})

	d := NewDecoder(e.Bytes())
	if v := d.Header("demo", 3); v != 3 {
		t.Fatalf("Header version = %d, want 3", v)
	}
	if got := d.U8(); got != 200 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round trip failed")
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := d.I64(); got != math.MinInt64 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := d.String(); got != "hello, ring" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes64(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes64 = %v", got)
	}
	if got := d.F64s(); len(got) != 3 || got[0] != 0.5 || got[1] != -0.25 {
		t.Errorf("F64s = %v", got)
	}
	if got := d.I64s(); len(got) != 2 || got[0] != 7 || got[1] != -7 {
		t.Errorf("I64s = %v", got)
	}
	if got := d.Ints(); len(got) != 4 || got[3] != 4 {
		t.Errorf("Ints = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder()
		e.Header("x", 1)
		e.F64(1.0 / 3.0)
		e.I64s([]int64{1, 2, 3})
		out := make([]byte, e.Len())
		copy(out, e.Bytes())
		return out
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatalf("same state encoded to different bytes:\n%v\n%v", a, b)
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // truncated
	first := d.Err()
	if first == nil {
		t.Fatal("expected error on truncated U64")
	}
	_ = d.F64()
	_ = d.String()
	if d.Err() != first {
		t.Fatalf("error not sticky: %v vs %v", d.Err(), first)
	}
}

func TestHeaderMismatch(t *testing.T) {
	e := NewEncoder()
	e.Header("lpd", 2)
	d := NewDecoder(e.Bytes())
	d.Header("gpd", 2)
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "tag") {
		t.Fatalf("expected tag mismatch error, got %v", d.Err())
	}

	d2 := NewDecoder(e.Bytes())
	d2.Header("lpd", 1)
	if d2.Err() == nil || !strings.Contains(d2.Err().Error(), "version") {
		t.Fatalf("expected version error, got %v", d2.Err())
	}
}

func TestFinishTrailing(t *testing.T) {
	e := NewEncoder()
	e.Int(1)
	e.Int(2)
	d := NewDecoder(e.Bytes())
	_ = d.Int()
	if err := d.Finish(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestCorruptLengths(t *testing.T) {
	// Negative length.
	e := NewEncoder()
	e.I64(-5)
	if got := NewDecoder(e.Bytes()).String(); got != "" || len(got) != 0 {
		t.Errorf("String on negative length = %q", got)
	}
	d := NewDecoder(e.Bytes())
	_ = d.String()
	if d.Err() == nil {
		t.Error("expected error for negative length")
	}

	// Length far beyond remaining input must not allocate/panic.
	e2 := NewEncoder()
	e2.I64(1 << 40)
	d2 := NewDecoder(e2.Bytes())
	if got := d2.F64s(); got != nil {
		t.Errorf("F64s on oversized length = %v", got)
	}
	if d2.Err() == nil {
		t.Error("expected error for oversized length")
	}
}
