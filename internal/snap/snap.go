// Package snap is the byte-level substrate of the repo's detector
// checkpointing: a small, dependency-free binary encoder/decoder pair with
// versioned component headers. Every Snapshot()/Restore() pair in the
// detector stack (lpd, gpd, region, pipeline, the System facade) encodes
// through it.
//
// The format is deliberately boring: fixed-width little-endian scalars,
// length-prefixed sequences, and a (tag, version) header per component.
// Boring buys the two properties checkpointing needs:
//
//   - determinism — the same detector state always encodes to the same
//     bytes (no maps, no pointers, no floating-point formatting; float64s
//     are stored as raw IEEE-754 bits, so a restored value is the *exact*
//     value, and a resumed detector's threshold comparisons replay
//     bit-for-bit);
//   - versioned evolvability — each component writes its own tag and
//     version byte, so a later revision can change one component's layout
//     without invalidating snapshots of the others.
//
// Decoding uses a sticky-error style: after any failed read every further
// read returns the zero value, and the first error is reported by Err or
// Finish. Callers can therefore decode a whole component linearly and
// check once at the end.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends a deterministic binary encoding to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer (owned by the encoder; copy to retain
// past the next Reset).
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset empties the encoder, retaining the buffer's capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Header writes a component header: the tag bytes followed by a version
// byte. Tags are short fixed strings ("lpd", "regmon", ...) chosen by each
// component.
func (e *Encoder) Header(tag string, version uint8) {
	e.String(tag)
	e.U8(version)
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U64 writes a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 writes an int64 (two's-complement bits, little-endian).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int writes an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 writes a float64 as its raw IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Bytes64 writes a length-prefixed byte slice (nested component
// snapshots).
func (e *Encoder) Bytes64(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}

// F64s writes a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.Int(len(v))
	for _, x := range v {
		e.F64(x)
	}
}

// I64s writes a length-prefixed []int64.
func (e *Encoder) I64s(v []int64) {
	e.Int(len(v))
	for _, x := range v {
		e.I64(x)
	}
}

// Ints writes a length-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Decoder reads the Encoder's format back with a sticky first error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over data (not copied).
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the sticky error, or an error if undecoded bytes remain —
// a decoded-cleanly-to-the-end check for top-level Restore implementations.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snap: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

// fail records the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snap: "+format, args...)
	}
}

// take consumes n bytes, or fails.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated input (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Header reads a component header written by Encoder.Header, failing on a
// tag mismatch or a version newer than maxVersion. It returns the decoded
// version so multi-version Restore implementations can branch.
func (d *Decoder) Header(tag string, maxVersion uint8) uint8 {
	got := d.String()
	if d.err != nil {
		return 0
	}
	if got != tag {
		d.fail("component tag %q, want %q", got, tag)
		return 0
	}
	v := d.U8()
	if d.err == nil && v > maxVersion {
		d.fail("component %q version %d newer than supported %d", tag, v, maxVersion)
		return 0
	}
	return v
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, failing on a byte other than 0 or 1.
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte %d", v)
		return false
	}
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64-encoded int, failing if it does not fit.
func (d *Decoder) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail("int64 %d overflows int", v)
		return 0
	}
	return int(v)
}

// Len reads a non-negative length prefix, additionally bounded by the
// remaining input so corrupt lengths cannot drive huge allocations.
func (d *Decoder) Len() int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.fail("negative length %d", n)
		return 0
	}
	if n > len(d.buf)-d.off {
		d.fail("length %d exceeds remaining input %d", n, len(d.buf)-d.off)
		return 0
	}
	return n
}

// F64 reads a float64 from raw IEEE-754 bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len()
	return string(d.take(n))
}

// Bytes64 reads a length-prefixed byte slice (a copy of the input bytes is
// not made; the result aliases the decoder's buffer).
func (d *Decoder) Bytes64() []byte {
	n := d.Len()
	return d.take(n)
}

// F64s reads a length-prefixed []float64. Length is bounded by the
// remaining input (8 bytes per element).
func (d *Decoder) F64s() []float64 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > (len(d.buf)-d.off)/8 {
		d.fail("float64 count %d exceeds remaining input", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Decoder) I64s() []int64 {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > (len(d.buf)-d.off)/8 {
		d.fail("int64 count %d exceeds remaining input", n)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > (len(d.buf)-d.off)/8 {
		d.fail("int count %d exceeds remaining input", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}
