package isa

import (
	"fmt"
	"sort"
)

// Procedure is a named, contiguous set of basic blocks with a single entry
// block (index 0). Synthetic procedures are laid out contiguously in the
// address space, mirroring compiled SPARC text sections.
type Procedure struct {
	// Name is the procedure's symbol name (unique within the program).
	Name string
	// Blocks holds the procedure's basic blocks; Blocks[0] is the entry.
	// Blocks are in ascending, gap-free address order.
	Blocks []*Block

	loops []*Loop // populated lazily by Loops
}

// Start returns the procedure's first instruction address.
func (p *Procedure) Start() Addr { return p.Blocks[0].Start }

// End returns one past the procedure's last instruction address.
func (p *Procedure) End() Addr { return p.Blocks[len(p.Blocks)-1].End() }

// Contains reports whether addr falls inside the procedure.
func (p *Procedure) Contains(addr Addr) bool { return addr >= p.Start() && addr < p.End() }

// NumInstrs returns the procedure's total instruction count.
func (p *Procedure) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.Len()
	}
	return n
}

// BlockAt returns the block containing addr, or nil.
func (p *Procedure) BlockAt(addr Addr) *Block {
	i := sort.Search(len(p.Blocks), func(i int) bool { return p.Blocks[i].End() > addr })
	if i < len(p.Blocks) && p.Blocks[i].Contains(addr) {
		return p.Blocks[i]
	}
	return nil
}

// Program is a complete synthetic binary: procedures in ascending address
// order over a flat text segment.
//
// A validated Program is immutable and safe to share: NewProgram runs the
// loop analysis eagerly for every procedure, so all reads (ProcAt,
// KindAt, Loops, InnermostLoopAt, ...) are side-effect free afterwards.
// Many concurrent runs — e.g. the experiments package's parallel sweep
// workers — may therefore monitor the same *Program without copying it.
type Program struct {
	// Procs lists the program's procedures in ascending address order.
	Procs []*Procedure

	byName map[string]*Procedure
}

// NewProgram assembles a validated Program from procedures. It checks
// address ordering, block contiguity within procedures, successor validity
// and call-target resolution, returning a descriptive error on the first
// violation — synthetic workload definitions are code, and bad ones should
// fail loudly at construction, not misbehave during a 10-billion-cycle run.
func NewProgram(procs []*Procedure) (*Program, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("isa: program has no procedures")
	}
	byName := make(map[string]*Procedure, len(procs))
	var prevEnd Addr
	for pi, p := range procs {
		if len(p.Blocks) == 0 {
			return nil, fmt.Errorf("isa: procedure %q has no blocks", p.Name)
		}
		if _, dup := byName[p.Name]; dup {
			return nil, fmt.Errorf("isa: duplicate procedure name %q", p.Name)
		}
		byName[p.Name] = p
		if p.Start()%InstrBytes != 0 {
			return nil, fmt.Errorf("isa: procedure %q starts at misaligned address %v", p.Name, p.Start())
		}
		if pi > 0 && p.Start() < prevEnd {
			return nil, fmt.Errorf("isa: procedure %q overlaps its predecessor (start %v < %v)", p.Name, p.Start(), prevEnd)
		}
		prevEnd = p.End()
		for bi, b := range p.Blocks {
			if b.ID != BlockID(bi) {
				return nil, fmt.Errorf("isa: %s block %d has ID %d", p.Name, bi, b.ID)
			}
			if b.Len() == 0 {
				return nil, fmt.Errorf("isa: %s block %d is empty", p.Name, bi)
			}
			if bi > 0 && b.Start != p.Blocks[bi-1].End() {
				return nil, fmt.Errorf("isa: %s block %d not contiguous (start %v, want %v)",
					p.Name, bi, b.Start, p.Blocks[bi-1].End())
			}
			for _, s := range b.Succs {
				if s < 0 || int(s) >= len(p.Blocks) {
					return nil, fmt.Errorf("isa: %s block %d has invalid successor %d", p.Name, bi, s)
				}
			}
			for _, k := range b.Kinds {
				if !k.Valid() {
					return nil, fmt.Errorf("isa: %s block %d contains invalid instruction kind %d", p.Name, bi, k)
				}
			}
		}
	}
	// Resolve call targets after all names are known.
	for _, p := range procs {
		for bi, b := range p.Blocks {
			if b.CallTarget == "" {
				continue
			}
			if _, ok := byName[b.CallTarget]; !ok {
				return nil, fmt.Errorf("isa: %s block %d calls unknown procedure %q", p.Name, bi, b.CallTarget)
			}
		}
	}
	// Run the loop analysis now: Loops() memoizes into the procedure on
	// first call, and doing that here — instead of lazily under the first
	// monitoring thread that asks — is what makes the finished Program
	// read-only and thus shareable across concurrent runs.
	for _, p := range procs {
		p.Loops()
	}
	return &Program{Procs: procs, byName: byName}, nil
}

// Proc returns the procedure named name, or nil.
func (pr *Program) Proc(name string) *Procedure { return pr.byName[name] }

// ProcAt returns the procedure containing addr, or nil.
func (pr *Program) ProcAt(addr Addr) *Procedure {
	i := sort.Search(len(pr.Procs), func(i int) bool { return pr.Procs[i].End() > addr })
	if i < len(pr.Procs) && pr.Procs[i].Contains(addr) {
		return pr.Procs[i]
	}
	return nil
}

// BlockAt returns the block containing addr, or nil.
func (pr *Program) BlockAt(addr Addr) *Block {
	p := pr.ProcAt(addr)
	if p == nil {
		return nil
	}
	return p.BlockAt(addr)
}

// KindAt returns the instruction kind at addr. ok is false when addr is
// outside the program text or misaligned.
func (pr *Program) KindAt(addr Addr) (k Kind, ok bool) {
	b := pr.BlockAt(addr)
	if b == nil {
		return 0, false
	}
	i := b.IndexOf(addr)
	if i < 0 {
		return 0, false
	}
	return b.Kinds[i], true
}

// Start returns the program's lowest text address.
func (pr *Program) Start() Addr { return pr.Procs[0].Start() }

// End returns one past the program's highest text address.
func (pr *Program) End() Addr { return pr.Procs[len(pr.Procs)-1].End() }

// NumInstrs returns the program's total instruction count.
func (pr *Program) NumInstrs() int {
	n := 0
	for _, p := range pr.Procs {
		n += p.NumInstrs()
	}
	return n
}

// AllLoops returns every natural loop in the program, per procedure, in
// address order. The slice is freshly allocated; loops themselves are
// cached per procedure.
func (pr *Program) AllLoops() []*Loop {
	var out []*Loop
	for _, p := range pr.Procs {
		out = append(out, p.Loops()...)
	}
	return out
}
