// Package isa defines the synthetic program model the reproduction runs
// phase detection against: a flat address space of fixed-width instructions
// grouped into basic blocks, procedures and whole programs, plus the control
// flow analyses (dominators, natural loops) that region formation relies on.
//
// The original paper profiles native SPARC binaries; this package is the
// substitute substrate. Its programs are synthetic but structurally honest:
// they have real CFGs, and loop regions are *discovered* by dominator-based
// natural-loop detection, exactly the class of region ("regions are
// primarily loops") the paper's region builder produces. Instruction
// addresses are 4-byte aligned, SPARC-style, so program-counter arithmetic
// in the detectors behaves like it would on the original hardware.
package isa

import "fmt"

// InstrBytes is the fixed instruction width in bytes (SPARC V9 style).
const InstrBytes = 4

// Addr is a virtual address in the simulated program's text segment.
type Addr uint64

// String renders the address in the hex form the paper uses for region
// names (e.g. "146f0").
func (a Addr) String() string { return fmt.Sprintf("%x", uint64(a)) }

// Kind classifies an instruction for the cycle-cost and cache models.
type Kind uint8

const (
	// KindALU is a single-cycle integer operation.
	KindALU Kind = iota
	// KindLoad reads data memory and may miss in the data cache; loads are
	// where the simulated prefetching optimization recovers cycles.
	KindLoad
	// KindStore writes data memory.
	KindStore
	// KindFP is a multi-cycle floating point operation.
	KindFP
	// KindBranch is a conditional or unconditional control transfer inside
	// a procedure.
	KindBranch
	// KindCall transfers control to another procedure.
	KindCall
	// KindRet returns from a procedure.
	KindRet
	// KindNop burns one cycle.
	KindNop

	numKinds = iota
)

var kindNames = [numKinds]string{
	"alu", "load", "store", "fp", "branch", "call", "ret", "nop",
}

// String returns the lower-case mnemonic class name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined instruction kinds.
func (k Kind) Valid() bool { return int(k) < numKinds }

// Instruction is one fixed-width instruction slot.
type Instruction struct {
	// Addr is the instruction's virtual address.
	Addr Addr
	// Kind drives the cycle-cost model.
	Kind Kind
}

// BlockID identifies a basic block within its procedure.
type BlockID int

// NoBlock is the absent-block sentinel.
const NoBlock BlockID = -1

// Block is a basic block: a straight-line run of instructions ended by (at
// most) one control transfer. Succs lists intra-procedural successors;
// calls fall through (the callee is modelled separately via CallTarget).
type Block struct {
	// ID is the block's index within its procedure.
	ID BlockID
	// Start is the address of the first instruction.
	Start Addr
	// Kinds holds one Kind per instruction, in address order.
	Kinds []Kind
	// Succs are the intra-procedural successor blocks, if any.
	Succs []BlockID
	// CallTarget names the callee procedure when the block ends in a
	// KindCall, or is empty.
	CallTarget string
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return len(b.Kinds) }

// End returns the address one past the block's last instruction.
func (b *Block) End() Addr { return b.Start + Addr(len(b.Kinds)*InstrBytes) }

// Contains reports whether addr falls inside the block.
func (b *Block) Contains(addr Addr) bool { return addr >= b.Start && addr < b.End() }

// AddrOf returns the address of the i'th instruction in the block.
func (b *Block) AddrOf(i int) Addr { return b.Start + Addr(i*InstrBytes) }

// IndexOf returns the instruction index within the block for addr, or -1
// if addr is outside the block or misaligned.
func (b *Block) IndexOf(addr Addr) int {
	if !b.Contains(addr) || (addr-b.Start)%InstrBytes != 0 {
		return -1
	}
	return int((addr - b.Start) / InstrBytes)
}
