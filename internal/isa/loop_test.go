package isa

import "testing"

// mkBlock builds a hand-rolled block for CFG tests.
func mkBlock(id BlockID, start Addr, n int, succs ...BlockID) *Block {
	kinds := make([]Kind, n)
	for i := range kinds {
		kinds[i] = KindALU
	}
	return &Block{ID: id, Start: start, Kinds: kinds, Succs: succs}
}

// TestLoopsMergeSharedHeader: two back edges into the same header form one
// natural loop covering both bodies.
func TestLoopsMergeSharedHeader(t *testing.T) {
	// 0 -> 1(header) -> 2 -> 1 (back edge), 1 -> 3 -> 1 (back edge),
	// 1 -> 4 (exit).
	p := &Procedure{Name: "shared", Blocks: []*Block{
		mkBlock(0, 0x00, 2, 1),
		mkBlock(1, 0x08, 2, 2, 3, 4),
		mkBlock(2, 0x10, 2, 1),
		mkBlock(3, 0x18, 2, 1),
		mkBlock(4, 0x20, 1),
	}}
	loops := p.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d; want 1 (merged natural loop)", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d; want 1", l.Header)
	}
	want := []BlockID{1, 2, 3}
	if len(l.Blocks) != len(want) {
		t.Fatalf("loop blocks = %v; want %v", l.Blocks, want)
	}
	for i, b := range want {
		if l.Blocks[i] != b {
			t.Fatalf("loop blocks = %v; want %v", l.Blocks, want)
		}
	}
	if l.NumInstrs() != 6 {
		t.Errorf("NumInstrs = %d; want 6", l.NumInstrs())
	}
	if !l.HasBlock(2) || l.HasBlock(4) {
		t.Error("HasBlock answers wrong")
	}
}

// TestSelfLoop: a block branching to itself is a one-block natural loop.
func TestSelfLoop(t *testing.T) {
	p := &Procedure{Name: "self", Blocks: []*Block{
		mkBlock(0, 0x00, 2, 1),
		mkBlock(1, 0x08, 3, 1, 2),
		mkBlock(2, 0x14, 1),
	}}
	loops := p.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d; want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || len(l.Blocks) != 1 || l.Depth != 1 {
		t.Errorf("self loop = header %d blocks %v depth %d", l.Header, l.Blocks, l.Depth)
	}
	if l.Start() != 0x08 || l.End() != 0x14 {
		t.Errorf("span = %v-%v; want 8-14", l.Start(), l.End())
	}
}

// TestTripleNesting: three levels of nesting get depths 1..3 and correct
// parent chains.
func TestTripleNesting(t *testing.T) {
	b := NewBuilder(0x1000)
	p := b.Proc("deep")
	p.BeginLoop()
	p.Code(4)
	p.BeginLoop()
	p.Code(4)
	inner := p.Loop(4, nil, nil)
	mid := p.EndLoop()
	outer := p.EndLoop()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if inner.Depth != 3 || mid.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("depths: %d %d %d; want 3 2 1", inner.Depth, mid.Depth, outer.Depth)
	}
	loops := prog.AllLoops()
	if len(loops) != 3 {
		t.Fatalf("detected %d loops; want 3", len(loops))
	}
	byDepth := map[int]*Loop{}
	for _, l := range loops {
		byDepth[l.Depth] = l
	}
	if byDepth[3].Parent != byDepth[2] || byDepth[2].Parent != byDepth[1] || byDepth[1].Parent != nil {
		t.Error("parent chain wrong")
	}
	// Innermost lookup at the deepest address.
	proc := prog.Procs[0]
	if got := proc.InnermostLoopAt(inner.Start); got == nil || got.Depth != 3 {
		t.Errorf("InnermostLoopAt(inner) = %v", got)
	}
}

// TestLoopsCached: Loops() is computed once and cached.
func TestLoopsCached(t *testing.T) {
	b := NewBuilder(0x1000)
	p := b.Proc("c")
	p.Loop(4, nil, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Procs[0].Loops()
	bb := prog.Procs[0].Loops()
	if &a[0] != &bb[0] {
		t.Error("Loops() not cached")
	}
}

// TestBuilderSpansSorted: Spans returns recorded loops in address order,
// outer-first on ties.
func TestBuilderSpansSorted(t *testing.T) {
	b := NewBuilder(0x1000)
	p := b.Proc("s")
	p.Loop(4, nil, nil)
	p.Code(2)
	p.BeginLoop()
	p.Code(3)
	p.Loop(3, nil, nil)
	p.EndLoop()
	spans := p.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d; want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Errorf("spans out of order: %v", spans)
		}
	}
	if _, err := b.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

// TestProcedureBlockAt covers the binary-search lookup.
func TestProcedureBlockAt(t *testing.T) {
	b := NewBuilder(0x1000)
	p := b.Proc("b")
	p.Code(4)
	p.NewBlock()
	p.Code(4)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	proc := prog.Procs[0]
	if blk := proc.BlockAt(0x1000); blk == nil || blk.ID != 0 {
		t.Errorf("BlockAt(start) = %v", blk)
	}
	if blk := proc.BlockAt(0x1010); blk == nil || blk.ID != 1 {
		t.Errorf("BlockAt(second) = %v", blk)
	}
	if blk := proc.BlockAt(proc.End()); blk != nil {
		t.Errorf("BlockAt(end) = %v; want nil", blk)
	}
}
