package isa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// buildSimple returns a program with one procedure containing a single loop
// of 10 instructions, plus the loop's span.
func buildSimple(t *testing.T) (*Program, LoopSpan) {
	t.Helper()
	b := NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(5, KindALU)
	span := p.Loop(10, []Kind{KindLoad, KindALU}, nil)
	p.Code(3, KindALU)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, span
}

func TestBuilderSimpleLoop(t *testing.T) {
	prog, span := buildSimple(t)
	if got := len(prog.Procs); got != 1 {
		t.Fatalf("procs = %d; want 1", got)
	}
	p := prog.Procs[0]
	// Blocks: pre-loop, body, latch, post, ret.
	if got := len(p.Blocks); got != 5 {
		t.Fatalf("blocks = %d; want 5", got)
	}
	// 5 + 10 + 2 (latch) + 3 + 1 (ret) instructions.
	if got := p.NumInstrs(); got != 21 {
		t.Fatalf("instrs = %d; want 21", got)
	}
	if span.NumInstrs() != 12 { // body 10 + latch 2
		t.Fatalf("span instrs = %d; want 12", span.NumInstrs())
	}
	if span.Depth != 1 {
		t.Fatalf("span depth = %d; want 1", span.Depth)
	}
}

func TestLoopDetectionMatchesBuiltSpan(t *testing.T) {
	prog, span := buildSimple(t)
	loops := prog.AllLoops()
	if len(loops) != 1 {
		t.Fatalf("detected %d loops; want 1", len(loops))
	}
	l := loops[0]
	if l.Start() != span.Start || l.End() != span.End {
		t.Errorf("detected loop span %v-%v; built span %v-%v", l.Start(), l.End(), span.Start, span.End)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d; want 1", l.Depth)
	}
	if l.Name() != span.Name() {
		t.Errorf("names disagree: %q vs %q", l.Name(), span.Name())
	}
}

func TestNestedLoops(t *testing.T) {
	b := NewBuilder(0x20000)
	p := b.Proc("nest")
	p.BeginLoop()
	p.Code(6, KindALU)
	inner := p.Loop(8, []Kind{KindLoad, KindALU, KindALU, KindALU}, nil)
	p.Code(4, KindALU)
	outer := p.EndLoop()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("depths: inner %d outer %d; want 2, 1", inner.Depth, outer.Depth)
	}
	if !(outer.Start <= inner.Start && inner.End <= outer.End) {
		t.Fatalf("outer %v-%v does not contain inner %v-%v", outer.Start, outer.End, inner.Start, inner.End)
	}

	loops := prog.AllLoops()
	if len(loops) != 2 {
		t.Fatalf("detected %d loops; want 2", len(loops))
	}
	var li, lo *Loop
	for _, l := range loops {
		switch l.Depth {
		case 1:
			lo = l
		case 2:
			li = l
		}
	}
	if li == nil || lo == nil {
		t.Fatalf("missing depth-1 or depth-2 loop: %+v", loops)
	}
	if li.Parent != lo {
		t.Errorf("inner.Parent mismatch")
	}
	if li.Start() != inner.Start || li.End() != inner.End {
		t.Errorf("inner detected %v-%v; built %v-%v", li.Start(), li.End(), inner.Start, inner.End)
	}
	if lo.Start() != outer.Start || lo.End() != outer.End {
		t.Errorf("outer detected %v-%v; built %v-%v", lo.Start(), lo.End(), outer.Start, outer.End)
	}

	// Innermost lookup: an address in the inner body resolves to the inner
	// loop; an address in the outer body (before the inner) to the outer.
	proc := prog.Procs[0]
	if got := proc.InnermostLoopAt(inner.Start); got != li {
		t.Errorf("InnermostLoopAt(inner.Start) = %v; want inner", got)
	}
	if got := proc.InnermostLoopAt(outer.Start); got != lo {
		t.Errorf("InnermostLoopAt(outer.Start) = %v; want outer", got)
	}
	if got := proc.InnermostLoopAt(outer.End); got != nil {
		t.Errorf("InnermostLoopAt past end = %v; want nil", got)
	}
}

func TestMultipleProcedures(t *testing.T) {
	b := NewBuilder(0x10000)
	m := b.Proc("main")
	m.Code(4, KindALU)
	m.Call("helper")
	mainLoop := m.Loop(6, nil, nil)
	h := b.Proc("helper")
	helperLoop := h.Loop(12, []Kind{KindLoad, KindALU, KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(prog.Procs) != 2 {
		t.Fatalf("procs = %d; want 2", len(prog.Procs))
	}
	if prog.Proc("helper") == nil || prog.Proc("main") == nil {
		t.Fatal("Proc lookup by name failed")
	}
	if prog.Proc("nope") != nil {
		t.Fatal("Proc lookup for unknown name should be nil")
	}
	// Address lookups route to the right procedure.
	if p := prog.ProcAt(mainLoop.Start); p == nil || p.Name != "main" {
		t.Errorf("ProcAt(main loop) = %v", p)
	}
	if p := prog.ProcAt(helperLoop.Start); p == nil || p.Name != "helper" {
		t.Errorf("ProcAt(helper loop) = %v", p)
	}
	// Gap between procedures is not part of any procedure.
	gapAddr := prog.Procs[0].End()
	if prog.Procs[1].Start() > gapAddr {
		if p := prog.ProcAt(gapAddr); p != nil {
			t.Errorf("ProcAt(gap) = %v; want nil", p)
		}
	}
	// Call target is recorded.
	var foundCall bool
	for _, blk := range prog.Proc("main").Blocks {
		if blk.CallTarget == "helper" {
			foundCall = true
			if blk.Kinds[len(blk.Kinds)-1] != KindCall {
				t.Error("call block does not end in a call instruction")
			}
		}
	}
	if !foundCall {
		t.Error("call to helper not recorded")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unclosed loop", func(t *testing.T) {
		b := NewBuilder(0x1000)
		p := b.Proc("x")
		p.BeginLoop()
		p.Code(3)
		if _, err := b.Build(); err == nil {
			t.Error("unclosed loop should fail Build")
		}
	})
	t.Run("end without begin", func(t *testing.T) {
		b := NewBuilder(0x1000)
		p := b.Proc("x")
		p.Code(3)
		p.EndLoop()
		if _, err := b.Build(); err == nil {
			t.Error("EndLoop without BeginLoop should fail Build")
		}
	})
	t.Run("empty loop", func(t *testing.T) {
		b := NewBuilder(0x1000)
		p := b.Proc("x")
		p.BeginLoop()
		p.EndLoop()
		if _, err := b.Build(); err == nil {
			t.Error("empty loop should fail Build")
		}
	})
	t.Run("zero code", func(t *testing.T) {
		b := NewBuilder(0x1000)
		p := b.Proc("x")
		p.Code(0)
		if _, err := b.Build(); err == nil {
			t.Error("Code(0) should fail Build")
		}
	})
	t.Run("misaligned base", func(t *testing.T) {
		b := NewBuilder(0x1001)
		b.Proc("x").Code(1)
		if _, err := b.Build(); err == nil {
			t.Error("misaligned base should fail Build")
		}
	})
	t.Run("unknown call target", func(t *testing.T) {
		b := NewBuilder(0x1000)
		p := b.Proc("x")
		p.Call("ghost")
		if _, err := b.Build(); err == nil {
			t.Error("call to unknown procedure should fail Build")
		}
	})
	t.Run("interleaved procs", func(t *testing.T) {
		b := NewBuilder(0x1000)
		p1 := b.Proc("a")
		p1.Code(2)
		b.Proc("b").Code(2)
		p1.Code(2) // a is no longer current
		if _, err := b.Build(); err == nil {
			t.Error("interleaved procedure construction should fail Build")
		}
	})
	t.Run("no procedures", func(t *testing.T) {
		if _, err := NewBuilder(0x1000).Build(); err == nil {
			t.Error("empty program should fail Build")
		}
	})
}

func TestKindAtAndLookups(t *testing.T) {
	b := NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(2, KindALU, KindLoad)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, ok := prog.KindAt(0x10000)
	if !ok || k != KindALU {
		t.Errorf("KindAt(0x10000) = %v, %v; want alu, true", k, ok)
	}
	k, ok = prog.KindAt(0x10004)
	if !ok || k != KindLoad {
		t.Errorf("KindAt(0x10004) = %v, %v; want load, true", k, ok)
	}
	if _, ok := prog.KindAt(0x10002); ok {
		t.Error("misaligned KindAt should fail")
	}
	if _, ok := prog.KindAt(0x9000); ok {
		t.Error("out-of-text KindAt should fail")
	}
	if prog.Start() != 0x10000 {
		t.Errorf("Start = %v", prog.Start())
	}
}

func TestBlockHelpers(t *testing.T) {
	blk := &Block{ID: 0, Start: 0x100, Kinds: []Kind{KindALU, KindLoad, KindBranch}}
	if blk.Len() != 3 || blk.End() != 0x10c {
		t.Fatalf("Len/End = %d/%v", blk.Len(), blk.End())
	}
	if !blk.Contains(0x104) || blk.Contains(0x10c) || blk.Contains(0xff) {
		t.Error("Contains boundary behaviour wrong")
	}
	if blk.AddrOf(2) != 0x108 {
		t.Errorf("AddrOf(2) = %v", blk.AddrOf(2))
	}
	if blk.IndexOf(0x108) != 2 {
		t.Errorf("IndexOf(0x108) = %d", blk.IndexOf(0x108))
	}
	if blk.IndexOf(0x106) != -1 || blk.IndexOf(0x200) != -1 {
		t.Error("IndexOf should reject misaligned/outside addresses")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// Hand-built diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
	mk := func(id BlockID, start Addr, succs ...BlockID) *Block {
		return &Block{ID: id, Start: start, Kinds: []Kind{KindALU, KindBranch}, Succs: succs}
	}
	p := &Procedure{Name: "d", Blocks: []*Block{
		mk(0, 0x0, 1, 2),
		mk(1, 0x8, 3),
		mk(2, 0x10, 3),
		mk(3, 0x18),
	}}
	idom := p.Dominators()
	want := []BlockID{0, 0, 0, 0}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[%d] = %d; want %d", i, idom[i], w)
		}
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 1, 3) || !Dominates(idom, 2, 2) {
		t.Error("Dominates answers wrong on diamond")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	mk := func(id BlockID, start Addr, succs ...BlockID) *Block {
		return &Block{ID: id, Start: start, Kinds: []Kind{KindALU}, Succs: succs}
	}
	p := &Procedure{Name: "u", Blocks: []*Block{
		mk(0, 0x0, 1),
		mk(1, 0x4),
		mk(2, 0x8, 1), // unreachable
	}}
	idom := p.Dominators()
	if idom[2] != NoBlock {
		t.Errorf("idom[unreachable] = %d; want NoBlock", idom[2])
	}
	if idom[0] != 0 || idom[1] != 0 {
		t.Errorf("idom = %v", idom)
	}
	// Loop detection must not be confused by the unreachable back edge.
	if loops := p.Loops(); len(loops) != 0 {
		t.Errorf("loops from unreachable edge: %d; want 0", len(loops))
	}
}

// Property test: random loop-nest programs always produce (a) a valid
// program, (b) detected loops exactly matching the builder's spans, and
// (c) loop depth consistent with span containment.
func TestRandomLoopNestsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xD00F))
		b := NewBuilder(0x10000)
		var spans []LoopSpan
		nProcs := 1 + rng.IntN(3)
		for pi := 0; pi < nProcs; pi++ {
			p := b.Proc("p" + string(rune('a'+pi)))
			p.Code(1 + rng.IntN(8))
			var gen func(depth int)
			gen = func(depth int) {
				nLoops := rng.IntN(3)
				for i := 0; i < nLoops; i++ {
					p.BeginLoop()
					p.Code(1 + rng.IntN(12))
					if depth < 3 && rng.IntN(2) == 0 {
						gen(depth + 1)
					}
					spans = append(spans, p.EndLoop())
					if rng.IntN(2) == 0 {
						p.Code(1 + rng.IntN(5))
					}
				}
			}
			gen(1)
		}
		prog, err := b.Build()
		if err != nil {
			t.Logf("seed %d: build error: %v", seed, err)
			return false
		}
		loops := prog.AllLoops()
		if len(loops) != len(spans) {
			t.Logf("seed %d: %d detected vs %d built", seed, len(loops), len(spans))
			return false
		}
		bySpan := make(map[string]LoopSpan, len(spans))
		for _, s := range spans {
			bySpan[s.Name()] = s
		}
		for _, l := range loops {
			s, ok := bySpan[l.Name()]
			if !ok {
				t.Logf("seed %d: detected loop %s not built", seed, l.Name())
				return false
			}
			if l.Depth != s.Depth {
				t.Logf("seed %d: loop %s depth %d vs built %d", seed, l.Name(), l.Depth, s.Depth)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	if Addr(0x146f0).String() != "146f0" {
		t.Errorf("Addr.String = %q", Addr(0x146f0).String())
	}
	if KindLoad.String() != "load" {
		t.Errorf("Kind.String = %q", KindLoad.String())
	}
	if Kind(200).String() == "" || Kind(200).Valid() {
		t.Error("invalid Kind handling")
	}
}
