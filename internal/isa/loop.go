package isa

import (
	"fmt"
	"sort"
)

// Loop is a natural loop: the target of one or more back edges plus every
// block that can reach the back edge source without passing the header.
// Loops are the paper's primary unit of optimization ("regions are
// primarily loops that have significant samples within an interval").
type Loop struct {
	// Proc is the enclosing procedure.
	Proc *Procedure
	// Header is the loop header block.
	Header BlockID
	// Blocks lists the loop's member blocks (header included), ascending.
	Blocks []BlockID
	// Depth is the nesting depth (1 = outermost).
	Depth int
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop

	start, end Addr
}

// Start returns the lowest instruction address in the loop.
func (l *Loop) Start() Addr { return l.start }

// End returns one past the highest instruction address in the loop.
func (l *Loop) End() Addr { return l.end }

// Contains reports whether addr falls inside the loop's address span.
// Synthetic loop bodies are laid out contiguously, so the span test is
// exact, matching the paper's "code region between address X and address Y"
// notion of a region.
func (l *Loop) Contains(addr Addr) bool { return addr >= l.start && addr < l.end }

// NumInstrs returns the loop's instruction count.
func (l *Loop) NumInstrs() int {
	n := 0
	for _, b := range l.Blocks {
		n += l.Proc.Blocks[b].Len()
	}
	return n
}

// HasBlock reports whether b is a member of the loop.
func (l *Loop) HasBlock(b BlockID) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i] >= b })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// Name renders the paper's region-name convention, e.g. "146f0-14770".
func (l *Loop) Name() string { return fmt.Sprintf("%v-%v", l.start, l.end) }

// Loops returns the procedure's natural loops in ascending header-address
// order. Loops sharing a header are merged (standard natural-loop
// normalization). The result is computed once and cached; NewProgram
// forces the computation at construction so that a validated Program is
// read-only (and shareable across goroutines) from then on.
func (p *Procedure) Loops() []*Loop {
	if p.loops != nil {
		return p.loops
	}
	idom := p.Dominators()

	// Collect back edges grouped by header.
	backEdges := make(map[BlockID][]BlockID)
	for _, b := range p.Blocks {
		if idom[b.ID] == NoBlock && b.ID != 0 {
			continue // unreachable
		}
		for _, s := range b.Succs {
			if Dominates(idom, s, b.ID) {
				backEdges[s] = append(backEdges[s], b.ID)
			}
		}
	}

	// Predecessors for the reachable loop-body walk.
	preds := make([][]BlockID, len(p.Blocks))
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.ID)
		}
	}

	loops := make([]*Loop, 0, len(backEdges))
	for header, tails := range backEdges {
		member := map[BlockID]bool{header: true}
		var stack []BlockID
		for _, t := range tails {
			if !member[t] {
				member[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, pr := range preds[b] {
				if !member[pr] {
					member[pr] = true
					stack = append(stack, pr)
				}
			}
		}
		blocks := make([]BlockID, 0, len(member))
		for b := range member {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		l := &Loop{Proc: p, Header: header, Blocks: blocks}
		l.start = p.Blocks[blocks[0]].Start
		l.end = p.Blocks[blocks[0]].End()
		for _, b := range blocks {
			blk := p.Blocks[b]
			if blk.Start < l.start {
				l.start = blk.Start
			}
			if blk.End() > l.end {
				l.end = blk.End()
			}
		}
		loops = append(loops, l)
	}

	sort.Slice(loops, func(i, j int) bool {
		li, lj := loops[i], loops[j]
		if li.start != lj.start {
			return li.start < lj.start
		}
		// Same start: the larger (outer) loop first.
		return li.end > lj.end
	})

	// Nesting: loop A is the parent of B if A strictly contains B's blocks
	// and no smaller loop does. With block sets sorted, containment can be
	// tested via membership of B's header and size comparison.
	for i, inner := range loops {
		var best *Loop
		for j, outer := range loops {
			if i == j || len(outer.Blocks) <= len(inner.Blocks) {
				continue
			}
			if outer.HasBlock(inner.Header) && containsAll(outer, inner) {
				if best == nil || len(outer.Blocks) < len(best.Blocks) {
					best = outer
				}
			}
		}
		inner.Parent = best
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}

	p.loops = loops
	return loops
}

func containsAll(outer, inner *Loop) bool {
	for _, b := range inner.Blocks {
		if !outer.HasBlock(b) {
			return false
		}
	}
	return true
}

// InnermostLoopAt returns the innermost loop whose address span contains
// addr, or nil. This is how region formation maps a hot sample to a
// candidate loop region.
func (p *Procedure) InnermostLoopAt(addr Addr) *Loop {
	var best *Loop
	for _, l := range p.Loops() {
		if l.Contains(addr) && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}
