package isa

import (
	"fmt"
	"sort"
)

// Builder assembles synthetic programs. Typical use:
//
//	b := isa.NewBuilder(0x10000)
//	p := b.Proc("main")
//	p.Code(20, isa.KindALU)
//	span := p.Loop(40, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU}, nil)
//	prog, err := b.Build()
//
// Blocks are laid out contiguously in creation order, so loop bodies occupy
// contiguous address ranges exactly like compiled loop nests, and the spans
// reported by Loop match what dominator-based loop detection later finds.
type Builder struct {
	base Addr
	next Addr
	done []*Procedure
	cur  *ProcBuilder
	err  error
}

// ProcGap is the padding inserted between consecutive procedures.
const ProcGap = 0x40

// NewBuilder returns a Builder placing the first procedure at base.
// base must be InstrBytes-aligned.
func NewBuilder(base Addr) *Builder {
	b := &Builder{base: base, next: base}
	if base%InstrBytes != 0 {
		b.err = fmt.Errorf("isa: builder base %v not %d-byte aligned", base, InstrBytes)
	}
	return b
}

// LoopSpan identifies a built loop's contiguous address range. Workload
// models use spans to steer execution into specific loops; they carry no
// pointers into the CFG so they are trivially copyable.
type LoopSpan struct {
	// Proc is the enclosing procedure name.
	Proc string
	// Start is the loop's first instruction address.
	Start Addr
	// End is one past the loop's last instruction address (latch included).
	End Addr
	// Depth is the static nesting depth at build time (1 = outermost).
	Depth int
}

// Name renders the paper's region-name convention, e.g. "146f0-14770".
func (s LoopSpan) Name() string { return fmt.Sprintf("%v-%v", s.Start, s.End) }

// NumInstrs returns the span's instruction count.
func (s LoopSpan) NumInstrs() int { return int(s.End-s.Start) / InstrBytes }

// Contains reports whether addr falls inside the span.
func (s LoopSpan) Contains(addr Addr) bool { return addr >= s.Start && addr < s.End }

// ProcBuilder accumulates one procedure's blocks.
type ProcBuilder struct {
	b           *Builder
	name        string
	blocks      []*Block
	cur         []Kind
	curStart    Addr
	pendingExit []BlockID
	loopStack   []int // header block index (the next block at BeginLoop time)
	spans       []LoopSpan
	finished    bool
}

// Proc starts a new procedure, finalizing the previous one (its trailing
// return block is emitted at that point). Procedures are laid out in
// declaration order with a small gap between them.
func (b *Builder) Proc(name string) *ProcBuilder {
	b.finishCur()
	if len(b.done) > 0 {
		b.next += ProcGap
		b.next -= b.next % InstrBytes
	}
	pb := &ProcBuilder{b: b, name: name, curStart: b.next}
	b.cur = pb
	return pb
}

// Skip advances the address cursor by at least bytes (rounded up to
// instruction alignment) before the next procedure, creating a text-segment
// gap. Call between procedures to spread them across the address space the
// way large binaries are laid out — centroid-based detection is sensitive
// to exactly this geometry. Skip fails the build if a procedure is open.
func (b *Builder) Skip(bytes Addr) {
	if b.cur != nil {
		b.finishCur()
	}
	b.next += bytes
	if rem := b.next % InstrBytes; rem != 0 {
		b.next += InstrBytes - rem
	}
}

// finishCur seals the in-progress procedure, if any.
func (b *Builder) finishCur() {
	if b.cur == nil {
		return
	}
	if p := b.cur.finish(); p != nil {
		b.done = append(b.done, p)
	}
	b.cur = nil
}

// active guards against interleaving construction of two procedures, which
// would corrupt the shared address cursor.
func (pb *ProcBuilder) active() bool {
	if pb.b.cur != pb {
		pb.fail("procedure built out of order (another Proc was started)")
		return false
	}
	return true
}

// fail records the first construction error on the parent builder.
func (pb *ProcBuilder) fail(format string, args ...any) {
	if pb.b.err == nil {
		pb.b.err = fmt.Errorf("isa: proc %q: %s", pb.name, fmt.Sprintf(format, args...))
	}
}

// Code appends n instructions to the procedure's current straight-line run,
// cycling through pattern (default ALU when pattern is empty).
func (pb *ProcBuilder) Code(n int, pattern ...Kind) {
	if !pb.active() {
		return
	}
	if n <= 0 {
		pb.fail("Code called with n=%d", n)
		return
	}
	if len(pb.cur) == 0 {
		pb.curStart = pb.b.next
	}
	for i := 0; i < n; i++ {
		k := KindALU
		if len(pattern) > 0 {
			k = pattern[i%len(pattern)]
		}
		pb.cur = append(pb.cur, k)
		pb.b.next += InstrBytes
	}
}

// newBlock materializes a block with the given kinds at the current address
// cursor position minus the instructions already accounted (kinds were
// counted by Code) — callers pass either the accumulated cur slice or a
// fresh synthesized block body whose addresses must still be allocated.
func (pb *ProcBuilder) sealCur(fallthroughToNext bool) {
	if len(pb.cur) == 0 {
		return
	}
	blk := &Block{
		ID:    BlockID(len(pb.blocks)),
		Start: pb.curStart,
		Kinds: pb.cur,
	}
	pb.cur = nil
	pb.attachPending(blk)
	pb.blocks = append(pb.blocks, blk)
	if fallthroughToNext {
		pb.pendingExit = append(pb.pendingExit, blk.ID)
	}
}

// attachPending wires every block waiting for a "next block" edge to blk.
func (pb *ProcBuilder) attachPending(blk *Block) {
	for _, id := range pb.pendingExit {
		pb.blocks[id].Succs = append(pb.blocks[id].Succs, blk.ID)
	}
	pb.pendingExit = pb.pendingExit[:0]
}

// synthBlock allocates a fresh block with the given kinds at the address
// cursor (used for latches and the final return block).
func (pb *ProcBuilder) synthBlock(kinds []Kind) *Block {
	blk := &Block{
		ID:    BlockID(len(pb.blocks)),
		Start: pb.b.next,
		Kinds: kinds,
	}
	pb.b.next += Addr(len(kinds) * InstrBytes)
	pb.attachPending(blk)
	pb.blocks = append(pb.blocks, blk)
	return blk
}

// NewBlock seals the current straight-line run into its own basic block
// (falling through to whatever comes next). Use it to split long straight
// code into separate blocks, e.g. distinct UCR stretches.
func (pb *ProcBuilder) NewBlock() {
	if !pb.active() {
		return
	}
	pb.sealCur(true)
}

// BeginLoop opens a loop: everything added until the matching EndLoop forms
// the loop body. Loops nest.
func (pb *ProcBuilder) BeginLoop() {
	if !pb.active() {
		return
	}
	pb.sealCur(true)
	pb.loopStack = append(pb.loopStack, len(pb.blocks))
}

// EndLoop closes the innermost open loop, appending its latch block (the
// back-edge branch), and returns the loop's span.
func (pb *ProcBuilder) EndLoop() LoopSpan {
	if !pb.active() {
		return LoopSpan{}
	}
	if len(pb.loopStack) == 0 {
		pb.fail("EndLoop without BeginLoop")
		return LoopSpan{}
	}
	headerIdx := pb.loopStack[len(pb.loopStack)-1]
	pb.loopStack = pb.loopStack[:len(pb.loopStack)-1]
	pb.sealCur(true)
	if headerIdx >= len(pb.blocks) {
		pb.fail("empty loop body")
		return LoopSpan{}
	}
	latch := pb.synthBlock([]Kind{KindALU, KindBranch})
	latch.Succs = append(latch.Succs, BlockID(headerIdx)) // back edge
	pb.pendingExit = append(pb.pendingExit, latch.ID)     // exit edge
	span := LoopSpan{
		Proc:  pb.name,
		Start: pb.blocks[headerIdx].Start,
		End:   latch.End(),
		Depth: len(pb.loopStack) + 1,
	}
	pb.spans = append(pb.spans, span)
	return span
}

// Loop is the common single-shot form: a loop whose body is n instructions
// of pattern, with optional nested structure added by nested (which may add
// code and further loops). Returns the loop's span.
func (pb *ProcBuilder) Loop(n int, pattern []Kind, nested func()) LoopSpan {
	pb.BeginLoop()
	pb.Code(n, pattern...)
	if nested != nil {
		nested()
	}
	return pb.EndLoop()
}

// Call appends a call to target: the current block is sealed with a
// trailing call instruction and falls through to the next block.
func (pb *ProcBuilder) Call(target string) {
	pb.Code(1, KindCall)
	pb.sealCur(true)
	pb.blocks[len(pb.blocks)-1].CallTarget = target
}

// Spans returns the loop spans recorded so far, outermost-first in
// address order.
func (pb *ProcBuilder) Spans() []LoopSpan {
	out := make([]LoopSpan, len(pb.spans))
	copy(out, pb.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End > out[j].End
	})
	return out
}

// finish seals the procedure with a return block.
func (pb *ProcBuilder) finish() *Procedure {
	if pb.finished {
		return nil
	}
	pb.finished = true
	if len(pb.loopStack) > 0 {
		pb.fail("%d unclosed loop(s)", len(pb.loopStack))
	}
	pb.sealCur(true)
	pb.synthBlock([]Kind{KindRet})
	return &Procedure{Name: pb.name, Blocks: pb.blocks}
}

// Build finalizes the last procedure, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	b.finishCur()
	if b.err != nil {
		return nil, b.err
	}
	return NewProgram(b.done)
}
