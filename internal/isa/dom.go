package isa

// Dominator analysis over a procedure's CFG, using the iterative algorithm
// of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance Algorithm").
// Region formation needs dominators only to identify back edges (t -> h
// where h dominates t), from which natural loops — the paper's units of
// optimization — are derived.

// Dominators returns idom, the immediate-dominator array for the
// procedure's blocks: idom[entry] == entry, and idom[b] == NoBlock for
// blocks unreachable from the entry.
func (p *Procedure) Dominators() []BlockID {
	n := len(p.Blocks)
	idom := make([]BlockID, n)
	for i := range idom {
		idom[i] = NoBlock
	}
	if n == 0 {
		return idom
	}

	// Reverse postorder of the reachable subgraph.
	rpo := p.reversePostorder()
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	// Predecessor lists (reachable blocks only contribute).
	preds := make([][]BlockID, n)
	for _, b := range p.Blocks {
		if rpoNum[b.ID] < 0 {
			continue
		}
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.ID)
		}
	}

	entry := BlockID(0)
	idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := NoBlock
			for _, pblk := range preds[b] {
				if idom[pblk] == NoBlock {
					continue // predecessor not yet processed
				}
				if newIdom == NoBlock {
					newIdom = pblk
				} else {
					newIdom = intersect(pblk, newIdom, idom, rpoNum)
				}
			}
			if newIdom != NoBlock && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// intersect walks the two dominator-tree fingers up to their common
// ancestor, ordering by reverse-postorder number.
func intersect(b1, b2 BlockID, idom []BlockID, rpoNum []int) BlockID {
	f1, f2 := b1, b2
	for f1 != f2 {
		for rpoNum[f1] > rpoNum[f2] {
			f1 = idom[f1]
		}
		for rpoNum[f2] > rpoNum[f1] {
			f2 = idom[f2]
		}
	}
	return f1
}

// reversePostorder returns the procedure's reachable blocks in reverse
// postorder from the entry block.
func (p *Procedure) reversePostorder() []BlockID {
	n := len(p.Blocks)
	seen := make([]bool, n)
	post := make([]BlockID, 0, n)

	// Iterative DFS with an explicit stack carrying a successor cursor,
	// so deep synthetic CFGs cannot overflow the goroutine stack.
	type frame struct {
		b   BlockID
		cur int
	}
	stack := []frame{{b: 0}}
	seen[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := p.Blocks[f.b].Succs
		if f.cur < len(succs) {
			s := succs[f.cur]
			f.cur++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether block a dominates block b under idom
// (every block dominates itself).
func Dominates(idom []BlockID, a, b BlockID) bool {
	if a == b {
		return true
	}
	for b != NoBlock {
		parent := idom[b]
		if parent == b { // reached entry
			return a == b
		}
		if parent == a {
			return true
		}
		b = parent
	}
	return false
}
