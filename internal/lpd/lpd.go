// Package lpd implements the paper's contribution: Local Phase Detection
// (Section 3.2), one detector instance per monitored code region.
//
// Each sampling interval yields, for a region, a histogram of sample
// counts per instruction. The detector compares the current histogram
// against a stable reference histogram ("prev_hist") with Pearson's
// coefficient of correlation r; r below the threshold r_t (0.8 in the
// paper) means the distribution of bottlenecks inside the region changed —
// a local phase change. Pearson has the two properties Figure 8
// demonstrates: a one-instruction bottleneck shift collapses r toward 0,
// while uniformly scaling sample counts (sampling-rate noise, faster or
// slower progress through the same behaviour) leaves r near 1.
//
// The state machine follows Figure 12: Unstable → LessUnstable → Stable,
// advancing one state per interval with r >= r_t and falling back to
// Unstable whenever r < r_t. While not Stable, the reference histogram
// tracks the current interval; entering Stable freezes it until the next
// fallback. An interval in which the region received no samples re-reports
// the previous r and leaves the machine untouched ("when no samples are
// obtained in an interval for a region, the value of r returned is the
// same as during the last interval").
//
// Section 5 proposes investigating cheaper similarity metrics; the Metric
// field selects the Pearson original or one of two such alternatives
// (normalized-Manhattan similarity, top-k hot-instruction overlap), which
// the ablation benchmarks compare.
package lpd

import (
	"fmt"
	"math"

	"regionmon/internal/stats"
)

// State is a region's local phase state.
type State int

const (
	// Unstable: the region's sample distribution is changing.
	Unstable State = iota
	// LessUnstable: one interval of similarity observed.
	LessUnstable
	// Stable: a locally stable phase; the reference histogram is frozen
	// and the optimizer may act on the region.
	Stable
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Unstable:
		return "unstable"
	case LessUnstable:
		return "less-unstable"
	case Stable:
		return "stable"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Metric selects the similarity function.
type Metric int

const (
	// MetricPearson is the paper's Pearson coefficient of correlation.
	MetricPearson Metric = iota
	// MetricManhattan is 1 - L1/2 over count-normalized histograms — a
	// cheaper metric in the spirit of the paper's future work.
	MetricManhattan
	// MetricTopK is the overlap fraction of the k hottest instructions.
	MetricTopK
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case MetricPearson:
		return "pearson"
	case MetricManhattan:
		return "manhattan"
	case MetricTopK:
		return "topk"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Config parameterizes a local phase detector.
type Config struct {
	// RT is the similarity threshold r_t; the paper uses 0.8.
	RT float64
	// Metric selects the similarity function (default Pearson).
	Metric Metric
	// TopK is the hot-set size for MetricTopK (default 8).
	TopK int
	// ScaleRTBySize enables the paper's proposed region-size-scaled
	// threshold (Section 3.2.2: ammp's huge region sits just below 0.8,
	// so "we are investigating the use of a threshold based on the size
	// of region"). When enabled, regions larger than SizeRef instructions
	// get a proportionally relaxed threshold:
	//
	//	rt_eff = max(MinRT, RT * (SizeRef/n)^SizeExp)   for n > SizeRef
	//
	// This is this reproduction's concrete interpretation of the
	// future-work idea.
	ScaleRTBySize bool
	// SizeRef is the region size (instructions) at which scaling starts
	// (default 256).
	SizeRef int
	// SizeExp is the scaling exponent (default 0.15).
	SizeExp float64
	// MinRT floors the scaled threshold (default 0.5).
	MinRT float64
}

// DefaultConfig returns the paper's parameters (Pearson, r_t = 0.8).
func DefaultConfig() Config {
	return Config{
		RT:      0.8,
		Metric:  MetricPearson,
		TopK:    8,
		SizeRef: 256,
		SizeExp: 0.15,
		MinRT:   0.5,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.RT <= 0 || c.RT > 1 {
		return fmt.Errorf("lpd: threshold %v outside (0, 1]", c.RT)
	}
	switch c.Metric {
	case MetricPearson, MetricManhattan, MetricTopK:
	default:
		return fmt.Errorf("lpd: unknown metric %v", c.Metric)
	}
	if c.Metric == MetricTopK && c.TopK < 1 {
		return fmt.Errorf("lpd: top-k metric needs TopK >= 1 (got %d)", c.TopK)
	}
	if c.ScaleRTBySize {
		if c.SizeRef < 1 || c.SizeExp <= 0 || c.MinRT <= 0 || c.MinRT > c.RT {
			return fmt.Errorf("lpd: invalid size-scaling parameters (ref %d, exp %v, min %v)",
				c.SizeRef, c.SizeExp, c.MinRT)
		}
	}
	return nil
}

// Verdict is the outcome of one interval observation for a region.
type Verdict struct {
	// State is the detector state after the observation.
	State State
	// Prev is the state before the observation.
	Prev State
	// R is the similarity value used (re-reported from the previous
	// interval when the region received no samples).
	R float64
	// PhaseChange reports a crossing of the stable boundary (the dotted
	// transitions of Figure 12).
	PhaseChange bool
	// Empty reports that the region received no samples this interval.
	Empty bool
	// RefUpdated reports that the reference histogram was replaced by the
	// current one.
	RefUpdated bool
}

// Detector is one region's local phase detector. Not safe for concurrent
// use.
type Detector struct {
	cfg    Config  //lint:config -- fixed at construction
	rt     float64 //lint:config -- effective threshold (size-scaled once at creation)
	n      int     // instructions in region
	ref    []int64 // prev_hist: the stable set of samples
	hasRef bool
	state  State
	lastR  float64

	changes int
	stable  int
	total   int

	// topk is the reusable working storage for the top-k metric, sized at
	// construction so Observe stays allocation-free (nil for other metrics).
	topk *stats.TopKScratch //lint:config -- reusable scratch, no observation state

	// pref caches the reference histogram's float conversion and moments
	// for the Pearson metric (nil for other metrics): the reference side
	// of the correlation changes only when the reference is re-established,
	// so Observe makes one fused pass over curr instead of recomputing
	// both sides (see stats.PearsonRef). Kept in sync with ref by setRef.
	pref *stats.PearsonRef //lint:config -- derived cache, re-synced by setRef on restore
}

// New returns a detector for a region of numInstrs instructions.
func New(numInstrs int, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numInstrs < 1 {
		return nil, fmt.Errorf("lpd: region must have at least one instruction (got %d)", numInstrs)
	}
	d := &Detector{cfg: cfg, n: numInstrs, ref: make([]int64, numInstrs)}
	d.rt = cfg.EffectiveRT(numInstrs)
	switch cfg.Metric {
	case MetricTopK:
		d.topk = stats.NewTopKScratch(numInstrs, cfg.TopK)
	case MetricPearson:
		d.pref = stats.NewPearsonRef(numInstrs)
	}
	return d, nil
}

// MustNew is New, panicking on error.
func MustNew(numInstrs int, cfg Config) *Detector {
	d, err := New(numInstrs, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// EffectiveRT returns the threshold applied to a region of n instructions
// under c (identical to RT unless size scaling is enabled).
func (c *Config) EffectiveRT(n int) float64 {
	if !c.ScaleRTBySize || n <= c.SizeRef {
		return c.RT
	}
	rt := c.RT * math.Pow(float64(c.SizeRef)/float64(n), c.SizeExp)
	if rt < c.MinRT {
		rt = c.MinRT
	}
	return rt
}

// NumInstrs returns the region size the detector was built for.
func (d *Detector) NumInstrs() int { return d.n }

// RT returns the effective similarity threshold in use.
func (d *Detector) RT() float64 { return d.rt }

// State returns the current state.
func (d *Detector) State() State { return d.state }

// LastR returns the most recent similarity value.
func (d *Detector) LastR() float64 { return d.lastR }

// PhaseChanges returns the number of stable→unstable transitions — the
// per-region quantity Figure 13 reports.
func (d *Detector) PhaseChanges() int { return d.changes }

// StableFraction returns the fraction of intervals spent in Stable —
// Figure 14's per-region quantity.
func (d *Detector) StableFraction() float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.stable) / float64(d.total)
}

// Intervals returns the number of observed intervals.
func (d *Detector) Intervals() int { return d.total }

// Reference returns a copy of the current reference histogram (inspection
// helper; nil before the first non-empty interval).
func (d *Detector) Reference() []int64 {
	if !d.hasRef {
		return nil
	}
	out := make([]int64, len(d.ref))
	copy(out, d.ref)
	return out
}

// similarity computes the configured metric between the reference and the
// current histogram.
func (d *Detector) similarity(curr []int64) float64 {
	switch d.cfg.Metric {
	case MetricManhattan:
		return 1 - stats.Manhattan(d.ref, curr)/2
	case MetricTopK:
		k := d.cfg.TopK
		if k > d.n {
			k = d.n
		}
		return d.topk.Overlap(d.ref, curr, k)
	default:
		// One fused pass over curr against the cached reference moments;
		// bit-identical to stats.Pearson(curr, d.ref).
		r, ok := d.pref.Observe(curr)
		if !ok {
			// One side has zero variance while the other varies: the
			// behaviour changed shape; treat as uncorrelated.
			return 0
		}
		return r
	}
}

// setRef re-establishes the reference histogram from curr, keeping the
// Pearson moment cache (when present) in sync. This is the only place the
// reference changes, so the cache can never go stale.
func (d *Detector) setRef(curr []int64) {
	copy(d.ref, curr)
	if d.pref != nil {
		d.pref.Set(d.ref)
	}
}

// Observe feeds one interval's per-instruction sample histogram. curr must
// have exactly NumInstrs entries; Observe panics otherwise (the caller —
// the region monitor — owns the histogram layout, and a mismatch is a
// bug, not data). The contents of curr are copied when the reference is
// updated; the caller may reuse the slice.
func (d *Detector) Observe(curr []int64) Verdict {
	if len(curr) != d.n {
		panic(fmt.Sprintf("lpd: histogram has %d entries for a %d-instruction region", len(curr), d.n))
	}
	v := Verdict{Prev: d.state}
	d.total++

	empty := true
	for _, c := range curr {
		if c != 0 {
			empty = false
			break
		}
	}
	if empty {
		// No samples: re-report last r, freeze the machine.
		v.Empty = true
		v.R = d.lastR
		v.State = d.state
		if d.state == Stable {
			d.stable++
		}
		return v
	}

	if !d.hasRef {
		// First populated interval: establish the reference, remain
		// Unstable ("after two intervals, an r-value can be computed").
		d.setRef(curr)
		d.hasRef = true
		d.lastR = 0
		v.R = 0
		v.State = d.state
		v.RefUpdated = true
		return v
	}

	r := d.similarity(curr)
	d.lastR = r
	v.R = r
	similar := r >= d.rt

	switch d.state {
	case Unstable:
		if similar {
			d.state = LessUnstable
		}
		d.setRef(curr)
		v.RefUpdated = true
	case LessUnstable:
		if similar {
			d.state = Stable
			// The reference is updated one final time on the
			// transition, then frozen (Figure 12's edge labels).
			d.setRef(curr)
			v.RefUpdated = true
		} else {
			d.state = Unstable
			d.setRef(curr)
			v.RefUpdated = true
		}
	case Stable:
		if !similar {
			d.state = Unstable
			d.changes++
			d.setRef(curr)
			v.RefUpdated = true
		}
	}

	v.State = d.state
	v.PhaseChange = (v.Prev == Stable) != (v.State == Stable)
	if d.state == Stable {
		d.stable++
	}
	return v
}

// Reset returns the detector to its initial state.
func (d *Detector) Reset() {
	for i := range d.ref {
		d.ref[i] = 0
	}
	d.hasRef = false
	d.state = Unstable
	d.lastR = 0
	d.changes = 0
	d.stable = 0
	d.total = 0
}
