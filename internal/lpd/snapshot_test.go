package lpd

import (
	"testing"

	"regionmon/internal/snap"
)

// histStream deterministically generates interval histograms with phase
// shifts and occasional empty intervals, exercising every state-machine
// path (reference establishment, stable runs, phase changes, empty
// re-reporting).
func histStream(n, intervals int) [][]int64 {
	out := make([][]int64, intervals)
	lcg := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg >> 33
	}
	for t := 0; t < intervals; t++ {
		h := make([]int64, n)
		switch {
		case t%17 == 13:
			// empty interval
		case (t/20)%2 == 0:
			// phase A: hot front half, mild noise
			for i := 0; i < n/2; i++ {
				h[i] = 50 + int64(next()%7)
			}
		default:
			// phase B: hot back half
			for i := n / 2; i < n; i++ {
				h[i] = 80 + int64(next()%5)
			}
		}
		out[t] = h
	}
	return out
}

func TestSnapshotForkEquality(t *testing.T) {
	const n, total, at = 32, 120, 47
	stream := histStream(n, total)

	ref := MustNew(n, DefaultConfig())
	forked := MustNew(n, DefaultConfig())

	var snapBytes []byte
	for i := 0; i < at; i++ {
		ref.Observe(stream[i])
		forked.Observe(stream[i])
	}
	snapBytes = forked.Snapshot()

	restored := MustNew(n, DefaultConfig())
	if err := restored.Restore(snapBytes); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The restored detector re-snapshots to identical bytes.
	if string(restored.Snapshot()) != string(snapBytes) {
		t.Fatal("restored detector snapshots to different bytes")
	}

	for i := at; i < total; i++ {
		rv := ref.Observe(stream[i])
		sv := restored.Observe(stream[i])
		if rv != sv {
			t.Fatalf("interval %d: verdict diverged: ref %+v restored %+v", i, rv, sv)
		}
	}
	if ref.PhaseChanges() != restored.PhaseChanges() ||
		ref.StableFraction() != restored.StableFraction() ||
		ref.Intervals() != restored.Intervals() {
		t.Fatalf("counters diverged: (%d,%v,%d) vs (%d,%v,%d)",
			ref.PhaseChanges(), ref.StableFraction(), ref.Intervals(),
			restored.PhaseChanges(), restored.StableFraction(), restored.Intervals())
	}
}

func TestSnapshotSizeMismatch(t *testing.T) {
	d := MustNew(8, DefaultConfig())
	d.Observe(make([]int64, 8))
	if err := MustNew(16, DefaultConfig()).Restore(d.Snapshot()); err == nil {
		t.Fatal("expected region-size mismatch error")
	}
}

func TestSnapshotRejectsCorruptState(t *testing.T) {
	d := MustNew(4, DefaultConfig())
	e := snap.NewEncoder()
	e.Header("lpd", 1)
	e.Int(4)
	e.Bool(false)
	e.I64s(make([]int64, 4))
	e.Int(99) // invalid state
	e.F64(0)
	e.Int(0)
	e.Int(0)
	e.Int(0)
	if err := d.Restore(e.Bytes()); err == nil {
		t.Fatal("expected invalid-state error")
	}
	if err := d.Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected decode error on garbage")
	}
}
