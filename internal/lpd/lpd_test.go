package lpd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"regionmon/internal/stats"
)

// hist builds a 10-entry histogram with a single bottleneck at idx.
func hist(idx int, hot, base int64) []int64 {
	h := make([]int64, 10)
	for i := range h {
		h[i] = base
	}
	h[idx] = hot
	return h
}

func newDefault(t *testing.T) *Detector {
	t.Helper()
	d, err := New(10, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{RT: 0},
		{RT: 1.5},
		{RT: 0.8, Metric: Metric(42)},
		{RT: 0.8, Metric: MetricTopK, TopK: 0},
		{RT: 0.8, ScaleRTBySize: true, SizeRef: 0, SizeExp: 0.1, MinRT: 0.5},
		{RT: 0.8, ScaleRTBySize: true, SizeRef: 10, SizeExp: 0, MinRT: 0.5},
		{RT: 0.8, ScaleRTBySize: true, SizeRef: 10, SizeExp: 0.1, MinRT: 0.9},
	}
	for i, c := range bad {
		if _, err := New(10, c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(0, good); err == nil {
		t.Error("zero-instruction region accepted")
	}
}

func TestStabilizationSequence(t *testing.T) {
	d := newDefault(t)
	h := hist(3, 350, 10)

	// Interval 1: establishes the reference, stays Unstable.
	v := d.Observe(h)
	if v.State != Unstable || !v.RefUpdated || v.R != 0 {
		t.Fatalf("interval 1 verdict = %+v", v)
	}
	// Interval 2: r ≈ 1 → LessUnstable.
	v = d.Observe(h)
	if v.State != LessUnstable {
		t.Fatalf("interval 2 state = %v; want less-unstable", v.State)
	}
	if v.R < 0.99 {
		t.Fatalf("interval 2 r = %v; want ≈ 1", v.R)
	}
	// Interval 3: r ≈ 1 → Stable, phase change reported.
	v = d.Observe(h)
	if v.State != Stable || !v.PhaseChange {
		t.Fatalf("interval 3 verdict = %+v; want stable + phase change", v)
	}
	// Reference is now frozen.
	v = d.Observe(h)
	if v.RefUpdated {
		t.Error("reference updated while stable")
	}
}

// TestScaledSamplesDoNotBreakStability is the core Figure 8 property at
// the detector level: the same behaviour sampled at a different rate (all
// counts scaled) must not trigger a phase change.
func TestScaledSamplesDoNotBreakStability(t *testing.T) {
	d := newDefault(t)
	base := hist(3, 350, 10)
	for i := 0; i < 3; i++ {
		d.Observe(base)
	}
	if d.State() != Stable {
		t.Fatal("precondition: not stable")
	}
	scaled := make([]int64, len(base))
	for i, v := range base {
		scaled[i] = v*3 + 2
	}
	v := d.Observe(scaled)
	if v.State != Stable || v.PhaseChange {
		t.Errorf("scaled histogram broke stability: %+v", v)
	}
	if v.R < 0.99 {
		t.Errorf("scaled histogram r = %v; want ≈ 1 (paper: 0.998)", v.R)
	}
}

// TestBottleneckShiftTriggersPhaseChange is Figure 8's other half: moving
// the bottleneck by one instruction collapses r and triggers a change.
func TestBottleneckShiftTriggersPhaseChange(t *testing.T) {
	d := newDefault(t)
	for i := 0; i < 3; i++ {
		d.Observe(hist(3, 350, 10))
	}
	if d.State() != Stable {
		t.Fatal("precondition: not stable")
	}
	v := d.Observe(hist(4, 350, 10))
	if v.State != Unstable || !v.PhaseChange {
		t.Fatalf("bottleneck shift verdict = %+v; want unstable + change", v)
	}
	if v.R > 0.2 {
		t.Errorf("shifted-bottleneck r = %v; want near 0 (paper: -0.056)", v.R)
	}
	if d.PhaseChanges() != 1 {
		t.Errorf("phase changes = %d; want 1", d.PhaseChanges())
	}
}

func TestEmptyIntervalFreezesState(t *testing.T) {
	d := newDefault(t)
	h := hist(2, 200, 5)
	for i := 0; i < 3; i++ {
		d.Observe(h)
	}
	if d.State() != Stable {
		t.Fatal("precondition: not stable")
	}
	rBefore := d.LastR()
	empty := make([]int64, 10)
	v := d.Observe(empty)
	if !v.Empty || v.State != Stable || v.PhaseChange {
		t.Errorf("empty interval verdict = %+v; want frozen stable", v)
	}
	if v.R != rBefore {
		t.Errorf("empty interval r = %v; want last r %v", v.R, rBefore)
	}
	// Region resumes with the same behaviour: still stable.
	v = d.Observe(h)
	if v.State != Stable {
		t.Errorf("state after resume = %v; want stable", v.State)
	}
}

func TestEmptyFirstIntervalsDoNotEstablishReference(t *testing.T) {
	d := newDefault(t)
	empty := make([]int64, 10)
	for i := 0; i < 5; i++ {
		v := d.Observe(empty)
		if v.State != Unstable || v.RefUpdated {
			t.Fatalf("empty-start interval %d verdict = %+v", i, v)
		}
	}
	if d.Reference() != nil {
		t.Error("reference established from empty intervals")
	}
}

func TestAntiCorrelationIsPhaseChange(t *testing.T) {
	d := newDefault(t)
	up := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i := 0; i < 3; i++ {
		d.Observe(up)
	}
	if d.State() != Stable {
		t.Fatal("precondition: not stable")
	}
	down := []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	v := d.Observe(down)
	if v.State != Unstable {
		t.Errorf("anti-correlated interval state = %v; want unstable", v.State)
	}
	if v.R > -0.9 {
		t.Errorf("anti-correlated r = %v; want ≈ -1", v.R)
	}
}

func TestLessUnstableFallsBack(t *testing.T) {
	d := newDefault(t)
	d.Observe(hist(3, 350, 10)) // reference
	v := d.Observe(hist(3, 350, 10))
	if v.State != LessUnstable {
		t.Fatal("precondition: not less-unstable")
	}
	v = d.Observe(hist(7, 350, 10)) // different behaviour
	if v.State != Unstable {
		t.Errorf("state = %v; want unstable", v.State)
	}
	if v.PhaseChange {
		t.Error("less-unstable → unstable is not a stable-boundary crossing")
	}
}

func TestObservePanicsOnSizeMismatch(t *testing.T) {
	d := newDefault(t)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch should panic")
		}
	}()
	d.Observe(make([]int64, 5))
}

func TestStableFractionAndIntervals(t *testing.T) {
	d := newDefault(t)
	h := hist(1, 100, 2)
	for i := 0; i < 10; i++ {
		d.Observe(h)
	}
	if d.Intervals() != 10 {
		t.Fatalf("intervals = %d", d.Intervals())
	}
	// Stable from interval 3 onward: 8 of 10.
	if got := d.StableFraction(); got != 0.8 {
		t.Errorf("stable fraction = %v; want 0.8", got)
	}
}

func TestReset(t *testing.T) {
	d := newDefault(t)
	h := hist(1, 100, 2)
	for i := 0; i < 5; i++ {
		d.Observe(h)
	}
	d.Observe(hist(6, 100, 2))
	d.Reset()
	if d.State() != Unstable || d.PhaseChanges() != 0 || d.Intervals() != 0 || d.Reference() != nil {
		t.Error("Reset did not clear detector")
	}
}

func TestManhattanMetric(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metric = MetricManhattan
	d := MustNew(10, cfg)
	h := hist(3, 350, 10)
	for i := 0; i < 3; i++ {
		d.Observe(h)
	}
	if d.State() != Stable {
		t.Fatalf("manhattan metric did not stabilize (state %v)", d.State())
	}
	// Scaled counts: normalized L1 distance is 0, still stable.
	scaled := make([]int64, 10)
	for i, v := range h {
		scaled[i] = v * 4
	}
	if v := d.Observe(scaled); v.State != Stable {
		t.Errorf("manhattan broke on scaling: %+v", v)
	}
	// Bottleneck shift: mass moves, distance large, phase change.
	if v := d.Observe(hist(7, 350, 10)); v.State != Unstable {
		t.Errorf("manhattan missed bottleneck shift: %+v", v)
	}
}

func TestTopKMetric(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metric = MetricTopK
	cfg.TopK = 2
	d := MustNew(10, cfg)
	h := hist(3, 350, 10)
	h[5] = 200 // two hot instructions
	for i := 0; i < 3; i++ {
		d.Observe(h)
	}
	if d.State() != Stable {
		t.Fatalf("topk metric did not stabilize (state %v)", d.State())
	}
	moved := hist(7, 350, 10)
	moved[8] = 200
	if v := d.Observe(moved); v.State != Unstable {
		t.Errorf("topk missed hot-set move: %+v", v)
	}
}

func TestSizeScaledThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleRTBySize = true
	if got := cfg.EffectiveRT(100); got != cfg.RT {
		t.Errorf("small region threshold = %v; want %v", got, cfg.RT)
	}
	big := cfg.EffectiveRT(4096)
	if big >= cfg.RT {
		t.Errorf("large region threshold = %v; want < %v", big, cfg.RT)
	}
	if big < cfg.MinRT {
		t.Errorf("threshold %v fell below floor %v", big, cfg.MinRT)
	}
	// Monotone in region size.
	if cfg.EffectiveRT(1<<20) > big {
		t.Error("threshold not monotone in region size")
	}
	d := MustNew(4096, cfg)
	if d.RT() != big {
		t.Errorf("detector RT = %v; want %v", d.RT(), big)
	}
}

// TestAmmpAnomalyScenario reproduces the Section 3.2.2 aberration: a very
// large region whose r hovers just below 0.8 thrashes with the paper
// threshold but stabilizes with the size-scaled one.
func TestAmmpAnomalyScenario(t *testing.T) {
	mkHists := func() [][]int64 {
		rng := rand.New(rand.NewPCG(5, 5))
		base := make([]int64, 2000)
		for i := range base {
			base[i] = int64(rng.IntN(20))
		}
		hists := make([][]int64, 12)
		for h := range hists {
			cur := make([]int64, len(base))
			for i, v := range base {
				// Same coarse behaviour + heavy per-interval noise on a
				// huge region → r lands below 0.8 but above ~0.6.
				cur[i] = v + int64(rng.IntN(16))
			}
			hists[h] = cur
		}
		return hists
	}

	plain := MustNew(2000, DefaultConfig())
	scaledCfg := DefaultConfig()
	scaledCfg.ScaleRTBySize = true
	scaled := MustNew(2000, scaledCfg)

	var rSeen float64
	for _, h := range mkHists() {
		v := plain.Observe(h)
		scaled.Observe(h)
		rSeen = v.R
	}
	if !(rSeen > 0.5 && rSeen < 0.8) {
		t.Fatalf("scenario r = %v; want just below 0.8 to model ammp", rSeen)
	}
	if plain.State() == Stable {
		t.Error("plain threshold should not stabilize the ammp scenario")
	}
	if scaled.State() != Stable {
		t.Errorf("size-scaled threshold should stabilize the ammp scenario (rt=%v, state=%v)",
			scaled.RT(), scaled.State())
	}
}

// Property: phase-change accounting matches verdict stream, and the state
// machine can never jump from Unstable to Stable in one interval.
func TestStateMachineProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		d := MustNew(10, DefaultConfig())
		counted := 0
		prev := Unstable
		for i := 0; i < 200; i++ {
			var h []int64
			switch rng.IntN(4) {
			case 0:
				h = make([]int64, 10) // empty interval
			case 1:
				h = hist(3, 350, 10)
			case 2:
				h = hist(rng.IntN(10), 350, 10)
			default:
				h = hist(3, int64(100+rng.IntN(500)), int64(1+rng.IntN(20)))
			}
			v := d.Observe(h)
			if v.Prev != prev {
				return false
			}
			if prev == Unstable && v.State == Stable {
				return false // must pass through LessUnstable
			}
			if v.Prev == Stable && v.State == Unstable {
				counted++
			}
			prev = v.State
		}
		return counted == d.PhaseChanges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if Unstable.String() != "unstable" || LessUnstable.String() != "less-unstable" || Stable.String() != "stable" {
		t.Error("state names wrong")
	}
	if MetricPearson.String() != "pearson" || MetricManhattan.String() != "manhattan" || MetricTopK.String() != "topk" {
		t.Error("metric names wrong")
	}
	if State(9).String() == "" || Metric(9).String() == "" {
		t.Error("unknown enum values should render")
	}
}

// TestObserveAllocs gates the hot-path contract for every metric: after
// construction, Observe performs no allocations — in the frozen-reference
// steady state and across reference re-establishment (the setRef path,
// which refreshes the Pearson moment cache in place).
func TestObserveAllocs(t *testing.T) {
	for _, m := range []Metric{MetricPearson, MetricManhattan, MetricTopK} {
		cfg := DefaultConfig()
		cfg.Metric = m
		d := MustNew(64, cfg)
		similar := make([]int64, 64)
		shifted := make([]int64, 64)
		for i := range similar {
			similar[i] = int64(i * 3 % 17)
			shifted[i] = int64((i + 7) * 5 % 23)
		}
		similar[13], shifted[40] = 400, 400
		d.Observe(similar)
		d.Observe(similar)
		if avg := testing.AllocsPerRun(100, func() { d.Observe(similar) }); avg != 0 {
			t.Errorf("%v: steady-state Observe allocates %v per run; want 0", m, avg)
		}
		flip := false
		if avg := testing.AllocsPerRun(100, func() {
			// Alternate histograms so the detector keeps falling back to
			// Unstable and re-establishing the reference.
			if flip {
				d.Observe(similar)
			} else {
				d.Observe(shifted)
			}
			flip = !flip
		}); avg != 0 {
			t.Errorf("%v: reference-churn Observe allocates %v per run; want 0", m, avg)
		}
	}
}

// TestObservePearsonMatchesUncached replays a mixed verdict stream through
// the moment-cached detector and checks every similarity value against a
// direct stats.Pearson recomputation over the detector's own reference —
// the cache must never go stale or drift a single bit.
func TestObservePearsonMatchesUncached(t *testing.T) {
	d := MustNew(10, DefaultConfig())
	rng := rand.New(rand.NewPCG(0xBEE5, 3))
	for i := 0; i < 500; i++ {
		h := make([]int64, 10)
		switch rng.IntN(4) {
		case 0: // empty interval
		case 1:
			copy(h, hist(3, 350, 10))
		case 2:
			copy(h, hist(rng.IntN(10), 350, 10))
		default:
			copy(h, hist(rng.IntN(10), int64(100+rng.IntN(500)), int64(1+rng.IntN(20))))
		}
		ref := d.Reference()
		v := d.Observe(h)
		if v.Empty || ref == nil {
			continue
		}
		want, ok := stats.Pearson(h, ref)
		if !ok {
			want = 0
		}
		if math.Float64bits(v.R) != math.Float64bits(want) {
			t.Fatalf("interval %d: cached r = %v, direct Pearson = %v", i, v.R, want)
		}
	}
}

func BenchmarkObservePearson(b *testing.B)   { benchObserve(b, MetricPearson) }
func BenchmarkObserveManhattan(b *testing.B) { benchObserve(b, MetricManhattan) }
func BenchmarkObserveTopK(b *testing.B)      { benchObserve(b, MetricTopK) }

func benchObserve(b *testing.B, m Metric) {
	cfg := DefaultConfig()
	cfg.Metric = m
	d := MustNew(64, cfg)
	h := make([]int64, 64)
	for i := range h {
		h[i] = int64(i * 3 % 17)
	}
	h[13] = 400
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(h)
	}
}
