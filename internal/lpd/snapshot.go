package lpd

import (
	"fmt"

	"regionmon/internal/snap"
)

// Detector checkpointing. A snapshot captures exactly the mutable
// observation state — the reference histogram, the Figure 12 state machine
// position, the last similarity value and the interval counters — and none
// of the configuration: Restore targets a detector constructed with the
// same Config and region size, and a resumed detector then produces a
// byte-identical verdict stream for the same subsequent inputs. The lastR
// float is stored as exact IEEE bits because empty intervals re-report it
// verbatim.

const snapshotTag = "lpd"

// AppendSnapshot encodes the detector's mutable state onto e.
func (d *Detector) AppendSnapshot(e *snap.Encoder) {
	e.Header(snapshotTag, 1)
	e.Int(d.n)
	e.Bool(d.hasRef)
	e.I64s(d.ref)
	e.Int(int(d.state))
	e.F64(d.lastR)
	e.Int(d.changes)
	e.Int(d.stable)
	e.Int(d.total)
}

// RestoreSnapshot decodes state written by AppendSnapshot into d. The
// snapshot must come from a detector of the same region size; a mismatch
// means the caller is restoring into a differently built region and is
// rejected.
func (d *Detector) RestoreSnapshot(dec *snap.Decoder) error {
	dec.Header(snapshotTag, 1)
	n := dec.Int()
	hasRef := dec.Bool()
	ref := dec.I64s()
	state := State(dec.Int())
	lastR := dec.F64()
	changes := dec.Int()
	stable := dec.Int()
	total := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != d.n {
		return fmt.Errorf("lpd: snapshot is for a %d-instruction region, detector has %d", n, d.n)
	}
	if len(ref) != d.n {
		return fmt.Errorf("lpd: snapshot reference has %d entries, want %d", len(ref), d.n)
	}
	switch state {
	case Unstable, LessUnstable, Stable:
	default:
		return fmt.Errorf("lpd: snapshot has invalid state %d", int(state))
	}
	copy(d.ref, ref)
	d.hasRef = hasRef
	if d.pref != nil && hasRef {
		// Rebuild the Pearson moment cache from the restored reference;
		// the conversion is deterministic, so the resumed detector's r
		// values stay bit-identical to the uninterrupted run's.
		d.pref.Set(d.ref)
	}
	d.state = state
	d.lastR = lastR
	d.changes = changes
	d.stable = stable
	d.total = total
	return nil
}

// Snapshot returns the detector's state as a standalone versioned byte
// snapshot.
func (d *Detector) Snapshot() []byte {
	e := snap.NewEncoder()
	d.AppendSnapshot(e)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// Restore replaces the detector's state from a Snapshot produced by a
// detector with the same configuration and region size.
func (d *Detector) Restore(data []byte) error {
	dec := snap.NewDecoder(data)
	if err := d.RestoreSnapshot(dec); err != nil {
		return err
	}
	return dec.Finish()
}
