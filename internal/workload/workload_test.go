package workload

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/sim"
)

func TestSuiteBuildsAndValidates(t *testing.T) {
	suite, err := Suite(0.01)
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	if len(suite) != len(Names()) {
		t.Fatalf("suite has %d benchmarks; want %d", len(suite), len(Names()))
	}
	for _, b := range suite {
		if b.Prog == nil || b.Sched == nil {
			t.Fatalf("%s: nil program or schedule", b.Name)
		}
		if err := b.Sched.Validate(b.Prog); err != nil {
			t.Errorf("%s: schedule invalid: %v", b.Name, err)
		}
		if len(b.HotLoops) == 0 {
			t.Errorf("%s: no hot loops", b.Name)
		}
		if b.PrefetchSave <= 0 || b.PrefetchSave > 1 {
			t.Errorf("%s: prefetch save %v outside (0,1]", b.Name, b.PrefetchSave)
		}
		if b.Description == "" {
			t.Errorf("%s: missing description", b.Name)
		}
		// Built loop spans must be discoverable by loop detection (region
		// formation depends on it).
		loops := b.Prog.AllLoops()
		if len(loops) < len(b.HotLoops) {
			t.Errorf("%s: detection found %d loops; builder made %d", b.Name, len(loops), len(b.HotLoops))
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("999.nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := ByName("181.mcf", 0); err == nil {
		t.Error("zero work scale accepted")
	}
}

func TestFig3NamesExcludesShortRunners(t *testing.T) {
	names := Fig3Names()
	if len(names) != 21 {
		t.Fatalf("Fig3Names has %d entries; want 21", len(names))
	}
	for _, n := range names {
		if n == "164.gzip" || n == "176.gcc" || n == "179.art" {
			t.Errorf("short-runner %s in Fig3 list", n)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := ByName("181.mcf", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("181.mcf", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog.NumInstrs() != b.Prog.NumInstrs() || len(a.Sched.Segments) != len(b.Sched.Segments) {
		t.Error("generation not deterministic")
	}
	for i := range a.HotLoops {
		if a.HotLoops[i] != b.HotLoops[i] {
			t.Fatalf("loop %d differs", i)
		}
	}
}

func TestBenchmarksExecute(t *testing.T) {
	// Every benchmark must run end-to-end at tiny scale and produce
	// samples attributable to its declared spans.
	for _, name := range []string{"181.mcf", "187.facerec", "254.gap", "188.ammp", "172.mgrid", "176.gcc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := ByName(name, 0.005)
			if err != nil {
				t.Fatal(err)
			}
			var inLoops, inStraight, elsewhere int
			mon, err := hpm.New(hpm.Config{Period: 2_000, BufferSize: 128, JitterFrac: 0.1}, func(ov *hpm.Overflow) {
				for _, s := range ov.Samples {
					switch {
					case spanHit(b.HotLoops, s.PC):
						inLoops++
					case straightHit(b.Straight, s.PC):
						inStraight++
					default:
						elsewhere++
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			ex, err := sim.NewExecutor(b.Prog, b.Sched, mon)
			if err != nil {
				t.Fatal(err)
			}
			res := ex.Run()
			mon.Flush()
			if res.Cycles == 0 || res.Instrs == 0 {
				t.Fatal("benchmark did not execute")
			}
			total := inLoops + inStraight + elsewhere
			if total == 0 {
				t.Fatal("no samples")
			}
			if frac := float64(elsewhere) / float64(total); frac > 0.02 {
				t.Errorf("%.1f%% of samples outside declared spans", frac*100)
			}
			if inLoops == 0 {
				t.Error("no samples in hot loops")
			}
		})
	}
}

func TestHighUCRBenchmarksSpendTimeInStraightCode(t *testing.T) {
	for _, name := range []string{"254.gap", "186.crafty"} {
		b, err := ByName(name, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		var inStraight, total int
		mon, err := hpm.New(hpm.Config{Period: 2_000, BufferSize: 128, JitterFrac: 0.1}, func(ov *hpm.Overflow) {
			for _, s := range ov.Samples {
				total++
				if straightHit(b.Straight, s.PC) {
					inStraight++
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := sim.NewExecutor(b.Prog, b.Sched, mon)
		if err != nil {
			t.Fatal(err)
		}
		ex.Run()
		if total == 0 {
			t.Fatal("no samples")
		}
		frac := float64(inStraight) / float64(total)
		if frac < 0.30 {
			t.Errorf("%s: straight-code sample share %.2f; want >= 0.30 (persistent UCR)", name, frac)
		}
	}
}

func spanHit(spans []isa.LoopSpan, pc isa.Addr) bool {
	for _, s := range spans {
		if s.Contains(pc) {
			return true
		}
	}
	return false
}

func straightHit(spans []sim.Span, pc isa.Addr) bool {
	for _, s := range spans {
		if s.Contains(pc) {
			return true
		}
	}
	return false
}
