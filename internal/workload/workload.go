// Package workload defines the synthetic SPEC CPU2000 suite this
// reproduction runs in place of native SPARC binaries. Each benchmark is a
// generated program (procedures, natural loop nests, straight-line code
// spread over a realistic address range) plus a phase schedule tuned to
// the qualitative behaviour the paper reports for that program:
//
//   - 181.mcf: long eras in which the dominant region drifts, followed by
//     a periodic tail alternating between two region sets (Figures 2, 9,
//     10); each region's internal behaviour never changes, so local phase
//     detection sees stability where the centroid swings.
//   - 187.facerec: execution "periodically switches between 2 sets of
//     regions" at a period comparable to the sampling interval (Figure 5).
//   - 254.gap / 186.crafty: large fractions of execution in code the
//     region builder cannot cover (straight-line and cross-procedure
//     code), so the UCR stays hot across formation triggers (Figures 6,
//     7); gap additionally has one stable and one flaky region
//     (Figure 11) plus a short-lived region with a moving bottleneck (the
//     120-phase-change outlier of Figure 13).
//   - 188.ammp: one huge region whose per-instruction histogram is so
//     spread out that Pearson r hovers just below the 0.8 threshold —
//     the granularity breakdown of Section 3.2.2.
//   - 176.gcc, 191.fma3d, 197.parser, 255.vortex, 256.bzip2, 301.apsi,
//     186.crafty: many monitored regions, driving the monitoring-cost and
//     interval-tree results (Figures 15, 16).
//   - the floating-point codes (swim, mgrid, applu, ...): steady single-
//     phase behaviour.
//
// All generation is deterministic per benchmark seed.
package workload

import (
	"fmt"
	"math/rand/v2"

	"regionmon/internal/isa"
	"regionmon/internal/sim"
)

// Benchmark is one synthetic SPEC CPU2000 program ready to run.
type Benchmark struct {
	// Name is the SPEC-style name, e.g. "181.mcf".
	Name string
	// Prog is the synthetic binary.
	Prog *isa.Program
	// Sched is the phase schedule.
	Sched *sim.Schedule
	// HotLoops lists the program's hot loop spans (build order).
	HotLoops []isa.LoopSpan
	// Straight lists non-loop spans that execute but can never become
	// regions (the persistent-UCR code).
	Straight []sim.Span
	// PrefetchSave is the true effectiveness of the simulated prefetching
	// optimization on this benchmark's regions (fraction of stall cycles
	// removed while a region is patched).
	PrefetchSave float64
	// Description summarizes the modelled behaviour.
	Description string
}

// arch is the behavioural archetype of a benchmark.
type arch int

const (
	archSteady arch = iota
	archDrift
	archAlternate
	archHighUCR
	archHuge
	archMany
)

// def is the declarative description a benchmark is generated from.
type def struct {
	name  string
	seed  uint64
	arch  arch
	loops int // number of hot loops
	body  int // mean loop body size in instructions
	// straightFrac is the execution share of non-loop code.
	straightFrac float64
	missRate     float64
	missPenalty  uint64
	// workG is total base-cycle work in billions at scale 1.
	workG float64
	// eraM is the drift-era length in millions of base cycles
	// (archDrift/archHighUCR/archMany).
	eraM float64
	// altM is the alternation slice in millions (archAlternate and the
	// mcf periodic tail).
	altM float64
	// flaky marks one loop whose bottleneck moves every segment.
	flaky bool
	// save is the benchmark's true prefetch effectiveness.
	save float64
	desc string
}

const million = 1_000_000

// fineSlice is the interleave granularity for well-mixed execution: far
// below any interval length, so per-interval sample mixes are steady.
const fineSlice = 200_000

// loadPatterns are the instruction mixes loop bodies cycle through.
var loadPatterns = [][]isa.Kind{
	{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU},
	{isa.KindLoad, isa.KindALU, isa.KindStore, isa.KindALU, isa.KindALU},
	{isa.KindLoad, isa.KindFP, isa.KindALU, isa.KindALU},
	{isa.KindLoad, isa.KindALU, isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU},
}

// build generates the benchmark from its definition. workScale stretches
// the run length (total base cycles); timeScale stretches the phase
// structure's time constants (era lengths, alternation slices, interleave
// granularity) and should track the ratio between the sampling periods in
// use and the paper's (45K-cycle reference). Scaling both together shrinks
// a run without changing any dynamics; scaling work alone lengthens the
// run while keeping the phase structure aligned with the paper's sampling
// periods.
func (d def) build(workScale, timeScale float64) (*Benchmark, error) {
	if workScale <= 0 || timeScale <= 0 {
		return nil, fmt.Errorf("workload: scales must be positive (work %v, time %v)", workScale, timeScale)
	}
	rng := rand.New(rand.NewPCG(d.seed, 0xC0DE))

	b := isa.NewBuilder(0x10000)

	// Dispatcher procedure: straight-line code that can never form a
	// region. Several separate blocks so UCR samples are spread out.
	var straight []sim.Span
	disp := b.Proc(d.name + ".dispatch")
	for i := 0; i < 4; i++ {
		disp.Code(96+rng.IntN(64), isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU, isa.KindALU, isa.KindALU)
		disp.NewBlock()
	}

	// Hot-loop procedures, spread across the address space so centroid
	// geometry matches large binaries. Programs whose phase behaviour
	// comes from *which* code is hot (drift, alternation, high UCR) place
	// loops in separate procedures with wide gaps, so a working-set move
	// swings the centroid the way it does in real binaries; steady and
	// many-region programs pack loops 4 per procedure.
	perProc, skipBase, skipRange := 4, 0x1000, 0x6000
	switch d.arch {
	case archAlternate:
		perProc = (d.loops + 1) / 2
		skipBase, skipRange = 0x40000, 0x20000
	case archDrift, archHighUCR, archHuge:
		perProc = 1
		skipBase, skipRange = 0x8000, 0x18000
	}
	var loops []isa.LoopSpan
	remaining := d.loops
	procIdx := 0
	for remaining > 0 {
		b.Skip(isa.Addr(skipBase + rng.IntN(skipRange)))
		p := b.Proc(fmt.Sprintf("%s.p%d", d.name, procIdx))
		procIdx++
		inProc := perProc
		if remaining < inProc {
			inProc = remaining
		}
		for i := 0; i < inProc; i++ {
			p.Code(4+rng.IntN(12), isa.KindALU)
			var body int
			if d.arch == archHuge {
				// The huge-region granularity breakdown is size-critical:
				// with 512-sample buffers, Pearson r hovers at the 0.8
				// threshold near ~400 body instructions. Pin the first
				// loop exactly at d.body so the ammp aberration is a
				// property of the model, not of a random draw; the
				// companion loop gets an ordinary size.
				body = d.body
				if len(loops) > 0 {
					body = d.body / 4
				}
			} else {
				body = d.body/2 + rng.IntN(d.body)
			}
			if body < 4 {
				body = 4
			}
			pat := loadPatterns[rng.IntN(len(loadPatterns))]
			loops = append(loops, p.Loop(body, pat, nil))
		}
		remaining -= inProc
	}

	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", d.name, err)
	}

	// Reconstruct the dispatcher's straight spans from its blocks (all
	// blocks except the trailing return block).
	dp := prog.Proc(d.name + ".dispatch")
	for _, blk := range dp.Blocks {
		if blk.Len() >= 64 {
			straight = append(straight, sim.Span{Start: blk.Start, End: blk.End()})
		}
	}

	sched, err := d.schedule(rng, loops, straight, workScale, timeScale)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", d.name, err)
	}
	if err := sched.Validate(prog); err != nil {
		return nil, fmt.Errorf("workload %s: %w", d.name, err)
	}
	return &Benchmark{
		Name:         d.name,
		Prog:         prog,
		Sched:        sched,
		HotLoops:     loops,
		Straight:     straight,
		PrefetchSave: d.save,
		Description:  d.desc,
	}, nil
}

// behavior builds the RegionBehavior for a loop. A loop's miss rate and
// bottleneck are properties of its code and data structures, fixed for the
// whole run — that per-region internal stability is exactly what local
// phase detection exploits (Figure 10: r stays near 1 for mcf's regions
// while their execution shares swing).
func (d def) behavior(span isa.LoopSpan, weight, missRate float64, hotspotIdx int) sim.RegionBehavior {
	stall := d.missPenalty * 3
	return sim.RegionBehavior{
		Start: span.Start, End: span.End,
		Weight:      weight,
		MissRate:    missRate,
		MissPenalty: d.missPenalty,
		HotspotIdx:  hotspotIdx,
		HotspotStall: func() uint64 {
			if hotspotIdx < 0 {
				return 0
			}
			return stall
		}(),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// loopHotspot picks a deterministic bottleneck instruction (a load-ish
// position) for a span; -1 for none.
func loopHotspot(rng *rand.Rand, span isa.LoopSpan) int {
	n := span.NumInstrs()
	if n < 8 {
		return -1
	}
	return rng.IntN(n - 2)
}

// straightBehaviors spreads straightFrac weight over the straight spans.
func (d def) straightBehaviors(straight []sim.Span) []sim.RegionBehavior {
	if d.straightFrac <= 0 || len(straight) == 0 {
		return nil
	}
	per := d.straightFrac / float64(len(straight))
	out := make([]sim.RegionBehavior, 0, len(straight))
	for _, s := range straight {
		out = append(out, sim.RegionBehavior{
			Start: s.Start, End: s.End,
			Weight:      per,
			MissRate:    d.missRate / 2,
			MissPenalty: d.missPenalty,
			HotspotIdx:  -1,
		})
	}
	return out
}

// dirichletish returns n positive weights summing to (1 - reserve), with a
// zipf-like skew so a few loops dominate, as in real profiles. The skew is
// assigned through a fresh random permutation, so successive calls (eras)
// promote *different* loops above the region-formation threshold — that is
// how a gcc-like program accumulates hundreds of monitored regions over a
// run even though each interval only has a handful of hot loops.
func dirichletish(rng *rand.Rand, n int, reserve float64) []float64 {
	w := make([]float64, n)
	perm := rng.Perm(n)
	var sum float64
	for i := range w {
		w[perm[i]] = (0.05 + rng.Float64()) / float64(i+1) // zipf-ish decay
		sum += w[perm[i]]
	}
	scale := (1 - reserve) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// schedule builds the archetype-specific schedule.
func (d def) schedule(rng *rand.Rand, loops []isa.LoopSpan, straight []sim.Span, workScale, timeScale float64) (*sim.Schedule, error) {
	work := uint64(d.workG * 1e9 * workScale)
	if work == 0 {
		return nil, fmt.Errorf("scaled work is zero")
	}
	// Time constants scale with timeScale so a reduced-scale run (with
	// proportionally reduced sampling periods) preserves every full-scale
	// ratio: era/interval, alternation/interval, slice/interval.
	// The slice floor keeps one scheduling round well above the sum of
	// minimum (one-iteration) visit costs even for many-loop benchmarks,
	// so weights stay honoured at reduced scale.
	slice := uint64(float64(fineSlice) * timeScale)
	if slice < 20_000 {
		slice = 20_000
	}
	eraCycles := d.eraM * million * timeScale
	altBase := uint64(d.altM * million * timeScale)
	if d.altM > 0 && altBase == 0 {
		altBase = 1
	}
	hotspots := make([]int, len(loops))
	missRates := make([]float64, len(loops))
	for i, l := range loops {
		hotspots[i] = loopHotspot(rng, l)
		missRates[i] = clamp01(d.missRate * (0.7 + 0.6*rng.Float64()))
	}

	sc := &sim.Schedule{Name: d.name, Seed: d.seed}

	switch d.arch {
	case archSteady, archHuge, archMany:
		// Mild era-level reshuffling for archMany (gcc-like programs do
		// move between compilation units); archSteady/archHuge keep one
		// segment.
		nSeg := 1
		if d.arch == archMany && d.eraM > 0 {
			nSeg = clampSegs(int(float64(work) / eraCycles))
		}
		per := work / uint64(nSeg)
		for s := 0; s < nSeg; s++ {
			weights := dirichletish(rng, len(loops), d.straightFrac)
			if d.arch == archHuge && len(loops) == 2 {
				// Deterministic split so the huge region's sample density
				// (weight × buffer / size) sits exactly in the band where
				// Pearson r hovers at the threshold.
				scale := (1 - d.straightFrac) / 0.95
				weights = []float64{0.75 * scale, 0.20 * scale}
			}
			seg := sim.Segment{
				Name:        fmt.Sprintf("era%d", s),
				BaseCycles:  per,
				SlicePeriod: slice,
				JitterFrac:  0.1,
			}
			for i, l := range loops {
				seg.Regions = append(seg.Regions, d.behavior(l, weights[i], missRates[i], hotspots[i]))
			}
			seg.Regions = append(seg.Regions, d.straightBehaviors(straight)...)
			sc.Segments = append(sc.Segments, seg)
		}

	case archDrift:
		// Eras in which dominance drifts across the loops, then a
		// periodic tail alternating between two region subsets (the mcf
		// shape). Each loop keeps its bottleneck throughout: locally
		// stable, globally drifting.
		nEras := clampSegs(int(float64(work) * 0.7 / eraCycles))
		eraWork := uint64(float64(work) * 0.7 / float64(nEras))
		for s := 0; s < nEras; s++ {
			seg := sim.Segment{
				Name:        fmt.Sprintf("era%d", s),
				BaseCycles:  eraWork,
				SlicePeriod: slice,
				JitterFrac:  0.1,
			}
			// Dominance jumps around the loop set (and hence around the
			// address space) era to era, the way mcf hops between
			// subsystems — adjacent-address focus moves would barely
			// move the centroid. The low/high interleaved permutation
			// makes every transition cross roughly half the text range.
			// Non-focus loops keep a meaningful share so their interval
			// histograms stay dense enough for local detection — in the
			// paper's mcf chart the diminished regions still gather
			// hundreds of samples per interval.
			focus := driftFocus(s, len(loops))
			for i, l := range loops {
				w := 0.14
				if i == focus {
					w = 0.70
				} else if (i+1)%len(loops) == focus {
					w = 0.25
				}
				seg.Regions = append(seg.Regions, d.behavior(l, w*(1-d.straightFrac), missRates[i], hotspots[i]))
			}
			seg.Regions = append(seg.Regions, d.straightBehaviors(straight)...)
			sc.Segments = append(sc.Segments, seg)
		}
		// Periodic tail: two subsets alternating at altM granularity.
		tailWork := work - eraWork*uint64(nEras)
		if d.altM > 0 && tailWork > 0 && len(loops) >= 2 {
			altCycles := altBase
			pairs := tailWork / (2 * altCycles)
			if pairs < 1 {
				pairs = 1
			}
			mkTail := func(name string, subset []int) sim.Segment {
				seg := sim.Segment{
					Name:        name,
					BaseCycles:  altCycles,
					SlicePeriod: slice,
					JitterFrac:  0.1,
				}
				for _, i := range subset {
					seg.Regions = append(seg.Regions,
						d.behavior(loops[i], (1-d.straightFrac)/float64(len(subset)), missRates[i], hotspots[i]))
				}
				seg.Regions = append(seg.Regions, d.straightBehaviors(straight)...)
				return seg
			}
			half := len(loops) / 2
			setA := make([]int, 0, half)
			setB := make([]int, 0, len(loops)-half)
			for i := range loops {
				if i < half {
					setA = append(setA, i)
				} else {
					setB = append(setB, i)
				}
			}
			tail := &sim.Schedule{}
			tail.Segments = append(tail.Segments, mkTail("tailA", setA), mkTail("tailB", setB))
			for p := uint64(0); p < pairs; p++ {
				sc.Segments = append(sc.Segments, tail.Segments...)
			}
		}

	case archAlternate:
		// Two disjoint region sets alternating at altM granularity — the
		// facerec shape.
		if len(loops) < 2 {
			return nil, fmt.Errorf("alternate archetype needs >= 2 loops")
		}
		altCycles := altBase
		// Incommensurate second slice defeats accidental alignment with
		// the sampling interval.
		altB := altCycles + altCycles/4
		pairs := work / (altCycles + altB)
		if pairs < 1 {
			pairs = 1
		}
		half := len(loops) / 2
		mk := func(name string, lo, hi int, cycles uint64) sim.Segment {
			seg := sim.Segment{
				Name:        name,
				BaseCycles:  cycles,
				SlicePeriod: slice,
				JitterFrac:  0.1,
			}
			n := hi - lo
			for i := lo; i < hi; i++ {
				seg.Regions = append(seg.Regions,
					d.behavior(loops[i], (1-d.straightFrac)/float64(n), missRates[i], hotspots[i]))
			}
			seg.Regions = append(seg.Regions, d.straightBehaviors(straight)...)
			return seg
		}
		sc.Segments = append(sc.Segments, mk("setA", 0, half, altCycles), mk("setB", half, len(loops), altB))
		sc.Repeat = int(pairs)

	case archHighUCR:
		// Heavy straight-line execution plus a handful of loops; one
		// flaky loop's bottleneck moves every era (the gap outlier).
		nEras := clampSegs(int(float64(work) / eraCycles))
		per := work / uint64(nEras)
		for s := 0; s < nEras; s++ {
			seg := sim.Segment{
				Name:        fmt.Sprintf("era%d", s),
				BaseCycles:  per,
				SlicePeriod: slice,
				JitterFrac:  0.15,
			}
			weights := dirichletish(rng, len(loops), d.straightFrac)
			for i, l := range loops {
				hs := hotspots[i]
				if d.flaky && i == len(loops)-1 {
					// The flaky short-lived region: its bottleneck moves
					// every era (a real local phase change each time) and
					// it all but disappears in every third era. Its
					// present-era weight is pinned high enough that the
					// interval histograms are dense — the paper's outlier
					// region really is detected changing, not just noisy.
					hs = (s * 5) % maxInt(l.NumInstrs()-2, 1)
					if s%3 == 2 {
						weights[i] = 0.001 // nearly absent this era
					} else {
						weights[i] = 0.08
					}
				}
				seg.Regions = append(seg.Regions, d.behavior(l, weights[i]+0.001, missRates[i], hs))
			}
			seg.Regions = append(seg.Regions, d.straightBehaviors(straight)...)
			sc.Segments = append(sc.Segments, seg)
		}
	default:
		return nil, fmt.Errorf("unknown archetype %d", d.arch)
	}
	return sc, nil
}

// driftFocus returns the era's dominant-loop index, interleaving the low
// and high halves of the loop list so consecutive eras emphasize code far
// apart in the address space.
func driftFocus(era, n int) int {
	if n == 0 {
		return 0
	}
	k := era % n
	if k%2 == 0 {
		return k / 2
	}
	return n/2 + k/2
}

// clampSegs bounds a computed segment count to something sane: at least
// two (there is no "drift" with one era) and at most maxSegments (a memory
// and sanity backstop far above any tuned configuration).
func clampSegs(n int) int {
	if n < 2 {
		return 2
	}
	if n > maxSegments {
		return maxSegments
	}
	return n
}

// maxSegments bounds generated segment counts.
const maxSegments = 1024

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
