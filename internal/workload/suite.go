package workload

import (
	"fmt"
	"sort"
)

// defs is the synthetic SPEC CPU2000 suite. Parameters are tuned to the
// per-benchmark behaviour the paper reports (see the package comment);
// absolute magnitudes are simulator-scale, not UltraSPARC-scale.
var defs = map[string]def{
	"164.gzip": {
		name: "164.gzip", seed: 164, arch: archSteady,
		loops: 6, body: 40, straightFrac: 0.12,
		missRate: 0.20, missPenalty: 40, workG: 8, save: 0.20,
		desc: "integer compressor: few hot loops, steady behaviour",
	},
	"168.wupwise": {
		name: "168.wupwise", seed: 168, arch: archSteady,
		loops: 8, body: 48, straightFrac: 0.08,
		missRate: 0.15, missPenalty: 40, workG: 8, save: 0.25,
		desc: "FP solver: steady loop nest execution",
	},
	"171.swim": {
		name: "171.swim", seed: 171, arch: archSteady,
		loops: 4, body: 64, straightFrac: 0.05,
		missRate: 0.25, missPenalty: 50, workG: 8, save: 0.25,
		desc: "stencil code: four dominant loops, single phase",
	},
	"172.mgrid": {
		name: "172.mgrid", seed: 172, arch: archSteady,
		loops: 3, body: 80, straightFrac: 0.05,
		missRate: 0.30, missPenalty: 50, workG: 8, save: 0.30,
		desc: "multigrid: three dominant loops, single phase, prefetch-friendly",
	},
	"173.applu": {
		name: "173.applu", seed: 173, arch: archSteady,
		loops: 8, body: 56, straightFrac: 0.06,
		missRate: 0.20, missPenalty: 45, workG: 8, save: 0.25,
		desc: "PDE solver: steady multi-loop execution",
	},
	"175.vpr": {
		name: "175.vpr", seed: 175, arch: archDrift,
		loops: 10, body: 36, straightFrac: 0.15,
		missRate: 0.15, missPenalty: 40, workG: 9, eraM: 400, save: 0.20,
		desc: "place-and-route: dominant loop drifts between placement phases",
	},
	"176.gcc": {
		name: "176.gcc", seed: 176, arch: archMany,
		loops: 250, body: 24, straightFrac: 0.20,
		missRate: 0.10, missPenalty: 35, workG: 8, eraM: 150, save: 0.15,
		desc: "compiler: hundreds of small regions; monitoring-cost stress case",
	},
	"177.mesa": {
		name: "177.mesa", seed: 177, arch: archSteady,
		loops: 12, body: 32, straightFrac: 0.10,
		missRate: 0.10, missPenalty: 30, workG: 8, save: 0.15,
		desc: "3D renderer: steady mixed loops",
	},
	"178.galgel": {
		name: "178.galgel", seed: 178, arch: archDrift,
		loops: 10, body: 48, straightFrac: 0.05,
		missRate: 0.20, missPenalty: 45, workG: 9, eraM: 500, save: 0.25,
		desc: "fluid dynamics: solver phases with drifting dominance",
	},
	"179.art": {
		name: "179.art", seed: 179, arch: archSteady,
		loops: 4, body: 48, straightFrac: 0.05,
		missRate: 0.50, missPenalty: 80, workG: 8, save: 0.45,
		desc: "neural-net simulator: tiny working set of loops, heavy misses",
	},
	"181.mcf": {
		name: "181.mcf", seed: 181, arch: archDrift,
		loops: 6, body: 28, straightFrac: 0.08,
		missRate: 0.50, missPenalty: 80, workG: 12, eraM: 2500, altM: 50, save: 0.50,
		desc: "network simplex: era-scale region drift then a periodic tail; " +
			"locally stable regions, globally swinging centroid (Figs 2, 9, 10)",
	},
	"183.equake": {
		name: "183.equake", seed: 183, arch: archSteady,
		loops: 6, body: 40, straightFrac: 0.08,
		missRate: 0.35, missPenalty: 60, workG: 8, save: 0.30,
		desc: "earthquake simulation: steady sparse-matrix loops",
	},
	"186.crafty": {
		name: "186.crafty", seed: 186, arch: archHighUCR,
		loops: 60, body: 20, straightFrac: 0.45,
		missRate: 0.12, missPenalty: 35, workG: 9, eraM: 300, save: 0.15,
		desc: "chess engine: search code the region builder cannot cover; " +
			"UCR stays high across formation triggers (Fig 7)",
	},
	"187.facerec": {
		name: "187.facerec", seed: 187, arch: archAlternate,
		loops: 6, body: 40, straightFrac: 0.06,
		missRate: 0.30, missPenalty: 50, workG: 10, altM: 300, save: 0.35,
		desc: "face recognition: periodic switching between two region sets " +
			"at interval scale (Fig 5)",
	},
	"188.ammp": {
		name: "188.ammp", seed: 188, arch: archHuge,
		loops: 2, body: 280, straightFrac: 0.05,
		missRate: 0.30, missPenalty: 45, workG: 9, save: 0.30,
		desc: "molecular dynamics: one huge region; Pearson r hovers below " +
			"the threshold (the Sec. 3.2.2 granularity breakdown)",
	},
	"189.lucas": {
		name: "189.lucas", seed: 189, arch: archSteady,
		loops: 6, body: 52, straightFrac: 0.05,
		missRate: 0.25, missPenalty: 50, workG: 8, save: 0.25,
		desc: "primality FFT: steady loop execution",
	},
	"191.fma3d": {
		name: "191.fma3d", seed: 191, arch: archMany,
		loops: 120, body: 28, straightFrac: 0.15,
		missRate: 0.20, missPenalty: 45, workG: 10, eraM: 200, save: 0.35,
		desc: "crash simulation: many element-processing loops with era " +
			"reshuffles; a paper speedup case",
	},
	"197.parser": {
		name: "197.parser", seed: 197, arch: archMany,
		loops: 150, body: 20, straightFrac: 0.25,
		missRate: 0.12, missPenalty: 35, workG: 9, eraM: 150, save: 0.15,
		desc: "link parser: many small regions plus dictionary code in UCR",
	},
	"200.sixtrack": {
		name: "200.sixtrack", seed: 200, arch: archSteady,
		loops: 10, body: 44, straightFrac: 0.08,
		missRate: 0.15, missPenalty: 40, workG: 8, save: 0.20,
		desc: "particle tracking: steady loop nest",
	},
	"254.gap": {
		name: "254.gap", seed: 254, arch: archHighUCR,
		loops: 5, body: 32, straightFrac: 0.45,
		missRate: 0.20, missPenalty: 45, workG: 10, eraM: 60, flaky: true, save: 0.35,
		desc: "computer algebra: interpreter code in UCR, fast era churn, " +
			"one stable and one flaky region (Figs 7, 11, 13)",
	},
	"255.vortex": {
		name: "255.vortex", seed: 255, arch: archMany,
		loops: 100, body: 24, straightFrac: 0.30,
		missRate: 0.10, missPenalty: 35, workG: 9, eraM: 250, save: 0.15,
		desc: "OO database: many regions and substantial UCR",
	},
	"256.bzip2": {
		name: "256.bzip2", seed: 256, arch: archMany,
		loops: 80, body: 32, straightFrac: 0.20,
		missRate: 0.15, missPenalty: 40, workG: 9, eraM: 200, save: 0.25,
		desc: "compressor: many regions, compress/decompress reshuffles",
	},
	"300.twolf": {
		name: "300.twolf", seed: 300, arch: archSteady,
		loops: 12, body: 36, straightFrac: 0.12,
		missRate: 0.20, missPenalty: 45, workG: 8, save: 0.25,
		desc: "place-and-route: steady annealing loops",
	},
	"301.apsi": {
		name: "301.apsi", seed: 301, arch: archMany,
		loops: 90, body: 28, straightFrac: 0.15,
		missRate: 0.15, missPenalty: 40, workG: 9, eraM: 300, save: 0.20,
		desc: "meteorology: many loops; a monitoring-cost case",
	},
}

// Names returns the suite's benchmark names in ascending SPEC order.
func Names() []string {
	out := make([]string, 0, len(defs))
	for n := range defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fig3Names returns the 21 benchmarks of Figures 3 and 4 (the paper
// excludes the short-running 164.gzip and 176.gcc there, and 179.art).
func Fig3Names() []string {
	var out []string
	for _, n := range Names() {
		switch n {
		case "164.gzip", "176.gcc", "179.art":
			continue
		}
		out = append(out, n)
	}
	return out
}

// ByName builds one benchmark at the given scale: both run length and the
// phase structure's time constants shrink together, so the dynamics at
// proportionally reduced sampling periods are identical to full scale
// (1 = ~10G base cycles at the paper's periods).
func ByName(name string, scale float64) (*Benchmark, error) {
	return ByNameScales(name, scale, scale)
}

// ByNameScales builds one benchmark with independent run-length
// (workScale) and phase-structure (timeScale) scaling; see def.build.
func ByNameScales(name string, workScale, timeScale float64) (*Benchmark, error) {
	d, ok := defs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return d.build(workScale, timeScale)
}

// Suite builds every benchmark at the given work scale, in SPEC order.
func Suite(workScale float64) ([]*Benchmark, error) {
	names := Names()
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		b, err := ByName(n, workScale)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
