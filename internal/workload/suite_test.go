package workload

import (
	"testing"

	"regionmon/internal/isa"
)

// TestArchetypeStructure pins the structural properties each archetype's
// figures depend on.
func TestArchetypeStructure(t *testing.T) {
	t.Run("mcf drift with periodic tail", func(t *testing.T) {
		b, err := ByName("181.mcf", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		// Eras followed by alternating tail segments.
		var eras, tails int
		for _, s := range b.Sched.Segments {
			switch {
			case len(s.Name) >= 3 && s.Name[:3] == "era":
				eras++
			case len(s.Name) >= 4 && s.Name[:4] == "tail":
				tails++
			}
		}
		if eras < 2 {
			t.Errorf("mcf eras = %d; want >= 2", eras)
		}
		if tails < 2 || tails%2 != 0 {
			t.Errorf("mcf tail segments = %d; want even and >= 2", tails)
		}
		// One loop per procedure for centroid geometry.
		for _, p := range b.Prog.Procs {
			if len(p.Loops()) > 1 {
				t.Errorf("mcf proc %s has %d loops; want <= 1", p.Name, len(p.Loops()))
			}
		}
	})

	t.Run("facerec disjoint sets", func(t *testing.T) {
		b, err := ByName("187.facerec", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Sched.Segments) != 2 || b.Sched.Repeat < 2 {
			t.Fatalf("facerec structure: %d segments, repeat %d", len(b.Sched.Segments), b.Sched.Repeat)
		}
		// The two segments' loop regions must be disjoint sets.
		inA := map[isa.Addr]bool{}
		for _, r := range b.Sched.Segments[0].Regions {
			inA[r.Start] = true
		}
		for _, r := range b.Sched.Segments[1].Regions {
			if inA[r.Start] && !straightStart(b, r.Start) {
				t.Errorf("region %v appears in both alternation sets", r.Start)
			}
		}
	})

	t.Run("gap flaky bottleneck moves", func(t *testing.T) {
		b, err := ByName("254.gap", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		flaky := b.HotLoops[len(b.HotLoops)-1]
		hotspots := map[int]bool{}
		for _, s := range b.Sched.Segments {
			for _, r := range s.Regions {
				if r.Start == flaky.Start && r.Weight > 0.01 {
					hotspots[r.HotspotIdx] = true
				}
			}
		}
		if len(hotspots) < 3 {
			t.Errorf("flaky region hotspot positions = %d; want several", len(hotspots))
		}
	})

	t.Run("stable loops keep behaviour across segments", func(t *testing.T) {
		b, err := ByName("181.mcf", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		// Each loop's miss rate and hotspot must be identical in every
		// segment (locally stable regions — the Figure 10 property).
		type behav struct {
			miss float64
			hot  int
		}
		seen := map[isa.Addr]behav{}
		for _, s := range b.Sched.Segments {
			for _, r := range s.Regions {
				if straightStart(b, r.Start) {
					continue
				}
				want, ok := seen[r.Start]
				if !ok {
					seen[r.Start] = behav{r.MissRate, r.HotspotIdx}
					continue
				}
				if want.miss != r.MissRate || want.hot != r.HotspotIdx {
					t.Fatalf("loop %v behaviour varies across segments: %+v vs {%v %d}",
						r.Start, want, r.MissRate, r.HotspotIdx)
				}
			}
		}
	})

	t.Run("ammp huge region pinned", func(t *testing.T) {
		b, err := ByName("188.ammp", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.HotLoops) != 2 {
			t.Fatalf("ammp loops = %d; want 2", len(b.HotLoops))
		}
		huge, small := b.HotLoops[0], b.HotLoops[1]
		if huge.NumInstrs() < 250 {
			t.Errorf("ammp huge region = %d instrs; want the calibrated ~280+", huge.NumInstrs())
		}
		if small.NumInstrs() >= huge.NumInstrs() {
			t.Errorf("companion (%d) not smaller than huge (%d)", small.NumInstrs(), huge.NumInstrs())
		}
	})
}

// straightStart reports whether addr starts one of the benchmark's
// straight spans.
func straightStart(b *Benchmark, addr isa.Addr) bool {
	for _, s := range b.Straight {
		if s.Start == addr {
			return true
		}
	}
	return false
}

// TestScalesIndependence: work scale changes run length without touching
// the program or per-loop behaviour; time scale changes segment lengths.
func TestScalesIndependence(t *testing.T) {
	short, err := ByNameScales("172.mgrid", 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	long, err := ByNameScales("172.mgrid", 0.04, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if short.Prog.NumInstrs() != long.Prog.NumInstrs() {
		t.Error("work scale changed the program")
	}
	if got, want := long.Sched.TotalBaseCycles(), 4*short.Sched.TotalBaseCycles(); got != want {
		t.Errorf("4x work scale: total %d; want %d", got, want)
	}
	if _, err := ByNameScales("172.mgrid", 0.01, 0); err == nil {
		t.Error("zero time scale accepted")
	}
}
