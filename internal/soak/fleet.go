package soak

import (
	"fmt"

	"regionmon/internal/hpm"
	"regionmon/internal/ingest"
	"regionmon/internal/pipeline"
	"regionmon/internal/vhash"
)

// FleetConfig tunes a multi-stream soak: Streams independent copies of
// the full detector stack behind an ingest.Fleet, each fed its own
// deterministic workload (seeded per stream), with optional whole-fleet
// kill/restore cycles. The zero value of every optional field selects a
// default.
type FleetConfig struct {
	// Streams is the number of independent monitored streams. Required.
	Streams int
	// Intervals is the number of sampling intervals per stream. Required.
	Intervals int
	// Shards is the fleet worker count (default 4).
	Shards int
	// QueueCap is the per-shard ring capacity (default 64).
	QueueCap int
	// SamplesPerInterval is the synthetic overflow buffer size
	// (default 96).
	SamplesPerInterval int
	// Batch is the number of intervals per stream pushed in one
	// PushBatchWait call (default 16; 1 drives the per-item PushWait
	// path). Purely a transport knob: digests are independent of it,
	// and TestFleetSoakBatchInvariance pins that.
	Batch int
	// Seed seeds stream 0's workload; stream s uses a golden-ratio
	// offset of it, so every stream's workload differs (default 1).
	Seed uint64
	// RestoreEvery, when positive, kills the whole fleet every that many
	// interval rounds: Snapshot it, Close it, build a fresh fleet,
	// Restore into it and continue. 0 disables (reference mode).
	RestoreEvery int
	// Warmup is the number of interval rounds before the heap baseline
	// is taken (default Intervals/10).
	Warmup int
	// MaxHeapGrowth is the allowed post-warmup growth of post-GC
	// HeapAlloc in bytes (default 8 MiB). Kill/restore cycles rebuild
	// the entire fleet, so steady growth here would mean a stack or
	// ring leak scaled by Streams.
	MaxHeapGrowth uint64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.SamplesPerInterval == 0 {
		c.SamplesPerInterval = 96
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = c.Intervals / 10
	}
	if c.MaxHeapGrowth == 0 {
		c.MaxHeapGrowth = 8 << 20
	}
	return c
}

// FleetResult summarizes a completed multi-stream soak.
type FleetResult struct {
	// Streams and Intervals echo the run shape.
	Streams, Intervals int
	// Digests holds each stream's verdict-stream digest.
	Digests []uint64
	// Digest folds the per-stream digests into one fleet digest.
	Digest uint64
	// Restores counts whole-fleet kill/restore cycles performed.
	Restores int
	// SnapshotBytes is the size of the last fleet snapshot (0 when
	// RestoreEvery is 0).
	SnapshotBytes int
	// HeapBaseline and HeapFinal are post-GC HeapAlloc at warmup and at
	// the end of the run.
	HeapBaseline, HeapFinal uint64
}

// RunFleet drives one multi-stream soak according to cfg. Determinism
// contract: the result's Digests depend only on Streams, Intervals,
// SamplesPerInterval and Seed — not on Shards, QueueCap or RestoreEvery —
// so runs differing only in topology or checkpoint cadence must agree
// exactly. cmd/soak and the tests compare runs on that basis.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	if cfg.Streams <= 0 {
		return FleetResult{}, fmt.Errorf("soak: Streams must be positive, got %d", cfg.Streams)
	}
	if cfg.Intervals <= 0 {
		return FleetResult{}, fmt.Errorf("soak: Intervals must be positive, got %d", cfg.Intervals)
	}
	cfg = cfg.withDefaults()

	// The generators live owner-side and survive kill/restore cycles —
	// exactly like the external workload a real fleet would be fed.
	_, loops, err := BuildProgram()
	if err != nil {
		return FleetResult{}, err
	}
	gens := make([]*Workload, cfg.Streams)
	for s := range gens {
		gens[s] = NewWorkload(cfg.Seed+uint64(s)*0x9e3779b97f4a7c15, loops, cfg.SamplesPerInterval)
	}

	// Each stream's stack is built inside its shard worker; BuildProgram
	// is deterministic, so every worker reconstructs the same program
	// without sharing one across goroutines.
	icfg := ingest.Config{
		Shards:     cfg.Shards,
		QueueCap:   cfg.QueueCap,
		MaxSamples: cfg.SamplesPerInterval,
		Build: func(stream int) (*pipeline.Pipeline, error) {
			prog, _, err := BuildProgram()
			if err != nil {
				return nil, err
			}
			return NewStack(prog)
		},
	}
	f, err := ingest.NewFleet(cfg.Streams, icfg)
	if err != nil {
		return FleetResult{}, err
	}
	// Close whichever fleet is current when we leave (f is reassigned on
	// every kill/restore cycle); Close is idempotent, so the success path
	// closing explicitly is fine.
	defer func() { f.Close() }()

	// Batched driving: each stream's next cfg.Batch intervals are generated
	// into preallocated caller-owned overflows and pushed with one
	// PushBatchWait call. Blocks are cut at kill/restore boundaries and at
	// the warmup interval, so those events fire at exactly the same
	// interval indices as a per-item (Batch=1) run.
	bufs := make([][]*hpm.Overflow, cfg.Streams)
	for s := range bufs {
		bufs[s] = NewOverflowBatch(cfg.Batch, cfg.SamplesPerInterval)
	}

	var res FleetResult
	for base := 0; base < cfg.Intervals; {
		if cfg.RestoreEvery > 0 && base > 0 && base%cfg.RestoreEvery == 0 {
			snap, err := f.Snapshot()
			if err != nil {
				return res, fmt.Errorf("soak: fleet snapshot at round %d: %w", base, err)
			}
			if err := f.Close(); err != nil {
				return res, fmt.Errorf("soak: fleet close at round %d: %w", base, err)
			}
			fresh, err := ingest.NewFleet(cfg.Streams, icfg)
			if err != nil {
				return res, err
			}
			if err := fresh.Restore(snap); err != nil {
				return res, fmt.Errorf("soak: fleet restore at round %d: %w", base, err)
			}
			f = fresh // the old fleet is dead; resume on the restored one
			res.Restores++
			res.SnapshotBytes = len(snap)
		}
		n := cfg.Batch
		if base+n > cfg.Intervals {
			n = cfg.Intervals - base
		}
		if cfg.RestoreEvery > 0 {
			if next := cfg.RestoreEvery - base%cfg.RestoreEvery; n > next {
				n = next
			}
		}
		if base <= cfg.Warmup && cfg.Warmup < base+n {
			n = cfg.Warmup - base + 1
		}
		for s := range gens {
			bb := bufs[s][:n]
			for k := range bb {
				gens[s].IntervalInto(base+k, bb[k])
			}
			f.PushBatchWait(s, bb)
		}
		base += n
		if base == cfg.Warmup+1 {
			f.Drain()
			res.HeapBaseline = heapAlloc()
		}
	}
	f.Drain()

	res.Streams = cfg.Streams
	res.Intervals = cfg.Intervals
	res.Digests = make([]uint64, cfg.Streams)
	fold := vhash.New()
	for s := range res.Digests {
		info, err := f.StreamInfo(s)
		if err != nil {
			return res, fmt.Errorf("soak: stream %d: %w", s, err)
		}
		if info.Intervals != cfg.Intervals {
			return res, fmt.Errorf("soak: stream %d processed %d of %d intervals (PushWait cannot drop)",
				s, info.Intervals, cfg.Intervals)
		}
		res.Digests[s] = info.Digest
		fold.U64(info.Digest)
	}
	res.Digest = fold.Sum()
	if err := f.Close(); err != nil {
		return res, err
	}

	res.HeapFinal = heapAlloc()
	if res.HeapFinal > res.HeapBaseline+cfg.MaxHeapGrowth {
		return res, fmt.Errorf("soak: fleet heap grew %d bytes over %d rounds (baseline %d, final %d, budget %d)",
			res.HeapFinal-res.HeapBaseline, cfg.Intervals-cfg.Warmup, res.HeapBaseline, res.HeapFinal, cfg.MaxHeapGrowth)
	}
	return res, nil
}
