// Package soak drives the full detector stack — pipeline, centroid GPD,
// region monitoring, BBV, working set and a CPI tracker — for millions
// of synthetic sampling intervals to prove the long-run hardening
// properties: bounded detector state (the heap is steady after warmup)
// and checkpoint fidelity (killing the stack mid-run and resuming a
// fresh one from a Snapshot yields a byte-identical subsequent verdict
// stream).
//
// The workload generator is fully deterministic (splitmix64 seeded by
// Config.Seed), so two runs over the same configuration produce the same
// verdict digest; a kill/restore run matching an uninterrupted reference
// run is therefore an exact equality proof, not a statistical one.
package soak

import (
	"fmt"
	"math"
	"runtime"

	"regionmon/internal/altdetect"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
)

// Config tunes one soak run. The zero value of every optional field
// selects a sensible default (see withDefaults).
type Config struct {
	// Intervals is the number of sampling intervals to drive. Required.
	Intervals int
	// SamplesPerInterval is the synthetic overflow buffer size
	// (default 96).
	SamplesPerInterval int
	// Seed seeds the deterministic workload generator (default 1).
	Seed uint64
	// RestoreEvery, when positive, kills the live stack every that many
	// intervals: Snapshot it, build a fresh identically configured
	// stack, Restore into it and continue on the fresh one. 0 disables
	// the kill/restore exercise (reference mode).
	RestoreEvery int
	// Warmup is the number of intervals before the heap baseline is
	// taken (default Intervals/10). Formation, ring fills and detector
	// warm-up allocate; steady state starts after.
	Warmup int
	// HeapCheckEvery is the interval stride between heap samples after
	// warmup (default (Intervals-Warmup)/8). Each sample forces a GC,
	// so keep it coarse.
	HeapCheckEvery int
	// MaxHeapGrowth is the allowed growth of HeapAlloc from the
	// post-warmup baseline to the end of the run, in bytes
	// (default 4 MiB). With every per-interval series bounded the
	// steady-state heap must not track run length.
	MaxHeapGrowth uint64
}

func (c Config) withDefaults() Config {
	if c.SamplesPerInterval == 0 {
		c.SamplesPerInterval = 96
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = c.Intervals / 10
	}
	if c.HeapCheckEvery == 0 {
		c.HeapCheckEvery = (c.Intervals - c.Warmup) / 8
		if c.HeapCheckEvery < 1 {
			c.HeapCheckEvery = 1
		}
	}
	if c.MaxHeapGrowth == 0 {
		c.MaxHeapGrowth = 4 << 20
	}
	return c
}

// Result summarizes a completed soak run.
type Result struct {
	// Intervals is the number of intervals driven.
	Intervals int
	// Digest is the FNV-1a digest of the full verdict stream (every
	// field of every verdict, bit-exact floats). Two runs with equal
	// digests emitted identical verdict streams.
	Digest uint64
	// Restores counts kill/restore cycles performed.
	Restores int
	// SnapshotBytes is the size of the last snapshot taken (0 when
	// RestoreEvery is 0).
	SnapshotBytes int
	// HeapBaseline and HeapFinal are post-GC HeapAlloc at warmup and at
	// the end of the run.
	HeapBaseline, HeapFinal uint64
	// HeapSamples holds the periodic post-GC HeapAlloc readings taken
	// between baseline and final.
	HeapSamples []uint64
}

// Run drives one soak according to cfg and returns the run summary. It
// returns an error if the configuration is invalid, a snapshot or
// restore fails, an unknown verdict payload appears, or the heap grew
// beyond cfg.MaxHeapGrowth from the post-warmup baseline.
func Run(cfg Config) (Result, error) {
	if cfg.Intervals <= 0 {
		return Result{}, fmt.Errorf("soak: Intervals must be positive, got %d", cfg.Intervals)
	}
	cfg = cfg.withDefaults()

	prog, loops, err := buildProgram()
	if err != nil {
		return Result{}, err
	}
	pipe, err := newStack(prog)
	if err != nil {
		return Result{}, err
	}

	dig := newDigest()
	var hashErr error
	obs := func(rep *pipeline.IntervalReport) {
		if err := hashReport(dig, rep); err != nil && hashErr == nil {
			hashErr = err
		}
	}
	pipe.AddObserver(obs)

	g := newGen(cfg.Seed, loops, cfg.SamplesPerInterval)
	var res Result
	for i := 0; i < cfg.Intervals; i++ {
		if cfg.RestoreEvery > 0 && i > 0 && i%cfg.RestoreEvery == 0 {
			snap, err := pipe.Snapshot()
			if err != nil {
				return res, fmt.Errorf("soak: snapshot at interval %d: %w", i, err)
			}
			fresh, err := newStack(prog)
			if err != nil {
				return res, err
			}
			if err := fresh.Restore(snap); err != nil {
				return res, fmt.Errorf("soak: restore at interval %d: %w", i, err)
			}
			fresh.AddObserver(obs)
			pipe = fresh // the old stack is dead; resume on the restored one
			res.Restores++
			res.SnapshotBytes = len(snap)
		}
		pipe.ProcessOverflow(g.interval(i))
		if hashErr != nil {
			return res, hashErr
		}
		if i == cfg.Warmup {
			res.HeapBaseline = heapAlloc()
		} else if i > cfg.Warmup && (i-cfg.Warmup)%cfg.HeapCheckEvery == 0 {
			res.HeapSamples = append(res.HeapSamples, heapAlloc())
		}
	}
	res.Intervals = cfg.Intervals
	res.Digest = dig.h
	res.HeapFinal = heapAlloc()
	if res.HeapFinal > res.HeapBaseline+cfg.MaxHeapGrowth {
		return res, fmt.Errorf("soak: heap grew %d bytes over %d intervals (baseline %d, final %d, budget %d)",
			res.HeapFinal-res.HeapBaseline, cfg.Intervals-cfg.Warmup, res.HeapBaseline, res.HeapFinal, cfg.MaxHeapGrowth)
	}
	return res, nil
}

// heapAlloc returns HeapAlloc after a forced collection, so readings
// compare live heap rather than GC pacing noise.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// buildProgram constructs the soak workload's program: two procedures,
// four loops of different sizes and kinds, separated by straight-line
// code so formation always has an innermost loop to latch onto.
func buildProgram() (*isa.Program, []isa.LoopSpan, error) {
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(32, isa.KindALU)
	l1 := p.Loop(20, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU}, nil)
	p.Code(12, isa.KindALU)
	l2 := p.Loop(28, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindStore, isa.KindALU}, nil)
	b.Skip(0x20000)
	q := b.Proc("aux")
	q.Code(8, isa.KindALU)
	l3 := q.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	q.Code(8, isa.KindALU)
	l4 := q.Loop(36, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindStore}, nil)
	prog, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return prog, []isa.LoopSpan{l1, l2, l3, l4}, nil
}

// newStack builds one full monitoring stack over prog: pipeline with
// GPD, region monitor (bounded UCR history — the default), BBV, working
// set and a CPI tracker. Every component uses its default configuration
// so a soak exercises exactly what users get.
func newStack(prog *isa.Program) (*pipeline.Pipeline, error) {
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rmon, err := region.NewMonitor(prog, region.DefaultConfig())
	if err != nil {
		return nil, err
	}
	bbv, err := altdetect.NewBBV(prog, 0.8)
	if err != nil {
		return nil, err
	}
	ws, err := altdetect.NewWorkingSet(prog, 0.5)
	if err != nil {
		return nil, err
	}
	tr, err := gpd.NewPerfTracker(gpd.DefaultPerfConfig())
	if err != nil {
		return nil, err
	}
	pipe := pipeline.New()
	for _, d := range []pipeline.PhaseDetector{
		pipeline.NewGPD(gdet),
		pipeline.NewRegionMonitor(rmon),
		pipeline.NewBBV(bbv),
		pipeline.NewWorkingSet(ws),
		pipeline.NewCPI(tr),
	} {
		if err := pipe.Register(d); err != nil {
			return nil, err
		}
	}
	return pipe, nil
}

// gen is the deterministic workload generator. Each interval rotates
// through phases that weight two of the four loops, with a small idle
// (PC 0) fraction and a sparse partial-buffer interval every 97th
// delivery — the shapes the hardening fixes are about.
type gen struct {
	rng     uint64
	loops   []isa.LoopSpan
	samples []hpm.Sample // reused across intervals, like a real hpm buffer
	cycle   uint64
}

func newGen(seed uint64, loops []isa.LoopSpan, buf int) *gen {
	return &gen{rng: seed, loops: loops, samples: make([]hpm.Sample, buf)}
}

// next is splitmix64.
func (g *gen) next() uint64 {
	g.rng += 0x9e3779b97f4a7c15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// phaseLen is how many intervals each phase lasts before the workload
// shifts to the next loop pair.
const phaseLen = 160

func (g *gen) interval(i int) *hpm.Overflow {
	phase := (i / phaseLen) % len(g.loops)
	hot := g.loops[phase]
	warm := g.loops[(phase+1)%len(g.loops)]

	n := len(g.samples)
	if i%97 == 96 {
		// Sparse partial-buffer flush: a handful of samples, the shape
		// that exercises the region monitor's sparse-interval guard.
		n = 3 + int(g.next()%5)
	}
	for s := 0; s < n; s++ {
		g.cycle += 80 + g.next()%40
		var pc isa.Addr
		switch r := g.next() % 100; {
		case r < 5:
			pc = 0 // idle sample: off-CPU time
		case r < 70:
			pc = loopPC(hot, g.next())
		case r < 90:
			pc = loopPC(warm, g.next())
		default:
			// Straggler in straight-line code: steady unmonitored noise.
			pc = g.loops[g.next()%uint64(len(g.loops))].End + isa.InstrBytes
		}
		g.samples[s] = hpm.Sample{
			PC:       pc,
			Cycle:    g.cycle,
			Instrs:   8 + g.next()%8,
			DCMisses: g.next() % 3,
		}
	}
	return &hpm.Overflow{Seq: i, Cycle: g.cycle, Samples: g.samples[:n]}
}

// loopPC returns a pseudo-random instruction address inside span.
func loopPC(span isa.LoopSpan, r uint64) isa.Addr {
	return span.Start + isa.Addr(r%uint64(span.NumInstrs()))*isa.InstrBytes
}

// digest is an incremental FNV-1a over the verdict stream. Hashing in
// the observer (rather than retaining verdicts) keeps the harness itself
// O(1) in memory, so it cannot mask a detector leak.
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: 0xcbf29ce484222325} }

func (d *digest) byte(b byte) { d.h = (d.h ^ uint64(b)) * 0x100000001b3 }
func (d *digest) bool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}
func (d *digest) f64(v float64) { d.u64(math.Float64bits(v)) }
func (d *digest) int(v int)     { d.u64(uint64(int64(v))) }
func (d *digest) u64(v uint64) {
	for i := 0; i < 64; i += 8 {
		d.byte(byte(v >> i))
	}
}
func (d *digest) str(s string) {
	d.int(len(s))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

// hashReport folds every field of every verdict — including the typed
// payloads, floats bit-exact — into the digest. An unknown payload type
// is an error: a soak that silently skipped a detector's output would
// prove nothing about it.
func hashReport(d *digest, rep *pipeline.IntervalReport) error {
	d.int(rep.Seq)
	d.u64(rep.Cycle)
	d.int(len(rep.Verdicts))
	for i := range rep.Verdicts {
		v := &rep.Verdicts[i]
		d.str(v.Detector)
		d.bool(v.Stable)
		d.bool(v.PhaseChange)
		switch p := v.Payload.(type) {
		case *gpd.Verdict:
			d.int(int(p.State))
			d.int(int(p.Prev))
			d.bool(p.PhaseChange)
			d.bool(p.Drastic)
			d.f64(p.Centroid)
			d.f64(p.Delta)
			d.f64(p.BandLow)
			d.f64(p.BandHigh)
		case *region.Report:
			hashRegionReport(d, p)
		case *altdetect.Verdict:
			d.f64(p.Similarity)
			d.bool(p.Changed)
			d.int(p.Blocks)
		case *gpd.PerfVerdict:
			d.f64(p.Value)
			d.f64(p.Mean)
			d.f64(p.SD)
			d.f64(p.Delta)
			d.bool(p.Changed)
		default:
			return fmt.Errorf("soak: unknown verdict payload %T from detector %q", v.Payload, v.Detector)
		}
	}
	return nil
}

func hashRegionReport(d *digest, r *region.Report) {
	d.int(r.Seq)
	d.int(r.TotalSamples)
	d.int(r.MonitoredSamples)
	d.int(r.UCRSamples)
	d.int(r.IdleSamples)
	d.f64(r.UCRFraction)
	d.bool(r.FormationTriggered)
	d.int(len(r.NewRegions))
	for _, reg := range r.NewRegions {
		d.int(reg.ID)
		d.u64(uint64(reg.Start))
		d.u64(uint64(reg.End))
	}
	d.int(len(r.Pruned))
	for _, reg := range r.Pruned {
		d.int(reg.ID)
	}
	d.int(len(r.Verdicts))
	for i := range r.Verdicts {
		rv := &r.Verdicts[i]
		d.int(rv.Region.ID)
		d.int(int(rv.Verdict.State))
		d.int(int(rv.Verdict.Prev))
		d.f64(rv.Verdict.R)
		d.bool(rv.Verdict.PhaseChange)
		d.bool(rv.Verdict.Empty)
		d.bool(rv.Verdict.RefUpdated)
		d.int(rv.Samples)
	}
}
