// Package soak drives the full detector stack — pipeline, centroid GPD,
// region monitoring, BBV, working set and a CPI tracker — for millions
// of synthetic sampling intervals to prove the long-run hardening
// properties: bounded detector state (the heap is steady after warmup)
// and checkpoint fidelity (killing the stack mid-run and resuming a
// fresh one from a Snapshot yields a byte-identical subsequent verdict
// stream).
//
// The workload generator is fully deterministic (splitmix64 seeded by
// Config.Seed), so two runs over the same configuration produce the same
// verdict digest; a kill/restore run matching an uninterrupted reference
// run is therefore an exact equality proof, not a statistical one.
package soak

import (
	"fmt"
	"runtime"

	"regionmon/internal/altdetect"
	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
	"regionmon/internal/vhash"
)

// Config tunes one soak run. The zero value of every optional field
// selects a sensible default (see withDefaults).
type Config struct {
	// Intervals is the number of sampling intervals to drive. Required.
	Intervals int
	// SamplesPerInterval is the synthetic overflow buffer size
	// (default 96).
	SamplesPerInterval int
	// Seed seeds the deterministic workload generator (default 1).
	Seed uint64
	// RestoreEvery, when positive, kills the live stack every that many
	// intervals: Snapshot it, build a fresh identically configured
	// stack, Restore into it and continue on the fresh one. 0 disables
	// the kill/restore exercise (reference mode).
	RestoreEvery int
	// Warmup is the number of intervals before the heap baseline is
	// taken (default Intervals/10). Formation, ring fills and detector
	// warm-up allocate; steady state starts after.
	Warmup int
	// HeapCheckEvery is the interval stride between heap samples after
	// warmup (default (Intervals-Warmup)/8). Each sample forces a GC,
	// so keep it coarse.
	HeapCheckEvery int
	// MaxHeapGrowth is the allowed growth of HeapAlloc from the
	// post-warmup baseline to the end of the run, in bytes
	// (default 4 MiB). With every per-interval series bounded the
	// steady-state heap must not track run length.
	MaxHeapGrowth uint64
}

func (c Config) withDefaults() Config {
	if c.SamplesPerInterval == 0 {
		c.SamplesPerInterval = 96
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = c.Intervals / 10
	}
	if c.HeapCheckEvery == 0 {
		c.HeapCheckEvery = (c.Intervals - c.Warmup) / 8
		if c.HeapCheckEvery < 1 {
			c.HeapCheckEvery = 1
		}
	}
	if c.MaxHeapGrowth == 0 {
		c.MaxHeapGrowth = 4 << 20
	}
	return c
}

// Result summarizes a completed soak run.
type Result struct {
	// Intervals is the number of intervals driven.
	Intervals int
	// Digest is the FNV-1a digest of the full verdict stream (every
	// field of every verdict, bit-exact floats). Two runs with equal
	// digests emitted identical verdict streams.
	Digest uint64
	// Restores counts kill/restore cycles performed.
	Restores int
	// SnapshotBytes is the size of the last snapshot taken (0 when
	// RestoreEvery is 0).
	SnapshotBytes int
	// HeapBaseline and HeapFinal are post-GC HeapAlloc at warmup and at
	// the end of the run.
	HeapBaseline, HeapFinal uint64
	// HeapSamples holds the periodic post-GC HeapAlloc readings taken
	// between baseline and final.
	HeapSamples []uint64
}

// Run drives one soak according to cfg and returns the run summary. It
// returns an error if the configuration is invalid, a snapshot or
// restore fails, an unknown verdict payload appears, or the heap grew
// beyond cfg.MaxHeapGrowth from the post-warmup baseline.
func Run(cfg Config) (Result, error) {
	if cfg.Intervals <= 0 {
		return Result{}, fmt.Errorf("soak: Intervals must be positive, got %d", cfg.Intervals)
	}
	cfg = cfg.withDefaults()

	prog, loops, err := BuildProgram()
	if err != nil {
		return Result{}, err
	}
	pipe, err := NewStack(prog)
	if err != nil {
		return Result{}, err
	}

	dig := vhash.New()
	var hashErr error
	obs := func(rep *pipeline.IntervalReport) {
		if err := dig.Report(rep); err != nil && hashErr == nil {
			hashErr = err
		}
	}
	pipe.AddObserver(obs)

	g := NewWorkload(cfg.Seed, loops, cfg.SamplesPerInterval)
	var res Result
	for i := 0; i < cfg.Intervals; i++ {
		if cfg.RestoreEvery > 0 && i > 0 && i%cfg.RestoreEvery == 0 {
			snap, err := pipe.Snapshot()
			if err != nil {
				return res, fmt.Errorf("soak: snapshot at interval %d: %w", i, err)
			}
			fresh, err := NewStack(prog)
			if err != nil {
				return res, err
			}
			if err := fresh.Restore(snap); err != nil {
				return res, fmt.Errorf("soak: restore at interval %d: %w", i, err)
			}
			fresh.AddObserver(obs)
			pipe = fresh // the old stack is dead; resume on the restored one
			res.Restores++
			res.SnapshotBytes = len(snap)
		}
		pipe.ProcessOverflow(g.Interval(i))
		if hashErr != nil {
			return res, hashErr
		}
		if i == cfg.Warmup {
			res.HeapBaseline = heapAlloc()
		} else if i > cfg.Warmup && (i-cfg.Warmup)%cfg.HeapCheckEvery == 0 {
			res.HeapSamples = append(res.HeapSamples, heapAlloc())
		}
	}
	res.Intervals = cfg.Intervals
	res.Digest = dig.Sum()
	res.HeapFinal = heapAlloc()
	if res.HeapFinal > res.HeapBaseline+cfg.MaxHeapGrowth {
		return res, fmt.Errorf("soak: heap grew %d bytes over %d intervals (baseline %d, final %d, budget %d)",
			res.HeapFinal-res.HeapBaseline, cfg.Intervals-cfg.Warmup, res.HeapBaseline, res.HeapFinal, cfg.MaxHeapGrowth)
	}
	return res, nil
}

// heapAlloc returns HeapAlloc after a forced collection, so readings
// compare live heap rather than GC pacing noise.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BuildProgram constructs the soak workload's program: two procedures,
// four loops of different sizes and kinds, separated by straight-line
// code so formation always has an innermost loop to latch onto.
func BuildProgram() (*isa.Program, []isa.LoopSpan, error) {
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(32, isa.KindALU)
	l1 := p.Loop(20, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU}, nil)
	p.Code(12, isa.KindALU)
	l2 := p.Loop(28, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindStore, isa.KindALU}, nil)
	b.Skip(0x20000)
	q := b.Proc("aux")
	q.Code(8, isa.KindALU)
	l3 := q.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	q.Code(8, isa.KindALU)
	l4 := q.Loop(36, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindStore}, nil)
	prog, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return prog, []isa.LoopSpan{l1, l2, l3, l4}, nil
}

// NewStack builds one full monitoring stack over prog: pipeline with
// GPD, region monitor (bounded UCR history — the default), BBV, working
// set, a CPI tracker and the E-divisive change-point detector (over the
// same CPI signal). Every component uses its default configuration so a
// soak exercises exactly what users get.
func NewStack(prog *isa.Program) (*pipeline.Pipeline, error) {
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rmon, err := region.NewMonitor(prog, region.DefaultConfig())
	if err != nil {
		return nil, err
	}
	bbv, err := altdetect.NewBBV(prog, 0.8)
	if err != nil {
		return nil, err
	}
	ws, err := altdetect.NewWorkingSet(prog, 0.5)
	if err != nil {
		return nil, err
	}
	tr, err := gpd.NewPerfTracker(gpd.DefaultPerfConfig())
	if err != nil {
		return nil, err
	}
	cpd, err := changepoint.New(changepoint.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pipe := pipeline.New()
	for _, d := range []pipeline.PhaseDetector{
		pipeline.NewGPD(gdet),
		pipeline.NewRegionMonitor(rmon),
		pipeline.NewBBV(bbv),
		pipeline.NewWorkingSet(ws),
		pipeline.NewCPI(tr),
		pipeline.NewChangePoint(cpd),
	} {
		if err := pipe.Register(d); err != nil {
			return nil, err
		}
	}
	return pipe, nil
}

// Workload is the deterministic workload generator. Each interval rotates
// through phases that weight two of the four loops, with a small idle
// (PC 0) fraction and a sparse partial-buffer interval every 97th
// delivery — the shapes the hardening fixes are about. It is exported for
// the fleet soak mode and cmd/benchingest, which drive many independent
// Workloads (one per stream) over the same program.
type Workload struct {
	rng   uint64
	loops []isa.LoopSpan
	buf   int // samples per full interval
	cycle uint64
	ov    hpm.Overflow // reused by Interval, like a real hpm buffer
}

// NewWorkload returns a generator seeded with seed over the given loops
// (from BuildProgram), emitting buf samples per interval.
func NewWorkload(seed uint64, loops []isa.LoopSpan, buf int) *Workload {
	return &Workload{rng: seed, loops: loops, buf: buf,
		ov: hpm.Overflow{Samples: make([]hpm.Sample, buf)}}
}

// next is splitmix64.
func (g *Workload) next() uint64 {
	g.rng += 0x9e3779b97f4a7c15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// phaseLen is how many intervals each phase lasts before the workload
// shifts to the next loop pair.
const phaseLen = 160

// Interval produces the i'th sampling interval. The returned overflow
// aliases the generator's reusable sample buffer: consume (or copy) it
// before requesting the next interval. Per-item wrapper over
// IntervalInto.
//
//lint:wraps IntervalInto
func (g *Workload) Interval(i int) *hpm.Overflow {
	return g.IntervalInto(i, &g.ov)
}

// IntervalInto fills ov with the i'th sampling interval, writing samples
// into ov.Samples' backing array (which must have capacity for at least
// the generator's per-interval buffer size), and returns ov. It is the
// batch-friendly core: a driver batching K intervals into one
// ingest.PushBatch call fills K caller-owned overflows — every one alive
// at once — without the generator owning K buffers itself (see
// NewOverflowBatch). The sample stream depends only on the seed and the
// call sequence, so batched and per-item drivers generate bit-identical
// workloads.
func (g *Workload) IntervalInto(i int, ov *hpm.Overflow) *hpm.Overflow {
	phase := (i / phaseLen) % len(g.loops)
	hot := g.loops[phase]
	warm := g.loops[(phase+1)%len(g.loops)]

	n := g.buf
	if i%97 == 96 {
		// Sparse partial-buffer flush: a handful of samples, the shape
		// that exercises the region monitor's sparse-interval guard.
		n = 3 + int(g.next()%5)
	}
	buf := ov.Samples[:cap(ov.Samples)]
	if len(buf) < n {
		panic(fmt.Sprintf("soak: IntervalInto buffer holds %d samples, interval needs %d", len(buf), n))
	}
	for s := 0; s < n; s++ {
		g.cycle += 80 + g.next()%40
		var pc isa.Addr
		switch r := g.next() % 100; {
		case r < 5:
			pc = 0 // idle sample: off-CPU time
		case r < 70:
			pc = loopPC(hot, g.next())
		case r < 90:
			pc = loopPC(warm, g.next())
		default:
			// Straggler in straight-line code: steady unmonitored noise.
			pc = g.loops[g.next()%uint64(len(g.loops))].End + isa.InstrBytes
		}
		buf[s] = hpm.Sample{
			PC:       pc,
			Cycle:    g.cycle,
			Instrs:   8 + g.next()%8,
			DCMisses: g.next() % 3,
		}
	}
	ov.Seq = i
	ov.Cycle = g.cycle
	ov.Samples = buf[:n]
	return ov
}

// NewOverflowBatch preallocates n overflows, each with its own
// samples-per-interval backing buffer — the caller-owned storage a
// batched driver hands to IntervalInto and then to ingest.PushBatch in
// one call. The overflows share one contiguous sample allocation.
func NewOverflowBatch(n, samplesPerInterval int) []*hpm.Overflow {
	ovs := make([]*hpm.Overflow, n)
	backing := make([]hpm.Overflow, n)
	buf := make([]hpm.Sample, n*samplesPerInterval)
	for i := range ovs {
		backing[i].Samples = buf[i*samplesPerInterval : (i+1)*samplesPerInterval]
		ovs[i] = &backing[i]
	}
	return ovs
}

// loopPC returns a pseudo-random instruction address inside span.
func loopPC(span isa.LoopSpan, r uint64) isa.Addr {
	return span.Start + isa.Addr(r%uint64(span.NumInstrs()))*isa.InstrBytes
}

// The verdict-stream digest lives in internal/vhash (shared with the
// ingest fleet's determinism and kill/restore proofs).
