package soak

import "testing"

// TestFleetSoakKillRestoreMatchesReference is the short-form multi-stream
// soak: a fleet that is killed and restored mid-run — and runs on a
// different shard count — must emit per-stream verdict streams exactly
// matching an uninterrupted reference fleet. This folds the two tentpole
// guarantees (topology independence, checkpoint fidelity) into one
// digest comparison.
func TestFleetSoakKillRestoreMatchesReference(t *testing.T) {
	cfg := FleetConfig{Streams: 6, Intervals: 1000, Shards: 1, Seed: 11, MaxHeapGrowth: 64 << 20}

	ref, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Restores != 0 {
		t.Fatalf("reference run performed %d restores; want 0", ref.Restores)
	}

	cfg.Shards = 4
	cfg.RestoreEvery = 400
	kr, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("kill/restore run: %v", err)
	}
	if kr.Restores != 2 {
		t.Errorf("restores = %d; want 2", kr.Restores)
	}
	if kr.SnapshotBytes == 0 {
		t.Error("no fleet snapshot taken")
	}
	for s := range ref.Digests {
		if kr.Digests[s] != ref.Digests[s] {
			t.Errorf("stream %d diverged: digest %#x, reference %#x", s, kr.Digests[s], ref.Digests[s])
		}
	}
	if kr.Digest != ref.Digest {
		t.Errorf("fleet digest %#x != reference %#x", kr.Digest, ref.Digest)
	}
}

// TestFleetSoakBatchInvariance pins the transport-knob contract stated on
// FleetConfig.Batch: the per-stream digests depend only on the workload,
// never on how many intervals ride in each push — including a batch size
// that does not divide the interval count, and batched pushes combined
// with kill/restore cycles landing mid-batch-cadence.
func TestFleetSoakBatchInvariance(t *testing.T) {
	base := FleetConfig{Streams: 5, Intervals: 900, Shards: 2, Seed: 7, MaxHeapGrowth: 64 << 20}

	cfg := base
	cfg.Batch = 1
	ref, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("per-item reference run: %v", err)
	}

	for _, batch := range []int{7, 16} {
		cfg := base
		cfg.Batch = batch
		res, err := RunFleet(cfg)
		if err != nil {
			t.Fatalf("batch %d run: %v", batch, err)
		}
		for s := range ref.Digests {
			if res.Digests[s] != ref.Digests[s] {
				t.Errorf("batch %d: stream %d digest %#x != per-item reference %#x",
					batch, s, res.Digests[s], ref.Digests[s])
			}
		}
	}

	// Batched pushes with restore boundaries that are not batch multiples:
	// blocks must be cut at the checkpoint, not slid past it.
	cfg = base
	cfg.Batch = 16
	cfg.Shards = 3
	cfg.RestoreEvery = 250 // not divisible by 16
	kr, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("batched kill/restore run: %v", err)
	}
	if kr.Restores != 3 {
		t.Errorf("restores = %d; want 3", kr.Restores)
	}
	if kr.Digest != ref.Digest {
		t.Errorf("batched kill/restore fleet digest %#x != per-item reference %#x", kr.Digest, ref.Digest)
	}
}

// TestFleetSoakStreamsDiffer: per-stream seeds produce distinct verdict
// streams, so digest equality across runs is not vacuous.
func TestFleetSoakStreamsDiffer(t *testing.T) {
	res, err := RunFleet(FleetConfig{Streams: 4, Intervals: 400, Shards: 2, MaxHeapGrowth: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for s, d := range res.Digests {
		if prev, ok := seen[d]; ok {
			t.Errorf("streams %d and %d share digest %#x", prev, s, d)
		}
		seen[d] = s
	}
}

func TestFleetSoakValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{}); err == nil {
		t.Error("zero FleetConfig accepted")
	}
	if _, err := RunFleet(FleetConfig{Streams: 2}); err == nil {
		t.Error("zero Intervals accepted")
	}
}
