package soak

import "testing"

// TestSoakKillRestoreMatchesReference is the short-form soak: a few
// thousand intervals with two kill/restore cycles must emit exactly the
// verdict stream of an uninterrupted reference run. cmd/soak (make
// soak) runs the same comparison at millions of intervals.
func TestSoakKillRestoreMatchesReference(t *testing.T) {
	cfg := Config{Intervals: 6000, Seed: 7, MaxHeapGrowth: 16 << 20}

	ref, err := Run(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Restores != 0 {
		t.Fatalf("reference run performed %d restores; want 0", ref.Restores)
	}

	cfg.RestoreEvery = 2300
	kr, err := Run(cfg)
	if err != nil {
		t.Fatalf("kill/restore run: %v", err)
	}
	if kr.Restores != 2 {
		t.Errorf("restores = %d; want 2", kr.Restores)
	}
	if kr.SnapshotBytes == 0 {
		t.Error("no snapshot taken")
	}
	if kr.Digest != ref.Digest {
		t.Errorf("verdict stream diverged after restore: digest %#x, reference %#x", kr.Digest, ref.Digest)
	}
	if kr.Intervals != ref.Intervals {
		t.Errorf("intervals = %d; want %d", kr.Intervals, ref.Intervals)
	}
}

// TestSoakDeterministic checks that the generator and stack are fully
// deterministic: same config, same digest.
func TestSoakDeterministic(t *testing.T) {
	cfg := Config{Intervals: 1500, Seed: 42, MaxHeapGrowth: 16 << 20}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("digests differ: %#x vs %#x", a.Digest, b.Digest)
	}
	if a.Digest == 0 {
		t.Error("zero digest: observer never ran")
	}
}

func TestSoakValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("zero Intervals accepted")
	}
}
