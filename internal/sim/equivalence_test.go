package sim

import (
	"testing"

	"regionmon/internal/hpm"
)

// TestBatchSlowPathEquivalence pins the executor's core invariant: the
// fast path (whole-iteration batching between sampling boundaries) and
// the slow path (instruction-by-instruction retirement when a boundary
// falls inside an iteration) account identical cycles, instructions and
// misses. Sampling at period 1 forces the slow path on every instruction;
// a huge period keeps everything on the batch path. Totals must agree
// exactly.
func TestBatchSlowPathEquivalence(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	sched := func() *Schedule {
		s := simpleSchedule(l1, l2, 300_000)
		s.Segments[0].Regions[0].HotspotIdx = 3
		s.Segments[0].Regions[0].HotspotStall = 70
		return s
	}

	run := func(period uint64) (Result, uint64) {
		var misses uint64
		mon := mustMonitor(t, period, 4096, func(ov *hpm.Overflow) {
			for _, s := range ov.Samples {
				misses += s.DCMisses
			}
		})
		ex, err := NewExecutor(prog, sched(), mon)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		res := ex.Run()
		mon.Flush()
		return res, misses
	}

	slow, slowMisses := run(1)     // every instruction sampled
	fast, _ := run(1 << 40)        // nothing ever sampled: pure batch
	mixed, mixedMisses := run(157) // boundaries land mid-iteration

	if slow.Cycles != fast.Cycles || slow.Cycles != mixed.Cycles {
		t.Errorf("cycle totals diverge: slow %d, fast %d, mixed %d", slow.Cycles, fast.Cycles, mixed.Cycles)
	}
	if slow.Instrs != fast.Instrs || slow.Instrs != mixed.Instrs {
		t.Errorf("instruction totals diverge: slow %d, fast %d, mixed %d", slow.Instrs, fast.Instrs, mixed.Instrs)
	}
	if slow.BaseCycles != fast.BaseCycles || slow.BaseCycles != mixed.BaseCycles {
		t.Errorf("base-cycle totals diverge: slow %d, fast %d, mixed %d", slow.BaseCycles, fast.BaseCycles, mixed.BaseCycles)
	}
	// Miss accounting: slow path observes every instruction, so its
	// per-sample miss deltas sum to the true total. The mixed run's
	// counters must sum to the same total (counter deltas are exact
	// regardless of sampling alignment — only attribution granularity
	// changes). Compare against the per-interval sums.
	if slowMisses == 0 {
		t.Fatal("slow run observed no misses; test is vacuous")
	}
	// Counter deltas accumulated after the final sample are pending in
	// the monitor and never delivered (counters are read at interrupt
	// time), so the mixed run may undercount by less than one iteration's
	// worth of misses.
	if mixedMisses > slowMisses || slowMisses-mixedMisses > 20 {
		t.Errorf("miss totals diverge: slow %d, mixed %d", slowMisses, mixedMisses)
	}
}

// TestBatchSlowPathEquivalenceWithOptimization re-checks equivalence with
// an active stall modifier, covering the scaled-stall arithmetic in both
// paths.
func TestBatchSlowPathEquivalenceWithOptimization(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	run := func(period uint64) Result {
		mon := mustMonitor(t, period, 4096, nil)
		ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 300_000), mon)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		ex.SetOptimization(Span{l1.Start, l1.End}, 0.37) // awkward fraction
		return ex.Run()
	}
	slow := run(1)
	fast := run(1 << 40)
	mixed := run(211)
	if slow.Cycles != fast.Cycles || slow.Cycles != mixed.Cycles {
		t.Errorf("optimized cycle totals diverge: slow %d, fast %d, mixed %d",
			slow.Cycles, fast.Cycles, mixed.Cycles)
	}
}

// TestStopAbortsRun covers the controller-abort path.
func TestStopAbortsRun(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	stopped := false
	var ex *Executor
	mon := mustMonitor(t, 500, 64, func(ov *hpm.Overflow) {
		if ov.Seq >= 2 && !stopped {
			stopped = true
			ex.Stop()
		}
	})
	ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 100_000_000), mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	res := ex.Run()
	if !stopped {
		t.Fatal("overflow callback never fired")
	}
	// The run must have ended far before the scheduled work.
	if res.BaseCycles > 10_000_000 {
		t.Errorf("Stop did not abort promptly: %d base cycles", res.BaseCycles)
	}
}
