// Package sim executes a synthetic program under a phase schedule on a
// deterministic cycle-level model, driving the simulated hardware
// performance monitor. It is the stand-in for "SPEC CPU2000 binary running
// on an UltraSPARC": phase detection downstream sees only the PC-sample
// stream the monitor captures.
//
// A Schedule is a sequence of Segments; each segment describes which code
// regions are hot, what share of execution each gets, how often its loads
// miss the data cache, where the per-instruction bottleneck sits, and how
// quickly execution round-robins between the hot regions (the periodicity
// that makes global phase detection sampling-period sensitive, Section 2.3
// of the paper). Work is measured in base cycles — the cost of the code
// with no optimization applied — so two runs of the same schedule under
// different optimization controllers perform identical work and their
// actual-cycle totals are directly comparable (that comparison is
// Figure 17).
package sim

import (
	"fmt"

	"regionmon/internal/isa"
)

// RegionBehavior describes one code region's behaviour during a segment.
// The span usually comes from a builder LoopSpan, but any contiguous
// instruction range works — non-loop spans model code the region builder
// cannot cover (the paper's UCR discussion around Figures 6 and 7).
type RegionBehavior struct {
	// Start, End delimit the half-open address span to execute.
	Start, End isa.Addr
	// Weight is the region's share of the segment's execution (weights are
	// normalized over each segment; they need not sum to 1).
	Weight float64
	// MissRate is the fraction of iterations in which the span's loads
	// miss the data cache (deterministic accumulator schedule, not random,
	// so runs are bit-reproducible).
	MissRate float64
	// MissPenalty is the stall in cycles added to each missing load.
	MissPenalty uint64
	// HotspotIdx, when >= 0, marks the instruction index within the span
	// that stalls HotspotStall extra cycles every iteration — a delinquent
	// load. Moving HotspotIdx between segments reproduces the Figure 8
	// "bottleneck shifts by one instruction" scenario.
	HotspotIdx int
	// HotspotStall is the per-iteration stall at HotspotIdx.
	HotspotStall uint64
}

// Validate checks the behaviour against prog.
func (rb *RegionBehavior) Validate(prog *isa.Program) error {
	if rb.Start >= rb.End {
		return fmt.Errorf("sim: region %v-%v is empty", rb.Start, rb.End)
	}
	if prog.BlockAt(rb.Start) == nil || prog.BlockAt(rb.End-isa.InstrBytes) == nil {
		return fmt.Errorf("sim: region %v-%v is outside program text", rb.Start, rb.End)
	}
	if rb.Weight <= 0 {
		return fmt.Errorf("sim: region %v-%v has non-positive weight %v", rb.Start, rb.End, rb.Weight)
	}
	if rb.MissRate < 0 || rb.MissRate > 1 {
		return fmt.Errorf("sim: region %v-%v has miss rate %v outside [0,1]", rb.Start, rb.End, rb.MissRate)
	}
	n := int(rb.End-rb.Start) / isa.InstrBytes
	if rb.HotspotIdx >= n {
		return fmt.Errorf("sim: region %v-%v hotspot index %d outside %d instructions", rb.Start, rb.End, rb.HotspotIdx, n)
	}
	return nil
}

// Span returns the behaviour's address span as a LoopSpan-shaped value for
// map keys and logging.
func (rb *RegionBehavior) Span() Span { return Span{rb.Start, rb.End} }

// Span is a half-open address range used as a comparable region key.
type Span struct {
	Start, End isa.Addr
}

// Name renders the paper's region-name convention.
func (s Span) Name() string { return fmt.Sprintf("%v-%v", s.Start, s.End) }

// Contains reports whether addr lies inside the span.
func (s Span) Contains(addr isa.Addr) bool { return addr >= s.Start && addr < s.End }

// Segment is a contiguous stretch of execution with fixed behaviour.
type Segment struct {
	// Name labels the segment in traces (optional).
	Name string
	// BaseCycles is the amount of work in the segment, measured in
	// unoptimized cycles.
	BaseCycles uint64
	// SlicePeriod is the length, in base cycles, of one full round-robin
	// pass over the segment's regions. Small values interleave regions
	// finely (stable sample mix per interval); values near or above the
	// sampling interval make consecutive intervals see different regions —
	// the facerec behaviour that destabilizes GPD.
	SlicePeriod uint64
	// JitterFrac perturbs each region visit's length by up to ±JitterFrac
	// (deterministic PRNG), modelling sampling-alignment noise. 0 disables.
	JitterFrac float64
	// Regions lists the active regions. At least one is required.
	Regions []RegionBehavior
}

// Validate checks the segment against prog.
func (s *Segment) Validate(prog *isa.Program) error {
	if s.BaseCycles == 0 {
		return fmt.Errorf("sim: segment %q has zero work", s.Name)
	}
	if s.SlicePeriod == 0 {
		return fmt.Errorf("sim: segment %q has zero slice period", s.Name)
	}
	if s.JitterFrac < 0 || s.JitterFrac >= 1 {
		return fmt.Errorf("sim: segment %q jitter %v outside [0,1)", s.Name, s.JitterFrac)
	}
	if len(s.Regions) == 0 {
		return fmt.Errorf("sim: segment %q has no regions", s.Name)
	}
	for i := range s.Regions {
		if err := s.Regions[i].Validate(prog); err != nil {
			return fmt.Errorf("segment %q: %w", s.Name, err)
		}
	}
	return nil
}

// Schedule is a complete workload: segments executed in order, the whole
// list repeated Repeat times (min 1).
type Schedule struct {
	// Name labels the workload (e.g. "181.mcf").
	Name string
	// Seed feeds the deterministic jitter PRNG.
	Seed uint64
	// Repeat re-runs the segment list this many times (0 and 1 both mean
	// once). Periodic whole-program behaviour (mcf's drift cycles) is
	// expressed this way.
	Repeat int
	// Segments is the segment list; must be non-empty.
	Segments []Segment
}

// Validate checks the schedule against prog.
func (sc *Schedule) Validate(prog *isa.Program) error {
	if len(sc.Segments) == 0 {
		return fmt.Errorf("sim: schedule %q has no segments", sc.Name)
	}
	for i := range sc.Segments {
		if err := sc.Segments[i].Validate(prog); err != nil {
			return fmt.Errorf("schedule %q: %w", sc.Name, err)
		}
	}
	return nil
}

// TotalBaseCycles returns the schedule's total work.
func (sc *Schedule) TotalBaseCycles() uint64 {
	var t uint64
	for i := range sc.Segments {
		t += sc.Segments[i].BaseCycles
	}
	reps := sc.Repeat
	if reps < 1 {
		reps = 1
	}
	return t * uint64(reps)
}

// CostModel maps instruction kinds to base cycle costs.
type CostModel struct {
	// Costs[k] is the base cost of kind k; zero entries default to 1.
	Costs [8]uint64
}

// DefaultCostModel returns SPARC-flavoured base costs: single-cycle integer
// ops, two-cycle stores and control transfers, three-cycle floating point.
func DefaultCostModel() CostModel {
	var c CostModel
	c.Costs[isa.KindALU] = 1
	c.Costs[isa.KindLoad] = 1 // plus miss penalties from the behaviour
	c.Costs[isa.KindStore] = 2
	c.Costs[isa.KindFP] = 3
	c.Costs[isa.KindBranch] = 1
	c.Costs[isa.KindCall] = 2
	c.Costs[isa.KindRet] = 2
	c.Costs[isa.KindNop] = 1
	return c
}

// Cost returns the base cost of kind k (minimum 1).
func (c *CostModel) Cost(k isa.Kind) uint64 {
	if int(k) < len(c.Costs) && c.Costs[k] > 0 {
		return c.Costs[k]
	}
	return 1
}
