package sim

import (
	"testing"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// twoLoopProgram builds a program with two independent hot loops and
// returns it with their spans.
func twoLoopProgram(t testing.TB) (*isa.Program, isa.LoopSpan, isa.LoopSpan) {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(8, isa.KindALU)
	l1 := p.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU, isa.KindALU}, nil)
	p.Code(4, isa.KindALU)
	l2 := p.Loop(24, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindStore, isa.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, l1, l2
}

func mustMonitor(t testing.TB, period uint64, size int, cb func(*hpm.Overflow)) *hpm.Monitor {
	t.Helper()
	if cb == nil {
		cb = func(*hpm.Overflow) {}
	}
	m, err := hpm.New(hpm.Config{Period: period, BufferSize: size}, cb)
	if err != nil {
		t.Fatalf("hpm.New: %v", err)
	}
	return m
}

func simpleSchedule(l1, l2 isa.LoopSpan, work uint64) *Schedule {
	return &Schedule{
		Name: "test",
		Seed: 1,
		Segments: []Segment{{
			Name:        "seg0",
			BaseCycles:  work,
			SlicePeriod: 2000,
			Regions: []RegionBehavior{
				{Start: l1.Start, End: l1.End, Weight: 0.7, MissRate: 0.5, MissPenalty: 20, HotspotIdx: -1},
				{Start: l2.Start, End: l2.End, Weight: 0.3, MissRate: 0.1, MissPenalty: 20, HotspotIdx: -1},
			},
		}},
	}
}

func TestExecutorRunsScheduleWork(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	mon := mustMonitor(t, 500, 64, nil)
	ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 200_000), mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	res := ex.Run()
	if res.BaseCycles < 200_000 {
		t.Errorf("BaseCycles = %d; want >= 200000", res.BaseCycles)
	}
	// Base work overshoot is bounded by one iteration per visit.
	if res.BaseCycles > 210_000 {
		t.Errorf("BaseCycles = %d; overshoot too large", res.BaseCycles)
	}
	// No optimizations: actual == base.
	if res.Cycles != res.BaseCycles {
		t.Errorf("Cycles = %d; want == BaseCycles %d without optimization", res.Cycles, res.BaseCycles)
	}
	if res.Instrs == 0 {
		t.Error("no instructions retired")
	}
}

func TestSampleDistributionFollowsWeights(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	var inL1, inL2, other int
	mon := mustMonitor(t, 97, 128, func(ov *hpm.Overflow) {
		for _, s := range ov.Samples {
			switch {
			case l1.Contains(s.PC):
				inL1++
			case l2.Contains(s.PC):
				inL2++
			default:
				other++
			}
		}
	})
	ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 3_000_000), mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	ex.Run()
	mon.Flush()
	total := inL1 + inL2 + other
	if total == 0 {
		t.Fatal("no samples captured")
	}
	f1 := float64(inL1) / float64(total)
	// l1 has weight .7 of base cycles (stalls included), so its sample
	// share should sit near 0.7 up to visit-granularity rounding.
	if f1 < 0.62 || f1 > 0.78 {
		t.Errorf("l1 sample share = %.3f; want ≈ 0.7", f1)
	}
	if other > total/100 {
		t.Errorf("unattributed samples = %d of %d; want < 1%%", other, total)
	}
}

func TestDeterminism(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	run := func() (uint64, uint64, []isa.Addr) {
		var pcs []isa.Addr
		mon := mustMonitor(t, 211, 64, func(ov *hpm.Overflow) {
			for _, s := range ov.Samples {
				pcs = append(pcs, s.PC)
			}
		})
		sched := simpleSchedule(l1, l2, 500_000)
		sched.Segments[0].JitterFrac = 0.2
		ex, err := NewExecutor(prog, sched, mon)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		res := ex.Run()
		return res.Cycles, res.Instrs, pcs
	}
	c1, i1, p1 := run()
	c2, i2, p2 := run()
	if c1 != c2 || i1 != i2 || len(p1) != len(p2) {
		t.Fatalf("non-deterministic run: (%d,%d,%d) vs (%d,%d,%d)", c1, i1, len(p1), c2, i2, len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestOptimizationSavesCycles(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)

	runWith := func(save float64) Result {
		mon := mustMonitor(t, 500, 64, nil)
		ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 1_000_000), mon)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		if save != 0 {
			ex.SetOptimization(Span{l1.Start, l1.End}, save)
		}
		return ex.Run()
	}

	baseline := runWith(0)
	optimized := runWith(0.5)
	if baseline.BaseCycles != optimized.BaseCycles {
		t.Fatalf("work differs: %d vs %d", baseline.BaseCycles, optimized.BaseCycles)
	}
	if optimized.Cycles >= baseline.Cycles {
		t.Errorf("optimization did not save cycles: %d vs %d", optimized.Cycles, baseline.Cycles)
	}
	sp := optimized.Speedup(baseline)
	if sp <= 0 || sp > 1 {
		t.Errorf("speedup = %v; want in (0, 1]", sp)
	}

	harmful := runWith(-0.5) // negative save inflates stalls
	if harmful.Cycles <= baseline.Cycles {
		t.Errorf("harmful optimization did not cost cycles: %d vs %d", harmful.Cycles, baseline.Cycles)
	}
}

func TestClearOptimization(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	mon := mustMonitor(t, 500, 64, nil)
	ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 10_000), mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	span := Span{l1.Start, l1.End}
	ex.SetOptimization(span, 0.5)
	if n := len(ex.ActiveOptimizations()); n != 1 {
		t.Fatalf("active = %d; want 1", n)
	}
	// Replacement, not duplication.
	ex.SetOptimization(span, 0.7)
	if n := len(ex.ActiveOptimizations()); n != 1 {
		t.Fatalf("active after replace = %d; want 1", n)
	}
	if !ex.ClearOptimization(span) {
		t.Error("ClearOptimization missed active span")
	}
	if ex.ClearOptimization(span) {
		t.Error("double clear should report false")
	}
}

func TestStallInjectsOverheadCycles(t *testing.T) {
	prog, l1, l2 := twoLoopProgram(t)
	mon := mustMonitor(t, 500, 64, nil)
	ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 10_000), mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	ex.Stall(12345)
	res := ex.Run()
	if res.Cycles != res.BaseCycles+12345 {
		t.Errorf("Cycles = %d; want base %d + 12345", res.Cycles, res.BaseCycles)
	}
}

func TestHotspotConcentratesSamples(t *testing.T) {
	prog, l1, _ := twoLoopProgram(t)
	hotIdx := 5
	sched := &Schedule{
		Name: "hot",
		Segments: []Segment{{
			BaseCycles:  2_000_000,
			SlicePeriod: 1000,
			Regions: []RegionBehavior{{
				Start: l1.Start, End: l1.End, Weight: 1,
				HotspotIdx: hotIdx, HotspotStall: 200,
			}},
		}},
	}
	counts := map[isa.Addr]int{}
	mon := mustMonitor(t, 173, 128, func(ov *hpm.Overflow) {
		for _, s := range ov.Samples {
			counts[s.PC]++
		}
	})
	ex, err := NewExecutor(prog, sched, mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	ex.Run()
	mon.Flush()
	hotAddr := l1.Start + isa.Addr(hotIdx*isa.InstrBytes)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no samples")
	}
	frac := float64(counts[hotAddr]) / float64(total)
	// The hotspot stalls 200 of ~220 cycles per iteration; it must absorb
	// the overwhelming majority of samples.
	if frac < 0.8 {
		t.Errorf("hotspot sample share = %.3f; want > 0.8", frac)
	}
}

func TestValidationErrors(t *testing.T) {
	prog, l1, _ := twoLoopProgram(t)
	mon := mustMonitor(t, 500, 64, nil)
	mk := func(mut func(*Schedule)) error {
		s := &Schedule{
			Name: "v",
			Segments: []Segment{{
				BaseCycles:  1000,
				SlicePeriod: 100,
				Regions:     []RegionBehavior{{Start: l1.Start, End: l1.End, Weight: 1, HotspotIdx: -1}},
			}},
		}
		mut(s)
		_, err := NewExecutor(prog, s, mon)
		return err
	}
	cases := map[string]func(*Schedule){
		"no segments":     func(s *Schedule) { s.Segments = nil },
		"zero work":       func(s *Schedule) { s.Segments[0].BaseCycles = 0 },
		"zero slice":      func(s *Schedule) { s.Segments[0].SlicePeriod = 0 },
		"bad jitter":      func(s *Schedule) { s.Segments[0].JitterFrac = 1.5 },
		"no regions":      func(s *Schedule) { s.Segments[0].Regions = nil },
		"empty span":      func(s *Schedule) { s.Segments[0].Regions[0].End = s.Segments[0].Regions[0].Start },
		"outside text":    func(s *Schedule) { s.Segments[0].Regions[0].Start = 0x1; s.Segments[0].Regions[0].End = 0x9 },
		"zero weight":     func(s *Schedule) { s.Segments[0].Regions[0].Weight = 0 },
		"bad miss rate":   func(s *Schedule) { s.Segments[0].Regions[0].MissRate = 1.5 },
		"hotspot outside": func(s *Schedule) { s.Segments[0].Regions[0].HotspotIdx = 10_000 },
	}
	for name, mut := range cases {
		if err := mk(mut); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if _, err := NewExecutor(nil, nil, nil); err == nil {
		t.Error("nil arguments should fail")
	}
}

func TestMissRateSchedule(t *testing.T) {
	prog, l1, _ := twoLoopProgram(t)
	// MissRate 0.25: exactly one in four iterations misses. Count misses
	// via the monitor's per-sample deltas over a long run.
	sched := &Schedule{
		Name: "miss",
		Segments: []Segment{{
			BaseCycles:  1_000_000,
			SlicePeriod: 1000,
			Regions: []RegionBehavior{{
				Start: l1.Start, End: l1.End, Weight: 1,
				MissRate: 0.25, MissPenalty: 10, HotspotIdx: -1,
			}},
		}},
	}
	var misses, instrs uint64
	mon := mustMonitor(t, 1000, 64, func(ov *hpm.Overflow) {
		for _, s := range ov.Samples {
			misses += s.DCMisses
			instrs += s.Instrs
		}
	})
	ex, err := NewExecutor(prog, sched, mon)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	ex.Run()
	mon.Flush()
	if instrs == 0 {
		t.Fatal("no instructions observed")
	}
	// l1 body: 16 instrs of pattern load,alu,alu,alu = 4 loads + latch 2.
	// 18 instructions per iteration, 4 loads, miss every 4th iteration:
	// expected misses/instr = 4/(18*4) ≈ 0.0556.
	got := float64(misses) / float64(instrs)
	want := 4.0 / 72.0
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("miss ratio = %v; want ≈ %v", got, want)
	}
}

func TestSpanHelpers(t *testing.T) {
	s := Span{0x100, 0x200}
	if !s.Contains(0x100) || s.Contains(0x200) || s.Contains(0xff) {
		t.Error("Span.Contains boundary behaviour wrong")
	}
	if s.Name() != "100-200" {
		t.Errorf("Span.Name = %q", s.Name())
	}
}

func TestScheduleTotals(t *testing.T) {
	sc := &Schedule{
		Repeat: 3,
		Segments: []Segment{
			{BaseCycles: 100},
			{BaseCycles: 50},
		},
	}
	if got := sc.TotalBaseCycles(); got != 450 {
		t.Errorf("TotalBaseCycles = %d; want 450", got)
	}
	sc.Repeat = 0
	if got := sc.TotalBaseCycles(); got != 150 {
		t.Errorf("TotalBaseCycles (repeat 0) = %d; want 150", got)
	}
}

func TestCostModelDefaults(t *testing.T) {
	cm := DefaultCostModel()
	if cm.Cost(isa.KindALU) != 1 || cm.Cost(isa.KindFP) != 3 {
		t.Error("default costs wrong")
	}
	var zero CostModel
	if zero.Cost(isa.KindALU) != 1 {
		t.Error("zero cost model should clamp to 1")
	}
	if zero.Cost(isa.Kind(200)) != 1 {
		t.Error("unknown kind should cost 1")
	}
}

// BenchmarkExecutor measures simulated cycles per wall second, the number
// that bounds every experiment sweep.
func BenchmarkExecutor(b *testing.B) {
	prog, l1, l2 := twoLoopProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mon, _ := hpm.New(hpm.Config{Period: 45_000, BufferSize: 256}, func(*hpm.Overflow) {})
		ex, err := NewExecutor(prog, simpleSchedule(l1, l2, 10_000_000), mon)
		if err != nil {
			b.Fatal(err)
		}
		res := ex.Run()
		b.SetBytes(int64(res.Cycles / 1e6)) // "MB" = Mcycles, for ns/Mcycle readout
	}
}
