package sim

import (
	"fmt"
	"math/rand/v2"

	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// Executor runs a Schedule over a Program, reporting every retired
// instruction to the performance monitor. Between sampling interrupts it
// batches whole loop iterations (see hpm.TryRetireBatch), so simulation
// cost scales with sample count, not instruction count, without changing
// any observable sample.
//
// An Executor is single-owner: one goroutine calls Run, and all mutable
// run state (segment position, seeded PRNG, region states, optimization
// table) lives on the executor itself. The *isa.Program and *Schedule it
// is given are only read during Run, so concurrent executors may share
// them once construction is done — though the experiments runners build
// fresh ones per run anyway, since workload construction is cheap next
// to simulation.
//
//lint:single-owner
type Executor struct {
	prog  *isa.Program
	sched *Schedule
	mon   *hpm.Monitor
	costs CostModel
	rng   *rand.Rand

	states map[Span]*regionState
	opts   []optimization

	baseCycles  uint64
	extraCycles uint64 // controller-injected stalls (patching overhead)
	instrs      uint64
	stopped     bool
}

// optimization is an active cycle modifier deployed by the RTO controller:
// within [span), stall cycles (miss penalties and hotspot stalls) are
// scaled by (1 - save). save may be negative, modelling a speculative
// optimization that hurts (the self-monitoring scenario).
type optimization struct {
	span Span
	save float64
}

// regionState caches the per-span execution machinery.
type regionState struct {
	span    Span
	kinds   []isa.Kind
	addrs   []isa.Addr
	baseSum uint64 // Σ kind costs over one iteration, stalls excluded
	nLoads  uint64
	missAcc float64
	iter    uint64
}

// Result summarizes a completed run.
type Result struct {
	// BaseCycles is the schedule work performed (identical across
	// controllers for the same schedule).
	BaseCycles uint64
	// Cycles is the actual cycles consumed, including optimization
	// savings/penalties and controller-injected overhead.
	Cycles uint64
	// Instrs is the number of instructions retired.
	Instrs uint64
	// Overflows is the number of full sample-buffer deliveries.
	Overflows int
}

// Speedup returns the speedup of this result over base: positive when this
// run was faster. (Paper Figure 17 reports RTO-LPD over RTO-ORIG this way.)
func (r Result) Speedup(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles)/float64(r.Cycles) - 1
}

// NewExecutor validates the schedule against the program and returns a
// ready-to-run executor using the default cost model.
func NewExecutor(prog *isa.Program, sched *Schedule, mon *hpm.Monitor) (*Executor, error) {
	return NewExecutorCosts(prog, sched, mon, DefaultCostModel())
}

// NewExecutorCosts is NewExecutor with an explicit cost model.
func NewExecutorCosts(prog *isa.Program, sched *Schedule, mon *hpm.Monitor, costs CostModel) (*Executor, error) {
	if prog == nil || sched == nil || mon == nil {
		return nil, fmt.Errorf("sim: nil program, schedule or monitor")
	}
	if err := sched.Validate(prog); err != nil {
		return nil, err
	}
	return &Executor{
		prog:   prog,
		sched:  sched,
		mon:    mon,
		costs:  costs,
		rng:    rand.New(rand.NewPCG(sched.Seed, 0x5EED)),
		states: make(map[Span]*regionState),
	}, nil
}

// Monitor returns the executor's performance monitor.
func (e *Executor) Monitor() *hpm.Monitor { return e.mon }

// Program returns the program under execution.
func (e *Executor) Program() *isa.Program { return e.prog }

// SetOptimization activates a stall-cycle modifier over span: subsequent
// visits to regions inside span have their stall cycles scaled by
// (1 - save). Deploying over an already-optimized span replaces the save
// fraction. The modifier takes effect at the next region visit, modelling
// patch latency.
func (e *Executor) SetOptimization(span Span, save float64) {
	for i := range e.opts {
		if e.opts[i].span == span {
			e.opts[i].save = save
			return
		}
	}
	e.opts = append(e.opts, optimization{span: span, save: save})
}

// ClearOptimization removes the modifier over span, reporting whether one
// was active (the RTO's "unpatch").
func (e *Executor) ClearOptimization(span Span) bool {
	for i := range e.opts {
		if e.opts[i].span == span {
			e.opts[i] = e.opts[len(e.opts)-1]
			e.opts = e.opts[:len(e.opts)-1]
			return true
		}
	}
	return false
}

// ActiveOptimizations returns the active spans (test/inspection helper).
func (e *Executor) ActiveOptimizations() []Span {
	out := make([]Span, len(e.opts))
	for i := range e.opts {
		out[i] = e.opts[i].span
	}
	return out
}

// saveFor returns the active save fraction covering rb's span (a modifier
// applies when its span contains the region's start). Linear scan: the
// optimizer deploys at most a few dozen traces.
func (e *Executor) saveFor(rb *RegionBehavior) float64 {
	for i := range e.opts {
		if e.opts[i].span.Contains(rb.Start) {
			return e.opts[i].save
		}
	}
	return 0
}

// Stall injects controller overhead cycles (e.g. trace patching) into the
// run. The cycles count toward actual time but not base work.
func (e *Executor) Stall(cycles uint64) {
	e.extraCycles += cycles
	e.mon.Idle(cycles)
}

// Stop aborts the run at the next iteration boundary; used by controllers
// that only need a prefix of the schedule.
func (e *Executor) Stop() { e.stopped = true }

// Run executes the whole schedule and returns the result. The monitor's
// overflow callback fires synchronously during the run; a final partial
// buffer is flushed at the end.
func (e *Executor) Run() Result {
	reps := e.sched.Repeat
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps && !e.stopped; rep++ {
		for si := range e.sched.Segments {
			if e.stopped {
				break
			}
			e.runSegment(&e.sched.Segments[si])
		}
	}
	e.mon.Flush()
	return Result{
		BaseCycles: e.baseCycles,
		Cycles:     e.mon.Cycle(),
		Instrs:     e.instrs,
		Overflows:  e.mon.Deliveries(),
	}
}

// runSegment executes one segment's worth of work.
func (e *Executor) runSegment(seg *Segment) {
	// Normalize weights once.
	var wsum float64
	for i := range seg.Regions {
		wsum += seg.Regions[i].Weight
	}
	remaining := seg.BaseCycles
	for remaining > 0 && !e.stopped {
		for i := range seg.Regions {
			if remaining == 0 || e.stopped {
				break
			}
			rb := &seg.Regions[i]
			budget := uint64(float64(seg.SlicePeriod) * rb.Weight / wsum)
			if seg.JitterFrac > 0 {
				j := 1 + seg.JitterFrac*(2*e.rng.Float64()-1)
				budget = uint64(float64(budget) * j)
			}
			if budget == 0 {
				budget = 1
			}
			if budget > remaining {
				budget = remaining
			}
			consumed := e.runVisit(rb, budget)
			if consumed >= remaining {
				remaining = 0
			} else {
				remaining -= consumed
			}
		}
	}
}

// state returns (building if needed) the cached execution state for span.
func (e *Executor) state(span Span) *regionState {
	if st, ok := e.states[span]; ok {
		return st
	}
	n := int(span.End-span.Start) / isa.InstrBytes
	st := &regionState{
		span:  span,
		kinds: make([]isa.Kind, 0, n),
		addrs: make([]isa.Addr, 0, n),
	}
	for a := span.Start; a < span.End; a += isa.InstrBytes {
		k, ok := e.prog.KindAt(a)
		if !ok {
			// Inter-procedure gap inside the span: treat as nop padding.
			k = isa.KindNop
		}
		st.kinds = append(st.kinds, k)
		st.addrs = append(st.addrs, a)
		st.baseSum += e.costs.Cost(k)
		if k == isa.KindLoad {
			st.nLoads++
		}
	}
	e.states[span] = st
	return st
}

// stallScaled applies the optimization save fraction to a stall, rounding
// half-up, clamping negative results to zero growth only when save <= 1.
func stallScaled(stall uint64, save float64) uint64 {
	if stall == 0 || save == 0 {
		return stall
	}
	v := float64(stall) * (1 - save)
	if v <= 0 {
		return 0
	}
	return uint64(v + 0.5)
}

// iterCosts returns one iteration's base cost, actual cost and miss count
// under the current miss schedule position. It must stay consistent with
// walkIteration: the batch path and the instruction path account
// identically.
func (e *Executor) iterCosts(st *regionState, rb *RegionBehavior, missIter bool, save float64) (base, actual, misses uint64) {
	base = st.baseSum
	actual = st.baseSum
	if missIter && st.nLoads > 0 {
		base += st.nLoads * rb.MissPenalty
		actual += st.nLoads * stallScaled(rb.MissPenalty, save)
		misses += st.nLoads
	}
	if rb.HotspotIdx >= 0 && rb.HotspotIdx < len(st.kinds) {
		base += rb.HotspotStall
		actual += stallScaled(rb.HotspotStall, save)
		misses++
	}
	return base, actual, misses
}

// walkIteration retires one iteration instruction-by-instruction so a
// sampling interrupt lands on the right PC.
func (e *Executor) walkIteration(st *regionState, rb *RegionBehavior, missIter bool, save float64) {
	for i, k := range st.kinds {
		cost := e.costs.Cost(k)
		var miss uint64
		if missIter && k == isa.KindLoad {
			cost += stallScaled(rb.MissPenalty, save)
			miss = 1
		}
		if i == rb.HotspotIdx {
			cost += stallScaled(rb.HotspotStall, save)
			miss++
		}
		e.mon.Retire(st.addrs[i], cost, miss)
	}
}

// runVisit executes iterations of rb until the base-cycle budget is
// consumed (always at least one iteration). Returns base cycles consumed.
func (e *Executor) runVisit(rb *RegionBehavior, budget uint64) uint64 {
	st := e.state(rb.Span())
	save := e.saveFor(rb)
	var consumed uint64
	nInstr := uint64(len(st.kinds))
	for consumed < budget {
		st.missAcc += rb.MissRate
		missIter := false
		if st.missAcc >= 1 {
			st.missAcc--
			missIter = true
		}
		base, actual, misses := e.iterCosts(st, rb, missIter, save)
		if !e.mon.TryRetireBatch(actual, nInstr, misses) {
			e.walkIteration(st, rb, missIter, save)
		}
		e.baseCycles += base
		e.instrs += nInstr
		consumed += base
		st.iter++
	}
	return consumed
}
