package pipeline

import (
	"bytes"
	"testing"

	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
)

// pipeStream fabricates a deterministic overflow for interval i that
// alternates between the two loops every 20 intervals, so detectors see
// real phase transitions before and after the snapshot point.
func pipeStream(i int, l1, l2 isa.LoopSpan) *hpm.Overflow {
	span := l1
	if (i/20)%2 == 1 {
		span = l2
	}
	return overflow(i, 200, spanPCs(span, 8)...)
}

// commonVerdicts copies the payload-independent fields of a report's
// verdicts (payloads alias detector-owned scratch).
func commonVerdicts(rep *IntervalReport) []Verdict {
	vs := make([]Verdict, len(rep.Verdicts))
	for i, v := range rep.Verdicts {
		vs[i] = Verdict{Detector: v.Detector, Stable: v.Stable, PhaseChange: v.PhaseChange}
	}
	return vs
}

func TestPipelineSnapshotForkEquality(t *testing.T) {
	prog, l1, l2 := testProgram(t)
	const total, cut = 90, 37

	// Reference: uninterrupted run over the full stream.
	ref, _, _, _, _ := fullPipeline(t, prog)
	var refV [][]Verdict
	ref.AddObserver(func(rep *IntervalReport) { refV = append(refV, commonVerdicts(rep)) })
	for i := 0; i < total; i++ {
		ref.ProcessOverflow(pipeStream(i, l1, l2))
	}

	// Primary: run to the cut, snapshot, and keep going.
	prim, _, _, _, _ := fullPipeline(t, prog)
	for i := 0; i < cut; i++ {
		prim.ProcessOverflow(pipeStream(i, l1, l2))
	}
	s1, err := prim.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s2, err := prim.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot (second): %v", err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("Snapshot is not deterministic")
	}

	// Fork: a fresh identically configured pipeline restored from the
	// snapshot must replay the rest of the stream identically.
	fork, _, _, _, _ := fullPipeline(t, prog)
	if err := fork.Restore(s1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := fork.Intervals(), prim.Intervals(); got != want {
		t.Fatalf("restored Intervals = %d; want %d", got, want)
	}
	var forkV [][]Verdict
	fork.AddObserver(func(rep *IntervalReport) { forkV = append(forkV, commonVerdicts(rep)) })
	for i := cut; i < total; i++ {
		fork.ProcessOverflow(pipeStream(i, l1, l2))
	}
	if len(forkV) != total-cut {
		t.Fatalf("fork observed %d intervals; want %d", len(forkV), total-cut)
	}
	for i, vs := range forkV {
		want := refV[cut+i]
		for j := range vs {
			if vs[j] != want[j] {
				t.Fatalf("interval %d detector %d: fork %+v, ref %+v", cut+i, j, vs[j], want[j])
			}
		}
	}

	// After replay the fork's full internal state must match the
	// uninterrupted reference bit for bit.
	refSnap, err := ref.Snapshot()
	if err != nil {
		t.Fatalf("ref Snapshot: %v", err)
	}
	forkSnap, err := fork.Snapshot()
	if err != nil {
		t.Fatalf("fork Snapshot: %v", err)
	}
	if !bytes.Equal(refSnap, forkSnap) {
		t.Fatal("fork state diverged from uninterrupted reference")
	}

	// Aggregate stats must survive the round trip too.
	for _, d := range fork.Detectors() {
		if got, want := fork.Stats(d.Name()), ref.Stats(d.Name()); got != want {
			t.Errorf("stats[%s] = %+v; want %+v", d.Name(), got, want)
		}
	}
}

func TestPipelineRestoreRejectsMismatch(t *testing.T) {
	prog, _, _ := testProgram(t)
	pipe, _, _, _, _ := fullPipeline(t, prog)
	snap, err := pipe.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// Fewer detectors registered than the snapshot carries.
	small := New()
	small.MustRegister(NewGPD(gpd.MustNew(gpd.DefaultConfig())))
	if err := small.Restore(snap); err == nil {
		t.Error("Restore accepted a snapshot with a different detector count")
	}

	// Same count, different registration order/names.
	if err := pipe.Restore(snap[:len(snap)-3]); err == nil {
		t.Error("Restore accepted a truncated snapshot")
	}
	if err := pipe.Restore([]byte("not a snapshot")); err == nil {
		t.Error("Restore accepted garbage")
	}
}
