package pipeline

// Adapters wrapping each of the repo's detector families behind the
// PhaseDetector interface. Each adapter owns whatever scratch state its
// detector needs per interval (PC buffers, last-verdict storage) and
// reuses it across intervals, so the fan-out adds no per-interval
// allocations to the monitoring hot path. Verdict payloads point into
// that reused storage — valid until the adapter's next ObserveInterval.

import (
	"regionmon/internal/altdetect"
	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/lpd"
	"regionmon/internal/region"
)

// Default detector names used by the adapter constructors.
const (
	NameGPD         = "gpd"
	NameRegions     = "regions"
	NameBBV         = "bbv"
	NameWorkingSet  = "working-set"
	NameCPI         = "cpi"
	NameDPI         = "dpi"
	NameChangePoint = "changepoint"
)

// GPD adapts the centroid-based global detector. Payload: *gpd.Verdict.
//
//lint:single-owner
type GPD struct {
	det  *gpd.Detector
	name string   //lint:config -- fixed at construction
	pcs  []uint64 //lint:config -- scratch, reused across intervals
	last gpd.Verdict
}

// NewGPD wraps det under the default name.
func NewGPD(det *gpd.Detector) *GPD { return NewNamedGPD(NameGPD, det) }

// NewNamedGPD wraps det under an explicit name (for pipelines carrying
// several centroid detectors, e.g. threshold ablations).
func NewNamedGPD(name string, det *gpd.Detector) *GPD {
	return &GPD{det: det, name: name}
}

// Name implements PhaseDetector.
func (g *GPD) Name() string { return g.name }

// Detector exposes the wrapped centroid detector.
func (g *GPD) Detector() *gpd.Detector { return g.det }

// Last returns the most recent verdict (zero before the first interval).
func (g *GPD) Last() gpd.Verdict { return g.last }

// ObserveInterval implements PhaseDetector.
func (g *GPD) ObserveInterval(ov *hpm.Overflow) Verdict {
	g.pcs = hpm.PCs(ov, g.pcs[:0])
	g.last = g.det.ObservePCs(g.pcs)
	return Verdict{
		Detector:    g.name,
		Stable:      g.last.State == gpd.Stable,
		PhaseChange: g.last.PhaseChange,
		Payload:     &g.last,
	}
}

// RegionMonitor adapts the region monitoring framework (UCR accounting,
// formation, per-region LPD). Payload: *region.Report.
//
// The unified verdict condenses the per-region picture: Stable reports
// that the sample-weighted majority of this interval's monitored samples
// landed in locally stable regions; PhaseChange reports that at least one
// region crossed its stable boundary this interval. Consumers needing the
// full per-region detail read the payload.
//
//lint:single-owner
type RegionMonitor struct {
	mon  *region.Monitor
	name string        //lint:config -- fixed at construction
	last region.Report //lint:config -- aliases monitor-owned scratch; rebuilt next interval

	stableW float64 // sample-weighted locally-stable accumulation
	totalW  float64
}

// NewRegionMonitor wraps mon under the default name.
func NewRegionMonitor(mon *region.Monitor) *RegionMonitor {
	return NewNamedRegionMonitor(NameRegions, mon)
}

// NewNamedRegionMonitor wraps mon under an explicit name.
func NewNamedRegionMonitor(name string, mon *region.Monitor) *RegionMonitor {
	return &RegionMonitor{mon: mon, name: name}
}

// Name implements PhaseDetector.
func (r *RegionMonitor) Name() string { return r.name }

// Monitor exposes the wrapped region monitor.
func (r *RegionMonitor) Monitor() *region.Monitor { return r.mon }

// Last returns the most recent report (shares storage with the payload;
// valid until the next interval).
func (r *RegionMonitor) Last() *region.Report { return &r.last }

// WeightedStableFraction returns the whole-run sample-weighted share of
// monitored samples that landed in locally stable regions — the
// aggregate the paper's RTO-LPD accounting and the detector-panel
// experiment both report.
func (r *RegionMonitor) WeightedStableFraction() float64 {
	if r.totalW == 0 {
		return 0
	}
	return r.stableW / r.totalW
}

// PhaseChanges returns the total per-region stable→unstable count, summed
// over the currently monitored regions (Figure 13's aggregate).
func (r *RegionMonitor) PhaseChanges() int {
	n := 0
	for _, reg := range r.mon.Regions() {
		n += reg.Detector.PhaseChanges()
	}
	return n
}

// ObserveInterval implements PhaseDetector.
func (r *RegionMonitor) ObserveInterval(ov *hpm.Overflow) Verdict {
	r.last = r.mon.ProcessOverflow(ov)
	var stableW, totalW float64
	change := false
	for i := range r.last.Verdicts {
		rv := &r.last.Verdicts[i]
		if rv.Verdict.PhaseChange {
			change = true
		}
		if rv.Samples > 0 {
			w := float64(rv.Samples)
			totalW += w
			if rv.Verdict.State == lpd.Stable {
				stableW += w
			}
		}
	}
	r.stableW += stableW
	r.totalW += totalW
	return Verdict{
		Detector:    r.name,
		Stable:      totalW > 0 && stableW*2 > totalW,
		PhaseChange: change,
		Payload:     &r.last,
	}
}

// altDetector is the shared shape of the Section 4 related-work schemes.
type altDetector interface {
	Observe(ov *hpm.Overflow) altdetect.Verdict
}

// Alt adapts either Section 4 related-work scheme (basic-block vectors or
// working-set signatures). Payload: *altdetect.Verdict. These schemes
// have no multi-state machine: Stable is simply "no change flagged this
// interval", and every flagged change is a phase change.
//
//lint:single-owner
type Alt struct {
	det  altDetector
	name string //lint:config -- fixed at construction
	last altdetect.Verdict
}

// NewBBV wraps a basic-block-vector detector under the default name.
func NewBBV(det *altdetect.BBV) *Alt { return &Alt{det: det, name: NameBBV} }

// NewWorkingSet wraps a working-set-signature detector under the default
// name.
func NewWorkingSet(det *altdetect.WorkingSet) *Alt {
	return &Alt{det: det, name: NameWorkingSet}
}

// NewNamedAlt wraps any detector with the altdetect Observe shape under an
// explicit name.
func NewNamedAlt(name string, det altDetector) *Alt {
	return &Alt{det: det, name: name}
}

// Name implements PhaseDetector.
func (a *Alt) Name() string { return a.name }

// Last returns the most recent verdict.
func (a *Alt) Last() altdetect.Verdict { return a.last }

// ObserveInterval implements PhaseDetector.
func (a *Alt) ObserveInterval(ov *hpm.Overflow) Verdict {
	a.last = a.det.Observe(ov)
	return Verdict{
		Detector:    a.name,
		Stable:      !a.last.Changed,
		PhaseChange: a.last.Changed,
		Payload:     &a.last,
	}
}

// Perf adapts a performance-characteristic tracker (gpd.PerfTracker) over
// any scalar per-interval metric. Payload: *gpd.PerfVerdict. Stable is
// "value inside the band"; a flagged change is a phase change in the
// performance characteristics (the paper's CPI/DPI signal).
//
//lint:single-owner
type Perf struct {
	tr     *gpd.PerfTracker
	name   string                      //lint:config -- fixed at construction
	metric func(*hpm.Overflow) float64 //lint:config -- fixed at construction
	last   gpd.PerfVerdict
}

// NewCPI wraps tr over the interval CPI metric.
func NewCPI(tr *gpd.PerfTracker) *Perf { return NewPerf(NameCPI, tr, hpm.CPI) }

// NewDPI wraps tr over the interval DPI metric.
func NewDPI(tr *gpd.PerfTracker) *Perf { return NewPerf(NameDPI, tr, hpm.DPI) }

// NewPerf wraps tr over an arbitrary per-interval metric.
func NewPerf(name string, tr *gpd.PerfTracker, metric func(*hpm.Overflow) float64) *Perf {
	return &Perf{tr: tr, name: name, metric: metric}
}

// Name implements PhaseDetector.
func (p *Perf) Name() string { return p.name }

// Tracker exposes the wrapped tracker.
func (p *Perf) Tracker() *gpd.PerfTracker { return p.tr }

// ObserveInterval implements PhaseDetector.
func (p *Perf) ObserveInterval(ov *hpm.Overflow) Verdict {
	p.last = p.tr.Observe(p.metric(ov))
	return Verdict{
		Detector:    p.name,
		Stable:      !p.last.Changed,
		PhaseChange: p.last.Changed,
		Payload:     &p.last,
	}
}

// ChangePoint adapts the E-divisive online detector over any scalar
// per-interval metric (CPI by default). Payload: *changepoint.Verdict.
// Stable is "no change point confirmed this interval"; a confirmed
// change point is a phase change in the metric's distribution — the
// statistically grounded counterpart of the Perf adapter's band check
// over the same signal.
//
//lint:single-owner
type ChangePoint struct {
	det    *changepoint.Detector
	name   string                      //lint:config -- fixed at construction
	metric func(*hpm.Overflow) float64 //lint:config -- fixed at construction
	last   changepoint.Verdict
}

// NewChangePoint wraps det over the interval CPI metric under the
// default name.
func NewChangePoint(det *changepoint.Detector) *ChangePoint {
	return NewNamedChangePoint(NameChangePoint, det, hpm.CPI)
}

// NewNamedChangePoint wraps det over an arbitrary per-interval metric
// under an explicit name.
func NewNamedChangePoint(name string, det *changepoint.Detector, metric func(*hpm.Overflow) float64) *ChangePoint {
	return &ChangePoint{det: det, name: name, metric: metric}
}

// Name implements PhaseDetector.
func (c *ChangePoint) Name() string { return c.name }

// Detector exposes the wrapped change-point detector.
func (c *ChangePoint) Detector() *changepoint.Detector { return c.det }

// Last returns the most recent verdict (zero before the first interval).
func (c *ChangePoint) Last() changepoint.Verdict { return c.last }

// ObserveInterval implements PhaseDetector.
func (c *ChangePoint) ObserveInterval(ov *hpm.Overflow) Verdict {
	c.last = c.det.Observe(c.metric(ov))
	return Verdict{
		Detector:    c.name,
		Stable:      !c.last.Changed,
		PhaseChange: c.last.Changed,
		Payload:     &c.last,
	}
}
