// Package pipeline decouples the sample stream from the phase detectors
// observing it — the architectural move at the heart of the paper: the
// hardware monitor produces one overflow delivery per sampling interval,
// and any number of detectors (the centroid GPD baseline, the region
// monitor with per-region LPD, the Section 4 related-work schemes,
// performance-characteristic trackers) consume that same stream side by
// side.
//
// The pieces:
//
//   - PhaseDetector is the common detector interface: one ObserveInterval
//     call per overflow delivery, returning a unified Verdict (stable or
//     not, stable-boundary crossing or not, plus the detector-specific
//     payload for consumers that want the full story).
//   - Pipeline fans each overflow out to every registered detector in
//     registration order and merges the verdicts into one IntervalReport.
//     ObserveBatch is the batch-first entry consuming a whole run of
//     intervals per call (the ingest fleet's worker loop drains ring runs
//     straight into it); ProcessOverflow is its per-item wrapper.
//   - Observers hook the merged report; any number may be attached, and
//     the pipeline additionally maintains per-detector aggregate counters
//     (DetectorStats) so consumers do not each re-derive interval, stable
//     and phase-change totals.
//
// A Pipeline is single-owner: one goroutine drives ProcessOverflow, in
// step with the monitor that produced the overflow. Scaling across cores
// happens one level up — many independent (executor, monitor, pipeline)
// stacks run in parallel (see internal/experiments' sweep runner) — not by
// sharing one pipeline between goroutines.
package pipeline

import (
	"fmt"

	"regionmon/internal/hpm"
)

// Verdict is the unified per-interval event a detector emits: the common
// fields every consumer needs (stability, transition) plus the
// detector-specific payload for those that need more.
type Verdict struct {
	// Detector is the emitting detector's registered name.
	Detector string
	// Stable reports the detector's post-observation judgement: the
	// behaviour it watches is in a stable phase.
	Stable bool
	// PhaseChange reports a crossing of the stable boundary in either
	// direction this interval (the dotted transitions of the paper's
	// state diagrams).
	PhaseChange bool
	// Payload carries the detector-specific verdict: *gpd.Verdict,
	// *region.Report, *altdetect.Verdict or *gpd.PerfVerdict for the
	// built-in adapters. The pointee is owned by the detector and is
	// valid only until its next ObserveInterval call; consumers that
	// retain it must copy.
	Payload any
}

// PhaseDetector observes one sampling interval per call and renders a
// unified verdict. Implementations are single-owner (not safe for
// concurrent use) like every other per-run component; the pipeline calls
// ObserveInterval exactly once per overflow delivery, in registration
// order.
type PhaseDetector interface {
	// Name identifies the detector within its pipeline (unique per
	// pipeline, e.g. "gpd", "regions", "bbv").
	Name() string
	// ObserveInterval consumes one overflow delivery. The overflow's
	// sample slice is only valid for the duration of the call (the
	// monitor reuses the backing array).
	ObserveInterval(ov *hpm.Overflow) Verdict
}

// DetectorStats aggregates one detector's whole-run counters, maintained
// by the pipeline so observers need not re-derive them.
type DetectorStats struct {
	// Intervals is the number of intervals observed.
	Intervals int
	// StableIntervals counts intervals judged stable.
	StableIntervals int
	// PhaseChanges counts stable-boundary crossings (both directions).
	PhaseChanges int
}

// StableFraction returns the fraction of observed intervals judged stable.
func (s DetectorStats) StableFraction() float64 {
	if s.Intervals == 0 {
		return 0
	}
	return float64(s.StableIntervals) / float64(s.Intervals)
}

// IntervalReport is the merged delivery for one sampling interval: every
// registered detector's verdict, in registration order. The report and
// its Verdicts slice are reused across intervals — they are valid only
// for the duration of the observer callbacks (the same lifetime rule as
// hpm.Overflow.Samples); observers that retain data must copy it.
type IntervalReport struct {
	// Seq is the overflow sequence number.
	Seq int
	// Cycle is the absolute cycle at the end of the interval.
	Cycle uint64
	// Verdicts holds one entry per registered detector.
	Verdicts []Verdict //lint:bounded -- reset per interval; one entry per detector
}

// Verdict returns the named detector's verdict in this report, or nil.
func (r *IntervalReport) Verdict(name string) *Verdict {
	for i := range r.Verdicts {
		if r.Verdicts[i].Detector == name {
			return &r.Verdicts[i]
		}
	}
	return nil
}

// Observer is a per-interval hook receiving the merged report.
type Observer func(*IntervalReport)

// Pipeline fans one overflow stream out to N registered detectors and
// delivers the merged IntervalReport to its observers. Single-owner; see
// the package comment for the concurrency contract.
//
//lint:single-owner
type Pipeline struct {
	dets      []PhaseDetector
	stats     []DetectorStats
	byName    map[string]int   //lint:config -- derived from dets at construction
	observers []Observer       //lint:config -- wiring, not observation state
	rep       IntervalReport   //lint:config -- per-interval scratch, reused across intervals
	one       [1]*hpm.Overflow //lint:config -- scratch backing the per-item ProcessOverflow wrapper
	intervals int
}

// New returns an empty pipeline.
func New() *Pipeline {
	return &Pipeline{byName: make(map[string]int)}
}

// Register attaches a detector to the fan-out. Names must be non-empty
// and unique within the pipeline; detectors observe in registration
// order. Registering mid-stream is allowed (the detector simply misses
// the earlier intervals).
func (p *Pipeline) Register(d PhaseDetector) error {
	if d == nil {
		return fmt.Errorf("pipeline: nil detector")
	}
	name := d.Name()
	if name == "" {
		return fmt.Errorf("pipeline: detector has empty name")
	}
	if _, dup := p.byName[name]; dup {
		return fmt.Errorf("pipeline: detector %q already registered", name)
	}
	p.byName[name] = len(p.dets)
	p.dets = append(p.dets, d)
	p.stats = append(p.stats, DetectorStats{})
	return nil
}

// MustRegister is Register, panicking on error (registration errors are
// programming mistakes: duplicate or empty names).
func (p *Pipeline) MustRegister(d PhaseDetector) {
	if err := p.Register(d); err != nil {
		panic(err)
	}
}

// Detectors returns the registered detectors in registration order (the
// returned slice is shared; do not modify).
func (p *Pipeline) Detectors() []PhaseDetector { return p.dets }

// Detector returns the registered detector with the given name, or nil.
func (p *Pipeline) Detector(name string) PhaseDetector {
	if i, ok := p.byName[name]; ok {
		return p.dets[i]
	}
	return nil
}

// AddObserver attaches a per-interval hook and returns its slot (usable
// with SetObserver to replace it later). Observers run after every
// detector has observed the interval, in attachment order.
func (p *Pipeline) AddObserver(fn Observer) int {
	p.observers = append(p.observers, fn)
	return len(p.observers) - 1
}

// SetObserver replaces the observer in the given slot (as returned by
// AddObserver). A nil fn clears the slot without shifting the others.
func (p *Pipeline) SetObserver(slot int, fn Observer) {
	p.observers[slot] = fn
}

// Stats returns the named detector's aggregate counters (zero value for
// an unknown name).
func (p *Pipeline) Stats(name string) DetectorStats {
	if i, ok := p.byName[name]; ok {
		return p.stats[i]
	}
	return DetectorStats{}
}

// Intervals returns the number of overflow deliveries processed.
func (p *Pipeline) Intervals() int { return p.intervals }

// Handler returns ProcessOverflow shaped as an hpm overflow callback,
// for passing straight to hpm.New.
func (p *Pipeline) Handler() func(*hpm.Overflow) {
	return func(ov *hpm.Overflow) { p.ProcessOverflow(ov) }
}

// ProcessOverflow runs one sampling interval through every registered
// detector and delivers the merged report to the observers. Per-item
// wrapper over the ObserveBatch core. The returned report is reused
// across calls (see IntervalReport's lifetime rule). It is the natural
// hpm overflow callback:
//
//	mon, _ := hpm.New(cfg, func(ov *hpm.Overflow) { pipe.ProcessOverflow(ov) })
//
//lint:wraps ObserveBatch
func (p *Pipeline) ProcessOverflow(ov *hpm.Overflow) *IntervalReport {
	p.one[0] = ov
	p.ObserveBatch(p.one[:])
	return &p.rep
}

// ObserveBatch runs a run of sampling intervals through the fan-out in
// one call — the batch-first entry the ingest worker drains ring runs
// into. The per-interval contract is exactly ProcessOverflow's, interval
// by interval: for each overflow, every detector observes it in
// registration order, then the observers receive the merged report, and
// only then does the next interval start. That interleaving is forced by
// the payload lifetime rule (a detector's verdict payload is only valid
// until its next ObserveInterval call), and it is what makes the batched
// and per-item paths verdict-stream byte-identical. What the batch entry
// amortizes is everything around that core: one call dispatch, one
// intervals-counter update, and one report/stats setup per batch instead
// of per interval — plus, upstream, the ring reserve/publish/wake the
// ingest layer pays once per batch.
//
// Every overflow in ovs (and the report delivered to observers) follows
// the usual lifetime rule: valid only until the call returns.
func (p *Pipeline) ObserveBatch(ovs []*hpm.Overflow) {
	p.intervals += len(ovs)
	for _, ov := range ovs {
		p.rep.Seq = ov.Seq
		p.rep.Cycle = ov.Cycle
		p.rep.Verdicts = p.rep.Verdicts[:0]
		for i, d := range p.dets {
			v := d.ObserveInterval(ov)
			p.rep.Verdicts = append(p.rep.Verdicts, v)
			st := &p.stats[i]
			st.Intervals++
			if v.Stable {
				st.StableIntervals++
			}
			if v.PhaseChange {
				st.PhaseChanges++
			}
		}
		for _, fn := range p.observers {
			if fn != nil {
				fn(&p.rep)
			}
		}
	}
}
