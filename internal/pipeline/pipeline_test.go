package pipeline

import (
	"testing"

	"regionmon/internal/altdetect"
	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/region"
)

// testProgram builds a two-loop program.
func testProgram(t testing.TB) (*isa.Program, isa.LoopSpan, isa.LoopSpan) {
	t.Helper()
	b := isa.NewBuilder(0x10000)
	p := b.Proc("main")
	p.Code(32, isa.KindALU)
	l1 := p.Loop(16, []isa.Kind{isa.KindLoad, isa.KindALU}, nil)
	p.Code(8, isa.KindALU)
	l2 := p.Loop(24, []isa.Kind{isa.KindLoad, isa.KindALU, isa.KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, l1, l2
}

// overflow fabricates an overflow whose samples cycle over the given PCs.
func overflow(seq, n int, pcs ...isa.Addr) *hpm.Overflow {
	ov := &hpm.Overflow{Seq: seq, Samples: make([]hpm.Sample, n)}
	for i := range ov.Samples {
		ov.Samples[i] = hpm.Sample{PC: pcs[i%len(pcs)], Cycle: uint64(seq*n + i), Instrs: 10}
	}
	ov.Cycle = ov.Samples[n-1].Cycle
	return ov
}

// spanPCs returns k distinct instruction addresses inside span.
func spanPCs(span isa.LoopSpan, k int) []isa.Addr {
	pcs := make([]isa.Addr, k)
	n := span.NumInstrs()
	for i := range pcs {
		pcs[i] = span.Start + isa.Addr((i%n)*isa.InstrBytes)
	}
	return pcs
}

// fullPipeline builds a pipeline with all detector families attached
// (including the E-divisive change-point detector over CPI), returning
// the principal adapters for inspection.
func fullPipeline(t testing.TB, prog *isa.Program) (*Pipeline, *GPD, *RegionMonitor, *Alt, *Alt) {
	t.Helper()
	return fullPipelineCfg(t, prog, region.DefaultConfig())
}

func fullPipelineCfg(t testing.TB, prog *isa.Program, rcfg region.Config) (*Pipeline, *GPD, *RegionMonitor, *Alt, *Alt) {
	t.Helper()
	gdet, err := gpd.New(gpd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rmon, err := region.NewMonitor(prog, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	bbv, err := altdetect.NewBBV(prog, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := altdetect.NewWorkingSet(prog, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cpd, err := changepoint.New(changepoint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipe := New()
	ga := NewGPD(gdet)
	ra := NewRegionMonitor(rmon)
	ba := NewBBV(bbv)
	wa := NewWorkingSet(ws)
	ca := NewChangePoint(cpd)
	for _, d := range []PhaseDetector{ga, ra, ba, wa, ca} {
		if err := pipe.Register(d); err != nil {
			t.Fatalf("Register(%s): %v", d.Name(), err)
		}
	}
	return pipe, ga, ra, ba, wa
}

func TestRegisterValidation(t *testing.T) {
	prog, _, _ := testProgram(t)
	pipe, _, _, _, _ := fullPipeline(t, prog)
	if err := pipe.Register(nil); err == nil {
		t.Error("nil detector accepted")
	}
	gdet := gpd.MustNew(gpd.DefaultConfig())
	if err := pipe.Register(NewGPD(gdet)); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := pipe.Register(NewNamedGPD("", gdet)); err == nil {
		t.Error("empty name accepted")
	}
	if pipe.Detector(NameGPD) == nil || pipe.Detector("nope") != nil {
		t.Error("Detector lookup broken")
	}
	if len(pipe.Detectors()) != 5 {
		t.Errorf("detectors = %d; want 5", len(pipe.Detectors()))
	}
}

func TestFanOutMergesAllDetectors(t *testing.T) {
	prog, l1, _ := testProgram(t)
	pipe, ga, ra, _, _ := fullPipeline(t, prog)

	var observed int
	pipe.AddObserver(func(rep *IntervalReport) {
		observed++
		if len(rep.Verdicts) != 5 {
			t.Fatalf("verdicts = %d; want 5", len(rep.Verdicts))
		}
		// Registration order preserved.
		wantOrder := []string{NameGPD, NameRegions, NameBBV, NameWorkingSet, NameChangePoint}
		for i, w := range wantOrder {
			if rep.Verdicts[i].Detector != w {
				t.Fatalf("verdict %d from %q; want %q", i, rep.Verdicts[i].Detector, w)
			}
		}
	})

	pcs := spanPCs(l1, 4)
	const intervals = 12
	for seq := 0; seq < intervals; seq++ {
		rep := pipe.ProcessOverflow(overflow(seq, 64, pcs...))
		if rep.Seq != seq {
			t.Fatalf("report seq = %d; want %d", rep.Seq, seq)
		}
		if v := rep.Verdict(NameGPD); v == nil {
			t.Fatal("gpd verdict missing")
		}
		if rep.Verdict("nope") != nil {
			t.Fatal("verdict lookup invented a detector")
		}
	}
	if observed != intervals {
		t.Errorf("observer ran %d times; want %d", observed, intervals)
	}
	if pipe.Intervals() != intervals {
		t.Errorf("Intervals = %d; want %d", pipe.Intervals(), intervals)
	}

	// Steady stream: GPD ends stable, every adapter agrees with its
	// underlying detector's counters.
	if ga.Detector().State() != gpd.Stable {
		t.Errorf("gpd state = %v; want stable on steady stream", ga.Detector().State())
	}
	st := pipe.Stats(NameGPD)
	if st.Intervals != intervals {
		t.Errorf("gpd stats intervals = %d; want %d", st.Intervals, intervals)
	}
	if st.StableIntervals == 0 || st.StableFraction() == 0 {
		t.Error("gpd never stable in pipeline stats")
	}
	// Region monitor formed the loop region and judged it stable.
	if len(ra.Monitor().Regions()) == 0 {
		t.Fatal("no regions formed")
	}
	if f := ra.WeightedStableFraction(); f < 0.5 {
		t.Errorf("weighted stable fraction = %.2f; want >= 0.5", f)
	}
}

func TestVerdictPayloads(t *testing.T) {
	prog, l1, _ := testProgram(t)
	pipe, _, _, _, _ := fullPipeline(t, prog)
	pcs := spanPCs(l1, 4)
	var rep *IntervalReport
	for seq := 0; seq < 8; seq++ {
		rep = pipe.ProcessOverflow(overflow(seq, 64, pcs...))
	}
	if _, ok := rep.Verdict(NameGPD).Payload.(*gpd.Verdict); !ok {
		t.Errorf("gpd payload %T; want *gpd.Verdict", rep.Verdict(NameGPD).Payload)
	}
	if _, ok := rep.Verdict(NameRegions).Payload.(*region.Report); !ok {
		t.Errorf("regions payload %T; want *region.Report", rep.Verdict(NameRegions).Payload)
	}
	if _, ok := rep.Verdict(NameBBV).Payload.(*altdetect.Verdict); !ok {
		t.Errorf("bbv payload %T; want *altdetect.Verdict", rep.Verdict(NameBBV).Payload)
	}
	if _, ok := rep.Verdict(NameChangePoint).Payload.(*changepoint.Verdict); !ok {
		t.Errorf("changepoint payload %T; want *changepoint.Verdict", rep.Verdict(NameChangePoint).Payload)
	}
}

func TestPerfAdapter(t *testing.T) {
	tr, err := gpd.NewPerfTracker(gpd.DefaultPerfConfig())
	if err != nil {
		t.Fatal(err)
	}
	cpi := NewCPI(tr)
	pipe := New()
	pipe.MustRegister(cpi)
	prog, l1, _ := testProgram(t)
	_ = prog
	pcs := spanPCs(l1, 4)
	for seq := 0; seq < 10; seq++ {
		v := pipe.ProcessOverflow(overflow(seq, 64, pcs...)).Verdicts[0]
		if _, ok := v.Payload.(*gpd.PerfVerdict); !ok {
			t.Fatalf("payload %T; want *gpd.PerfVerdict", v.Payload)
		}
	}
	if tr.Intervals() != 10 {
		t.Errorf("tracker intervals = %d; want 10", tr.Intervals())
	}
}

func TestObserverSlots(t *testing.T) {
	pipe := New()
	gdet := gpd.MustNew(gpd.DefaultConfig())
	pipe.MustRegister(NewGPD(gdet))
	var a, b int
	slotA := pipe.AddObserver(func(*IntervalReport) { a++ })
	pipe.AddObserver(func(*IntervalReport) { b++ })
	ov := &hpm.Overflow{Samples: []hpm.Sample{{PC: 0x10000, Instrs: 1}}}
	pipe.ProcessOverflow(ov)
	// Replace slot A; B keeps running.
	pipe.SetObserver(slotA, nil)
	pipe.ProcessOverflow(ov)
	if a != 1 || b != 2 {
		t.Errorf("a = %d, b = %d; want 1, 2", a, b)
	}
}

// TestObserveBatchMatchesPerItem is the pipeline-level half of the batch
// byte-identity contract: a run of intervals through ObserveBatch produces
// exactly the interleaving of per-item ProcessOverflow calls — same
// verdicts in the same order, observers fired once per interval between
// detector passes, stats counted identically.
func TestObserveBatchMatchesPerItem(t *testing.T) {
	type event struct {
		seq      int
		verdicts []Verdict
	}
	drive := func(batch int) ([]event, DetectorStats) {
		prog, l1, l2 := testProgram(t)
		pipe, _, _, _, _ := fullPipeline(t, prog)
		var events []event
		pipe.AddObserver(func(rep *IntervalReport) {
			// Copy: the report and its payloads are reused per interval.
			vs := make([]Verdict, len(rep.Verdicts))
			copy(vs, rep.Verdicts)
			for i := range vs {
				vs[i].Payload = nil
			}
			events = append(events, event{rep.Seq, vs})
		})
		pcs := append(spanPCs(l1, 8), spanPCs(l2, 8)...)
		const intervals = 48
		if batch <= 1 {
			for seq := 0; seq < intervals; seq++ {
				pipe.ProcessOverflow(overflow(seq, 64, pcs...))
			}
		} else {
			for base := 0; base < intervals; base += batch {
				n := batch
				if base+n > intervals {
					n = intervals - base
				}
				ovs := make([]*hpm.Overflow, n)
				for k := range ovs {
					ovs[k] = overflow(base+k, 64, pcs...)
				}
				pipe.ObserveBatch(ovs)
			}
		}
		if pipe.Intervals() != intervals {
			t.Fatalf("batch %d: Intervals = %d; want %d", batch, pipe.Intervals(), intervals)
		}
		return events, pipe.Stats(NameGPD)
	}

	refEvents, refStats := drive(1)
	for _, batch := range []int{5, 16, 64} {
		events, stats := drive(batch)
		if stats != refStats {
			t.Errorf("batch %d: gpd stats %+v != per-item %+v", batch, stats, refStats)
		}
		if len(events) != len(refEvents) {
			t.Fatalf("batch %d: %d observer events; want %d", batch, len(events), len(refEvents))
		}
		for i := range events {
			if events[i].seq != refEvents[i].seq {
				t.Fatalf("batch %d: event %d seq %d; want %d", batch, i, events[i].seq, refEvents[i].seq)
			}
			for j := range events[i].verdicts {
				if events[i].verdicts[j] != refEvents[i].verdicts[j] {
					t.Errorf("batch %d: interval %d verdict %d = %+v; want %+v",
						batch, i, j, events[i].verdicts[j], refEvents[i].verdicts[j])
				}
			}
		}
	}
}

// TestObserveBatchEmpty: a zero-length batch is a no-op, not a panic.
func TestObserveBatchEmpty(t *testing.T) {
	pipe := New()
	pipe.MustRegister(NewGPD(gpd.MustNew(gpd.DefaultConfig())))
	pipe.ObserveBatch(nil)
	pipe.ObserveBatch([]*hpm.Overflow{})
	if pipe.Intervals() != 0 {
		t.Errorf("Intervals = %d after empty batches; want 0", pipe.Intervals())
	}
}

// TestHotPathAllocs gates the per-interval allocation budget of the whole
// fan-out (GPD + region monitoring with a formed region) under each
// distribution path: after warm-up, processing an interval must not
// allocate, save for the region monitor's amortized UCR-history growth.
func TestHotPathAllocs(t *testing.T) {
	for _, kind := range []struct {
		name  string
		index region.IndexKind
	}{
		{"list", region.IndexList},
		{"tree", region.IndexTree},
		{"epoch", region.IndexEpoch},
	} {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			prog, l1, l2 := testProgram(t)
			rcfg := region.DefaultConfig()
			rcfg.Index = kind.index
			pipe, _, ra, _, _ := fullPipelineCfg(t, prog, rcfg)
			pcs := append(spanPCs(l1, 8), spanPCs(l2, 8)...)
			for seq := 0; seq < 64; seq++ { // warm-up: form regions, fill scratch
				pipe.ProcessOverflow(overflow(seq, 128, pcs...))
			}
			if len(ra.Monitor().Regions()) < 2 {
				t.Fatalf("regions = %d; want 2 before measuring", len(ra.Monitor().Regions()))
			}
			ov := overflow(64, 128, pcs...)
			avg := testing.AllocsPerRun(200, func() {
				pipe.ProcessOverflow(ov)
			})
			// The only allowed steady-state allocation is the amortized
			// append to the UCR history (plus the working-set scheme's map
			// internals); both average well below one per interval.
			if avg > 1 {
				t.Errorf("hot path allocates %.2f allocs/interval; want <= 1", avg)
			}
			// The batch entry holds the same budget per interval.
			batch := make([]*hpm.Overflow, 8)
			for i := range batch {
				batch[i] = ov
			}
			if avg := testing.AllocsPerRun(50, func() {
				pipe.ObserveBatch(batch)
			}) / float64(len(batch)); avg > 1 {
				t.Errorf("batched hot path allocates %.2f allocs/interval; want <= 1", avg)
			}
		})
	}
}
