package pipeline

// Pipeline checkpointing. A pipeline snapshot nests one component
// snapshot per registered detector (in registration order, keyed by
// registered name) plus the pipeline's own aggregate counters, so an
// entire monitoring stack checkpoints through a single Snapshot call and
// resumes mid-stream with a byte-identical subsequent verdict stream.
//
// Restore targets a pipeline with the same detectors registered in the
// same order over the same program; the executor/hpm side of a run is
// deliberately not captured (resuming a stream means re-attaching the
// restored stack to the live sample source — see the System facade).

import (
	"fmt"

	"regionmon/internal/altdetect"
	"regionmon/internal/gpd"
	"regionmon/internal/region"
	"regionmon/internal/snap"
)

// Snapshotter is implemented by detectors (and adapters) that support
// checkpointing. AppendSnapshot encodes the component's mutable state;
// RestoreSnapshot decodes it back into an identically configured
// component.
type Snapshotter interface {
	AppendSnapshot(e *snap.Encoder) error
	RestoreSnapshot(d *snap.Decoder) error
}

const pipelineTag = "pipeline"

// Snapshot serializes the pipeline and every registered detector to a
// versioned, deterministic byte form. It fails if any registered detector
// does not implement Snapshotter.
func (p *Pipeline) Snapshot() ([]byte, error) {
	e := snap.NewEncoder()
	e.Header(pipelineTag, 1)
	e.Int(p.intervals)
	e.Int(len(p.dets))
	for i, d := range p.dets {
		s, ok := d.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("pipeline: detector %q (%T) does not support snapshotting", d.Name(), d)
		}
		e.String(d.Name())
		st := p.stats[i]
		e.Int(st.Intervals)
		e.Int(st.StableIntervals)
		e.Int(st.PhaseChanges)
		if err := s.AppendSnapshot(e); err != nil {
			return nil, fmt.Errorf("pipeline: snapshotting detector %q: %w", d.Name(), err)
		}
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// Restore replaces the pipeline's state (and every registered detector's)
// from a Snapshot. The pipeline must have the same detectors registered
// in the same order as the snapshotted one.
func (p *Pipeline) Restore(data []byte) error {
	d := snap.NewDecoder(data)
	d.Header(pipelineTag, 1)
	intervals := d.Int()
	count := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if count != len(p.dets) {
		return fmt.Errorf("pipeline: snapshot has %d detectors, pipeline has %d", count, len(p.dets))
	}
	stats := make([]DetectorStats, count)
	for i, det := range p.dets {
		name := d.String()
		stats[i].Intervals = d.Int()
		stats[i].StableIntervals = d.Int()
		stats[i].PhaseChanges = d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if name != det.Name() {
			return fmt.Errorf("pipeline: snapshot detector %d is %q, pipeline has %q", i, name, det.Name())
		}
		s, ok := det.(Snapshotter)
		if !ok {
			return fmt.Errorf("pipeline: detector %q (%T) does not support snapshotting", det.Name(), det)
		}
		if err := s.RestoreSnapshot(d); err != nil {
			return fmt.Errorf("pipeline: restoring detector %q: %w", name, err)
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	p.intervals = intervals
	copy(p.stats, stats)
	return nil
}

// Adapter snapshots. Each adapter nests its wrapped detector's snapshot
// and its own last-verdict/accumulator state, so a restored adapter is
// indistinguishable from the uninterrupted one from the next interval on.

const (
	gpdAdapterTag   = "a-gpd"
	rmonAdapterTag  = "a-regions"
	altAdapterTag   = "a-alt"
	perfAdapterTag  = "a-perf"
	chgptAdapterTag = "a-chgpt"
)

// AppendSnapshot implements Snapshotter.
func (g *GPD) AppendSnapshot(e *snap.Encoder) error {
	e.Header(gpdAdapterTag, 1)
	g.det.AppendSnapshot(e)
	e.Int(int(g.last.State))
	e.Int(int(g.last.Prev))
	e.Bool(g.last.PhaseChange)
	e.Bool(g.last.Drastic)
	e.F64(g.last.Centroid)
	e.F64(g.last.Delta)
	e.F64(g.last.BandLow)
	e.F64(g.last.BandHigh)
	return nil
}

// RestoreSnapshot implements Snapshotter.
func (g *GPD) RestoreSnapshot(d *snap.Decoder) error {
	d.Header(gpdAdapterTag, 1)
	if err := g.det.RestoreSnapshot(d); err != nil {
		return err
	}
	g.last.State = gpd.State(d.Int())
	g.last.Prev = gpd.State(d.Int())
	g.last.PhaseChange = d.Bool()
	g.last.Drastic = d.Bool()
	g.last.Centroid = d.F64()
	g.last.Delta = d.F64()
	g.last.BandLow = d.F64()
	g.last.BandHigh = d.F64()
	return d.Err()
}

// AppendSnapshot implements Snapshotter. The last Report is not captured
// (it aliases monitor-owned scratch and is overwritten on the next
// interval); Last() is zero on a restored adapter until then.
func (r *RegionMonitor) AppendSnapshot(e *snap.Encoder) error {
	e.Header(rmonAdapterTag, 1)
	r.mon.AppendSnapshot(e)
	e.F64(r.stableW)
	e.F64(r.totalW)
	return nil
}

// RestoreSnapshot implements Snapshotter.
func (r *RegionMonitor) RestoreSnapshot(d *snap.Decoder) error {
	d.Header(rmonAdapterTag, 1)
	if err := r.mon.RestoreSnapshot(d); err != nil {
		return err
	}
	r.stableW = d.F64()
	r.totalW = d.F64()
	r.last = region.Report{}
	return d.Err()
}

// AppendSnapshot implements Snapshotter. It fails when the wrapped
// detector (a custom NewNamedAlt implementation) does not itself support
// snapshotting; the built-in BBV and working-set detectors do.
func (a *Alt) AppendSnapshot(e *snap.Encoder) error {
	s, ok := a.det.(altSnapshotter)
	if !ok {
		return fmt.Errorf("wrapped detector %T does not support snapshotting", a.det)
	}
	e.Header(altAdapterTag, 1)
	s.AppendSnapshot(e)
	e.F64(a.last.Similarity)
	e.Bool(a.last.Changed)
	e.Int(a.last.Blocks)
	return nil
}

// RestoreSnapshot implements Snapshotter.
func (a *Alt) RestoreSnapshot(d *snap.Decoder) error {
	s, ok := a.det.(altSnapshotter)
	if !ok {
		return fmt.Errorf("wrapped detector %T does not support snapshotting", a.det)
	}
	d.Header(altAdapterTag, 1)
	if err := s.RestoreSnapshot(d); err != nil {
		return err
	}
	a.last.Similarity = d.F64()
	a.last.Changed = d.Bool()
	a.last.Blocks = d.Int()
	return d.Err()
}

// altSnapshotter is the snapshot shape shared by the altdetect detectors.
type altSnapshotter interface {
	AppendSnapshot(e *snap.Encoder)
	RestoreSnapshot(d *snap.Decoder) error
}

// AppendSnapshot implements Snapshotter.
func (p *Perf) AppendSnapshot(e *snap.Encoder) error {
	e.Header(perfAdapterTag, 1)
	p.tr.AppendSnapshot(e)
	e.F64(p.last.Value)
	e.F64(p.last.Mean)
	e.F64(p.last.SD)
	e.F64(p.last.Delta)
	e.Bool(p.last.Changed)
	return nil
}

// RestoreSnapshot implements Snapshotter.
func (p *Perf) RestoreSnapshot(d *snap.Decoder) error {
	d.Header(perfAdapterTag, 1)
	if err := p.tr.RestoreSnapshot(d); err != nil {
		return err
	}
	p.last.Value = d.F64()
	p.last.Mean = d.F64()
	p.last.SD = d.F64()
	p.last.Delta = d.F64()
	p.last.Changed = d.Bool()
	return d.Err()
}

// AppendSnapshot implements Snapshotter.
func (c *ChangePoint) AppendSnapshot(e *snap.Encoder) error {
	e.Header(chgptAdapterTag, 1)
	c.det.AppendSnapshot(e)
	e.F64(c.last.Value)
	e.Bool(c.last.Evaluated)
	e.Bool(c.last.Changed)
	e.I64(c.last.ChangeAt)
	e.F64(c.last.Stat)
	e.F64(c.last.PValue)
	return nil
}

// RestoreSnapshot implements Snapshotter.
func (c *ChangePoint) RestoreSnapshot(d *snap.Decoder) error {
	d.Header(chgptAdapterTag, 1)
	if err := c.det.RestoreSnapshot(d); err != nil {
		return err
	}
	c.last.Value = d.F64()
	c.last.Evaluated = d.Bool()
	c.last.Changed = d.Bool()
	c.last.ChangeAt = d.I64()
	c.last.Stat = d.F64()
	c.last.PValue = d.F64()
	return d.Err()
}

// Interface conformance for every built-in adapter.
var (
	_ Snapshotter    = (*GPD)(nil)
	_ Snapshotter    = (*RegionMonitor)(nil)
	_ Snapshotter    = (*Alt)(nil)
	_ Snapshotter    = (*Perf)(nil)
	_ Snapshotter    = (*ChangePoint)(nil)
	_ altSnapshotter = (*altdetect.BBV)(nil)
	_ altSnapshotter = (*altdetect.WorkingSet)(nil)
)
