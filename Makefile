GO ?= go

.PHONY: all build vet lint test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the phaselint suite (internal/lint): single-owner leak, determinism,
# hot-path allocation and payload-switch exhaustiveness checks over the
# whole module.
lint:
	$(GO) run ./cmd/phaselint ./...

test:
	$(GO) test ./...

# Full suite under the race detector, including the concurrent-sweep
# tests that exercise >= 4 simultaneous (executor, monitor, pipeline)
# stacks.
race:
	$(GO) test -race ./...

# Smoke-run the hot-path benchmarks: one iteration each, with allocation
# reporting (the allocs/op gate itself lives in TestSystemRunAllocs and
# pipeline.TestHotPathAllocs, which run under `make test`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemRun|BenchmarkFig13' -benchtime 1x -benchmem ./.

check: vet build lint test race bench
