GO ?= go

.PHONY: all build vet lint test race race-hot bench benchingest ingest-smoke ingest-batch-smoke benchregion region-smoke benchwatch benchwatch-smoke soak soak-short check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run go vet plus the phaselint suite (internal/lint): single-owner leak,
# determinism, hot-path allocation, payload-switch exhaustiveness,
# snapshot-completeness, bounded-state, batch-wrapper and atomic-discipline
# checks over the whole module.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/phaselint ./...

test:
	$(GO) test ./...

# Full suite under the race detector, including the concurrent-sweep
# tests that exercise >= 4 simultaneous (executor, monitor, pipeline)
# stacks.
race:
	$(GO) test -race ./...

# Race-detector pass over just the concurrency-bearing packages — the
# ring/fleet ingestion path, the pipeline sweeps and the soak harness.
# This is what CI's dedicated race job runs, decoupled from the fast
# tier-1 job so a slow race schedule never blocks the main signal.
race-hot:
	$(GO) test -race ./internal/ingest/... ./internal/pipeline/... ./internal/soak/...

# Smoke-run the hot-path benchmarks: one iteration each, with allocation
# reporting (the allocs/op gate itself lives in TestSystemRunAllocs and
# pipeline.TestHotPathAllocs, which run under `make test`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemRun|BenchmarkFig13' -benchtime 1x -benchmem ./.
	$(GO) test -run '^$$' -bench 'BenchmarkObserve|BenchmarkPearson' -benchtime 1x -benchmem ./internal/lpd/ ./internal/stats/

# Regenerate the committed ingest throughput baseline: streams/sec through
# full detector stacks at 1/4/16/64 shards, per-push vs batched, over a
# detector-bound and a transport-bound workload (median of 3 reps each),
# with cross-run digest verification before any number is reported.
benchingest:
	$(GO) run ./cmd/benchingest > BENCH_ingest.json

# Short multi-shard ingest smoke for `make check`/CI: 64 streams x 5k
# intervals through the per-item push path at every shard count, failing
# unless all per-stream verdict digests agree across topologies
# (throughput JSON discarded).
ingest-smoke:
	$(GO) run ./cmd/benchingest -mode perpush -reps 1 -intervals 5000 > /dev/null

# Batched-path twin of ingest-smoke: the same 64-stream workload driven
# through PushBatchWait (16-interval batches) at every shard count, with
# the same cross-topology digest gate.
ingest-batch-smoke:
	$(GO) run ./cmd/benchingest -mode batched -reps 1 -intervals 5000 > /dev/null

# Regenerate the committed sample-distribution baseline: ns/interval and
# samples/sec for list vs tree vs batched epoch at 4/64/512 regions, plus
# the end-to-end fleet delta, with cross-structure digest verification
# before any number is reported.
benchregion:
	$(GO) run ./cmd/benchregion > BENCH_region.json

# Short distribution smoke for `make check`/CI: tiny runs of the same
# harness, failing unless all three structures' verdict digests agree
# (throughput JSON discarded).
region-smoke:
	$(GO) run ./cmd/benchregion -smoke > /dev/null

# Perf-regression gate (cmd/benchwatch): run the E-divisive change-point
# engine over the committed BENCH_*.json trajectory (every committed
# version plus the working tree) and fail when a regime change lands on
# the latest PR. Tolerates short or shallow history by passing
# vacuously, so it is safe in `make check` from day one.
benchwatch:
	$(GO) run ./cmd/benchwatch

# Benchwatch smoke: the injected-step fixture must gate (nonzero exit)
# and the flat fixture must pass — proving the gate can actually fire
# before we trust its silence.
benchwatch-smoke:
	! $(GO) run ./cmd/benchwatch -series cmd/benchwatch/testdata/step.json > /dev/null
	$(GO) run ./cmd/benchwatch -series cmd/benchwatch/testdata/flat.json > /dev/null

# Long-run hardening harness (cmd/soak): millions of intervals through
# the full detector stack, asserting a steady heap and byte-identical
# verdict streams across mid-run kill/restore — first single-stream, then
# at fleet scale (8 streams behind an ingest.Fleet, reference on 1 shard
# vs kill/restore on 4). `soak` is the full acceptance run; `soak-short`
# is the minutes-free variant folded into `make check` and CI.
soak:
	$(GO) run ./cmd/soak -intervals 2000000

soak-short:
	$(GO) run ./cmd/soak -intervals 60000

check: build lint test bench ingest-smoke ingest-batch-smoke region-smoke benchwatch benchwatch-smoke soak-short
