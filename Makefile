GO ?= go

.PHONY: all build vet lint test race bench soak soak-short check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the phaselint suite (internal/lint): single-owner leak, determinism,
# hot-path allocation and payload-switch exhaustiveness checks over the
# whole module.
lint:
	$(GO) run ./cmd/phaselint ./...

test:
	$(GO) test ./...

# Full suite under the race detector, including the concurrent-sweep
# tests that exercise >= 4 simultaneous (executor, monitor, pipeline)
# stacks.
race:
	$(GO) test -race ./...

# Smoke-run the hot-path benchmarks: one iteration each, with allocation
# reporting (the allocs/op gate itself lives in TestSystemRunAllocs and
# pipeline.TestHotPathAllocs, which run under `make test`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemRun|BenchmarkFig13' -benchtime 1x -benchmem ./.

# Long-run hardening harness (cmd/soak): millions of intervals through
# the full detector stack, asserting a steady heap and byte-identical
# verdict streams across mid-run kill/restore. `soak` is the full
# acceptance run; `soak-short` is the minutes-free variant folded into
# `make check` and CI.
soak:
	$(GO) run ./cmd/soak -intervals 2000000

soak-short:
	$(GO) run ./cmd/soak -intervals 60000

check: vet build lint test race bench soak-short
