// Package regionmon is a library reproduction of "Region Monitoring for
// Local Phase Detection in Dynamic Optimization Systems" (Das, Lu, Hsu —
// CGO 2006): phase detection for sampling-based dynamic optimizers, both
// the classic centroid-based Global Phase Detection (GPD) baseline and the
// paper's contribution, per-region Local Phase Detection (LPD) inside a
// region monitoring framework, together with the simulated hardware
// substrate (synthetic programs, a cycle-level executor, a sampling
// performance-monitor model) and a runtime-optimizer harness that
// reproduces the paper's evaluation.
//
// The package is a façade: it re-exports the stable API of the internal
// subsystems so downstream code imports a single path.
//
//	prog  — build synthetic programs       (NewProgramBuilder)
//	sched — script phase behaviour         (Schedule, Segment, RegionBehavior)
//	run   — sample + detect                (System, or the pieces: NewSamplingMonitor,
//	        NewExecutor, NewGlobalDetector, NewRegionMonitor)
//	rto   — optimize under a controller    (NewRTO, PolicyGPD / PolicyLPD)
//	eval  — regenerate the paper's figures (Experiments* helpers)
//
// See examples/ for runnable walkthroughs and DESIGN.md for the
// paper-to-package map.
package regionmon

import (
	"regionmon/internal/adore"
	"regionmon/internal/altdetect"
	"regionmon/internal/changepoint"
	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/isa"
	"regionmon/internal/lpd"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
	"regionmon/internal/sim"
	"regionmon/internal/workload"
)

// Program model (internal/isa).
type (
	// Addr is a virtual text address.
	Addr = isa.Addr
	// Kind classifies an instruction for the cost model.
	Kind = isa.Kind
	// Program is a synthetic binary.
	Program = isa.Program
	// Procedure is one program procedure.
	Procedure = isa.Procedure
	// Block is a basic block.
	Block = isa.Block
	// Loop is a detected natural loop.
	Loop = isa.Loop
	// LoopSpan is a built loop's address range.
	LoopSpan = isa.LoopSpan
	// ProgramBuilder assembles synthetic programs.
	ProgramBuilder = isa.Builder
	// ProcBuilder assembles one procedure.
	ProcBuilder = isa.ProcBuilder
)

// Instruction kinds.
const (
	KindALU    = isa.KindALU
	KindLoad   = isa.KindLoad
	KindStore  = isa.KindStore
	KindFP     = isa.KindFP
	KindBranch = isa.KindBranch
	KindCall   = isa.KindCall
	KindRet    = isa.KindRet
	KindNop    = isa.KindNop
)

// NewProgramBuilder returns a builder placing the first procedure at base.
func NewProgramBuilder(base Addr) *ProgramBuilder { return isa.NewBuilder(base) }

// Execution model (internal/sim).
type (
	// Schedule scripts a program's phase behaviour.
	Schedule = sim.Schedule
	// Segment is one stretch of fixed behaviour.
	Segment = sim.Segment
	// RegionBehavior describes one region's behaviour in a segment.
	RegionBehavior = sim.RegionBehavior
	// Span is a half-open address range.
	Span = sim.Span
	// CostModel maps instruction kinds to cycle costs.
	CostModel = sim.CostModel
	// Executor runs a schedule over a program.
	Executor = sim.Executor
	// ExecResult summarizes an execution.
	ExecResult = sim.Result
)

// NewExecutor returns an executor for prog under sched, driving mon.
func NewExecutor(prog *Program, sched *Schedule, mon *SamplingMonitor) (*Executor, error) {
	return sim.NewExecutor(prog, sched, mon)
}

// DefaultCostModel returns the SPARC-flavoured base cost model.
func DefaultCostModel() CostModel { return sim.DefaultCostModel() }

// Sampling substrate (internal/hpm).
type (
	// SamplingConfig programs the simulated performance monitor.
	SamplingConfig = hpm.Config
	// SamplingMonitor is the simulated performance monitoring unit.
	SamplingMonitor = hpm.Monitor
	// Sample is one sampling-interrupt record.
	Sample = hpm.Sample
	// Overflow is one sample-buffer delivery.
	Overflow = hpm.Overflow
)

// DefaultBufferSize is the paper's sample-buffer size (2032).
const DefaultBufferSize = hpm.DefaultBufferSize

// NewSamplingMonitor returns a simulated performance monitor delivering
// buffer overflows to onOverflow.
func NewSamplingMonitor(cfg SamplingConfig, onOverflow func(*Overflow)) (*SamplingMonitor, error) {
	return hpm.New(cfg, onOverflow)
}

// Global phase detection (internal/gpd).
type (
	// GlobalDetector is the centroid-based GPD baseline.
	GlobalDetector = gpd.Detector
	// GlobalConfig parameterizes GPD (thresholds TH1..TH4 etc.).
	GlobalConfig = gpd.Config
	// GlobalVerdict is one GPD interval outcome.
	GlobalVerdict = gpd.Verdict
	// GlobalState is the GPD state enum.
	GlobalState = gpd.State
)

// GPD states.
const (
	GlobalUnstable   = gpd.Unstable
	GlobalLessStable = gpd.LessStable
	GlobalStable     = gpd.Stable
)

// DefaultGlobalConfig returns the paper's GPD parameters.
func DefaultGlobalConfig() GlobalConfig { return gpd.DefaultConfig() }

// NewGlobalDetector returns a centroid-based global phase detector.
func NewGlobalDetector(cfg GlobalConfig) (*GlobalDetector, error) { return gpd.New(cfg) }

// Performance-characteristic tracking (the paper's CPI/DPI signal).
type (
	// PerfTracker watches a scalar performance metric (CPI, DPI) per
	// interval and flags characteristic changes.
	PerfTracker = gpd.PerfTracker
	// PerfConfig parameterizes a PerfTracker.
	PerfConfig = gpd.PerfConfig
	// PerfVerdict is one PerfTracker observation outcome.
	PerfVerdict = gpd.PerfVerdict
)

// DefaultPerfConfig returns the default performance-tracker parameters.
func DefaultPerfConfig() PerfConfig { return gpd.DefaultPerfConfig() }

// NewPerfTracker returns a performance-characteristic tracker.
func NewPerfTracker(cfg PerfConfig) (*PerfTracker, error) { return gpd.NewPerfTracker(cfg) }

// CPI computes cycles-per-instruction over an overflow delivery.
func CPI(ov *Overflow) float64 { return hpm.CPI(ov) }

// DPI computes data-cache misses-per-instruction over an overflow
// delivery.
func DPI(ov *Overflow) float64 { return hpm.DPI(ov) }

// Local phase detection (internal/lpd).
type (
	// LocalDetector is one region's Pearson-correlation phase detector.
	LocalDetector = lpd.Detector
	// LocalConfig parameterizes LPD (r_t, similarity metric, ...).
	LocalConfig = lpd.Config
	// LocalVerdict is one LPD interval outcome.
	LocalVerdict = lpd.Verdict
	// LocalState is the LPD state enum.
	LocalState = lpd.State
	// SimilarityMetric selects Pearson or a cheaper alternative.
	SimilarityMetric = lpd.Metric
)

// LPD states and metrics.
const (
	LocalUnstable     = lpd.Unstable
	LocalLessUnstable = lpd.LessUnstable
	LocalStable       = lpd.Stable

	MetricPearson   = lpd.MetricPearson
	MetricManhattan = lpd.MetricManhattan
	MetricTopK      = lpd.MetricTopK
)

// DefaultLocalConfig returns the paper's LPD parameters (Pearson, 0.8).
func DefaultLocalConfig() LocalConfig { return lpd.DefaultConfig() }

// NewLocalDetector returns a local phase detector for a region of
// numInstrs instructions.
func NewLocalDetector(numInstrs int, cfg LocalConfig) (*LocalDetector, error) {
	return lpd.New(numInstrs, cfg)
}

// Region monitoring (internal/region).
type (
	// RegionMonitor is the region monitoring framework: sample
	// distribution, UCR-driven region formation, per-region LPD.
	RegionMonitor = region.Monitor
	// RegionConfig parameterizes the monitor.
	RegionConfig = region.Config
	// Region is one monitored code region.
	Region = region.Region
	// RegionReport is one interval's monitoring outcome.
	RegionReport = region.Report
	// RegionVerdict pairs a region with its interval verdict.
	RegionVerdict = region.RegionVerdict
	// Annotation is a compiler-provided candidate region span (the
	// Section 3.1 future-work extension).
	Annotation = region.Annotation
	// RegionIndexKind selects the monitor's sample-distribution
	// structure (RegionConfig.Index).
	RegionIndexKind = region.IndexKind
)

// Sample-distribution structures (RegionConfig.Index).
const (
	// RegionIndexEpoch is the default: count-compressed batched
	// distribution over a flat epoch snapshot of the region set.
	RegionIndexEpoch = region.IndexEpoch
	// RegionIndexList is the paper's per-sample linear list.
	RegionIndexList = region.IndexList
	// RegionIndexTree is the paper's per-sample interval tree.
	RegionIndexTree = region.IndexTree
)

// DefaultRegionConfig returns the paper's region-monitoring parameters
// (30% UCR threshold, Pearson LPD).
func DefaultRegionConfig() RegionConfig { return region.DefaultConfig() }

// NewRegionMonitor returns a region monitor for prog.
func NewRegionMonitor(prog *Program, cfg RegionConfig) (*RegionMonitor, error) {
	return region.NewMonitor(prog, cfg)
}

// Detector pipeline (internal/pipeline): the fan-out layer letting any
// number of phase detectors observe one sample stream side by side.
type (
	// Pipeline fans one overflow stream out to N registered detectors.
	Pipeline = pipeline.Pipeline
	// PhaseDetector is the common detector interface.
	PhaseDetector = pipeline.PhaseDetector
	// DetectorVerdict is a detector's unified per-interval event.
	DetectorVerdict = pipeline.Verdict
	// DetectorStats aggregates one detector's whole-run counters.
	DetectorStats = pipeline.DetectorStats
	// PipelineReport is the merged per-interval delivery (reused across
	// intervals; copy to retain).
	PipelineReport = pipeline.IntervalReport
	// Observer is a per-interval pipeline hook.
	Observer = pipeline.Observer
	// GPDAdapter presents a GlobalDetector as a PhaseDetector.
	GPDAdapter = pipeline.GPD
	// RegionAdapter presents a RegionMonitor as a PhaseDetector.
	RegionAdapter = pipeline.RegionMonitor
	// AltAdapter presents a related-work detector as a PhaseDetector.
	AltAdapter = pipeline.Alt
	// PerfAdapter presents a PerfTracker as a PhaseDetector.
	PerfAdapter = pipeline.Perf
	// ChangePointAdapter presents a ChangePointDetector as a
	// PhaseDetector.
	ChangePointAdapter = pipeline.ChangePoint
	// Snapshotter is implemented by detectors that support the
	// checkpoint/resume protocol (every built-in adapter does); a
	// Pipeline or System snapshots only if all its detectors do.
	Snapshotter = pipeline.Snapshotter
)

// Default detector names within a pipeline.
const (
	DetectorGPD        = pipeline.NameGPD
	DetectorRegions    = pipeline.NameRegions
	DetectorBBV        = pipeline.NameBBV
	DetectorWorkingSet = pipeline.NameWorkingSet
	DetectorCPI        = pipeline.NameCPI
	DetectorDPI        = pipeline.NameDPI
	DetectorChange     = pipeline.NameChangePoint
)

// NewPipeline returns an empty detector pipeline.
func NewPipeline() *Pipeline { return pipeline.New() }

// AdaptGPD presents det as a pipeline PhaseDetector named DetectorGPD.
func AdaptGPD(det *GlobalDetector) *GPDAdapter { return pipeline.NewGPD(det) }

// AdaptRegionMonitor presents mon as a pipeline PhaseDetector named
// DetectorRegions.
func AdaptRegionMonitor(mon *RegionMonitor) *RegionAdapter {
	return pipeline.NewRegionMonitor(mon)
}

// AdaptBBV presents det as a pipeline PhaseDetector named DetectorBBV.
func AdaptBBV(det *BBVDetector) *AltAdapter { return pipeline.NewBBV(det) }

// AdaptWorkingSet presents det as a pipeline PhaseDetector named
// DetectorWorkingSet.
func AdaptWorkingSet(det *WorkingSetDetector) *AltAdapter {
	return pipeline.NewWorkingSet(det)
}

// AdaptCPI presents tr as a pipeline PhaseDetector over the interval CPI
// metric, named DetectorCPI.
func AdaptCPI(tr *PerfTracker) *PerfAdapter { return pipeline.NewCPI(tr) }

// AdaptDPI presents tr as a pipeline PhaseDetector over the interval DPI
// metric, named DetectorDPI.
func AdaptDPI(tr *PerfTracker) *PerfAdapter { return pipeline.NewDPI(tr) }

// E-divisive change-point detection (internal/changepoint): the
// statistically grounded counterpart of the PerfTracker band check, and
// the engine behind cmd/benchwatch's perf-regression gate.
type (
	// ChangePointDetector is the online windowed E-divisive detector.
	ChangePointDetector = changepoint.Detector
	// ChangePointConfig parameterizes a ChangePointDetector.
	ChangePointConfig = changepoint.Config
	// ChangePointVerdict is one ChangePointDetector observation outcome.
	ChangePointVerdict = changepoint.Verdict
	// ChangePointEngineConfig parameterizes the offline engine
	// (permutations, alpha, minimum segment).
	ChangePointEngineConfig = changepoint.EngineConfig
	// ChangePoint is one detected distributional shift in a series.
	ChangePoint = changepoint.ChangePoint
)

// DefaultChangePointConfig returns the online detector defaults.
func DefaultChangePointConfig() ChangePointConfig { return changepoint.DefaultConfig() }

// DefaultChangePointEngineConfig returns the offline engine defaults.
func DefaultChangePointEngineConfig() ChangePointEngineConfig {
	return changepoint.DefaultEngineConfig()
}

// NewChangePointDetector returns an online windowed E-divisive detector.
func NewChangePointDetector(cfg ChangePointConfig) (*ChangePointDetector, error) {
	return changepoint.New(cfg)
}

// AdaptChangePoint presents det as a pipeline PhaseDetector over the
// interval CPI metric, named DetectorChange.
func AdaptChangePoint(det *ChangePointDetector) *ChangePointAdapter {
	return pipeline.NewChangePoint(det)
}

// DetectChangePoints runs the offline E-divisive engine over a series,
// returning every significant change point in ascending index order.
// Identical (xs, seed, cfg) inputs always yield identical output.
func DetectChangePoints(xs []float64, seed uint64, cfg ChangePointEngineConfig) ([]ChangePoint, error) {
	return changepoint.Detect(xs, seed, cfg)
}

// Runtime optimization (internal/adore).
type (
	// RTO is the runtime optimization system.
	RTO = adore.RTO
	// RTOConfig parameterizes a run.
	RTOConfig = adore.Config
	// RTOResult summarizes a run.
	RTOResult = adore.RunResult
	// Policy selects the controller.
	Policy = adore.Policy
	// OptimizationModel is the workload's true optimization effect.
	OptimizationModel = adore.OptimizationModel
	// RTOEvent is one controller log entry.
	RTOEvent = adore.Event
)

// RTO policies.
const (
	PolicyGPD  = adore.PolicyGPD
	PolicyLPD  = adore.PolicyLPD
	PolicyNone = adore.PolicyNone
)

// DefaultRTOConfig returns the default controller configuration for a
// policy.
func DefaultRTOConfig(p Policy) RTOConfig { return adore.DefaultConfig(p) }

// ConstantModel returns an optimization model with uniform effectiveness.
func ConstantModel(save float64) OptimizationModel { return adore.ConstantModel(save) }

// NewRTO wires prog, sched and a sampling configuration under a
// controller.
func NewRTO(prog *Program, sched *Schedule, scfg SamplingConfig, cfg RTOConfig) (*RTO, error) {
	return adore.New(prog, sched, scfg, cfg)
}

// Workloads (internal/workload).
type (
	// Benchmark is one synthetic SPEC CPU2000 program.
	Benchmark = workload.Benchmark
)

// BenchmarkNames returns the synthetic suite's benchmark names.
func BenchmarkNames() []string { return workload.Names() }

// LoadBenchmark builds one synthetic benchmark at the given work scale
// (1 = full experiment scale, ~10G base cycles).
func LoadBenchmark(name string, workScale float64) (*Benchmark, error) {
	return workload.ByName(name, workScale)
}

// Related-work detectors (internal/altdetect): the Section 4 comparison
// schemes, usable as standalone global phase detectors.
type (
	// BBVDetector is Sherwood-style basic-block-vector phase detection.
	BBVDetector = altdetect.BBV
	// WorkingSetDetector is Dhodapkar-style working-set-signature phase
	// detection.
	WorkingSetDetector = altdetect.WorkingSet
	// AltVerdict is either detector's per-interval outcome.
	AltVerdict = altdetect.Verdict
)

// NewBBVDetector returns a basic-block-vector detector over prog; see
// altdetect.NewBBV for the threshold's meaning.
func NewBBVDetector(prog *Program, threshold float64) (*BBVDetector, error) {
	return altdetect.NewBBV(prog, threshold)
}

// NewWorkingSetDetector returns a working-set-signature detector over
// prog; see altdetect.NewWorkingSet for the threshold's meaning.
func NewWorkingSetDetector(prog *Program, threshold float64) (*WorkingSetDetector, error) {
	return altdetect.NewWorkingSet(prog, threshold)
}
