package regionmon

// Compile-and-smoke coverage for the fleet façade re-exports (fleet.go),
// in the style of facade_test.go: a tiny fleet driven through façade
// types only, checking determinism across shard counts and a
// snapshot/restore round-trip.

import (
	"testing"
)

func fleetBuild(stream int) (*Pipeline, error) {
	gdet, err := NewGlobalDetector(DefaultGlobalConfig())
	if err != nil {
		return nil, err
	}
	tr, err := NewPerfTracker(DefaultPerfConfig())
	if err != nil {
		return nil, err
	}
	pipe := NewPipeline()
	pipe.MustRegister(AdaptGPD(gdet))
	pipe.MustRegister(AdaptCPI(tr))
	return pipe, nil
}

func fleetOverflow(buf []Sample, stream, seq int) *Overflow {
	base := Addr(0x10000 + stream*0x2000 + seq/30%3*0x200)
	cycle := uint64(seq) * 10000
	for i := range buf {
		cycle += 100
		buf[i] = Sample{PC: base + Addr(i%16*4), Cycle: cycle, Instrs: 8}
	}
	return &Overflow{Seq: seq, Cycle: cycle, Samples: buf}
}

func runFacadeFleet(t *testing.T, shards, intervals int) ([]uint64, []byte) {
	t.Helper()
	const streams = 4
	f, err := NewFleet(streams, FleetConfig{Shards: shards, MaxSamples: 16, Build: fleetBuild})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]Sample, 16)
	for seq := 0; seq < intervals; seq++ {
		for s := 0; s < streams; s++ {
			f.PushWait(s, fleetOverflow(buf, s, seq))
		}
	}
	f.Drain()
	var st FleetStats = f.Stats()
	if st.Accepted != uint64(streams*intervals) || st.Dropped != 0 {
		t.Fatalf("accepted/dropped = %d/%d, want %d/0", st.Accepted, st.Dropped, streams*intervals)
	}
	var ss ShardStats = st.Shards[0]
	if ss.QueueCap == 0 {
		t.Fatal("zero ring capacity reported")
	}
	digs := make([]uint64, streams)
	for s := range digs {
		var info StreamInfo
		info, err = f.StreamInfo(s)
		if err != nil {
			t.Fatal(err)
		}
		digs[s] = info.Digest
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return digs, snap
}

// TestFacadeFleetBatch drives the batched push path through façade types
// only and checks it lands on the per-item path's digests.
func TestFacadeFleetBatch(t *testing.T) {
	const streams, intervals, batch = 4, 90, 6
	ref, _ := runFacadeFleet(t, 1, intervals)

	f, err := NewFleet(streams, FleetConfig{Shards: 3, MaxSamples: 16, Build: fleetBuild})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bufs := make([]*Overflow, batch)
	backing := make([]Sample, batch*16)
	for k := range bufs {
		bufs[k] = &Overflow{Samples: backing[k*16 : (k+1)*16]}
	}
	for base := 0; base < intervals; base += batch {
		n := batch
		if base+n > intervals {
			n = intervals - base
		}
		for s := 0; s < streams; s++ {
			for k := 0; k < n; k++ {
				ov := fleetOverflow(bufs[k].Samples, s, base+k)
				bufs[k].Seq, bufs[k].Cycle = ov.Seq, ov.Cycle
			}
			f.PushBatchWait(s, bufs[:n])
		}
	}
	f.Drain()
	for s := 0; s < streams; s++ {
		info, err := f.StreamInfo(s)
		if err != nil {
			t.Fatal(err)
		}
		if info.Digest != ref[s] {
			t.Errorf("stream %d batched digest %#x != per-item %#x", s, info.Digest, ref[s])
		}
	}
}

func TestFacadeFleet(t *testing.T) {
	var build StreamBuildFunc = fleetBuild
	_ = build

	solo, snapSolo := runFacadeFleet(t, 1, 90)
	multi, snapMulti := runFacadeFleet(t, 3, 90)
	for s := range solo {
		if solo[s] != multi[s] {
			t.Errorf("stream %d digest differs across shard counts: %#x vs %#x", s, solo[s], multi[s])
		}
	}
	if string(snapSolo) != string(snapMulti) {
		t.Error("fleet snapshot bytes depend on shard count")
	}

	// Restore into a fresh fleet and check the worker-side state arrived.
	f, err := NewFleet(4, FleetConfig{Shards: 2, MaxSamples: 16, Build: fleetBuild})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Restore(snapSolo); err != nil {
		t.Fatal(err)
	}
	info, err := f.StreamInfo(2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Intervals != 90 || info.Digest != solo[2] {
		t.Errorf("restored stream 2 at %d intervals digest %#x; want 90, %#x", info.Intervals, info.Digest, solo[2])
	}
}
