package regionmon

// One testing.B benchmark per figure of the paper's evaluation, each
// regenerating that figure's data through the same code paths as
// cmd/experiments, plus ablation benchmarks for the design choices called
// out in DESIGN.md. Benchmarks run at reduced scale (QuickExperimentOptions:
// period/work ratios identical to full scale); run cmd/experiments for
// full-scale numbers. Key figure quantities are surfaced with
// b.ReportMetric so `go test -bench` output doubles as a results summary.

import (
	"testing"

	"regionmon/internal/experiments"
	"regionmon/internal/workload"
)

func benchOpts() ExperimentOptions { return QuickExperimentOptions() }

// BenchmarkFig02RegionChartMCF regenerates Figure 2: the 181.mcf region
// chart with the GPD phase line.
func BenchmarkFig02RegionChartMCF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chart, err := RunChart(benchOpts(), "181.mcf")
		if err != nil {
			b.Fatal(err)
		}
		unstable := 0
		for _, pt := range chart.Points {
			if !pt.GPDStable {
				unstable++
			}
		}
		b.ReportMetric(float64(len(chart.Points)), "intervals")
		b.ReportMetric(float64(unstable)/float64(len(chart.Points)), "unstable-frac")
	}
}

// BenchmarkFig03GPDPhaseChanges regenerates Figure 3: GPD phase-change
// counts across sampling periods for the 21-benchmark subset.
func BenchmarkFig03GPDPhaseChanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := RunSweep(benchOpts(), workload.Fig3Names())
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, c := range sweep.Cells {
			total += c.GPDChanges
		}
		if tab := sweep.Fig3Table(); len(tab.Rows) != 21 {
			b.Fatalf("Fig3 rows = %d", len(tab.Rows))
		}
		b.ReportMetric(float64(total), "phase-changes")
	}
}

// BenchmarkFig04GPDStableTime regenerates Figure 4: time in stable phase
// (GPD) across sampling periods.
func BenchmarkFig04GPDStableTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := RunSweep(benchOpts(), workload.Fig3Names())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, c := range sweep.Cells {
			sum += c.GPDStableFrac
		}
		if tab := sweep.Fig4Table(); len(tab.Rows) != 21 {
			b.Fatalf("Fig4 rows = %d", len(tab.Rows))
		}
		b.ReportMetric(sum/float64(len(sweep.Cells)), "mean-stable-frac")
	}
}

// BenchmarkFig05RegionChartFacerec regenerates Figure 5: the 187.facerec
// region chart.
func BenchmarkFig05RegionChartFacerec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chart, err := RunChart(benchOpts(), "187.facerec")
		if err != nil {
			b.Fatal(err)
		}
		unstable := 0
		for _, pt := range chart.Points {
			if !pt.GPDStable {
				unstable++
			}
		}
		b.ReportMetric(float64(unstable)/float64(len(chart.Points)), "unstable-frac")
	}
}

// BenchmarkFig06MedianUCR regenerates Figure 6: median unmonitored-sample
// percentage per benchmark against the 30% threshold (full suite).
func BenchmarkFig06MedianUCR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := RunSweep(benchOpts(), workload.Names())
		if err != nil {
			b.Fatal(err)
		}
		over := 0
		for _, name := range workload.Names() {
			if c := sweep.Cell(name, benchOpts().Periods[1]); c != nil && c.UCRMedian > 0.30 {
				over++
			}
		}
		if tab := sweep.Fig6Table(); len(tab.Rows) == 0 {
			b.Fatal("empty Fig6 table")
		}
		b.ReportMetric(float64(over), "benchmarks-over-threshold")
	}
}

// BenchmarkFig07UCRTimeline regenerates Figure 7: the per-interval UCR
// series for 254.gap and 186.crafty.
func BenchmarkFig07UCRTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := RunSweep(benchOpts(), []string{"254.gap", "186.crafty"})
		if err != nil {
			b.Fatal(err)
		}
		if tab := sweep.Fig7Table(); len(tab.Rows) == 0 {
			b.Fatal("empty Fig7 table")
		}
		gap := sweep.Cell("254.gap", benchOpts().Periods[0])
		b.ReportMetric(gap.UCRMedian, "gap-ucr-median")
	}
}

// BenchmarkFig08PearsonDemo regenerates Figure 8: the Pearson metric
// properties on synthetic distributions.
func BenchmarkFig08PearsonDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := Fig8Table()
		if len(tab.Rows) != 2 {
			b.Fatal("Fig8 malformed")
		}
	}
}

// BenchmarkFig09MCFRegions regenerates Figure 9: the per-region sample
// series for 181.mcf's hottest regions.
func BenchmarkFig09MCFRegions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, chart, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 || len(chart.Regions) < 3 {
			b.Fatal("Fig9 malformed")
		}
	}
}

// BenchmarkFig10MCFCorrelation regenerates Figure 10: Pearson r over time
// for 181.mcf's regions (stays near 1 despite global drift).
func BenchmarkFig10MCFCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chart, err := RunChart(benchOpts(), "181.mcf")
		if err != nil {
			b.Fatal(err)
		}
		tab, err := experiments.Fig10(benchOpts(), chart)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("Fig10 malformed")
		}
		// Mean r across the hottest region's populated intervals.
		var sum float64
		var n int
		hot := chart.Regions[0]
		for _, pt := range chart.Points {
			if r, ok := pt.R[hot]; ok && pt.Samples[hot] > 0 {
				sum += r
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "mean-r")
		}
	}
}

// BenchmarkFig11GapRegions regenerates Figure 11: the stable-vs-flaky
// region contrast in 254.gap.
func BenchmarkFig11GapRegions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("Fig11 malformed")
		}
	}
}

// BenchmarkFig13LPDPhaseChanges regenerates Figure 13: per-region LPD
// phase changes across sampling periods for the paper's subset.
func BenchmarkFig13LPDPhaseChanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := RunSweep(benchOpts(), Fig13BenchmarkNames())
		if err != nil {
			b.Fatal(err)
		}
		if tab := sweep.Fig13Table(); len(tab.Rows) == 0 {
			b.Fatal("empty Fig13 table")
		}
		// The flaky gap region's count at the smallest period (the
		// paper's 120-change outlier).
		gap := sweep.Cell("254.gap", benchOpts().Periods[0])
		maxChanges := 0
		for _, r := range gap.Regions {
			if r.PhaseChanges > maxChanges {
				maxChanges = r.PhaseChanges
			}
		}
		b.ReportMetric(float64(maxChanges), "gap-outlier-changes")
	}
}

// BenchmarkFig14LPDStableTime regenerates Figure 14: per-region locally
// stable time across sampling periods.
func BenchmarkFig14LPDStableTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := RunSweep(benchOpts(), Fig13BenchmarkNames())
		if err != nil {
			b.Fatal(err)
		}
		if tab := sweep.Fig14Table(); len(tab.Rows) == 0 {
			b.Fatal("empty Fig14 table")
		}
		// mcf's hottest region should be stable nearly all the time at
		// every period.
		var worst float64 = 1
		for _, p := range benchOpts().Periods {
			c := sweep.Cell("181.mcf", p)
			if len(c.Regions) > 0 && c.Regions[0].StableFrac < worst {
				worst = c.Regions[0].StableFrac
			}
		}
		b.ReportMetric(worst, "mcf-hot-region-min-stable")
	}
}

// BenchmarkFig15DetectorCost regenerates Figure 15: LPD vs GPD monitoring
// cost on identical sample streams (a representative subset; the full
// suite runs via cmd/experiments -fig 15).
func BenchmarkFig15DetectorCost(b *testing.B) {
	names := []string{"176.gcc", "181.mcf", "172.mgrid", "197.parser"}
	for i := 0; i < b.N; i++ {
		cost, err := RunCost(benchOpts(), names)
		if err != nil {
			b.Fatal(err)
		}
		var maxFactor float64
		for _, r := range cost.Rows {
			if r.Factor > maxFactor {
				maxFactor = r.Factor
			}
		}
		b.ReportMetric(maxFactor, "max-lpd/gpd-factor")
	}
}

// BenchmarkFig16IntervalTree regenerates Figure 16: interval-tree vs list
// sample distribution cost.
func BenchmarkFig16IntervalTree(b *testing.B) {
	names := []string{"176.gcc", "197.parser", "181.mcf", "172.mgrid"}
	for i := 0; i < b.N; i++ {
		tree, err := RunTreeComparison(benchOpts(), names)
		if err != nil {
			b.Fatal(err)
		}
		// gcc (many regions) should show the tree's advantage.
		for _, r := range tree.Rows {
			if r.Bench == "176.gcc" {
				b.ReportMetric(r.Factor, "gcc-tree/list-factor")
			}
		}
	}
}

// BenchmarkFig17RTOSpeedup regenerates Figure 17: speedup of RTO-LPD over
// RTO-ORIG for mcf, mgrid, gap and fma3d across sampling periods.
func BenchmarkFig17RTOSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp, err := RunSpeedup(benchOpts(), Fig17BenchmarkNames())
		if err != nil {
			b.Fatal(err)
		}
		if tab := sp.Table(); len(tab.Rows) != 4 {
			b.Fatal("Fig17 malformed")
		}
		for _, c := range sp.Cells {
			if c.Bench == "181.mcf" && c.Period == benchOpts().RTOPeriods[len(benchOpts().RTOPeriods)-1] {
				b.ReportMetric(c.Speedup*100, "mcf-speedup-%@1.5M-equiv")
			}
		}
	}
}

// BenchmarkExtDetectorPanel regenerates Extension E1: the Section 4
// related-work comparison (centroid GPD vs basic-block vectors vs
// working-set signatures vs region monitoring) on identical streams.
func BenchmarkExtDetectorPanel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panel, err := RunDetectorPanel(benchOpts(), []string{"187.facerec", "172.mgrid"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range panel.Rows {
			if r.Bench == "187.facerec" {
				b.ReportMetric(float64(r.BBVChanges), "facerec-bbv-changes")
				b.ReportMetric(r.LPDStable, "facerec-lpd-stable")
			}
		}
	}
}

// BenchmarkSystemRun measures a complete System run (executor + sampling
// monitor + GPD + region monitoring through the pipeline) and reports
// allocations per sampling interval. The monitoring hot path reuses all
// per-interval buffers (PC scratch, region histograms, verdict slices),
// so allocs/interval must stay at the amortized noise floor — the gate
// catches regressions that reintroduce per-interval garbage.
func BenchmarkSystemRun(b *testing.B) {
	b.ReportAllocs()
	var intervals int
	for i := 0; i < b.N; i++ {
		bench, err := LoadBenchmark("181.mcf", 0.01)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
			Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
		})
		if err != nil {
			b.Fatal(err)
		}
		stats := sys.Run()
		intervals += stats.Intervals
	}
	b.ReportMetric(float64(intervals)/float64(b.N), "intervals")
}

// TestSystemRunAllocs is the allocation gate behind BenchmarkSystemRun,
// enforced at plain `go test` time: once the detectors are warm, one
// sampling interval through the full System fan-out must average at most
// one allocation (amortized slice growth only).
func TestSystemRunAllocs(t *testing.T) {
	bench, err := LoadBenchmark("181.mcf", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
		Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := sys.RegionMonitor()
	sys.Run() // warm-up: form regions, size every scratch buffer
	if len(mon.Regions()) == 0 {
		t.Fatal("no regions formed during warm-up")
	}
	// Replay a synthetic steady interval through the pipeline directly.
	pipe := sys.Pipeline()
	r := mon.Regions()[0]
	ov := &Overflow{Samples: make([]Sample, 512)}
	for i := range ov.Samples {
		ov.Samples[i] = Sample{PC: r.Start + Addr(i%r.NumInstrs())*4, Instrs: 10}
	}
	avg := testing.AllocsPerRun(200, func() {
		ov.Seq++
		pipe.ProcessOverflow(ov)
	})
	if avg > 1 {
		t.Errorf("steady-state interval allocates %.2f allocs; want <= 1", avg)
	}
}

// --- Ablation benchmarks (DESIGN.md section 5) ---

// BenchmarkAblationGPDThresholdTH3 sweeps the stability-exit threshold:
// the centroid scheme's phase-change count swings wildly with TH3 — the
// brittleness Section 2.3 claims.
func BenchmarkAblationGPDThresholdTH3(b *testing.B) {
	for _, th3 := range []float64{0.05, 0.10, 0.20} {
		b.Run(percent(th3), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("181.mcf", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				gcfg := DefaultGlobalConfig()
				gcfg.TH3 = th3
				if gcfg.TH4 < th3 {
					gcfg.TH4 = th3
				}
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Global:   &gcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats := sys.Run()
				b.ReportMetric(float64(stats.GlobalPhaseChanges), "phase-changes")
			}
		})
	}
}

// BenchmarkAblationLPDSizeScaledThreshold compares the fixed r_t = 0.8
// against the paper's proposed region-size-scaled threshold on 188.ammp
// (the Section 3.2.2 granularity breakdown).
func BenchmarkAblationLPDSizeScaledThreshold(b *testing.B) {
	for _, scaled := range []bool{false, true} {
		name := "fixed-rt"
		if scaled {
			name = "size-scaled-rt"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("188.ammp", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				rcfg := DefaultRegionConfig()
				rcfg.Detector.ScaleRTBySize = scaled
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Region:   &rcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				sys.Run()
				var worst float64 = 1
				for _, r := range sys.RegionMonitor().Regions() {
					if f := r.Detector.StableFraction(); f < worst {
						worst = f
					}
				}
				b.ReportMetric(worst, "min-region-stable-frac")
			}
		})
	}
}

// BenchmarkAblationSimilarityMetric compares detection behaviour of the
// three similarity metrics on the same workload (cost is benchmarked in
// internal/lpd; this reports stability quality).
func BenchmarkAblationSimilarityMetric(b *testing.B) {
	metrics := map[string]SimilarityMetric{
		"pearson":   MetricPearson,
		"manhattan": MetricManhattan,
		"topk":      MetricTopK,
	}
	for name, m := range metrics {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("181.mcf", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				rcfg := DefaultRegionConfig()
				rcfg.Detector.Metric = m
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Region:   &rcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				sys.Run()
				changes := 0
				for _, r := range sys.RegionMonitor().Regions() {
					changes += r.Detector.PhaseChanges()
				}
				b.ReportMetric(float64(changes), "local-phase-changes")
			}
		})
	}
}

// BenchmarkAblationRegionPruning measures the paper's proposed region
// pruning (Section 3.2.3 future work): monitored-region count and
// monitoring cost with and without pruning on a many-region benchmark.
func BenchmarkAblationRegionPruning(b *testing.B) {
	for _, prune := range []int{0, 8} {
		name := "no-pruning"
		if prune > 0 {
			name = "prune-after-8"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("176.gcc", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				rcfg := DefaultRegionConfig()
				rcfg.PruneAfter = prune
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Region:   &rcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Pruning's benefit is the *average* monitored-region
				// count (each interval's distribution and detection cost
				// scales with it), not the final count.
				var regionIntervals, intervals int
				sys.AddObserver(func(rep *PipelineReport) {
					intervals++
					if v := rep.Verdict(DetectorRegions); v != nil {
						regionIntervals += len(v.Payload.(*RegionReport).Verdicts)
					}
				})
				sys.Run()
				if intervals > 0 {
					b.ReportMetric(float64(regionIntervals)/float64(intervals), "mean-regions")
				}
			}
		})
	}
}

// BenchmarkAblationAnnotations measures the Section 3.1 future-work
// extension: compiler annotations covering 254.gap's interpreter code (the
// straight-line spans the loop finder cannot cover) versus the baseline.
// The metric is the median unmonitored-sample fraction — the paper's
// Figure 6/7 quantity, which the annotations should pull under the 30%
// threshold.
func BenchmarkAblationAnnotations(b *testing.B) {
	for _, annotated := range []bool{false, true} {
		name := "baseline"
		if annotated {
			name = "compiler-annotations"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("254.gap", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				rcfg := DefaultRegionConfig()
				if annotated {
					for j, s := range bench.Straight {
						rcfg.Annotations = append(rcfg.Annotations, Annotation{
							Start: s.Start, End: s.End,
							Name: "interp-" + itoa(j),
						})
					}
				}
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Region:   &rcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats := sys.Run()
				b.ReportMetric(stats.UCRMedian, "median-ucr")
			}
		})
	}
}

// BenchmarkAblationInterProcedural measures the other Section 3.1
// extension on the same workload: whole-procedure regions around hot
// non-loop code.
func BenchmarkAblationInterProcedural(b *testing.B) {
	for _, inter := range []bool{false, true} {
		name := "baseline"
		if inter {
			name = "inter-procedural"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("186.crafty", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				rcfg := DefaultRegionConfig()
				rcfg.InterProcedural = inter
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Region:   &rcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats := sys.Run()
				b.ReportMetric(stats.UCRMedian, "median-ucr")
			}
		})
	}
}

// BenchmarkAblationIntervalTreeMonitor compares whole-monitor throughput
// with the list, the interval tree and the batched epoch index on a
// many-region benchmark (the end-to-end view of Figure 16).
func BenchmarkAblationIntervalTreeMonitor(b *testing.B) {
	for _, kind := range []struct {
		name  string
		index RegionIndexKind
	}{
		{"list", RegionIndexList},
		{"interval-tree", RegionIndexTree},
		{"epoch", RegionIndexEpoch},
	} {
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench, err := LoadBenchmark("197.parser", 0.01)
				if err != nil {
					b.Fatal(err)
				}
				rcfg := DefaultRegionConfig()
				rcfg.Index = kind.index
				sys, err := NewSystem(bench.Prog, bench.Sched, SystemConfig{
					Sampling: SamplingConfig{Period: 450, BufferSize: 512, JitterFrac: 0.1},
					Region:   &rcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				sys.Run()
			}
		})
	}
}

func percent(v float64) string {
	return "TH3=" + itoa(int(v*100)) + "%"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
