package regionmon

import (
	"bytes"
	"testing"
)

// buildDemo constructs a small two-loop program and a schedule through the
// public façade only.
func buildDemo(t testing.TB) (*Program, *Schedule, LoopSpan, LoopSpan) {
	t.Helper()
	b := NewProgramBuilder(0x10000)
	p := b.Proc("main")
	p.Code(16, KindALU)
	l1 := p.Loop(20, []Kind{KindLoad, KindALU, KindALU, KindALU}, nil)
	b.Skip(0x20000)
	q := b.Proc("aux")
	l2 := q.Loop(24, []Kind{KindLoad, KindALU, KindStore, KindALU}, nil)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sched := &Schedule{
		Name:   "demo",
		Repeat: 20,
		Segments: []Segment{{
			BaseCycles:  200_000,
			SlicePeriod: 10_000,
			Regions: []RegionBehavior{
				{Start: l1.Start, End: l1.End, Weight: 0.6, MissRate: 0.4, MissPenalty: 40, HotspotIdx: -1},
				{Start: l2.Start, End: l2.End, Weight: 0.4, MissRate: 0.2, MissPenalty: 40, HotspotIdx: -1},
			},
		}},
	}
	return prog, sched, l1, l2
}

func TestSystemEndToEnd(t *testing.T) {
	prog, sched, _, _ := buildDemo(t)
	sys, err := NewSystem(prog, sched, SystemConfig{
		Sampling: SamplingConfig{Period: 500, BufferSize: 256, JitterFrac: 0.1},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	observed := 0
	sys.AddObserver(func(*PipelineReport) { observed++ })
	stats := sys.Run()
	if stats.Intervals == 0 || observed != stats.Intervals {
		t.Fatalf("intervals = %d, observer saw %d", stats.Intervals, observed)
	}
	if stats.Regions < 2 {
		t.Errorf("regions = %d; want >= 2 (both loops formed)", stats.Regions)
	}
	if stats.Exec.Cycles == 0 {
		t.Error("no cycles executed")
	}
	// Steady behaviour: GPD and every region eventually stable.
	if stats.GlobalStableFraction == 0 {
		t.Error("GPD never stable on steady demo")
	}
	// Steady behaviour: every region is locally stable for most of the
	// run (the very last interval is a sparse partial-buffer flush and
	// may read unstable).
	for _, r := range sys.RegionMonitor().Regions() {
		if frac := r.Detector.StableFraction(); frac < 0.5 {
			t.Errorf("region %s stable fraction %.2f; want >= 0.5", r.Name(), frac)
		}
	}
}

// TestSystemSnapshotRestore checks the facade checkpoint path: a snapshot
// taken mid-run restores into a second identically configured System and
// re-encodes byte-identically. (The soak harness exercises the stronger
// resumed-verdict-stream guarantee at scale.)
func TestSystemSnapshotRestore(t *testing.T) {
	prog, sched, _, _ := buildDemo(t)
	newSys := func() *System {
		sys, err := NewSystem(prog, sched, SystemConfig{
			Sampling: SamplingConfig{Period: 500, BufferSize: 256, JitterFrac: 0.1},
		})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		return sys
	}

	sys := newSys()
	var snap []byte
	var snapErr error
	intervals := 0
	sys.AddObserver(func(rep *PipelineReport) {
		intervals++
		if intervals == 25 {
			snap, snapErr = sys.Snapshot()
		}
	})
	sys.Run()
	if snapErr != nil {
		t.Fatalf("mid-run Snapshot: %v", snapErr)
	}
	if snap == nil {
		t.Fatalf("run too short: %d intervals, snapshot never taken", intervals)
	}

	other := newSys()
	if err := other.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := other.Pipeline().Intervals(); got != 25 {
		t.Errorf("restored Intervals = %d; want 25", got)
	}
	resnap, err := other.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(snap, resnap) {
		t.Error("restored snapshot re-encodes differently")
	}
	if err := other.Restore([]byte("garbage")); err == nil {
		t.Error("Restore accepted garbage")
	}
}

func TestSystemValidation(t *testing.T) {
	prog, sched, _, _ := buildDemo(t)
	if _, err := NewSystem(nil, sched, SystemConfig{Sampling: SamplingConfig{Period: 100}}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := NewSystem(prog, nil, SystemConfig{Sampling: SamplingConfig{Period: 100}}); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := NewSystem(prog, sched, SystemConfig{}); err == nil {
		t.Error("zero sampling period accepted")
	}
	bad := DefaultGlobalConfig()
	bad.HistorySize = 0
	if _, err := NewSystem(prog, sched, SystemConfig{
		Sampling: SamplingConfig{Period: 100},
		Global:   &bad,
	}); err == nil {
		t.Error("bad global config accepted")
	}
	badR := DefaultRegionConfig()
	badR.UCRThreshold = 0
	if _, err := NewSystem(prog, sched, SystemConfig{
		Sampling: SamplingConfig{Period: 100},
		Region:   &badR,
	}); err == nil {
		t.Error("bad region config accepted")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := NewGlobalDetector(DefaultGlobalConfig()); err != nil {
		t.Errorf("NewGlobalDetector: %v", err)
	}
	if _, err := NewLocalDetector(32, DefaultLocalConfig()); err != nil {
		t.Errorf("NewLocalDetector: %v", err)
	}
	prog, sched, _, _ := buildDemo(t)
	if _, err := NewRegionMonitor(prog, DefaultRegionConfig()); err != nil {
		t.Errorf("NewRegionMonitor: %v", err)
	}
	mon, err := NewSamplingMonitor(SamplingConfig{Period: 1000}, func(*Overflow) {})
	if err != nil {
		t.Fatalf("NewSamplingMonitor: %v", err)
	}
	if _, err := NewExecutor(prog, sched, mon); err != nil {
		t.Errorf("NewExecutor: %v", err)
	}
	rto, err := NewRTO(prog, sched, SamplingConfig{Period: 1000, BufferSize: 64}, DefaultRTOConfig(PolicyLPD))
	if err != nil {
		t.Fatalf("NewRTO: %v", err)
	}
	res := rto.Run()
	if res.Sim.Cycles == 0 {
		t.Error("RTO run executed nothing")
	}
	cm := DefaultCostModel()
	if cm.Cost(KindFP) != 3 {
		t.Error("cost model re-export broken")
	}
	if DefaultBufferSize != 2032 {
		t.Error("buffer size re-export broken")
	}
}

func TestBenchmarkFacade(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 24 {
		t.Fatalf("suite has %d benchmarks; want 24", len(names))
	}
	b, err := LoadBenchmark("181.mcf", 0.001)
	if err != nil {
		t.Fatalf("LoadBenchmark: %v", err)
	}
	if b.Name != "181.mcf" || b.Prog == nil {
		t.Error("benchmark malformed")
	}
	if _, err := LoadBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Fig13BenchmarkNames()) != 8 || len(Fig17BenchmarkNames()) != 4 {
		t.Error("figure subsets wrong")
	}
	tab := Fig8Table()
	if len(tab.Rows) != 2 {
		t.Error("Fig8 table wrong")
	}
	opts := QuickExperimentOptions()
	if err := opts.Validate(); err != nil {
		t.Errorf("quick options invalid: %v", err)
	}
	dflt := DefaultExperimentOptions()
	if err := dflt.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}
