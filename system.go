package regionmon

import (
	"fmt"

	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/region"
	"regionmon/internal/sim"
)

// IntervalReport is delivered to a System's observer after every sampling
// interval (sample-buffer overflow), carrying both detectors' views.
type IntervalReport struct {
	// Seq is the overflow sequence number.
	Seq int
	// Cycle is the absolute cycle at the end of the interval.
	Cycle uint64
	// Global is the centroid detector's verdict.
	Global GlobalVerdict
	// Regions is the region monitor's report (UCR, formation, per-region
	// verdicts).
	Regions RegionReport
}

// SystemStats summarizes a completed System run.
type SystemStats struct {
	// Exec carries cycle and instruction totals.
	Exec ExecResult
	// Intervals is the number of sampling intervals observed.
	Intervals int
	// GlobalPhaseChanges is GPD's stable→unstable count.
	GlobalPhaseChanges int
	// GlobalStableFraction is GPD's stable-time share.
	GlobalStableFraction float64
	// UCRMedian is the median unmonitored-sample fraction.
	UCRMedian float64
	// Regions is the number of monitored regions at end of run.
	Regions int
}

// System is the convenience harness most users want: a program and a
// schedule wired to the sampling monitor, with the centroid global
// detector and the region monitoring framework both attached. Construct
// with NewSystem, optionally register an observer, then Run.
type System struct {
	prog *Program

	exec     *sim.Executor
	mon      *hpm.Monitor
	gdet     *gpd.Detector
	rmon     *region.Monitor
	observer func(IntervalReport)

	intervals int
	pcs       []uint64
}

// SystemConfig bundles a System's tunables; the zero value of each field
// selects the paper's defaults.
type SystemConfig struct {
	// Sampling programs the performance monitor; Sampling.Period is
	// required.
	Sampling SamplingConfig
	// Global overrides the GPD configuration (nil = paper defaults).
	Global *GlobalConfig
	// Region overrides the region-monitoring configuration (nil = paper
	// defaults).
	Region *RegionConfig
}

// NewSystem wires prog and sched under cfg.
func NewSystem(prog *Program, sched *Schedule, cfg SystemConfig) (*System, error) {
	if prog == nil || sched == nil {
		return nil, fmt.Errorf("regionmon: nil program or schedule")
	}
	gcfg := gpd.DefaultConfig()
	if cfg.Global != nil {
		gcfg = *cfg.Global
	}
	rcfg := region.DefaultConfig()
	if cfg.Region != nil {
		rcfg = *cfg.Region
	}
	s := &System{prog: prog}
	gdet, err := gpd.New(gcfg)
	if err != nil {
		return nil, err
	}
	s.gdet = gdet
	rmon, err := region.NewMonitor(prog, rcfg)
	if err != nil {
		return nil, err
	}
	s.rmon = rmon
	mon, err := hpm.New(cfg.Sampling, s.onOverflow)
	if err != nil {
		return nil, err
	}
	s.mon = mon
	exec, err := sim.NewExecutor(prog, sched, mon)
	if err != nil {
		return nil, err
	}
	s.exec = exec
	return s, nil
}

// Observe registers fn to be called after every sampling interval. At most
// one observer is supported; a second call replaces the first.
func (s *System) Observe(fn func(IntervalReport)) { s.observer = fn }

// GlobalDetector exposes the attached centroid detector.
func (s *System) GlobalDetector() *GlobalDetector { return s.gdet }

// RegionMonitor exposes the attached region monitor.
func (s *System) RegionMonitor() *RegionMonitor { return s.rmon }

// Executor exposes the underlying executor (e.g. to deploy optimizations
// manually).
func (s *System) Executor() *Executor { return s.exec }

func (s *System) onOverflow(ov *hpm.Overflow) {
	s.intervals++
	s.pcs = hpm.PCs(ov, s.pcs[:0])
	gv := s.gdet.ObservePCs(s.pcs)
	rep := s.rmon.ProcessOverflow(ov)
	if s.observer != nil {
		s.observer(IntervalReport{Seq: ov.Seq, Cycle: ov.Cycle, Global: gv, Regions: rep})
	}
}

// Run executes the schedule to completion and returns the run summary.
func (s *System) Run() SystemStats {
	res := s.exec.Run()
	return SystemStats{
		Exec:                 res,
		Intervals:            s.intervals,
		GlobalPhaseChanges:   s.gdet.PhaseChanges(),
		GlobalStableFraction: s.gdet.StableFraction(),
		UCRMedian:            s.rmon.UCRMedian(),
		Regions:              len(s.rmon.Regions()),
	}
}
