package regionmon

import (
	"fmt"

	"regionmon/internal/gpd"
	"regionmon/internal/hpm"
	"regionmon/internal/pipeline"
	"regionmon/internal/region"
	"regionmon/internal/sim"
)

// IntervalReport is delivered to a System's legacy observer (Observe)
// after every sampling interval (sample-buffer overflow), carrying both
// built-in detectors' views. New code should prefer AddObserver, which
// receives the pipeline's merged report covering every registered
// detector.
type IntervalReport struct {
	// Seq is the overflow sequence number.
	Seq int
	// Cycle is the absolute cycle at the end of the interval.
	Cycle uint64
	// Global is the centroid detector's verdict.
	Global GlobalVerdict
	// Regions is the region monitor's report (UCR, formation, per-region
	// verdicts). Its Verdicts slice is reused across intervals; copy to
	// retain.
	Regions RegionReport
}

// SystemStats summarizes a completed System run.
type SystemStats struct {
	// Exec carries cycle and instruction totals.
	Exec ExecResult
	// Intervals is the number of sampling intervals observed.
	Intervals int
	// GlobalPhaseChanges is GPD's stable→unstable count.
	GlobalPhaseChanges int
	// GlobalStableFraction is GPD's stable-time share.
	GlobalStableFraction float64
	// UCRMedian is the median unmonitored-sample fraction.
	UCRMedian float64
	// Regions is the number of monitored regions at end of run.
	Regions int
}

// System is the convenience harness most users want: a program and a
// schedule wired to the sampling monitor, with the centroid global
// detector and the region monitoring framework both attached through a
// detector pipeline. Construct with NewSystem, optionally register
// observers or extra detectors via Pipeline(), then Run.
//
// A System (and the pipeline underneath it) is single-owner: one
// goroutine calls Run. Scaling across cores means running many
// independent Systems in parallel (see the experiments sweep runner),
// never sharing one.
//
//lint:single-owner
type System struct {
	prog *Program //lint:config -- fixed at construction

	exec *sim.Executor //lint:config -- owns no snapshot state of its own
	mon  *hpm.Monitor  //lint:config -- snapshotted through pipe's detector set
	pipe *pipeline.Pipeline
	ga   *pipeline.GPD           //lint:config -- aliases a pipe-owned detector
	ra   *pipeline.RegionMonitor //lint:config -- aliases a pipe-owned detector

	legacySlot int //lint:config -- pipeline observer slot backing Observe; -1 when unused
}

// SystemConfig bundles a System's tunables; the zero value of each field
// selects the paper's defaults.
type SystemConfig struct {
	// Sampling programs the performance monitor; Sampling.Period is
	// required.
	Sampling SamplingConfig
	// Global overrides the GPD configuration (nil = paper defaults).
	Global *GlobalConfig
	// Region overrides the region-monitoring configuration (nil = paper
	// defaults).
	Region *RegionConfig
}

// NewSystem wires prog and sched under cfg.
func NewSystem(prog *Program, sched *Schedule, cfg SystemConfig) (*System, error) {
	if prog == nil || sched == nil {
		return nil, fmt.Errorf("regionmon: nil program or schedule")
	}
	gcfg := gpd.DefaultConfig()
	if cfg.Global != nil {
		gcfg = *cfg.Global
	}
	rcfg := region.DefaultConfig()
	if cfg.Region != nil {
		rcfg = *cfg.Region
	}
	s := &System{prog: prog, legacySlot: -1}
	gdet, err := gpd.New(gcfg)
	if err != nil {
		return nil, err
	}
	rmon, err := region.NewMonitor(prog, rcfg)
	if err != nil {
		return nil, err
	}
	s.pipe = pipeline.New()
	s.ga = pipeline.NewGPD(gdet)
	s.ra = pipeline.NewRegionMonitor(rmon)
	s.pipe.MustRegister(s.ga)
	s.pipe.MustRegister(s.ra)
	mon, err := hpm.New(cfg.Sampling, func(ov *hpm.Overflow) { s.pipe.ProcessOverflow(ov) })
	if err != nil {
		return nil, err
	}
	s.mon = mon
	exec, err := sim.NewExecutor(prog, sched, mon)
	if err != nil {
		return nil, err
	}
	s.exec = exec
	return s, nil
}

// Observe registers fn to be called after every sampling interval.
//
// Deprecated: Observe keeps its historical replacement semantics — a
// second call replaces the first call's observer (only the observer
// Observe itself registered; hooks added via AddObserver or directly on
// the pipeline are untouched). New code should use AddObserver, which
// supports any number of observers and delivers the full pipeline
// report.
func (s *System) Observe(fn func(IntervalReport)) {
	var hook Observer
	if fn != nil {
		hook = func(rep *PipelineReport) {
			fn(IntervalReport{
				Seq:     rep.Seq,
				Cycle:   rep.Cycle,
				Global:  s.ga.Last(),
				Regions: *s.ra.Last(),
			})
		}
	}
	if s.legacySlot < 0 {
		s.legacySlot = s.pipe.AddObserver(hook)
		return
	}
	s.pipe.SetObserver(s.legacySlot, hook)
}

// AddObserver attaches a per-interval hook to the System's pipeline and
// returns its slot. Any number of observers may be attached; they run in
// attachment order after every detector has observed the interval.
func (s *System) AddObserver(fn Observer) int { return s.pipe.AddObserver(fn) }

// Pipeline exposes the System's detector pipeline, e.g. to register
// additional detectors (BBV, working-set, CPI trackers) before Run or to
// read per-detector aggregate stats after.
func (s *System) Pipeline() *Pipeline { return s.pipe }

// GlobalDetector exposes the attached centroid detector.
func (s *System) GlobalDetector() *GlobalDetector { return s.ga.Detector() }

// RegionMonitor exposes the attached region monitor.
func (s *System) RegionMonitor() *RegionMonitor { return s.ra.Monitor() }

// Executor exposes the underlying executor (e.g. to deploy optimizations
// manually).
func (s *System) Executor() *Executor { return s.exec }

// Snapshot serializes the System's complete detector state — the
// pipeline, both built-in detectors and any additionally registered
// snapshottable detectors — to a versioned, deterministic byte form. The
// executor and sampling monitor are deliberately not captured: a snapshot
// checkpoints the *monitoring stack*, and resuming means attaching the
// restored stack to a live sample source and re-feeding the remainder of
// the stream (the soak harness exercises exactly this and asserts the
// resumed verdict stream is byte-identical to an uninterrupted run).
func (s *System) Snapshot() ([]byte, error) { return s.pipe.Snapshot() }

// Restore replaces the System's detector state from a Snapshot taken of
// an identically configured System (same program, same configuration,
// same extra detectors registered in the same order).
func (s *System) Restore(data []byte) error { return s.pipe.Restore(data) }

// Run executes the schedule to completion and returns the run summary.
func (s *System) Run() SystemStats {
	res := s.exec.Run()
	gdet := s.ga.Detector()
	rmon := s.ra.Monitor()
	return SystemStats{
		Exec:                 res,
		Intervals:            s.pipe.Intervals(),
		GlobalPhaseChanges:   gdet.PhaseChanges(),
		GlobalStableFraction: gdet.StableFraction(),
		UCRMedian:            rmon.UCRMedian(),
		Regions:              len(rmon.Regions()),
	}
}
