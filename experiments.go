package regionmon

import "regionmon/internal/experiments"

// Experiment plumbing (internal/experiments): regenerate the paper's
// figures programmatically. cmd/experiments is the command-line front end.
type (
	// ExperimentOptions parameterize all figure generators.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a rendered figure (String and CSV methods).
	ExperimentTable = experiments.Table
	// SweepResult carries the Figures 3/4/6/7/13/14 sweep.
	SweepResult = experiments.SweepResult
	// ChartResult carries a region chart (Figures 2/5/9/10/11).
	ChartResult = experiments.ChartResult
	// CostResult carries the Figure 15 measurement.
	CostResult = experiments.CostResult
	// TreeResult carries the Figure 16 measurement.
	TreeResult = experiments.TreeResult
	// SpeedupResult carries the Figure 17 measurement.
	SpeedupResult = experiments.SpeedupResult
)

// DefaultExperimentOptions returns full-scale experiment options (the
// paper's sampling periods, 512-sample buffers, ~10G-cycle runs).
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns reduced-scale options whose period/work
// ratios match full scale; suitable for laptops and CI.
func QuickExperimentOptions() ExperimentOptions { return experiments.TestOptions() }

// RunSweep measures the Figures 3/4/6/7/13/14 data for the named
// benchmarks.
func RunSweep(opts ExperimentOptions, names []string) (*SweepResult, error) {
	return experiments.RunSweep(opts, names)
}

// RunSweepParallel is RunSweep on a worker pool (workers < 1 selects all
// cores), with results identical to RunSweep's regardless of worker
// count.
func RunSweepParallel(opts ExperimentOptions, names []string, workers int) (*SweepResult, error) {
	return experiments.RunSweepParallel(opts, names, workers)
}

// RunChart records a region chart for one benchmark.
func RunChart(opts ExperimentOptions, name string) (*ChartResult, error) {
	return experiments.RunChart(opts, name)
}

// RunCost measures Figure 15 (GPD vs LPD monitoring cost).
func RunCost(opts ExperimentOptions, names []string) (*CostResult, error) {
	return experiments.RunCost(opts, names)
}

// RunTreeComparison measures Figure 16 (interval tree vs list).
func RunTreeComparison(opts ExperimentOptions, names []string) (*TreeResult, error) {
	return experiments.RunTreeComparison(opts, names)
}

// RunSpeedup measures Figure 17 (RTO-LPD over RTO-ORIG).
func RunSpeedup(opts ExperimentOptions, names []string) (*SpeedupResult, error) {
	return experiments.RunSpeedup(opts, names)
}

// RunSpeedupParallel is RunSpeedup on a worker pool (workers < 1 selects
// all cores), with results identical to RunSpeedup's regardless of
// worker count.
func RunSpeedupParallel(opts ExperimentOptions, names []string, workers int) (*SpeedupResult, error) {
	return experiments.RunSpeedupParallel(opts, names, workers)
}

// Fig8Table renders the Figure 8 Pearson demonstration.
func Fig8Table() *ExperimentTable { return experiments.Fig8() }

// Fig13BenchmarkNames returns the paper's Figure 13/14 benchmark subset.
func Fig13BenchmarkNames() []string { return experiments.Fig13Names() }

// Fig17BenchmarkNames returns the paper's Figure 17 benchmark subset.
func Fig17BenchmarkNames() []string { return experiments.Fig17Names() }

// PanelResult carries the Extension E1 detector comparison (centroid GPD
// vs basic-block vectors vs working-set signatures vs region monitoring).
type PanelResult = experiments.PanelResult

// RunDetectorPanel measures Extension E1 on the named benchmarks.
func RunDetectorPanel(opts ExperimentOptions, names []string) (*PanelResult, error) {
	return experiments.RunDetectorPanel(opts, names)
}
