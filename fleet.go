package regionmon

import (
	"regionmon/internal/ingest"
)

// Multi-stream ingestion (internal/ingest): one Fleet serves N
// independent monitored streams — one detector Pipeline each — sharded
// across a fixed worker pool with bounded lock-free queues. The push path
// is batch-first: PushBatch/PushBatchWait move a run of intervals with
// one ring reservation and one worker wake, and the per-item Push /
// PushWait are thin wrappers over them. Per-stream results are
// byte-identical regardless of shard count or batching, and the whole
// fleet checkpoints with Snapshot/Restore. See DESIGN.md §9 and §11.
type (
	// Fleet is the sharded multi-stream serving layer.
	Fleet = ingest.Fleet
	// FleetConfig parameterizes a Fleet (shards, queue capacity, the
	// per-stream stack builder).
	FleetConfig = ingest.Config
	// StreamBuildFunc constructs one stream's detector Pipeline; it runs
	// inside the owning shard worker, so the stack is worker-owned from
	// birth.
	StreamBuildFunc = ingest.BuildFunc
	// FleetStats is a fleet backpressure summary (accepted, dropped,
	// queue depths).
	FleetStats = ingest.Stats
	// ShardStats is one shard's backpressure accounting.
	ShardStats = ingest.ShardStats
	// StreamInfo is one stream's worker-side progress (intervals
	// processed, verdict digest).
	StreamInfo = ingest.StreamInfo
)

// NewFleet starts a fleet of numStreams monitored streams; every
// stream's detector stack is built before it returns.
func NewFleet(numStreams int, cfg FleetConfig) (*Fleet, error) {
	return ingest.NewFleet(numStreams, cfg)
}
